(* Struct-of-arrays layout: every per-cluster quantity the selection loops
   touch lives in its own flat array ([in_a]/[ready]/[avail] plus the
   instance's row-major [gap_flat]/[lat_flat] mirrors cached here), so the
   hot paths are plain float/int array reads with no record or row-pointer
   chasing. *)
type t = {
  inst : Instance.t;
  n : int;  (* = inst.n, hoisted for flat indexing *)
  gap_flat : float array;  (* = inst.gap_flat *)
  lat_flat : float array;  (* = inst.lat_flat *)
  in_a : bool array;
  ready : float array;
  avail : float array;
  mutable events : Schedule.event list;  (* reversed *)
  mutable round : int;
  mutable remaining_b : int;
  mutable first_b_hint : int;  (* lower bound on the smallest member of B *)
}

let create inst =
  let n = inst.Instance.n in
  let in_a = Array.make n false in
  let ready = Array.make n infinity in
  let avail = Array.make n infinity in
  in_a.(inst.Instance.root) <- true;
  ready.(inst.Instance.root) <- 0.;
  avail.(inst.Instance.root) <- 0.;
  {
    inst;
    n;
    gap_flat = inst.Instance.gap_flat;
    lat_flat = inst.Instance.lat_flat;
    in_a;
    ready;
    avail;
    events = [];
    round = 0;
    remaining_b = n - 1;
    first_b_hint = 0;
  }

let create_seeded inst ~sources =
  if sources = [] then invalid_arg "State.create_seeded: no sources";
  let n = inst.Instance.n in
  let in_a = Array.make n false in
  let ready = Array.make n infinity in
  let avail = Array.make n infinity in
  List.iter
    (fun (i, r, a) ->
      if i < 0 || i >= n then invalid_arg "State.create_seeded: cluster out of range";
      if in_a.(i) then invalid_arg "State.create_seeded: duplicate source";
      if not (0. <= r && r <= a) then
        invalid_arg "State.create_seeded: need 0 <= ready <= avail";
      in_a.(i) <- true;
      ready.(i) <- r;
      avail.(i) <- a)
    sources;
  if not in_a.(inst.Instance.root) then
    invalid_arg "State.create_seeded: the instance root must be a source";
  {
    inst;
    n;
    gap_flat = inst.Instance.gap_flat;
    lat_flat = inst.Instance.lat_flat;
    in_a;
    ready;
    avail;
    events = [];
    round = 0;
    remaining_b = n - List.length sources;
    first_b_hint = 0;
  }

let instance t = t.inst

let in_a t i =
  if i < 0 || i >= t.n then invalid_arg "State.in_a: out of range";
  t.in_a.(i)

let members_a t =
  List.filter (fun i -> t.in_a.(i)) (Instance.cluster_ids t.inst)

let members_b t =
  List.filter (fun i -> not t.in_a.(i)) (Instance.cluster_ids t.inst)

let iter_a t f =
  for i = 0 to t.n - 1 do
    if t.in_a.(i) then f i
  done

let iter_b t f =
  for i = 0 to t.n - 1 do
    if not t.in_a.(i) then f i
  done

let count_b t = t.remaining_b

let finished t = t.remaining_b = 0

(* B only ever shrinks, so the smallest member of B is non-decreasing over
   the run: resume the scan where the previous call stopped instead of
   walking the whole prefix (or allocating members_b) every round. *)
let first_b t =
  let n = t.n in
  let rec scan i =
    if i >= n then None
    else if not t.in_a.(i) then begin
      t.first_b_hint <- i;
      Some i
    end
    else scan (i + 1)
  in
  scan t.first_b_hint


let ready t i =
  if not (in_a t i) then invalid_arg "State.ready: cluster still in B";
  t.ready.(i)

let avail t i =
  if not (in_a t i) then invalid_arg "State.avail: cluster still in B";
  t.avail.(i)

(* Same formula as [Policy.arrival_score] (a State -> Lookahead -> Policy
   dependency cycle forbids calling it here).  The addition order must stay
   [(avail + g) + L] — the same left-association [send] uses — or seeded
   schedules shift by rounding. *)
let score_arrival t src dst =
  let k = (src * t.n) + dst in
  t.avail.(src) +. t.gap_flat.(k) +. t.lat_flat.(k)

let best_arrival_sender t ~dst =
  if in_a t dst then invalid_arg "State.best_arrival_sender: dst in A";
  let best = ref (-1) and best_a = ref infinity in
  iter_a t (fun i ->
      let a = score_arrival t i dst in
      if a < !best_a then begin
        best_a := a;
        best := i
      end);
  if !best < 0 then None else Some !best

let earliest_arrival t ~src ~dst =
  if not (in_a t src) then invalid_arg "State.earliest_arrival: src in B";
  if in_a t dst then invalid_arg "State.earliest_arrival: dst in A";
  score_arrival t src dst

let send t ~src ~dst =
  if src = dst then invalid_arg "State.send: src = dst";
  if not (in_a t src) then invalid_arg "State.send: src in B";
  if in_a t dst then invalid_arg "State.send: dst already in A";
  let k = (src * t.n) + dst in
  let g = t.gap_flat.(k) in
  let l = t.lat_flat.(k) in
  let start = t.avail.(src) in
  let sender_free = start +. g in
  let arrival = sender_free +. l in
  t.events <-
    { Schedule.round = t.round; src; dst; start; sender_free; arrival } :: t.events;
  t.round <- t.round + 1;
  t.avail.(src) <- sender_free;
  t.in_a.(dst) <- true;
  t.ready.(dst) <- arrival;
  t.avail.(dst) <- arrival;
  t.remaining_b <- t.remaining_b - 1

let to_schedule t =
  (* avail.(i) is exactly the end of i's last gap (or its arrival time if it
     never sent): the moment its intra-cluster broadcast may start. *)
  {
    Schedule.root = t.inst.Instance.root;
    n = t.inst.Instance.n;
    events = List.rev t.events;
    ready = Array.copy t.ready;
    busy_until = Array.copy t.avail;
  }

let run select inst =
  let t = create inst in
  while not (finished t) do
    let src, dst = select t in
    send t ~src ~dst
  done;
  to_schedule t

(** Predicted-load admission control for the broadcast service.

    Decisions are made at request arrival from the {e predicted} makespan
    of the request's (cached) plan — never from simulated completions, so
    the controller is causal (it cannot peek at the future), deterministic
    and independent of how planning was parallelised.  A request is
    rejected when the concurrency cap is reached or the predicted backlog
    (latest predicted finish minus now) exceeds the budget; an admitted
    request books [now + predicted_makespan] as its predicted finish. *)

type t

type decision = Admit | Reject of string  (** reason, human-readable *)

val create : ?max_concurrent:int -> ?max_backlog_us:float -> unit -> t
(** Defaults: at most 8 predicted-concurrent sessions, unbounded backlog.
    @raise Invalid_argument if [max_concurrent < 1] or
    [max_backlog_us <= 0.]. *)

val decide : t -> now:float -> predicted_makespan:float -> decision
(** Decide one request; call in arrival order ([now] non-decreasing).
    [Admit] records the predicted finish. *)

val inflight : t -> now:float -> int
(** Sessions whose predicted finish is past [now]. *)

(** Partitions of machines into logical clusters.

    A partition maps each machine index to a cluster id.  Ids are
    normalised to [0 .. k-1] in order of first appearance, so two
    partitions with the same blocks compare equal. *)

type t = private { assignment : int array; count : int }

val of_assignment : int array -> t
(** Normalises arbitrary labels.  @raise Invalid_argument on empty input. *)

val trivial : int -> t
(** Every machine alone ([n] singleton clusters). *)

val all_in_one : int -> t

val count : t -> int
(** Number of clusters. *)

val size : t -> int
(** Number of machines. *)

val cluster_of : t -> int -> int
val members : t -> int -> int list
(** Ascending machine indices of one cluster.
    @raise Invalid_argument on out-of-range cluster id. *)

val sizes : t -> int array

val equal : t -> t -> bool

val rand_index : t -> t -> float
(** Rand similarity in [0, 1]; 1 iff the partitions agree on every pair.
    @raise Invalid_argument if sizes differ. *)

val pp : Format.formatter -> t -> unit

(* Tests for lib/opt: the exact branch-and-bound solver, Träff's
   closed-form homogeneous construction, the shared policy name table,
   the analytic lower bound as a sound pruning bound, schedule replay of
   certified optima (invariants + DES), and a golden pin of the exact
   solver's schedules on a fixed corpus. *)

module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Policy = Gridb_sched.Policy
module Heuristics = Gridb_sched.Heuristics
module Engine = Gridb_sched.Engine
module Bounds = Gridb_sched.Bounds
module Optimal = Gridb_sched.Optimal
module Generators = Gridb_topology.Generators
module Machines = Gridb_topology.Machines
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Faults = Gridb_des.Faults
module Invariant = Gridb_check.Invariant
module Scenario = Gridb_check.Scenario
module Exact = Gridb_opt.Exact
module Traff = Gridb_opt.Traff
module Optgap = Gridb_experiments.Optgap
module Rng = Gridb_util.Rng

let feq = Testutil.feq

let check_outcome name = function
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: %a" name Invariant.pp_violation v

(* ------------------------------------------------------------------ *)
(* Satellite 1: one shared policy name table, no drift between the    *)
(* Policy registry, the Heuristics wrapper and the CLI/check listings *)
(* ------------------------------------------------------------------ *)

let test_policy_table_shared () =
  let slist = Alcotest.(check (list string)) in
  slist "Heuristics.names is Policy.names" Policy.names Heuristics.names;
  slist "Policy.all renders to Policy.names" Policy.names
    (List.map Policy.name Policy.all);
  slist "Heuristics.all renders to the same table" Policy.names
    (List.map (fun h -> h.Heuristics.name) Heuristics.all)

let test_policy_menu_consistent () =
  (* The seeded scenario menu is the shared table plus the pinned Mixed
     policy (kept last to preserve historical Rng.pick streams). *)
  let menu = Array.to_list Scenario.policy_menu in
  Alcotest.(check (list string))
    "policy_menu = Policy.names + Mixed"
    (Policy.names @ [ "Mixed<ECEF-LA|ECEF-LAT@10>" ])
    menu;
  List.iter
    (fun name ->
      (match Policy.by_name name with
      | Some _ -> ()
      | None -> Alcotest.failf "Policy.by_name %S: no policy" name);
      match Heuristics.by_name name with
      | Some h ->
          Alcotest.(check string)
            (Printf.sprintf "by_name %S round-trips" name)
            name h.Heuristics.name
      | None -> Alcotest.failf "Heuristics.by_name %S: no heuristic" name)
    menu

(* ------------------------------------------------------------------ *)
(* Satellite 2: the analytic lower bound never exceeds a heuristic    *)
(* makespan — on any topology family and on every DES transport.      *)
(* A wrong bound here is what would make B&B prune the true optimum.  *)
(* ------------------------------------------------------------------ *)

let sizes_for topo = match topo with Optgap.Multilevel -> [ 4; 6; 8 ] | _ -> [ 2; 5; 8 ]

let test_bound_below_heuristics () =
  List.iter
    (fun (tname, topo) ->
      List.iter
        (fun n ->
          List.iter
            (fun seed ->
              let inst = Optgap.instance topo ~seed ~n ~msg:1_000_000 in
              let lb = Bounds.combined inst in
              List.iter
                (fun p ->
                  let mk = Schedule.makespan inst (Engine.run p inst) in
                  if not (lb <= mk || feq lb mk) then
                    Alcotest.failf
                      "%s n=%d seed=%d: bound %.17g beats %s makespan %.17g" tname n
                      seed lb (Policy.name p) mk)
                Policy.all)
            [ 7; 42; 2006 ])
        (sizes_for topo))
    Optgap.topologies

let test_bound_below_des_transports () =
  (* The bound is stated over analytic schedules; the fault-free DES
     reproduces those exactly, on every transport.  Drive one heuristic
     schedule through all three transports and re-check the bound. *)
  let transports =
    [ Exec.Fixed; Exec.adaptive (); Exec.adaptive ~reroute:true () ]
  in
  List.iter
    (fun seed ->
      let grid = Testutil.random_grid ~cluster_size:(1, 3) ~n:6 seed in
      let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
      let lb = Bounds.combined inst in
      let machines = Machines.expand grid in
      let sched = Engine.run Policy.ecef_lat_max inst in
      let plan = Plan.of_cluster_schedule machines sched in
      List.iter
        (fun transport ->
          let r = Exec.run_reliable ~msg:1_000_000 ~transport machines plan in
          if not (lb <= r.Exec.r_makespan || feq lb r.Exec.r_makespan) then
            Alcotest.failf "seed=%d %s: bound %.17g beats DES makespan %.17g" seed
              (Exec.transport_to_string transport)
              lb r.Exec.r_makespan)
        transports)
    [ 3; 11; 2006 ]

(* ------------------------------------------------------------------ *)
(* Tentpole unit checks: certificates, brute-force agreement, Träff   *)
(* ------------------------------------------------------------------ *)

let test_exact_matches_brute_force () =
  (* The old exhaustive search explores the identical schedule space with
     no pruning: both must certify the same optimum (feq: two distinct
     optimal schedules may differ by summation order ulps). *)
  List.iter
    (fun (seed, inst) ->
      let bnb = Exact.makespan inst and brute = Optimal.makespan inst in
      if not (feq bnb brute) then
        Alcotest.failf "seed=%d: B&B %.17g <> brute force %.17g" seed bnb brute)
    (Testutil.corpus ~n_range:(2, 7) ~seed:77 ~count:6 ())

let test_certificate_coherent () =
  List.iter
    (fun (seed, inst) ->
      let c = Exact.solve inst in
      let name = Printf.sprintf "seed=%d" seed in
      Alcotest.(check bool) (name ^ ": incumbent listed") true
        (List.mem c.Exact.incumbent Policy.names);
      Alcotest.(check bool) (name ^ ": makespan <= incumbent") true
        (c.Exact.makespan <= c.Exact.incumbent_makespan
        || feq c.Exact.makespan c.Exact.incumbent_makespan);
      Alcotest.(check bool) (name ^ ": root bound <= makespan") true
        (c.Exact.lower_bound <= c.Exact.makespan
        || feq c.Exact.lower_bound c.Exact.makespan);
      Alcotest.(check bool) (name ^ ": optimal_by_heuristic tracks improved") true
        (c.Exact.optimal_by_heuristic = (c.Exact.stats.Exact.improved = 0));
      Alcotest.(check bool) (name ^ ": schedule attains certificate") true
        (Float.equal (Schedule.makespan inst c.Exact.schedule) c.Exact.makespan);
      match Schedule.validate inst c.Exact.schedule with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: certified schedule invalid: %s" name e)
    (Testutil.corpus ~n_range:(2, 9) ~seed:13 ~count:5 ())

let test_exact_rejects_oversize () =
  let inst = Testutil.random_instance ~n:13 1 in
  Alcotest.check_raises "beyond default ceiling"
    (Invalid_argument "Exact: 13 clusters exceeds the ceiling of 12") (fun () ->
      ignore (Exact.solve inst))

let test_traff_informed_recurrence () =
  (* N(t) = 1 before g + L, then N(t - g) + N(t - g - L): the heap
     simulation and the recurrence must agree on the last arrival. *)
  List.iter
    (fun (gap, latency) ->
      List.iter
        (fun n ->
          let last = Traff.last_arrival ~n ~gap ~latency in
          (* The recurrence subtracts where the heap adds: evaluate a hair
             past [last] so an ulp of disagreement cannot drop an arrival. *)
          let at_last =
            Traff.informed ~gap ~latency (last +. (1e-9 *. Float.max 1. last))
          in
          if at_last < n then
            Alcotest.failf "g=%g L=%g n=%d: informed(%.17g) = %d < n" gap latency n last
              at_last;
          (* Strictly before any arrival can complete, fewer are informed. *)
          let before = Traff.informed ~gap ~latency ((gap +. latency) *. 0.5) in
          Alcotest.(check int)
            (Printf.sprintf "g=%g L=%g: only the root before g+L" gap latency)
            1 before)
        [ 1; 2; 3; 7; 16; 33 ])
    [ (1., 1.); (769.2, 12_500.); (100., 0.5) ]

let test_traff_schedule_matches_closed_form () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let r = Instance.table2_ranges in
      let draw (lo, hi) = Rng.float_in rng lo hi in
      let params =
        {
          Traff.n = 2 + Rng.int_in rng 0 10;
          root = 0;
          latency = draw r.Instance.latency_us;
          gap = draw r.Instance.gap_us;
          intra = draw r.Instance.intra_us;
        }
      in
      let inst = Traff.instance params in
      (match Traff.homogeneous inst with
      | Some p -> Alcotest.(check int) "round-trip n" params.Traff.n p.Traff.n
      | None -> Alcotest.fail "Traff.instance not detected homogeneous");
      let sched = Traff.schedule inst in
      (* Bitwise: greedy schedule and heap closed form share every float op. *)
      Alcotest.(check bool)
        (Printf.sprintf "seed=%d: greedy schedule attains closed form" seed)
        true
        (Float.equal (Schedule.makespan inst sched) (Traff.makespan params));
      check_outcome
        (Printf.sprintf "seed=%d: Traff schedule invariants" seed)
        (Invariant.check_schedule inst sched))
    [ 1; 2; 3; 4; 5 ]

let test_exact_equals_traff_on_homogeneous () =
  List.iter
    (fun seed ->
      let inst = Optgap.instance Optgap.Homogeneous ~seed ~n:(4 + (seed mod 5)) ~msg:1 in
      let params =
        match Traff.homogeneous inst with Some p -> p | None -> assert false
      in
      let opt = Exact.makespan inst and closed = Traff.makespan params in
      if not (feq opt closed) then
        Alcotest.failf "seed=%d: exact %.17g <> Traff %.17g" seed opt closed)
    [ 10; 11; 12; 13 ]

let test_heterogeneous_not_homogeneous () =
  let inst = Testutil.random_instance ~n:6 5 in
  Alcotest.(check bool) "table2 draw is not homogeneous" true
    (Traff.homogeneous inst = None)

(* ------------------------------------------------------------------ *)
(* Satellite 3: certified schedules replay — invariant catalogue,     *)
(* Invariant.replay, and the DES executor at the certified makespan.  *)
(* ------------------------------------------------------------------ *)

let choices_of sched =
  List.map (fun e -> (e.Schedule.src, e.Schedule.dst)) sched.Schedule.events

let replay_analytic name inst cert =
  check_outcome (name ^ ": invariant catalogue")
    (Invariant.check_schedule inst cert.Exact.schedule);
  match Invariant.replay_makespan inst (choices_of cert.Exact.schedule) with
  | Error e -> Alcotest.failf "%s: replay rejected: %s" name e
  | Ok mk ->
      Alcotest.(check bool)
        (name ^ ": replay makespan = certified")
        true
        (Float.equal mk cert.Exact.makespan)

let test_replay_all_topologies () =
  List.iter
    (fun (tname, topo) ->
      List.iter
        (fun n ->
          let seed = 2006 + n in
          let inst = Optgap.instance topo ~seed ~n ~msg:1_000_000 in
          replay_analytic (Printf.sprintf "%s n=%d" tname n) inst (Exact.solve inst))
        (match topo with Optgap.Multilevel -> [ 4; 6; 8 ] | _ -> [ 2; 4; 8 ]))
    Optgap.topologies

let test_des_replay_certified () =
  (* Fault-free DES execution of the certified schedule lands exactly on
     the certified makespan, for every grid family the DES can host. *)
  let grids =
    [
      ("random n=4", Testutil.random_grid ~cluster_size:(1, 4) ~n:4 8);
      ("random n=8", Testutil.random_grid ~cluster_size:(1, 4) ~n:8 9);
      ( "multilevel n=6",
        Generators.multilevel ~rng:(Rng.create 10)
          {
            Generators.default_multilevel_spec with
            sites = 3;
            clusters_per_site = 2;
            machines_per_cluster = (1, 3);
          } );
      ( "homogeneous n=5",
        Generators.homogeneous ~n:5 ~cluster_size:2
          ~inter:
            (Gridb_plogp.Params.linear ~latency:5_000. ~g0:50. ~bandwidth_mb_s:8.)
          ~intra:
            (Gridb_plogp.Params.linear ~latency:50. ~g0:5. ~bandwidth_mb_s:400.) );
    ]
  in
  List.iter
    (fun (name, grid) ->
      let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
      let cert = Exact.solve inst in
      replay_analytic name inst cert;
      let machines = Machines.expand grid in
      let plan = Plan.of_cluster_schedule machines cert.Exact.schedule in
      let res = Exec.run ~msg:1_000_000 machines plan in
      (match
         Invariant.cross_check ~invariant:"opt-des-replay"
           ~expected:cert.Exact.makespan ~got:res.Exec.makespan
       with
      | Ok () -> ()
      | Error v -> Alcotest.failf "%s: %a" name Invariant.pp_violation v);
      (* And reliably, fault-free, on the fixed transport: bit-identical. *)
      let r = Exec.run_reliable ~msg:1_000_000 machines plan in
      Alcotest.(check bool)
        (name ^ ": reliable fault-free = certified")
        true
        (feq r.Exec.r_makespan cert.Exact.makespan))
    grids

let test_heuristics_never_beat_certificate () =
  List.iter
    (fun (seed, inst) ->
      let opt = Exact.makespan inst in
      List.iter
        (fun p ->
          let mk = Schedule.makespan inst (Engine.run p inst) in
          if not (mk >= opt || feq mk opt) then
            Alcotest.failf "seed=%d: %s %.17g beats certified optimum %.17g" seed
              (Policy.name p) mk opt)
        Policy.all)
    (Testutil.corpus ~n_range:(2, 8) ~seed:99 ~count:8 ())

(* ------------------------------------------------------------------ *)
(* Satellite 4: golden pin of the exact solver's schedules.  Any      *)
(* change to bounds, pruning order or tie-breaking that alters a      *)
(* certified schedule (not just its makespan) must show up here.      *)
(* ------------------------------------------------------------------ *)

let opt_corpus_digest = "001390e348ef84f38738f330d5f22daa"
let opt_corpus_bytes = 4_001

let opt_corpus () =
  List.concat_map
    (fun (tname, topo) ->
      List.filter_map
        (fun n ->
          match topo with
          | Optgap.Multilevel when n mod 2 <> 0 -> None
          | _ -> Some (tname, topo, n))
        [ 4; 5; 6 ])
    Optgap.topologies

let render_opt_corpus () =
  let buf = Buffer.create 65_536 in
  List.iter
    (fun (tname, topo, n) ->
      let seed = 4_000 + (17 * n) in
      let inst = Optgap.instance topo ~seed ~n ~msg:1_000_000 in
      let cert = Exact.solve inst in
      Printf.bprintf buf "== %s n=%d seed=%d ==\n" tname n seed;
      Printf.bprintf buf "makespan %.17g incumbent %s improved %d\n" cert.Exact.makespan
        cert.Exact.incumbent cert.Exact.stats.Exact.improved;
      Buffer.add_string buf (Format.asprintf "%a@." Schedule.pp cert.Exact.schedule))
    (opt_corpus ());
  buf

let test_opt_corpus_golden () =
  let buf = render_opt_corpus () in
  Alcotest.(check int) "opt corpus size" opt_corpus_bytes (Buffer.length buf);
  Alcotest.(check string)
    "opt corpus digest" opt_corpus_digest
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

let regen () =
  let buf = render_opt_corpus () in
  Printf.printf "let opt_corpus_digest = %S\nlet opt_corpus_bytes = %d\n"
    (Digest.to_hex (Digest.string (Buffer.contents buf)))
    (Buffer.length buf)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "regen" then regen ()
  else
    Alcotest.run "opt"
      [
        ( "policy-table",
          [
            Alcotest.test_case "one shared table" `Quick test_policy_table_shared;
            Alcotest.test_case "menu resolves everywhere" `Quick
              test_policy_menu_consistent;
          ] );
        ( "lower-bound",
          [
            Alcotest.test_case "below every heuristic" `Quick test_bound_below_heuristics;
            Alcotest.test_case "below DES on all transports" `Quick
              test_bound_below_des_transports;
          ] );
        ( "exact",
          [
            Alcotest.test_case "matches brute force" `Slow test_exact_matches_brute_force;
            Alcotest.test_case "certificate coherent" `Quick test_certificate_coherent;
            Alcotest.test_case "rejects oversize" `Quick test_exact_rejects_oversize;
            Alcotest.test_case "heuristics never beat it" `Quick
              test_heuristics_never_beat_certificate;
          ] );
        ( "traff",
          [
            Alcotest.test_case "informed recurrence" `Quick test_traff_informed_recurrence;
            Alcotest.test_case "schedule = closed form" `Quick
              test_traff_schedule_matches_closed_form;
            Alcotest.test_case "exact = Traff homogeneous" `Quick
              test_exact_equals_traff_on_homogeneous;
            Alcotest.test_case "heterogeneous detected" `Quick
              test_heterogeneous_not_homogeneous;
          ] );
        ( "replay",
          [
            Alcotest.test_case "all topologies" `Quick test_replay_all_topologies;
            Alcotest.test_case "DES at certified makespan" `Quick
              test_des_replay_certified;
          ] );
        ("golden", [ Alcotest.test_case "opt corpus" `Quick test_opt_corpus_golden ]);
      ]

(** Stable identity of a machine view's communication parameters.

    The broadcast service keys its memoized plan cache by topology: two
    requests may share a cached schedule only if they see the {e same}
    network.  [of_machines] condenses a {!Machines.t} into a 64-bit FNV-1a
    hash over the cluster assignment and, per directed rank pair, the
    link's latency and its gap probed at spread message sizes (64 B, 4 KB,
    64 KB, 1 MB) — every quantity the scheduling heuristics read.  Floats
    are hashed by IEEE-754 bit pattern, so the fingerprint is exactly as
    strict as the planner's own arithmetic: bit-equal parameters hash
    equal, any parameter perturbation (drift, re-measurement) moves it.

    Deterministic across runs and platforms; {e not} cryptographic. *)

type t = int64

val of_machines : Machines.t -> t
(** Fingerprint of the expanded machine view. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_string : t -> string
(** 16 lowercase hex digits. *)

val pp : Format.formatter -> t -> unit

(* Tests for gridb_sched: instances, the A/B state machine, schedules, all
   seven heuristics, lookaheads, optimality, the mixed strategy and the
   hit-rate machinery.  This is the paper's core contribution, so the
   property-based coverage is densest here. *)

module Instance = Gridb_sched.Instance
module State = Gridb_sched.State
module Schedule = Gridb_sched.Schedule
module Heuristics = Gridb_sched.Heuristics
module Lookahead = Gridb_sched.Lookahead
module Optimal = Gridb_sched.Optimal
module Mixed = Gridb_sched.Mixed
module Hit_rate = Gridb_sched.Hit_rate
module Rng = Gridb_util.Rng

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

let random_instance ?(n = 6) seed =
  let rng = Rng.create seed in
  Instance.random ~rng ~n Instance.table2_ranges

(* A tiny hand-built instance where the optimal structure is known:
   root 0, one fast relay 1 close to everything, one slow distant cluster 2. *)
let hand_instance () =
  let latency = [| [| 0.; 1.; 10. |]; [| 1.; 0.; 1. |]; [| 10.; 1.; 0. |] |] in
  let gap = [| [| 0.; 2.; 20. |]; [| 2.; 0.; 2. |]; [| 20.; 2.; 0. |] |] in
  let intra = [| 0.; 0.; 0. |] in
  Instance.v ~root:0 ~latency ~gap ~intra

(* --- Instance ------------------------------------------------------------ *)

let test_instance_validation () =
  Alcotest.check_raises "root range" (Invalid_argument "Instance.v: root out of range")
    (fun () ->
      ignore (Instance.v ~root:3 ~latency:[| [| 0. |] |] ~gap:[| [| 0. |] |] ~intra:[| 0. |]));
  Alcotest.check_raises "negative entry" (Invalid_argument "Instance.v: bad latency entry")
    (fun () ->
      ignore
        (Instance.v ~root:0 ~latency:[| [| -1. |] |] ~gap:[| [| 0. |] |] ~intra:[| 0. |]));
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Instance.v: latency height mismatch")
    (fun () ->
      ignore (Instance.v ~root:0 ~latency:[| [| 0. |]; [| 0. |] |] ~gap:[| [| 0. |] |] ~intra:[| 0. |]))

let test_instance_copies_inputs () =
  let latency = [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let gap = [| [| 0.; 2. |]; [| 2.; 0. |] |] in
  let inst = Instance.v ~root:0 ~latency ~gap ~intra:[| 0.; 0. |] in
  latency.(0).(1) <- 999.;
  check_feq "defensive copy" 1. inst.Instance.latency.(0).(1)

let test_instance_random_ranges =
  QCheck.Test.make ~name:"random instances respect Table 2 ranges" ~count:(Testutil.count 100)
    QCheck.(int_range 2 30)
    (fun n ->
      let rng = Rng.create n in
      let inst = Instance.random ~rng ~n Instance.table2_ranges in
      let ok = ref (inst.Instance.root = 0 && inst.Instance.n = n) in
      for i = 0 to n - 1 do
        let t = inst.Instance.intra.(i) in
        ok := !ok && t >= 20_000. && t <= 3_000_000.;
        for j = 0 to n - 1 do
          if i <> j then begin
            let l = inst.Instance.latency.(i).(j) and g = inst.Instance.gap.(i).(j) in
            ok :=
              !ok && l >= 1_000. && l <= 15_000. && g >= 100_000. && g <= 600_000.
              && feq l inst.Instance.latency.(j).(i)
              && feq g inst.Instance.gap.(j).(i)
          end
        done
      done;
      !ok)

let test_instance_of_grid_matches_components () =
  let grid = Gridb_topology.Grid5000.grid () in
  let msg = 1_000_000 in
  let inst = Instance.of_grid ~root:0 ~msg grid in
  check_feq "latency from grid" (Gridb_topology.Grid.latency grid 0 2)
    inst.Instance.latency.(0).(2);
  check_feq "gap from grid" (Gridb_topology.Grid.gap grid 0 2 msg) inst.Instance.gap.(0).(2);
  (* T of a singleton cluster is 0 *)
  check_feq "singleton T" 0. inst.Instance.intra.(3);
  (* T of Orsay-A equals the binomial cost model *)
  let c = Gridb_topology.Grid.cluster grid 0 in
  check_feq "binomial T"
    (Gridb_collectives.Cost.broadcast_time ~params:c.Gridb_topology.Cluster.intra
       ~size:c.Gridb_topology.Cluster.size ~msg ())
    inst.Instance.intra.(0)

let test_instance_of_machines () =
  let grid = Gridb_topology.Grid5000.grid () in
  let machines = Gridb_topology.Machines.expand grid in
  let inst = Instance.of_machines ~root:0 ~msg:1_000_000 machines in
  Alcotest.(check int) "one node per machine" 88 inst.Instance.n;
  Alcotest.(check bool) "all T zero" true
    (Array.for_all (fun t -> t = 0.) inst.Instance.intra);
  (* intra-cluster pair: Orsay params; inter: Table 3 *)
  check_feq "intra pair latency" 47.56 inst.Instance.latency.(0).(1);
  check_feq "inter pair latency" 12181.52 inst.Instance.latency.(0).(61);
  (* node-level scheduling never loses to hierarchical on the same grid *)
  let hier = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  Alcotest.(check bool) "flat ECEF <= hierarchical ECEF" true
    (Heuristics.makespan Heuristics.ecef inst
    <= Heuristics.makespan Heuristics.ecef hier +. 1e-6)

(* --- State ------------------------------------------------------------ *)

let test_state_initial () =
  let inst = random_instance 1 in
  let s = State.create inst in
  Alcotest.(check (list int)) "A = {root}" [ 0 ] (State.members_a s);
  Alcotest.(check int) "B has n-1" (inst.Instance.n - 1) (List.length (State.members_b s));
  Alcotest.(check int) "count_b" (inst.Instance.n - 1) (State.count_b s);
  Alcotest.(check bool) "not finished" false (State.finished s);
  check_feq "root ready at 0" 0. (State.ready s 0);
  check_feq "root avail at 0" 0. (State.avail s 0)

let test_state_send_semantics () =
  let inst = hand_instance () in
  let s = State.create inst in
  State.send s ~src:0 ~dst:1;
  (* start 0, gap 2, latency 1 *)
  check_feq "sender avail = gap" 2. (State.avail s 0);
  check_feq "receiver ready = g+L" 3. (State.ready s 1);
  Alcotest.(check bool) "1 in A" true (State.in_a s 1);
  State.send s ~src:0 ~dst:2;
  (* second send starts at 2 (gap exclusivity): ready_2 = 2 + 20 + 10 *)
  check_feq "serialised gap" 32. (State.ready s 2);
  Alcotest.(check bool) "finished" true (State.finished s)

let test_state_send_rejects () =
  let inst = hand_instance () in
  let s = State.create inst in
  Alcotest.check_raises "src in B" (Invalid_argument "State.send: src in B") (fun () ->
      State.send s ~src:1 ~dst:2);
  State.send s ~src:0 ~dst:1;
  Alcotest.check_raises "dst in A" (Invalid_argument "State.send: dst already in A")
    (fun () -> State.send s ~src:0 ~dst:1);
  Alcotest.check_raises "self" (Invalid_argument "State.send: src = dst") (fun () ->
      State.send s ~src:0 ~dst:0)

let test_state_earliest_arrival () =
  let inst = hand_instance () in
  let s = State.create inst in
  check_feq "0->1" 3. (State.earliest_arrival s ~src:0 ~dst:1);
  check_feq "0->2" 30. (State.earliest_arrival s ~src:0 ~dst:2);
  Alcotest.check_raises "dst in A" (Invalid_argument "State.earliest_arrival: dst in A")
    (fun () -> ignore (State.earliest_arrival s ~src:0 ~dst:0))

let test_state_iterators_match_lists () =
  let inst = random_instance ~n:10 3 in
  let s = State.create inst in
  State.send s ~src:0 ~dst:4;
  State.send s ~src:4 ~dst:7;
  let via_iter collect =
    let acc = ref [] in
    collect s (fun i -> acc := i :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list int)) "iter_a" (State.members_a s) (via_iter State.iter_a);
  Alcotest.(check (list int)) "iter_b" (State.members_b s) (via_iter State.iter_b)

(* --- Schedules: validity for every heuristic on random instances ------- *)

let all_heuristics_valid =
  QCheck.Test.make ~name:"every heuristic emits a valid schedule" ~count:(Testutil.count 150)
    QCheck.(pair (int_range 1 24) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      List.for_all
        (fun h ->
          let s = Heuristics.run h inst in
          match Schedule.validate inst s with
          | Ok () -> true
          | Error msg ->
              QCheck.Test.fail_reportf "%s invalid on n=%d seed=%d: %s" h.Heuristics.name
                n seed msg)
        Heuristics.all)

let schedules_are_deterministic =
  QCheck.Test.make ~name:"heuristics are deterministic" ~count:(Testutil.count 50)
    QCheck.(pair (int_range 2 15) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      List.for_all
        (fun h ->
          Schedule.makespan inst (Heuristics.run h inst)
          = Schedule.makespan inst (Heuristics.run h inst))
        Heuristics.all)

let makespan_lower_bound =
  (* Any schedule's makespan is at least the best single-hop reach of the
     farthest cluster plus its T, and at least max T. *)
  QCheck.Test.make ~name:"makespan respects trivial lower bounds" ~count:(Testutil.count 100)
    QCheck.(pair (int_range 2 20) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let max_t = Array.fold_left Float.max 0. inst.Instance.intra in
      List.for_all
        (fun h ->
          let ms = Heuristics.makespan h inst in
          ms >= max_t -. 1e-6)
        Heuristics.all)

let flat_tree_has_depth_one =
  QCheck.Test.make ~name:"flat tree never relays" ~count:(Testutil.count 50)
    QCheck.(pair (int_range 2 20) (int_bound 1_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let s = Heuristics.run Heuristics.flat_tree inst in
      Schedule.depth s = 1 && Schedule.senders s = [ 0 ])

let test_schedule_depth_and_senders () =
  let inst = hand_instance () in
  let s = Heuristics.run Heuristics.ecef inst in
  (* ECEF: 0->1 arrives at 3; then both 0 and 1 can send to 2:
     from 1: avail 3 + g 2 + L 1 = 6; from 0: avail 2 + 20 + 10 = 32.
     So 1 relays: depth 2. *)
  Alcotest.(check int) "depth 2" 2 (Schedule.depth s);
  Alcotest.(check (list int)) "senders 0 and 1" [ 0; 1 ] (Schedule.senders s);
  check_feq "makespan 6" 6. (Schedule.makespan inst s)

let test_flat_tree_order_dependence () =
  (* The paper: flat tree "depends on how the clusters list is arranged". *)
  let inst = hand_instance () in
  let s = Heuristics.run Heuristics.flat_tree inst in
  check_feq "flat sends in index order: ready_1" 3. s.Schedule.ready.(1);
  check_feq "flat second send" 32. s.Schedule.ready.(2);
  check_feq "flat makespan" 32. (Schedule.makespan inst s)

let test_completion_models_differ () =
  let inst = hand_instance () in
  (* give cluster 1 a long internal broadcast to expose the overlap *)
  let inst =
    Instance.v ~root:0 ~latency:inst.Instance.latency ~gap:inst.Instance.gap
      ~intra:[| 0.; 100.; 0. |]
  in
  let s = Heuristics.run Heuristics.ecef inst in
  (* cluster 1 receives at 3, relays until 5, then T=100:
     after-sends: 5 + 100 = 105; overlapped: max(3 + 100, 5) = 103. *)
  check_feq "after-sends" 105. (Schedule.makespan ~model:Schedule.After_sends inst s);
  check_feq "overlapped" 103. (Schedule.makespan ~model:Schedule.Overlapped inst s)

let test_validate_catches_corruption () =
  let inst = hand_instance () in
  let s = Heuristics.run Heuristics.ecef inst in
  let bad_ready = { s with Schedule.ready = Array.map (fun r -> r +. 1.) s.Schedule.ready } in
  Alcotest.(check bool) "corrupted ready detected" true
    (Result.is_error (Schedule.validate inst bad_ready));
  let bad_events =
    match s.Schedule.events with
    | e :: rest -> { s with Schedule.events = { e with Schedule.dst = e.Schedule.src } :: rest }
    | [] -> s
  in
  Alcotest.(check bool) "self send detected" true
    (Result.is_error (Schedule.validate inst bad_events))

let test_single_cluster_schedule () =
  let inst = Instance.v ~root:0 ~latency:[| [| 0. |] |] ~gap:[| [| 0. |] |] ~intra:[| 55. |] in
  List.iter
    (fun h ->
      let s = Heuristics.run h inst in
      Alcotest.(check int) "no events" 0 (Schedule.rounds s);
      check_feq "makespan = T" 55. (Schedule.makespan inst s))
    Heuristics.all

(* --- Heuristic semantics -------------------------------------------------- *)

let test_fef_picks_min_latency_first () =
  let inst = hand_instance () in
  let s = Heuristics.run Heuristics.fef inst in
  match s.Schedule.events with
  | first :: _ ->
      Alcotest.(check int) "first dst is closest" 1 first.Schedule.dst;
      Alcotest.(check int) "first src is root" 0 first.Schedule.src
  | [] -> Alcotest.fail "no events"

let test_ecef_la_reduces_to_ecef_with_none () =
  (* With the 'none' lookahead the ECEF-LA driver must equal plain ECEF. *)
  let h = Heuristics.ecef_with Lookahead.none in
  for seed = 0 to 20 do
    let inst = random_instance ~n:12 seed in
    check_feq
      (Printf.sprintf "seed %d" seed)
      (Heuristics.makespan Heuristics.ecef inst)
      (Heuristics.makespan h inst)
  done

let test_lookahead_values () =
  let inst = hand_instance () in
  let s = State.create inst in
  (* B = {1, 2}; for j=1, rest = {2}: min-edge = g_12 + L_12 = 3. *)
  check_feq "min-edge j=1" 3. (Lookahead.min_edge.Lookahead.eval s ~j:1);
  check_feq "min-edge j=2" 3. (Lookahead.min_edge.Lookahead.eval s ~j:2);
  (* with T: intra all 0 here, so identical *)
  check_feq "min-edge+T" 3. (Lookahead.min_edge_plus_t.Lookahead.eval s ~j:1);
  check_feq "max-edge+T" 3. (Lookahead.max_edge_plus_t.Lookahead.eval s ~j:1);
  check_feq "none" 0. (Lookahead.none.Lookahead.eval s ~j:1)

let test_lookahead_last_member_zero () =
  let inst = hand_instance () in
  let s = State.create inst in
  State.send s ~src:0 ~dst:1;
  (* B = {2}: no other member, all lookaheads collapse to 0. *)
  List.iter
    (fun la -> check_feq la.Lookahead.name 0. (la.Lookahead.eval s ~j:2))
    Lookahead.all

let test_lookahead_max_dominates_min =
  QCheck.Test.make ~name:"max-edge+T >= min-edge+T pointwise" ~count:(Testutil.count 100)
    QCheck.(pair (int_range 3 15) (int_bound 1_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let s = State.create inst in
      List.for_all
        (fun j ->
          Lookahead.max_edge_plus_t.Lookahead.eval s ~j
          >= Lookahead.min_edge_plus_t.Lookahead.eval s ~j -. 1e-9)
        (State.members_b s))

let test_ecef_lat_prefers_slow_cluster () =
  (* Cluster 1 is slow (huge T) and marginally farther than the fast
     clusters 2 and 3.  ECEF-LAT's max-lookahead penalises every receiver
     except the slow one (whose own T is excluded from its F), so LAT
     fetches the slow cluster first; ECEF-LAt sticks to the cheapest
     receiver. *)
  let latency =
    [|
      [| 0.; 1.1; 1.; 1. |];
      [| 1.1; 0.; 1.; 1. |];
      [| 1.; 1.; 0.; 1. |];
      [| 1.; 1.; 1.; 0. |];
    |]
  in
  let gap = Array.make_matrix 4 4 2. in
  for i = 0 to 3 do gap.(i).(i) <- 0. done;
  let inst = Instance.v ~root:0 ~latency ~gap ~intra:[| 0.; 1000.; 0.; 0. |] in
  let first_dst h =
    match (Heuristics.run h inst).Schedule.events with
    | e :: _ -> e.Schedule.dst
    | [] -> -1
  in
  Alcotest.(check int) "LAT first fetches the slow cluster" 1
    (first_dst Heuristics.ecef_lat_max);
  Alcotest.(check int) "LAt first fetches a fast cluster" 2
    (first_dst Heuristics.ecef_lat_min)

let test_bottom_up_targets_slowest () =
  let latency = [| [| 0.; 1.; 1. |]; [| 1.; 0.; 1. |]; [| 1.; 1.; 0. |] |] in
  let gap = [| [| 0.; 2.; 2. |]; [| 2.; 0.; 2. |]; [| 2.; 2.; 0. |] |] in
  let inst = Instance.v ~root:0 ~latency ~gap ~intra:[| 0.; 0.; 5000. |] in
  let s = Heuristics.run Heuristics.bottom_up inst in
  match s.Schedule.events with
  | e :: _ -> Alcotest.(check int) "slowest first" 2 e.Schedule.dst
  | [] -> Alcotest.fail "no events"

let test_by_name () =
  let name n = Option.map (fun h -> h.Heuristics.name) (Heuristics.by_name n) in
  (* "ecef-lat" matches both ECEF-LAt (min) and ECEF-LAT (max) up to case:
     it must resolve to neither rather than silently picking one. *)
  Alcotest.(check (option string)) "ecef-lat is ambiguous" None (name "ecef-lat");
  Alcotest.(check (option string)) "ECEF-LAt exact" (Some "ECEF-LAt") (name "ECEF-LAt");
  Alcotest.(check (option string)) "ECEF-LAT exact" (Some "ECEF-LAT") (name "ECEF-LAT");
  Alcotest.(check (option string))
    "unambiguous case-insensitive still works" (Some "BottomUp") (name "bottomup");
  (* Parameterised names round-trip through by_name. *)
  Alcotest.(check (option string))
    "ECEF-LA<lookahead>" (Some "ECEF-LA<min-edge+T>") (name "ECEF-LA<min-edge+T>");
  Alcotest.(check (option string))
    "mixed round-trips"
    (Some "Mixed<ECEF-LA|ECEF-LAT@10>")
    (name (Mixed.strategy ()).Heuristics.name);
  Alcotest.(check (option string))
    "mixed with parameterised component"
    (Some "Mixed<ECEF-LA<min-edge>|ECEF-LAT@7>")
    (name "Mixed<ECEF-LA<min-edge>|ECEF-LAT@7>");
  Alcotest.(check bool) "unknown" true (Heuristics.by_name "nope" = None);
  Alcotest.(check bool) "ECEF-LA<nope>" true (Heuristics.by_name "ECEF-LA<nope>" = None);
  Alcotest.(check int) "all has 7" 7 (List.length Heuristics.all);
  Alcotest.(check int) "family has 4" 4 (List.length Heuristics.ecef_family)

(* --- Optimal -------------------------------------------------------------- *)

let test_optimal_schedule_count () =
  Alcotest.(check int) "n=1" 1 (Optimal.schedule_count 1);
  Alcotest.(check int) "n=2" 1 (Optimal.schedule_count 2);
  Alcotest.(check int) "n=3" 4 (Optimal.schedule_count 3);
  Alcotest.(check int) "n=4" 36 (Optimal.schedule_count 4);
  Alcotest.(check int) "n=5" 576 (Optimal.schedule_count 5)

let optimal_not_beaten =
  QCheck.Test.make ~name:"no heuristic beats the optimal" ~count:(Testutil.count 60)
    QCheck.(pair (int_range 2 6) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let opt = Optimal.makespan inst in
      List.for_all (fun h -> Heuristics.makespan h inst >= opt -. 1e-6) Heuristics.all)

let optimal_schedule_is_valid_and_matches =
  QCheck.Test.make ~name:"optimal schedule valid and achieves its makespan" ~count:(Testutil.count 40)
    QCheck.(pair (int_range 2 6) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let s = Optimal.schedule inst in
      Result.is_ok (Schedule.validate inst s)
      && feq ~eps:1e-9 (Schedule.makespan inst s) (Optimal.makespan inst))

let test_optimal_rejects_large () =
  let inst = random_instance ~n:9 3 in
  Alcotest.check_raises "ceiling"
    (Invalid_argument "Optimal: 9 clusters exceeds the ceiling of 8") (fun () ->
      ignore (Optimal.makespan inst))

let test_optimal_two_clusters () =
  let inst = hand_instance () in
  (* Optimal for the hand instance is the ECEF schedule (relay through 1). *)
  check_feq "optimal = 6" 6. (Optimal.makespan inst)

(* --- Mixed strategy -------------------------------------------------------- *)

let test_mixed_dispatch () =
  let mixed = Mixed.strategy ~threshold:5 () in
  let small = random_instance ~n:4 11 in
  check_feq "small = ECEF-LA"
    (Heuristics.makespan Heuristics.ecef_la small)
    (Heuristics.makespan mixed small);
  let large = random_instance ~n:12 11 in
  check_feq "large = ECEF-LAT"
    (Heuristics.makespan Heuristics.ecef_lat_max large)
    (Heuristics.makespan mixed large)

(* --- Hit rate -------------------------------------------------------------- *)

let test_hit_rate_bookkeeping () =
  let instances = List.init 50 (fun i -> random_instance ~n:8 i) in
  let outcomes = Hit_rate.run_instances instances Heuristics.ecef_family in
  Alcotest.(check int) "4 outcomes" 4 (List.length outcomes);
  List.iter
    (fun o ->
      Alcotest.(check int) "iterations recorded" 50 o.Hit_rate.iterations;
      Alcotest.(check bool) "hits within range" true (o.Hit_rate.hits >= 0 && o.Hit_rate.hits <= 50))
    outcomes;
  (* at least one heuristic achieves the global minimum on every draw *)
  let total_hits = List.fold_left (fun acc o -> acc + o.Hit_rate.hits) 0 outcomes in
  Alcotest.(check bool) "every draw has a winner" true (total_hits >= 50)

let test_hit_rate_identical_heuristics_tie () =
  let instances = List.init 20 (fun i -> random_instance ~n:6 (100 + i)) in
  let outcomes = Hit_rate.run_instances instances [ Heuristics.ecef; Heuristics.ecef ] in
  match outcomes with
  | [ a; b ] ->
      Alcotest.(check int) "both always hit" 20 a.Hit_rate.hits;
      Alcotest.(check int) "both always hit (2)" 20 b.Hit_rate.hits
  | _ -> Alcotest.fail "expected two outcomes"

let test_hit_rate_rejects () =
  Alcotest.check_raises "no heuristics" (Invalid_argument "Hit_rate: no heuristics")
    (fun () -> ignore (Hit_rate.run_instances [ random_instance 0 ] []));
  Alcotest.check_raises "bad iterations" (Invalid_argument "Hit_rate.run: iterations < 1")
    (fun () ->
      ignore
        (Hit_rate.run ~rng:(Rng.create 0) ~iterations:0 ~n:3 Instance.table2_ranges
           Heuristics.all))

(* --- Bounds -------------------------------------------------------------- *)

let bounds_below_every_heuristic =
  QCheck.Test.make ~name:"combined bound never exceeds any heuristic" ~count:(Testutil.count 80)
    QCheck.(pair (int_range 2 20) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let lb = Gridb_sched.Bounds.combined inst in
      List.for_all (fun h -> Heuristics.makespan h inst >= lb -. 1e-6) Heuristics.all)

let bounds_below_optimal =
  QCheck.Test.make ~name:"combined bound never exceeds the optimum" ~count:(Testutil.count 40)
    QCheck.(pair (int_range 2 6) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      Gridb_sched.Bounds.combined inst <= Optimal.makespan inst +. 1e-6)

let test_bounds_hand_instance () =
  let inst = hand_instance () in
  (* reach: cluster 1 cheapest in-edge min(0->1: 3, 2->1: 3) = 3;
     cluster 2 cheapest min(0->2: 30, 1->2: 3) = 3. *)
  check_feq "reach root" 0. (Gridb_sched.Bounds.reach inst 0);
  check_feq "reach 1" 3. (Gridb_sched.Bounds.reach inst 1);
  check_feq "reach 2" 3. (Gridb_sched.Bounds.reach inst 2);
  (* fanout: gmin 2, lmin 1, tmin 0, ceil(log2 3) = 2 -> 5. *)
  check_feq "fanout" 5. (Gridb_sched.Bounds.fanout_bound inst);
  (* root gap: min over j of g+L+T = 3. *)
  check_feq "root gap" 3. (Gridb_sched.Bounds.root_gap_bound inst);
  check_feq "combined" 5. (Gridb_sched.Bounds.combined inst);
  (* optimal is 6: the bound is tight within 20% here *)
  check_feq "gap ratio of optimum" (6. /. 5.)
    (Gridb_sched.Bounds.gap_ratio inst (Optimal.makespan inst))

let test_bounds_single_cluster () =
  let inst = Instance.v ~root:0 ~latency:[| [| 0. |] |] ~gap:[| [| 0. |] |] ~intra:[| 42. |] in
  check_feq "combined = T_root" 42. (Gridb_sched.Bounds.combined inst);
  Alcotest.check_raises "negative makespan"
    (Invalid_argument "Bounds.gap_ratio: negative makespan") (fun () ->
      ignore (Gridb_sched.Bounds.gap_ratio inst (-1.)))

(* --- Refine ------------------------------------------------------------- *)

let test_refine_picks_roundtrip () =
  let inst = random_instance ~n:8 5 in
  let s = Heuristics.run Heuristics.ecef inst in
  let picks = Gridb_sched.Refine.picks_of_schedule s in
  match Gridb_sched.Refine.replay inst picks with
  | None -> Alcotest.fail "replay of a valid schedule failed"
  | Some s2 -> check_feq "same makespan" (Schedule.makespan inst s) (Schedule.makespan inst s2)

let test_refine_replay_rejects_invalid () =
  let inst = hand_instance () in
  Alcotest.(check bool) "sender not in A" true
    (Gridb_sched.Refine.replay inst [ (1, 2); (0, 1) ] = None);
  Alcotest.(check bool) "incomplete" true (Gridb_sched.Refine.replay inst [ (0, 1) ] = None);
  Alcotest.(check bool) "valid" true (Gridb_sched.Refine.replay inst [ (0, 1); (1, 2) ] <> None)

let refine_never_worse =
  QCheck.Test.make ~name:"local search never degrades a schedule" ~count:(Testutil.count 40)
    QCheck.(pair (int_range 2 10) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      List.for_all
        (fun h ->
          let s = Heuristics.run h inst in
          let refined = Gridb_sched.Refine.improve ~max_rounds:10 inst s in
          Result.is_ok (Schedule.validate inst refined)
          && Schedule.makespan inst refined <= Schedule.makespan inst s +. 1e-6)
        [ Heuristics.flat_tree; Heuristics.fef; Heuristics.ecef_lat_max ])

let refine_never_beats_optimal =
  QCheck.Test.make ~name:"local search stays above the optimum" ~count:(Testutil.count 30)
    QCheck.(pair (int_range 2 6) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let s = Gridb_sched.Refine.improve inst (Heuristics.run Heuristics.flat_tree inst) in
      Schedule.makespan inst s >= Optimal.makespan inst -. 1e-6)

let test_refine_improves_flat_tree () =
  (* On the hand instance, the flat tree (makespan 32) must be improved to
     the optimal relay schedule (6). *)
  let inst = hand_instance () in
  let flat = Heuristics.run Heuristics.flat_tree inst in
  check_feq "flat is 32" 32. (Schedule.makespan inst flat);
  let refined = Gridb_sched.Refine.improve inst flat in
  check_feq "refined reaches the optimum" 6. (Schedule.makespan inst refined);
  Alcotest.(check bool) "ratio < 1" true
    (Gridb_sched.Refine.improvement_ratio inst flat < 0.25)

let anneal_never_worse =
  QCheck.Test.make ~name:"annealing never degrades a schedule" ~count:(Testutil.count 20)
    QCheck.(pair (int_range 2 8) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let s = Heuristics.run Heuristics.flat_tree inst in
      let refined = Gridb_sched.Refine.anneal ~seed ~steps:400 inst s in
      Result.is_ok (Schedule.validate inst refined)
      && Schedule.makespan inst refined <= Schedule.makespan inst s +. 1e-6)

let test_anneal_escapes_hand_instance () =
  let inst = hand_instance () in
  let flat = Heuristics.run Heuristics.flat_tree inst in
  let refined = Gridb_sched.Refine.anneal ~seed:3 ~steps:500 inst flat in
  check_feq "reaches the optimum" 6. (Schedule.makespan inst refined)

let test_anneal_deterministic_per_seed () =
  let inst = random_instance ~n:7 77 in
  let s = Heuristics.run Heuristics.fef inst in
  let a = Schedule.makespan inst (Gridb_sched.Refine.anneal ~seed:5 inst s) in
  let b = Schedule.makespan inst (Gridb_sched.Refine.anneal ~seed:5 inst s) in
  check_feq "same seed same result" a b

(* --- Genetic ------------------------------------------------------------- *)

module Genetic = Gridb_sched.Genetic

let test_random_schedule_valid =
  QCheck.Test.make ~name:"random schedules are valid" ~count:(Testutil.count 50)
    QCheck.(pair (int_range 1 15) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let rng = Rng.create seed in
      Result.is_ok (Schedule.validate inst (Genetic.random_schedule ~rng inst)))

let ga_never_worse_than_best_seed =
  QCheck.Test.make ~name:"GA result <= best seeded heuristic" ~count:(Testutil.count 15)
    QCheck.(pair (int_range 2 9) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let config = { Genetic.default_config with generations = 8; population = 10; seed } in
      let best_heuristic =
        List.fold_left
          (fun acc h -> Float.min acc (Heuristics.makespan h inst))
          infinity Heuristics.all
      in
      let s = Genetic.search ~config inst in
      Result.is_ok (Schedule.validate inst s)
      && Schedule.makespan inst s <= best_heuristic +. 1e-6)

let ga_respects_optimal =
  QCheck.Test.make ~name:"GA never beats the brute-force optimum" ~count:(Testutil.count 10)
    QCheck.(pair (int_range 2 5) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let config = { Genetic.default_config with generations = 15; population = 12; seed } in
      Schedule.makespan inst (Genetic.search ~config inst)
      >= Optimal.makespan inst -. 1e-6)

let test_ga_improves_flat_seed () =
  (* Seeded only with the flat tree, the GA must find the relay schedule of
     the hand instance. *)
  let inst = hand_instance () in
  let flat = Heuristics.run Heuristics.flat_tree inst in
  let s =
    Genetic.search
      ~config:{ Genetic.default_config with generations = 20; population = 8; seed = 4 }
      ~seeds:[ flat ] inst
  in
  check_feq "finds the optimum" 6. (Schedule.makespan inst s)

let test_ga_rejects_bad_config () =
  let inst = random_instance ~n:4 1 in
  Alcotest.check_raises "population" (Invalid_argument "Genetic.search: population < 2")
    (fun () ->
      ignore (Genetic.search ~config:{ Genetic.default_config with population = 1 } inst));
  Alcotest.check_raises "mutation"
    (Invalid_argument "Genetic.search: mutation probability outside [0, 1]") (fun () ->
      ignore
        (Genetic.search
           ~config:{ Genetic.default_config with mutation_probability = 2. }
           inst))

(* --- Portfolio -------------------------------------------------------------- *)

let portfolio_dominates_members =
  QCheck.Test.make ~name:"portfolio achieves the member minimum" ~count:(Testutil.count 40)
    QCheck.(pair (int_range 2 12) (int_bound 10_000))
    (fun (n, seed) ->
      let inst = random_instance ~n seed in
      let choice = Gridb_sched.Portfolio.run inst in
      let member_min =
        List.fold_left
          (fun acc h -> Float.min acc (Heuristics.makespan h inst))
          infinity Heuristics.all
      in
      Float.abs (choice.Gridb_sched.Portfolio.makespan -. member_min) < 1e-9
      && Result.is_ok (Schedule.validate inst choice.Gridb_sched.Portfolio.schedule))

let test_portfolio_fields () =
  let inst = random_instance ~n:6 1 in
  let c = Gridb_sched.Portfolio.run inst in
  Alcotest.(check int) "evaluated all" 7 c.Gridb_sched.Portfolio.evaluated;
  Alcotest.(check bool) "winner named" true
    (Heuristics.by_name c.Gridb_sched.Portfolio.heuristic <> None);
  Alcotest.check_raises "empty list"
    (Invalid_argument "Portfolio.run: empty heuristic list") (fun () ->
      ignore (Gridb_sched.Portfolio.run ~heuristics:[] inst));
  Alcotest.(check bool) "evaluation cost positive" true
    (Gridb_sched.Portfolio.scheduling_evaluations 10 > 0.)

let test_portfolio_tie_break () =
  (* With two clusters every heuristic emits the single possible event, so
     all seven tie and the winner must be the first heuristic in list order. *)
  let inst = random_instance ~n:2 4 in
  let c = Gridb_sched.Portfolio.run inst in
  Alcotest.(check string) "first member wins ties"
    (List.hd Heuristics.all).Heuristics.name c.Gridb_sched.Portfolio.heuristic;
  check_feq "tie makespan" (Heuristics.makespan (List.hd Heuristics.all) inst)
    c.Gridb_sched.Portfolio.makespan

(* --- Gantt -------------------------------------------------------------- *)

let test_gantt_golden () =
  let inst =
    Instance.v ~root:0
      ~latency:[| [| 0.; 10.; 10. |]; [| 10.; 0.; 10. |]; [| 10.; 10.; 0. |] |]
      ~gap:[| [| 0.; 100.; 100. |]; [| 100.; 0.; 100. |]; [| 100.; 100.; 0. |] |]
      ~intra:[| 50.; 50.; 50. |]
  in
  let ev ~round ~src ~dst ~start =
    { Schedule.round; src; dst; start; sender_free = start +. 100.; arrival = start +. 110. }
  in
  let s =
    { Schedule.root = 0; n = 3;
      events = [ ev ~round:0 ~src:0 ~dst:1 ~start:0.; ev ~round:1 ~src:0 ~dst:2 ~start:100. ];
      ready = [| 0.; 110.; 210. |];
      busy_until = [| 200.; 110.; 210. |] }
  in
  let expected =
    String.concat "\n"
      [ "schedule gantt (root 0, makespan 260 us)";
        "c0   |>>>>>>>>>>>>>>>>>>>>>>>>>>>>>>########  |";
        "c1   |................########                |";
        "c2   |................................####### |";
        "      0                                  260 us";
        "      . waiting   > sending   # intra-cluster broadcast";
        "" ]
  in
  Alcotest.(check string) "exact render" expected
    (Gridb_sched.Gantt.render ~width:40 inst s)

let test_gantt_renders () =
  let inst = random_instance ~n:5 9 in
  let s = Heuristics.run Heuristics.ecef_la inst in
  let text = Gridb_sched.Gantt.render inst s in
  Alcotest.(check bool) "has rows for every cluster" true
    (List.length (String.split_on_char '\n' text) >= 5 + 3);
  Alcotest.(check bool) "mentions makespan" true (String.length text > 100);
  Alcotest.check_raises "narrow width" (Invalid_argument "Gantt.render: width < 10")
    (fun () -> ignore (Gridb_sched.Gantt.render ~width:5 inst s))

let test_gantt_flat_tree_structure () =
  let inst = hand_instance () in
  let s = Heuristics.run Heuristics.flat_tree inst in
  let text = Gridb_sched.Gantt.render ~width:32 inst s in
  (* the root row must contain sending glyphs, receivers waiting dots *)
  let lines = String.split_on_char '\n' text in
  let root_row = List.nth lines 1 in
  Alcotest.(check bool) "root sends" true (String.contains root_row '>');
  let c2_row = List.nth lines 3 in
  Alcotest.(check bool) "c2 waits" true (String.contains c2_row '.')

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "sched"
    [
      ( "instance",
        [
          quick "validation" test_instance_validation;
          quick "defensive copies" test_instance_copies_inputs;
          QCheck_alcotest.to_alcotest test_instance_random_ranges;
          quick "of_grid components" test_instance_of_grid_matches_components;
          quick "of_machines flat view" test_instance_of_machines;
        ] );
      ( "state",
        [
          quick "initial" test_state_initial;
          quick "send semantics" test_state_send_semantics;
          quick "send rejects" test_state_send_rejects;
          quick "earliest arrival" test_state_earliest_arrival;
          quick "iterators" test_state_iterators_match_lists;
        ] );
      ( "schedule",
        [
          QCheck_alcotest.to_alcotest all_heuristics_valid;
          QCheck_alcotest.to_alcotest schedules_are_deterministic;
          QCheck_alcotest.to_alcotest makespan_lower_bound;
          QCheck_alcotest.to_alcotest flat_tree_has_depth_one;
          quick "depth and senders" test_schedule_depth_and_senders;
          quick "flat order dependence" test_flat_tree_order_dependence;
          quick "completion models" test_completion_models_differ;
          quick "validate catches corruption" test_validate_catches_corruption;
          quick "single cluster" test_single_cluster_schedule;
        ] );
      ( "heuristics",
        [
          quick "FEF min latency first" test_fef_picks_min_latency_first;
          quick "LA<none> = ECEF" test_ecef_la_reduces_to_ecef_with_none;
          quick "lookahead values" test_lookahead_values;
          quick "lookahead last member" test_lookahead_last_member_zero;
          QCheck_alcotest.to_alcotest test_lookahead_max_dominates_min;
          quick "LAT prefers slow receiver" test_ecef_lat_prefers_slow_cluster;
          quick "BottomUp targets slowest" test_bottom_up_targets_slowest;
          quick "by_name" test_by_name;
        ] );
      ( "optimal",
        [
          quick "schedule count" test_optimal_schedule_count;
          QCheck_alcotest.to_alcotest optimal_not_beaten;
          QCheck_alcotest.to_alcotest optimal_schedule_is_valid_and_matches;
          quick "rejects large" test_optimal_rejects_large;
          quick "hand instance optimum" test_optimal_two_clusters;
        ] );
      ("mixed", [ quick "dispatch" test_mixed_dispatch ]);
      ( "bounds",
        [
          QCheck_alcotest.to_alcotest bounds_below_every_heuristic;
          QCheck_alcotest.to_alcotest bounds_below_optimal;
          quick "hand instance" test_bounds_hand_instance;
          quick "single cluster" test_bounds_single_cluster;
        ] );
      ( "refine",
        [
          quick "picks roundtrip" test_refine_picks_roundtrip;
          quick "replay rejects invalid" test_refine_replay_rejects_invalid;
          QCheck_alcotest.to_alcotest refine_never_worse;
          QCheck_alcotest.to_alcotest refine_never_beats_optimal;
          quick "improves flat tree" test_refine_improves_flat_tree;
          QCheck_alcotest.to_alcotest anneal_never_worse;
          quick "anneal escapes hand instance" test_anneal_escapes_hand_instance;
          quick "anneal deterministic" test_anneal_deterministic_per_seed;
        ] );
      ( "genetic",
        [
          QCheck_alcotest.to_alcotest test_random_schedule_valid;
          QCheck_alcotest.to_alcotest ga_never_worse_than_best_seed;
          QCheck_alcotest.to_alcotest ga_respects_optimal;
          quick "improves a flat seed" test_ga_improves_flat_seed;
          quick "rejects bad config" test_ga_rejects_bad_config;
        ] );
      ( "portfolio",
        [
          QCheck_alcotest.to_alcotest portfolio_dominates_members;
          quick "fields" test_portfolio_fields;
          quick "tie break" test_portfolio_tie_break;
        ] );
      ( "gantt",
        [
          quick "golden" test_gantt_golden;
          quick "renders" test_gantt_renders;
          quick "flat tree structure" test_gantt_flat_tree_structure;
        ] );
      ( "hit-rate",
        [
          quick "bookkeeping" test_hit_rate_bookkeeping;
          quick "identical heuristics tie" test_hit_rate_identical_heuristics_tie;
          quick "rejects" test_hit_rate_rejects;
        ] );
    ]

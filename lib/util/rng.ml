type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Variant-13 mix of Stafford: a 64-bit bijection, so distinct inputs give
   distinct outputs. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* SplitMix64 output function: advance by the golden gamma, then mix. *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* A second odd constant so indexed streams are not correlated with the
   parent's own output sequence. *)
let stream_gamma = 0xD1B54A32D192ED03L

let split t i =
  if i < 0 then invalid_arg "Rng.split: negative stream index";
  (* Pure in (t's current state, i): the parent is not advanced, so any
     worker can derive stream i without racing the others, and equal
     (state, i) pairs always yield the equal stream.  [mix] is a bijection
     and [stream_gamma] is odd, so for a fixed parent state the map
     i -> seed is injective: no two indices collide on a stream. *)
  let base = mix (Int64.add t.state golden_gamma) in
  { state = mix (Int64.add base (Int64.mul (Int64.of_int i) stream_gamma)) }

(* Top 53 bits, scaled to [0,1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low bits to avoid modulo bias. *)
  let mask =
    let rec widen m = if m >= bound - 1 then m else widen ((m lsl 1) lor 1) in
    widen 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) 0x7FFFFFFFFFFFFFFFL) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound = unit_float t *. bound

let float_in t lo hi =
  if hi < lo then invalid_arg "Rng.float_in: hi < lo";
  lo +. (unit_float t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if not (p >= 0. && p <= 1.) then invalid_arg "Rng.bernoulli: p outside [0, 1]";
  (* p = 0. never succeeds and p = 1. always does, but both still consume
     one draw so that branching on the probability cannot desynchronise a
     stream shared with other draw sites. *)
  unit_float t < p

let gaussian ?(mu = 0.) ?(sigma = 1.) t =
  (* Box-Muller; u1 must be nonzero for the logarithm. *)
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = unit_float t in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let lognormal ?(mu = 0.) ?(sigma = 1.) t = exp (gaussian ~mu ~sigma t)

let exponential t lambda =
  if lambda <= 0. then invalid_arg "Rng.exponential: lambda must be positive";
  let rec nonzero () =
    let u = unit_float t in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. lambda

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a

(** Deterministic open-loop request generation for the broadcast service.

    Requests arrive as a seeded Poisson process — open loop: the arrival
    times never depend on how fast the service drains them, so overload
    actually overloads (the scenario admission control exists for).
    Equal seeds give equal request streams. *)

type priority = Low | High
(** Service class of a request.  Degraded-mode admission
    ({!Admission.decide}) may shed [Low] traffic under overload; [High]
    traffic is only ever refused by the hard caps. *)

val priority_to_string : priority -> string
(** ["low"] / ["high"] — the form carried by [Shed] events. *)

val priority_of_string : string -> (priority, string) result

type request = {
  rid : int;  (** dense request id, 0-based arrival order *)
  at : float;  (** arrival time, simulated us *)
  root : int;  (** root cluster *)
  msg : int;  (** message size, bytes (pre-bucketing) *)
  policy : string;  (** scheduling heuristic name *)
  deadline : float;
      (** relative completion deadline, us after [at]; [infinity] = none *)
  priority : priority;
}

type mix = {
  roots : int array;  (** candidate root clusters *)
  msgs : int array;  (** candidate message sizes *)
  policies : string array;  (** candidate heuristic names *)
  deadlines : float array;
      (** candidate relative deadlines, us; [infinity] = no deadline *)
  high_frac : float;  (** probability a request is {!High} priority *)
}

val default_mix : Gridb_topology.Machines.t -> mix
(** Up to 3 root clusters, 64 KB / 1 MB messages, ECEF and ECEF-LA —
    a key space small enough that sustained streams revisit it (plan-cache
    hit rate > 0.5 on the default bench workload).  No deadlines
    ([deadlines = [| infinity |]]) and no high-priority traffic
    ([high_frac = 0.]): the generated stream is draw-for-draw identical to
    the pre-resilience generator's. *)

val generate :
  ?mix:mix ->
  seed:int ->
  rate:float ->
  duration:float ->
  Gridb_topology.Machines.t ->
  request list
(** Requests of a Poisson process with [rate] arrivals per simulated us
    over [(0, duration]], each drawing root/size/policy — and, when the
    mix carries more than one candidate, deadline and priority — uniformly
    from [mix] (default {!default_mix}); chronological, rids dense from 0.
    @raise Invalid_argument on non-positive [rate]/[duration], an empty or
    out-of-range mix, an unknown policy name, a non-positive deadline or a
    [high_frac] outside [0, 1]. *)

val mix_to_string : mix -> string
(** Render a mix as comma-separated [key=value] pairs with ['|']-separated
    list elements, e.g.
    [roots=0|1|2,msgs=65536|1000000,policies=ECEF|ECEF-LA,deadlines=inf,high=0].
    Round-trips through {!mix_of_string}. *)

val mix_of_string :
  Gridb_topology.Machines.t -> string -> (mix, string) result
(** Parse the {!mix_to_string} grammar; omitted keys keep their
    {!default_mix} values and ["default"] is the default mix itself.
    Errors name the offending key (the {!Gridb_des.Faults.of_string} /
    [Dynamics.of_string] error contract), e.g.
    [mix key "roots": bad integer "x"]. *)

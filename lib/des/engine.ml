type event = { time : float; seq : int; action : t -> unit }

and t = {
  queue : event Gridb_util.Binary_heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let compare_events a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let create () =
  {
    queue = Gridb_util.Binary_heap.create ~cmp:compare_events ();
    clock = 0.;
    next_seq = 0;
    processed = 0;
  }

let now t = t.clock

let schedule t ~time action =
  if time < t.clock then invalid_arg "Engine.schedule: time in the past";
  Gridb_util.Binary_heap.add t.queue { time; seq = t.next_seq; action };
  t.next_seq <- t.next_seq + 1

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~time:(t.clock +. delay) action

let step t =
  match Gridb_util.Binary_heap.pop t.queue with
  | None -> false
  | Some e ->
      t.clock <- e.time;
      t.processed <- t.processed + 1;
      e.action t;
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    match Gridb_util.Binary_heap.peek t.queue with
    | Some e when e.time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon

let pending t = Gridb_util.Binary_heap.length t.queue
let processed t = t.processed

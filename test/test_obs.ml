(* Tests for the gridb_obs observability bus: JSON round-trips, sink
   semantics, Null-sink bit-identity of instrumented producers, the
   record_trace compatibility path, and the stream consumers. *)

module Event = Gridb_obs.Event
module Sink = Gridb_obs.Sink
module Span = Gridb_obs.Span
module Profile = Gridb_obs.Profile
module Rng = Gridb_util.Rng
module Topology = Gridb_topology
module Machines = Topology.Machines
module Instance = Gridb_sched.Instance
module Sched_engine = Gridb_sched.Engine
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Faults = Gridb_des.Faults
module Des_engine = Gridb_des.Engine

let event = Alcotest.testable Event.pp Event.equal

(* --- Event JSON ------------------------------------------------------- *)

let sample_events =
  [
    Event.Send_start { src = 1; dst = 2; time = 3.5; msg = 1_000_000; intra = false; try_no = 0 };
    Event.Send_start { src = 0; dst = 7; time = 0.125; msg = 64; intra = true; try_no = 3 };
    Event.Send_end { src = 1; dst = 2; time = 10.25; arrival = 151.0625 };
    Event.Arrival { src = 1; dst = 2; time = 151.0625 };
    Event.Ack { src = 2; dst = 1; time = 160. };
    Event.Retransmit { src = 1; dst = 2; time = 400.; try_no = 1; rto = 512.5 };
    Event.Give_up { src = 1; dst = 2; time = 9999.75 };
    Event.Circuit_open { src = 1; dst = 2; time = 512.5 };
    Event.Circuit_close { src = 1; dst = 2; time = 2048.25 };
    Event.Reroute { dst = 2; old_parent = 1; new_parent = 5; time = 600.125 };
    Event.Timer_set { id = 4; time = 1.; fire_at = 100. };
    Event.Timer_fire { id = 4; time = 100. };
    Event.Timer_cancel { id = 5; time = 42. };
    Event.Msg_send { src = 0; dst = 3; tag = 7; size = 4096; time = 12. };
    Event.Msg_recv { src = 0; dst = 3; tag = 7; time = 29.5 };
    Event.Recv_timeout { rank = 3; time = 1000. };
    Event.Policy_round { round = 0; src = 0; dst = 4 };
    Event.Heap_op { op = Event.Rescore; receiver = 4; sender = 2 };
    Event.Heap_op { op = Event.Drop; receiver = 1; sender = 0 };
    Event.Cache_hit { key = "ECEF-LA/root=0/class=1048576" };
    Event.Cache_miss { key = "FlatTree/root=2/class=64" };
    Event.Strategy_selected { name = "ECEF-LAT"; predicted = 0.60098e6 };
    Event.Repair_splice { crashed = 1; replanned = 5 };
    Event.Shed { rid = 7; priority = "low"; reason = "backlog 1.25e6 us past watermark"; time = 512.5 };
    Event.Retry { rid = 3; attempt = 2; time = 4096.25 };
    Event.Deadline_miss { rid = 9; deadline = 2e5; finish = 300000.5 };
    Event.Counter { name = "pair_evaluations"; value = 37 };
    Event.Span_start { name = "schedule"; time = 17.0 };
    Event.Span_end { name = "schedule"; time = 43.0 };
  ]

let test_json_roundtrip_all_constructors () =
  List.iter
    (fun e ->
      match Event.of_json (Event.to_json e) with
      | Ok e' -> Alcotest.check event (Event.to_json e) e e'
      | Error msg -> Alcotest.failf "%s: %s" (Event.to_json e) msg)
    sample_events

let test_json_escaping () =
  let e = Event.Cache_hit { key = "a\"b\\c\nd\te\x01f" } in
  (match Event.of_json (Event.to_json e) with
  | Ok e' -> Alcotest.check event "escaped key round-trips" e e'
  | Error msg -> Alcotest.fail msg);
  Alcotest.(check bool)
    "json is one line" false
    (String.contains (Event.to_json e) '\n')

let test_json_rejects_garbage () =
  let bad s =
    match Event.of_json s with
    | Ok e -> Alcotest.failf "accepted %S as %s" s (Event.to_json e)
    | Error _ -> ()
  in
  bad "";
  bad "not json";
  bad "{}";
  bad "{\"ev\":\"no_such_event\"}";
  bad "{\"ev\":\"ack\",\"src\":1}"

let float_gen =
  QCheck.Gen.(
    oneof
      [
        float;
        map float_of_int int;
        oneofl [ 0.; -0.; 1e-300; 1.7976931348623157e308; 4.9e-324; 151.0625 ];
      ])

let test_json_float_bitexact =
  (* %.17g printing must reproduce every finite float bit for bit. *)
  QCheck.Test.make ~name:"json floats round-trip bit-exactly" ~count:(Testutil.count 1000)
    (QCheck.make float_gen) (fun t ->
      QCheck.assume (Float.is_finite t);
      match Event.of_json (Event.to_json (Event.Timer_fire { id = 0; time = t })) with
      | Ok (Event.Timer_fire { time; _ }) ->
          Int64.equal (Int64.bits_of_float time) (Int64.bits_of_float t)
      | _ -> false)

(* --- Sinks ------------------------------------------------------------ *)

let test_null_sink_disabled () =
  Alcotest.(check bool) "null disabled" false (Sink.enabled Sink.null);
  Alcotest.(check int) "null counts nothing" 0 (Sink.count Sink.null)

let test_memory_sink_order () =
  let mem = Sink.memory () in
  Alcotest.(check bool) "memory enabled" true (Sink.enabled mem);
  List.iter (Sink.emit mem) sample_events;
  Alcotest.(check (list event)) "chronological order" sample_events (Sink.events mem);
  Alcotest.(check int) "count" (List.length sample_events) (Sink.count mem)

let test_jsonl_sink_roundtrip () =
  let path = Filename.temp_file "gridb_obs" ".jsonl" in
  let n = Sink.with_jsonl path (fun js ->
      List.iter (Sink.emit js) sample_events;
      Sink.count js)
  in
  Alcotest.(check int) "count" (List.length sample_events) n;
  (match Sink.read path with
  | Ok events -> Alcotest.(check (list event)) "file round-trip" sample_events events
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* --- Spans ------------------------------------------------------------ *)

let test_span_wrap_pairs () =
  let mem = Sink.memory () in
  let v = Span.wrap mem "phase" (fun () -> 42) in
  Alcotest.(check int) "wrap returns" 42 v;
  match Sink.events mem with
  | [ Event.Span_start { name = n1; time = t1 }; Event.Span_end { name = n2; time = t2 } ]
    ->
      Alcotest.(check string) "start name" "phase" n1;
      Alcotest.(check string) "end name" "phase" n2;
      Alcotest.(check bool) "monotonic" true (t2 >= t1)
  | evs -> Alcotest.failf "expected start/end pair, got %d events" (List.length evs)

(* --- Producers: bit-identity and streams ------------------------------ *)

let random_grid seed =
  let rng = Rng.create seed in
  Topology.Generators.uniform_random ~rng ~n:8 Topology.Generators.default_random_spec

let multilevel_grid seed =
  let rng = Rng.create seed in
  Topology.Generators.multilevel ~rng
    { Topology.Generators.default_multilevel_spec with sites = 3 }

(* Null-sink runs must be bit-identical to unobserved ones, and observing
   with a Memory sink must not change the simulation either — over both
   topology generators. *)
let test_exec_observation_is_transparent =
  QCheck.Test.make ~name:"observed runs are bit-identical" ~count:(Testutil.count 30)
    QCheck.(pair (int_bound 1000) bool)
    (fun (seed, use_multilevel) ->
      let grid = if use_multilevel then multilevel_grid seed else random_grid seed in
      let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
      let machines = Machines.expand grid in
      let exec obs =
        let schedule = Sched_engine.run ?obs Gridb_sched.Policy.ecef_la inst in
        let plan = Plan.of_cluster_schedule machines schedule in
        let rng = Rng.create seed in
        Exec.run ~noise:(Gridb_des.Noise.Lognormal 0.1) ~rng ?obs machines plan
      in
      let plain = exec None in
      let nulled = exec (Some Sink.null) in
      let observed = exec (Some (Sink.memory ())) in
      plain.Exec.arrival = nulled.Exec.arrival
      && plain.Exec.arrival = observed.Exec.arrival
      && plain.Exec.makespan = nulled.Exec.makespan
      && plain.Exec.makespan = observed.Exec.makespan
      && plain.Exec.transmissions = observed.Exec.transmissions)

let test_reliable_observation_is_transparent =
  QCheck.Test.make ~name:"observed reliable runs are bit-identical" ~count:(Testutil.count 20)
    QCheck.(int_bound 1000)
    (fun seed ->
      let grid = random_grid seed in
      let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
      let machines = Machines.expand grid in
      let plan =
        Plan.of_cluster_schedule machines (Sched_engine.run Gridb_sched.Policy.ecef_la inst)
      in
      let n = Machines.count machines in
      let spec = { Faults.none with Faults.loss = 0.1 } in
      let reliable obs =
        let faults = Faults.create ~seed ~n spec in
        let rng = Rng.create seed in
        Exec.run_reliable ~rng ~faults ~retries:3 ?obs machines plan
      in
      let plain = reliable None in
      let observed = reliable (Some (Sink.memory ())) in
      (* never-reached ranks hold nan: compare arrivals bit for bit *)
      let same_bits a b =
        Array.length a = Array.length b
        && Array.for_all2
             (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
             a b
      in
      same_bits plain.Exec.r_arrival observed.Exec.r_arrival
      && plain.Exec.r_makespan = observed.Exec.r_makespan
      && plain.Exec.retransmissions = observed.Exec.retransmissions
      && plain.Exec.gave_up = observed.Exec.gave_up)

(* The legacy record_trace path and an external Memory sink must describe
   the same transmissions. *)
let test_record_trace_compat () =
  let grid = Topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let machines = Machines.expand grid in
  let plan =
    Plan.of_cluster_schedule machines (Sched_engine.run Gridb_sched.Policy.ecef_la inst)
  in
  let legacy = Exec.run ~record_trace:true machines plan in
  let mem = Sink.memory () in
  let via_sink = Exec.run ~obs:mem machines plan in
  Alcotest.(check int) "legacy trace populated"
    legacy.Exec.transmissions
    (List.length legacy.Exec.trace);
  Alcotest.(check (list (pair int int)))
    "same transmissions, same order"
    (List.map (fun t -> (t.Gridb_des.Trace.src, t.Gridb_des.Trace.dst)) legacy.Exec.trace)
    (Gridb_des.Trace.of_events (Sink.events mem)
    |> List.rev
    |> List.sort (fun (a : Gridb_des.Trace.transmission) b ->
           Float.compare a.arrival b.arrival)
    |> List.map (fun t -> (t.Gridb_des.Trace.src, t.Gridb_des.Trace.dst)));
  Alcotest.(check bool) "no-trace run has empty trace" true (via_sink.Exec.trace = [])

let test_reliable_trace_compat () =
  (* Old and new paths of run_reliable return identical trace lists even
     under faults (retransmissions included). *)
  let grid = random_grid 7 in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let machines = Machines.expand grid in
  let plan =
    Plan.of_cluster_schedule machines (Sched_engine.run Gridb_sched.Policy.ecef_la inst)
  in
  let n = Machines.count machines in
  let spec = { Faults.none with Faults.loss = 0.15 } in
  let run_with obs =
    Exec.run_reliable ~rng:(Rng.create 7)
      ~faults:(Faults.create ~seed:7 ~n spec)
      ~record_trace:true ?obs machines plan
  in
  let legacy = run_with None in
  let mem = Sink.memory () in
  let observed = run_with (Some mem) in
  Alcotest.(check bool) "trace non-empty" true (legacy.Exec.r_trace <> []);
  Alcotest.(check bool) "identical traces" true
    (legacy.Exec.r_trace = observed.Exec.r_trace);
  (* The observed stream contains exactly the transmissions of the trace. *)
  Alcotest.(check int) "sink sees every transmission"
    legacy.Exec.r_transmissions
    (List.length (Gridb_des.Trace.of_events (Sink.events mem)))

(* JSONL round-trip of a full seeded faulty reliable run. *)
let test_jsonl_faulty_run_roundtrip () =
  let grid = Topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let machines = Machines.expand grid in
  let plan =
    Plan.of_cluster_schedule machines (Sched_engine.run Gridb_sched.Policy.ecef_la inst)
  in
  let n = Machines.count machines in
  let spec = { Faults.none with Faults.loss = 0.1 } in
  let run_with obs =
    Exec.run_reliable ~rng:(Rng.create 11)
      ~faults:(Faults.create ~seed:11 ~n spec)
      ~obs machines plan
  in
  let mem = Sink.memory () in
  ignore (run_with mem);
  let path = Filename.temp_file "gridb_obs_run" ".jsonl" in
  ignore (Sink.with_jsonl path (fun js -> ignore (run_with js)));
  (match Sink.read path with
  | Ok from_file ->
      Alcotest.(check (list event)) "file stream equals memory stream"
        (Sink.events mem) from_file
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

(* --- Sched engine events ---------------------------------------------- *)

let test_sched_counters_on_bus () =
  let grid = Topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let mem = Sink.memory () in
  let s, stats = Sched_engine.run_stats ~obs:mem Gridb_sched.Policy.ecef_lat_max inst in
  let events = Sink.events mem in
  let counter name =
    List.find_map
      (function
        | Event.Counter { name = n; value } when n = name -> Some value | _ -> None)
      events
  in
  Alcotest.(check (option int)) "pair_evaluations"
    (Some stats.Sched_engine.pair_evaluations)
    (counter "pair_evaluations");
  Alcotest.(check (option int)) "lookahead_terms"
    (Some stats.Sched_engine.lookahead_terms)
    (counter "lookahead_terms");
  Alcotest.(check (option int)) "rescored"
    (Some stats.Sched_engine.rescored)
    (counter "rescored");
  let rounds =
    List.filter (function Event.Policy_round _ -> true | _ -> false) events
  in
  Alcotest.(check int) "one round per scheduled event"
    (List.length s.Gridb_sched.Schedule.events)
    (List.length rounds)

let test_sched_rounds_match_schedule_both_modes () =
  let grid = random_grid 3 in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let picks mode =
    let mem = Sink.memory () in
    ignore (Sched_engine.run ~mode ~obs:mem Gridb_sched.Policy.ecef_la inst);
    List.filter_map
      (function Event.Policy_round { src; dst; _ } -> Some (src, dst) | _ -> None)
      (Sink.events mem)
  in
  Alcotest.(check (list (pair int int)))
    "naive and incremental emit identical picks" (picks `Naive) (picks `Incremental)

(* --- DES engine timer events ------------------------------------------ *)

let test_engine_timer_events () =
  let mem = Sink.memory () in
  let engine = Des_engine.create ~obs:mem () in
  let fired = ref [] in
  let t1 = Des_engine.schedule_timer engine ~time:10. (fun _ -> fired := 1 :: !fired) in
  let t2 = Des_engine.schedule_timer engine ~time:20. (fun _ -> fired := 2 :: !fired) in
  ignore t1;
  Des_engine.cancel engine t2;
  Des_engine.run engine;
  Alcotest.(check (list int)) "only live timer fired" [ 1 ] !fired;
  let kinds =
    List.map
      (function
        | Event.Timer_set { id; _ } -> Printf.sprintf "set:%d" id
        | Event.Timer_cancel { id; _ } -> Printf.sprintf "cancel:%d" id
        | Event.Timer_fire { id; _ } -> Printf.sprintf "fire:%d" id
        | e -> Event.to_json e)
      (Sink.events mem)
  in
  Alcotest.(check (list string))
    "timer lifecycle on the bus"
    [ "set:0"; "set:1"; "cancel:1"; "fire:0" ]
    kinds

(* --- simMPI events ---------------------------------------------------- *)

let test_mpi_events () =
  let machines = Machines.expand (Topology.Grid5000.grid ()) in
  let mem = Sink.memory () in
  let program ~rank ~size:_ =
    if rank = 0 then Gridb_mpi.Runtime.Api.send ~tag:9 ~dst:1 ~msg_size:1024 ()
    else if rank = 1 then begin
      ignore (Gridb_mpi.Runtime.Api.recv ~src:0 ());
      (* nothing else arrives: this deadline must expire *)
      assert (Gridb_mpi.Runtime.Api.recv_timeout ~timeout:50. () = None)
    end
  in
  ignore (Gridb_mpi.Runtime.run_exn ~obs:mem machines program);
  let events = Sink.events mem in
  let has p = List.exists p events in
  Alcotest.(check bool) "msg_send" true
    (has (function Event.Msg_send { src = 0; dst = 1; tag = 9; size = 1024; _ } -> true | _ -> false));
  Alcotest.(check bool) "msg_recv" true
    (has (function Event.Msg_recv { src = 0; dst = 1; tag = 9; _ } -> true | _ -> false));
  Alcotest.(check bool) "recv_timeout" true
    (has (function Event.Recv_timeout { rank = 1; _ } -> true | _ -> false))

(* --- MagPIe events ---------------------------------------------------- *)

let test_magpie_cache_and_strategy_events () =
  let machines = Machines.expand (Topology.Grid5000.grid ()) in
  let mem = Sink.memory () in
  let tuning = Gridb_magpie.Tuning.create ~obs:mem machines in
  let strategy =
    Gridb_magpie.Bcast.Adaptive
      [ Gridb_sched.Heuristics.ecef_la; Gridb_sched.Heuristics.flat_tree ]
  in
  ignore (Gridb_magpie.Bcast.execute tuning strategy ~root:0 ~msg:1_000_000);
  ignore (Gridb_magpie.Bcast.execute tuning strategy ~root:0 ~msg:1_000_000);
  let events = Sink.events mem in
  let count p = List.length (List.filter p events) in
  Alcotest.(check bool) "some misses" true
    (count (function Event.Cache_miss _ -> true | _ -> false) > 0);
  Alcotest.(check bool) "repeat broadcast hits" true
    (count (function Event.Cache_hit _ -> true | _ -> false) > 0);
  Alcotest.(check int) "one selection per adaptive execute" 2
    (count (function Event.Strategy_selected _ -> true | _ -> false));
  Alcotest.(check bool) "executor events flow to the same sink" true
    (count (function Event.Send_start _ -> true | _ -> false) > 0)

(* --- Robustness repair event ------------------------------------------ *)

let test_repair_splice_event () =
  let mem = Sink.memory () in
  let metrics =
    Gridb_experiments.Robustness.run ~seed:2 ~obs:mem
      ~spec:{ Faults.none with Faults.crash_rate = 5e-6 }
      (Topology.Grid5000.grid ())
  in
  let splices =
    List.filter_map
      (function Event.Repair_splice { replanned; _ } -> Some replanned | _ -> None)
      (Sink.events mem)
  in
  if metrics.Gridb_experiments.Robustness.repair_invoked then
    Alcotest.(check (list int)) "splice event mirrors metrics"
      [ metrics.Gridb_experiments.Robustness.repairs ]
      splices
  else Alcotest.(check (list int)) "no splice without repair" [] splices

(* --- Consumers -------------------------------------------------------- *)

let profiled_events () =
  let grid = Topology.Grid5000.grid () in
  let mem = Sink.memory () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let schedule =
    Span.wrap mem "schedule" (fun () ->
        Sched_engine.run ~obs:mem Gridb_sched.Policy.ecef_la inst)
  in
  let machines = Machines.expand grid in
  let r = Exec.run ~obs:mem machines (Plan.of_cluster_schedule machines schedule) in
  (Sink.events mem, r)

let test_profile_rollup () =
  let events, r = profiled_events () in
  let p = Profile.of_events events in
  Alcotest.(check int) "sends" r.Exec.transmissions p.Profile.sends;
  Alcotest.(check int) "no retransmits" 0 p.Profile.retransmits;
  Alcotest.(check (float 1e-6)) "makespan from stream" r.Exec.makespan p.Profile.makespan_us;
  Alcotest.(check bool) "schedule span measured" true (p.Profile.schedule_us >= 0.);
  Alcotest.(check bool) "transmit time accumulated" true (p.Profile.transmit_us > 0.);
  Alcotest.(check bool) "intra time accumulated" true (p.Profile.intra_us > 0.);
  Alcotest.(check bool) "counters surfaced" true
    (List.mem_assoc "pair_evaluations" p.Profile.counters);
  let rendered = Profile.render p in
  Alcotest.(check bool) "render mentions makespan" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       m = 0 || go 0
     in
     contains rendered "makespan")

let test_tagged_json_roundtrip () =
  List.iter
    (fun e ->
      let tagged = Event.tag ~sid:7 e in
      match Event.of_json (Event.to_json tagged) with
      | Ok e' -> Alcotest.check event (Event.to_json tagged) tagged e'
      | Error msg -> Alcotest.failf "%s: %s" (Event.to_json tagged) msg)
    sample_events;
  (* The wire form is the inner object plus one flat "sid" field. *)
  let inner = Event.Arrival { src = 1; dst = 2; time = 3. } in
  let json = Event.to_json (Event.tag ~sid:42 inner) in
  Alcotest.(check bool) "flat sid field" true
    (let contains s sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains json "\"sid\":42");
  (* tag never nests: re-tagging replaces the sid. *)
  let retagged = Event.tag ~sid:9 (Event.tag ~sid:42 inner) in
  Alcotest.(check (option int)) "latest sid wins" (Some 9) (Event.sid retagged);
  Alcotest.check event "untag strips the wrapper" inner (Event.untag retagged)

let test_profile_sessions_rollup () =
  let send sid src dst t0 gap arrival =
    [
      Event.tag ~sid
        (Event.Send_start { src; dst; time = t0; msg = 64; intra = false; try_no = 0 });
      Event.tag ~sid (Event.Send_end { src; dst; time = t0 +. gap; arrival });
      Event.tag ~sid (Event.Arrival { src; dst; time = arrival });
    ]
  in
  let events =
    send 0 0 1 0. 100. 110. @ send 1 2 3 50. 40. 95. @ send 0 1 2 110. 100. 220.
  in
  let p = Profile.of_events events in
  (match p.Profile.sessions with
  | [ s0; s1 ] ->
      Alcotest.(check int) "first-seen order" 0 s0.Profile.sid;
      Alcotest.(check int) "session 0 sends" 2 s0.Profile.s_sends;
      Alcotest.(check (float 1e-9)) "session 0 busy" 200. s0.Profile.s_busy_us;
      Alcotest.(check (float 1e-9)) "session 0 makespan" 220. s0.Profile.s_makespan_us;
      Alcotest.(check int) "session 1 sid" 1 s1.Profile.sid;
      Alcotest.(check int) "session 1 sends" 1 s1.Profile.s_sends;
      Alcotest.(check (float 1e-9)) "session 1 makespan" 95. s1.Profile.s_makespan_us
  | other -> Alcotest.failf "expected 2 session rows, got %d" (List.length other));
  (* The global rollup still sees through the tags. *)
  Alcotest.(check int) "global sends" 3 p.Profile.sends;
  (* Untagged streams produce no session rows. *)
  let untagged = List.map Event.untag events in
  Alcotest.(check int) "untagged stream has no rows" 0
    (List.length (Profile.of_events untagged).Profile.sessions)

let test_gantt_events_renders () =
  let events, _ = profiled_events () in
  let s = Gridb_sched.Gantt.render_events events in
  Alcotest.(check bool) "non-empty" true (String.length s > 100);
  Alcotest.(check bool) "has send glyph" true (String.contains s '>');
  Alcotest.(check bool) "has arrival glyph" true (String.contains s '*');
  Alcotest.check_raises "narrow width"
    (Invalid_argument "Gantt.render_events: width < 10") (fun () ->
      ignore (Gridb_sched.Gantt.render_events ~width:3 events))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "obs"
    [
      ( "event-json",
        [
          quick "all constructors round-trip" test_json_roundtrip_all_constructors;
          quick "string escaping" test_json_escaping;
          quick "rejects garbage" test_json_rejects_garbage;
          QCheck_alcotest.to_alcotest test_json_float_bitexact;
        ] );
      ( "sinks",
        [
          quick "null is disabled" test_null_sink_disabled;
          quick "memory preserves order" test_memory_sink_order;
          quick "jsonl file round-trip" test_jsonl_sink_roundtrip;
          quick "span wrap pairs" test_span_wrap_pairs;
        ] );
      ( "transparency",
        [
          QCheck_alcotest.to_alcotest test_exec_observation_is_transparent;
          QCheck_alcotest.to_alcotest test_reliable_observation_is_transparent;
        ] );
      ( "compat",
        [
          quick "record_trace equals sink view" test_record_trace_compat;
          quick "reliable traces identical" test_reliable_trace_compat;
          quick "jsonl of faulty run round-trips" test_jsonl_faulty_run_roundtrip;
        ] );
      ( "producers",
        [
          quick "sched counters on bus" test_sched_counters_on_bus;
          quick "rounds match in both modes" test_sched_rounds_match_schedule_both_modes;
          quick "engine timer lifecycle" test_engine_timer_events;
          quick "simMPI message plane" test_mpi_events;
          quick "magpie cache and strategy" test_magpie_cache_and_strategy_events;
          quick "repair splice" test_repair_splice_event;
        ] );
      ( "consumers",
        [
          quick "profile rollup" test_profile_rollup;
          quick "tagged events round-trip" test_tagged_json_roundtrip;
          quick "profile per-session rollup" test_profile_sessions_rollup;
          quick "gantt from events" test_gantt_events_renders;
        ] );
    ]

(** Robustness scorecard: broadcast quality under injected faults.

    Makespan is the paper's only axis; this module adds degradation under a
    {!Gridb_des.Faults} model as a second, measured one.  One evaluation
    schedules a grid with a policy, executes the plan twice on the DES —
    fault-free ({!Gridb_des.Exec.run}, the baseline) and reliably under
    faults ({!Gridb_des.Exec.run_reliable}, with a selectable
    {!Gridb_des.Exec.transport}) — and, when a coordinator crashed,
    additionally invokes {!Gridb_sched.Repair} on the cluster-level
    schedule: once on the nominal instance, and (for adaptive transports)
    once on the instance rescaled by the live estimator's per-link quality,
    so the replanned makespan reflects measured rather than nominal
    numbers.  The resulting metrics (delivery ratio, makespan inflation,
    retransmission/reroute counts, repair work) feed
    [gridsched simulate --faults] and the [bench/faults] sweep. *)

type metrics = {
  policy : string;
  spec : Gridb_des.Faults.spec;
  dyn : Gridb_des.Dynamics.spec;  (** dynamics model, {!Gridb_des.Dynamics.none} if off *)
  transport : string;  (** {!Gridb_des.Exec.transport_to_string} *)
  retries : int;
  seed : int;
  total_ranks : int;
      (** planning-time ranks plus joins that arrived within the horizon *)
  delivered : int;  (** ranks holding the message at quiescence *)
  delivery_ratio : float;  (** delivered / total_ranks *)
  crashed_ranks : int;
  left_ranks : int;  (** ranks departed (dynamics) within the horizon *)
  joined_ranks : int;  (** joins that arrived within the horizon *)
  partition_drift : float option;
      (** [1 - Rand index] between Lowekamp partitions of the nominal and
          the estimator's live machine latency matrices; [None] for
          non-adaptive transports (no estimator) *)
  baseline_makespan : float;  (** fault-free DES makespan, us *)
  makespan : float;  (** reliable-run makespan over delivered ranks, us *)
  inflation : float;  (** makespan / baseline_makespan *)
  transmissions : int;  (** data transmissions incl. retransmissions *)
  retransmissions : int;
  acks : int;
  gave_up : int;  (** edges abandoned for good (retry or reroute budget) *)
  reroutes : int;  (** orphan re-parentings (adaptive + reroute only) *)
  circuit_opens : int;  (** breaker open transitions (adaptive only) *)
  repair_invoked : bool;  (** a cluster coordinator crashed *)
  repairs : int;  (** replanned inter-cluster transmissions *)
  repaired_makespan : float option;
      (** analytic completion of the {!Gridb_sched.Repair}-patched
          cluster schedule, us; [None] when repair was not invoked *)
  estimated_repaired_makespan : float option;
      (** same repair replanned on the estimator-rescaled instance
          (observed SRTT over nominal round trip on coordinator links);
          [None] unless repair was invoked under an adaptive transport *)
  summary : Gridb_des.Exec.reliable_summary option;
      (** {!Gridb_des.Exec.mean_reliable} over [repetitions] independent
          fault draws; [None] unless [repetitions] was given *)
}

val estimated_instance :
  Gridb_des.Adaptive.t ->
  Gridb_topology.Machines.t ->
  Gridb_sched.Instance.t ->
  Gridb_sched.Instance.t
(** Cluster-level estimated instance: the estimator's per-link quality on
    the coordinator-to-coordinator links rescales the nominal
    inter-cluster gap and latency matrices — the live measured view lifted
    to the scheduling layer, which {!Gridb_sched.Repair} and
    {!Dynamics.run} replan on. *)

val partition_drift : Gridb_des.Adaptive.t -> Gridb_topology.Machines.t -> float
(** [1 - Rand index] between the Lowekamp partition of the nominal machine
    latency matrix and that of the estimator's live
    {!Gridb_des.Adaptive.estimated_latency_matrix} (planning-time ranks
    only).  0. when the estimated clustering still matches plan time. *)

val run :
  ?policy:Gridb_sched.Policy.t ->
  ?msg:int ->
  ?retries:int ->
  ?seed:int ->
  ?noise:Gridb_des.Noise.t ->
  ?obs:Gridb_obs.Sink.t ->
  ?transport:Gridb_des.Exec.transport ->
  ?dyn:Gridb_des.Dynamics.spec ->
  ?repetitions:int ->
  ?jobs:int ->
  spec:Gridb_des.Faults.spec ->
  Gridb_topology.Grid.t ->
  metrics
(** One robustness evaluation on [grid] (root cluster 0).  Defaults:
    {!Gridb_sched.Policy.ecef_la}, 1 MB, 5 retries, seed 0, [Exact] noise,
    [Fixed] transport.  [seed] seeds both the fault model and (when [noise]
    is not [Exact]) the jitter stream of the reliable run; the baseline is
    always noise-free.  [dyn] (default {!Gridb_des.Dynamics.none}) adds a
    {!Gridb_des.Dynamics} model on a stream tagged off [seed] (adding
    churn never perturbs the fault draws): drift multiplies the link
    parameters, departures halt ranks like crashes (and count into the
    repair crash vector when a coordinator leaves), joins extend the
    population and are adopted under rerouting transports.  With [repetitions] the scorecard also carries a
    {!Gridb_des.Exec.mean_reliable} summary over that many independent
    fault draws (seeded from [seed]); [jobs] (default 1) fans those
    repetitions out over a {!Gridb_util.Pool} with a bit-identical
    summary at every worker count.

    [obs] (default {!Gridb_obs.Sink.null}) observes the scheduling pass and
    the {e faulty reliable} run (not the fault-free baseline, which would
    duplicate every send on the stream), and receives one [Repair_splice]
    event when a coordinator crash triggers schedule repair. *)

val render : metrics -> string
(** Two-column text table of the scorecard. *)

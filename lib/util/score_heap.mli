(** Monomorphic binary heap of (score, id) pairs in parallel unboxed
    arrays.

    The scheduling engine ([Gridb_sched.Engine]) keeps one candidate heap
    per receiver on its hot path; a polymorphic heap would box every float
    and call a comparison closure per sift step.  This variant stores
    scores in a [float array] (flat, unboxed) and compares inline.

    Equal scores always break towards the smaller id, in both orders, so
    heap tops are deterministic — the engine relies on this to reproduce
    the naive scan's ascending-(i, j) tie-breaking exactly. *)

type order =
  | Min  (** smallest score first *)
  | Max  (** largest score first *)

type t

val create : ?capacity:int -> order:order -> unit -> t
(** Empty heap.  [capacity] pre-sizes the arrays (default 16).
    @raise Invalid_argument if [capacity < 1]. *)

val length : t -> int
val is_empty : t -> bool
val clear : t -> unit

val push : t -> float -> int -> unit
(** [push t score id]: O(log n). *)

val top_score : t -> float
(** @raise Invalid_argument on an empty heap. *)

val top_id : t -> int
(** @raise Invalid_argument on an empty heap. *)

val second_score : t -> float
(** Score of the second-best element — the better child of the root — or
    the order's identity ([infinity] for [Min], [neg_infinity] for [Max])
    when fewer than two elements remain.  O(1); the engine uses it to skip
    the tie-drain when the runner-up provably cannot tie the top. *)

val drop_top : t -> unit
(** Remove the top element.  @raise Invalid_argument on an empty heap. *)

val pop : t -> (float * int) option
(** Remove and return the top element (allocates the pair; the engine uses
    [top_score]/[top_id]/[drop_top] instead). *)

val check_invariant : t -> bool
(** True iff every parent sorts before-or-equal its children (for tests). *)

(** A fixed grid of independent heaps packed into two flat arrays.

    The engine keeps one candidate heap per receiver; allocating them as
    separate growable heaps scatters [2n] small arrays across the minor
    heap.  A bank stores all rows contiguously — row [r] owns slots
    [r*cap .. r*cap + size r - 1] of one [float array] and one
    [int array] — so a whole run touches two allocations and resetting a
    row is one store.

    A bank row fed the same push/drop sequence as a standalone heap holds
    the {e same slot layout} (identical sift algorithms, identical
    smaller-id tie-breaking), hence identical [top_score]/[top_id]/
    [second_score]/drain answers — the engine's bitwise-identity suites
    depend on this. *)
module Bank : sig
  type t

  val create : rows:int -> cap:int -> order:order -> t
  (** [rows] heaps of fixed capacity [cap] each.
      @raise Invalid_argument if [rows < 0] or [cap < 1]. *)

  val rows : t -> int
  val size : t -> int -> int
  val is_empty : t -> int -> bool

  val reset : t -> int -> unit
  (** Empty row [r] in O(1). *)

  val push : t -> int -> float -> int -> unit
  (** [push t r score id].
      @raise Invalid_argument if row [r] already holds [cap] elements. *)

  val top_score : t -> int -> float
  val top_id : t -> int -> int

  val second_score : t -> int -> float
  (** As {!second_score} on the row: the better child of the root, or the
      order's identity when fewer than two elements remain. *)

  val drop_top : t -> int -> unit
  val check_invariant : t -> int -> bool

  (** All row-indexed operations
      @raise Invalid_argument on an out-of-range row, and the top accessors
      on an empty row. *)
end

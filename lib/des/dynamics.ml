module Rng = Gridb_util.Rng

type spec = {
  drift_rate : float;
  drift_sigma : float;
  drift_max : float;
  load_on_mean : float;
  load_off_mean : float;
  leave_rate : float;
  join_rate : float;
  join_max : int;
  recluster_every : float;
}

let none =
  {
    drift_rate = 0.;
    drift_sigma = 0.25;
    drift_max = 4.;
    load_on_mean = 2e5;
    load_off_mean = 2e5;
    leave_rate = 0.;
    join_rate = 0.;
    join_max = 4;
    recluster_every = 0.;
  }

let v ?(drift_rate = 0.) ?(drift_sigma = none.drift_sigma) ?(drift_max = none.drift_max)
    ?(load_on_mean = none.load_on_mean) ?(load_off_mean = none.load_off_mean)
    ?(leave_rate = 0.) ?(join_rate = 0.) ?(join_max = none.join_max)
    ?(recluster_every = 0.) () =
  if drift_rate < 0. then invalid_arg "Dynamics.v: negative drift_rate";
  if drift_sigma <= 0. then invalid_arg "Dynamics.v: drift_sigma must be positive";
  if drift_max < 1. then invalid_arg "Dynamics.v: drift_max < 1";
  if load_on_mean <= 0. then invalid_arg "Dynamics.v: load_on_mean must be positive";
  if load_off_mean < 0. then invalid_arg "Dynamics.v: negative load_off_mean";
  if leave_rate < 0. then invalid_arg "Dynamics.v: negative leave_rate";
  if join_rate < 0. then invalid_arg "Dynamics.v: negative join_rate";
  if join_max < 0 then invalid_arg "Dynamics.v: negative join_max";
  if recluster_every < 0. then invalid_arg "Dynamics.v: negative recluster_every";
  {
    drift_rate;
    drift_sigma;
    drift_max;
    load_on_mean;
    load_off_mean;
    leave_rate;
    join_rate;
    join_max;
    recluster_every;
  }

let is_none s =
  s.drift_rate = 0. && s.leave_rate = 0. && s.join_rate = 0. && s.recluster_every = 0.

let of_string str =
  let str = String.trim str in
  if str = "" || String.lowercase_ascii str = "none" then Ok none
  else
    let parse_pair acc pair =
      match acc with
      | Error _ as e -> e
      | Ok s -> (
          match String.index_opt pair '=' with
          | None -> Error (Printf.sprintf "malformed %S (want key=value)" pair)
          | Some i -> (
              let key = String.trim (String.sub pair 0 i) in
              let value = String.trim (String.sub pair (i + 1) (String.length pair - i - 1)) in
              match float_of_string_opt value with
              | None -> Error (Printf.sprintf "%s: not a number (%S)" key value)
              | Some f -> (
                  (* Range checks live here, per key, so the error names the
                     CLI key the user typed — the Faults.of_string
                     contract. *)
                  let checked ok msg update =
                    if ok then Ok (update s)
                    else Error (Printf.sprintf "%s: %s (got %g)" key msg f)
                  in
                  match key with
                  | "drift" ->
                      checked (f >= 0.) "negative rate" (fun s -> { s with drift_rate = f })
                  | "drift-sigma" ->
                      checked (f > 0.) "must be positive"
                        (fun s -> { s with drift_sigma = f })
                  | "drift-max" ->
                      checked (f >= 1.) "must be >= 1" (fun s -> { s with drift_max = f })
                  | "load-on" ->
                      checked (f > 0.) "must be positive"
                        (fun s -> { s with load_on_mean = f })
                  | "load-off" ->
                      checked (f >= 0.) "negative duration"
                        (fun s -> { s with load_off_mean = f })
                  | "leave" ->
                      checked (f >= 0.) "negative rate" (fun s -> { s with leave_rate = f })
                  | "join" ->
                      checked (f >= 0.) "negative rate" (fun s -> { s with join_rate = f })
                  | "churn" ->
                      (* Shorthand: symmetric churn sets both rates; never
                         printed back, so round-trips stay fixpoints. *)
                      checked (f >= 0.) "negative rate"
                        (fun s -> { s with leave_rate = f; join_rate = f })
                  | "join-max" ->
                      checked
                        (f >= 0. && Float.is_integer f)
                        "must be a non-negative integer"
                        (fun s -> { s with join_max = int_of_float f })
                  | "recluster" ->
                      checked (f >= 0.) "negative period"
                        (fun s -> { s with recluster_every = f })
                  | other ->
                      Error
                        (Printf.sprintf
                           "unknown key %S (known: drift, drift-sigma, drift-max, \
                            load-on, load-off, leave, join, join-max, churn, recluster)"
                           other))))
    in
    match List.fold_left parse_pair (Ok none) (String.split_on_char ',' str) with
    | Error _ as e -> e
    | Ok s -> (
        match
          v ~drift_rate:s.drift_rate ~drift_sigma:s.drift_sigma ~drift_max:s.drift_max
            ~load_on_mean:s.load_on_mean ~load_off_mean:s.load_off_mean
            ~leave_rate:s.leave_rate ~join_rate:s.join_rate ~join_max:s.join_max
            ~recluster_every:s.recluster_every ()
        with
        | s -> Ok s
        | exception Invalid_argument m -> Error m)

let to_string s =
  if is_none s then "none"
  else
    let fields = ref [] in
    let add key value default =
      if value <> default then fields := Printf.sprintf "%s=%g" key value :: !fields
    in
    add "recluster" s.recluster_every 0.;
    if s.join_max <> none.join_max then
      fields := Printf.sprintf "join-max=%d" s.join_max :: !fields;
    add "join" s.join_rate 0.;
    add "leave" s.leave_rate 0.;
    add "load-off" s.load_off_mean none.load_off_mean;
    add "load-on" s.load_on_mean none.load_on_mean;
    add "drift-max" s.drift_max none.drift_max;
    add "drift-sigma" s.drift_sigma none.drift_sigma;
    add "drift" s.drift_rate 0.;
    String.concat "," !fields

(* One directed link's drift process.  Two merged Poisson-ish event streams
   — phase toggles and walk steps — are materialised lazily in time order
   up to the latest query, so draws happen in a fixed order no matter when
   (or whether) the executor asks.  The full segment history is kept
   because query times are not monotone across call sites (a send's start
   can sit past [now] while a later ACK queries an earlier time). *)
type drift_stream = {
  drng : Rng.t;
  mutable next_toggle : float;  (* next ON<->OFF boundary; infinity = always ON *)
  mutable next_step : float;  (* next walk-step arrival *)
  mutable on : bool;  (* load phase after the last materialised event *)
  mutable w : float;  (* clamped walk value (survives OFF phases) *)
  mutable segs : (float * float) list;  (* (since, factor), descending *)
}

type join = { rank : int; cluster : int; at : float }

type t = {
  spec : spec;
  n : int;
  t0 : float;  (* time origin; drawn times are offsets from it *)
  leave : float array;  (* per planning-time rank; infinity = never *)
  join_events : join array;
  drift_streams : drift_stream array;  (* n * n; [||] when drift_rate = 0 *)
}

let create ?(seed = 0) ?(t0 = 0.) ~n ~clusters spec =
  if n < 1 then invalid_arg "Dynamics.create: n < 1";
  if clusters < 1 then invalid_arg "Dynamics.create: clusters < 1";
  if not (Float.is_finite t0) then invalid_arg "Dynamics.create: t0 must be finite";
  (* Re-run the smart constructor so hand-built records cannot smuggle
     invalid parameters in (the Faults.create discipline). *)
  let spec =
    v ~drift_rate:spec.drift_rate ~drift_sigma:spec.drift_sigma ~drift_max:spec.drift_max
      ~load_on_mean:spec.load_on_mean ~load_off_mean:spec.load_off_mean
      ~leave_rate:spec.leave_rate ~join_rate:spec.join_rate ~join_max:spec.join_max
      ~recluster_every:spec.recluster_every ()
  in
  let master = Rng.create seed in
  let leave =
    if spec.leave_rate > 0. then
      Array.init n (fun _ -> Rng.exponential master spec.leave_rate)
    else Array.make n infinity
  in
  let join_events =
    if spec.join_rate > 0. && spec.join_max > 0 then begin
      let jrng = Rng.create (Int64.to_int (Rng.bits64 master)) in
      let events = ref [] in
      let t = ref 0. in
      (* Joins are drawn to a generous horizon; consumers see only those
         with [at] inside their own run. *)
      for k = 0 to spec.join_max - 1 do
        t := !t +. Rng.exponential jrng spec.join_rate;
        let cluster = Rng.int jrng clusters in
        events := { rank = n + k; cluster; at = t0 +. !t } :: !events
      done;
      Array.of_list (List.rev !events)
    end
    else [||]
  in
  let drift_streams =
    if spec.drift_rate > 0. then
      Array.init (n * n) (fun _ ->
          let drng = Rng.create (Int64.to_int (Rng.bits64 master)) in
          let always_on = spec.load_off_mean = 0. in
          {
            drng;
            next_toggle =
              (if always_on then infinity
               else Rng.exponential drng (1. /. spec.load_off_mean));
            next_step = Rng.exponential drng spec.drift_rate;
            on = always_on;
            w = 1.;
            segs = [ (0., 1.) ];
          })
    else [||]
  in
  { spec; n; t0; leave; join_events; drift_streams }

let spec t = t.spec
let size t = t.n
let total t = t.n + Array.length t.join_events
let joins t = t.join_events

let check_rank t i name =
  if i < 0 || i >= total t then invalid_arg ("Dynamics." ^ name ^ ": rank out of range")

let leave_time t i =
  check_rank t i "leave_time";
  if i >= t.n then infinity else t.t0 +. t.leave.(i)

let left t i ~at = leave_time t i <= at

let clamp spec w = Float.min spec.drift_max (Float.max (1. /. spec.drift_max) w)

let materialize t s ~at =
  let spec = t.spec in
  while Float.min s.next_toggle s.next_step <= at do
    (* Toggles win ties so a step landing exactly on a boundary applies to
       the phase it opens — an arbitrary but fixed convention. *)
    if s.next_toggle <= s.next_step then begin
      let time = s.next_toggle in
      s.on <- not s.on;
      s.next_toggle <-
        time
        +. Rng.exponential s.drng
             (1. /. (if s.on then spec.load_on_mean else spec.load_off_mean));
      s.segs <- (time, if s.on then s.w else 1.) :: s.segs
    end
    else begin
      let time = s.next_step in
      s.w <- clamp spec (s.w *. Rng.lognormal ~sigma:spec.drift_sigma s.drng);
      s.next_step <- time +. Rng.exponential s.drng spec.drift_rate;
      if s.on then s.segs <- (time, s.w) :: s.segs
    end
  done

let factor t ~src ~dst ~at =
  check_rank t src "factor";
  check_rank t dst "factor";
  if
    Array.length t.drift_streams = 0
    || src = dst
    || src >= t.n (* join links are fresh and undrifted *)
    || dst >= t.n
  then 1.
  else begin
    let s = t.drift_streams.((src * t.n) + dst) in
    let at = at -. t.t0 in
    materialize t s ~at;
    match List.find_opt (fun (since, _) -> since <= at) s.segs with
    | Some (_, f) -> f
    | None -> 1.
  end

type t = { name : string; select : State.t -> int * int }

(* Scan A x B keeping the pair with the strictly smallest score; iteration
   in ascending (i, j) order makes ties deterministic. *)
let argmin_pair state score =
  let best_i = ref (-1) and best_j = ref (-1) and best_s = ref infinity in
  State.iter_a state (fun i ->
      State.iter_b state (fun j ->
          let s = score i j in
          if s < !best_s then begin
            best_s := s;
            best_i := i;
            best_j := j
          end));
  if !best_i < 0 then invalid_arg "Heuristics: selection on a finished state";
  (!best_i, !best_j)

let flat_tree =
  {
    name = "FlatTree";
    select =
      (fun state ->
        let root = (State.instance state).Instance.root in
        match State.members_b state with
        | [] -> invalid_arg "Heuristics.flat_tree: finished state"
        | j :: _ -> (root, j));
  }

let fef =
  {
    name = "FEF";
    select =
      (fun state ->
        let inst = State.instance state in
        argmin_pair state (fun i j -> inst.Instance.latency.(i).(j)));
  }

let ecef =
  { name = "ECEF"; select = (fun state -> argmin_pair state (State.score_arrival state)) }

let ecef_with_named name (lookahead : Lookahead.t) =
  {
    name;
    select =
      (fun state ->
        (* F_j does not depend on the sender: cache it per receiver. *)
        let n = (State.instance state).Instance.n in
        let f = Array.make n 0. in
        State.iter_b state (fun j -> f.(j) <- lookahead.Lookahead.eval state ~j);
        argmin_pair state (fun i j -> State.score_arrival state i j +. f.(j)));
  }

let ecef_with lookahead =
  ecef_with_named ("ECEF-LA<" ^ lookahead.Lookahead.name ^ ">") lookahead

let ecef_la = ecef_with_named "ECEF-LA" Lookahead.min_edge
let ecef_lat_min = ecef_with_named "ECEF-LAt" Lookahead.min_edge_plus_t
let ecef_lat_max = ecef_with_named "ECEF-LAT" Lookahead.max_edge_plus_t

let bottom_up =
  {
    name = "BottomUp";
    select =
      (fun state ->
        let inst = State.instance state in
        (* For each receiver j, its best (earliest-arrival) sender; then take
           the receiver whose best completion including T_j is largest. *)
        let best_i = ref (-1) and best_j = ref (-1) and best_v = ref neg_infinity in
        State.iter_b state (fun j ->
            let sender = ref (-1) and arrival = ref infinity in
            State.iter_a state (fun i ->
                let a = State.score_arrival state i j in
                if a < !arrival then begin
                  arrival := a;
                  sender := i
                end);
            if !sender >= 0 then begin
              let value = !arrival +. inst.Instance.intra.(j) in
              if value > !best_v then begin
                best_v := value;
                best_i := !sender;
                best_j := j
              end
            end);
        if !best_i < 0 then invalid_arg "Heuristics.bottom_up: finished state";
        (!best_i, !best_j));
  }

let all = [ flat_tree; fef; ecef; ecef_la; ecef_lat_min; ecef_lat_max; bottom_up ]

let ecef_family = [ ecef; ecef_la; ecef_lat_min; ecef_lat_max ]

let by_name name =
  (* Exact match first: "ECEF-LAt" and "ECEF-LAT" differ only by case. *)
  match List.find_opt (fun t -> t.name = name) all with
  | Some t -> Some t
  | None ->
      let canon s = String.lowercase_ascii s in
      List.find_opt (fun t -> canon t.name = canon name) all

let run t inst = State.run t.select inst

let makespan ?model t inst = Schedule.makespan ?model inst (run t inst)

(** Per-phase profile rollup over one event stream.

    Answers the paper's Section 7 accounting question from the unified
    bus: where did the time go?  Scheduling (host spans), inter-cluster
    transmission, intra-cluster transmission and retransmission (simulated
    NIC occupancy, split by the [intra]/[try_no] tags of the send events),
    plus the named counters and span totals the producers published. *)

type session_row = {
  sid : int;
  s_sends : int;  (** data transmissions tagged with this correlation id *)
  s_busy_us : float;  (** NIC occupancy (simulated us) of those sends *)
  s_makespan_us : float;  (** latest tagged arrival *)
}
(** Per-request attribution over a multi-session stream: events wrapped in
    {!Event.Tagged} are additionally accounted to their [sid]. *)

type report = {
  schedule_us : float;
      (** total of spans named ["schedule"] (host CPU time, us) *)
  transmit_us : float;
      (** inter-cluster first-attempt NIC occupancy (simulated us) *)
  intra_us : float;  (** intra-cluster first-attempt NIC occupancy *)
  retransmit_us : float;  (** NIC occupancy of retransmissions (any link) *)
  makespan_us : float;  (** latest arrival on the stream; 0 if none *)
  sends : int;  (** data transmissions (including retransmissions) *)
  retransmits : int;
  give_ups : int;
  circuit_opens : int;  (** adaptive-transport breaker trips *)
  reroutes : int;  (** orphans re-parented by the adaptive transport *)
  sheds : int;  (** requests dropped by degraded-mode admission *)
  requeues : int;  (** service retry relaunches ([Retry] events) *)
  deadline_misses : int;  (** requests past their deadline *)
  events : int;  (** stream length *)
  spans : (string * float) list;
      (** per-name span totals (us), insertion order *)
  counters : (string * int) list;
      (** named counters, last value wins, insertion order *)
  sessions : session_row list;
      (** per-sid rollup of [Tagged] events, first-seen order; [] for
          single-session (untagged) streams *)
}

val of_events : Event.t list -> report
(** Fold a chronological stream into a report.  Send gaps are paired
    [Send_start]/[Send_end] per directed link (the executors emit the two
    back to back); unmatched starts contribute nothing. *)

val render : report -> string
(** Two-column text table of the rollup. *)

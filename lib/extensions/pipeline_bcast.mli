(** Segmented (pipelined) hierarchical broadcast.

    For multi-megabyte messages the paper's schedules leave bandwidth on
    the table: every relay waits for the whole message before forwarding.
    Splitting the message into [S] segments lets segment [k+1] overlap the
    relaying of segment [k] along the same schedule — the natural
    large-message extension of the paper's approach, analogous to what
    {!Gridb_collectives.Pipeline} does inside one cluster.

    Two evaluations are provided: a closed-form store-and-forward
    approximation and an exact execution of the segmented protocol on
    simMPI ({!simulate}).  The approximation is
    [M1 + (S - 1) * B] where [M1] is the schedule's makespan at the
    segment size and [B] is the steady-state bottleneck (the largest
    per-segment NIC occupancy over all coordinators, inter-cluster relays
    plus first-level intra forwards). *)

val segment_size : msg:int -> segments:int -> int
(** [ceil (msg / segments)], at least 1 byte.
    @raise Invalid_argument if [segments < 1] or [msg < 1]. *)

val approx :
  Gridb_topology.Grid.t -> Gridb_sched.Schedule.t -> msg:int -> segments:int -> float
(** Closed-form approximation (us).  [segments = 1] reduces exactly to the
    schedule's makespan at full message size.
    @raise Invalid_argument if the schedule does not fit the grid. *)

val simulate :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  Gridb_topology.Machines.t ->
  Gridb_des.Plan.t ->
  msg:int ->
  segments:int ->
  float
(** Exact simMPI execution of the store-and-forward segmented protocol
    along a rank-level plan: every rank receives segment [k] from its
    parent, forwards it to all its children in plan order, then proceeds
    to segment [k+1].  [segments = 1] equals
    {!Gridb_mpi.Collectives.bcast_plan}'s completion time. *)

val best_segments :
  ?candidates:int list ->
  Gridb_topology.Machines.t ->
  Gridb_des.Plan.t ->
  msg:int ->
  unit ->
  int * float
(** Sweep candidate segment counts (default powers of two up to 64) by
    simulation; return the winner and its makespan. *)

(** Broadcast-as-a-service: many broadcasts, one engine, one wire.

    [run] serves a batch of {!Workload} requests the way an online
    broadcast service would:

    + {b Batch planning} — the batch's {e distinct} {!Plan_cache} keys are
      planned once each, fanned out over a {!Gridb_util.Pool} ([jobs]).
      Planning is pure and results land by index, so every [jobs] setting
      yields the same plans.  Requests naming an unknown policy never
      reach planning: they become per-request [Bad_policy] rejections
      during replay instead of failing the whole batch.
    + {b Replay} — requests are replayed sequentially in arrival order:
      each charges the plan cache (hit / miss / divergence invalidation),
      passes {!Admission} on its plan's {e predicted} makespan (carrying
      its {!Workload.priority} so degraded-mode shedding can act), and, if
      admitted, launches a {!Gridb_des.Session} at its arrival time.
    + {b Execution} — one [Engine.run] drives every admitted session; all
      of them contend on one shared {!Gridb_des.Wire}, so the one-port gap
      serialization holds across concurrent broadcasts.  Session events
      are tagged with the request id ([sid = attempt * requests + rid]).
    + {b Retry waves} — with a non-zero {!retry} budget, requests whose
      delivered-rank {e union} over all attempts still misses base ranks
      are re-enqueued with exponential backoff, re-admitted against the
      live open-circuit fraction, re-planned on the live estimated latency
      matrix when link quality drifted past the cache threshold, and
      relaunched as fresh sessions.  Delivery is never double-counted:
      the union takes the earliest arrival per rank across attempts.

    Chaotic runs ([faults]/[dynamics]/retries/shedding/deadlines) derive
    every per-session random stream by pure {!Gridb_util.Rng.split} from
    [(rid, attempt)]-indexed bases, so a seeded chaotic run is bit-stable
    across [jobs].  Zero-chaos runs replay the exact historical pipeline:
    everything except the host-clock timing fields ([plan_*],
    [plans_per_sec]) is bit-identical to the pre-resilience server — the
    property the regression pin and the CI smoke check byte-compare. *)

type retry = { budget : int; backoff_us : float }
(** Requeue policy: at most [budget] retries per request (so [budget + 1]
    attempts), the [k]-th retry delayed [backoff_us * 2^(k-1)] us past the
    previous attempt's makespan. *)

val no_retry : retry
(** Zero budget: partial sessions are final (the default). *)

val retry : ?budget:int -> ?backoff_us:float -> unit -> retry
(** Defaults: budget 2, base backoff 10 ms.
    @raise Invalid_argument on a negative budget or backoff. *)

type outcome = {
  request : Workload.request;
  cache : [ `Hit | `Miss | `Invalidated | `Unplanned ];
      (** [`Unplanned]: unknown policy, never planned or charged *)
  plan_us : float;  (** host-clock plan latency (compute cost on a miss) *)
  predicted_us : float;  (** the plan's predicted makespan *)
  decision : Admission.decision;  (** the {e wave-0} admission decision *)
  result : Gridb_des.Session.reliable option;
      (** final attempt's outcome; [None] iff never admitted *)
  attempts : int;  (** sessions launched for this request (0 if rejected) *)
  delivered_union : int;
      (** ranks delivered by {e any} attempt (base ranks union across
          attempts + final attempt's joins); equals the final attempt's
          [delivered] when [attempts <= 1] *)
  completion_us : float;
      (** earliest time every base rank had been delivered by some
          attempt; [nan] while any base rank is missing *)
  deadline_met : bool option;
      (** [None] when the request carries no deadline or was never
          admitted; otherwise whether [completion_us - at <= deadline] *)
}

type class_slo = {
  c_requests : int;
  c_admitted : int;
  c_shed : int;  (** shed decisions (wave-0 and retry waves) *)
  c_rejected : int;  (** hard-cap rejections (sheds not re-counted) *)
  c_requeues : int;  (** retry sessions launched *)
  c_delivered : int;  (** union delivered ranks over admitted requests *)
  c_ranks : int;  (** deliverable ranks over admitted requests *)
  c_deadlines : int;  (** admitted requests carrying a finite deadline *)
  c_deadline_met : int;
}
(** Per-priority-class SLO accounting. *)

val delivery_ratio : class_slo -> float
(** [c_delivered / c_ranks] ([1.] when the class admitted nothing). *)

val deadline_attainment : class_slo -> float
(** [c_deadline_met / c_deadlines] ([1.] when no deadlines were due). *)

type report = {
  outcomes : outcome array;  (** one per request, arrival order *)
  requests : int;
  admitted : int;
  rejected : int;  (** includes sheds and invalid-policy rejections *)
  invalid : int;  (** [Bad_policy] rejections (unknown heuristic name) *)
  cache_stats : Plan_cache.stats;
  hit_rate : float;  (** hits / lookups *)
  plan_wall_s : float;  (** host wall clock of planning + replay *)
  plans_per_sec : float;  (** requests served per host second *)
  plan_p50_us : float;  (** median per-request plan latency *)
  plan_p99_us : float;
  horizon_us : float;  (** simulated quiescence (after every retry wave) *)
  delivered : int;  (** union delivered ranks, summed over admitted *)
  mean_makespan_us : float;  (** mean (makespan - arrival) over admitted *)
  sheds : int;  (** shed decisions across all waves *)
  requeues : int;  (** retry sessions launched *)
  retry_lookups : int;  (** cache lookups charged by retry replanning *)
  deadline_misses : int;
  slo_high : class_slo;
  slo_low : class_slo;
  chaotic : bool;
      (** whether any resilience machinery was live (faults, dynamics,
          retries, shedding, priorities or deadlines); [false] pins the
          zero-chaos identity: [smoke_lines] renders exactly the
          historical output *)
}

val run :
  ?jobs:int ->
  ?transport:Gridb_des.Session.transport ->
  ?admission:Admission.t ->
  ?cache:Plan_cache.t ->
  ?obs:Gridb_obs.Sink.t ->
  ?seed:int ->
  ?faults:Gridb_des.Faults.spec ->
  ?dynamics:Gridb_des.Dynamics.spec ->
  ?retry:retry ->
  Gridb_topology.Machines.t ->
  Workload.request list ->
  report
(** Serve [requests] (chronological; rids should be dense from 0 — session
    [rid] seeds its rng stream via {!Gridb_util.Rng.split}[ seed rid], and
    retry attempt [k > 0] splits a dedicated retry base by [(rid, k)]).
    [faults]/[dynamics] specs are instantiated {e per session} with seeds
    derived from [(seed, rid, attempt)], so every session fails
    independently and every [jobs] setting replays identically.
    Defaults: sequential planning, [Fixed] transport, a fresh
    {!Admission.create}[ ()] controller, a fresh cache, null sink, seed 0,
    no faults, no dynamics, {!no_retry}.
    @raise Invalid_argument on out-of-order requests (unknown policy names
    are per-request {!Admission.Bad_policy} rejections, not errors). *)

val smoke_lines : report -> string list
(** Deterministic rendering of the jobs-invariant part of a report (no
    host-clock fields) — one line per request plus summary lines; the CI
    smoke check byte-compares it at [--jobs 1] vs [4].  On a zero-chaos
    report ([chaotic = false]) the rendering is byte-identical to the
    historical server's; chaotic reports append per-request
    priority/deadline/attempt annotations and per-class SLO summary
    lines. *)

(** Synthetic grid topologies.

    Three families cover the experiments and tests:
    - {!uniform_random}: the Table 2 regime — i.i.d. inter-cluster links,
      random cluster sizes;
    - {!homogeneous}: identical clusters and links (sanity baselines: every
      reasonable heuristic should coincide there);
    - {!multilevel}: a Table 1 style hierarchy — sites connected by WAN,
      clusters inside a site by LAN, machines inside a cluster by a fast
      local network. *)

type random_spec = {
  inter_latency_us : float * float;  (** uniform range for [L_ij] *)
  inter_bandwidth_mb_s : float * float;  (** uniform range for link bandwidth *)
  inter_g0_us : float;  (** zero-byte gap of inter links *)
  cluster_size : int * int;  (** uniform inclusive range for cluster sizes *)
  intra_latency_us : float * float;
  intra_bandwidth_mb_s : float * float;
  intra_g0_us : float;
}

val default_random_spec : random_spec
(** Table 2 flavoured: inter latency 1-15 ms, inter bandwidth such that a
    1 MB gap falls in 100-600 ms (1.67-10 MB/s), clusters of 4-128 machines
    on 50-1000 MB/s internal networks. *)

val uniform_random : rng:Gridb_util.Rng.t -> n:int -> random_spec -> Grid.t
(** Symmetric links: the pair [(i, j)] and [(j, i)] share one draw.
    @raise Invalid_argument if [n < 1]. *)

val homogeneous :
  n:int ->
  cluster_size:int ->
  inter:Gridb_plogp.Params.t ->
  intra:Gridb_plogp.Params.t ->
  Grid.t
(** All clusters identical, all links identical. *)

type multilevel_spec = {
  sites : int;
  clusters_per_site : int;
  machines_per_cluster : int * int;
  wan_latency_us : float * float;  (** between sites *)
  lan_latency_us : float * float;  (** between clusters of one site *)
  wan_bandwidth_mb_s : float;
  lan_bandwidth_mb_s : float;
  local_params : Gridb_plogp.Params.t;  (** inside each cluster *)
}

val default_multilevel_spec : multilevel_spec

val multilevel : rng:Gridb_util.Rng.t -> multilevel_spec -> Grid.t
(** Grid of [sites * clusters_per_site] clusters where inter-cluster links
    are LAN-class inside a site and WAN-class across sites.
    @raise Invalid_argument if any dimension is < 1. *)

val site_of_cluster : multilevel_spec -> int -> int
(** Which site a cluster index of {!multilevel} belongs to. *)

module Machines = Gridb_topology.Machines
module Params = Gridb_plogp.Params
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type result = {
  arrival : float array;
  makespan : float;
  transmissions : int;
  trace : Trace.transmission list;
}

(* The legacy [record_trace] path is a Memory-sink view over the same event
   stream: the executor emits [Send_start]/[Send_end] pairs to an internal
   Memory sink and the [trace] field is rebuilt from it.  Reversing the
   chronological stream before the (stable) arrival sort reproduces the
   historical reverse-prepend order bit for bit, equal arrivals included. *)
let trace_of_mem mem =
  Trace.of_events (Sink.events mem)
  |> List.rev
  |> List.sort (fun (a : Trace.transmission) b -> Float.compare a.arrival b.arrival)

let intra machines src dst =
  (Machines.machine machines src).Machines.cluster
  = (Machines.machine machines dst).Machines.cluster

let run ?(noise = Noise.Exact) ?rng ?(start_delay = 0.) ?(msg = 1_000_000)
    ?(record_trace = false) ?(obs = Sink.null) machines plan =
  let n = Machines.count machines in
  if Plan.size plan <> n then invalid_arg "Exec.run: plan size mismatch";
  let rng =
    match rng with Some r -> r | None -> Gridb_util.Rng.create 0
  in
  let engine = Engine.create ~obs () in
  let arrival = Array.make n nan in
  let nic_free = Array.make n 0. in
  let transmissions = ref 0 in
  let mem = if record_trace then Sink.memory () else Sink.null in
  let tracing = Sink.enabled mem || Sink.enabled obs in
  let emit e =
    if Sink.enabled mem then Sink.emit mem e;
    if Sink.enabled obs then Sink.emit obs e
  in
  (* On delivery, a rank enqueues its forwarding list: each send seizes the
     NIC for one (noisy) gap; the child receives a (noisy) latency after the
     send starts injecting. *)
  let rec deliver ~src rank engine =
    let time = Engine.now engine in
    arrival.(rank) <- time;
    nic_free.(rank) <- Float.max nic_free.(rank) time;
    if tracing then emit (Event.Arrival { src; dst = rank; time });
    List.iter
      (fun child ->
        let p = Machines.link_params machines rank child in
        let g = Noise.apply noise rng (Params.gap p msg) in
        let l = Noise.apply noise rng (Params.latency p) in
        let start = nic_free.(rank) in
        nic_free.(rank) <- start +. g;
        incr transmissions;
        if tracing then begin
          emit
            (Event.Send_start
               {
                 src = rank;
                 dst = child;
                 time = start;
                 msg;
                 intra = intra machines rank child;
                 try_no = 0;
               });
          emit
            (Event.Send_end
               { src = rank; dst = child; time = start +. g; arrival = start +. g +. l })
        end;
        Engine.schedule engine ~time:(start +. g +. l) (deliver ~src:rank child))
      plan.Plan.children.(rank)
  in
  Engine.schedule engine ~time:start_delay (deliver ~src:plan.Plan.root plan.Plan.root);
  Engine.run engine;
  let makespan = Array.fold_left Float.max 0. arrival in
  let trace = if record_trace then trace_of_mem mem else [] in
  { arrival; makespan; transmissions = !transmissions; trace }

let mean_makespan ?(noise = Noise.default_measured) ?(msg = 1_000_000)
    ?(repetitions = 10) ~seed machines plan =
  if repetitions < 1 then invalid_arg "Exec.mean_makespan: repetitions < 1";
  (* One split stream per repetition: equal seeds give equal means, and no
     repetition's draw count can bleed into the next one's stream. *)
  let rng = Gridb_util.Rng.create seed in
  let total = ref 0. in
  for _ = 1 to repetitions do
    let r = run ~noise ~rng:(Gridb_util.Rng.split rng) ~msg machines plan in
    total := !total +. r.makespan
  done;
  !total /. float_of_int repetitions

type reliable = {
  r_arrival : float array;
  r_makespan : float;
  r_transmissions : int;
  retransmissions : int;
  acks : int;
  delivered : int;
  gave_up : (int * int) list;
  crashed : int list;
  r_trace : Trace.transmission list;
}

(* ACK/timeout/exponential-backoff reliable broadcast along a plan.

   Data transmissions follow exactly the pLogP semantics of [run] (same
   arithmetic, same rng draw order), so with an empty fault spec the two
   executors are bit-identical.  On top of that, every plan edge runs a
   stop-and-wait reliability protocol: the receiver returns an ACK on the
   control plane (latency only, no NIC seizure), the sender arms a
   cancellable retransmission timer at [rto] past the end of its injection,
   and every timeout doubles [rto] and retransmits until [retries] is
   exhausted, at which point the edge (and the subtree hanging off it) is
   abandoned — graceful degradation to partial delivery. *)
let run_reliable ?(noise = Noise.Exact) ?rng ?(start_delay = 0.) ?(msg = 1_000_000)
    ?(record_trace = false) ?(obs = Sink.null) ?faults ?(retries = 5) ?(rto_mult = 2.)
    ?(rto_min = 1.) machines plan =
  let n = Machines.count machines in
  if Plan.size plan <> n then invalid_arg "Exec.run_reliable: plan size mismatch";
  if retries < 0 then invalid_arg "Exec.run_reliable: negative retries";
  if rto_mult < 1. then invalid_arg "Exec.run_reliable: rto_mult < 1";
  if rto_min <= 0. then invalid_arg "Exec.run_reliable: rto_min must be positive";
  let faults =
    match faults with
    | Some f ->
        if Faults.size f <> n then
          invalid_arg "Exec.run_reliable: fault model size mismatch";
        f
    | None -> Faults.create ~n Faults.none
  in
  let rng = match rng with Some r -> r | None -> Gridb_util.Rng.create 0 in
  let engine = Engine.create ~obs () in
  let arrival = Array.make n nan in
  let nic_free = Array.make n 0. in
  let has_msg = Array.make n false in
  let transmissions = ref 0 in
  let retransmissions = ref 0 in
  let acks = ref 0 in
  let gave_up = ref [] in
  let mem = if record_trace then Sink.memory () else Sink.null in
  let tracing = Sink.enabled mem || Sink.enabled obs in
  let emit e =
    if Sink.enabled mem then Sink.emit mem e;
    if Sink.enabled obs then Sink.emit obs e
  in
  (* Per-edge protocol state, indexed by the child (each non-root rank has a
     unique parent in the plan). *)
  let acked = Array.make n false in
  let timers = Array.make n None in
  (* Noiseless round-trip estimate: data gap + data latency + ACK latency. *)
  let initial_rto src dst =
    let p = Machines.link_params machines src dst in
    let pb = Machines.link_params machines dst src in
    Float.max rto_min
      (rto_mult *. (Params.gap p msg +. Params.latency p +. Params.latency pb))
  in
  let rec attempt ~src ~dst ~try_no ~rto engine =
    let now = Engine.now engine in
    let start = Float.max now nic_free.(src) in
    (* A halted sender transmits nothing more; its pending edges die here. *)
    if Faults.crash_time faults src > start then begin
      let p = Machines.link_params machines src dst in
      let d = Faults.slowdown faults ~src ~dst ~at:start in
      let g = Noise.apply noise rng (Params.gap p msg) *. d in
      let l = Noise.apply noise rng (Params.latency p) *. d in
      nic_free.(src) <- start +. g;
      incr transmissions;
      if try_no > 0 then incr retransmissions;
      let arr = start +. g +. l in
      if tracing then begin
        emit
          (Event.Send_start
             {
               src;
               dst;
               time = start;
               msg;
               intra = intra machines src dst;
               try_no;
             });
        emit (Event.Send_end { src; dst; time = start +. g; arrival = arr })
      end;
      let lost =
        Faults.lose faults ~src ~dst
        || (not (Faults.link_up faults ~src ~dst ~at:start))
        || Faults.crash_time faults dst <= arr
      in
      if not lost then Engine.schedule engine ~time:arr (data_arrives ~src ~dst);
      let tm =
        Engine.schedule_timer engine ~time:(start +. g +. rto)
          (timeout ~src ~dst ~try_no ~rto)
      in
      timers.(dst) <- Some tm
    end
  and data_arrives ~src ~dst engine =
    let now = Engine.now engine in
    if not has_msg.(dst) then begin
      has_msg.(dst) <- true;
      arrival.(dst) <- now;
      nic_free.(dst) <- Float.max nic_free.(dst) now;
      if tracing then emit (Event.Arrival { src; dst; time = now });
      forward dst engine
    end;
    (* ACK on the control plane: pays the reverse latency (degraded if the
       reverse link is) but does not seize the receiver's NIC, so the ACK
       never perturbs data timing.  Duplicated deliveries are re-ACKed so a
       sender that lost an ACK eventually stops retransmitting. *)
    let pb = Machines.link_params machines dst src in
    let l_back =
      Noise.apply noise rng (Params.latency pb)
      *. Faults.slowdown faults ~src:dst ~dst:src ~at:now
    in
    let ack_at = now +. l_back in
    let ack_lost =
      Faults.lose faults ~src:dst ~dst:src
      || (not (Faults.link_up faults ~src:dst ~dst:src ~at:now))
      || Faults.crash_time faults src <= ack_at
    in
    if not ack_lost then
      Engine.schedule engine ~time:ack_at (ack_arrives ~parent:src ~child:dst)
  and ack_arrives ~parent ~child engine =
    incr acks;
    if tracing then
      emit (Event.Ack { src = child; dst = parent; time = Engine.now engine });
    if not acked.(child) then begin
      acked.(child) <- true;
      match timers.(child) with
      | Some tm ->
          Engine.cancel engine tm;
          timers.(child) <- None
      | None -> ()
    end
  and timeout ~src ~dst ~try_no ~rto engine =
    timers.(dst) <- None;
    if not acked.(dst) then
      if Faults.crash_time faults src <= Engine.now engine then ()
      else if try_no >= retries then begin
        gave_up := (src, dst) :: !gave_up;
        if tracing then emit (Event.Give_up { src; dst; time = Engine.now engine })
      end
      else begin
        if tracing then
          emit
            (Event.Retransmit
               { src; dst; time = Engine.now engine; try_no = try_no + 1; rto = 2. *. rto });
        attempt ~src ~dst ~try_no:(try_no + 1) ~rto:(2. *. rto) engine
      end
  and forward rank engine =
    List.iter
      (fun child ->
        attempt ~src:rank ~dst:child ~try_no:0 ~rto:(initial_rto rank child) engine)
      plan.Plan.children.(rank)
  in
  Engine.schedule engine ~time:start_delay (fun engine ->
      let now = Engine.now engine in
      if Faults.crash_time faults plan.Plan.root > now then begin
        has_msg.(plan.Plan.root) <- true;
        arrival.(plan.Plan.root) <- now;
        nic_free.(plan.Plan.root) <- Float.max nic_free.(plan.Plan.root) now;
        if tracing then
          emit (Event.Arrival { src = plan.Plan.root; dst = plan.Plan.root; time = now });
        forward plan.Plan.root engine
      end);
  Engine.run engine;
  let makespan =
    Array.fold_left (fun acc t -> if Float.is_nan t then acc else Float.max acc t) 0. arrival
  in
  let horizon = Engine.now engine in
  let crashed =
    List.filter (fun r -> Faults.crash_time faults r <= horizon) (List.init n Fun.id)
  in
  let delivered = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 has_msg in
  let trace = if record_trace then trace_of_mem mem else [] in
  {
    r_arrival = arrival;
    r_makespan = makespan;
    r_transmissions = !transmissions;
    retransmissions = !retransmissions;
    acks = !acks;
    delivered;
    gave_up = List.rev !gave_up;
    crashed;
    r_trace = trace;
  }

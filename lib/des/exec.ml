module Machines = Gridb_topology.Machines
module Params = Gridb_plogp.Params

type result = {
  arrival : float array;
  makespan : float;
  transmissions : int;
  trace : Trace.transmission list;
}

let run ?(noise = Noise.Exact) ?rng ?(start_delay = 0.) ?(msg = 1_000_000)
    ?(record_trace = false) machines plan =
  let n = Machines.count machines in
  if Plan.size plan <> n then invalid_arg "Exec.run: plan size mismatch";
  let rng =
    match rng with Some r -> r | None -> Gridb_util.Rng.create 0
  in
  let engine = Engine.create () in
  let arrival = Array.make n nan in
  let nic_free = Array.make n 0. in
  let transmissions = ref 0 in
  let trace = ref [] in
  (* On delivery, a rank enqueues its forwarding list: each send seizes the
     NIC for one (noisy) gap; the child receives a (noisy) latency after the
     send starts injecting. *)
  let rec deliver rank engine =
    let time = Engine.now engine in
    arrival.(rank) <- time;
    nic_free.(rank) <- Float.max nic_free.(rank) time;
    List.iter
      (fun child ->
        let p = Machines.link_params machines rank child in
        let g = Noise.apply noise rng (Params.gap p msg) in
        let l = Noise.apply noise rng (Params.latency p) in
        let start = nic_free.(rank) in
        nic_free.(rank) <- start +. g;
        incr transmissions;
        if record_trace then
          trace :=
            {
              Trace.src = rank;
              dst = child;
              start;
              gap_end = start +. g;
              arrival = start +. g +. l;
              msg;
            }
            :: !trace;
        Engine.schedule engine ~time:(start +. g +. l) (deliver child))
      plan.Plan.children.(rank)
  in
  Engine.schedule engine ~time:start_delay (deliver plan.Plan.root);
  Engine.run engine;
  let makespan = Array.fold_left Float.max 0. arrival in
  let trace =
    List.sort (fun (a : Trace.transmission) b -> Float.compare a.arrival b.arrival) !trace
  in
  { arrival; makespan; transmissions = !transmissions; trace }

let mean_makespan ?(noise = Noise.default_measured) ?(msg = 1_000_000)
    ?(repetitions = 10) ~seed machines plan =
  if repetitions < 1 then invalid_arg "Exec.mean_makespan: repetitions < 1";
  let rng = Gridb_util.Rng.create seed in
  let total = ref 0. in
  for _ = 1 to repetitions do
    let r = run ~noise ~rng ~msg machines plan in
    total := !total +. r.makespan
  done;
  !total /. float_of_int repetitions

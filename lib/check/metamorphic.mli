(** Metamorphic laws over the whole pipeline.

    Where {!Invariant} checks one artefact against itself, the laws here
    relate {e two} runs of the pipeline whose outputs must agree in a
    predictable way — no oracle needed beyond the relation:

    - {b scaling}: multiplying every [L_ij], [g_ij] and [T_k] by [c > 0]
      must scale the makespan by exactly [c] and preserve the transmission
      order.  With [c] a power of two the float arithmetic is exact
      (multiplication by a power of two only shifts exponents), so the
      engine's selection is bitwise unchanged; the default [c = 2.] keeps
      the check exact.
    - {b relabeling}: permuting cluster labels (and the root with them) is
      a presentation change; any label-independent heuristic must produce
      a makespan-equal schedule.  [Root_first] policies (FlatTree) serve
      [B] in label order, so the law is vacuous for them and skipped.
    - {b size monotonicity}: replaying the {e same} transmission order on
      an instance whose matrices pointwise dominate the original cannot
      finish earlier.  Stated over a replay — not a re-schedule, because a
      greedy heuristic is not provably monotone under re-selection — this
      is a theorem, and the dominance precondition itself checks that the
      pLogP gap model is monotone in the message size.
    - {b transport equivalence}: with an empty fault spec, all three
      reliable transports must be bit-identical to the unreliable
      executor — same arrivals, makespan and transmission count, zero
      retransmissions.
    - {b dynamics identity}: attaching a {!Gridb_des.Dynamics} model whose
      spec is {!Gridb_des.Dynamics.none} — with a live observation tick —
      must leave a reliable run bit-identical to the same run without a
      model, faults and all. *)

open Gridb_sched

val scale_instance : float -> Instance.t -> Instance.t
(** Every latency, gap and intra entry multiplied by the factor. *)

val permute_instance : int array -> Instance.t -> Instance.t
(** [permute_instance perm inst] relabels cluster [i] as [perm.(i)]
    (root included).  @raise Invalid_argument if [perm] is not a
    permutation of [0 .. n-1]. *)

val scaling : ?c:float -> Policy.t -> Instance.t -> Invariant.outcome
(** ["scaling"].  [c] defaults to [2.]; use powers of two to keep the law
    exact.  @raise Invalid_argument if [c <= 0]. *)

val relabeling : perm:int array -> Policy.t -> Instance.t -> Invariant.outcome
(** ["relabeling"].  Vacuously [Ok] for policies that resolve to
    [Root_first]. *)

val replay_size_monotonicity :
  Policy.t -> small:Instance.t -> large:Instance.t -> Invariant.outcome
(** ["size-dominance"] then ["size-monotonicity"]: checks [large]
    pointwise dominates [small] (same [n] and root), schedules [small],
    replays its transmission order on [large] and requires the replayed
    makespan to be no smaller. *)

val transport_equivalence :
  ?msg:int -> ?seed:int -> Gridb_topology.Machines.t -> Gridb_des.Plan.t ->
  Invariant.outcome
(** ["transport-equivalence"]: {!Gridb_des.Exec.run_reliable} under each
    of fixed / adaptive / adaptive+reroute, with no faults, against
    {!Gridb_des.Exec.run} — arrivals, makespan and transmission counts
    must be {e exactly} equal and no retransmission may fire.  [msg]
    defaults to 1 MB, [seed] to 0. *)

val dynamics_identity :
  ?msg:int ->
  ?seed:int ->
  ?fault_seed:int ->
  ?transport:Gridb_des.Exec.transport ->
  ?spec:Gridb_des.Faults.spec ->
  Gridb_topology.Machines.t ->
  Gridb_des.Plan.t ->
  Invariant.outcome
(** ["dynamics-identity"]: {!Gridb_des.Exec.run_reliable} with a
    zero-dynamics {!Gridb_des.Dynamics} model attached (and an [on_tick]
    observation hook firing every 50 ms) against the same run without one:
    arrival vector (nan-aware), makespan, transmission / retransmission /
    delivered counts and horizon must be {e exactly} equal, and the model
    must report no churn.  [spec] (default no faults) and [transport]
    (default fixed) select the baseline being perturbed; [fault_seed]
    defaults to [seed]. *)

val metamorphic_names : string list
(** The invariant names the laws above can report. *)

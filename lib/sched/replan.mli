(** Replan-vs-ride-out decisions for broadcasts on drifting grids.

    When the grid changes mid-run — background load moves the link
    parameters, machines depart — the planning-time schedule goes stale.
    Three responses are on the table:

    - {b ride out}: finish the original schedule as planned;
    - {b splice}: keep what already executed and {!Repair.repair} the
      orphans on estimated parameters;
    - {b replan}: discard the original tree and broadcast afresh from the
      root on estimated parameters, routing around departed clusters —
      mechanically, {!Repair.repair} applied to {!fresh} (an event-free
      schedule where only the root holds the message).

    {!decide} picks between them from two online signals — the partition
    drift of the live re-clustering against the planning-time partition,
    and the estimator's divergence from the nominal parameters — plus the
    count of departed coordinators.  {!evaluate} is the analytic judge: it
    re-times a candidate schedule's transmission tree under a {e true}
    (drifted) instance and a halt vector, yielding the delivered set and
    makespan the candidate would actually achieve.  The replan-vs-ride-out
    sweep of [bench/dynamics.exe] is this module applied cell by cell. *)

type decision = Ride_out | Splice | Replan

val decision_to_string : decision -> string
(** ["ride-out"], ["splice"], ["replan"]. *)

type thresholds = {
  drift : float;
      (** partition drift (1 - Rand index vs the planning-time partition)
          at or above which a full replan is triggered *)
  divergence : float;
      (** mean estimator divergence (mean |quality - 1| over observed
          links) at or above which a full replan is triggered *)
}

val default : thresholds
(** [drift = 0.3] (the Lowekamp tolerance band, reused: a third of the
    pairings changed), [divergence = 0.25]. *)

val v : ?drift:float -> ?divergence:float -> unit -> thresholds
(** @raise Invalid_argument on thresholds outside (0, infinity). *)

val decide :
  thresholds -> drift:float -> divergence:float -> departed:int -> decision
(** Full replan when either signal crosses its threshold (the cluster map
    or the parameters are wrong enough that the old tree's {e shape} is
    suspect); otherwise splice when any coordinator departed (the tree is
    right but has holes); otherwise ride out.  Pass {!default} for the
    stock thresholds (the record is re-validated). *)

val fresh : root:int -> n:int -> Schedule.t
(** The event-free schedule in which only [root] holds the message
    ([ready]/[busy_until] are [0.] at the root, [infinity] elsewhere).
    [Repair.repair fresh] replans the whole broadcast from estimates.
    @raise Invalid_argument unless [0 <= root < n]. *)

type verdict = {
  delivered : bool array;  (** per cluster, after the retimed replay *)
  delivered_count : int;
  alive : int;  (** clusters with [halt] beyond their service time *)
  stranded : int;  (** alive clusters the schedule never delivers to *)
  makespan : float;
      (** After_sends completion ([busy + T]) over delivered clusters under
          the true parameters; 0. when nothing beyond the root delivers *)
}

val evaluate : Instance.t -> halt:float array -> Schedule.t -> verdict
(** [evaluate truth ~halt schedule] re-times [schedule]'s transmission
    tree under the [truth] instance: events are replayed in round order
    with each send starting as soon as its sender holds the message and
    its previous send's gap ended ([max ready busy]), but taking gap and
    latency from [truth] rather than from the times baked into the events.
    A send executes iff the sender holds the message and [halt.(src)]
    exceeds the start (the sender pays the gap even into a dead receiver);
    it delivers iff [halt.(dst)] exceeds the arrival, first delivery wins.
    This judges a candidate {e tree} (with its per-sender send orders) on
    what the grid actually looks like — the planning-time timestamps are
    exactly what drift made stale.
    @raise Invalid_argument if [halt] length differs from [truth.n] or the
    schedule size mismatches. *)

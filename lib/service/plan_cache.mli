(** Memoized broadcast plans, keyed by what actually determines them.

    The generalisation of MagPIe's per-instance schedule cache
    ({!Gridb_magpie.Tuning} is re-expressed over this module): a cached
    inter-cluster schedule may be reused by {e any} requester whose key
    matches — same topology ({!Gridb_topology.Fingerprint}), same root
    cluster, same MagPIe message-size class (next power of two, min 64 B)
    and same scheduling policy.

    Invalidation is driven by live network estimates: an entry stores the
    {!Gridb_des.Adaptive.quality} matrix observed at plan time, and a
    lookup carrying a live estimator recomputes when the mean absolute
    per-link quality drift exceeds the threshold — stale plans are
    replaced, nominal lookups (no estimator) never invalidate.

    Observability: every lookup publishes [Cache_hit]/[Cache_miss] (keyed
    ["<policy>/fp=<hex>/root=<r>/class=<c>"]) plus the running
    [plan_cache.hits]/[plan_cache.misses]/[plan_cache.invalidations]
    counters — [gridsched profile] rolls the counters up. *)

type key = private {
  fingerprint : Gridb_topology.Fingerprint.t;
  root : int;  (** root cluster of the inter-cluster schedule *)
  bucket : int;  (** message-size class, bytes *)
  policy : string;  (** heuristic name *)
}

val bucket_of_size : int -> int
(** MagPIe message classes: next power of two, minimum 64.
    @raise Invalid_argument on negative size. *)

val key :
  fingerprint:Gridb_topology.Fingerprint.t ->
  root:int ->
  msg:int ->
  policy:string ->
  key
(** Build a key; [msg] is bucketed with {!bucket_of_size}. *)

val key_string : key -> string
(** The form used in [Cache_hit]/[Cache_miss] events. *)

type t

type stats = {
  hits : int;
  misses : int;
  invalidations : int;  (** divergence-forced recomputations *)
  entries : int;  (** live entries *)
}

val default_threshold : float
(** 0.25 mean absolute quality drift. *)

val create : ?threshold:float -> ?obs:Gridb_obs.Sink.t -> unit -> t
(** An empty cache.  [threshold] (default {!default_threshold}) is the
    mean absolute {!Gridb_des.Adaptive.quality} drift past which an entry
    is invalidated.
    @raise Invalid_argument if [threshold <= 0.]. *)

val lookup :
  t ->
  ?estimator:Gridb_des.Adaptive.t ->
  key ->
  compute:(unit -> Gridb_sched.Schedule.t) ->
  Gridb_sched.Schedule.t * [ `Hit | `Miss | `Invalidated ]
(** The cached schedule for [key], calling [compute] (and storing its
    result) on a miss.  With [estimator], the entry's plan-time quality
    snapshot is compared against the live matrix first: past the
    threshold the entry is dropped and recomputed ([`Invalidated]), and
    the fresh entry snapshots the {e current} matrix. *)

val find : t -> key -> Gridb_sched.Schedule.t option
(** Peek without accounting, divergence checks or events. *)

val stats : t -> stats
val threshold : t -> float

val clear : t -> unit
(** Drop every entry (counters keep running). *)

(** The mixed strategy suggested at the end of Section 6.

    "We suggest the use of performance-oriented heuristics like ECEF or
    ECEF-LA when the number of clusters is reduced, and the ECEF-LAT
    technique for grid systems with more clusters" — the switch keeps the
    hit rate high across the whole range of grid sizes. *)

val default_threshold : int
(** 10 clusters — the size of GRID5000 at the time of the paper and the
    upper bound of Figure 1. *)

val strategy : ?threshold:int -> ?small:Heuristics.t -> ?large:Heuristics.t -> unit -> Heuristics.t
(** [strategy ()] dispatches per instance: [small] (default
    {!Heuristics.ecef_la}) when [n <= threshold], [large] (default
    {!Heuristics.ecef_lat_max}) otherwise.  The resulting heuristic is
    named ["Mixed<small|large@threshold>"]. *)

(** Total invariant predicates over schedules and DES event streams.

    Everything the pipeline produces must be machine-checkable: a schedule
    is well-formed not because {!Gridb_sched.Schedule.validate} said so but
    because an {e independent} recomputation from first principles agrees
    with it, and a DES run is faithful not by construction but because its
    event stream satisfies the conservation laws of a broadcast.  Every
    predicate here recomputes what it checks from scratch — none delegates
    to the code under test — so a bug in the scheduling engine, the DES
    executor or the transport layer cannot vouch for itself.

    Two families:

    - {b schedule invariants} ({!check_schedule}) over an
      [Instance.t * Schedule.t] pair: receive-once, causality, per-NIC gap
      serialization, round-by-round A/B set discipline, and a full
      independent makespan recomputation;
    - {b stream invariants} ({!check_stream}) over the observability event
      list of an executed run: exactly-once (or, under faults,
      at-most-once) delivery, send-after-receive causality, per-NIC
      interval non-overlap, pLogP gap conformance, and "no spontaneous
      delivery" (every arrival is explained by a transmission).

    The schedule comparisons use a relative epsilon (1e-9) because the
    recomputation may not share every float association with the engine;
    the stream comparisons are {e exact} — the DES derives every time with
    the same expressions the invariants assume, so any difference at all is
    a bug. *)

type violation = { invariant : string; detail : string }
(** A named invariant and a human-readable description of how it broke. *)

type outcome = (unit, violation) result

val pp_violation : Format.formatter -> violation -> unit

val feq : ?eps:float -> float -> float -> bool
(** Relative float comparison ([eps] defaults to 1e-9) used by the
    analytic-side checks. *)

val cross_check : invariant:string -> expected:float -> got:float -> outcome
(** [feq] as an invariant: agreement between two independently computed
    quantities (e.g. analytic makespan vs DES arrival max). *)

(** {1 Schedule invariants}

    All take the instance and the schedule; names match
    {!schedule_invariant_names}. *)

val receive_once : Gridb_sched.Instance.t -> Gridb_sched.Schedule.t -> outcome
(** ["receive-once"]: every non-root cluster is the destination of exactly
    one transmission, the root of none, and no destination is out of
    range. *)

val causality : Gridb_sched.Instance.t -> Gridb_sched.Schedule.t -> outcome
(** ["causality"]: no coordinator starts a send before its own arrival
    (replayed from the event list, not read from [ready]). *)

val nic_serialization : Gridb_sched.Instance.t -> Gridb_sched.Schedule.t -> outcome
(** ["nic-serialization"]: per coordinator, consecutive sends are separated
    by at least the pLogP gap of the link — no send starts while the
    previous gap is still occupying the NIC, and every recorded
    [sender_free] equals [start + g]. *)

val ab_discipline : Gridb_sched.Instance.t -> Gridb_sched.Schedule.t -> outcome
(** ["ab-discipline"]: the Section 3 state machine, round by round — rounds
    are numbered consecutively from 0, every sender is already in [A],
    every receiver still in [B] (and moves to [A]), and [B] is empty at the
    end. *)

val makespan_recomputation :
  Gridb_sched.Instance.t -> Gridb_sched.Schedule.t -> outcome
(** ["makespan-recomputation"]: replays the transmission order from scratch
    with the instance matrices only, and requires the recomputed per-event
    [start]/[sender_free]/[arrival], per-cluster [ready]/[busy_until] and
    the resulting [After_sends] makespan to all agree with what the
    schedule records and with {!Gridb_sched.Schedule.makespan}. *)

val check_schedule : Gridb_sched.Instance.t -> Gridb_sched.Schedule.t -> outcome
(** All of the above, in catalogue order; first violation wins. *)

val schedule_invariant_names : string list

(** {1 Replay}

    The independent recomputation, exposed for the metamorphic laws. *)

val replay :
  Gridb_sched.Instance.t -> (int * int) list -> (float array * float array, string) result
(** [replay inst order] applies the [(src, dst)] transmissions in order
    from a fresh state and returns [(ready, busy)] per cluster ([busy] is 0
    for pure leaves).  [Error] if a sender does not hold the message when
    it sends, or a cluster receives twice. *)

val replay_completion :
  Gridb_sched.Instance.t -> (int * int) list -> (float array, string) result
(** Per-cluster [After_sends] completion times of {!replay}:
    [max ready busy + T]. *)

val replay_makespan :
  Gridb_sched.Instance.t -> (int * int) list -> (float, string) result
(** Maximum of {!replay_completion}. *)

(** {1 Stream invariants}

    Over the chronological event list of a DES run ([n] ranks, plan rooted
    at rank [root]); names match {!stream_invariant_names}. *)

val stream_receive_exactly_once : n:int -> Gridb_obs.Event.t list -> outcome
(** ["stream-receive-once"]: every rank has exactly one [Arrival] — the
    fault-free contract. *)

val stream_receive_at_most_once : n:int -> Gridb_obs.Event.t list -> outcome
(** ["stream-receive-at-most-once"]: no rank has two [Arrival]s — the
    contract that survives faults (partial delivery allowed). *)

val stream_causality : n:int -> Gridb_obs.Event.t list -> outcome
(** ["stream-causality"]: every [Send_start] by rank [r] happens at or
    after [r]'s own [Arrival]; a rank that never received sends nothing. *)

val stream_nic_serialization : n:int -> Gridb_obs.Event.t list -> outcome
(** ["stream-nic-serialization"]: pairing each [Send_start] with its
    [Send_end], the injection intervals of any one sender never overlap
    (ACKs are control-plane and exempt by construction — they produce no
    send events). *)

val stream_gap_conformance :
  machines:Gridb_topology.Machines.t -> msg:int -> Gridb_obs.Event.t list -> outcome
(** ["stream-gap-conformance"]: in an exact-noise fault-free run, every
    injection occupies the NIC for precisely the link's pLogP gap at [msg]
    bytes, and delivers exactly one latency later. *)

val stream_no_spontaneous_delivery : root:int -> Gridb_obs.Event.t list -> outcome
(** ["stream-no-spontaneous-delivery"]: every [Arrival] (except the root's
    own injection of the message) is explained by a [Send_end] of the same
    edge whose predicted arrival is exactly that time. *)

val check_stream : ?faulty:bool -> n:int -> root:int -> Gridb_obs.Event.t list -> outcome
(** Receive discipline (exactly-once, or at-most-once when [faulty], which
    defaults to false), causality, NIC serialization and no-spontaneous-
    delivery, in that order. *)

(** {1 Multi-session streams}

    A service run interleaves many broadcast sessions on one engine, every
    published event wrapped in [Tagged { sid; _ }] by the session layer. *)

val split_sessions : Gridb_obs.Event.t list -> (int * Gridb_obs.Event.t list) list
(** Partition a merged stream by session id: one [(sid, events)] group per
    sid seen, events untagged with their original order preserved, groups
    sorted by sid.  Untagged events (cache counters, engine bookkeeping)
    belong to no session and are dropped. *)

val sessions_nic_serialization : n:int -> Gridb_obs.Event.t list -> outcome
(** ["sessions-nic-serialization"]: pairing each session's [Send_start]
    with its [Send_end] (keys are [(sid, src, dst)]), the injection
    intervals of any one sender NIC never overlap {e across} sessions —
    the shared-wire one-port discipline that only exists in multi-session
    runs.  Untagged events are ignored. *)

val stream_invariant_names : string list

(** Imperative binary min-heap.

    Backbone of the discrete-event simulator ([Gridb_des.Engine]): events are
    popped in timestamp order.  Priorities are supplied through an explicit
    comparison so the same structure also serves the schedulers' candidate
    queues. *)

type 'a t

val create : ?capacity:int -> cmp:('a -> 'a -> int) -> unit -> 'a t
(** Empty heap ordered by [cmp] (minimum first).  [capacity] sizes the
    first allocation (default 16), performed lazily on the first {!add}.
    @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** O(log n) insertion. *)

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on empty heap. *)

val clear : 'a t -> unit

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** O(n) heapify; does not retain the input array. *)

val to_sorted_list : 'a t -> 'a list
(** Drains the heap; the heap is empty afterwards. *)

val check_invariant : 'a t -> bool
(** True iff every parent is <= its children under [cmp] (for tests). *)

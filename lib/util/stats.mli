(** Descriptive statistics over float samples.

    Every experiment in the paper reports an average over 10000 iterations;
    this module provides the aggregation used by the experiment drivers, plus
    dispersion measures so that the reproduction can also report confidence
    intervals the paper omits. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  median : float;
  p05 : float;  (** 5th percentile *)
  p95 : float;  (** 95th percentile *)
}

val mean : float array -> float
(** Arithmetic mean.  @raise Invalid_argument on empty input. *)

val variance : float array -> float
(** Unbiased sample variance; 0. for singleton input.
    @raise Invalid_argument on empty input. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,1\]], linear interpolation between
    order statistics.  Does not mutate its input.
    @raise Invalid_argument on empty input or [p] outside [\[0,1\]]. *)

val median : float array -> float

val summarize : float array -> summary
(** Full summary in a single pass over a sorted copy.
    @raise Invalid_argument on empty input. *)

val pp_summary : Format.formatter -> summary -> unit

(** Streaming (Welford) accumulator, used when 10000 makespans per point
    would be wasteful to retain. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. when empty. *)

  val variance : t -> float
  (** Unbiased; 0. when fewer than two samples. *)

  val stddev : t -> float
  val min : t -> float
  (** @raise Invalid_argument when empty. *)

  val max : t -> float
  (** @raise Invalid_argument when empty. *)

  val merge : t -> t -> t
  (** Combine two accumulators (parallel aggregation). *)
end

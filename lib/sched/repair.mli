(** Heuristic-driven schedule repair after coordinator crashes.

    A crash-stop failure of a coordinator mid-broadcast breaks the relay
    tree: every cluster that was to receive the message through the dead
    coordinator is orphaned.  [repair] rebuilds the residual problem — the
    surviving holders of the message as the sources (a pre-seeded [A] set
    with the interrupted run's clock carried over), the orphaned clusters
    as the receivers ([B]) — and re-runs a {!Policy.t} heuristic on it,
    splicing the new transmissions onto the surviving prefix of the
    original schedule.

    The replay model: a scheduled transmission executes iff its sender
    holds the message and is alive at the transmission's start (the sender
    still pays the gap when the {e receiver} is dead — it cannot know);
    a delivery lands iff the receiver is alive at the arrival.  Surviving
    coordinators complete their originally scheduled sends; repair serves
    only the orphans, starting no earlier than the detection time [at].

    Under zero faults (no finite crash time) repair is the identity: the
    patched schedule equals the input event for event, including the
    [ready]/[busy_until] arrays — a property the tests pin down. *)

type outcome = {
  schedule : Schedule.t;
      (** patched schedule: surviving original events then replanned ones,
          rounds renumbered consecutively.  Not {!Schedule.validate}-clean
          when clusters died — dead or unreachable clusters never receive
          (their [ready] is [infinity]). *)
  executed : int;  (** original events that actually executed *)
  replanned : Schedule.event list;  (** repair transmissions, original ids *)
  delivered : bool array;  (** per cluster, after repair *)
  sources : int list;  (** alive holders used as the residual [A], ascending *)
  orphans : int list;  (** alive non-holders the repair (re)serves, ascending *)
  abandoned : int list;
      (** alive non-holders that could not be served (no surviving source) *)
  dead : int list;  (** clusters whose coordinator crashed by [at] *)
  makespan : float;
      (** After_sends completion over delivered clusters ([busy + T]);
          0. when only the root holds the message *)
}

val repair :
  ?policy:Policy.t ->
  ?at:float ->
  Instance.t ->
  Schedule.t ->
  crash:float array ->
  outcome
(** [repair inst schedule ~crash] patches [schedule] around the crash-stop
    failures given as per-cluster halt times ([infinity] = never, the
    convention of {!Gridb_des.Faults.crash_time}).  [policy] (default
    {!Policy.ecef_la}) replans the residual instance through the reference
    naive selector.  [at] is the detection instant — no repair transmission
    is injected before it; default: the latest finite crash time (0. when
    none).  Clusters whose coordinator is dead by [at] are excluded from
    the residual instance entirely.  Repair is single-round: crashes after
    [at] are future faults, handled by calling [repair] again on the
    outcome.  @raise Invalid_argument if [crash] length differs from
    [inst.n]. *)

(* Fault-injection sweep: reliable broadcast under increasing message-loss
   and crash rates, emitting machine-readable results to BENCH_faults.json.

   Usage: dune exec bench/faults.exe -- [--reps N] [--max-n N] [-o FILE]
                                        [--seed S]

   Each cell is a (clusters, loss, crash-rate) point averaged over --reps
   independently generated random grids (Table 2 parameter ranges) and
   fault draws.  The loss=0, crash=0 row doubles as a sanity check: the
   reliable executor must reproduce the fault-free makespan exactly
   (inflation 1.0, zero retransmissions).  CI runs this capped as a smoke
   test; the committed BENCH_faults.json comes from a full local run. *)

module Robustness = Gridb_experiments.Robustness
module Faults = Gridb_des.Faults
module Generators = Gridb_topology.Generators
module Rng = Gridb_util.Rng

type cell = {
  n : int;
  loss : float;
  crash_rate : float;
  reps : int;
  delivery_ratio : float; (* mean *)
  inflation : float; (* mean over reps with a defined baseline *)
  retransmissions : float; (* mean *)
  gave_up : int; (* total over reps *)
  crashed_ranks : int; (* total over reps *)
  repair_invocations : int; (* reps where a coordinator crashed *)
  replanned : int; (* total repair transmissions *)
}

let sizes = [ 5; 10; 20 ]
let loss_levels = [ 0.; 0.01; 0.05; 0.1 ]
let crash_rates = [ 0.; 1e-7 ]

let bench_cell ~seed ~reps n loss crash_rate =
  let spec = Faults.v ~loss ~crash_rate () in
  let acc_delivery = ref 0. and acc_inflation = ref 0. and acc_retrans = ref 0. in
  let gave_up = ref 0 and crashed = ref 0 and invocations = ref 0 and replanned = ref 0 in
  for rep = 0 to reps - 1 do
    let cell_seed = seed + (1_000 * n) + (100 * rep) in
    let rng = Rng.create cell_seed in
    let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
    let m = Robustness.run ~seed:cell_seed ~spec grid in
    acc_delivery := !acc_delivery +. m.Robustness.delivery_ratio;
    acc_inflation := !acc_inflation +. m.Robustness.inflation;
    acc_retrans := !acc_retrans +. float_of_int m.Robustness.retransmissions;
    gave_up := !gave_up + m.Robustness.gave_up;
    crashed := !crashed + m.Robustness.crashed_ranks;
    if m.Robustness.repair_invoked then incr invocations;
    replanned := !replanned + m.Robustness.repairs
  done;
  let mean acc = !acc /. float_of_int reps in
  {
    n;
    loss;
    crash_rate;
    reps;
    delivery_ratio = mean acc_delivery;
    inflation = mean acc_inflation;
    retransmissions = mean acc_retrans;
    gave_up = !gave_up;
    crashed_ranks = !crashed;
    repair_invocations = !invocations;
    replanned = !replanned;
  }

(* Handwritten JSON writer, same rationale as bench/scaling.ml. *)
let json_of_cells buf cells =
  let add fmt = Printf.bprintf buf fmt in
  add "[\n";
  List.iteri
    (fun i c ->
      add
        "  {\"n\": %d, \"loss\": %g, \"crash_rate\": %g, \"reps\": %d, \
         \"delivery_ratio\": %.4f, \"inflation\": %.4f, \"retransmissions\": %.2f, \
         \"gave_up\": %d, \"crashed_ranks\": %d, \"repair_invocations\": %d, \
         \"replanned\": %d}%s\n"
        c.n c.loss c.crash_rate c.reps c.delivery_ratio c.inflation c.retransmissions
        c.gave_up c.crashed_ranks c.repair_invocations c.replanned
        (if i = List.length cells - 1 then "" else ","))
    cells;
  add "]"

let () =
  let reps = ref 5 and max_n = ref 20 and out = ref "BENCH_faults.json" and seed = ref 2006 in
  let rec parse = function
    | [] -> ()
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--max-n" :: v :: rest ->
        max_n := int_of_string v;
        parse rest
    | ("-o" | "--output") :: v :: rest ->
        out := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | other :: _ ->
        prerr_endline
          ("unknown option " ^ other ^ " (known: --reps N, --max-n N, -o FILE, --seed S)");
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sizes = List.filter (fun n -> n <= !max_n) sizes in
  let cells =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun loss ->
            List.map
              (fun crash_rate ->
                let c = bench_cell ~seed:!seed ~reps:!reps n loss crash_rate in
                Printf.printf
                  "n=%-3d loss=%-5g crash=%-6g delivery %6.4f  inflation %6.3fx  \
                   retrans %6.2f  repairs %d\n\
                   %!"
                  n loss crash_rate c.delivery_ratio c.inflation c.retransmissions
                  c.repair_invocations;
                c)
              crash_rates)
          loss_levels)
      sizes
  in
  (* Sanity: the fault-free cells must show a bit-exact baseline. *)
  (match
     List.filter
       (fun c ->
         c.loss = 0. && c.crash_rate = 0.
         && (c.inflation <> 1. || c.retransmissions <> 0. || c.delivery_ratio <> 1.))
       cells
   with
  | [] -> ()
  | bad ->
      List.iter
        (fun c ->
          Printf.eprintf "FAULT-FREE MISMATCH at n=%d: inflation %.17g retrans %.2f\n" c.n
            c.inflation c.retransmissions)
        bad;
      exit 1);
  let buf = Buffer.create 4_096 in
  Printf.bprintf buf
    "{\n\
    \  \"benchmark\": \"fault-injection\",\n\
    \  \"seed\": %d,\n\
    \  \"instance\": \"Generators.uniform_random default_random_spec, fresh grid per rep\",\n\
    \  \"protocol\": \"stop-and-wait ACK, 5 retries, exponential backoff\",\n\
    \  \"units\": {\"loss\": \"per-transmission probability\", \"crash_rate\": \"1/us per rank\"},\n\
    \  \"results\": " !seed;
  json_of_cells buf cells;
  Buffer.add_string buf "\n}\n";
  let oc = open_out !out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" !out (List.length cells)

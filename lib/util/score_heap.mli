(** Monomorphic binary heap of (score, id) pairs in parallel unboxed
    arrays.

    The scheduling engine ([Gridb_sched.Engine]) keeps one candidate heap
    per receiver on its hot path; a polymorphic heap would box every float
    and call a comparison closure per sift step.  This variant stores
    scores in a [float array] (flat, unboxed) and compares inline.

    Equal scores always break towards the smaller id, in both orders, so
    heap tops are deterministic — the engine relies on this to reproduce
    the naive scan's ascending-(i, j) tie-breaking exactly. *)

type order =
  | Min  (** smallest score first *)
  | Max  (** largest score first *)

type t

val create : ?capacity:int -> order:order -> unit -> t
(** Empty heap.  [capacity] pre-sizes the arrays (default 16).
    @raise Invalid_argument if [capacity < 1]. *)

val length : t -> int
val is_empty : t -> bool
val clear : t -> unit

val push : t -> float -> int -> unit
(** [push t score id]: O(log n). *)

val top_score : t -> float
(** @raise Invalid_argument on an empty heap. *)

val top_id : t -> int
(** @raise Invalid_argument on an empty heap. *)

val second_score : t -> float
(** Score of the second-best element — the better child of the root — or
    the order's identity ([infinity] for [Min], [neg_infinity] for [Max])
    when fewer than two elements remain.  O(1); the engine uses it to skip
    the tie-drain when the runner-up provably cannot tie the top. *)

val drop_top : t -> unit
(** Remove the top element.  @raise Invalid_argument on an empty heap. *)

val pop : t -> (float * int) option
(** Remove and return the top element (allocates the pair; the engine uses
    [top_score]/[top_id]/[drop_top] instead). *)

val check_invariant : t -> bool
(** True iff every parent sorts before-or-equal its children (for tests). *)

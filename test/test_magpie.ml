(* Tests for gridb_magpie: measured-parameter acquisition, schedule caching
   and the library-level broadcast strategies. *)

module Tuning = Gridb_magpie.Tuning
module Bcast = Gridb_magpie.Bcast
module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid
module Grid5000 = Gridb_topology.Grid5000
module Heuristics = Gridb_sched.Heuristics
module Params = Gridb_plogp.Params

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

(* A small grid keeps the measurement campaign cheap in tests. *)
let small_machines () =
  let rng = Gridb_util.Rng.create 5 in
  let spec =
    { Gridb_topology.Generators.default_random_spec with cluster_size = (2, 6) }
  in
  Machines.expand (Gridb_topology.Generators.uniform_random ~rng ~n:4 spec)

let probe_sizes = [ 1_024; 65_536; 1_048_576 ]

let tuning machines = Tuning.create ~sizes:probe_sizes machines

(* --- size classes ------------------------------------------------------- *)

let test_size_class () =
  Alcotest.(check int) "floor" 64 (Tuning.size_class 0);
  Alcotest.(check int) "small" 64 (Tuning.size_class 37);
  Alcotest.(check int) "exact power" 1024 (Tuning.size_class 1024);
  Alcotest.(check int) "rounds up" 2048 (Tuning.size_class 1025);
  Alcotest.(check int) "1MB class" 1_048_576 (Tuning.size_class 1_000_000);
  Alcotest.check_raises "negative" (Invalid_argument "Tuning.size_class: negative size")
    (fun () -> ignore (Tuning.size_class (-1)))

let size_class_properties =
  QCheck.Test.make ~name:"size class covers and is idempotent" ~count:(Testutil.count 200)
    QCheck.(int_bound 10_000_000)
    (fun msg ->
      let c = Tuning.size_class msg in
      c >= msg && c >= 64 && Tuning.size_class c = c)

(* --- measurement --------------------------------------------------------- *)

let test_measured_grid_matches_truth () =
  let machines = small_machines () in
  let t = tuning machines in
  let truth = Machines.grid machines in
  let measured = Tuning.measured_grid t in
  Alcotest.(check int) "same clusters" (Grid.size truth) (Grid.size measured);
  Alcotest.(check int) "same processes" (Grid.total_processes truth)
    (Grid.total_processes measured);
  for i = 0 to Grid.size truth - 1 do
    for j = 0 to Grid.size truth - 1 do
      if i <> j then begin
        check_feq ~eps:1e-6
          (Printf.sprintf "latency %d-%d" i j)
          (Grid.latency truth i j) (Grid.latency measured i j);
        List.iter
          (fun m ->
            check_feq ~eps:1e-6
              (Printf.sprintf "gap %d-%d at %d" i j m)
              (Grid.gap truth i j m) (Grid.gap measured i j m))
          probe_sizes
      end
    done
  done

let test_measured_schedules_match_truth_schedules () =
  (* With exact measurement, scheduling on measured parameters must yield
     the same makespan as scheduling on the truth (at the class size). *)
  let machines = small_machines () in
  let t = tuning machines in
  let truth = Machines.grid machines in
  let msg = 1_048_576 in
  let truth_inst = Gridb_sched.Instance.of_grid ~root:0 ~msg truth in
  List.iter
    (fun h ->
      let s = Tuning.schedule t ~heuristic:h ~root:0 ~msg in
      check_feq ~eps:1e-6 h.Heuristics.name
        (Heuristics.makespan h truth_inst)
        (Gridb_sched.Schedule.makespan truth_inst s))
    Heuristics.all

(* --- cache ---------------------------------------------------------------- *)

let test_schedule_cache () =
  let machines = small_machines () in
  let t = tuning machines in
  Alcotest.(check (pair int int)) "cold" (0, 0) (Tuning.cache_stats t);
  ignore (Tuning.schedule t ~heuristic:Heuristics.ecef ~root:0 ~msg:1_000_000);
  Alcotest.(check (pair int int)) "one miss" (0, 1) (Tuning.cache_stats t);
  (* same class (1MB -> 1048576), same heuristic, same root: a hit *)
  ignore (Tuning.schedule t ~heuristic:Heuristics.ecef ~root:0 ~msg:1_048_000);
  Alcotest.(check (pair int int)) "then a hit" (1, 1) (Tuning.cache_stats t);
  (* different root: a miss *)
  ignore (Tuning.schedule t ~heuristic:Heuristics.ecef ~root:1 ~msg:1_000_000);
  Alcotest.(check (pair int int)) "root is part of the key" (1, 2) (Tuning.cache_stats t);
  (* different heuristic: a miss *)
  ignore (Tuning.schedule t ~heuristic:Heuristics.fef ~root:0 ~msg:1_000_000);
  Alcotest.(check (pair int int)) "heuristic is part of the key" (1, 3)
    (Tuning.cache_stats t)

(* --- strategies ------------------------------------------------------------ *)

let grid5000_tuning () = tuning (Machines.expand (Grid5000.grid ()))

let test_strategies_deliver_everywhere () =
  let t = grid5000_tuning () in
  List.iter
    (fun strategy ->
      let r = Bcast.execute ~charge_overhead:false t strategy ~root:0 ~msg:1_000_000 in
      Alcotest.(check bool)
        (Bcast.strategy_name strategy ^ " reaches all ranks")
        true
        (Array.for_all (fun x -> not (Float.is_nan x)) r.Gridb_des.Exec.arrival))
    [
      Bcast.Binomial_world;
      Bcast.Flat_two_level;
      Bcast.Scheduled Heuristics.ecef_la;
      Bcast.Adaptive Heuristics.all;
    ]

let test_scheduled_beats_baselines () =
  let t = grid5000_tuning () in
  let time strategy =
    (Bcast.execute ~charge_overhead:false t strategy ~root:0 ~msg:4_000_000)
      .Gridb_des.Exec.makespan
  in
  let scheduled = time (Bcast.Scheduled Heuristics.ecef_la) in
  Alcotest.(check bool) "beats flat" true (scheduled < time Bcast.Flat_two_level);
  Alcotest.(check bool) "beats binomial" true (scheduled < time Bcast.Binomial_world)

let test_adaptive_at_least_as_good_as_members () =
  let t = grid5000_tuning () in
  let adaptive = Bcast.predict t (Bcast.Adaptive Heuristics.all) ~root:0 ~msg:2_000_000 in
  List.iter
    (fun h ->
      let single = Bcast.predict t (Bcast.Scheduled h) ~root:0 ~msg:2_000_000 in
      Alcotest.(check bool)
        ("adaptive <= " ^ h.Heuristics.name)
        true (adaptive <= single +. 1e-9))
    Heuristics.all

let test_prediction_matches_execution_without_noise () =
  (* Exact measurement + exact execution: prediction = measurement. *)
  let t = grid5000_tuning () in
  List.iter
    (fun strategy ->
      let predicted = Bcast.predict t strategy ~root:0 ~msg:1_000_000 in
      let measured =
        (Bcast.execute ~charge_overhead:false t strategy ~root:0 ~msg:1_048_576)
          .Gridb_des.Exec.makespan
      in
      check_feq ~eps:1e-6 (Bcast.strategy_name strategy) predicted measured)
    [ Bcast.Flat_two_level; Bcast.Scheduled Heuristics.ecef; Bcast.Binomial_world ]

let test_overhead_charged_once () =
  let t = grid5000_tuning () in
  let strategy = Bcast.Scheduled Heuristics.ecef_lat_max in
  let first = Bcast.execute t strategy ~root:0 ~msg:1_000_000 in
  let second = Bcast.execute t strategy ~root:0 ~msg:1_000_000 in
  Alcotest.(check bool) "cache hit is cheaper" true
    (second.Gridb_des.Exec.makespan < first.Gridb_des.Exec.makespan -. 1.);
  let third = Bcast.execute ~charge_overhead:false t strategy ~root:0 ~msg:1_000_000 in
  check_feq "uncharged equals hit" second.Gridb_des.Exec.makespan
    third.Gridb_des.Exec.makespan

let test_noisy_measurement_still_close () =
  let machines = small_machines () in
  let t =
    Tuning.create ~noise:(Gridb_des.Noise.Lognormal 0.02) ~seed:9 ~sizes:probe_sizes
      machines
  in
  let truth = Machines.grid machines in
  let measured = Tuning.measured_grid t in
  for i = 0 to Grid.size truth - 1 do
    for j = 0 to Grid.size truth - 1 do
      if i <> j then begin
        let a = Grid.latency truth i j and b = Grid.latency measured i j in
        Alcotest.(check bool)
          (Printf.sprintf "latency %d-%d within 15%%" i j)
          true
          (Float.abs (a -. b) /. a < 0.15)
      end
    done
  done

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "magpie"
    [
      ( "classes",
        [ quick "size class" test_size_class; QCheck_alcotest.to_alcotest size_class_properties ]
      );
      ( "measurement",
        [
          quick "measured grid = truth" test_measured_grid_matches_truth;
          quick "schedules on measured = truth" test_measured_schedules_match_truth_schedules;
          quick "noisy measurement close" test_noisy_measurement_still_close;
        ] );
      ("cache", [ quick "hit/miss bookkeeping" test_schedule_cache ]);
      ( "strategies",
        [
          quick "deliver everywhere" test_strategies_deliver_everywhere;
          quick "scheduled beats baselines" test_scheduled_beats_baselines;
          quick "adaptive dominates members" test_adaptive_at_least_as_good_as_members;
          quick "prediction = noiseless execution" test_prediction_matches_execution_without_noise;
          quick "overhead charged once" test_overhead_charged_once;
        ] );
    ]

(** Runtime parameter acquisition and schedule caching — the paper's
    "modified version of the MagPIe library ... extended with the capability
    to acquire pLogP parameters and to predict the communication performance
    of homogeneous clusters" (Section 7).

    At startup the library measures, {e on the simulated wire} (via
    {!Gridb_mpi.Benchmarks}), the pLogP parameters of every
    coordinator-to-coordinator link and of one representative intra-cluster
    link per cluster, and rebuilds a {e measured} grid from them.  Schedules
    are then computed against the measured grid — not the ground truth —
    exactly as a real deployment would, and cached per (heuristic, root,
    message class) so repeated broadcasts pay the scheduling cost once.

    The cache is a {!Gridb_service.Plan_cache} keyed by the fingerprint of
    the {e measured} machine view plus (root, class, heuristic) — the same
    memoization layer the broadcast service uses, so a [Tuning.t] can hand
    its cache to service components and inherits divergence-driven
    invalidation when lookups carry a live {!Gridb_des.Adaptive}
    estimator. *)

type t

val create :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  ?sizes:int list ->
  ?obs:Gridb_obs.Sink.t ->
  Gridb_topology.Machines.t ->
  t
(** Runs the measurement campaign.  [sizes] are the gap-probe message sizes
    (defaults to {!Gridb_mpi.Benchmarks.measure_link}'s).  With [noise]
    absent the measured grid reproduces the ground truth to floating-point
    accuracy.  [obs] (default {!Gridb_obs.Sink.null}) receives
    [Cache_hit]/[Cache_miss] events from the schedule cache, keyed
    ["<heuristic>/root=<r>/class=<c>"], and is the sink {!Bcast} publishes
    its strategy-selection events on. *)

val machines : t -> Gridb_topology.Machines.t

val obs : t -> Gridb_obs.Sink.t
(** The sink passed at creation ({!Gridb_obs.Sink.null} by default). *)

val measured_grid : t -> Gridb_topology.Grid.t

val size_class : int -> int
(** MagPIe-style message classes: sizes are bucketed to the next power of
    two (minimum 64 B) so the schedule cache stays small.
    @raise Invalid_argument on negative size. *)

val instance : t -> root:int -> msg:int -> Gridb_sched.Instance.t
(** Scheduling instance against the measured grid, at the class-rounded
    message size. *)

val schedule :
  ?estimator:Gridb_des.Adaptive.t ->
  t ->
  heuristic:Gridb_sched.Heuristics.t ->
  root:int ->
  msg:int ->
  Gridb_sched.Schedule.t
(** Cached: the first call for a (heuristic, root, class) triple computes
    and stores; later calls are hits.  With [estimator], the cached entry
    is invalidated and recomputed when the live
    {!Gridb_des.Adaptive.quality} matrix has drifted past the cache
    threshold since the entry was planned. *)

val plan_cache : t -> Gridb_service.Plan_cache.t
(** The underlying shared-layer cache (for stats beyond hits/misses, or to
    hand to service components). *)

val cache_stats : t -> int * int
(** (hits, misses) of the schedule cache so far. *)

(** Provenance stamps for benchmark artifacts.

    BENCH_*.json files are compared across PRs to track the performance
    trajectory; a number without its commit, core count and jobs setting
    is uninterpretable.  This module reads the commit hash straight from
    the [.git] metadata files (no subprocess, no unix dependency) and
    formats the stamp the bench writers embed. *)

val git_commit : unit -> string option
(** The 40-hex commit HEAD points at, resolved through loose refs or
    [packed-refs]; [None] outside a git checkout or on an unborn branch.
    Searches for [.git] upward from the current directory (worktree
    [gitdir:] indirection included). *)

val cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val json_fields : jobs:int -> string
(** [{|"git_commit": "...", "cores": C, "jobs": J|}] — splice into a JSON
    object; [git_commit] is [null] when unknown. *)

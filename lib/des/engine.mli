(** Generic discrete-event simulation engine.

    A minimal sequential DES: a clock and a time-ordered queue of callbacks.
    Events scheduled at equal times fire in insertion order (stable), which
    keeps runs reproducible.  The broadcast executor, the MPI layer and the
    failure-injection tests all run on this engine. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time (us).  0. before the first event. *)

val schedule : t -> time:float -> (t -> unit) -> unit
(** Enqueue a callback at an absolute time.
    @raise Invalid_argument if [time] is in the past (< [now t]). *)

val schedule_after : t -> delay:float -> (t -> unit) -> unit
(** Relative variant.  @raise Invalid_argument if [delay < 0.]. *)

val step : t -> bool
(** Execute the next event; [false] when the queue is empty. *)

val run : t -> unit
(** Drain the queue.  Terminates iff the simulated system quiesces. *)

val run_until : t -> float -> unit
(** Process events with time <= the horizon; later events stay queued and
    [now] is advanced to the horizon. *)

val pending : t -> int
(** Events still queued. *)

val processed : t -> int
(** Events executed so far. *)

module Params = Gridb_plogp.Params

let arrivals ~params ~msg tree =
  let g = Params.gap params msg and l = Params.latency params in
  let acc = ref [] in
  (* [visit t at]: node [t.node] holds the message at [at]; its i-th child
     (1-based) receives at [at + i*g + L]. *)
  let rec visit t at =
    acc := (t.Tree.node, at) :: !acc;
    List.iteri
      (fun i child -> visit child (at +. (float_of_int (i + 1) *. g) +. l))
      t.Tree.children
  in
  visit tree 0.;
  List.rev !acc

let per_node_arrival ~params ~msg tree = arrivals ~params ~msg tree

let tree_completion ~params ~msg tree =
  List.fold_left (fun acc (_, t) -> Float.max acc t) 0. (arrivals ~params ~msg tree)

let broadcast_time ?(shape = Tree.Binomial) ~params ~size ~msg () =
  if size <= 1 then 0.
  else tree_completion ~params ~msg (Tree.build shape size)

let scatter_time ~params ~size ~msg =
  if size <= 1 then 0.
  else (float_of_int (size - 1) *. Params.gap params msg) +. Params.latency params

let gather_time ~params ~size ~msg = scatter_time ~params ~size ~msg

let allgather_ring_time ~params ~size ~msg =
  if size <= 1 then 0.
  else float_of_int (size - 1) *. (Params.gap params msg +. Params.latency params)

let alltoall_time ~params ~size ~msg =
  if size <= 1 then 0.
  else float_of_int (size - 1) *. (Params.gap params msg +. Params.latency params)

let barrier_time ~params ~size =
  if size <= 1 then 0.
  else begin
    let rounds = int_of_float (Float.ceil (Float.log2 (float_of_int size))) in
    float_of_int rounds *. (Params.gap params 0 +. Params.latency params)
  end

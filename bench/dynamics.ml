(* Replan-vs-ride-out sweep on dynamic grids: for each (clusters, drift
   rate, churn rate) cell, plan and reliably execute a broadcast while a
   Dynamics model drifts the link parameters and churns the membership,
   then judge the three candidate responses — ride out the stale schedule,
   Repair-splice it on live estimates, or replan the whole broadcast from
   estimates — on the *true* drifted instance at the decision instant.
   Results go to BENCH_dynamics.json.

   Usage: dune exec bench/dynamics.exe -- [--reps N] [--max-n N] [-o FILE]
                                          [--seed S] [--jobs J]
                                          [--assert-replan-wins]

   Each cell averages over --reps independently generated random grids
   (Table 2 parameter ranges); all candidates are judged on the same runs.
   The drift=0, churn=0 cell keeps a dynamics model attached (with its
   re-clustering tick live) and doubles as a sanity check: the decision
   must be ride-out and all three candidates must deliver everywhere.
   --assert-replan-wins additionally fails the run unless at least one
   dynamic cell has replanning beat riding out on delivered clusters or —
   at equal delivery — on makespan, in a majority of its repetitions'
   wins-vs-losses (the CI dynamics job runs with it).  Every cell derives
   its seeds from (seed, n, rep) alone, so Pool.map keeps the sweep
   bit-identical at any --jobs. *)

module Dynamics = Gridb_experiments.Dynamics
module Dyn = Gridb_des.Dynamics
module Replan = Gridb_sched.Replan
module Generators = Gridb_topology.Generators
module Rng = Gridb_util.Rng

type vcell = {
  delivery_ratio : float; (* mean delivered clusters / clusters *)
  makespan : float; (* mean over reps where anything delivered, us *)
  stranded : int; (* total over reps *)
}

type cell = {
  n : int;
  drift : float;
  churn : float;
  reps : int;
  ride_out : vcell;
  splice : vcell;
  replan : vcell;
  decisions : int * int * int; (* ride-out, splice, replan *)
  mean_drift : float; (* partition drift at quiescence *)
  mean_divergence : float;
  departed : int; (* coordinator departures, total over reps *)
  left : int; (* rank departures, total over reps *)
  joined : int; (* joins within the horizon, total over reps *)
  replan_wins : int; (* reps where replan beat ride-out *)
  ride_out_wins : int; (* reps where ride-out beat replan *)
}

let sizes = [ 5; 10 ]
let drift_rates = [ 0.; 2e-5; 1e-4 ]
let churn_rates = [ 0.; 3e-8; 1e-7 ]

(* replan beats ride-out when it delivers to more clusters, or to the same
   number sooner.  Deliveries judged under the true drifted instance. *)
let compare_candidates (a : Replan.verdict) (b : Replan.verdict) =
  if a.Replan.delivered_count <> b.Replan.delivered_count then
    compare a.Replan.delivered_count b.Replan.delivered_count
  else compare b.Replan.makespan a.Replan.makespan

let bench_cell ~seed ~reps n drift churn =
  let dyn =
    Dyn.v ~drift_rate:drift ~load_off_mean:0. ~leave_rate:churn ~join_rate:churn
      ~recluster_every:2e5 ()
  in
  let acc_v = Array.init 3 (fun _ -> (ref 0., ref 0., ref 0, ref 0)) in
  let d_ride = ref 0 and d_splice = ref 0 and d_replan = ref 0 in
  let sdrift = ref 0. and sdiv = ref 0. in
  let departed = ref 0 and left = ref 0 and joined = ref 0 in
  let replan_wins = ref 0 and ride_out_wins = ref 0 in
  let sanity = ref [] in
  for rep = 0 to reps - 1 do
    let cell_seed = seed + (1_000 * n) + (100 * rep) in
    let rng = Rng.create cell_seed in
    let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
    let o = Dynamics.run ~seed:cell_seed ~dyn grid in
    List.iteri
      (fun i (v : Replan.verdict) ->
        let del, mk, mkn, str = acc_v.(i) in
        del := !del +. (float_of_int v.Replan.delivered_count /. float_of_int n);
        if v.Replan.makespan > 0. then begin
          mk := !mk +. v.Replan.makespan;
          incr mkn
        end;
        str := !str + v.Replan.stranded)
      [ o.Dynamics.ride_out; o.Dynamics.splice; o.Dynamics.replan ];
    (match o.Dynamics.decision with
    | Replan.Ride_out -> incr d_ride
    | Replan.Splice -> incr d_splice
    | Replan.Replan -> incr d_replan);
    sdrift := !sdrift +. o.Dynamics.final_drift;
    sdiv := !sdiv +. o.Dynamics.final_divergence;
    departed := !departed + o.Dynamics.departed_clusters;
    left := !left + o.Dynamics.left_ranks;
    joined := !joined + o.Dynamics.joined_ranks;
    let c = compare_candidates o.Dynamics.replan o.Dynamics.ride_out in
    if c > 0 then incr replan_wins else if c < 0 then incr ride_out_wins;
    if drift = 0. && churn = 0. then begin
      let total (v : Replan.verdict) = v.Replan.delivered_count = n in
      if
        o.Dynamics.decision <> Replan.Ride_out
        || not
             (List.for_all total
                [ o.Dynamics.ride_out; o.Dynamics.splice; o.Dynamics.replan ])
      then sanity := (n, cell_seed) :: !sanity
    end
  done;
  let mean r = !r /. float_of_int reps in
  let vcell (del, mk, mkn, str) =
    {
      delivery_ratio = mean del;
      makespan = (if !mkn = 0 then 0. else !mk /. float_of_int !mkn);
      stranded = !str;
    }
  in
  ( {
      n;
      drift;
      churn;
      reps;
      ride_out = vcell acc_v.(0);
      splice = vcell acc_v.(1);
      replan = vcell acc_v.(2);
      decisions = (!d_ride, !d_splice, !d_replan);
      mean_drift = mean sdrift;
      mean_divergence = mean sdiv;
      departed = !departed;
      left = !left;
      joined = !joined;
      replan_wins = !replan_wins;
      ride_out_wins = !ride_out_wins;
    },
    List.rev !sanity )

(* Handwritten JSON writer, same rationale as bench/scaling.ml. *)
let json_of_cells buf cells =
  let add fmt = Printf.bprintf buf fmt in
  let add_vcell name v last =
    add
      "    \"%s\": {\"delivery_ratio\": %.4f, \"makespan_us\": %.1f, \"stranded\": %d}%s\n"
      name v.delivery_ratio v.makespan v.stranded
      (if last then "" else ",")
  in
  add "[\n";
  List.iteri
    (fun i c ->
      let dr, ds, dp = c.decisions in
      add "  {\"n\": %d, \"drift\": %g, \"churn\": %g, \"reps\": %d,\n" c.n c.drift c.churn
        c.reps;
      add_vcell "ride_out" c.ride_out false;
      add_vcell "splice" c.splice false;
      add_vcell "replan" c.replan false;
      add
        "    \"decisions\": {\"ride_out\": %d, \"splice\": %d, \"replan\": %d},\n\
        \    \"mean_partition_drift\": %.4f, \"mean_divergence\": %.4f,\n\
        \    \"departed_clusters\": %d, \"ranks_left\": %d, \"ranks_joined\": %d,\n\
        \    \"replan_wins\": %d, \"ride_out_wins\": %d}%s\n"
        dr ds dp c.mean_drift c.mean_divergence c.departed c.left c.joined c.replan_wins
        c.ride_out_wins
        (if i = List.length cells - 1 then "" else ","))
    cells;
  add "]"

let print_cell c =
  let dr, ds, dp = c.decisions in
  Printf.printf
    "n=%-3d drift=%-5g churn=%-5g | ride-out %6.4f | splice %6.4f | replan %6.4f | \
     decisions %d/%d/%d | replan wins %d/%d | departed %d joined %d\n\
     %!"
    c.n c.drift c.churn c.ride_out.delivery_ratio c.splice.delivery_ratio
    c.replan.delivery_ratio dr ds dp c.replan_wins c.reps c.departed c.joined

let () =
  let reps = ref 5 and max_n = ref 10 and out = ref "BENCH_dynamics.json" and seed = ref 2006 in
  let assert_wins = ref false and jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--max-n" :: v :: rest ->
        max_n := int_of_string v;
        parse rest
    | ("-o" | "--output") :: v :: rest ->
        out := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--assert-replan-wins" :: rest ->
        assert_wins := true;
        parse rest
    | other :: _ ->
        prerr_endline
          ("unknown option " ^ other
         ^ " (known: --reps N, --max-n N, -o FILE, --seed S, --jobs J, \
            --assert-replan-wins)");
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sizes = List.filter (fun n -> n <= !max_n) sizes in
  let work =
    Array.of_list
      (List.concat_map
         (fun n ->
           List.concat_map
             (fun drift -> List.map (fun churn -> (n, drift, churn)) churn_rates)
             drift_rates)
         sizes)
  in
  (* Cell lines stream out in index order as results land — no buffering
     until the join, same bytes at any --jobs. *)
  let results =
    Gridb_util.Pool.mapi_stream ~jobs:!jobs
      ~consume:(fun _ (c, _) -> print_cell c)
      (fun _ (n, drift, churn) -> bench_cell ~seed:!seed ~reps:!reps n drift churn)
      work
  in
  let cells = Array.to_list (Array.map fst results) in
  (* Sanity: with nothing drifting and nobody leaving, all three candidates
     deliver everywhere and the decision is ride-out. *)
  (match List.concat_map snd (Array.to_list results) with
  | [] -> ()
  | bad ->
      List.iter
        (fun (n, cell_seed) ->
          Printf.eprintf
            "STATIC-CELL MISMATCH at n=%d seed=%d: zero-dynamics cell did not ride out \
             to total delivery\n"
            n cell_seed)
        bad;
      exit 1);
  let winning_cells =
    List.filter
      (fun c -> (c.drift > 0. || c.churn > 0.) && c.replan_wins > c.ride_out_wins)
      cells
  in
  Printf.printf "replan beats ride-out in %d/%d dynamic cells\n" (List.length winning_cells)
    (List.length (List.filter (fun c -> c.drift > 0. || c.churn > 0.) cells));
  if !assert_wins && winning_cells = [] then begin
    prerr_endline
      "ASSERTION FAILED: no dynamic cell where replanning beat riding out (expected at \
       least one)";
    exit 1
  end;
  let buf = Buffer.create 4_096 in
  Printf.bprintf buf
    "{\n\
    \  \"benchmark\": \"replan-vs-ride-out\",\n\
    \  \"seed\": %d,\n\
    \  %s,\n\
    \  \"instance\": \"Generators.uniform_random default_random_spec, fresh grid per rep\",\n\
    \  \"protocol\": \"ECEF-LA plan; adaptive+reroute reliable run under \
     drift=D,load-off=0,churn=C,recluster=2e5 dynamics; candidates judged by \
     Replan.evaluate on the true drifted instance at quiescence\",\n\
    \  \"units\": {\"drift\": \"walk steps per us per link\", \"churn\": \"1/us per rank \
     (leave and join)\", \"makespan_us\": \"us\"},\n\
    \  \"replan_beats_ride_out_cells\": %d,\n\
    \  \"results\": " !seed
    (Gridb_util.Provenance.json_fields ~jobs:!jobs)
    (List.length winning_cells);
  json_of_cells buf cells;
  Buffer.add_string buf "\n}\n";
  let oc = open_out !out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" !out (List.length cells)

module Machines = Gridb_topology.Machines
module Heuristics = Gridb_sched.Heuristics
module Schedule = Gridb_sched.Schedule
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type strategy =
  | Binomial_world
  | Flat_two_level
  | Scheduled of Heuristics.t
  | Adaptive of Heuristics.t list

let strategy_name = function
  | Binomial_world -> "binomial-world"
  | Flat_two_level -> "flat-two-level"
  | Scheduled h -> "scheduled:" ^ h.Heuristics.name
  | Adaptive hs ->
      "adaptive:"
      ^ String.concat "," (List.map (fun h -> h.Heuristics.name) hs)

let pick_adaptive tuning hs ~root ~msg =
  if hs = [] then invalid_arg "Magpie.Bcast: Adaptive with no candidates";
  let inst = Tuning.instance tuning ~root ~msg in
  let scored =
    List.map
      (fun h ->
        let s = Tuning.schedule tuning ~heuristic:h ~root ~msg in
        (h, Schedule.makespan inst s))
      hs
  in
  let best, best_makespan =
    List.fold_left
      (fun ((_, bm) as best) ((_, m) as cand) -> if m < bm then cand else best)
      (List.hd scored) (List.tl scored)
  in
  let obs = Tuning.obs tuning in
  if Sink.enabled obs then
    Sink.emit obs
      (Event.Strategy_selected
         { name = best.Heuristics.name; predicted = best_makespan });
  best

let plan tuning strategy ~root ~msg =
  let machines = Tuning.machines tuning in
  match strategy with
  | Binomial_world ->
      Plan.binomial_ranks machines ~root:(Machines.coordinator machines root)
  | Flat_two_level ->
      Plan.of_cluster_schedule machines
        (Tuning.schedule tuning ~heuristic:Heuristics.flat_tree ~root ~msg)
  | Scheduled h ->
      Plan.of_cluster_schedule machines (Tuning.schedule tuning ~heuristic:h ~root ~msg)
  | Adaptive hs ->
      let h = pick_adaptive tuning hs ~root ~msg in
      Plan.of_cluster_schedule machines (Tuning.schedule tuning ~heuristic:h ~root ~msg)

let predict tuning strategy ~root ~msg =
  let inst = Tuning.instance tuning ~root ~msg in
  match strategy with
  | Binomial_world ->
      (* No cluster-level schedule exists: execute the plan against the
         measured grid's machine view, at the class-rounded size like every
         other prediction. *)
      let measured_machines = Machines.expand (Tuning.measured_grid tuning) in
      let p =
        Plan.binomial_ranks measured_machines
          ~root:(Machines.coordinator measured_machines root)
      in
      (Exec.run ~msg:(Tuning.size_class msg) measured_machines p).Exec.makespan
  | Flat_two_level ->
      Schedule.makespan inst
        (Tuning.schedule tuning ~heuristic:Heuristics.flat_tree ~root ~msg)
  | Scheduled h ->
      Schedule.makespan inst (Tuning.schedule tuning ~heuristic:h ~root ~msg)
  | Adaptive hs ->
      let h = pick_adaptive tuning hs ~root ~msg in
      Schedule.makespan inst (Tuning.schedule tuning ~heuristic:h ~root ~msg)

let scheduling_cost strategy ~n ~fresh =
  if not fresh then 0.
  else
    match strategy with
    | Binomial_world -> 0.
    | Flat_two_level -> Gridb_sched.Overhead.cost_us ~n "FlatTree"
    | Scheduled h -> (
        (* Use the policy descriptor when there is one — exact for
           parameterised names the string model would have to guess at. *)
        match h.Heuristics.policy with
        | Some p ->
            Gridb_sched.Overhead.of_policy ~n p
            *. Gridb_sched.Overhead.default_per_evaluation_us
        | None -> Gridb_sched.Overhead.cost_us ~n h.Heuristics.name)
    | Adaptive hs ->
        Gridb_sched.Portfolio.scheduling_evaluations ~heuristics:hs n
        *. Gridb_sched.Overhead.default_per_evaluation_us

let execute ?noise ?seed ?(charge_overhead = true) ?obs tuning strategy ~root ~msg =
  let machines = Tuning.machines tuning in
  let n = Gridb_topology.Grid.size (Machines.grid machines) in
  let _, misses_before = Tuning.cache_stats tuning in
  let p = plan tuning strategy ~root ~msg in
  let _, misses_after = Tuning.cache_stats tuning in
  let fresh = misses_after > misses_before in
  let start_delay =
    if charge_overhead then scheduling_cost strategy ~n ~fresh else 0.
  in
  let rng =
    match seed with Some s -> Gridb_util.Rng.create s | None -> Gridb_util.Rng.create 0
  in
  let obs = match obs with Some o -> o | None -> Tuning.obs tuning in
  Exec.run ?noise ~rng ~start_delay ~msg ~obs machines p

type bcast = tag:int -> rank:int -> size:int -> root:int -> msg:int -> unit

let plan_bcast plan ~tag ~rank ~size:_ ~root:_ ~msg =
  Collectives.bcast_plan ~tag ~rank plan ~msg

let default_bcast ~tag ~rank ~size ~root ~msg =
  Collectives.bcast ~tag ~rank ~size ~root ~msg ()

let iterative_solver ?(bcast = default_bcast) ~iterations ~compute_us ~msg ~rank ~size ()
    =
  if iterations < 0 then invalid_arg "Apps.iterative_solver: negative iterations";
  for iteration = 1 to iterations do
    (* Even tags for the broadcast, odd for the allreduce of the same
       iteration: no phase can steal another's messages. *)
    bcast ~tag:(2 * iteration) ~rank ~size ~root:0 ~msg;
    Runtime.Api.compute compute_us;
    ignore
      (Collectives.allreduce ~tag:((2 * iteration) + 1) ~rank ~size ~msg:8 ~value:1.
         ( +. ))
  done

let master_worker ~rounds ~task_msg ~result_msg ~compute_us ~rank ~size () =
  if rounds < 0 then invalid_arg "Apps.master_worker: negative rounds";
  for _ = 1 to rounds do
    ignore (Collectives.scatter ~rank ~size ~root:0 ~msg:task_msg ());
    if rank <> 0 then Runtime.Api.compute compute_us;
    ignore
      (Collectives.gather ~rank ~size ~root:0 ~msg:result_msg
         ~payload:(float_of_int rank))
  done

let run_solver ?noise ?seed ?bcast ~iterations ~compute_us ~msg machines =
  Runtime.run_exn ?noise ?seed machines (fun ~rank ~size ->
      iterative_solver ?bcast ~iterations ~compute_us ~msg ~rank ~size ())

(* Fault-injection sweep: reliable broadcast under increasing message-loss
   and crash rates, comparing the fixed-RTO transport against the adaptive
   one (Jacobson/Karn RTO + circuit breakers) with and without in-flight
   reroute, emitting machine-readable results to BENCH_faults.json.

   Usage: dune exec bench/faults.exe -- [--reps N] [--max-n N] [-o FILE]
                                        [--seed S] [--jobs J] [--assert-total]

   Each cell is a (clusters, loss, crash-rate) point averaged over --reps
   independently generated random grids (Table 2 parameter ranges) and
   fault draws; all three transports replay the same grids and fault seeds.
   The loss=0, crash=0 row doubles as a sanity check: every transport must
   reproduce the fault-free makespan exactly (inflation 1.0, zero
   retransmissions).  --assert-total additionally fails the run if
   adaptive+reroute left any rank undelivered in a repetition where no rank
   crashed (the sweep has no link cuts, so the reachability graph is
   complete and delivery must be total) — the CI chaos job runs with it.
   CI runs this capped as a smoke test; the committed BENCH_faults.json
   comes from a full local run. *)

module Robustness = Gridb_experiments.Robustness
module Faults = Gridb_des.Faults
module Exec = Gridb_des.Exec
module Generators = Gridb_topology.Generators
module Rng = Gridb_util.Rng

type tcell = {
  delivery_ratio : float; (* mean *)
  inflation : float; (* mean over reps with a defined baseline *)
  retransmissions : float; (* mean *)
  gave_up : int; (* total over reps *)
  reroutes : int; (* total over reps *)
  circuit_opens : int; (* total over reps *)
}

type cell = {
  n : int;
  loss : float;
  crash_rate : float;
  reps : int;
  fixed : tcell;
  adaptive : tcell;
  adaptive_reroute : tcell;
  crashed_ranks : int; (* total over reps, fixed transport's horizon *)
  repair_invocations : int; (* reps where a coordinator crashed *)
  replanned : int; (* total repair transmissions *)
}

let sizes = [ 5; 10; 20 ]
let loss_levels = [ 0.; 0.01; 0.05; 0.1 ]
let crash_rates = [ 0.; 1e-7 ]

let transports =
  [
    ("fixed", Exec.Fixed);
    ("adaptive", Exec.adaptive ());
    ("adaptive,reroute", Exec.adaptive ~reroute:true ());
  ]

(* Repetitions of adaptive+reroute where a rank stayed undelivered with no
   crash anywhere: (n, loss, crash_rate, rep seed, delivered, total).
   Returned per cell (not accumulated globally) so cells are independent
   tasks a Pool can run on any domain; the caller concatenates in grid
   order, reproducing the sequential report exactly. *)
let bench_cell ~seed ~reps n loss crash_rate =
  let spec = Faults.v ~loss ~crash_rate () in
  let acc =
    List.map (fun (name, _) -> (name, ref 0., ref 0., ref 0., ref 0, ref 0, ref 0)) transports
  in
  let crashed = ref 0 and invocations = ref 0 and replanned = ref 0 in
  let violations = ref [] in
  for rep = 0 to reps - 1 do
    let cell_seed = seed + (1_000 * n) + (100 * rep) in
    let rng = Rng.create cell_seed in
    let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
    List.iter2
      (fun (name, transport) (_, del, infl, retr, gave, rer, circ) ->
        let m = Robustness.run ~seed:cell_seed ~spec ~transport grid in
        del := !del +. m.Robustness.delivery_ratio;
        infl := !infl +. m.Robustness.inflation;
        retr := !retr +. float_of_int m.Robustness.retransmissions;
        gave := !gave + m.Robustness.gave_up;
        rer := !rer + m.Robustness.reroutes;
        circ := !circ + m.Robustness.circuit_opens;
        if name = "fixed" then begin
          crashed := !crashed + m.Robustness.crashed_ranks;
          if m.Robustness.repair_invoked then incr invocations;
          replanned := !replanned + m.Robustness.repairs
        end;
        if
          name = "adaptive,reroute" && m.Robustness.crashed_ranks = 0
          && m.Robustness.delivered <> m.Robustness.total_ranks
        then
          violations :=
            (n, loss, crash_rate, cell_seed, m.Robustness.delivered,
             m.Robustness.total_ranks)
            :: !violations)
      transports acc
  done;
  let mean r = !r /. float_of_int reps in
  let tcell (_, del, infl, retr, gave, rer, circ) =
    {
      delivery_ratio = mean del;
      inflation = mean infl;
      retransmissions = mean retr;
      gave_up = !gave;
      reroutes = !rer;
      circuit_opens = !circ;
    }
  in
  match acc with
  | [ f; a; ar ] ->
      ( {
          n;
          loss;
          crash_rate;
          reps;
          fixed = tcell f;
          adaptive = tcell a;
          adaptive_reroute = tcell ar;
          crashed_ranks = !crashed;
          repair_invocations = !invocations;
          replanned = !replanned;
        },
        List.rev !violations )
  | _ -> assert false

(* Handwritten JSON writer, same rationale as bench/scaling.ml. *)
let json_of_cells buf cells =
  let add fmt = Printf.bprintf buf fmt in
  let add_tcell name t last =
    add
      "    \"%s\": {\"delivery_ratio\": %.4f, \"inflation\": %.4f, \
       \"retransmissions\": %.2f, \"gave_up\": %d, \"reroutes\": %d, \
       \"circuit_opens\": %d}%s\n"
      name t.delivery_ratio t.inflation t.retransmissions t.gave_up t.reroutes
      t.circuit_opens
      (if last then "" else ",")
  in
  add "[\n";
  List.iteri
    (fun i c ->
      add "  {\"n\": %d, \"loss\": %g, \"crash_rate\": %g, \"reps\": %d,\n" c.n c.loss
        c.crash_rate c.reps;
      add_tcell "fixed" c.fixed false;
      add_tcell "adaptive" c.adaptive false;
      add_tcell "adaptive_reroute" c.adaptive_reroute false;
      add "    \"crashed_ranks\": %d, \"repair_invocations\": %d, \"replanned\": %d}%s\n"
        c.crashed_ranks c.repair_invocations c.replanned
        (if i = List.length cells - 1 then "" else ","))
    cells;
  add "]"

let print_cell c =
  Printf.printf
    "n=%-3d loss=%-5g crash=%-6g | fixed: delivery %6.4f infl %6.3fx | \
     adaptive: %6.4f %6.3fx | +reroute: %6.4f %6.3fx (%d reroutes)\n\
     %!"
    c.n c.loss c.crash_rate c.fixed.delivery_ratio c.fixed.inflation
    c.adaptive.delivery_ratio c.adaptive.inflation
    c.adaptive_reroute.delivery_ratio c.adaptive_reroute.inflation
    c.adaptive_reroute.reroutes

let () =
  let reps = ref 5 and max_n = ref 20 and out = ref "BENCH_faults.json" and seed = ref 2006 in
  let assert_total = ref false and jobs = ref 1 in
  let rec parse = function
    | [] -> ()
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--max-n" :: v :: rest ->
        max_n := int_of_string v;
        parse rest
    | ("-o" | "--output") :: v :: rest ->
        out := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--assert-total" :: rest ->
        assert_total := true;
        parse rest
    | other :: _ ->
        prerr_endline
          ("unknown option " ^ other
         ^ " (known: --reps N, --max-n N, -o FILE, --seed S, --jobs J, --assert-total)");
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sizes = List.filter (fun n -> n <= !max_n) sizes in
  (* Every cell derives its seeds from (seed, n, rep) alone, so cells are
     independent and Pool.map keeps the sweep bit-identical at any --jobs;
     unlike the timing bench, these numbers are simulation outputs, so
     parallel cells cannot perturb them. *)
  let work =
    Array.of_list
      (List.concat_map
         (fun n ->
           List.concat_map
             (fun loss -> List.map (fun crash_rate -> (n, loss, crash_rate)) crash_rates)
             loss_levels)
         sizes)
  in
  let results =
    Gridb_util.Pool.map ~jobs:!jobs
      (fun (n, loss, crash_rate) ->
        let c, violations = bench_cell ~seed:!seed ~reps:!reps n loss crash_rate in
        if !jobs <= 1 then print_cell c;
        (c, violations))
      work
  in
  if !jobs > 1 then Array.iter (fun (c, _) -> print_cell c) results;
  let cells = Array.to_list (Array.map fst results) in
  let totality_violations =
    List.concat_map snd (Array.to_list results)
  in
  (* Sanity: the fault-free cells must show a bit-exact baseline under every
     transport. *)
  (match
     List.filter
       (fun c ->
         c.loss = 0. && c.crash_rate = 0.
         && List.exists
              (fun t ->
                t.inflation <> 1. || t.retransmissions <> 0. || t.delivery_ratio <> 1.)
              [ c.fixed; c.adaptive; c.adaptive_reroute ])
       cells
   with
  | [] -> ()
  | bad ->
      List.iter
        (fun c ->
          Printf.eprintf
            "FAULT-FREE MISMATCH at n=%d: fixed %.17g/%.2f adaptive %.17g/%.2f \
             reroute %.17g/%.2f\n"
            c.n c.fixed.inflation c.fixed.retransmissions c.adaptive.inflation
            c.adaptive.retransmissions c.adaptive_reroute.inflation
            c.adaptive_reroute.retransmissions)
        bad;
      exit 1);
  if !assert_total then begin
    match totality_violations with
    | [] -> print_endline "assert-total: adaptive+reroute delivered everywhere no rank crashed"
    | vs ->
        List.iter
          (fun (n, loss, crash_rate, cell_seed, delivered, total) ->
            Printf.eprintf
              "TOTALITY VIOLATION n=%d loss=%g crash=%g seed=%d: %d/%d delivered with no \
               crash\n"
              n loss crash_rate cell_seed delivered total)
          vs;
        exit 1
  end;
  let buf = Buffer.create 4_096 in
  Printf.bprintf buf
    "{\n\
    \  \"benchmark\": \"fault-injection\",\n\
    \  \"seed\": %d,\n\
    \  %s,\n\
    \  \"instance\": \"Generators.uniform_random default_random_spec, fresh grid per rep\",\n\
    \  \"protocol\": \"stop-and-wait ACK, 5 retries, exponential backoff; transports: \
     fixed RTO / adaptive (Jacobson-Karn RTO, circuit breakers) / adaptive with in-flight \
     reroute\",\n\
    \  \"units\": {\"loss\": \"per-transmission probability\", \"crash_rate\": \"1/us per rank\"},\n\
    \  \"results\": " !seed
    (Gridb_util.Provenance.json_fields ~jobs:!jobs);
  json_of_cells buf cells;
  Buffer.add_string buf "\n}\n";
  let oc = open_out !out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" !out (List.length cells)

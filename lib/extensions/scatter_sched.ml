module Grid = Gridb_topology.Grid
module Cluster = Gridb_topology.Cluster
module Cost = Gridb_collectives.Cost

type evaluation = {
  order : int list;
  makespan : float;
  per_cluster : (int * float) array;
}

let non_root_clusters grid ~root =
  List.filter (fun c -> c <> root) (List.init (Grid.size grid) (fun i -> i))

let intra_scatter_time grid c ~msg_per_proc =
  let cluster = Grid.cluster grid c in
  Cost.scatter_time ~params:cluster.Cluster.intra ~size:cluster.Cluster.size
    ~msg:msg_per_proc

let block_size grid c ~msg_per_proc =
  msg_per_proc * (Grid.cluster grid c).Cluster.size

let tail grid c ~msg_per_proc ~root =
  Grid.latency grid root c +. intra_scatter_time grid c ~msg_per_proc

let evaluate grid ~root ~msg_per_proc order =
  let expected = List.sort compare (non_root_clusters grid ~root) in
  if List.sort compare order <> expected then
    invalid_arg "Scatter_sched.evaluate: order is not a permutation of non-root clusters";
  let clock = ref 0. in
  let per_cluster =
    List.map
      (fun c ->
        clock := !clock +. Grid.gap grid root c (block_size grid c ~msg_per_proc);
        (c, !clock +. tail grid c ~msg_per_proc ~root))
      order
  in
  (* The root cluster scatters internally after all remote sends. *)
  let root_completion = !clock +. intra_scatter_time grid root ~msg_per_proc in
  let all = (root, root_completion) :: per_cluster in
  {
    order;
    makespan = List.fold_left (fun acc (_, t) -> Float.max acc t) 0. all;
    per_cluster = Array.of_list all;
  }

let in_order grid ~root = non_root_clusters grid ~root

let fastest_edge_first grid ~root ~msg_per_proc =
  non_root_clusters grid ~root
  |> List.map (fun c ->
         (Grid.gap grid root c (block_size grid c ~msg_per_proc) +. Grid.latency grid root c, c))
  |> List.sort compare
  |> List.map snd

let longest_delivery_first grid ~root ~msg_per_proc =
  non_root_clusters grid ~root
  |> List.map (fun c -> (-.tail grid c ~msg_per_proc ~root, c))
  |> List.sort compare
  |> List.map snd

let optimal_order ?(max_clusters = 9) grid ~root ~msg_per_proc =
  let rest = non_root_clusters grid ~root in
  if List.length rest + 1 > max_clusters then
    invalid_arg "Scatter_sched.optimal_order: too many clusters for brute force";
  let best = ref None in
  let rec permute prefix remaining =
    match remaining with
    | [] ->
        let e = evaluate grid ~root ~msg_per_proc (List.rev prefix) in
        (match !best with
        | Some (m, _) when m <= e.makespan -> ()
        | _ -> best := Some (e.makespan, e.order))
    | _ ->
        List.iter
          (fun c -> permute (c :: prefix) (List.filter (fun x -> x <> c) remaining))
          remaining
  in
  permute [] rest;
  match !best with Some (_, order) -> order | None -> []

module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid
module Fingerprint = Gridb_topology.Fingerprint
module Heuristics = Gridb_sched.Heuristics
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Session = Gridb_des.Session
module Wire = Gridb_des.Wire
module Engine = Gridb_des.Engine
module Plan = Gridb_des.Plan
module Faults = Gridb_des.Faults
module Dynamics = Gridb_des.Dynamics
module Adaptive = Gridb_des.Adaptive
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event
module Rng = Gridb_util.Rng
module Pool = Gridb_util.Pool

type retry = { budget : int; backoff_us : float }

let no_retry = { budget = 0; backoff_us = 0. }

let retry ?(budget = 2) ?(backoff_us = 1e4) () =
  if budget < 0 then invalid_arg "Server.retry: budget < 0";
  if Float.is_nan backoff_us || backoff_us < 0. then
    invalid_arg "Server.retry: backoff_us < 0";
  { budget; backoff_us }

type outcome = {
  request : Workload.request;
  cache : [ `Hit | `Miss | `Invalidated | `Unplanned ];
  plan_us : float;
  predicted_us : float;
  decision : Admission.decision;
  result : Session.reliable option;
  attempts : int;
  delivered_union : int;
  completion_us : float;
  deadline_met : bool option;
}

type class_slo = {
  c_requests : int;
  c_admitted : int;
  c_shed : int;
  c_rejected : int;
  c_requeues : int;
  c_delivered : int;
  c_ranks : int;
  c_deadlines : int;
  c_deadline_met : int;
}

let empty_slo =
  {
    c_requests = 0;
    c_admitted = 0;
    c_shed = 0;
    c_rejected = 0;
    c_requeues = 0;
    c_delivered = 0;
    c_ranks = 0;
    c_deadlines = 0;
    c_deadline_met = 0;
  }

let delivery_ratio s =
  if s.c_ranks = 0 then 1. else float_of_int s.c_delivered /. float_of_int s.c_ranks

let deadline_attainment s =
  if s.c_deadlines = 0 then 1.
  else float_of_int s.c_deadline_met /. float_of_int s.c_deadlines

type report = {
  outcomes : outcome array;
  requests : int;
  admitted : int;
  rejected : int;
  invalid : int;
  cache_stats : Plan_cache.stats;
  hit_rate : float;
  plan_wall_s : float;
  plans_per_sec : float;
  plan_p50_us : float;
  plan_p99_us : float;
  horizon_us : float;
  delivered : int;
  mean_makespan_us : float;
  sheds : int;
  requeues : int;
  retry_lookups : int;
  deadline_misses : int;
  slo_high : class_slo;
  slo_low : class_slo;
  chaotic : bool;
}

let percentile sorted p =
  let m = Array.length sorted in
  if m = 0 then 0.
  else
    let idx = int_of_float (ceil (p /. 100. *. float_of_int m)) - 1 in
    sorted.(min (m - 1) (max 0 idx))

let heuristic_of policy =
  match Heuristics.by_name policy with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Server.run: unknown policy %S" policy)

(* Cluster-level live view for retry replanning: the retry's estimator
   rescales the nominal inter-cluster latency/gap matrices by the measured
   per-link quality on coordinator-to-coordinator links — the same lift
   {!Gridb_experiments.Robustness} uses for post-crash replans. *)
let estimated_instance est machines (inst : Instance.t) =
  let nc = inst.Instance.n in
  let q c d =
    if c = d then 1.
    else
      Adaptive.quality est
        ~src:(Machines.coordinator machines c)
        ~dst:(Machines.coordinator machines d)
  in
  let scale m = Array.init nc (fun i -> Array.init nc (fun j -> m.(i).(j) *. q i j)) in
  Instance.v ~root:inst.Instance.root ~latency:(scale inst.Instance.latency)
    ~gap:(scale inst.Instance.gap) ~intra:inst.Instance.intra

let count_delivered arr lo hi =
  let c = ref 0 in
  for k = lo to hi - 1 do
    if not (Float.is_nan arr.(k)) then incr c
  done;
  !c

let run ?(jobs = 1) ?transport ?admission ?cache ?(obs = Sink.null) ?(seed = 0)
    ?faults ?dynamics ?(retry = no_retry) machines requests =
  let admission = match admission with Some a -> a | None -> Admission.create () in
  let cache = match cache with Some c -> c | None -> Plan_cache.create ~obs () in
  let requests = Array.of_list requests in
  let nreq = Array.length requests in
  let grid = Machines.grid machines in
  let clusters = Grid.size grid in
  let fingerprint = Fingerprint.of_machines machines in
  let key_of (r : Workload.request) =
    Plan_cache.key ~fingerprint ~root:r.Workload.root ~msg:r.Workload.msg
      ~policy:r.Workload.policy
  in
  (* Arrival order must be non-decreasing: the admission controller and the
     sequential cache replay both assume it. *)
  Array.iteri
    (fun i r ->
      if i > 0 && r.Workload.at < requests.(i - 1).Workload.at then
        invalid_arg "Server.run: requests not in arrival order")
    requests;
  let known (r : Workload.request) = Heuristics.by_name r.Workload.policy <> None in
  let chaotic =
    faults <> None || dynamics <> None || retry.budget > 0
    || Admission.shedding admission
    || Array.exists
         (fun (r : Workload.request) ->
           r.Workload.priority = Workload.High || r.Workload.deadline < infinity)
         requests
  in
  let t0 = Unix.gettimeofday () in
  (* Batch planning: the distinct cache keys of the whole request batch,
     first-appearance order, each planned once — in parallel over the pool
     (planning is pure; results land by index, so any --jobs gives the
     same plans).  The sequential replay below then charges hits and
     misses exactly as an online server would have.  Requests naming an
     unknown policy never reach planning: they become [Bad_policy] rejects
     during replay instead of killing the batch. *)
  let seen = Hashtbl.create 64 in
  let unique = ref [] in
  Array.iter
    (fun r ->
      if known r then begin
        let k = key_of r in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.add seen k ();
          unique := k :: !unique
        end
      end)
    requests;
  let unique = Array.of_list (List.rev !unique) in
  let planned =
    Pool.mapi ~jobs
      (fun _ (k : Plan_cache.key) ->
        let t0 = Unix.gettimeofday () in
        let h = heuristic_of k.Plan_cache.policy in
        let inst = Instance.of_grid ~root:k.Plan_cache.root ~msg:k.Plan_cache.bucket grid in
        let s = Heuristics.run h inst in
        let predicted = Schedule.makespan inst s in
        (s, predicted, (Unix.gettimeofday () -. t0) *. 1e6))
      unique
  in
  let plan_tbl = Hashtbl.create 64 in
  Array.iteri (fun i k -> Hashtbl.replace plan_tbl k planned.(i)) unique;
  (* Sequential replay in arrival order: cache accounting, admission, and
     session launch onto ONE engine and ONE wire — admitted broadcasts
     contend for the same NICs.  The wire is sized for the worst-case
     session population (machines plus any dynamics joins). *)
  let n = Machines.count machines in
  let wire_ranks =
    n
    +
    match dynamics with
    | Some (spec : Dynamics.spec) when spec.Dynamics.join_rate > 0. ->
        spec.Dynamics.join_max
    | _ -> 0
  in
  let wire = Wire.create ~n:wire_ranks in
  let engine = Engine.create ~obs () in
  let base = Rng.create seed in
  (* Chaotic sessions draw their fault/dynamics models and (for retries)
     their noise streams from dedicated tagged bases, split per (rid,
     attempt) — pure stream derivation, so chaotic replays are bit-stable
     however planning was parallelised and whatever order results land. *)
  let fault_base = Rng.create (seed lxor 0x666c7473) (* "flts" *) in
  let dyn_base = Rng.create (seed lxor 0x64796e73) (* "dyns" *) in
  let retry_base = Rng.create (seed lxor 0x72747279) (* "rtry" *) in
  let derive b rid attempt = Rng.int (Rng.split (Rng.split b rid) attempt) 0x3FFFFFFF in
  let session_config (r : Workload.request) ~attempt ~start_delay =
    let rng =
      if attempt = 0 then Rng.split base r.Workload.rid
      else Rng.split (Rng.split retry_base r.Workload.rid) attempt
    in
    (* Models are anchored at the session's own start ([t0]): a request
       served (or retried) late in the simulation faces faults and churn
       unfolding from its start, exactly like a request served at the
       epoch — not a world that pre-decayed while it sat in the queue. *)
    let fmodel =
      Option.map
        (fun spec ->
          Faults.create
            ~seed:(derive fault_base r.Workload.rid attempt)
            ~t0:start_delay ~n spec)
        faults
    in
    let dmodel =
      Option.map
        (fun spec ->
          Dynamics.create
            ~seed:(derive dyn_base r.Workload.rid attempt)
            ~t0:start_delay ~n ~clusters spec)
        dynamics
    in
    Session.Config.v ~rng ~start_delay ~msg:r.Workload.msg ~obs ?faults:fmodel
      ?dynamics:dmodel ?transport ()
  in
  let launch (r : Workload.request) ~attempt ~start_delay =
    let k = key_of r in
    let schedule, _, _ = Hashtbl.find plan_tbl k in
    let plan = Plan.of_cluster_schedule machines schedule in
    let config = session_config r ~attempt ~start_delay in
    Session.launch_reliable
      ~sid:((attempt * nreq) + r.Workload.rid)
      ~who:"Server.run" ~wire ~engine config machines plan
  in
  let sheds = ref 0 in
  let shed_by = Array.make nreq 0 in
  let emit ev = if Sink.enabled obs then Sink.emit obs ev in
  let partial =
    Array.map
      (fun (r : Workload.request) ->
        if not (known r) then
          (r, `Unplanned, 0., 0., Admission.Reject (Admission.Bad_policy r.Workload.policy), None)
        else begin
          let k = key_of r in
          let schedule, predicted, compute_us = Hashtbl.find plan_tbl k in
          let l0 = Unix.gettimeofday () in
          let _, kind = Plan_cache.lookup cache k ~compute:(fun () -> schedule) in
          let lookup_us = (Unix.gettimeofday () -. l0) *. 1e6 in
          let plan_us = match kind with `Hit -> lookup_us | _ -> compute_us +. lookup_us in
          (* Wave-0 decisions carry no circuit-health signal: nothing has
             executed yet.  The open-circuit fraction gates requeues. *)
          let decision =
            Admission.decide ~priority:r.Workload.priority admission ~now:r.Workload.at
              ~predicted_makespan:predicted
          in
          let session =
            match decision with
            | Admission.Reject reason ->
                if Admission.is_shed reason then begin
                  incr sheds;
                  shed_by.(r.Workload.rid) <- 1;
                  emit
                    (Event.Shed
                       {
                         rid = r.Workload.rid;
                         priority = Workload.priority_to_string r.Workload.priority;
                         reason = Admission.reason_string reason;
                         time = r.Workload.at;
                       })
                end;
                None
            | Admission.Admit -> Some (launch r ~attempt:0 ~start_delay:r.Workload.at)
          in
          ((r, (kind :> [ `Hit | `Miss | `Invalidated | `Unplanned ]), plan_us, predicted,
            decision, session)
            : Workload.request
              * [ `Hit | `Miss | `Invalidated | `Unplanned ]
              * float
              * float
              * Admission.decision
              * Session.reliable_t option)
        end)
      requests
  in
  let plan_wall_s = Unix.gettimeofday () -. t0 in
  Engine.run engine;
  (* Retry/requeue loop.  A request whose delivered-rank {e union} (over
     every attempt so far, never double-counted) still misses base ranks
     is re-enqueued with exponential backoff, re-admitted against the live
     open-circuit fraction, re-planned on the live estimated latency
     matrix when quality drifted past the cache threshold, and relaunched
     as a fresh session ([sid = attempt * nreq + rid]).  Waves run to
     engine quiescence, so a requeue always starts at or after the
     previous wave's horizon. *)
  let attempts = Array.make nreq 0 in
  let final_result : Session.reliable option array = Array.make nreq None in
  let union : float array array = Array.make nreq [||] in
  let requeues = ref 0 and retry_lookups = ref 0 in
  let sessions_finished = ref 0 and sessions_opened = ref 0 in
  let absorb rid (res : Session.reliable) =
    attempts.(rid) <- attempts.(rid) + 1;
    final_result.(rid) <- Some res;
    incr sessions_finished;
    if res.Session.circuit_opens > 0 then incr sessions_opened;
    if Array.length union.(rid) = 0 then union.(rid) <- Array.make n nan;
    let u = union.(rid) in
    for k = 0 to n - 1 do
      let a = res.Session.r_arrival.(k) in
      if not (Float.is_nan a) && (Float.is_nan u.(k) || a < u.(k)) then u.(k) <- a
    done
  in
  let needs_retry rid =
    Array.length union.(rid) > 0 && count_delivered union.(rid) 0 n < n
  in
  Array.iter
    (fun (r, _, _, _, _, session) ->
      match session with
      | Some s -> absorb r.Workload.rid (Session.reliable_result s)
      | None -> ())
    partial;
  let queue =
    ref
      (if retry.budget = 0 then []
       else
         Array.to_list requests
         |> List.filter (fun (r : Workload.request) -> needs_retry r.Workload.rid))
  in
  while !queue <> [] do
    let wave = !queue in
    queue := [];
    let open_frac =
      if !sessions_finished = 0 then 0.
      else float_of_int !sessions_opened /. float_of_int !sessions_finished
    in
    let launched =
      List.filter_map
        (fun (r : Workload.request) ->
          let rid = r.Workload.rid in
          let attempt = attempts.(rid) in
          if attempt > retry.budget then None
          else begin
            let prev = Option.get final_result.(rid) in
            let backoff = retry.backoff_us *. Float.pow 2. (float_of_int (attempt - 1)) in
            let retry_at =
              Float.max (Engine.now engine) (prev.Session.r_makespan +. backoff)
            in
            let k = key_of r in
            let _, predicted, _ = Hashtbl.find plan_tbl k in
            match
              Admission.decide ~priority:r.Workload.priority ~open_frac admission
                ~now:retry_at ~predicted_makespan:predicted
            with
            | Admission.Reject reason ->
                if Admission.is_shed reason then begin
                  incr sheds;
                  shed_by.(rid) <- shed_by.(rid) + 1;
                  emit
                    (Event.Shed
                       {
                         rid;
                         priority = Workload.priority_to_string r.Workload.priority;
                         reason = Admission.reason_string reason;
                         time = retry_at;
                       })
                end;
                None
            | Admission.Admit ->
                let estimator = prev.Session.estimator in
                let compute () =
                  let h = heuristic_of r.Workload.policy in
                  let inst =
                    Instance.of_grid ~root:r.Workload.root ~msg:k.Plan_cache.bucket grid
                  in
                  let inst =
                    match estimator with
                    | Some est -> estimated_instance est machines inst
                    | None -> inst
                  in
                  Heuristics.run h inst
                in
                let schedule, _ = Plan_cache.lookup cache ?estimator k ~compute in
                incr retry_lookups;
                incr requeues;
                emit (Event.Retry { rid; attempt; time = retry_at });
                let plan = Plan.of_cluster_schedule machines schedule in
                let config = session_config r ~attempt ~start_delay:retry_at in
                let s =
                  Session.launch_reliable
                    ~sid:((attempt * nreq) + rid)
                    ~who:"Server.run" ~wire ~engine config machines plan
                in
                Some (r, s)
          end)
        wave
    in
    Engine.run engine;
    List.iter
      (fun ((r : Workload.request), s) ->
        absorb r.Workload.rid (Session.reliable_result s);
        if needs_retry r.Workload.rid && attempts.(r.Workload.rid) <= retry.budget then
          queue := r :: !queue)
      launched;
    queue := List.rev !queue
  done;
  (* Fold per-request outcomes: the recorded result is the final attempt's,
     delivery is the union (base ranks across attempts, joins from the
     final attempt), deadlines are judged on the time the union covered
     every base rank. *)
  let deadline_misses = ref 0 in
  let outcomes =
    Array.map
      (fun ((request : Workload.request), cache, plan_us, predicted_us, decision, _) ->
        let rid = request.Workload.rid in
        let result = final_result.(rid) in
        let delivered_union, completion_us =
          match result with
          | None -> (0, nan)
          | Some res ->
              let u = union.(rid) in
              let base = count_delivered u 0 n in
              let join_delivered =
                count_delivered res.Session.r_arrival n
                  (Array.length res.Session.r_arrival)
              in
              let completion =
                if base < n then nan
                else Array.fold_left (fun acc a -> Float.max acc a) neg_infinity u
              in
              (base + join_delivered, completion)
        in
        let deadline_met =
          match result with
          | None -> None
          | Some _ ->
              if request.Workload.deadline = infinity then None
              else
                Some
                  ((not (Float.is_nan completion_us))
                  && completion_us -. request.Workload.at <= request.Workload.deadline)
        in
        (match deadline_met with
        | Some false ->
            incr deadline_misses;
            emit
              (Event.Deadline_miss
                 { rid; deadline = request.Workload.deadline; finish = completion_us })
        | _ -> ());
        {
          request;
          cache;
          plan_us;
          predicted_us;
          decision;
          result;
          attempts = attempts.(rid);
          delivered_union;
          completion_us;
          deadline_met;
        })
      partial
  in
  let admitted = ref 0 and invalid = ref 0 and delivered = ref 0 and mk_sum = ref 0. in
  let slo = Array.make 2 empty_slo in
  let class_of (r : Workload.request) =
    match r.Workload.priority with Workload.High -> 0 | Workload.Low -> 1
  in
  Array.iter
    (fun o ->
      let c = class_of o.request in
      let s = slo.(c) in
      let s = { s with c_requests = s.c_requests + 1 } in
      let s =
        match o.result with
        | Some r ->
            incr admitted;
            delivered := !delivered + o.delivered_union;
            mk_sum := !mk_sum +. (r.Session.r_makespan -. o.request.Workload.at);
            let population = Array.length r.Session.r_arrival in
            let met = if o.deadline_met = Some true then 1 else 0 in
            let has_deadline = if o.deadline_met = None then 0 else 1 in
            {
              s with
              c_admitted = s.c_admitted + 1;
              c_requeues = s.c_requeues + (o.attempts - 1);
              c_shed = s.c_shed + shed_by.(o.request.Workload.rid);
              c_delivered = s.c_delivered + o.delivered_union;
              c_ranks = s.c_ranks + population;
              c_deadlines = s.c_deadlines + has_deadline;
              c_deadline_met = s.c_deadline_met + met;
            }
        | None ->
            (match o.decision with
            | Admission.Reject (Admission.Bad_policy _) -> incr invalid
            | _ -> ());
            let was_shed = shed_by.(o.request.Workload.rid) > 0 in
            {
              s with
              c_shed = s.c_shed + shed_by.(o.request.Workload.rid);
              c_rejected = (s.c_rejected + if was_shed then 0 else 1);
            }
      in
      slo.(c) <- s)
    outcomes;
  let latencies = Array.map (fun o -> o.plan_us) outcomes in
  Array.sort Float.compare latencies;
  let stats = Plan_cache.stats cache in
  let lookups = stats.Plan_cache.hits + stats.Plan_cache.misses in
  {
    outcomes;
    requests = nreq;
    admitted = !admitted;
    rejected = nreq - !admitted;
    invalid = !invalid;
    cache_stats = stats;
    hit_rate =
      (if lookups = 0 then 0.
       else float_of_int stats.Plan_cache.hits /. float_of_int lookups);
    plan_wall_s;
    plans_per_sec =
      (if plan_wall_s > 0. then float_of_int nreq /. plan_wall_s else 0.);
    plan_p50_us = percentile latencies 50.;
    plan_p99_us = percentile latencies 99.;
    horizon_us = Engine.now engine;
    delivered = !delivered;
    mean_makespan_us = (if !admitted = 0 then 0. else !mk_sum /. float_of_int !admitted);
    sheds = !sheds;
    requeues = !requeues;
    retry_lookups = !retry_lookups;
    deadline_misses = !deadline_misses;
    slo_high = slo.(0);
    slo_low = slo.(1);
    chaotic;
  }

let smoke_lines report =
  let lines = ref [] in
  let addf fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  Array.iter
    (fun o ->
      let r = o.request in
      let chaos_suffix =
        if not report.chaotic then ""
        else begin
          let b = Buffer.create 32 in
          if r.Workload.priority = Workload.High then Buffer.add_string b " prio=high";
          if r.Workload.deadline < infinity then
            Printf.bprintf b " deadline=%.0f" r.Workload.deadline;
          if o.attempts > 1 then
            Printf.bprintf b " attempts=%d union=%d" o.attempts o.delivered_union;
          (match o.deadline_met with
          | Some true -> Buffer.add_string b " sla=met"
          | Some false -> Buffer.add_string b " sla=miss"
          | None -> ());
          Buffer.contents b
        end
      in
      addf "req %-3d at=%.1f root=%d msg=%d policy=%s cache=%s %s%s%s" r.Workload.rid
        r.Workload.at r.Workload.root r.Workload.msg r.Workload.policy
        (match o.cache with
        | `Hit -> "hit"
        | `Miss -> "miss"
        | `Invalidated -> "invalidated"
        | `Unplanned -> "-")
        (match o.decision with
        | Admission.Admit -> "admitted"
        | Admission.Reject reason ->
            "rejected (" ^ Admission.reason_string reason ^ ")")
        (match o.result with
        | None -> ""
        | Some res ->
            Printf.sprintf " delivered=%d/%d makespan=%.1f" res.Session.delivered
              (Array.length res.Session.r_arrival)
              (res.Session.r_makespan -. r.Workload.at))
        chaos_suffix)
    report.outcomes;
  addf "requests %d admitted %d rejected %d" report.requests report.admitted
    report.rejected;
  addf "cache hits %d misses %d invalidations %d entries %d (hit rate %.3f)"
    report.cache_stats.Plan_cache.hits report.cache_stats.Plan_cache.misses
    report.cache_stats.Plan_cache.invalidations report.cache_stats.Plan_cache.entries
    report.hit_rate;
  addf "delivered ranks %d, mean session makespan %.1f us, horizon %.1f us"
    report.delivered report.mean_makespan_us report.horizon_us;
  if report.chaotic then begin
    let slo_line label s =
      addf
        "slo %s: requests %d admitted %d shed %d rejected %d requeues %d delivery \
         %.3f deadline %.3f"
        label s.c_requests s.c_admitted s.c_shed s.c_rejected s.c_requeues
        (delivery_ratio s) (deadline_attainment s)
    in
    slo_line "high" report.slo_high;
    slo_line "low" report.slo_low;
    addf "chaos: sheds %d requeues %d retry lookups %d deadline misses %d invalid %d"
      report.sheds report.requeues report.retry_lookups report.deadline_misses
      report.invalid
  end;
  List.rev !lines

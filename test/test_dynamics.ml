(* Tests for the dynamics layer: the spec grammar, the drift/churn model,
   the executor under dynamics, the estimated latency matrix, the
   replan-vs-ride-out machinery and the check-harness wiring.  The central
   invariant mirrors the faults suite: with a zero-dynamics model attached
   the reliable executor is a bit-exact identity. *)

module Dyn = Gridb_des.Dynamics
module Faults = Gridb_des.Faults
module Adaptive = Gridb_des.Adaptive
module Exec = Gridb_des.Exec
module Plan = Gridb_des.Plan
module Machines = Gridb_topology.Machines
module Generators = Gridb_topology.Generators
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Policy = Gridb_sched.Policy
module Sched_engine = Gridb_sched.Engine
module Repair = Gridb_sched.Repair
module Replan = Gridb_sched.Replan
module Scenario = Gridb_check.Scenario
module Run = Gridb_check.Run
module Invariant = Gridb_check.Invariant
module Metamorphic = Gridb_check.Metamorphic
module Rng = Gridb_util.Rng

(* Small clusters keep the DES population (and runtimes) down; the full
   default_random_spec grids are bench territory. *)
let small_spec = { Generators.default_random_spec with Generators.cluster_size = (1, 6) }

let small_grid ~seed ~n = Generators.uniform_random ~rng:(Rng.create seed) ~n small_spec

let plan_of_grid ?(policy = Policy.ecef_la) ~msg grid =
  let inst = Instance.of_grid ~root:0 ~msg grid in
  let schedule = Sched_engine.run policy inst in
  let machines = Machines.expand grid in
  (inst, schedule, machines, Plan.of_cluster_schedule machines schedule)

(* --- spec grammar ------------------------------------------------------- *)

let test_spec_parse_basics () =
  Alcotest.(check bool) "empty is none" true (Dyn.of_string "" = Ok Dyn.none);
  Alcotest.(check bool) "none is none" true (Dyn.of_string "none" = Ok Dyn.none);
  Alcotest.(check bool) "NONE is none" true (Dyn.of_string "NONE" = Ok Dyn.none);
  (match Dyn.of_string "drift=2e-5,churn=5e-8,recluster=2e5" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      Alcotest.(check (float 0.)) "drift" 2e-5 s.Dyn.drift_rate;
      Alcotest.(check (float 0.)) "leave via churn" 5e-8 s.Dyn.leave_rate;
      Alcotest.(check (float 0.)) "join via churn" 5e-8 s.Dyn.join_rate;
      Alcotest.(check (float 0.)) "recluster" 2e5 s.Dyn.recluster_every;
      Alcotest.(check bool) "not none" false (Dyn.is_none s));
  match Dyn.of_string "join-max=3,join=1e-7" with
  | Error e -> Alcotest.fail e
  | Ok s -> Alcotest.(check int) "join-max" 3 s.Dyn.join_max

let expect_error_mentioning key str =
  match Dyn.of_string str with
  | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed but should not" str)
  | Error e ->
      let mentions =
        let kl = String.length key and el = String.length e in
        let rec go i = i + kl <= el && (String.sub e i kl = key || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Printf.sprintf "error %S names %S" e key) true mentions

let test_spec_parse_errors () =
  (* The Faults.of_string contract: the error names the offending key as
     the user typed it. *)
  expect_error_mentioning "drift" "drift=-1";
  expect_error_mentioning "drift-sigma" "drift-sigma=0";
  expect_error_mentioning "drift-max" "drift=1e-5,drift-max=0.5";
  expect_error_mentioning "load-on" "load-on=0";
  expect_error_mentioning "churn" "churn=-2";
  expect_error_mentioning "join-max" "join-max=2.5";
  expect_error_mentioning "recluster" "recluster=-1";
  expect_error_mentioning "warp" "warp=9";
  expect_error_mentioning "known:" "warp=9";
  (match Dyn.of_string "drift" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "key without value parsed");
  match Dyn.of_string "drift=fast" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric value parsed"

(* Specs drawn from %g-exact values, so print/parse is lossless. *)
let spec_gen =
  let open QCheck.Gen in
  let pickf l = oneofl l in
  map
    (fun ((drift, sigma, dmax), (on, off), (leave, join, jmax, recluster)) ->
      Dyn.v ~drift_rate:drift ~drift_sigma:sigma ~drift_max:dmax ~load_on_mean:on
        ~load_off_mean:off ~leave_rate:leave ~join_rate:join ~join_max:jmax
        ~recluster_every:recluster ())
    (triple
       (triple (pickf [ 0.; 1e-5; 2e-5; 1e-4 ]) (pickf [ 0.25; 0.5; 1. ])
          (pickf [ 2.; 4.; 8. ]))
       (pair (pickf [ 1e5; 2e5 ]) (pickf [ 0.; 2e5 ]))
       (quad (pickf [ 0.; 3e-8; 1e-7 ]) (pickf [ 0.; 3e-8; 1e-7 ]) (pickf [ 0; 2; 4 ])
          (pickf [ 0.; 2e5; 5e5 ])))

let spec_roundtrip =
  QCheck.Test.make ~name:"dynamics spec print/parse round-trips"
    ~count:(Testutil.count 200)
    (QCheck.make spec_gen ~print:Dyn.to_string)
    (fun s ->
      match Dyn.of_string (Dyn.to_string s) with
      (* An inert spec prints as "none", so auxiliary fields (sigma, load
         means...) legitimately reset to the defaults on the way back. *)
      | Ok s' -> if Dyn.is_none s then s' = Dyn.none else s' = s
      | Error _ -> false)

let test_to_string_fixpoint () =
  Alcotest.(check string) "none prints none" "none" (Dyn.to_string Dyn.none);
  (* churn shorthand is never printed back, so print∘parse∘print is a
     fixpoint even for specs entered via the shorthand. *)
  match Dyn.of_string "churn=5e-8" with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let printed = Dyn.to_string s in
      Alcotest.(check string) "shorthand expanded" "leave=5e-08,join=5e-08" printed;
      Alcotest.(check bool) "fixpoint" true
        (Result.map Dyn.to_string (Dyn.of_string printed) = Ok printed)

(* --- the model: determinism, bounds, churn books ------------------------ *)

let drifty_spec =
  Dyn.v ~drift_rate:1e-4 ~drift_sigma:0.5 ~drift_max:4. ~load_off_mean:0. ()

let test_factor_bounds_and_determinism () =
  let mk () = Dyn.create ~seed:11 ~n:6 ~clusters:3 drifty_spec in
  let d1 = mk () and d2 = mk () in
  let times = [ 0.; 1e4; 1e5; 5e5; 1e6; 3e6 ] in
  List.iter
    (fun at ->
      for src = 0 to 5 do
        for dst = 0 to 5 do
          let f = Dyn.factor d1 ~src ~dst ~at in
          Alcotest.(check bool)
            (Printf.sprintf "factor %g in [1/4, 4] at %g" f at)
            true
            (f >= 0.25 && f <= 4.);
          if src = dst then
            Alcotest.(check (float 0.)) "self link undrifted" 1. f;
          Alcotest.(check (float 0.)) "same seed, same factor" f
            (Dyn.factor d2 ~src ~dst ~at)
        done
      done)
    times

let test_factor_query_order_independence () =
  (* Materialisation is lazy but pre-seeded per link: asking in a different
     order, or only for a subset, must not change any answer. *)
  let d1 = Dyn.create ~seed:7 ~n:4 ~clusters:2 drifty_spec in
  let d2 = Dyn.create ~seed:7 ~n:4 ~clusters:2 drifty_spec in
  let times = [ 2.5e5; 1e4; 9e5; 0.; 4e5 ] in
  (* d1: all links, ascending times.  d2: one link, shuffled times first. *)
  let sorted = List.sort compare times in
  let probe1 =
    List.concat_map
      (fun at ->
        List.concat_map
          (fun src -> List.map (fun dst -> Dyn.factor d1 ~src ~dst ~at) [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ])
      sorted
  in
  List.iter (fun at -> ignore (Dyn.factor d2 ~src:3 ~dst:1 ~at)) times;
  let probe2 =
    List.concat_map
      (fun at ->
        List.concat_map
          (fun src -> List.map (fun dst -> Dyn.factor d2 ~src ~dst ~at) [ 0; 1; 2; 3 ])
          [ 0; 1; 2; 3 ])
      sorted
  in
  Alcotest.(check (list (float 0.))) "query order never perturbs draws" probe1 probe2

let test_churn_pre_drawn () =
  let spec = Dyn.v ~leave_rate:1e-5 ~join_rate:1e-5 ~join_max:3 () in
  let d = Dyn.create ~seed:3 ~n:5 ~clusters:4 spec in
  Alcotest.(check int) "size" 5 (Dyn.size d);
  Alcotest.(check int) "total = n + join_max" 8 (Dyn.total d);
  Array.iteri
    (fun k (j : Dyn.join) ->
      Alcotest.(check int) "join ranks count up from n" (5 + k) j.Dyn.rank;
      Alcotest.(check bool) "join cluster in range" true (j.Dyn.cluster >= 0 && j.Dyn.cluster < 4);
      Alcotest.(check bool) "join time positive" true (j.Dyn.at > 0.);
      Alcotest.(check bool) "join never leaves" true
        (Dyn.leave_time d j.Dyn.rank = infinity))
    (Dyn.joins d);
  let sorted =
    Array.to_list (Dyn.joins d) |> List.map (fun j -> j.Dyn.at) |> List.sort compare
  in
  Alcotest.(check (list (float 0.)))
    "joins in arrival order" sorted
    (Array.to_list (Dyn.joins d) |> List.map (fun j -> j.Dyn.at));
  for i = 0 to 4 do
    Alcotest.(check bool) "leave time positive" true (Dyn.leave_time d i > 0.);
    Alcotest.(check bool) "left is leave_time <= at" true
      (Dyn.left d i ~at:(Dyn.leave_time d i))
  done;
  Alcotest.check_raises "rank out of range"
    (Invalid_argument "Dynamics.leave_time: rank out of range") (fun () ->
      ignore (Dyn.leave_time d 8))

let test_t0_shifts_origin () =
  (* Shifting the time origin translates every drawn time — leaves, join
     arrivals, the drift timeline — without touching the random stream, so
     a session launched mid-simulation sees dynamics from its own start. *)
  let spec = Dyn.v ~drift_rate:1e-5 ~leave_rate:1e-5 ~join_rate:1e-5 ~join_max:3 () in
  let t0 = 5e5 in
  let a = Dyn.create ~seed:3 ~n:5 ~clusters:4 spec
  and b = Dyn.create ~seed:3 ~t0 ~n:5 ~clusters:4 spec in
  for i = 0 to 4 do
    let la = Dyn.leave_time a i in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "leave %d shifted by t0" i)
      (if Float.is_finite la then la +. t0 else la)
      (Dyn.leave_time b i)
  done;
  Array.iter2
    (fun (ja : Dyn.join) (jb : Dyn.join) ->
      Alcotest.(check int) "join rank t0-independent" ja.Dyn.rank jb.Dyn.rank;
      Alcotest.(check int) "join cluster t0-independent" ja.Dyn.cluster jb.Dyn.cluster;
      Alcotest.(check (float 1e-9)) "join time shifted by t0" (ja.Dyn.at +. t0) jb.Dyn.at)
    (Dyn.joins a) (Dyn.joins b);
  for src = 0 to 4 do
    for dst = 0 to 4 do
      if src <> dst then
        Alcotest.(check (float 1e-9))
          "drift timeline shifted by t0"
          (Dyn.factor a ~src ~dst ~at:1e5)
          (Dyn.factor b ~src ~dst ~at:(1e5 +. t0))
    done
  done;
  Alcotest.check_raises "non-finite t0"
    (Invalid_argument "Dynamics.create: t0 must be finite") (fun () ->
      ignore (Dyn.create ~t0:infinity ~n:5 ~clusters:4 spec))

(* --- zero-dynamics bit-identity ----------------------------------------- *)

let dynamics_identity_prop =
  QCheck.Test.make ~name:"zero-dynamics model is a bit-exact identity"
    ~count:(Testutil.count 15)
    QCheck.(pair small_int (bool))
    (fun (seed0, faulty) ->
      let seed = 1 + (seed0 mod 50) in
      let n = 2 + (seed mod 4) in
      let grid = small_grid ~seed ~n in
      let _, _, machines, plan = plan_of_grid ~msg:65_536 grid in
      let spec = if faulty then Faults.v ~loss:0.1 () else Faults.none in
      let transport =
        if seed mod 2 = 0 then Exec.adaptive ~reroute:true () else Exec.Fixed
      in
      Metamorphic.dynamics_identity ~msg:65_536 ~seed ~transport ~spec machines plan
      = Ok ())

(* --- executor under churn ----------------------------------------------- *)

(* A leave rate high enough that departures land inside the horizon with
   certainty across a few seeds, plus joins early enough to be adopted. *)
let churny_spec = Dyn.v ~leave_rate:2e-6 ~join_rate:1e-5 ~join_max:3 ()

let run_churny ~seed =
  let grid = small_grid ~seed ~n:4 in
  let _, _, machines, plan = plan_of_grid ~msg:65_536 grid in
  let n = Machines.count machines in
  let d = Dyn.create ~seed:(seed lxor 0x64796e) ~n ~clusters:4 churny_spec in
  let rel =
    Exec.run_reliable ~msg:65_536 ~dynamics:d
      ~transport:(Exec.adaptive ~reroute:true ())
      machines plan
  in
  (d, rel, n)

let test_churn_delivery_accounting () =
  let saw_leaver = ref false and saw_join = ref false in
  for seed = 1 to 6 do
    let d, rel, n = run_churny ~seed in
    let ntot = Dyn.total d in
    Alcotest.(check int) "arrival vector spans joins" ntot
      (Array.length rel.Exec.r_arrival);
    (* Departures: exactly the pre-drawn leaves inside the horizon. *)
    let expected_left = ref [] in
    for k = n - 1 downto 0 do
      if Dyn.leave_time d k <= rel.Exec.horizon then expected_left := k :: !expected_left
    done;
    Alcotest.(check (list int))
      "left matches the model" !expected_left
      (List.sort compare rel.Exec.left);
    if rel.Exec.left <> [] then saw_leaver := true;
    (* Nothing is delivered to a rank at or after its departure; joins
       never receive before they exist. *)
    Array.iteri
      (fun k a ->
        if not (Float.is_nan a) then
          Alcotest.(check bool) "delivered before departure" true
            (a < Dyn.leave_time d k))
      rel.Exec.r_arrival;
    Array.iter
      (fun (j : Dyn.join) ->
        let a = rel.Exec.r_arrival.(j.Dyn.rank) in
        if not (Float.is_nan a) then begin
          saw_join := true;
          Alcotest.(check bool) "join delivered after joining" true (a >= j.Dyn.at);
          Alcotest.(check bool) "delivered join is within the horizon" true
            (j.Dyn.at <= rel.Exec.horizon)
        end)
      (Dyn.joins d);
    (* delivered counter agrees with the vector. *)
    let delivered_vec =
      Array.fold_left (fun acc a -> if Float.is_nan a then acc else acc + 1) 0
        rel.Exec.r_arrival
    in
    Alcotest.(check int) "delivered counter" delivered_vec rel.Exec.delivered
  done;
  Alcotest.(check bool) "some rank departed across the seeds" true !saw_leaver;
  Alcotest.(check bool) "some join was adopted across the seeds" true !saw_join

let test_join_requires_reroute () =
  (* Adoption is gated on a rerouting transport: under Fixed, joins still
     show up in the membership books ([joined] records arrivals within the
     horizon) but none of them is ever delivered to. *)
  let grid = small_grid ~seed:2 ~n:4 in
  let _, _, machines, plan = plan_of_grid ~msg:65_536 grid in
  let n = Machines.count machines in
  let d =
    Dyn.create ~seed:5 ~n ~clusters:4 (Dyn.v ~join_rate:1e-4 ~join_max:2 ())
  in
  let rel = Exec.run_reliable ~msg:65_536 ~dynamics:d ~transport:Exec.Fixed machines plan in
  Array.iter
    (fun (j : Dyn.join) ->
      Alcotest.(check bool) "join stays undelivered" true
        (Float.is_nan rel.Exec.r_arrival.(j.Dyn.rank)))
    (Dyn.joins d);
  List.iter
    (fun r ->
      Alcotest.(check bool) "joined list only records arrival" true
        (r >= n && Dyn.leave_time d r = infinity))
    rel.Exec.joined;
  Alcotest.(check bool) "delivered never exceeds the original population" true
    (rel.Exec.delivered <= n)

(* --- estimated latency matrix (satellite: full-matrix view) -------------- *)

let test_estimated_matrix_agrees_with_links () =
  let est = Adaptive.create ~n:4 () in
  let nominal_m =
    [| [| 0.; 100.; 400.; 250. |]; [| 100.; 0.; 300.; 80. |];
       [| 400.; 300.; 0.; 60. |]; [| 250.; 80.; 60.; 0. |] |]
  in
  let nominal ~src ~dst = nominal_m.(src).(dst) in
  (* Latch nominals and feed a few links samples: 0->1 slowed 3x, 1->0
     slowed 1.5x, 2->3 sped up 0.5x; everything else unobserved. *)
  List.iter
    (fun (src, dst, mult) ->
      ignore
        (Adaptive.rto est ~src ~dst ~nominal:nominal_m.(src).(dst)
           ~fallback:(4. *. nominal_m.(src).(dst)));
      for k = 0 to 7 do
        ignore
          (Adaptive.on_sample est ~src ~dst
             ~rtt:(mult *. nominal_m.(src).(dst))
             ~retransmitted:false
             ~now:(float_of_int (k + 1) *. 1_000.))
      done)
    [ (0, 1, 3.); (1, 0, 1.5); (2, 3, 0.5) ];
  let m = Adaptive.estimated_latency_matrix est ~nominal in
  for i = 0 to 3 do
    for j = 0 to 3 do
      let expected =
        if i = j then 0. else Adaptive.quality est ~src:i ~dst:j *. nominal_m.(i).(j)
      in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "entry (%d,%d) equals quality x nominal" i j)
        expected m.(i).(j)
    done
  done;
  (* Observed links moved, unobserved ones sit at nominal. *)
  Alcotest.(check bool) "slowed link reads slower" true (m.(0).(1) > 250.);
  Alcotest.(check bool) "sped-up link reads faster" true (m.(2).(3) < 60.);
  Alcotest.(check (float 1e-9)) "unobserved link at nominal" 300. m.(1).(2);
  let sym = Adaptive.estimated_latency_matrix ~symmetric:true est ~nominal in
  for i = 0 to 3 do
    for j = 0 to 3 do
      let expected = if i = j then 0. else Float.max m.(i).(j) m.(j).(i) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "symmetric entry (%d,%d) is the max of both directions" i j)
        expected
        sym.(i).(j)
    done
  done

(* --- Replan: decide / fresh / evaluate ----------------------------------- *)

let test_replan_decide () =
  let t = Replan.default in
  Alcotest.(check string) "ride-out" "ride-out"
    (Replan.decision_to_string
       (Replan.decide t ~drift:0. ~divergence:0. ~departed:0));
  Alcotest.(check bool) "splice on departure" true
    (Replan.decide t ~drift:0.1 ~divergence:0.1 ~departed:1 = Replan.Splice);
  Alcotest.(check bool) "replan on drift" true
    (Replan.decide t ~drift:0.35 ~divergence:0. ~departed:0 = Replan.Replan);
  Alcotest.(check bool) "replan on divergence" true
    (Replan.decide t ~drift:0. ~divergence:0.3 ~departed:0 = Replan.Replan);
  Alcotest.(check bool) "replan wins over splice" true
    (Replan.decide t ~drift:0.9 ~divergence:0. ~departed:2 = Replan.Replan);
  (match Replan.v ~drift:0.5 () with
  | t' -> Alcotest.(check (float 0.)) "custom drift" 0.5 t'.Replan.drift);
  Alcotest.check_raises "invalid threshold"
    (Invalid_argument "Replan.v: drift threshold must be positive") (fun () ->
      ignore (Replan.v ~drift:0. ()))

let test_replan_fresh () =
  let s = Replan.fresh ~root:1 ~n:3 in
  Alcotest.(check int) "root" 1 s.Schedule.root;
  Alcotest.(check int) "n" 3 s.Schedule.n;
  Alcotest.(check bool) "no events" true (s.Schedule.events = []);
  Alcotest.(check (float 0.)) "root ready" 0. s.Schedule.ready.(1);
  Alcotest.(check bool) "others unreached" true
    (s.Schedule.ready.(0) = infinity && s.Schedule.ready.(2) = infinity);
  Alcotest.check_raises "bad root" (Invalid_argument "Replan.fresh: root out of range")
    (fun () -> ignore (Replan.fresh ~root:3 ~n:3))

(* Repair on a fresh schedule is a full replan: everything alive receives. *)
let test_full_replan_via_fresh () =
  let grid = small_grid ~seed:9 ~n:5 in
  let inst = Instance.of_grid ~root:0 ~msg:65_536 grid in
  (* The crash must precede [at]: crashes after the repair instant are
     future faults and the cluster still counts as a live target. *)
  let o =
    Repair.repair ~at:20. inst (Replan.fresh ~root:0 ~n:5)
      ~crash:[| infinity; infinity; 10.; infinity; infinity |]
  in
  Alcotest.(check (list int)) "dead cluster excluded" [ 2 ] o.Repair.dead;
  Alcotest.(check int) "everyone alive delivered" 4
    (Array.fold_left (fun a d -> if d then a + 1 else a) 0 o.Repair.delivered);
  Alcotest.(check int) "replanned everything" 3 (List.length o.Repair.replanned)

let test_evaluate_retimes_under_truth () =
  (* Two clusters, one send.  Under the truth the link is 2x slower than
     planned; evaluate must re-time, not trust the baked-in stamps. *)
  let latency = [| [| 0.; 100. |]; [| 100.; 0. |] |] in
  let gap = [| [| 0.; 50. |]; [| 50.; 0. |] |] in
  let intra = [| 10.; 10. |] in
  let inst = Instance.v ~root:0 ~latency ~gap ~intra in
  let s = Sched_engine.run Policy.flat_tree inst in
  let slow =
    Instance.v ~root:0
      ~latency:[| [| 0.; 200. |]; [| 200.; 0. |] |]
      ~gap:[| [| 0.; 100. |]; [| 100.; 0. |] |]
      ~intra
  in
  let v = Replan.evaluate slow ~halt:[| infinity; infinity |] s in
  Alcotest.(check int) "both delivered" 2 v.Replan.delivered_count;
  Alcotest.(check int) "nobody stranded" 0 v.Replan.stranded;
  (* Sender busy until gap 100, arrival 300; makespan = busy + intra at the
     completion-dominating cluster: max(100 + 10 sender, 300 + 10). *)
  Alcotest.(check (float 1e-9)) "re-timed makespan" 310. v.Replan.makespan;
  (* Kill the receiver before the re-timed arrival: the send still executes
     (sender pays the gap) but nothing lands. *)
  let v' = Replan.evaluate slow ~halt:[| infinity; 250. |] s in
  Alcotest.(check int) "only the root holds it" 1 v'.Replan.delivered_count;
  Alcotest.(check int) "receiver dead, not stranded" 0 v'.Replan.stranded;
  (* Under the nominal truth the same halt is late enough. *)
  let v'' = Replan.evaluate inst ~halt:[| infinity; 250. |] s in
  Alcotest.(check int) "nominal truth delivers" 2 v''.Replan.delivered_count

let test_evaluate_strands_orphans () =
  (* Root -> 1 -> 2 chain: killing 1 before its send strands 2. *)
  let latency =
    [| [| 0.; 100.; 500. |]; [| 100.; 0.; 100. |]; [| 500.; 100.; 0. |] |]
  in
  let gap = Array.map (Array.map (fun l -> l /. 2.)) latency in
  let intra = [| 10.; 10.; 10. |] in
  let inst = Instance.v ~root:0 ~latency ~gap ~intra in
  let s = Sched_engine.run Policy.ecef_la inst in
  let relayed =
    List.exists (fun (e : Schedule.event) -> e.Schedule.src = 1) s.Schedule.events
  in
  if relayed then begin
    let v = Replan.evaluate inst ~halt:[| infinity; 140.; infinity |] s in
    Alcotest.(check int) "relay's subtree stranded" 1 v.Replan.stranded;
    Alcotest.(check bool) "cluster 2 not delivered" false v.Replan.delivered.(2)
  end

(* --- repeated splices (satellite: sequential-repair property) ------------ *)

(* Receive-at-most-once over a (possibly spliced) schedule's events, plus
   exact-once for clusters the outcome claims delivered. *)
let check_spliced inst (o : Repair.outcome) =
  let s = o.Repair.schedule in
  let received = Array.make s.Schedule.n 0 in
  List.iter
    (fun (e : Schedule.event) -> received.(e.Schedule.dst) <- received.(e.Schedule.dst) + 1)
    s.Schedule.events;
  let ok = ref true in
  for k = 0 to s.Schedule.n - 1 do
    if k = s.Schedule.root then ok := !ok && received.(k) = 0
    else if o.Repair.delivered.(k) then ok := !ok && received.(k) = 1
    else ok := !ok && received.(k) <= 1
  done;
  !ok && Invariant.causality inst s = Ok ()

let double_splice_prop =
  QCheck.Test.make ~name:"two successive splices keep receive-once and causality"
    ~count:(Testutil.count 40)
    QCheck.(pair small_int small_int)
    (fun (seed0, pick) ->
      let seed = 1 + (seed0 mod 100) in
      let n = 4 + (seed mod 4) in
      let grid = small_grid ~seed ~n in
      let inst = Instance.of_grid ~root:0 ~msg:250_000 grid in
      let s = Sched_engine.run Policy.ecef_la inst in
      let mk = Schedule.makespan inst s in
      let c1 = 1 + (pick mod (n - 1)) in
      let c2 = 1 + ((pick + 1) mod (n - 1)) in
      QCheck.assume (c1 <> c2);
      let t1 = 0.3 *. mk and t2 = 0.6 *. mk in
      let crash1 = Array.init n (fun k -> if k = c1 then t1 else infinity) in
      let o1 = Repair.repair ~at:t1 inst s ~crash:crash1 in
      let crash2 =
        Array.init n (fun k -> if k = c1 then t1 else if k = c2 then t2 else infinity)
      in
      let o2 = Repair.repair ~at:t2 inst o1.Repair.schedule ~crash:crash2 in
      check_spliced inst o1 && check_spliced inst o2
      && (* a cluster delivered by the first splice stays delivered: the
            second repair never un-delivers survivors. *)
      Array.for_all2
        (fun d1 d2 -> (not d1) || d2 || o2.Repair.dead <> [])
        o1.Repair.delivered o2.Repair.delivered)

(* --- scenario wiring ----------------------------------------------------- *)

let test_scenario_dynamics_roundtrip () =
  let sc = Scenario.generate (Rng.create 12) in
  Alcotest.(check bool) "generated scenario round-trips" true
    (Scenario.of_json (Scenario.to_json sc) = Ok sc);
  (* Back-compat: a reproducer recorded before the dynamics field existed
     still loads, as a dynamics-free scenario. *)
  let legacy =
    "{\"format\":\"gridsched-check/1\",\"seed\":7,\"n\":3,\"msg\":10000,\"root\":1,\
     \"policy\":\"FEF\",\"transport\":\"fixed\",\"faults\":\"none\"}"
  in
  (match Scenario.of_json legacy with
  | Error e -> Alcotest.fail e
  | Ok sc -> Alcotest.(check string) "defaults to none" "none" sc.Scenario.dynamics);
  (* The dyn seed tag matches the experiment layer's derivation. *)
  let sc = { sc with Scenario.seed = 100 } in
  Alcotest.(check int) "dyn seed tag" (100 lxor 0x64796e) (Scenario.dyn_seed sc)

let test_scenario_dynamics_shrinks_first () =
  let sc = Scenario.generate (Rng.create 12) in
  let sc = { sc with Scenario.dynamics = "drift=2e-5,churn=5e-8" } in
  match Scenario.shrink_candidates sc with
  | first :: _ -> Alcotest.(check string) "dynamics dropped first" "none" first.Scenario.dynamics
  | [] -> Alcotest.fail "no shrink candidates"

let test_run_check_dynamic_scenarios () =
  let base =
    {
      Scenario.seed = 0;
      n = 3;
      msg = 10_000;
      root = 0;
      policy = "ECEF-LA";
      transport = "adaptive,reroute";
      faults = "none";
      dynamics = "drift=2e-5,load-off=0,churn=2e-6,recluster=2e5";
    }
  in
  (match Run.check base with
  | Ok () -> ()
  | Error v -> Alcotest.failf "dynamic scenario: %a" Invariant.pp_violation v);
  (match Run.check { base with Scenario.faults = "loss=0.1"; transport = "fixed" } with
  | Ok () -> ()
  | Error v -> Alcotest.failf "dynamic+faulty scenario: %a" Invariant.pp_violation v);
  match Run.check { base with Scenario.dynamics = "drift=oops" } with
  | Error { Invariant.invariant = "scenario"; _ } -> ()
  | Error v -> Alcotest.failf "wrong violation: %a" Invariant.pp_violation v
  | Ok () -> Alcotest.fail "bad dynamics spec accepted"

(* --- the experiment ------------------------------------------------------ *)

let test_experiment_outcome () =
  let grid = small_grid ~seed:21 ~n:4 in
  (* Small grids finish fast: the re-clustering period must sit well
     inside the horizon or no tick ever fires. *)
  let dyn =
    Dyn.v ~drift_rate:1e-4 ~drift_sigma:0.5 ~load_off_mean:0. ~leave_rate:1e-6
      ~join_rate:1e-6 ~recluster_every:5e3 ()
  in
  let o = Gridb_experiments.Dynamics.run ~seed:21 ~msg:65_536 ~dyn grid in
  Alcotest.(check int) "clusters" 4 o.Gridb_experiments.Dynamics.clusters;
  Alcotest.(check bool) "delivery ratio in (0, 1]" true
    (o.Gridb_experiments.Dynamics.delivery_ratio > 0.
    && o.Gridb_experiments.Dynamics.delivery_ratio <= 1.);
  Alcotest.(check bool) "re-clustering trail recorded" true
    (o.Gridb_experiments.Dynamics.ticks <> []);
  List.iter
    (fun (t : Gridb_experiments.Dynamics.tick) ->
      Alcotest.(check bool) "tick inside horizon" true
        (t.Gridb_experiments.Dynamics.at <= o.Gridb_experiments.Dynamics.horizon);
      Alcotest.(check bool) "drift in [0, 1]" true
        (t.Gridb_experiments.Dynamics.drift >= 0. && t.Gridb_experiments.Dynamics.drift <= 1.))
    o.Gridb_experiments.Dynamics.ticks;
  (* chosen returns the verdict of the decision actually taken. *)
  let chosen = Gridb_experiments.Dynamics.chosen o in
  let expected =
    match o.Gridb_experiments.Dynamics.decision with
    | Replan.Ride_out -> o.Gridb_experiments.Dynamics.ride_out
    | Replan.Splice -> o.Gridb_experiments.Dynamics.splice
    | Replan.Replan -> o.Gridb_experiments.Dynamics.replan
  in
  Alcotest.(check bool) "chosen matches decision" true (chosen == expected);
  (* All three candidate verdicts stay within the cluster count. *)
  List.iter
    (fun (v : Replan.verdict) ->
      Alcotest.(check bool) "delivered_count within range" true
        (v.Replan.delivered_count >= 1 && v.Replan.delivered_count <= 4))
    [ o.Gridb_experiments.Dynamics.ride_out; o.Gridb_experiments.Dynamics.splice;
      o.Gridb_experiments.Dynamics.replan ];
  let rendered = Gridb_experiments.Dynamics.render o in
  Alcotest.(check bool) "render mentions the decision" true
    (let needle = Replan.decision_to_string o.Gridb_experiments.Dynamics.decision in
     let nl = String.length needle and rl = String.length rendered in
     let rec go i = i + nl <= rl && (String.sub rendered i nl = needle || go (i + 1)) in
     go 0)

let test_experiment_static_is_ride_out () =
  (* recluster ticks alone (no drift, no churn): signals stay zero and the
     decision must be ride-out with every candidate delivering totally. *)
  let grid = small_grid ~seed:5 ~n:3 in
  let dyn = Dyn.v ~recluster_every:1e5 () in
  let o = Gridb_experiments.Dynamics.run ~seed:5 ~msg:65_536 ~dyn grid in
  Alcotest.(check bool) "decision is ride-out" true
    (o.Gridb_experiments.Dynamics.decision = Replan.Ride_out);
  Alcotest.(check (float 0.)) "no partition drift" 0.
    o.Gridb_experiments.Dynamics.final_drift;
  Alcotest.(check (float 0.)) "full delivery" 1.
    o.Gridb_experiments.Dynamics.delivery_ratio;
  List.iter
    (fun (v : Replan.verdict) ->
      Alcotest.(check int) "candidate delivers everywhere" 3 v.Replan.delivered_count)
    [ o.Gridb_experiments.Dynamics.ride_out; o.Gridb_experiments.Dynamics.splice;
      o.Gridb_experiments.Dynamics.replan ]

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "dynamics"
    [
      ( "spec",
        [
          quick "parse basics" test_spec_parse_basics;
          quick "parse errors name the key" test_spec_parse_errors;
          QCheck_alcotest.to_alcotest spec_roundtrip;
          quick "to_string fixpoints" test_to_string_fixpoint;
        ] );
      ( "model",
        [
          quick "factor bounds and determinism" test_factor_bounds_and_determinism;
          quick "query order independence" test_factor_query_order_independence;
          quick "churn pre-drawn books" test_churn_pre_drawn;
          quick "t0 shifts the origin, not the draws" test_t0_shifts_origin;
        ] );
      ( "executor",
        [
          QCheck_alcotest.to_alcotest dynamics_identity_prop;
          quick "churn delivery accounting" test_churn_delivery_accounting;
          quick "joins need a rerouting transport" test_join_requires_reroute;
        ] );
      ( "estimator",
        [ quick "estimated matrix agrees per link" test_estimated_matrix_agrees_with_links ] );
      ( "replan",
        [
          quick "decide" test_replan_decide;
          quick "fresh" test_replan_fresh;
          quick "full replan via fresh" test_full_replan_via_fresh;
          quick "evaluate re-times under truth" test_evaluate_retimes_under_truth;
          quick "evaluate strands orphans" test_evaluate_strands_orphans;
          QCheck_alcotest.to_alcotest double_splice_prop;
        ] );
      ( "scenario",
        [
          quick "dynamics field round-trips and back-compat" test_scenario_dynamics_roundtrip;
          quick "shrinking drops dynamics first" test_scenario_dynamics_shrinks_first;
          quick "Run.check over dynamic scenarios" test_run_check_dynamic_scenarios;
        ] );
      ( "experiment",
        [
          quick "outcome is coherent" test_experiment_outcome;
          quick "static run rides out" test_experiment_static_is_ride_out;
        ] );
    ]

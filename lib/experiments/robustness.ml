module Policy = Gridb_sched.Policy
module Sched_engine = Gridb_sched.Engine
module Instance = Gridb_sched.Instance
module Repair = Gridb_sched.Repair
module Machines = Gridb_topology.Machines
module Faults = Gridb_des.Faults
module Dyn = Gridb_des.Dynamics
module Adaptive = Gridb_des.Adaptive
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Noise = Gridb_des.Noise
module Lowekamp = Gridb_clustering.Lowekamp
module Partition = Gridb_clustering.Partition
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type metrics = {
  policy : string;
  spec : Faults.spec;
  dyn : Dyn.spec;
  transport : string;
  retries : int;
  seed : int;
  total_ranks : int;
  delivered : int;
  delivery_ratio : float;
  crashed_ranks : int;
  left_ranks : int;
  joined_ranks : int;
  partition_drift : float option;
  baseline_makespan : float;
  makespan : float;
  inflation : float;
  transmissions : int;
  retransmissions : int;
  acks : int;
  gave_up : int;
  reroutes : int;
  circuit_opens : int;
  repair_invoked : bool;
  repairs : int;
  repaired_makespan : float option;
  estimated_repaired_makespan : float option;
  summary : Exec.reliable_summary option;
}

(* Cluster-level estimated instance: the estimator's per-link quality on the
   coordinator-to-coordinator links rescales the nominal inter-cluster gap
   and latency matrices — the Params-shaped live view, lifted to the
   scheduling layer, so Repair replans on measured numbers. *)
let estimated_instance est machines inst =
  let nc = inst.Instance.n in
  let q c d =
    if c = d then 1.
    else
      Adaptive.quality est
        ~src:(Machines.coordinator machines c)
        ~dst:(Machines.coordinator machines d)
  in
  let scale m = Array.init nc (fun i -> Array.init nc (fun j -> m.(i).(j) *. q i j)) in
  Instance.v ~root:inst.Instance.root ~latency:(scale inst.Instance.latency)
    ~gap:(scale inst.Instance.gap) ~intra:inst.Instance.intra

(* Machine-level partition drift: Lowekamp re-run on the estimator's live
   latency matrix (planning-time ranks only — joins have no planning-time
   pairing to diff against), compared by Rand index against the partition
   the same detector finds on the nominal matrix. *)
let partition_drift est machines =
  let n = Machines.count machines in
  let nominal ~src ~dst =
    if src >= n || dst >= n then 0. else Machines.latency machines src dst
  in
  let full = Adaptive.estimated_latency_matrix ~symmetric:true est ~nominal in
  let estimated =
    if Array.length full = n then full
    else Array.init n (fun i -> Array.sub full.(i) 0 n)
  in
  let plan_time = Lowekamp.detect (Machines.latency_matrix machines) in
  let live = Lowekamp.detect estimated in
  1. -. Partition.rand_index plan_time live

let run ?(policy = Policy.ecef_la) ?(msg = 1_000_000) ?(retries = 5) ?(seed = 0)
    ?(noise = Noise.Exact) ?(obs = Sink.null) ?(transport = Exec.Fixed)
    ?(dyn = Dyn.none) ?repetitions ?(jobs = 1) ~spec grid =
  let inst = Instance.of_grid ~root:0 ~msg grid in
  let schedule = Sched_engine.run ~obs policy inst in
  let machines = Machines.expand grid in
  let plan = Plan.of_cluster_schedule machines schedule in
  let baseline = Exec.run ~msg machines plan in
  let n = Machines.count machines in
  let faults = Faults.create ~seed ~n spec in
  (* The dynamics model draws from its own tagged stream so adding churn
     to a faulty scenario never perturbs the fault draws (and vice
     versa). *)
  let dmodel =
    if Dyn.is_none dyn then None
    else
      Some
        (Dyn.create
           ~seed:(seed lxor 0x64796e)
           ~n
           ~clusters:(Gridb_topology.Grid.size grid)
           dyn)
  in
  let rng = Gridb_util.Rng.create seed in
  (* Only the faulty reliable run is observed: the baseline exists purely
     as a reference makespan and would double every send on the stream. *)
  let rel =
    Exec.run_reliable ~noise ~rng ~msg ~faults ?dynamics:dmodel ~retries ~obs ~transport
      machines plan
  in
  (* Cluster-level halt vector: a cluster halts (as a schedule node) when
     its coordinator does — by crash or by departure.  Only halts inside
     the simulated horizon count ([rel.crashed] / [rel.left]); a draw
     beyond it is a future fault, not this run's. *)
  let crash =
    Array.init (Gridb_topology.Grid.size grid) (fun c ->
        let coord = Machines.coordinator machines c in
        let t = ref infinity in
        if List.mem coord rel.Exec.crashed then t := Faults.crash_time faults coord;
        (match dmodel with
        | Some d when List.mem coord rel.Exec.left ->
            t := Float.min !t (Dyn.leave_time d coord)
        | _ -> ());
        !t)
  in
  let repair_invoked = Array.exists Float.is_finite crash in
  let repairs, repaired_makespan, estimated_repaired_makespan =
    if repair_invoked then begin
      let o = Repair.repair ~policy inst schedule ~crash in
      if Sink.enabled obs then begin
        let crashed_clusters =
          Array.fold_left (fun acc t -> if Float.is_finite t then acc + 1 else acc) 0 crash
        in
        Sink.emit obs
          (Event.Repair_splice
             { crashed = crashed_clusters; replanned = List.length o.Repair.replanned })
      end;
      let estimated =
        match rel.Exec.estimator with
        | None -> None
        | Some est ->
            let o' =
              Repair.repair ~policy (estimated_instance est machines inst) schedule ~crash
            in
            Some o'.Repair.makespan
      in
      (List.length o.Repair.replanned, Some o.Repair.makespan, estimated)
    end
    else (0, None, None)
  in
  let summary =
    Option.map
      (fun repetitions ->
        Exec.mean_reliable ~noise ~msg ~repetitions ~retries ~transport ~jobs ~seed
          ~spec machines plan)
      repetitions
  in
  (* The reachable population: planning-time ranks plus joins whose
     arrival fell inside the simulated horizon (later joins never
     happened as far as this run is concerned). *)
  let ntot = n + List.length rel.Exec.joined in
  {
    policy = Policy.name policy;
    spec;
    dyn;
    transport = Exec.transport_to_string transport;
    retries;
    seed;
    total_ranks = ntot;
    delivered = rel.Exec.delivered;
    delivery_ratio = float_of_int rel.Exec.delivered /. float_of_int ntot;
    crashed_ranks = List.length rel.Exec.crashed;
    left_ranks = List.length rel.Exec.left;
    joined_ranks = List.length rel.Exec.joined;
    partition_drift = Option.map (fun est -> partition_drift est machines) rel.Exec.estimator;
    baseline_makespan = baseline.Exec.makespan;
    makespan = rel.Exec.r_makespan;
    inflation =
      (if baseline.Exec.makespan > 0. then rel.Exec.r_makespan /. baseline.Exec.makespan
       else nan);
    transmissions = rel.Exec.r_transmissions;
    retransmissions = rel.Exec.retransmissions;
    acks = rel.Exec.acks;
    gave_up = List.length rel.Exec.gave_up;
    reroutes = List.length rel.Exec.reroutes;
    circuit_opens = rel.Exec.circuit_opens;
    repair_invoked;
    repairs;
    repaired_makespan;
    estimated_repaired_makespan;
    summary;
  }

let render m =
  let table = Gridb_util.Text_table.create ~align:Gridb_util.Text_table.[ Left; Right ] [ "metric"; "value" ] in
  let add label value = Gridb_util.Text_table.add_row table [ label; value ] in
  add "policy" m.policy;
  add "fault spec" (Faults.to_string m.spec);
  add "dynamics spec" (Dyn.to_string m.dyn);
  add "transport" m.transport;
  add "retry budget" (string_of_int m.retries);
  add "seed" (string_of_int m.seed);
  Gridb_util.Text_table.add_separator table;
  add "ranks" (string_of_int m.total_ranks);
  add "delivered" (string_of_int m.delivered);
  add "delivery ratio" (Printf.sprintf "%.4f" m.delivery_ratio);
  add "crashed ranks" (string_of_int m.crashed_ranks);
  add "ranks departed" (string_of_int m.left_ranks);
  add "ranks joined" (string_of_int m.joined_ranks);
  (match m.partition_drift with
  | None -> ()
  | Some d -> add "partition drift" (Printf.sprintf "%.4f" d));
  add "edges given up" (string_of_int m.gave_up);
  add "reroutes" (string_of_int m.reroutes);
  add "circuits opened" (string_of_int m.circuit_opens);
  Gridb_util.Text_table.add_separator table;
  add "fault-free makespan (s)" (Printf.sprintf "%.4f" (m.baseline_makespan /. 1e6));
  add "reliable makespan (s)" (Printf.sprintf "%.4f" (m.makespan /. 1e6));
  add "makespan inflation" (Printf.sprintf "%.3fx" m.inflation);
  add "data transmissions" (string_of_int m.transmissions);
  add "retransmissions" (string_of_int m.retransmissions);
  add "acks delivered" (string_of_int m.acks);
  Gridb_util.Text_table.add_separator table;
  add "repair invoked" (if m.repair_invoked then "yes" else "no");
  add "replanned transmissions" (string_of_int m.repairs);
  add "repaired cluster makespan (s)"
    (match m.repaired_makespan with
    | None -> "-"
    | Some t -> Printf.sprintf "%.4f" (t /. 1e6));
  add "  on estimated parameters (s)"
    (match m.estimated_repaired_makespan with
    | None -> "-"
    | Some t -> Printf.sprintf "%.4f" (t /. 1e6));
  (match m.summary with
  | None -> ()
  | Some s ->
      Gridb_util.Text_table.add_separator table;
      add "repetitions" (string_of_int s.Exec.reps);
      add "mean delivered fraction" (Printf.sprintf "%.4f" s.Exec.delivered_fraction);
      add "mean retransmissions" (Printf.sprintf "%.2f" s.Exec.mean_retransmissions);
      add "mean reroutes" (Printf.sprintf "%.2f" s.Exec.mean_reroutes);
      add "mean reliable makespan (s)" (Printf.sprintf "%.4f" (s.Exec.mean_makespan /. 1e6));
      add "stddev (s)" (Printf.sprintf "%.4f" (s.Exec.stddev_makespan /. 1e6));
      add "edges abandoned (all reps)" (string_of_int s.Exec.total_gave_up));
  Gridb_util.Text_table.render table

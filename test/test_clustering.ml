(* Tests for gridb_clustering: partitions, Lowekamp detection (including the
   Table 3 recovery), matrix-to-grid abstraction. *)

module Partition = Gridb_clustering.Partition
module Lowekamp = Gridb_clustering.Lowekamp
module Abstraction = Gridb_clustering.Abstraction
module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid
module Grid5000 = Gridb_topology.Grid5000
module Rng = Gridb_util.Rng

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

(* --- Partition -------------------------------------------------------------- *)

let test_partition_normalisation () =
  let p = Partition.of_assignment [| 7; 3; 7; 9; 3 |] in
  Alcotest.(check int) "3 clusters" 3 (Partition.count p);
  Alcotest.(check int) "first label is 0" 0 (Partition.cluster_of p 0);
  Alcotest.(check (list int)) "members of 0" [ 0; 2 ] (Partition.members p 0);
  Alcotest.(check (list int)) "members of 1" [ 1; 4 ] (Partition.members p 1);
  Alcotest.(check (array int)) "sizes" [| 2; 2; 1 |] (Partition.sizes p)

let test_partition_trivial_and_one () =
  Alcotest.(check int) "trivial" 5 (Partition.count (Partition.trivial 5));
  Alcotest.(check int) "all in one" 1 (Partition.count (Partition.all_in_one 5))

let test_partition_equal_up_to_labels () =
  let a = Partition.of_assignment [| 0; 0; 1; 1 |] in
  let b = Partition.of_assignment [| 5; 5; 2; 2 |] in
  Alcotest.(check bool) "same blocks" true (Partition.equal a b)

let test_rand_index () =
  let a = Partition.of_assignment [| 0; 0; 1; 1 |] in
  check_feq "identical" 1. (Partition.rand_index a a);
  let b = Partition.of_assignment [| 0; 1; 2; 3 |] in
  (* agreements: pairs separated in both: a separates (0,2)(0,3)(1,2)(1,3) =
     4 of 6 pairs. *)
  check_feq "partial" (4. /. 6.) (Partition.rand_index a b);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Partition.rand_index: size mismatch") (fun () ->
      ignore (Partition.rand_index a (Partition.trivial 3)))

let test_partition_rejects_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Partition.of_assignment: empty input")
    (fun () -> ignore (Partition.of_assignment [||]))

(* --- Lowekamp ----------------------------------------------------------------- *)

(* Two clear clusters: {0,1,2} at ~10 us internally, {3,4} at ~12 us, 5000 us
   across. *)
let two_cluster_matrix () =
  let n = 5 in
  let m = Array.make_matrix n n 0. in
  let set i j v =
    m.(i).(j) <- v;
    m.(j).(i) <- v
  in
  set 0 1 10.;
  set 0 2 11.;
  set 1 2 10.5;
  set 3 4 12.;
  List.iter
    (fun (i, j) -> set i j 5_000.)
    [ (0, 3); (0, 4); (1, 3); (1, 4); (2, 3); (2, 4) ];
  m

let test_lowekamp_two_clusters () =
  let p = Lowekamp.detect (two_cluster_matrix ()) in
  Alcotest.(check int) "2 clusters" 2 (Partition.count p);
  Alcotest.(check (list int)) "first block" [ 0; 1; 2 ] (Partition.members p 0)

let test_lowekamp_zero_tolerance_shatters_heterogeneity () =
  (* rho = 0 merges only exactly-equal latencies: the {0,1,2} block has
     10/10.5/11 and must shatter. *)
  let p = Lowekamp.detect ~rho:0. (two_cluster_matrix ()) in
  Alcotest.(check bool) "more than 2 clusters" true (Partition.count p > 2)

let test_lowekamp_huge_tolerance_single_cluster () =
  let p = Lowekamp.detect ~rho:1_000_000. ~require_locality:false (two_cluster_matrix ()) in
  Alcotest.(check int) "everything merges" 1 (Partition.count p)

let test_lowekamp_recovers_table3 () =
  let machines = Machines.expand (Grid5000.grid ()) in
  let matrix = Machines.latency_matrix machines in
  let p = Lowekamp.detect ~rho:0.30 matrix in
  Alcotest.(check int) "6 clusters" 6 (Partition.count p);
  let sizes = List.sort compare (Array.to_list (Partition.sizes p)) in
  Alcotest.(check (list int)) "sizes as Table 3" [ 1; 1; 6; 20; 29; 31 ] sizes;
  let truth =
    Partition.of_assignment
      (Array.init (Machines.count machines) (fun r ->
           (Machines.machine machines r).Machines.cluster))
  in
  check_feq "perfect recovery" 1. (Partition.rand_index p truth)

let test_lowekamp_recovers_table3_under_noise () =
  let machines = Machines.expand (Grid5000.grid ()) in
  let rng = Rng.create 99 in
  let matrix = Machines.latency_matrix ~rng ~jitter_sigma:0.03 machines in
  let p = Lowekamp.detect ~rho:0.30 matrix in
  let truth =
    Partition.of_assignment
      (Array.init (Machines.count machines) (fun r ->
           (Machines.machine machines r).Machines.cluster))
  in
  Alcotest.(check bool) "Rand >= 0.99" true (Partition.rand_index p truth >= 0.99)

let test_lowekamp_locality_keeps_remote_singletons_apart () =
  (* Two machines 242 us apart, both 60 us from a third: without locality
     they merge; with it they stay separate (the IDPOT-B/C case). *)
  let m = Array.make_matrix 3 3 0. in
  let set i j v =
    m.(i).(j) <- v;
    m.(j).(i) <- v
  in
  set 0 1 60.;
  set 0 2 60.;
  set 1 2 242.;
  let with_locality = Lowekamp.detect ~rho:0.30 m in
  Alcotest.(check bool) "1 and 2 apart" true
    (Partition.cluster_of with_locality 1 <> Partition.cluster_of with_locality 2);
  let without = Lowekamp.detect ~rho:0.30 ~require_locality:false m in
  Alcotest.(check bool) "without locality they may merge" true
    (Partition.count without <= Partition.count with_locality)

let test_lowekamp_is_homogeneous () =
  let m = two_cluster_matrix () in
  Alcotest.(check bool) "block ok" true (Lowekamp.is_homogeneous m [ 0; 1; 2 ]);
  Alcotest.(check bool) "pair trivially ok" true (Lowekamp.is_homogeneous m [ 0; 3 ]);
  Alcotest.(check bool) "mixed triple not ok" false (Lowekamp.is_homogeneous m [ 0; 1; 3 ]);
  Alcotest.(check bool) "singleton ok" true (Lowekamp.is_homogeneous m [ 4 ]);
  Alcotest.(check bool) "empty ok" true (Lowekamp.is_homogeneous m [])

let test_lowekamp_quality () =
  let m = two_cluster_matrix () in
  let p = Lowekamp.detect m in
  let q = Lowekamp.partition_quality m p in
  Alcotest.(check bool) "quality within tolerance band" true (q >= 1. && q <= 1.3);
  check_feq "trivial partition is perfect" 1.
    (Lowekamp.partition_quality m (Partition.trivial 5))

let test_lowekamp_rejects () =
  Alcotest.check_raises "negative rho" (Invalid_argument "Lowekamp.detect: negative rho")
    (fun () -> ignore (Lowekamp.detect ~rho:(-0.1) (two_cluster_matrix ())));
  Alcotest.check_raises "empty" (Invalid_argument "Lowekamp: empty matrix") (fun () ->
      ignore (Lowekamp.detect [||]))

let lowekamp_partition_sound =
  QCheck.Test.make ~name:"detected non-singleton blocks are homogeneous" ~count:(Testutil.count 40)
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Rng.create seed in
      (* small clusters keep the O(machines^2) matrix cheap in this property *)
      let spec =
        { Gridb_topology.Generators.default_random_spec with cluster_size = (2, 10) }
      in
      let grid = Gridb_topology.Generators.uniform_random ~rng ~n:4 spec in
      let machines = Machines.expand grid in
      let matrix = Machines.latency_matrix ~rng ~jitter_sigma:0.02 machines in
      let p = Lowekamp.detect matrix in
      List.for_all
        (fun c -> Lowekamp.is_homogeneous matrix (Partition.members p c))
        (List.init (Partition.count p) Fun.id))

(* --- Matrix IO ----------------------------------------------------------------- *)

module Matrix_io = Gridb_clustering.Matrix_io

let test_matrix_io_roundtrip () =
  let matrix = two_cluster_matrix () in
  let path = Filename.temp_file "gridb" ".csv" in
  Matrix_io.save path matrix;
  (match Matrix_io.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok loaded ->
      Alcotest.(check int) "size" (Array.length matrix) (Array.length loaded);
      Array.iteri
        (fun i row ->
          Array.iteri (fun j v -> check_feq (Printf.sprintf "(%d,%d)" i j) v loaded.(i).(j)) row)
        matrix);
  Sys.remove path

let test_matrix_io_parsing () =
  (match Matrix_io.of_string "0,10\n10,0\n" with
  | Ok m -> check_feq "cell" 10. m.(0).(1)
  | Error e -> Alcotest.failf "parse: %s" e);
  (* blank/dash diagonal, comments, blank lines *)
  (match Matrix_io.of_string "# two machines\n-,5\n\n5,-\n" with
  | Ok m ->
      check_feq "dash diagonal" 0. m.(0).(0);
      check_feq "value" 5. m.(1).(0)
  | Error e -> Alcotest.failf "parse: %s" e);
  Alcotest.(check bool) "ragged rejected" true
    (Result.is_error (Matrix_io.of_string "0,1\n1\n"));
  Alcotest.(check bool) "non-numeric rejected" true
    (Result.is_error (Matrix_io.of_string "0,x\ny,0\n"));
  Alcotest.(check bool) "empty rejected" true (Result.is_error (Matrix_io.of_string ""));
  Alcotest.(check bool) "missing file" true
    (Result.is_error (Matrix_io.load "/nonexistent/file.csv"))

let test_matrix_io_validate () =
  Alcotest.(check bool) "symmetric ok" true
    (Result.is_ok (Matrix_io.validate (two_cluster_matrix ())));
  let asym = [| [| 0.; 10. |]; [| 20.; 0. |] |] in
  Alcotest.(check bool) "asymmetry detected" true
    (Result.is_error (Matrix_io.validate asym));
  Alcotest.(check bool) "asymmetry tolerated when disabled" true
    (Result.is_ok (Matrix_io.validate ~require_symmetric:false asym));
  Alcotest.(check bool) "negative rejected" true
    (Result.is_error (Matrix_io.validate [| [| 0.; -1. |]; [| -1.; 0. |] |]))

let test_matrix_io_pipeline () =
  (* CSV -> detect -> grid: the full user path. *)
  let path = Filename.temp_file "gridb" ".csv" in
  Matrix_io.save path (two_cluster_matrix ());
  (match Matrix_io.load path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok matrix ->
      let p = Lowekamp.detect matrix in
      let grid = Abstraction.grid_of_matrix matrix p in
      Alcotest.(check int) "2 clusters" 2 (Grid.size grid));
  Sys.remove path

(* --- Abstraction ----------------------------------------------------------------- *)

let test_abstraction_builds_grid () =
  let m = two_cluster_matrix () in
  let p = Lowekamp.detect m in
  let grid = Abstraction.grid_of_matrix m p in
  Alcotest.(check int) "2 clusters" 2 (Grid.size grid);
  Alcotest.(check int) "5 machines" 5 (Grid.total_processes grid);
  check_feq "inter latency = median cross" 5_000. (Grid.latency grid 0 1);
  (* intra latency of block {0,1,2} is the median of {10,10.5,11} *)
  let c0 = Grid.cluster grid 0 in
  check_feq "intra median" 10.5 (Gridb_plogp.Params.latency c0.Gridb_topology.Cluster.intra)

let test_abstraction_median_cross () =
  let m = two_cluster_matrix () in
  check_feq "cross median" 5_000. (Abstraction.median_cross_latency m [ 0; 1 ] [ 3; 4 ]);
  Alcotest.check_raises "overlap"
    (Invalid_argument "Abstraction.median_cross_latency: overlap") (fun () ->
      ignore (Abstraction.median_cross_latency m [ 0 ] [ 0; 1 ]))

let test_abstraction_grid5000_roundtrip () =
  (* matrix -> partition -> grid should reproduce the cluster structure and
     the latency classes of the original grid. *)
  let machines = Machines.expand (Grid5000.grid ()) in
  let matrix = Machines.latency_matrix machines in
  let p = Lowekamp.detect ~rho:0.30 matrix in
  let grid = Abstraction.grid_of_matrix matrix p in
  Alcotest.(check int) "6 clusters" 6 (Grid.size grid);
  Alcotest.(check int) "88 processes" 88 (Grid.total_processes grid);
  (* Orsay <-> IDPOT class survives the abstraction *)
  let found_wan = ref false in
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i <> j && Grid.latency grid i j > 10_000. then found_wan := true
    done
  done;
  Alcotest.(check bool) "wan links preserved" true !found_wan

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "clustering"
    [
      ( "partition",
        [
          quick "normalisation" test_partition_normalisation;
          quick "trivial/one" test_partition_trivial_and_one;
          quick "equal up to labels" test_partition_equal_up_to_labels;
          quick "rand index" test_rand_index;
          quick "rejects empty" test_partition_rejects_empty;
        ] );
      ( "lowekamp",
        [
          quick "two clusters" test_lowekamp_two_clusters;
          quick "zero tolerance" test_lowekamp_zero_tolerance_shatters_heterogeneity;
          quick "huge tolerance" test_lowekamp_huge_tolerance_single_cluster;
          quick "recovers Table 3" test_lowekamp_recovers_table3;
          quick "recovers Table 3 under noise" test_lowekamp_recovers_table3_under_noise;
          quick "locality condition" test_lowekamp_locality_keeps_remote_singletons_apart;
          quick "is_homogeneous" test_lowekamp_is_homogeneous;
          quick "quality" test_lowekamp_quality;
          quick "rejects" test_lowekamp_rejects;
          QCheck_alcotest.to_alcotest lowekamp_partition_sound;
        ] );
      ( "matrix-io",
        [
          quick "roundtrip" test_matrix_io_roundtrip;
          quick "parsing" test_matrix_io_parsing;
          quick "validate" test_matrix_io_validate;
          quick "csv pipeline" test_matrix_io_pipeline;
        ] );
      ( "abstraction",
        [
          quick "builds grid" test_abstraction_builds_grid;
          quick "median cross" test_abstraction_median_cross;
          quick "grid5000 roundtrip" test_abstraction_grid5000_roundtrip;
        ] );
    ]

type t = {
  id : int;
  name : string;
  size : int;
  intra : Gridb_plogp.Params.t;
}

let v ~id ~name ~size ~intra =
  if size < 1 then invalid_arg "Cluster.v: size < 1";
  if id < 0 then invalid_arg "Cluster.v: negative id";
  { id; name; size; intra }

let with_id id t = { t with id }

let is_singleton t = t.size = 1

let pp ppf t =
  Format.fprintf ppf "@[<h>cluster %d %S (%d nodes, intra %a)@]" t.id t.name
    t.size Gridb_plogp.Params.pp t.intra

(** The seven broadcast scheduling heuristics compared in the paper.

    Classical (Section 4, after Bhat et al. and the ECO/MagPIe flat tree):
    {!flat_tree}, {!fef}, {!ecef}, {!ecef_la}.
    Grid-aware (Section 5, the paper's contribution): {!ecef_lat_min}
    (ECEF-LAt), {!ecef_lat_max} (ECEF-LAT), {!bottom_up}.

    This module is a thin compatibility wrapper: each heuristic {e is} a
    {!Policy.t} score descriptor, and {!run} hands it to {!Engine} (the
    incremental selector by default, the naive reference scan on request —
    both produce the identical schedule).  The [select] closure performs
    one naive selection round, for callers that drive {!State.run}
    themselves; ties are broken towards the lexicographically smallest
    (sender, receiver) pair so schedules are deterministic. *)

type t = {
  name : string;  (** e.g. "ECEF-LAt" (figure legends) *)
  select : State.t -> int * int;
  policy : Policy.t option;
      (** The descriptor behind the closure; [None] only for ad-hoc
          heuristics built with {!v}, which {!run} then executes through
          {!State.run} instead of the engine. *)
}

val of_policy : Policy.t -> t
(** Wrap a policy; [select] delegates to {!Engine.naive_select}. *)

val v : name:string -> (State.t -> int * int) -> t
(** Ad-hoc closure heuristic with no policy descriptor. *)

val flat_tree : t
(** Root sends to every other cluster in index order (ECO / MagPIe). *)

val fef : t
(** Fastest Edge First: smallest [L_ij] over [A x B]; ignores ready times. *)

val ecef : t
(** Early Completion Edge First: minimises [avail_i + g_ij + L_ij]. *)

val ecef_la : t
(** ECEF with Bhat's lookahead [F_j = min (g_jk + L_jk)]. *)

val ecef_with : Lookahead.t -> t
(** ECEF with an arbitrary lookahead (ablations); named
    ["ECEF-LA<lookahead>"] . *)

val ecef_lat_min : t
(** ECEF-LAt: lookahead [min (g_jk + L_jk + T_k)]. *)

val ecef_lat_max : t
(** ECEF-LAT: lookahead [max (g_jk + L_jk + T_k)]. *)

val bottom_up : t
(** Max-min: picks the receiver whose {e best} reach
    [min_i (avail_i + g_ij + L_ij) + T_j] is {e largest}, served by that
    best sender — contact the slowest clusters as early as possible. *)

val all : t list
(** Paper order: FlatTree, FEF, ECEF, ECEF-LA, ECEF-LAt, ECEF-LAT,
    BottomUp. *)

val ecef_family : t list
(** The four curves of Figures 3 and 4: ECEF, ECEF-LA, ECEF-LAt,
    ECEF-LAT. *)

val names : string list
(** {!Policy.names} verbatim — the shared table every listing derives
    from; [List.map (fun h -> h.name) all] is equal to it by
    construction. *)

val by_name : string -> t option
(** {!Policy.by_name} wrapped in {!of_policy}: exact names, the
    parameterised forms ["ECEF-LA<lookahead>"] and
    ["Mixed<small|large@threshold>"], then a case-insensitive match only
    when unambiguous.  "ECEF-LAt" (min) and "ECEF-LAT" (max) differ only
    by case, so an all-lowercase "ecef-lat" resolves to {e neither} —
    spell those two exactly. *)

val run : ?mode:Engine.mode -> t -> Instance.t -> Schedule.t
(** [Engine.run ?mode] on the policy (default [`Incremental]; [`Naive] is
    the reference scan — same schedule either way).  Ad-hoc {!v}
    heuristics ignore [mode] and run their closure through
    {!State.run}. *)

val makespan :
  ?model:Schedule.completion_model -> ?mode:Engine.mode -> t -> Instance.t -> float
(** [Schedule.makespan ?model inst (run ?mode t inst)]. *)

(** Certified-optimal broadcast schedules by pruned branch-and-bound.

    The search space is the paper's Section 3 schedule space — every
    non-root cluster receives exactly once, senders are gap-serialised,
    intra-cluster broadcast after the last send — explored as a DFS over
    delivered-set states [(A, avail)].  Three prunings keep n <= ~12
    tractable where {!Gridb_sched.Optimal}'s brute force stops at 8:

    - {b incumbent}: the best of the seven paper heuristics seeds the
      upper bound, so the search only ever proves or improves it;
    - {b bound}: a per-state analytic lower bound (busy clusters must
      still run [T_k]; every unreached cluster needs a final hop that no
      event can start before the earliest sender, optionally through a
      one-step relay; the sender population at most doubles per minimum
      gap) cuts any state that cannot beat the incumbent;
    - {b dominance}: states are memoised by delivered-set bitmask; a
      state whose [avail] vector is pointwise >= one already fully
      explored at the same mask is discarded.  This is sound because DFS
      finishes every same-depth sibling's subtree before the next starts
      and the incumbent only ever decreases, so the dominated state can
      prove nothing the dominating one did not.

    Timing arithmetic matches {!Gridb_sched.State.send} operation for
    operation ([(avail + g) + L]), and the certified schedule is replayed
    through {!Gridb_sched.State} — so its makespan, its event list and
    every schedule invariant agree exactly with the rest of the system,
    and it executes unchanged on the DES. *)

type stats = {
  expanded : int;  (** states branched on *)
  pruned_bound : int;  (** states cut by the analytic lower bound *)
  pruned_dominated : int;  (** states cut by the dominance memo *)
  improved : int;
      (** incumbent updates after the heuristic seed (0 when the best
          heuristic was already optimal) *)
}

type certificate = {
  makespan : float;  (** the certified optimal [After_sends] makespan *)
  schedule : Gridb_sched.Schedule.t;  (** an optimal schedule attaining it *)
  lower_bound : float;  (** {!Gridb_sched.Bounds.combined} at the root *)
  incumbent : string;  (** name of the heuristic that seeded the search *)
  incumbent_makespan : float;  (** its makespan (>= [makespan]) *)
  optimal_by_heuristic : bool;
      (** the seed heuristic was already optimal ([improved = 0]) *)
  stats : stats;
}

val default_max_clusters : int
(** 12. *)

val solve : ?max_clusters:int -> Gridb_sched.Instance.t -> certificate
(** @raise Invalid_argument if the instance exceeds [max_clusters]. *)

val makespan : ?max_clusters:int -> Gridb_sched.Instance.t -> float
(** [(solve inst).makespan]. *)

val schedule : ?max_clusters:int -> Gridb_sched.Instance.t -> Gridb_sched.Schedule.t
(** [(solve inst).schedule]. *)

let pair_scan_evaluations n =
  (* sum over rounds r = 1 .. n-1 of |A| * |B| = r * (n - r) *)
  let total = ref 0 in
  for r = 1 to n - 1 do
    total := !total + (r * (n - r))
  done;
  float_of_int !total

let lookahead_evaluations n =
  (* Each round additionally evaluates F_j for every j in B, each O(|B|). *)
  let total = ref 0 in
  for r = 1 to n - 1 do
    let b = n - r in
    total := !total + (b * b)
  done;
  float_of_int !total

let evaluations ~n heuristic =
  let canon = String.lowercase_ascii heuristic in
  if canon = "flattree" then float_of_int n
  else if canon = "fef" || canon = "ecef" || canon = "bottomup" then pair_scan_evaluations n
  else if String.length canon >= 7 && String.sub canon 0 7 = "ecef-la" then
    pair_scan_evaluations n +. lookahead_evaluations n
  else pair_scan_evaluations n

let default_per_evaluation_us = 0.5

let cost_us ?(per_evaluation_us = default_per_evaluation_us) ~n heuristic =
  evaluations ~n heuristic *. per_evaluation_us

(** Generic discrete-event simulation engine.

    A minimal sequential DES: a clock and a time-ordered queue of callbacks.
    Events scheduled at equal times fire in insertion order (stable), which
    keeps runs reproducible.  The broadcast executors ({!Exec.run} and the
    reliable {!Exec.run_reliable}), the MPI layer and the {!Faults}-driven
    failure-injection tests all run on this engine.

    Timers: {!schedule_timer} enqueues a {e cancellable} event and returns a
    handle; {!cancel} marks it dead.  Cancelled events are never executed —
    they are silently dropped when they reach the head of the queue — and do
    not advance the clock, count towards {!processed}, or hold back a
    {!run_until} horizon.  This is what arms the ACK-guarded retransmission
    timers of the reliable executor: the common (ACK received) path cancels
    the timer instead of letting a stale timeout fire.

    Observability: pass a {!Gridb_obs.Sink.t} at creation to receive
    [Timer_set]/[Timer_fire]/[Timer_cancel] events.  With the default
    {!Gridb_obs.Sink.null} sink the emission sites reduce to a single
    always-false branch — the hot path is unchanged. *)

type t

type timer
(** Handle of a cancellable event. *)

val create : ?obs:Gridb_obs.Sink.t -> unit -> t
(** [obs] defaults to {!Gridb_obs.Sink.null} (no instrumentation). *)

val now : t -> float
(** Current simulation time (us).  0. before the first event. *)

val schedule : t -> time:float -> (t -> unit) -> unit
(** Enqueue a callback at an absolute time.
    @raise Invalid_argument if [time] is in the past (< [now t]). *)

val schedule_after : t -> delay:float -> (t -> unit) -> unit
(** Relative variant.  @raise Invalid_argument if [delay < 0.]. *)

val schedule_timer : t -> time:float -> (t -> unit) -> timer
(** Like {!schedule}, returning a handle usable with {!cancel}.
    @raise Invalid_argument if [time] is in the past. *)

val cancel : t -> timer -> unit
(** Mark the timer's event dead; it will never execute.  Cancelling an
    already-cancelled or already-fired timer is a no-op. *)

val timer_live : timer -> bool
(** False once cancelled or fired. *)

val step : t -> bool
(** Execute the next live event; [false] when the queue is empty (cancelled
    events are discarded, not executed). *)

val run : t -> unit
(** Drain the queue.  Terminates iff the simulated system quiesces. *)

val run_until : t -> float -> unit
(** Process live events with time <= the horizon; later events stay queued
    and [now] is advanced to the horizon. *)

val pending : t -> int
(** Live events still queued (cancelled events are not counted). *)

val processed : t -> int
(** Events executed so far. *)

(* Chaos-hardening bench: sweep fault intensity x offered load x shedding
   over the GRID5000 grid and report per-priority-class SLO outcomes —
   deadline attainment, union delivery ratio (retries included), sheds and
   requeues.  Results go to BENCH_chaos.json.

   Usage: dune exec bench/chaos.exe -- [--duration US] [-o FILE]
                                       [--seed S] [--jobs J]
                                       [--assert-delivery]

   Every cell derives its workload from (seed, rate) alone and every
   per-session fault stream from (seed, rid, attempt), so all
   simulation-side numbers are bit-identical at any --jobs.

   --assert-delivery (the CI chaos job runs with it) fails the run unless
   (1) retrying keeps the high-priority union delivery ratio >= 0.95 in
   every shedding cell of the sweep, and (2) degraded-mode shedding earns
   its keep: some faulty cell has high-priority deadline attainment >= 0.9
   with shedding on while the same cell without shedding attains < 0.7. *)

module Workload = Gridb_service.Workload
module Server = Gridb_service.Server
module Admission = Gridb_service.Admission
module Faults = Gridb_des.Faults

type cell = {
  loss : float; (* per-transmission loss probability *)
  rate : float; (* requests per simulated second *)
  shed : bool;
  report : Server.report;
}

let losses = [ 0.; 0.15; 0.3 ]
let rates = [ 5.; 10. ]
let deadline_us = 4e6
let high_frac = 0.3
let watermark_us = 5e5
let max_open_frac = 0.5
let retry_budget = 2

let bench_cell ~seed ~duration ~jobs ~loss ~rate ~shed =
  let machines = Gridb_topology.Machines.expand (Gridb_topology.Grid5000.grid ()) in
  let mix =
    { (Workload.default_mix machines) with deadlines = [| deadline_us |]; high_frac }
  in
  let requests = Workload.generate ~mix ~seed ~rate:(rate /. 1e6) ~duration machines in
  let admission =
    Admission.create
      ~shed:
        (if shed then Admission.shed ~watermark_us ~max_open_frac ()
         else Admission.no_shed)
      ()
  in
  let faults = if loss > 0. then Some (Faults.v ~loss ()) else None in
  let report =
    Server.run ~jobs ~admission ?faults
      ~retry:{ Server.budget = retry_budget; backoff_us = 1e4 }
      ~seed:(seed + 1) machines requests
  in
  { loss; rate; shed; report }

let print_cell c =
  let r = c.report in
  let h = r.Server.slo_high and l = r.Server.slo_low in
  Printf.printf
    "loss=%-4g rate=%-3g %-7s | %3d req %3d adm %3d shed %2d requeue | high att \
     %.3f del %.3f | low att %.3f del %.3f\n\
     %!"
    c.loss c.rate
    (if c.shed then "shed" else "no-shed")
    r.Server.requests r.Server.admitted r.Server.sheds r.Server.requeues
    (Server.deadline_attainment h)
    (Server.delivery_ratio h)
    (Server.deadline_attainment l)
    (Server.delivery_ratio l)

(* Handwritten JSON writer, same rationale as bench/scaling.ml. *)
let json_of_cells buf cells =
  let add fmt = Printf.bprintf buf fmt in
  let slo name s =
    Printf.sprintf
      "\"%s\": {\"requests\": %d, \"admitted\": %d, \"shed\": %d, \"rejected\": %d, \
       \"requeues\": %d, \"delivery_ratio\": %.4f, \"deadline_attainment\": %.4f}"
      name s.Server.c_requests s.Server.c_admitted s.Server.c_shed s.Server.c_rejected
      s.Server.c_requeues (Server.delivery_ratio s) (Server.deadline_attainment s)
  in
  add "[\n";
  List.iteri
    (fun i c ->
      let r = c.report in
      add
        "  {\"loss\": %g, \"rate_req_s\": %g, \"shedding\": %b, \"requests\": %d, \
         \"admitted\": %d,\n"
        c.loss c.rate c.shed r.Server.requests r.Server.admitted;
      add "   \"sheds\": %d, \"requeues\": %d, \"retry_lookups\": %d, \
           \"deadline_misses\": %d,\n"
        r.Server.sheds r.Server.requeues r.Server.retry_lookups r.Server.deadline_misses;
      add "   %s,\n" (slo "slo_high" r.Server.slo_high);
      add "   %s,\n" (slo "slo_low" r.Server.slo_low);
      add "   \"delivered_ranks\": %d, \"horizon_us\": %.1f}%s\n" r.Server.delivered
        r.Server.horizon_us
        (if i = List.length cells - 1 then "" else ","))
    cells;
  add "]"

let () =
  let duration = ref 4e6
  and out = ref "BENCH_chaos.json"
  and seed = ref 2006
  and jobs = ref 1
  and assert_delivery = ref false in
  let rec parse = function
    | [] -> ()
    | "--duration" :: v :: rest ->
        duration := float_of_string v;
        parse rest
    | ("-o" | "--output") :: v :: rest ->
        out := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--assert-delivery" :: rest ->
        assert_delivery := true;
        parse rest
    | other :: _ ->
        prerr_endline
          ("unknown option " ^ other
         ^ " (known: --duration US, -o FILE, --seed S, --jobs J, --assert-delivery)");
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cells =
    List.concat_map
      (fun loss ->
        List.concat_map
          (fun rate ->
            List.map
              (fun shed ->
                let c =
                  bench_cell ~seed:!seed ~duration:!duration ~jobs:!jobs ~loss ~rate
                    ~shed
                in
                print_cell c;
                c)
              [ false; true ])
          rates)
      losses
  in
  (if !assert_delivery then begin
     let failed = ref false in
     (* Retries must keep high-priority delivery near-complete wherever
        shedding protects the class. *)
     List.iter
       (fun c ->
         if c.shed && c.loss > 0. then begin
           let del = Server.delivery_ratio c.report.Server.slo_high in
           if del < 0.95 then begin
             Printf.eprintf
               "DELIVERY MISS at loss=%g rate=%g shed: high-priority union delivery \
                %.3f < 0.95\n"
               c.loss c.rate del;
             failed := true
           end
         end)
       cells;
     (* Shedding must earn its keep: some faulty cell attains >= 0.9 for
        high-priority deadlines with shedding where no-shedding sits
        below 0.7. *)
     let contrast =
       List.exists
         (fun c ->
           c.shed && c.loss > 0.
           && Server.deadline_attainment c.report.Server.slo_high >= 0.9
           && List.exists
                (fun c' ->
                  (not c'.shed) && c'.loss = c.loss && c'.rate = c.rate
                  && Server.deadline_attainment c'.report.Server.slo_high < 0.7)
                cells)
         cells
     in
     if not contrast then begin
       prerr_endline
         "CONTRAST MISS: no faulty cell shows shed-on high attainment >= 0.9 with \
          shed-off < 0.7";
       failed := true
     end;
     if !failed then exit 1
   end);
  let buf = Buffer.create 8_192 in
  Printf.bprintf buf
    "{\n\
    \  \"benchmark\": \"chaos-hardened-broadcast-service\",\n\
    \  \"seed\": %d,\n\
    \  %s,\n\
    \  \"grid\": \"GRID5000 (Table 3)\",\n\
    \  \"workload\": \"open-loop Poisson, %.0f us deadline, %g high-priority, %.0f \
     us window\",\n\
    \  \"resilience\": {\"retry_budget\": %d, \"backoff_us\": 1e4, \
     \"shed_watermark_us\": %g, \"shed_max_open_frac\": %g},\n\
    \  \"units\": {\"time\": \"us unless suffixed\", \"rates\": \"requests per \
     second\"},\n\
    \  \"results\": " !seed
    (Gridb_util.Provenance.json_fields ~jobs:!jobs)
    deadline_us high_frac !duration retry_budget watermark_us max_open_frac;
  json_of_cells buf cells;
  Buffer.add_string buf "\n}\n";
  let oc = open_out !out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" !out (List.length cells)

(** The paper's tables, rendered for the bench output. *)

val table1 : unit -> string
(** Communication levels (paper Table 1). *)

val table2 : Config.t -> string
(** Simulation parameter ranges (paper Table 2), from the live config. *)

val table3 : unit -> string
(** GRID5000 inter-cluster latency matrix (paper Table 3) as built into
    {!Gridb_topology.Grid5000}. *)

val table3_rederived : unit -> string
(** Table 3's cluster map re-derived by running Lowekamp detection
    (rho = 30 %) on the synthetic 88-machine latency matrix — the Section 7
    methodology check. *)

(* Tests for gridb_topology: clusters, grids, levels, GRID5000 data,
   generators, machine views, serialization. *)

module Cluster = Gridb_topology.Cluster
module Grid = Gridb_topology.Grid
module Levels = Gridb_topology.Levels
module Grid5000 = Gridb_topology.Grid5000
module Generators = Gridb_topology.Generators
module Machines = Gridb_topology.Machines
module Serialize = Gridb_topology.Serialize
module Params = Gridb_plogp.Params

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

let sample_params = Params.linear ~latency:100. ~g0:10. ~bandwidth_mb_s:10.

let small_grid () =
  Generators.homogeneous ~n:3 ~cluster_size:4 ~inter:sample_params
    ~intra:(Params.linear ~latency:10. ~g0:5. ~bandwidth_mb_s:100.)

(* --- Cluster ------------------------------------------------------------ *)

let test_cluster_v () =
  let c = Cluster.v ~id:2 ~name:"x" ~size:5 ~intra:sample_params in
  Alcotest.(check int) "id" 2 c.Cluster.id;
  Alcotest.(check int) "size" 5 c.Cluster.size;
  Alcotest.(check bool) "not singleton" false (Cluster.is_singleton c);
  Alcotest.(check bool) "singleton" true
    (Cluster.is_singleton (Cluster.v ~id:0 ~name:"s" ~size:1 ~intra:sample_params));
  Alcotest.check_raises "size 0" (Invalid_argument "Cluster.v: size < 1") (fun () ->
      ignore (Cluster.v ~id:0 ~name:"bad" ~size:0 ~intra:sample_params));
  Alcotest.(check int) "with_id" 7 (Cluster.with_id 7 c).Cluster.id

(* --- Grid ----------------------------------------------------------------- *)

let test_grid_accessors () =
  let g = small_grid () in
  Alcotest.(check int) "size" 3 (Grid.size g);
  Alcotest.(check int) "total processes" 12 (Grid.total_processes g);
  check_feq "latency" 100. (Grid.latency g 0 1);
  check_feq "gap" (10. +. 100_000.) (Grid.gap g 0 1 1_000_000);
  check_feq "send = g+L" (Grid.gap g 0 2 64 +. 100.) (Grid.send_time g 0 2 64)

let test_grid_rejects () =
  let g = small_grid () in
  Alcotest.check_raises "self link" (Invalid_argument "Grid.link: i = j") (fun () ->
      ignore (Grid.link g 1 1));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Grid.cluster: index out of range") (fun () ->
      ignore (Grid.cluster g 3))

let test_grid_validate_symmetric () =
  let g = small_grid () in
  Alcotest.(check bool) "symmetric ok" true (Result.is_ok (Grid.validate g))

let test_grid_validate_asymmetric () =
  let clusters =
    List.init 2 (fun i -> Cluster.v ~id:i ~name:"c" ~size:1 ~intra:sample_params)
  in
  let a = Params.linear ~latency:10. ~g0:1. ~bandwidth_mb_s:1. in
  let b = Params.linear ~latency:99. ~g0:1. ~bandwidth_mb_s:1. in
  let g = Grid.v ~clusters ~inter:[| [| a; a |]; [| b; b |] |] in
  Alcotest.(check bool) "asymmetry detected" true (Result.is_error (Grid.validate g))

let test_grid_map_links () =
  let g = small_grid () in
  let doubled = Grid.map_links (fun _ _ p -> Params.scale_noise ~factor:2. p) g in
  check_feq "latency doubled" 200. (Grid.latency doubled 0 1);
  check_feq "original untouched" 100. (Grid.latency g 0 1)

let test_grid_bad_ids () =
  let c0 = Cluster.v ~id:1 ~name:"c" ~size:1 ~intra:sample_params in
  Alcotest.check_raises "ids must be ordered"
    (Invalid_argument "Grid.v: cluster ids must be 0..n-1 in order") (fun () ->
      ignore (Grid.v ~clusters:[ c0 ] ~inter:[| [| sample_params |] |]))

(* --- Levels ----------------------------------------------------------------- *)

let test_levels_classification () =
  Alcotest.(check int) "wan" 0 (Levels.level_number (Levels.of_latency 12_181.));
  Alcotest.(check int) "lan" 1 (Levels.level_number (Levels.of_latency 242.));
  Alcotest.(check int) "localhost" 2 (Levels.level_number (Levels.of_latency 47.5));
  Alcotest.(check int) "shm" 3 (Levels.level_number (Levels.of_latency 2.))

let test_levels_order () =
  let sorted = List.sort Levels.compare_slower_first Levels.all in
  Alcotest.(check (list int)) "slowest first" [ 0; 1; 2; 3 ]
    (List.map Levels.level_number sorted)

(* --- Grid5000 ----------------------------------------------------------------- *)

let test_grid5000_structure () =
  let g = Grid5000.grid () in
  Alcotest.(check int) "6 clusters" 6 (Grid.size g);
  Alcotest.(check int) "88 machines" 88 (Grid.total_processes g);
  Alcotest.(check bool) "validates" true (Result.is_ok (Grid.validate g))

let test_grid5000_latencies_match_table3 () =
  let g = Grid5000.grid () in
  check_feq "0-1" 62.10 (Grid.latency g 0 1);
  check_feq "0-2" 12_181.52 (Grid.latency g 0 2);
  check_feq "2-5" 5_388.49 (Grid.latency g 2 5);
  check_feq "3-4" 242.47 (Grid.latency g 3 4);
  (* symmetry of the published matrix *)
  for i = 0 to 5 do
    for j = i + 1 to 5 do
      check_feq (Printf.sprintf "sym %d-%d" i j) (Grid.latency g i j) (Grid.latency g j i)
    done
  done

let test_grid5000_bandwidth_classes () =
  check_feq "far wan" 1.3 (Grid5000.inter_bandwidth_mb_s 12_181.);
  check_feq "medium" 4. (Grid5000.inter_bandwidth_mb_s 5_211.);
  check_feq "same site" 50. (Grid5000.inter_bandwidth_mb_s 62.)

(* --- Generators ----------------------------------------------------------------- *)

let test_random_grid_within_spec () =
  let rng = Gridb_util.Rng.create 3 in
  let spec = Generators.default_random_spec in
  let g = Generators.uniform_random ~rng ~n:8 spec in
  Alcotest.(check int) "8 clusters" 8 (Grid.size g);
  Alcotest.(check bool) "validates" true (Result.is_ok (Grid.validate g));
  for i = 0 to 7 do
    let c = Grid.cluster g i in
    let lo, hi = spec.Generators.cluster_size in
    Alcotest.(check bool) "size in range" true (c.Cluster.size >= lo && c.Cluster.size <= hi);
    for j = 0 to 7 do
      if i <> j then begin
        let lat = Grid.latency g i j in
        let llo, lhi = spec.Generators.inter_latency_us in
        Alcotest.(check bool) "latency in range" true (lat >= llo && lat <= lhi)
      end
    done
  done

let test_random_grid_symmetric () =
  let rng = Gridb_util.Rng.create 4 in
  let g = Generators.uniform_random ~rng ~n:6 Generators.default_random_spec in
  for i = 0 to 5 do
    for j = i + 1 to 5 do
      check_feq "latency symmetric" (Grid.latency g i j) (Grid.latency g j i);
      check_feq "gap symmetric" (Grid.gap g i j 1_000_000) (Grid.gap g j i 1_000_000)
    done
  done

let test_multilevel_structure () =
  let rng = Gridb_util.Rng.create 5 in
  let spec = { Generators.default_multilevel_spec with sites = 2; clusters_per_site = 3 } in
  let g = Generators.multilevel ~rng spec in
  Alcotest.(check int) "6 clusters" 6 (Grid.size g);
  (* same-site links are LAN class, cross-site WAN class *)
  for i = 0 to 5 do
    for j = 0 to 5 do
      if i <> j then begin
        let same = Generators.site_of_cluster spec i = Generators.site_of_cluster spec j in
        let lat = Grid.latency g i j in
        if same then
          Alcotest.(check bool) "lan latency" true (lat < 1_000.)
        else Alcotest.(check bool) "wan latency" true (lat >= 1_000.)
      end
    done
  done

(* --- Machines ----------------------------------------------------------------- *)

let test_machines_expand () =
  let g = Grid5000.grid () in
  let m = Machines.expand g in
  Alcotest.(check int) "count" 88 (Machines.count m);
  Alcotest.(check int) "coordinator 0" 0 (Machines.coordinator m 0);
  Alcotest.(check int) "coordinator 1" 31 (Machines.coordinator m 1);
  Alcotest.(check int) "coordinator 5" 68 (Machines.coordinator m 5);
  let mm = Machines.machine m 31 in
  Alcotest.(check int) "cluster of 31" 1 mm.Machines.cluster;
  Alcotest.(check int) "index of 31" 0 mm.Machines.index_in_cluster;
  Alcotest.(check int) "rank_of inverse" 31 (Machines.rank_of m ~cluster:1 ~index:0)

let test_machines_latency () =
  let g = Grid5000.grid () in
  let m = Machines.expand g in
  (* same cluster -> intra latency; different cluster -> inter *)
  check_feq "intra orsay" 47.56 (Machines.latency m 0 1);
  check_feq "inter orsay-orsayB" 62.10 (Machines.latency m 0 31);
  check_feq "inter orsay-idpot" 12_181.52 (Machines.latency m 0 61);
  Alcotest.check_raises "self" (Invalid_argument "Machines.link_params: equal ranks")
    (fun () -> ignore (Machines.latency m 3 3))

let test_machines_matrix_symmetric () =
  let g = small_grid () in
  let m = Machines.expand g in
  let matrix = Machines.latency_matrix m in
  let n = Machines.count m in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "zero diagonal" true (matrix.(i).(i) = 0.);
    for j = i + 1 to n - 1 do
      check_feq "symmetric" matrix.(i).(j) matrix.(j).(i)
    done
  done

(* --- Serialize ----------------------------------------------------------------- *)

let test_serialize_roundtrip () =
  let g = Grid5000.grid () in
  let text = Serialize.to_string g in
  match Serialize.of_string text with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok g2 ->
      Alcotest.(check int) "same size" (Grid.size g) (Grid.size g2);
      Alcotest.(check int) "same processes" (Grid.total_processes g)
        (Grid.total_processes g2);
      for i = 0 to Grid.size g - 1 do
        let a = Grid.cluster g i and b = Grid.cluster g2 i in
        Alcotest.(check string) "name" a.Cluster.name b.Cluster.name;
        Alcotest.(check int) "cluster size" a.Cluster.size b.Cluster.size;
        for j = 0 to Grid.size g - 1 do
          if i <> j then begin
            check_feq "latency" (Grid.latency g i j) (Grid.latency g2 i j);
            check_feq "gap 1MB" (Grid.gap g i j 1_000_000) (Grid.gap g2 i j 1_000_000);
            check_feq "gap 12345" (Grid.gap g i j 12_345) (Grid.gap g2 i j 12_345)
          end
        done
      done

let test_serialize_random_roundtrip =
  QCheck.Test.make ~name:"serialize roundtrip preserves random grids" ~count:(Testutil.count 20)
    QCheck.(int_range 1 9)
    (fun n ->
      let rng = Gridb_util.Rng.create (n * 17) in
      let g = Generators.uniform_random ~rng ~n Generators.default_random_spec in
      match Serialize.of_string (Serialize.to_string g) with
      | Error _ -> false
      | Ok g2 ->
          let ok = ref (Grid.size g = Grid.size g2) in
          for i = 0 to Grid.size g - 1 do
            for j = 0 to Grid.size g - 1 do
              if i <> j then
                ok :=
                  !ok
                  && feq (Grid.latency g i j) (Grid.latency g2 i j)
                  && feq (Grid.gap g i j 500_000) (Grid.gap g2 i j 500_000)
            done
          done;
          !ok)

let test_serialize_print_fixpoint =
  (* print . parse . print = print: the textual form itself round-trips, a
     stronger check than comparing sampled link parameters. *)
  QCheck.Test.make ~name:"serialize text is a fixpoint" ~count:(Testutil.count 20)
    QCheck.(int_range 1 9)
    (fun n ->
      let g = Testutil.random_grid ~n (n * 31) in
      let text = Serialize.to_string g in
      match Serialize.of_string text with
      | Error _ -> false
      | Ok g2 -> String.equal text (Serialize.to_string g2))

let test_serialize_rejects_garbage () =
  Alcotest.(check bool) "empty" true (Result.is_error (Serialize.of_string ""));
  Alcotest.(check bool) "bad header" true
    (Result.is_error (Serialize.of_string "grid x\n"));
  Alcotest.(check bool) "missing link" true
    (Result.is_error
       (Serialize.of_string
          "grid 2\ncluster 0 a 1 L 1 G 0:1\ncluster 1 b 1 L 1 G 0:1\n"));
  Alcotest.(check bool) "comments ok" true
    (Result.is_error (Serialize.of_string "# only a comment\n"))

(* --- Dot ---------------------------------------------------------------- *)

let dot_grid () =
  Generators.homogeneous ~n:3 ~cluster_size:2
    ~inter:(Params.linear ~latency:5000. ~g0:100. ~bandwidth_mb_s:5.)
    ~intra:(Params.linear ~latency:50. ~g0:10. ~bandwidth_mb_s:500.)

let test_dot_golden () =
  let expected =
    String.concat "\n"
      [ "graph grid {";
        "  node [shape=box, fontname=\"sans-serif\"];";
        "  c0 [label=\"homog-0\\n2 machines\"];";
        "  c1 [label=\"homog-1\\n2 machines\"];";
        "  c2 [label=\"homog-2\\n2 machines\"];";
        "  c0 -- c1 [label=\"5 ms\", style=bold, color=red];";
        "  c0 -- c2 [label=\"5 ms\", style=bold, color=red];";
        "  c1 -- c2 [label=\"5 ms\", style=bold, color=red];";
        "}";
        "" ]
  in
  Alcotest.(check string) "exact dot" expected (Gridb_topology.Dot.to_dot (dot_grid ()))

let test_dot_name_and_structure () =
  let g = dot_grid () in
  let named = Gridb_topology.Dot.to_dot ~name:"mygrid" g in
  Alcotest.(check bool) "graph identifier" true
    (String.length named > 14 && String.sub named 0 14 = "graph mygrid {");
  (* one node line per cluster, one edge line per unordered pair *)
  let lines = String.split_on_char '\n' named in
  let count p = List.length (List.filter p lines) in
  let has_sub sub line =
    let ls = String.length sub and ll = String.length line in
    let rec go i = i + ls <= ll && (String.sub line i ls = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check int) "node lines" 3 (count (has_sub "machines"));
  Alcotest.(check int) "edge lines" 3 (count (has_sub " -- "))

let test_dot_save () =
  let path = Filename.temp_file "gridb_dot" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Gridb_topology.Dot.save path (dot_grid ());
      let ic = open_in_bin path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "save writes to_dot" (Gridb_topology.Dot.to_dot (dot_grid ())) text)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "topology"
    [
      ("cluster", [ quick "constructor" test_cluster_v ]);
      ( "grid",
        [
          quick "accessors" test_grid_accessors;
          quick "rejects" test_grid_rejects;
          quick "validate symmetric" test_grid_validate_symmetric;
          quick "validate asymmetric" test_grid_validate_asymmetric;
          quick "map links" test_grid_map_links;
          quick "bad ids" test_grid_bad_ids;
        ] );
      ( "levels",
        [ quick "classification" test_levels_classification; quick "order" test_levels_order ]
      );
      ( "grid5000",
        [
          quick "structure" test_grid5000_structure;
          quick "table3 latencies" test_grid5000_latencies_match_table3;
          quick "bandwidth classes" test_grid5000_bandwidth_classes;
        ] );
      ( "generators",
        [
          quick "random within spec" test_random_grid_within_spec;
          quick "random symmetric" test_random_grid_symmetric;
          quick "multilevel structure" test_multilevel_structure;
        ] );
      ( "machines",
        [
          quick "expand" test_machines_expand;
          quick "latency" test_machines_latency;
          quick "matrix symmetric" test_machines_matrix_symmetric;
        ] );
      ( "serialize",
        [
          quick "grid5000 roundtrip" test_serialize_roundtrip;
          QCheck_alcotest.to_alcotest test_serialize_random_roundtrip;
          QCheck_alcotest.to_alcotest test_serialize_print_fixpoint;
          quick "rejects garbage" test_serialize_rejects_garbage;
        ] );
      ( "dot",
        [
          quick "golden" test_dot_golden;
          quick "name and structure" test_dot_name_and_structure;
          quick "save" test_dot_save;
        ] );
    ]

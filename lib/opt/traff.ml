module Instance = Gridb_sched.Instance
module State = Gridb_sched.State
module Schedule = Gridb_sched.Schedule

type params = {
  n : int;
  root : int;
  latency : float;
  gap : float;
  intra : float;
}

let close eps a b =
  Float.equal a b
  || (eps > 0. && Float.abs (a -. b) <= eps *. Float.max (Float.abs a) (Float.abs b))

let homogeneous ?(eps = 0.) (inst : Instance.t) =
  let n = inst.Instance.n in
  if n = 1 then
    Some { n; root = inst.Instance.root; latency = 0.; gap = 0.; intra = inst.Instance.intra.(0) }
  else begin
    let l0 = inst.Instance.latency.(0).(1)
    and g0 = inst.Instance.gap.(0).(1)
    and t0 = inst.Instance.intra.(0) in
    let ok = ref true in
    for i = 0 to n - 1 do
      if not (close eps inst.Instance.intra.(i) t0) then ok := false;
      for j = 0 to n - 1 do
        if i <> j then begin
          if not (close eps inst.Instance.latency.(i).(j) l0) then ok := false;
          if not (close eps inst.Instance.gap.(i).(j) g0) then ok := false
        end
      done
    done;
    if !ok then Some { n; root = inst.Instance.root; latency = l0; gap = g0; intra = t0 }
    else None
  end

let instance p =
  if p.n < 1 then invalid_arg "Traff.instance: n < 1";
  let mat v =
    Array.init p.n (fun i -> Array.init p.n (fun j -> if i = j then 0. else v))
  in
  Instance.v ~root:p.root ~latency:(mat p.latency) ~gap:(mat p.gap)
    ~intra:(Array.make p.n p.intra)

let informed ~gap ~latency t =
  if gap <= 0. then invalid_arg "Traff.informed: gap must be positive";
  if latency < 0. then invalid_arg "Traff.informed: negative latency";
  let memo = Hashtbl.create 64 in
  let rec go t =
    if t < gap +. latency then 1
    else
      match Hashtbl.find_opt memo t with
      | Some v -> v
      | None ->
          let v = go (t -. gap) + go (t -. gap -. latency) in
          Hashtbl.add memo t v;
          v
  in
  go t

(* Minimal binary min-heap over floats: the event queue of the
   keep-every-sender-busy simulation.  Popping the smallest [avail] and
   pushing back [avail + g] (the sender) and [(avail + g) + L] (the new
   coordinator) mirrors exactly what the greedy schedule does through
   [State], with the same association. *)
let last_arrival ~n ~gap ~latency =
  if gap < 0. then invalid_arg "Traff.last_arrival: negative gap";
  if latency < 0. then invalid_arg "Traff.last_arrival: negative latency";
  if n <= 1 then 0.
  else begin
    let heap = Array.make (2 * n) infinity in
    let size = ref 0 in
    let push x =
      let i = ref !size in
      incr size;
      heap.(!i) <- x;
      let continue = ref true in
      while !continue && !i > 0 do
        let p = (!i - 1) / 2 in
        if heap.(p) > heap.(!i) then begin
          let tmp = heap.(p) in
          heap.(p) <- heap.(!i);
          heap.(!i) <- tmp;
          i := p
        end
        else continue := false
      done
    in
    let pop () =
      let top = heap.(0) in
      decr size;
      heap.(0) <- heap.(!size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < !size && heap.(l) < heap.(!m) then m := l;
        if r < !size && heap.(r) < heap.(!m) then m := r;
        if !m <> !i then begin
          let tmp = heap.(!m) in
          heap.(!m) <- heap.(!i);
          heap.(!i) <- tmp;
          i := !m
        end
        else continue := false
      done;
      top
    in
    push 0.;
    let informed = ref 1 in
    let last = ref 0. in
    while !informed < n do
      let s = pop () in
      let sender_free = s +. gap in
      let arrival = sender_free +. latency in
      push sender_free;
      push arrival;
      incr informed;
      last := arrival
    done;
    !last
  end

let makespan p =
  if p.n <= 1 then p.intra
  else last_arrival ~n:p.n ~gap:p.gap ~latency:p.latency +. p.intra

let schedule inst =
  match homogeneous inst with
  | None -> invalid_arg "Traff.schedule: instance is not homogeneous"
  | Some _ ->
      let select st =
        let best = ref (-1) and best_avail = ref infinity in
        State.iter_a st (fun i ->
            let a = State.avail st i in
            if a < !best_avail then begin
              best := i;
              best_avail := a
            end);
        match State.first_b st with
        | Some dst -> (!best, dst)
        | None -> assert false
      in
      State.run select inst

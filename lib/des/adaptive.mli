(** Adaptive transport state: per-link RTT estimation (Jacobson/Karn) and
    circuit breakers, feeding measured numbers back into the executor.

    The paper computes schedules from static pLogP parameters; GRID5000-class
    grids drift, degrade and die mid-broadcast.  This module is the runtime
    half of the feedback loop: the reliable executor reports every
    acknowledged round trip and every timeout here, and reads back

    - a {e live} retransmission timeout per link — SRTT/RTTVAR smoothing
      with Karn's rule (samples whose edge saw a retransmission are
      ambiguous and never enter the estimator), clamped to
      [[rto_min, rto_max]];
    - a per-link {e circuit breaker} — closed until [breaker_threshold]
      consecutive timeouts or a single RTT blow-up opens it, half-open
      after a cooldown (one probe allowed), closed again on success;
    - an {e estimated} pLogP view — the observed SRTT over the nominal
      round trip gives a multiplicative quality factor that rescales the
      nominal {!Gridb_plogp.Params.t}, so schedule repair and the policies
      can replan on measured rather than nominal numbers.

    The estimator is pure bookkeeping: it consumes no randomness and never
    perturbs the data path, which is what keeps the zero-fault run of the
    adaptive executor bit-identical to {!Exec.run}. *)

type config = {
  alpha : float;  (** SRTT gain (Jacobson), default 1/8 *)
  beta : float;  (** RTTVAR gain, default 1/4 *)
  var_mult : float;  (** RTO = SRTT + [var_mult] * RTTVAR, default 4 *)
  rto_min : float;  (** RTO floor, us; default 1 *)
  rto_max : float;  (** RTO cap, us (also caps backoff); default 1e9 *)
  breaker_threshold : int;
      (** consecutive timeouts that open a closed circuit; default 3 *)
  blowup_factor : float;
      (** a valid sample > [blowup_factor] * SRTT opens the circuit
          immediately; default 8 *)
  cooldown_mult : float;
      (** an open circuit half-opens [cooldown_mult] * current RTO after
          opening; default 4 *)
  max_reroutes : int;
      (** per-destination reroute budget for the executor; 0 = derive
          [2 * ranks] at run time; default 0 *)
}

val default : config

val v :
  ?alpha:float ->
  ?beta:float ->
  ?var_mult:float ->
  ?rto_min:float ->
  ?rto_max:float ->
  ?breaker_threshold:int ->
  ?blowup_factor:float ->
  ?cooldown_mult:float ->
  ?max_reroutes:int ->
  unit ->
  config
(** Validated constructor; omitted fields take {!default}'s values.
    @raise Invalid_argument on [alpha]/[beta] outside (0, 1], non-positive
    [var_mult]/[rto_min]/[cooldown_mult], [rto_max < rto_min],
    [breaker_threshold < 1], [blowup_factor <= 1.] or negative
    [max_reroutes]. *)

type t
(** Estimator + breaker state over [n] ranks (per directed link, lazily
    materialised). *)

val create : ?config:config -> n:int -> unit -> t
(** @raise Invalid_argument if [n < 1] (the config is re-validated). *)

val config : t -> config
val size : t -> int

(** {2 Estimator} *)

val rto : t -> src:int -> dst:int -> nominal:float -> fallback:float -> float
(** Current retransmission timeout for the link: [SRTT + var_mult * RTTVAR]
    once a sample exists, the model-derived [fallback] before that; always
    clamped to [[rto_min, rto_max]].  [nominal] is the link's {e un-inflated}
    model round trip — gap + latency + ACK latency, with no RTO multiplier
    or floor folded in — and the first call latches it as the denominator
    of {!quality} (SRTT converges to the raw round trip, so an inflated
    nominal would make healthy links read faster than the model).  The
    first [fallback] is latched separately as the breaker's cooldown base
    for links without samples.  Later values of either are ignored. *)

val on_sample :
  t ->
  src:int ->
  dst:int ->
  rtt:float ->
  retransmitted:bool ->
  now:float ->
  [ `No_change | `Opened | `Closed ]
(** Report one acknowledged round trip observed at [now].  Karn's rule:
    when [retransmitted] is true (the edge retransmitted since its last
    clean sample, so the ACK is ambiguous) the sample never enters
    SRTT/RTTVAR — but the success still resets the breaker's strike count
    and closes a non-closed circuit.  A valid sample exceeding
    [blowup_factor * SRTT] opens the circuit instead (cooldown from
    [now]).  The result reports the breaker transition this sample caused —
    [`Opened] (blow-up from closed/half-open), [`Closed] (success while
    open/half-open) or [`No_change] — so the caller can publish
    [Circuit_open]/[Circuit_close].  @raise Invalid_argument on
    out-of-range ranks or [rtt < 0.]. *)

val on_timeout : t -> src:int -> dst:int -> now:float -> bool
(** Report one retransmission timeout.  Increments the consecutive-strike
    counter; returns [true] iff this strike opened a closed circuit (the
    caller publishes [Circuit_open]).  An open or half-open circuit stays
    open (the cooldown restarts). *)

val usable : t -> src:int -> dst:int -> now:float -> bool
(** Breaker gate: [true] for a closed circuit, and for an open one whose
    cooldown elapsed — which transitions it to half-open (the probe the
    caller is about to send).  [false] while the cooldown is running.
    Half-open links answer [true] (the probe is in flight). *)

val usable_now : t -> src:int -> dst:int -> now:float -> bool
(** Pure variant of {!usable}: same answer, but an elapsed cooldown is only
    observed, never applied — the circuit stays open until {!usable}
    transitions it.  Use this to score candidate links without half-opening
    breakers of links no probe will actually cross. *)

val circuit : t -> src:int -> dst:int -> [ `Closed | `Open | `Half_open ]
(** Current breaker state (no transition; cooldown expiry is only applied
    by {!usable}). *)

(** {2 Estimated parameters} *)

val srtt : t -> src:int -> dst:int -> float option
val rttvar : t -> src:int -> dst:int -> float option
val samples : t -> src:int -> dst:int -> int
(** Valid (Karn-accepted) samples folded into the link's estimator. *)

val quality : t -> src:int -> dst:int -> float
(** Multiplicative drift of the link: [SRTT / nominal round trip], 1. until
    a valid sample exists.  > 1 means the link is slower than the model
    says. *)

val estimated_params : t -> src:int -> dst:int -> Gridb_plogp.Params.t -> Gridb_plogp.Params.t
(** [estimated_params t ~src ~dst nominal] rescales the nominal parameter
    set by {!quality} (gap and latency alike) — a
    {!Gridb_plogp.Params.t}-shaped view of the live estimate that
    {!Gridb_sched.Repair} and the policies can replan on. *)

val estimated_latency_matrix :
  ?symmetric:bool -> t -> nominal:(src:int -> dst:int -> float) -> float array array
(** Full [n x n] estimated latency matrix: entry [(i, j)] is
    {!quality}[ ~src:i ~dst:j] times [nominal ~src:i ~dst:j] (zero on the
    diagonal) — entry-by-entry equal to the per-link {!estimated_params}
    latencies.  With [symmetric] (default [false]) off-diagonal entries
    take the {e max} of the two directions, the conservative symmetric
    view {!Gridb_clustering.Lowekamp.detect} consumes directly: the slower
    direction decides whether a pair still looks homogeneous. *)

type t = { assignment : int array; count : int }

let of_assignment labels =
  let n = Array.length labels in
  if n = 0 then invalid_arg "Partition.of_assignment: empty input";
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  let assignment =
    Array.map
      (fun label ->
        match Hashtbl.find_opt mapping label with
        | Some id -> id
        | None ->
            let id = !next in
            incr next;
            Hashtbl.add mapping label id;
            id)
      labels
  in
  { assignment; count = !next }

let trivial n = of_assignment (Array.init n (fun i -> i))
let all_in_one n = of_assignment (Array.make n 0)

let count t = t.count
let size t = Array.length t.assignment

let cluster_of t i =
  if i < 0 || i >= size t then invalid_arg "Partition.cluster_of: out of range";
  t.assignment.(i)

let members t c =
  if c < 0 || c >= t.count then invalid_arg "Partition.members: out of range";
  let acc = ref [] in
  for i = size t - 1 downto 0 do
    if t.assignment.(i) = c then acc := i :: !acc
  done;
  !acc

let sizes t =
  let s = Array.make t.count 0 in
  Array.iter (fun c -> s.(c) <- s.(c) + 1) t.assignment;
  s

let equal a b = a.assignment = b.assignment

let rand_index a b =
  let n = size a in
  if size b <> n then invalid_arg "Partition.rand_index: size mismatch";
  if n = 1 then 1.
  else begin
    let agreements = ref 0 in
    let total = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        incr total;
        let same_a = a.assignment.(i) = a.assignment.(j) in
        let same_b = b.assignment.(i) = b.assignment.(j) in
        if same_a = same_b then incr agreements
      done
    done;
    float_of_int !agreements /. float_of_int !total
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>partition: %d clusters over %d machines@," t.count (size t);
  for c = 0 to t.count - 1 do
    Format.fprintf ppf "  %d: {%s}@," c
      (String.concat "," (List.map string_of_int (members t c)))
  done;
  Format.fprintf ppf "@]"

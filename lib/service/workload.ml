module Rng = Gridb_util.Rng
module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid

type request = {
  rid : int;
  at : float;
  root : int;
  msg : int;
  policy : string;
}

type mix = {
  roots : int array;
  msgs : int array;
  policies : string array;
}

let default_mix machines =
  let clusters = Grid.size (Machines.grid machines) in
  {
    (* Few distinct roots/sizes/policies: the key space stays small, so a
       sustained request stream revisits keys and the plan cache earns its
       keep (hit rate > 0.5 on the default bench workload). *)
    roots = Array.init (min 3 clusters) Fun.id;
    msgs = [| 65_536; 1_000_000 |];
    policies = [| "ECEF"; "ECEF-LA" |];
  }

let validate_mix machines m =
  let clusters = Grid.size (Machines.grid machines) in
  if Array.length m.roots = 0 then invalid_arg "Workload.generate: empty root mix";
  Array.iter
    (fun r ->
      if r < 0 || r >= clusters then
        invalid_arg "Workload.generate: root cluster out of range")
    m.roots;
  if Array.length m.msgs = 0 then invalid_arg "Workload.generate: empty size mix";
  Array.iter
    (fun s -> if s < 1 then invalid_arg "Workload.generate: message size < 1")
    m.msgs;
  if Array.length m.policies = 0 then
    invalid_arg "Workload.generate: empty policy mix";
  Array.iter
    (fun p ->
      if Gridb_sched.Heuristics.by_name p = None then
        invalid_arg (Printf.sprintf "Workload.generate: unknown policy %S" p))
    m.policies

let generate ?mix ~seed ~rate ~duration machines =
  if rate <= 0. then invalid_arg "Workload.generate: rate must be positive";
  if duration <= 0. then invalid_arg "Workload.generate: duration must be positive";
  let m = match mix with Some m -> m | None -> default_mix machines in
  validate_mix machines m;
  let rng = Rng.create seed in
  (* Open loop: arrivals are a Poisson process of rate [rate], independent
     of service times — the generator never waits for completions.  Fixed
     per-request draw order (interarrival, root, size, policy) keeps equal
     seeds giving equal request streams whatever the mix sizes. *)
  let rec go rid t acc =
    let t = t +. Rng.exponential rng rate in
    if t > duration then List.rev acc
    else
      let root = Rng.pick rng m.roots in
      let msg = Rng.pick rng m.msgs in
      let policy = Rng.pick rng m.policies in
      go (rid + 1) t ({ rid; at = t; root; msg; policy } :: acc)
  in
  go 0 0. []

(** The library-level MPI_Bcast of the modified MagPIe (Section 7).

    A strategy selects how the rank-level broadcast plan is built; the plan
    is then executed on the discrete-event simulator (the simulated
    testbed).  Scheduled strategies compute against the {e measured}
    parameters in {!Tuning.t} but execute against the ground-truth topology
    — the prediction error of Figure 5 vs Figure 6 is precisely this gap
    plus runtime noise. *)

type strategy =
  | Binomial_world  (** grid-unaware binomial over all ranks ("Default LAM") *)
  | Flat_two_level  (** ECO / MagPIe: flat inter-cluster, binomial inside *)
  | Scheduled of Gridb_sched.Heuristics.t
      (** hierarchical with the given inter-cluster heuristic *)
  | Adaptive of Gridb_sched.Heuristics.t list
      (** portfolio over the measured parameters: predict every candidate,
          run the winner (the paper's mixed-strategy suggestion, taken to
          its limit).  @raise Invalid_argument on an empty list at use. *)

val strategy_name : strategy -> string

val plan : Tuning.t -> strategy -> root:int -> msg:int -> Gridb_des.Plan.t
(** Rank-level plan for broadcasting [msg] bytes from cluster [root]'s
    coordinator. *)

val predict : Tuning.t -> strategy -> root:int -> msg:int -> float
(** Completion time (us) under the {e measured} parameters: what the
    library believes before sending a byte.  For [Binomial_world] the
    prediction executes the plan on the measured grid's machine view. *)

val execute :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  ?charge_overhead:bool ->
  ?obs:Gridb_obs.Sink.t ->
  Tuning.t ->
  strategy ->
  root:int ->
  msg:int ->
  Gridb_des.Exec.result
(** Run on the ground-truth topology.  [charge_overhead] (default [true])
    delays the root by the strategy's scheduling cost
    ({!Gridb_sched.Overhead}; the full portfolio cost for [Adaptive], zero
    on a schedule-cache hit).

    [obs] defaults to the tuning context's sink ({!Tuning.obs}), so one
    sink passed to {!Tuning.create} observes the whole pipeline:
    [Cache_hit]/[Cache_miss] during planning, [Strategy_selected] for
    [Adaptive] picks, and the executor's transmission events. *)

type pair_score =
  | Latency
  | Transmission
  | Arrival

let score_depends_on_avail = function
  | Latency | Transmission -> false
  | Arrival -> true

let arrival_score ~avail ~gap ~latency = avail +. gap +. latency

type t = { name : string; shape : shape }

and shape =
  | Root_first
  | Select_min of { score : pair_score; lookahead : Lookahead.t }
  | Max_reach
  | Sized of { threshold : int; small : t; large : t }

let name t = t.name
let shape t = t.shape

let v ~name shape = { name; shape }

let flat_tree = { name = "FlatTree"; shape = Root_first }

let fef =
  { name = "FEF"; shape = Select_min { score = Latency; lookahead = Lookahead.none } }

let ecef =
  { name = "ECEF"; shape = Select_min { score = Arrival; lookahead = Lookahead.none } }

let select_min ?name ~score lookahead =
  let name =
    match name with
    | Some n -> n
    | None -> "ECEF-LA<" ^ lookahead.Lookahead.name ^ ">"
  in
  { name; shape = Select_min { score; lookahead } }

let ecef_with ?name lookahead = select_min ?name ~score:Arrival lookahead

let ecef_la = ecef_with ~name:"ECEF-LA" Lookahead.min_edge
let ecef_lat_min = ecef_with ~name:"ECEF-LAt" Lookahead.min_edge_plus_t
let ecef_lat_max = ecef_with ~name:"ECEF-LAT" Lookahead.max_edge_plus_t

let bottom_up = { name = "BottomUp"; shape = Max_reach }

let all = [ flat_tree; fef; ecef; ecef_la; ecef_lat_min; ecef_lat_max; bottom_up ]
let names = List.map name all

let sized ~threshold ~small ~large =
  if threshold < 1 then invalid_arg "Policy.sized: threshold < 1";
  {
    name = Printf.sprintf "Mixed<%s|%s@%d>" small.name large.name threshold;
    shape = Sized { threshold; small; large };
  }

let rec resolve ~n t =
  match t.shape with
  | Sized { threshold; small; large } ->
      resolve ~n (if n <= threshold then small else large)
  | Root_first | Select_min _ | Max_reach -> t

(* --- name lookup ------------------------------------------------------- *)

(* "ECEF-LA<lookahead>" (case-insensitive wrapper, exact lookahead name). *)
let parse_ecef_la name =
  let prefix = "ecef-la<" in
  let len = String.length name in
  if
    len > String.length prefix + 1
    && String.lowercase_ascii (String.sub name 0 (String.length prefix)) = prefix
    && name.[len - 1] = '>'
  then
    let inner = String.sub name 8 (len - 9) in
    Option.map (fun la -> ecef_with la) (Lookahead.by_name inner)
  else None

(* "Mixed<small|large@threshold>": the component names may themselves be
   parameterised (and so contain '|', '@', '<', '>'), so try every '|' as
   the separator and every '@' after it as the threshold marker, keeping
   the first split where both components resolve. *)
let parse_mixed ~by_name name =
  let prefix = "mixed<" in
  let len = String.length name in
  if
    len > String.length prefix + 1
    && String.lowercase_ascii (String.sub name 0 (String.length prefix)) = prefix
    && name.[len - 1] = '>'
  then begin
    let body = String.sub name 6 (len - 7) in
    let blen = String.length body in
    let result = ref None in
    for bar = 0 to blen - 1 do
      if !result = None && body.[bar] = '|' then
        for at = bar + 1 to blen - 1 do
          if !result = None && body.[at] = '@' then
            match int_of_string_opt (String.sub body (at + 1) (blen - at - 1)) with
            | Some threshold when threshold >= 1 -> (
                let small_name = String.sub body 0 bar in
                let large_name = String.sub body (bar + 1) (at - bar - 1) in
                match (by_name small_name, by_name large_name) with
                | Some small, Some large ->
                    result := Some (sized ~threshold ~small ~large)
                | _ -> ())
            | _ -> ()
        done
    done;
    !result
  end
  else None

let rec by_name name =
  match List.find_opt (fun t -> t.name = name) all with
  | Some t -> Some t
  | None -> (
      match parse_ecef_la name with
      | Some t -> Some t
      | None -> (
          match parse_mixed ~by_name name with
          | Some t -> Some t
          | None ->
              (* Case-insensitive fallback, but only when unambiguous:
                 "ecef-lat" matches both ECEF-LAt and ECEF-LAT (they differ
                 only by case) and must resolve to neither. *)
              let canon = String.lowercase_ascii name in
              (match
                 List.filter (fun t -> String.lowercase_ascii t.name = canon) all
               with
              | [ t ] -> Some t
              | _ -> None)))

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p05 : float;
  p95 : float;
}

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Stats.variance" xs;
  let n = Array.length xs in
  if n = 1 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile_sorted sorted p =
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else begin
      let w = rank -. float_of_int lo in
      (sorted.(lo) *. (1. -. w)) +. (sorted.(hi) *. w)
    end
  end

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  if p < 0. || p > 1. then invalid_arg "Stats.percentile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  percentile_sorted sorted p

let median xs = percentile xs 0.5

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    median = percentile_sorted sorted 0.5;
    p05 = percentile_sorted sorted 0.05;
    p95 = percentile_sorted sorted 0.95;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.6g sd=%.3g min=%.6g med=%.6g max=%.6g [p05=%.6g p95=%.6g]"
    s.count s.mean s.stddev s.min s.median s.max s.p05 s.p95

module Online = struct
  type t = {
    mutable n : int;
    mutable mu : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () = { n = 0; mu = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mu in
    t.mu <- t.mu +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mu));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.mu
  let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)

  let min t =
    if t.n = 0 then invalid_arg "Stats.Online.min: empty accumulator";
    t.lo

  let max t =
    if t.n = 0 then invalid_arg "Stats.Online.max: empty accumulator";
    t.hi

  (* Chan et al. pairwise combination. *)
  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else begin
      let n = a.n + b.n in
      let fa = float_of_int a.n and fb = float_of_int b.n in
      let delta = b.mu -. a.mu in
      let mu = a.mu +. (delta *. fb /. float_of_int n) in
      let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
      { n; mu; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
    end
end

(** Deterministic multicore batch execution (OCaml 5 domains).

    Every batch path in the repo — conformance fuzzing, repetition sweeps,
    benchmark grids — runs thousands of {e independent} scenarios; this
    pool fans them out over domains while keeping results bit-identical
    regardless of worker count or scheduling order.  Work is claimed
    dynamically off a shared atomic cursor (a slow task never blocks the
    tasks queued behind it), results land in index order, and with
    [jobs = 1] the batch runs inline on the calling domain with no spawns
    at all — byte-for-byte today's sequential behaviour.

    Determinism contract for tasks: they must not share mutable state.
    Derive per-task randomness with {!Rng.split}[ base i] (pure in the
    base state and the index), and if a task must emit observability
    events, give it a private [Gridb_obs] Memory sink and emit the
    buffered events in index order after the batch returns.

    Exceptions: if any task raises, the batch completes (other tasks are
    not cancelled) and then re-raises the exception of the {e lowest}
    failing index — the same exception a sequential left-to-right run
    would have surfaced first. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the physical parallelism the
    runtime suggests; 1 on a single-core machine. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f items] is [Array.map f items] computed by up to [jobs]
    domains (the caller's included).  Defaults to {!default_jobs};
    [jobs <= 1] runs inline and spawns nothing. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map}, passing the index — the hook for per-task stream
    derivation ([Rng.split base i]). *)

val mapi_stream :
  ?jobs:int -> consume:(int -> 'b -> unit) -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** {!mapi} that additionally streams results out as they complete:
    [consume i r] runs on the {e calling} domain, in strictly ascending
    index order, as soon as every slot up to [i] has finished — so a
    parallel benchmark sweep prints its cells incrementally (instead of
    buffering everything until the join) yet the printed output is
    byte-identical to the sequential run's.  With [jobs = 1] each result
    is consumed immediately after it is computed, inline.  If a task
    raises, consumption stops just before the lowest failing index and
    that exception is re-raised after the batch completes — again matching
    the sequential run. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over lists (converts through arrays). *)

val find_first : ?jobs:int -> (int -> 'a -> 'b option) -> 'a array -> (int * 'b) option
(** [find_first ~jobs f items] is the first index (and payload) for which
    [f] returns [Some], or [None] — exactly what a sequential
    left-to-right scan with early exit returns, for every [jobs].  Indices
    are claimed in ascending order and claiming stops once every index at
    or below the best match found so far has been evaluated, so the
    parallel scan does bounded extra work past the first match. *)

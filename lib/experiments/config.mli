(** Experiment configuration.

    The paper's simulations average 10000 iterations per data point
    (Section 6) on 1 MB broadcasts with the Table 2 parameter ranges.
    [quick] trades iterations for speed and is what the test suite uses;
    the bench harness runs [default]. *)

type t = {
  iterations : int;  (** random draws per data point *)
  seed : int;  (** base RNG seed; points derive sub-seeds deterministically *)
  msg : int;  (** broadcast size in bytes *)
  model : Gridb_sched.Schedule.completion_model;
  ranges : Gridb_sched.Instance.ranges;  (** Table 2 *)
}

val default : t
(** 10000 iterations, seed 2006, 1 MB, [After_sends], Table 2 ranges. *)

val quick : t
(** 300 iterations — statistically noisy but fast; same draws family. *)

val with_iterations : int -> t -> t
val with_model : Gridb_sched.Schedule.completion_model -> t -> t

val point_rng : t -> point:int -> Gridb_util.Rng.t
(** Independent RNG stream for data point number [point] (so adding or
    reordering points does not perturb other points' draws). *)

type machine = { rank : int; cluster : int; index_in_cluster : int }

type t = {
  grid : Grid.t;
  machines : machine array;
  first_rank : int array;  (* first global rank of each cluster *)
}

let expand grid =
  let n = Grid.size grid in
  let first_rank = Array.make n 0 in
  let total = ref 0 in
  for c = 0 to n - 1 do
    first_rank.(c) <- !total;
    total := !total + (Grid.cluster grid c).Cluster.size
  done;
  let machines =
    Array.init !total (fun _ -> { rank = 0; cluster = 0; index_in_cluster = 0 })
  in
  for c = 0 to n - 1 do
    let size = (Grid.cluster grid c).Cluster.size in
    for i = 0 to size - 1 do
      let rank = first_rank.(c) + i in
      machines.(rank) <- { rank; cluster = c; index_in_cluster = i }
    done
  done;
  { grid; machines; first_rank }

let grid t = t.grid
let count t = Array.length t.machines

let machine t rank =
  if rank < 0 || rank >= count t then invalid_arg "Machines.machine: rank out of range";
  t.machines.(rank)

let coordinator t c =
  if c < 0 || c >= Grid.size t.grid then invalid_arg "Machines.coordinator: cluster out of range";
  t.first_rank.(c)

let rank_of t ~cluster ~index =
  if cluster < 0 || cluster >= Grid.size t.grid then
    invalid_arg "Machines.rank_of: cluster out of range";
  let size = (Grid.cluster t.grid cluster).Cluster.size in
  if index < 0 || index >= size then invalid_arg "Machines.rank_of: index out of range";
  t.first_rank.(cluster) + index

let link_params t r1 r2 =
  if r1 = r2 then invalid_arg "Machines.link_params: equal ranks";
  let m1 = machine t r1 and m2 = machine t r2 in
  if m1.cluster = m2.cluster then (Grid.cluster t.grid m1.cluster).Cluster.intra
  else Grid.link t.grid m1.cluster m2.cluster

let latency t r1 r2 = Gridb_plogp.Params.latency (link_params t r1 r2)

let latency_matrix ?rng ?(jitter_sigma = 0.05) t =
  let n = count t in
  let m = Array.make_matrix n n 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let base = latency t i j in
      let value =
        match rng with
        | None -> base
        | Some rng -> base *. Gridb_util.Rng.lognormal ~mu:0. ~sigma:jitter_sigma rng
      in
      m.(i).(j) <- value;
      m.(j).(i) <- value
    done
  done;
  m

type t = {
  max_concurrent : int;
  max_backlog_us : float;
  (* Predicted finish times of admitted, not-yet-finished sessions,
     ascending.  The population is small (bounded by max_concurrent), so a
     sorted list beats a heap on constant factors and keeps decisions
     trivially deterministic. *)
  mutable inflight : float list;
}

type decision = Admit | Reject of string

let create ?(max_concurrent = 8) ?(max_backlog_us = infinity) () =
  if max_concurrent < 1 then invalid_arg "Admission.create: max_concurrent < 1";
  if max_backlog_us <= 0. then invalid_arg "Admission.create: max_backlog_us <= 0";
  { max_concurrent; max_backlog_us; inflight = [] }

let rec insert t = function
  | [] -> [ t ]
  | x :: rest when x <= t -> x :: insert t rest
  | later -> t :: later

(* Admission is judged on the {e predicted} makespan of the (cached) plan,
   not on simulated completions: the decision is available at request
   arrival, before any execution, and is identical however the batch is
   parallelised.  Prediction errs optimistic under contention (plans are
   costed uncontended), which makes the controller an upper bound on
   admitted load — the honest direction for overload protection. *)
let decide t ~now ~predicted_makespan =
  t.inflight <- List.filter (fun finish -> finish > now) t.inflight;
  let inflight = List.length t.inflight in
  if inflight >= t.max_concurrent then
    Reject (Printf.sprintf "concurrency limit (%d in flight)" inflight)
  else
    let backlog =
      match t.inflight with [] -> 0. | l -> List.fold_left Float.max 0. l -. now
    in
    if backlog > t.max_backlog_us then
      Reject (Printf.sprintf "backlog %.0f us over budget" backlog)
    else begin
      t.inflight <- insert (now +. predicted_makespan) t.inflight;
      Admit
    end

let inflight t ~now = List.length (List.filter (fun f -> f > now) t.inflight)

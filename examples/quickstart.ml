(* Quickstart: schedule a 1 MB broadcast on the paper's GRID5000 topology.

   Run with: dune exec examples/quickstart.exe *)

module Topology = Gridb_topology
module Sched = Gridb_sched

let () =
  (* 1. A topology: 6 clusters, 88 machines, Table 3 latencies. *)
  let grid = Topology.Grid5000.grid () in
  Format.printf "%a@." Topology.Grid.pp grid;

  (* 2. Freeze it into a scheduling instance for a 1 MB broadcast rooted at
        cluster 0 (Orsay-A).  This evaluates every link's pLogP gap at 1 MB
        and predicts each cluster's internal binomial-broadcast time T_k. *)
  let msg = 1_000_000 in
  let inst = Sched.Instance.of_grid ~root:0 ~msg grid in

  (* 3. Run a heuristic.  ECEF-LAt is one of the paper's grid-aware
        contributions: it extends Bhat's lookahead with the intra-cluster
        broadcast time. *)
  let schedule = Sched.Heuristics.run Sched.Heuristics.ecef_lat_min inst in
  Format.printf "@.%a@." Sched.Schedule.pp schedule;

  (* 4. Inspect the result. *)
  Format.printf "makespan: %a@." Gridb_util.Units.pp_time
    (Sched.Schedule.makespan inst schedule);
  Format.printf "relay depth: %d@." (Sched.Schedule.depth schedule);

  (* 5. Compare all seven heuristics of the paper on the same instance. *)
  Format.printf "@.all heuristics on this instance:@.";
  List.iter
    (fun h ->
      Format.printf "  %-10s %a@." h.Sched.Heuristics.name Gridb_util.Units.pp_time
        (Sched.Heuristics.makespan h inst))
    Sched.Heuristics.all;

  (* 6. For small grids the true optimum is computable: 6 clusters is well
        inside the brute-force ceiling. *)
  Format.printf "@.optimal (brute force): %a@." Gridb_util.Units.pp_time
    (Sched.Optimal.makespan inst)

(** Predicted-load admission control for the broadcast service.

    Decisions are made at request arrival from the {e predicted} makespan
    of the request's (cached) plan — never from simulated completions, so
    the controller is causal (it cannot peek at the future), deterministic
    and independent of how planning was parallelised.  A request is
    rejected when the concurrency cap is reached or the predicted backlog
    (latest predicted finish minus now) exceeds the budget; an admitted
    request books [now + predicted_makespan] as its predicted finish.

    Degraded mode: an optional {!shed} policy sheds {e low-priority}
    requests earlier than the hard caps would refuse them — when the
    predicted backlog crosses a watermark, or when the caller-supplied
    open-circuit fraction (the server's live circuit-breaker health
    signal) exceeds a threshold.  High-priority traffic is never shed,
    only capped.  Shed rejections carry their own typed {!reason}s so
    accounting (and the shed-ordering invariant) can tell overload
    protection from degraded-mode load shedding. *)

type reason =
  | Concurrency of int  (** hard cap: sessions in flight at decision time *)
  | Backlog of float  (** hard cap: predicted backlog, us *)
  | Shed_backlog of float
      (** degraded mode: predicted backlog past the shedding watermark
          (low-priority request) *)
  | Shed_circuit of float
      (** degraded mode: open-circuit fraction past the threshold
          (low-priority request) *)
  | Bad_policy of string
      (** unknown heuristic name; produced by {!Server.run}, never by
          {!decide} *)

type decision = Admit | Reject of reason

val reason_string : reason -> string
(** Human-readable rendering ([Concurrency]/[Backlog] render exactly the
    historical reason strings, which the smoke output pins). *)

val is_shed : reason -> bool
(** [true] on [Shed_backlog]/[Shed_circuit] only. *)

type shed = { watermark_us : float; max_open_frac : float }
(** Degraded-mode policy: shed low-priority requests when the predicted
    backlog exceeds [watermark_us] (choose it below [max_backlog_us] so
    high-priority traffic still lands in between) or the open-circuit
    fraction exceeds [max_open_frac]. *)

val no_shed : shed
(** Both thresholds infinite: shedding disabled (the default). *)

val shed : ?watermark_us:float -> ?max_open_frac:float -> unit -> shed
(** Build a validated policy; omitted thresholds stay infinite.
    @raise Invalid_argument on a non-positive [watermark_us] or a negative
    [max_open_frac]. *)

type t

val create :
  ?max_concurrent:int -> ?max_backlog_us:float -> ?shed:shed -> unit -> t
(** Defaults: at most 8 predicted-concurrent sessions, unbounded backlog,
    shedding disabled.
    @raise Invalid_argument if [max_concurrent < 1] or
    [max_backlog_us <= 0.]. *)

val decide :
  ?priority:Workload.priority ->
  ?open_frac:float ->
  t ->
  now:float ->
  predicted_makespan:float ->
  decision
(** Decide one request; call in arrival order ([now] non-decreasing).
    [priority] defaults to [High] (never shed); [open_frac] defaults to
    [0.] (no circuit-health signal).  [Admit] records the predicted
    finish. *)

val inflight : t -> now:float -> int
(** Sessions whose predicted finish is past [now]. *)

val shedding : t -> bool
(** Whether a degraded-mode {!shed} policy (other than {!no_shed}) is
    installed. *)

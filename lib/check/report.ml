let render_success ~seed ~count =
  Printf.sprintf "check: %d scenario%s passed every invariant (seed %d)" count
    (if count = 1 then "" else "s")
    seed

let render_failure ?out (f : Fuzz.failure) =
  let b = Buffer.create 256 in
  Printf.bprintf b "check: FAILED after %d passing scenario%s\n" f.Fuzz.tested
    (if f.Fuzz.tested = 1 then "" else "s");
  Printf.bprintf b "  invariant: %s\n" f.Fuzz.violation.Invariant.invariant;
  Printf.bprintf b "  detail:    %s\n" f.Fuzz.violation.Invariant.detail;
  Printf.bprintf b "  scenario:  %s\n" (Scenario.to_json f.Fuzz.scenario);
  if not (Scenario.equal f.Fuzz.scenario f.Fuzz.original) then
    Printf.bprintf b "  shrunk:    %d step%s from %s\n" f.Fuzz.shrink_steps
      (if f.Fuzz.shrink_steps = 1 then "" else "s")
      (Scenario.to_json f.Fuzz.original);
  (match out with
  | Some path ->
      Printf.bprintf b "  reproduce: gridsched check --replay %s" path
  | None -> ());
  Buffer.contents b

let render_replay path = function
  | Fuzz.Fixed ->
      Printf.sprintf "replay %s: scenario now passes every invariant (fixed?)"
        path
  | Fuzz.Confirmed v ->
      Format.asprintf "replay %s: confirmed %a" path Invariant.pp_violation v
  | Fuzz.Different { recorded; got } ->
      Format.asprintf
        "replay %s: still failing, but %a (reproducer recorded %S)" path
        Invariant.pp_violation got recorded

let catalogue () =
  let b = Buffer.create 256 in
  let section title names =
    Printf.bprintf b "%s:\n" title;
    List.iter (fun n -> Printf.bprintf b "  %s\n" n) names
  in
  section "schedule invariants" Invariant.schedule_invariant_names;
  section "stream invariants" Invariant.stream_invariant_names;
  section "metamorphic laws" Metamorphic.metamorphic_names;
  section "pipeline checks" Run.run_invariant_names;
  section "service checks" Run.service_invariant_names;
  section "chaos checks" Run.chaos_invariant_names;
  section "opt checks" Run.opt_invariant_names;
  section "policies (Policy.names, the table every listing shares)"
    (Array.to_list Scenario.policy_menu);
  Buffer.contents b

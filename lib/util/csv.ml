let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape cells)

let rec ensure_directory dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_directory (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write path rows =
  ensure_directory (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun row ->
          output_string oc (row_to_string row);
          output_char oc '\n')
        rows)

let float_rows ~header rows =
  header
  :: List.map
       (fun (label, xs) -> label :: List.map (Printf.sprintf "%.6g") xs)
       rows

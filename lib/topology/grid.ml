type t = {
  clusters : Cluster.t array;
  inter : Gridb_plogp.Params.t array array;
}

let v ~clusters ~inter =
  let clusters = Array.of_list clusters in
  let n = Array.length clusters in
  if n = 0 then invalid_arg "Grid.v: no clusters";
  Array.iteri
    (fun i (c : Cluster.t) ->
      if c.Cluster.id <> i then invalid_arg "Grid.v: cluster ids must be 0..n-1 in order")
    clusters;
  if Array.length inter <> n then invalid_arg "Grid.v: inter matrix height mismatch";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Grid.v: inter matrix width mismatch")
    inter;
  { clusters; inter }

let size t = Array.length t.clusters

let total_processes t =
  Array.fold_left (fun acc (c : Cluster.t) -> acc + c.Cluster.size) 0 t.clusters

let check_index t i name =
  if i < 0 || i >= size t then invalid_arg ("Grid." ^ name ^ ": index out of range")

let cluster t i =
  check_index t i "cluster";
  t.clusters.(i)

let clusters t = Array.copy t.clusters

let link t i j =
  check_index t i "link";
  check_index t j "link";
  if i = j then invalid_arg "Grid.link: i = j";
  t.inter.(i).(j)

let latency t i j = Gridb_plogp.Params.latency (link t i j)
let gap t i j m = Gridb_plogp.Params.gap (link t i j) m
let send_time t i j m = Gridb_plogp.Params.send_time (link t i j) m

let validate t =
  let n = size t in
  let problem = ref None in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && !problem = None then begin
        let lij = latency t i j and lji = latency t j i in
        let scale = Float.max (Float.abs lij) (Float.abs lji) in
        if scale > 0. && Float.abs (lij -. lji) /. scale > 1e-6 then
          problem :=
            Some (Printf.sprintf "asymmetric latency between %d and %d (%g vs %g)" i j lij lji)
      end
    done
  done;
  match !problem with Some reason -> Error reason | None -> Ok ()

let map_links f t =
  let n = size t in
  let inter =
    Array.init n (fun i -> Array.init n (fun j -> if i = j then t.inter.(i).(j) else f i j t.inter.(i).(j)))
  in
  { t with inter }

let pp ppf t =
  Format.fprintf ppf "@[<v>grid with %d clusters (%d processes)@," (size t)
    (total_processes t);
  Array.iter (fun c -> Format.fprintf ppf "  %a@," Cluster.pp c) t.clusters;
  Format.fprintf ppf "@]"

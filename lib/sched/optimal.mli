(** Exhaustive search for the optimal schedule (small instances only).

    The paper notes the search space is exponential and uses a per-iteration
    "global minimum" over the heuristics as a stand-in.  For validation we
    additionally provide the true optimum over the paper's schedule space
    (every cluster receives exactly once; senders are gap-serialised; intra
    broadcast after the last send), via depth-first branch-and-bound.  The
    number of schedules is [prod_{k=1}^{n-1} k * (n - k)]; n = 8 is about
    2.5 x 10^7 leaves and is the default ceiling. *)

val default_max_clusters : int
(** 8. *)

val makespan : ?max_clusters:int -> Instance.t -> float
(** Optimal makespan.  @raise Invalid_argument if the instance exceeds
    [max_clusters]. *)

val schedule : ?max_clusters:int -> Instance.t -> Schedule.t
(** An optimal schedule (deterministic: first optimum in lexicographic
    order of choices). *)

val schedule_count : int -> int
(** [schedule_count n]: number of leaves explored by brute force for [n]
    clusters, [prod k*(n-k)] — exposed for tests and documentation. *)

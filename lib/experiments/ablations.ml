module Heuristics = Gridb_sched.Heuristics
module Lookahead = Gridb_sched.Lookahead
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Mixed = Gridb_sched.Mixed
module State = Gridb_sched.State
module Topology = Gridb_topology
module Tree = Gridb_collectives.Tree
module Des = Gridb_des
module Ext = Gridb_extensions

let seconds us = us /. 1e6

let ns = [ 5; 10; 15; 20; 25; 30; 35; 40; 45; 50 ]

let transpose points extract =
  match points with
  | [] -> []
  | first :: _ ->
      let k = List.length (extract first) in
      List.init k (fun col ->
          List.map (fun p -> (float_of_int p.Sweep.n, List.nth (extract p) col)) points)

let sweep_figure config ~id ~title ~extract ~y_label heuristics =
  let points = Sweep.run config ~ns heuristics in
  let series =
    List.combine
      (List.map (fun h -> h.Heuristics.name) heuristics)
      (transpose points extract)
  in
  { Report.id; title; x_label = "clusters"; y_label; series; notes = [] }

let lookahead_sweep config =
  let heuristics = List.map Heuristics.ecef_with Lookahead.all in
  sweep_figure config ~id:"abl-lookahead"
    ~title:"Ablation: lookahead function plugged into the ECEF driver"
    ~extract:Sweep.mean_seconds ~y_label:"mean completion time (s)" heuristics

(* FEF scoring by transmission time instead of latency.  The Transmission
   pair score reproduces the old ascending-(i, j) first-wins scan, and being
   a policy it runs on the incremental engine like the named heuristics. *)
let fef_transmission =
  Heuristics.of_policy
    (Gridb_sched.Policy.select_min ~name:"FEF(g+L)"
       ~score:Gridb_sched.Policy.Transmission Lookahead.none)

let fef_edge_weight config =
  sweep_figure config ~id:"abl-fef-edge"
    ~title:"Ablation: FEF edge weight (latency vs transmission time)"
    ~extract:Sweep.mean_seconds ~y_label:"mean completion time (s)"
    [ Heuristics.fef; fef_transmission; Heuristics.ecef ]

let intra_shape _config =
  let grid = Topology.Grid5000.grid () in
  let shapes = Tree.all_shapes in
  let series =
    List.map
      (fun shape ->
        let points =
          List.map
            (fun msg ->
              let inst =
                Instance.of_grid ~shape ~root:Topology.Grid5000.root_cluster ~msg grid
              in
              ( float_of_int msg,
                seconds (Heuristics.makespan Heuristics.ecef_lat_max inst) ))
            Figures.message_sizes
        in
        (Tree.shape_name shape, points))
      shapes
  in
  {
    Report.id = "abl-intra-shape";
    title = "Ablation: intra-cluster tree shape feeding T_k (ECEF-LAT, GRID5000)";
    x_label = "message size (bytes)";
    y_label = "predicted completion time (s)";
    series;
    notes = [];
  }

let mixed_strategy config =
  let mixed = Mixed.strategy () in
  sweep_figure config ~id:"abl-mixed"
    ~title:"Ablation: Section 6 mixed strategy vs its components (hit counts)"
    ~extract:Sweep.hits
    ~y_label:(Printf.sprintf "hits out of %d" config.Config.iterations)
    [ Heuristics.ecef_la; Heuristics.ecef_lat_max; mixed ]

let completion_models config =
  let run model label =
    let cfg = Config.with_model model config in
    let points = Sweep.run cfg ~ns [ Heuristics.ecef; Heuristics.ecef_lat_max ] in
    List.map2
      (fun name column -> (name ^ label, column))
      [ "ECEF"; "ECEF-LAT" ]
      (transpose points Sweep.mean_seconds)
  in
  {
    Report.id = "abl-completion";
    title = "Ablation: completion model (after-sends vs overlapped)";
    x_label = "clusters";
    y_label = "mean completion time (s)";
    series = run Schedule.After_sends "/after-sends" @ run Schedule.Overlapped "/overlapped";
    notes = [];
  }

let scatter_orders () =
  let grid = Topology.Grid5000.grid () in
  let root = Topology.Grid5000.root_cluster in
  let sizes = [ 1_000; 10_000; 50_000; 100_000; 250_000; 500_000 ] in
  let strategies =
    [
      ("in-order", fun msg -> ignore msg; Ext.Scatter_sched.in_order grid ~root);
      ("FEF", fun msg -> Ext.Scatter_sched.fastest_edge_first grid ~root ~msg_per_proc:msg);
      ( "Jackson-LDF",
        fun msg -> Ext.Scatter_sched.longest_delivery_first grid ~root ~msg_per_proc:msg );
      ("optimal", fun msg -> Ext.Scatter_sched.optimal_order grid ~root ~msg_per_proc:msg);
    ]
  in
  let series =
    List.map
      (fun (name, order_of) ->
        let points =
          List.map
            (fun msg ->
              let e = Ext.Scatter_sched.evaluate grid ~root ~msg_per_proc:msg (order_of msg) in
              (float_of_int msg, seconds e.Ext.Scatter_sched.makespan))
            sizes
        in
        (name, points))
      strategies
  in
  {
    Report.id = "abl-scatter";
    title = "Future work: scatter send-order heuristics on GRID5000";
    x_label = "bytes per process";
    y_label = "completion time (s)";
    series;
    notes = [ "Jackson-LDF is provably optimal for this model; the curves coincide." ];
  }

let multilevel_gain config =
  let rng = Gridb_util.Rng.create config.Config.seed in
  let spec = Topology.Generators.default_multilevel_spec in
  let grid = Topology.Generators.multilevel ~rng spec in
  let machines = Topology.Machines.expand grid in
  let site_of_cluster = Topology.Generators.site_of_cluster spec in
  let root = 0 in
  let sizes = [ 250_000; 1_000_000; 2_000_000; 4_000_000 ] in
  let execute plan msg =
    seconds (Des.Exec.run ~msg machines plan).Des.Exec.makespan
  in
  let strategies =
    [
      ( "multilevel(ECEF-LA/ECEF)",
        fun msg -> Ext.Multilevel.plan ~site_of_cluster ~root ~msg machines );
      ( "multilevel(flat)",
        fun msg -> Ext.Multilevel.flat_sites_plan ~site_of_cluster ~root ~msg machines );
      ( "single-level ECEF-LA",
        fun msg ->
          let inst = Instance.of_grid ~root ~msg grid in
          Des.Plan.of_cluster_schedule machines (Heuristics.run Heuristics.ecef_la inst) );
      ( "single-level FlatTree",
        fun msg ->
          let inst = Instance.of_grid ~root ~msg grid in
          Des.Plan.of_cluster_schedule machines (Heuristics.run Heuristics.flat_tree inst)
      );
    ]
  in
  let series =
    List.map
      (fun (name, plan_of) ->
        (name, List.map (fun msg -> (float_of_int msg, execute (plan_of msg) msg)) sizes))
      strategies
  in
  {
    Report.id = "abl-multilevel";
    title = "Extension: Karonis-style multilevel broadcast vs single-level";
    x_label = "message size (bytes)";
    y_label = "DES makespan (s)";
    series;
    notes =
      [
        Printf.sprintf "random %d-site x %d-cluster topology, seed %d" spec.Topology.Generators.sites
          spec.Topology.Generators.clusters_per_site config.Config.seed;
      ];
  }

let alltoall_aggregation () =
  let grid = Topology.Grid5000.grid () in
  let sizes = [ 100; 500; 1_000; 5_000; 10_000 ] in
  let per_size f = List.map (fun m -> (float_of_int m, seconds (f m))) sizes in
  let series =
    [
      ( "hierarchical (gap bound)",
        per_size (fun m ->
            (Ext.Alltoall_sched.predict grid ~msg_per_pair:m).Ext.Alltoall_sched.total) );
      ( "hierarchical (blocking sim)",
        per_size (fun m -> Ext.Alltoall_sched.simulate grid ~msg_per_pair:m) );
      ( "hierarchical (nonblocking sim)",
        per_size (fun m ->
            Ext.Alltoall_sched.simulate ~nonblocking:true grid ~msg_per_pair:m) );
      ( "direct machine-level",
        per_size (fun m -> Ext.Alltoall_sched.predict_direct grid ~msg_per_pair:m) );
    ]
  in
  {
    Report.id = "abl-alltoall";
    title = "Future work: alltoall with and without cluster aggregation (GRID5000)";
    x_label = "bytes per process pair";
    y_label = "completion time (s)";
    series;
    notes =
      [ "nonblocking isend saturates the coordinator NIC and approaches the gap bound" ];
  }

let ratio_sweep config ~ns ~iterations_cap ~denominator heuristics ~id ~title ~y_label
    ~notes =
  let iterations = min config.Config.iterations iterations_cap in
  let series =
    List.map (fun (h : Heuristics.t) -> (h.Heuristics.name, ref [])) heuristics
  in
  List.iteri
    (fun point n ->
      let rng = Config.point_rng config ~point in
      let sums = Array.make (List.length heuristics) 0. in
      for _ = 1 to iterations do
        let inst = Instance.random ~rng ~n config.Config.ranges in
        let denom = denominator inst in
        List.iteri
          (fun i h -> sums.(i) <- sums.(i) +. (Heuristics.makespan h inst /. denom))
          heuristics
      done;
      List.iteri
        (fun i (_, acc) ->
          acc := (float_of_int n, sums.(i) /. float_of_int iterations) :: !acc)
        series)
    ns;
  {
    Report.id;
    title;
    x_label = "clusters";
    y_label;
    series = List.map (fun (name, acc) -> (name, List.rev !acc)) series;
    notes;
  }

let optimality_gap config =
  ratio_sweep config ~ns:[ 3; 4; 5; 6; 7 ] ~iterations_cap:400
    ~denominator:Gridb_sched.Optimal.makespan Heuristics.all ~id:"abl-optgap"
    ~title:"Ablation: mean makespan ratio to the brute-force optimum"
    ~y_label:"heuristic / optimal"
    ~notes:
      [ "1.0 means provably optimal; the paper's 'global minimum' only compares"; "heuristics against each other." ]

let bound_gap config =
  ratio_sweep config ~ns ~iterations_cap:1_000
    ~denominator:Gridb_sched.Bounds.combined
    [ Heuristics.flat_tree; Heuristics.ecef; Heuristics.ecef_la; Heuristics.ecef_lat_max ]
    ~id:"abl-boundgap"
    ~title:"Ablation: mean makespan ratio to the analytic lower bound"
    ~y_label:"heuristic / lower bound"
    ~notes:[ "the bound (Bounds.combined) is loose but absolute and scales to any n" ]

let heterogeneity_sensitivity config =
  let n = 30 in
  let iterations = min config.Config.iterations 1_500 in
  let t_maxima_ms = [ 50.; 200.; 500.; 1_000.; 3_000.; 6_000. ] in
  let heuristics = [ Heuristics.fef; Heuristics.ecef; Heuristics.ecef_lat_max; Heuristics.bottom_up ] in
  let series = List.map (fun (h : Heuristics.t) -> (h.Heuristics.name, ref [])) heuristics in
  List.iteri
    (fun point t_max ->
      let rng = Config.point_rng config ~point in
      let ranges =
        { config.Config.ranges with Instance.intra_us = (20_000., t_max *. 1e3) }
      in
      let sums = Array.make (List.length heuristics) 0. in
      for _ = 1 to iterations do
        let inst = Instance.random ~rng ~n ranges in
        List.iteri
          (fun i h -> sums.(i) <- sums.(i) +. Heuristics.makespan h inst)
          heuristics
      done;
      List.iteri
        (fun i (_, acc) -> acc := (t_max, seconds (sums.(i) /. float_of_int iterations)) :: !acc)
        series)
    t_maxima_ms;
  {
    Report.id = "abl-heterogeneity";
    title =
      Printf.sprintf
        "Ablation: sensitivity to intra-cluster time range (T in [20, x] ms, %d clusters)" n;
    x_label = "T upper bound (ms)";
    y_label = "mean completion time (s)";
    series = List.map (fun (name, acc) -> (name, List.rev !acc)) series;
    notes =
      [ "when T is small all heuristics coincide; the grid-aware advantage appears"; "as intra-cluster broadcasts start to dominate the critical path" ];
  }

let root_rotation () =
  let grid = Topology.Grid5000.grid () in
  let msg = 1_000_000 in
  let heuristics = [ Heuristics.flat_tree; Heuristics.ecef; Heuristics.ecef_lat_max ] in
  let series =
    List.map
      (fun (h : Heuristics.t) ->
        ( h.Heuristics.name,
          List.init (Topology.Grid.size grid) (fun root ->
              let inst = Instance.of_grid ~root ~msg grid in
              (float_of_int root, seconds (Heuristics.makespan h inst))) ))
      heuristics
  in
  {
    Report.id = "abl-root";
    title = "Ablation: root sensitivity on GRID5000 (1 MB broadcast)";
    x_label = "root cluster";
    y_label = "predicted completion time (s)";
    series;
    notes =
      [ "the paper: flat tree performance varies when 'applications rotate the"; "role of the broadcast root'; grid-aware schedules barely move" ];
  }

let local_search config =
  let iterations = min config.Config.iterations 150 in
  let small_ns = [ 4; 6; 8; 10 ] in
  let series =
    List.map (fun (h : Heuristics.t) -> (h.Heuristics.name, ref [])) Heuristics.all
  in
  List.iteri
    (fun point n ->
      let rng = Config.point_rng config ~point in
      let sums = Array.make (List.length Heuristics.all) 0. in
      for _ = 1 to iterations do
        let inst = Instance.random ~rng ~n config.Config.ranges in
        List.iteri
          (fun i h ->
            let s = Heuristics.run h inst in
            sums.(i) <- sums.(i) +. Gridb_sched.Refine.improvement_ratio inst s)
          Heuristics.all
      done;
      List.iteri
        (fun i (_, acc) ->
          acc := (float_of_int n, sums.(i) /. float_of_int iterations) :: !acc)
        series)
    small_ns;
  {
    Report.id = "abl-localsearch";
    title = "Ablation: local-search refinement on top of each heuristic";
    x_label = "clusters";
    y_label = "refined / original makespan";
    series = List.map (fun (name, acc) -> (name, List.rev !acc)) series;
    notes =
      [ "1.0 = the heuristic was already locally optimal; lower = the hill climber"; "found a better schedule (Bhat-style iterative improvement)" ];
  }

let metaheuristics config =
  let iterations = min config.Config.iterations 60 in
  let small_ns = [ 4; 6; 8 ] in
  let methods =
    [
      ( "greedy portfolio",
        fun inst _seed ->
          (Gridb_sched.Portfolio.run inst).Gridb_sched.Portfolio.makespan );
      ( "+ hill climbing",
        fun inst _seed ->
          let c = Gridb_sched.Portfolio.run inst in
          Schedule.makespan inst
            (Gridb_sched.Refine.improve ~max_rounds:15 inst
               c.Gridb_sched.Portfolio.schedule) );
      ( "+ annealing",
        fun inst seed ->
          let c = Gridb_sched.Portfolio.run inst in
          Schedule.makespan inst
            (Gridb_sched.Refine.anneal ~seed ~steps:600 inst
               c.Gridb_sched.Portfolio.schedule) );
      ( "+ genetic [18]",
        fun inst seed ->
          let cfg =
            { Gridb_sched.Genetic.default_config with generations = 12; population = 12; seed }
          in
          Schedule.makespan inst (Gridb_sched.Genetic.search ~config:cfg inst) );
      ("optimal", fun inst _seed -> Gridb_sched.Optimal.makespan inst);
    ]
  in
  let series = List.map (fun (name, _) -> (name, ref [])) methods in
  List.iteri
    (fun point n ->
      let rng = Config.point_rng config ~point in
      let sums = Array.make (List.length methods) 0. in
      for it = 1 to iterations do
        let inst = Instance.random ~rng ~n config.Config.ranges in
        List.iteri (fun i (_, f) -> sums.(i) <- sums.(i) +. f inst it) methods
      done;
      List.iteri
        (fun i (_, acc) ->
          acc := (float_of_int n, seconds (sums.(i) /. float_of_int iterations)) :: !acc)
        series)
    small_ns;
  {
    Report.id = "abl-metaheuristics";
    title = "Ablation: metaheuristic improvers over the greedy portfolio";
    x_label = "clusters";
    y_label = "mean makespan (s)";
    series = List.map (fun (name, acc) -> (name, List.rev !acc)) series;
    notes =
      [ "the genetic search follows the paper's reference [18] (Vorakosit &"; "Uthayopas); 'optimal' is the branch-and-bound floor" ];
  }

let application_payoff () =
  let grid = Topology.Grid5000.grid () in
  let machines = Topology.Machines.expand grid in
  let iterations = 10 in
  let compute_us = 20_000. in
  let sizes = [ 100_000; 500_000; 1_000_000; 2_000_000 ] in
  let solver ?bcast msg =
    seconds
      (Gridb_mpi.Apps.run_solver ?bcast ~iterations ~compute_us ~msg machines)
        .Gridb_mpi.Runtime.makespan
  in
  let series =
    [
      ( "binomial broadcast",
        List.map (fun msg -> (float_of_int msg, solver msg)) sizes );
      ( "ECEF-LA hierarchical broadcast",
        List.map
          (fun msg ->
            let inst = Instance.of_grid ~root:0 ~msg grid in
            let plan =
              Des.Plan.of_cluster_schedule machines (Heuristics.run Heuristics.ecef_la inst)
            in
            (float_of_int msg, solver ~bcast:(Gridb_mpi.Apps.plan_bcast plan) msg))
          sizes );
    ]
  in
  {
    Report.id = "abl-application";
    title =
      Printf.sprintf
        "Application payoff: %d-iteration BSP solver on GRID5000 (%.0f ms compute/iter)"
        iterations (compute_us /. 1e3);
    x_label = "broadcast size per iteration (bytes)";
    y_label = "total application time (s)";
    series;
    notes =
      [ "each iteration: bcast from rank 0 + compute + 8-byte allreduce;"; "the broadcast strategy is the only difference between the curves" ];
  }

let hierarchy_vs_flat () =
  let grid = Topology.Grid5000.grid () in
  let machines = Topology.Machines.expand grid in
  let root = Topology.Grid5000.root_cluster in
  let heuristic = Heuristics.ecef_la in
  let hierarchical msg =
    let inst = Instance.of_grid ~root ~msg grid in
    let plan = Des.Plan.of_cluster_schedule machines (Heuristics.run heuristic inst) in
    seconds (Des.Exec.run ~msg machines plan).Des.Exec.makespan
  in
  let node_level msg =
    let inst =
      Instance.of_machines ~root:(Topology.Machines.coordinator machines root) ~msg machines
    in
    let plan = Des.Plan.of_flat_schedule machines (Heuristics.run heuristic inst) in
    seconds (Des.Exec.run ~msg machines plan).Des.Exec.makespan
  in
  let binomial msg =
    let plan =
      Des.Plan.binomial_ranks machines ~root:(Topology.Machines.coordinator machines root)
    in
    seconds (Des.Exec.run ~msg machines plan).Des.Exec.makespan
  in
  let sizes = [ 500_000; 1_000_000; 2_000_000; 4_000_000 ] in
  let series =
    [
      ("hierarchical ECEF-LA (6 clusters)", List.map (fun m -> (float_of_int m, hierarchical m)) sizes);
      ("node-level ECEF-LA (88 nodes)", List.map (fun m -> (float_of_int m, node_level m)) sizes);
      ("grid-unaware binomial", List.map (fun m -> (float_of_int m, binomial m)) sizes);
    ]
  in
  let evals n = Gridb_sched.Overhead.evaluations ~n heuristic.Heuristics.name in
  {
    Report.id = "abl-hierarchy";
    title = "Ablation: hierarchical vs per-process scheduling (Sections 1-2)";
    x_label = "message size (bytes)";
    y_label = "DES makespan (s)";
    series;
    notes =
      [
        Printf.sprintf
          "scheduling work: %.0f candidate evaluations at 6 clusters vs %.0f at 88 nodes (%.0fx)"
          (evals 6) (evals 88)
          (evals 88 /. evals 6);
      ];
  }

let tuned_intra () =
  let grid = Topology.Grid5000.grid () in
  let root = Topology.Grid5000.root_cluster in
  let with_t t_of msg =
    let n = Topology.Grid.size grid in
    let latency =
      Array.init n (fun i ->
          Array.init n (fun j -> if i = j then 0. else Topology.Grid.latency grid i j))
    in
    let gap =
      Array.init n (fun i ->
          Array.init n (fun j -> if i = j then 0. else Topology.Grid.gap grid i j msg))
    in
    Instance.v ~root ~latency ~gap ~intra:(Array.init n (fun c -> t_of c msg))
  in
  let binomial_t c msg =
    let cl = Topology.Grid.cluster grid c in
    Gridb_collectives.Cost.broadcast_time ~params:cl.Topology.Cluster.intra
      ~size:cl.Topology.Cluster.size ~msg ()
  in
  let tuned_t c msg =
    let cl = Topology.Grid.cluster grid c in
    Gridb_collectives.Tuned.broadcast_time ~params:cl.Topology.Cluster.intra
      ~size:cl.Topology.Cluster.size ~msg ()
  in
  let series =
    [
      ( "binomial T",
        List.map
          (fun msg ->
            ( float_of_int msg,
              seconds (Heuristics.makespan Heuristics.ecef_lat_max (with_t binomial_t msg)) ))
          Figures.message_sizes );
      ( "auto-tuned T",
        List.map
          (fun msg ->
            ( float_of_int msg,
              seconds (Heuristics.makespan Heuristics.ecef_lat_max (with_t tuned_t msg)) ))
          Figures.message_sizes );
    ]
  in
  let decisions =
    List.filter_map
      (fun c ->
        let cl = Topology.Grid.cluster grid c in
        if cl.Topology.Cluster.size <= 1 then None
        else begin
          let choice, _ =
            Gridb_collectives.Tuned.best ~params:cl.Topology.Cluster.intra
              ~size:cl.Topology.Cluster.size ~msg:4_000_000 ()
          in
          Some
            (Printf.sprintf "%s: %s" cl.Topology.Cluster.name
               (Gridb_collectives.Tuned.choice_name choice))
        end)
      (List.init (Topology.Grid.size grid) Fun.id)
  in
  {
    Report.id = "abl-tuned-intra";
    title = "Ablation: auto-tuned intra-cluster broadcast feeding T_k (ECEF-LAT)";
    x_label = "message size (bytes)";
    y_label = "predicted completion time (s)";
    series;
    notes = ("tuning decisions at 4 MB: " ^ String.concat "; " decisions) :: [];
  }

let segmented_broadcast () =
  let grid = Topology.Grid5000.grid () in
  let machines = Topology.Machines.expand grid in
  let inst = Instance.of_grid ~root:Topology.Grid5000.root_cluster ~msg:4_000_000 grid in
  let plan =
    Des.Plan.of_cluster_schedule machines (Heuristics.run Heuristics.ecef_la inst)
  in
  let segment_counts = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let series =
    List.map
      (fun msg ->
        ( Printf.sprintf "%d MB" (msg / 1_000_000),
          List.map
            (fun s ->
              ( float_of_int s,
                seconds
                  (Gridb_extensions.Pipeline_bcast.simulate machines plan ~msg ~segments:s)
              ))
            segment_counts ))
      [ 1_000_000; 2_000_000; 4_000_000 ]
  in
  {
    Report.id = "abl-segmented";
    title = "Extension: segmented hierarchical broadcast on the GRID5000 ECEF-LA plan";
    x_label = "segments";
    y_label = "simulated completion time (s)";
    series;
    notes =
      [ "segment k+1 overlaps the relaying of segment k along the same schedule;"; "the sweet spot balances pipelining against per-segment overhead" ];
  }

let all config =
  [
    lookahead_sweep config;
    fef_edge_weight config;
    intra_shape config;
    mixed_strategy config;
    completion_models config;
    optimality_gap config;
    bound_gap config;
    heterogeneity_sensitivity config;
    root_rotation ();
    local_search config;
    metaheuristics config;
    application_payoff ();
    hierarchy_vs_flat ();
    tuned_intra ();
    segmented_broadcast ();
    scatter_orders ();
    multilevel_gain config;
    alltoall_aggregation ();
  ]

(** Shared helpers for the test suites.

    One float-comparison discipline, one seeded-corpus recipe and one
    property-count knob, so every suite states these the same way. *)

val feq : ?eps:float -> float -> float -> bool
(** Relative comparison: [|a - b| <= eps * max 1 |a| |b|] with [eps]
    defaulting to 1e-9 — the discipline used across the analytic tests. *)

val count : int -> int
(** [count base] is the QCheck [~count] to run: [base] multiplied by the
    [QCHECK_COUNT] environment variable when it is set to an integer
    >= 1 (a {e multiplier}, not an absolute — suites mix expensive
    15-case properties with cheap 1000-case ones, and CI scales them all
    together with e.g. [QCHECK_COUNT=10]).  Unset, unparsable or < 1
    values mean 1, i.e. [base] unchanged. *)

val random_instance : ?n:int -> int -> Gridb_sched.Instance.t
(** Table 2 random instance ([n] clusters, default 6) from the given
    seed — equal seeds give equal instances. *)

val random_grid :
  ?cluster_size:int * int -> n:int -> int -> Gridb_topology.Grid.t
(** Seeded {!Gridb_topology.Generators.uniform_random} grid;
    [cluster_size] defaults to the generator's 4-128 range. *)

val corpus :
  ?n_range:int * int ->
  seed:int ->
  count:int ->
  unit ->
  (int * Gridb_sched.Instance.t) list
(** Seeded instance corpus: [count] pairs of (per-instance seed,
    instance), sizes uniform in [n_range] (default 2-12).  The
    per-instance seed is what a failure should report — feeding it back
    to {!random_instance} rebuilds the offending instance. *)

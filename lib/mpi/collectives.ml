module Tree = Gridb_collectives.Tree
module Api = Runtime.Api

(* Parent and ordered children of virtual node [v] in [tree]. *)
let adjacency tree v =
  let found = ref None in
  let rec go (t : Tree.t) parent =
    if t.Tree.node = v then found := Some (parent, List.map (fun c -> c.Tree.node) t.Tree.children);
    List.iter (fun c -> go c (Some t.Tree.node)) t.Tree.children
  in
  go tree None;
  match !found with
  | Some adj -> adj
  | None -> invalid_arg "Collectives: rank not in tree"

let to_virtual ~size ~root rank = ((rank - root) + size) mod size
let to_actual ~size ~root v = (v + root) mod size

let bcast ?(shape = Tree.Binomial) ?(tag = 0) ~rank ~size ~root ~msg () =
  let v = to_virtual ~size ~root rank in
  let parent, children = adjacency (Tree.build shape size) v in
  (match parent with
  | None -> ()
  | Some p -> ignore (Api.recv ~src:(to_actual ~size ~root p) ~tag ()));
  List.iter
    (fun c -> Api.send ~dst:(to_actual ~size ~root c) ~tag ~msg_size:msg ())
    children

let bcast_plan ?(tag = 0) ~rank (plan : Gridb_des.Plan.t) ~msg =
  if rank <> plan.Gridb_des.Plan.root then ignore (Api.recv ~tag ());
  List.iter
    (fun child -> Api.send ~dst:child ~tag ~msg_size:msg ())
    plan.Gridb_des.Plan.children.(rank)

let scatter ~rank ~size ~root ~msg () =
  if rank = root then begin
    for i = 1 to size - 1 do
      let dst = to_actual ~size ~root i in
      Api.send ~dst ~msg_size:msg ~payload:(float_of_int dst) ()
    done;
    float_of_int root
  end
  else begin
    let m = Api.recv ~src:root () in
    m.Runtime.payload
  end

let gather ~rank ~size ~root ~msg ~payload =
  if rank = root then begin
    let received = ref [ (rank, payload) ] in
    for _ = 1 to size - 1 do
      let m = Api.recv () in
      received := (m.Runtime.src, m.Runtime.payload) :: !received
    done;
    List.sort compare !received |> List.map snd
  end
  else begin
    Api.send ~dst:root ~msg_size:msg ~payload ();
    []
  end

let allgather_ring ~rank ~size ~msg () =
  if size > 1 then begin
    let succ = (rank + 1) mod size and pred = ((rank - 1) + size) mod size in
    for _ = 1 to size - 1 do
      Api.send ~dst:succ ~msg_size:msg ();
      ignore (Api.recv ~src:pred ())
    done
  end

let alltoall ~rank ~size ~msg () =
  for step = 1 to size - 1 do
    let dst = (rank + step) mod size in
    let src = ((rank - step) + size) mod size in
    Api.send ~dst ~msg_size:msg ();
    ignore (Api.recv ~src ())
  done

let alltoall_nonblocking ~rank ~size ~msg () =
  let requests =
    List.init (size - 1) (fun i ->
        let dst = (rank + i + 1) mod size in
        Api.isend ~dst ~msg_size:msg ())
  in
  for step = 1 to size - 1 do
    let src = ((rank - step) + size) mod size in
    ignore (Api.recv ~src ())
  done;
  List.iter Api.wait requests

let barrier ~rank ~size () =
  let rec rounds k =
    if k < size then begin
      let dst = (rank + k) mod size and src = ((rank - k) + size) mod size in
      Api.send ~dst ~msg_size:0 ();
      ignore (Api.recv ~src ());
      rounds (2 * k)
    end
  in
  if size > 1 then rounds 1

let reduce ?(tag = 0) ~rank ~size ~root ~msg ~value op =
  let v = to_virtual ~size ~root rank in
  let parent, children = adjacency (Tree.binomial size) v in
  (* Fold the children's partial results in deterministic (listed) order,
     deepest subtree first as laid out by the binomial construction. *)
  let acc =
    List.fold_left
      (fun acc c ->
        let m = Api.recv ~src:(to_actual ~size ~root c) ~tag () in
        op acc m.Runtime.payload)
      value children
  in
  match parent with
  | None -> Some acc
  | Some p ->
      Api.send ~dst:(to_actual ~size ~root p) ~tag ~msg_size:msg ~payload:acc ();
      None

let allreduce ?(tag = 0) ~rank ~size ~msg ~value op =
  match reduce ~tag ~rank ~size ~root:0 ~msg ~value op with
  | Some total ->
      (* Root broadcasts the result; payload rides on the tree messages. *)
      let _, children = adjacency (Tree.binomial size) 0 in
      List.iter (fun c -> Api.send ~dst:c ~tag ~msg_size:msg ~payload:total ()) children;
      total
  | None ->
      let parent, children = adjacency (Tree.binomial size) rank in
      let parent =
        match parent with
        | Some p -> p
        | None -> invalid_arg "Collectives.allreduce: non-root without parent"
      in
      let m = Api.recv ~src:parent ~tag () in
      let total = m.Runtime.payload in
      List.iter (fun c -> Api.send ~dst:c ~tag ~msg_size:msg ~payload:total ()) children;
      total

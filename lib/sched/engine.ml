module Heap = Gridb_util.Score_heap
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type mode = [ `Incremental | `Naive ]

type stats = {
  mutable pair_evaluations : int;
  mutable lookahead_terms : int;
  mutable rescored : int;
}

let create_stats () = { pair_evaluations = 0; lookahead_terms = 0; rescored = 0 }

let finished_msg = "Engine: selection on a finished state"

let eval_score (score : Policy.pair_score) state inst i j =
  match score with
  | Policy.Latency -> inst.Instance.lat_flat.((i * inst.Instance.n) + j)
  | Policy.Transmission -> Instance.send_time inst i j
  | Policy.Arrival -> State.score_arrival state i j

(* --- reference oracle: the paper's full A x B scan --------------------- *)

(* One naive selection round.  Iteration in ascending (i, j) order with a
   strict improvement test makes ties deterministic; the incremental path
   below must (and does) reproduce these picks bit for bit. *)
let naive_round stats (shape : Policy.shape) state =
  let inst = State.instance state in
  match shape with
  | Policy.Sized _ -> assert false (* resolved before dispatch *)
  | Policy.Root_first -> (
      stats.pair_evaluations <- stats.pair_evaluations + 1;
      match State.first_b state with
      | Some j -> (inst.Instance.root, j)
      | None -> invalid_arg finished_msg)
  | Policy.Select_min { score; lookahead } ->
      let b = State.count_b state in
      (* F_j does not depend on the sender: cache it per receiver. *)
      let f =
        match lookahead.Lookahead.shape with
        | Lookahead.Zero -> [||]
        | Lookahead.Fold _ | Lookahead.Dynamic ->
            let f = Array.make inst.Instance.n 0. in
            State.iter_b state (fun j -> f.(j) <- lookahead.Lookahead.eval state ~j);
            stats.lookahead_terms <- stats.lookahead_terms + (b * (b - 1));
            f
      in
      let has_f = Array.length f > 0 in
      let best_i = ref (-1) and best_j = ref (-1) and best_s = ref infinity in
      State.iter_a state (fun i ->
          State.iter_b state (fun j ->
              stats.pair_evaluations <- stats.pair_evaluations + 1;
              let s = eval_score score state inst i j in
              let s = if has_f then s +. f.(j) else s in
              if s < !best_s then begin
                best_s := s;
                best_i := i;
                best_j := j
              end));
      if !best_i < 0 then invalid_arg finished_msg;
      (!best_i, !best_j)
  | Policy.Max_reach ->
      (* For each receiver j, its best (earliest-arrival) sender; then take
         the receiver whose best completion including T_j is largest. *)
      let best_i = ref (-1) and best_j = ref (-1) and best_v = ref neg_infinity in
      State.iter_b state (fun j ->
          let sender = ref (-1) and arrival = ref infinity in
          State.iter_a state (fun i ->
              stats.pair_evaluations <- stats.pair_evaluations + 1;
              let a = State.score_arrival state i j in
              if a < !arrival then begin
                arrival := a;
                sender := i
              end);
          if !sender >= 0 then begin
            let value = !arrival +. inst.Instance.intra.(j) in
            if value > !best_v then begin
              best_v := value;
              best_i := !sender;
              best_j := j
            end
          end);
      if !best_i < 0 then invalid_arg finished_msg;
      (!best_i, !best_j)

let naive_select policy state =
  let inst = State.instance state in
  let resolved = Policy.resolve ~n:inst.Instance.n policy in
  naive_round (create_stats ()) (Policy.shape resolved) state

(* --- incremental selector ---------------------------------------------- *)

(* The key invariant of State.send: after [send ~src ~dst], among A only
   [avail src] changed (so only pairs whose sender is [src] are re-scored,
   lazily, when they surface at a heap top) and only [dst] moved from B to
   A (so [dst] gains one candidate entry per remaining receiver, and fold
   lookahead entries naming [dst] die lazily on pop). *)

(* Per-receiver candidate heaps over senders, keyed by (pair score, id) —
   one bank row per receiver, all rows sharing two flat arrays
   ({!Gridb_util.Score_heap.Bank}).  A receiver's row holds at most one
   entry per member of A, and A never exceeds [n - 1] while the receiver is
   still in B, so [cap = n] can never overflow. *)
let init_senders stats state pair ~n ~root =
  let senders = Heap.Bank.create ~rows:n ~cap:(max 1 n) ~order:Heap.Min in
  State.iter_b state (fun j ->
      stats.pair_evaluations <- stats.pair_evaluations + 1;
      Heap.Bank.push senders j (pair root j) root);
  senders

let push_new_sender stats state senders pair dst =
  State.iter_b state (fun j ->
      stats.pair_evaluations <- stats.pair_evaluations + 1;
      Heap.Bank.push senders j (pair dst j) dst)

let incremental_loop ~obs stats (shape : Policy.shape) state =
  let inst = State.instance state in
  let n = inst.Instance.n in
  let root = inst.Instance.root in
  (* One precomputed flag guards every emission site: with the Null sink the
     hot loops pay a single always-false branch and allocate nothing. *)
  let tracing = Sink.enabled obs in
  let round = ref 0 in
  let note_round ~src ~dst =
    if tracing then begin
      Sink.emit obs (Event.Policy_round { round = !round; src; dst });
      incr round
    end
  in
  let note_rescore ~receiver ~sender =
    if tracing then
      Sink.emit obs (Event.Heap_op { op = Event.Rescore; receiver; sender })
  in
  match shape with
  | Policy.Sized _ -> assert false
  | Policy.Root_first ->
      while not (State.finished state) do
        stats.pair_evaluations <- stats.pair_evaluations + 1;
        match State.first_b state with
        | Some j ->
            State.send state ~src:root ~dst:j;
            note_round ~src:root ~dst:j
        | None -> assert false
      done
  | Policy.Select_min { score; lookahead }
    when (not (Policy.score_depends_on_avail score))
         && (match lookahead.Lookahead.shape with
            | Lookahead.Zero -> true
            | Lookahead.Fold _ | Lookahead.Dynamic -> false) ->
      (* Static fast path: the pair score never changes once evaluated and
         no lookahead term enters the total, so each receiver needs only
         its running best (score, sender) — no heap at all.  The update
         rule [s < best || (s = best && id < best_id)] is exactly the
         heap's (score, id) ordering, and evaluation counts match the heap
         path one for one: one per receiver at init, one per (surviving
         receiver, new sender) per round. *)
      let pair i j = eval_score score state inst i j in
      let best_s = Array.make n infinity in
      let best_i = Array.make n (-1) in
      State.iter_b state (fun j ->
          stats.pair_evaluations <- stats.pair_evaluations + 1;
          best_s.(j) <- pair root j;
          best_i.(j) <- root);
      while not (State.finished state) do
        let best_total = ref infinity and bi = ref (-1) and bj = ref (-1) in
        State.iter_b state (fun j ->
            let s = best_s.(j) and i = best_i.(j) in
            if !bj < 0 || s < !best_total || (s = !best_total && i < !bi)
            then begin
              best_total := s;
              bi := i;
              bj := j
            end);
        let dst = !bj in
        State.send state ~src:!bi ~dst;
        note_round ~src:!bi ~dst;
        State.iter_b state (fun j ->
            stats.pair_evaluations <- stats.pair_evaluations + 1;
            let s = pair dst j in
            if s < best_s.(j) || (s = best_s.(j) && dst < best_i.(j))
            then begin
              best_s.(j) <- s;
              best_i.(j) <- dst
            end)
      done
  | Policy.Select_min { score; lookahead } ->
      let depends = Policy.score_depends_on_avail score in
      let pair i j = eval_score score state inst i j in
      let senders = init_senders stats state pair ~n ~root in
      let la_folds =
        match lookahead.Lookahead.shape with
        | Lookahead.Fold { order; term } ->
            (* Terms are static; only B-membership invalidates an entry, and
               B only shrinks, so dead entries are dropped for good when
               they surface at the top. *)
            let bank =
              Heap.Bank.create ~rows:n ~cap:(max 1 (n - 1))
                ~order:(match order with `Min -> Heap.Min | `Max -> Heap.Max)
            in
            State.iter_b state (fun j ->
                State.iter_b state (fun k ->
                    if k <> j then begin
                      stats.lookahead_terms <- stats.lookahead_terms + 1;
                      Heap.Bank.push bank j (term inst j k) k
                    end));
            Some bank
        | Lookahead.Zero | Lookahead.Dynamic -> None
      in
      let is_dynamic =
        match lookahead.Lookahead.shape with
        | Lookahead.Dynamic -> true
        | Lookahead.Zero | Lookahead.Fold _ -> false
      in
      let f_of j =
        match la_folds with
        | Some bank ->
            let rec clean () =
              if Heap.Bank.is_empty bank j then 0.
              else if State.in_a state (Heap.Bank.top_id bank j) then begin
                if tracing then
                  Sink.emit obs
                    (Event.Heap_op
                       {
                         op = Event.Drop;
                         receiver = j;
                         sender = Heap.Bank.top_id bank j;
                       });
                Heap.Bank.drop_top bank j;
                clean ()
              end
              else Heap.Bank.top_score bank j
            in
            clean ()
        | None ->
            if is_dynamic then begin
              stats.lookahead_terms <-
                stats.lookahead_terms + (State.count_b state - 1);
              lookahead.Lookahead.eval state ~j
            end
            else 0.
      in
      (* Re-score stale entries until the top is fresh: a stale entry
         under-estimates its true score (an avail only ever advances), so
         it surfaces early and sinks once re-scored. *)
      let rec fresh_top j =
        let s = Heap.Bank.top_score senders j and i = Heap.Bank.top_id senders j in
        if not depends then (s, i)
        else begin
          stats.pair_evaluations <- stats.pair_evaluations + 1;
          let cur = pair i j in
          if cur = s then (s, i)
          else begin
            Heap.Bank.drop_top senders j;
            Heap.Bank.push senders j cur i;
            stats.rescored <- stats.rescored + 1;
            note_rescore ~receiver:j ~sender:i;
            fresh_top j
          end
        end
      in
      (* Best (pair + f, sender) for receiver j.  Usually the fresh top
         decides outright (the runner-up's total is provably worse and the
         heap is untouched).  But adding f can round two distinct pair
         scores onto one total, and the naive scan breaks such ties towards
         the smallest sender id — so when the runner-up could tie, drain
         the tied prefix (pops ascend in pair score, hence in total;
         re-score stale entries on the way) and push it back. *)
      let stash = ref [] in
      let best_of j f =
        let s, i = fresh_top j in
        let total = s +. f in
        if Heap.Bank.second_score senders j +. f > total then (total, i)
        else begin
          stash := [];
          let t_min = ref infinity and i_min = ref (-1) in
          let continue = ref true in
          while !continue && not (Heap.Bank.is_empty senders j) do
            let s = Heap.Bank.top_score senders j
            and i = Heap.Bank.top_id senders j in
            let fresh =
              (not depends)
              ||
              begin
                stats.pair_evaluations <- stats.pair_evaluations + 1;
                let cur = pair i j in
                cur = s
                ||
                begin
                  Heap.Bank.drop_top senders j;
                  Heap.Bank.push senders j cur i;
                  stats.rescored <- stats.rescored + 1;
                  note_rescore ~receiver:j ~sender:i;
                  false
                end
              end
            in
            if fresh then begin
              let total = s +. f in
              if !i_min < 0 || total = !t_min then begin
                t_min := total;
                if !i_min < 0 || i < !i_min then i_min := i;
                Heap.Bank.drop_top senders j;
                stash := (s, i) :: !stash
              end
              else continue := false
            end
          done;
          List.iter (fun (s, i) -> Heap.Bank.push senders j s i) !stash;
          (!t_min, !i_min)
        end
      in
      while not (State.finished state) do
        let best_total = ref infinity and best_i = ref (-1) and best_j = ref (-1) in
        State.iter_b state (fun j ->
            let f = f_of j in
            let total, i = best_of j f in
            if
              !best_j < 0 || total < !best_total
              || (total = !best_total && i < !best_i)
            then begin
              best_total := total;
              best_i := i;
              best_j := j
            end);
        let dst = !best_j in
        State.send state ~src:!best_i ~dst;
        note_round ~src:!best_i ~dst;
        Heap.Bank.reset senders dst;
        (match la_folds with
        | Some bank -> Heap.Bank.reset bank dst
        | None -> ());
        push_new_sender stats state senders pair dst
      done
  | Policy.Max_reach ->
      let pair i j = State.score_arrival state i j in
      let senders = init_senders stats state pair ~n ~root in
      (* Within a receiver the heap already orders by (arrival, id); the
         receiver's T_j enters only the across-receiver comparison, so no
         tie drain is needed here. *)
      let best_of j =
        let rec clean () =
          let s = Heap.Bank.top_score senders j
          and i = Heap.Bank.top_id senders j in
          stats.pair_evaluations <- stats.pair_evaluations + 1;
          let cur = pair i j in
          if cur = s then (s, i)
          else begin
            Heap.Bank.drop_top senders j;
            Heap.Bank.push senders j cur i;
            stats.rescored <- stats.rescored + 1;
            note_rescore ~receiver:j ~sender:i;
            clean ()
          end
        in
        clean ()
      in
      while not (State.finished state) do
        let best_v = ref neg_infinity and best_i = ref (-1) and best_j = ref (-1) in
        State.iter_b state (fun j ->
            let s, i = best_of j in
            let value = s +. inst.Instance.intra.(j) in
            if !best_j < 0 || value > !best_v then begin
              best_v := value;
              best_i := i;
              best_j := j
            end);
        let dst = !best_j in
        State.send state ~src:!best_i ~dst;
        note_round ~src:!best_i ~dst;
        Heap.Bank.reset senders dst;
        push_new_sender stats state senders pair dst
      done

let run_stats ?(mode = `Incremental) ?(obs = Sink.null) policy inst =
  let stats = create_stats () in
  let shape = Policy.shape (Policy.resolve ~n:inst.Instance.n policy) in
  let state = State.create inst in
  (match mode with
  | `Naive ->
      let tracing = Sink.enabled obs in
      let round = ref 0 in
      while not (State.finished state) do
        let src, dst = naive_round stats shape state in
        State.send state ~src ~dst;
        if tracing then begin
          Sink.emit obs (Event.Policy_round { round = !round; src; dst });
          incr round
        end
      done
  | `Incremental -> incremental_loop ~obs stats shape state);
  (* The counters stay plain mutable fields (zero-cost for every caller,
     instrumented or not) and are additionally published on the bus when a
     sink is listening. *)
  if Sink.enabled obs then begin
    Sink.emit obs
      (Event.Counter { name = "pair_evaluations"; value = stats.pair_evaluations });
    Sink.emit obs
      (Event.Counter { name = "lookahead_terms"; value = stats.lookahead_terms });
    Sink.emit obs (Event.Counter { name = "rescored"; value = stats.rescored })
  end;
  (State.to_schedule state, stats)

let run ?mode ?obs policy inst = fst (run_stats ?mode ?obs policy inst)

let default_threshold = 10

let strategy ?(threshold = default_threshold) ?(small = Heuristics.ecef_la)
    ?(large = Heuristics.ecef_lat_max) () =
  match (small.Heuristics.policy, large.Heuristics.policy) with
  | Some sp, Some lp ->
      Heuristics.of_policy (Policy.sized ~threshold ~small:sp ~large:lp)
  | _ ->
      (* Ad-hoc components have no descriptor: fall back to closure
         dispatch, keeping the same name scheme. *)
      let name =
        Printf.sprintf "Mixed<%s|%s@%d>" small.Heuristics.name
          large.Heuristics.name threshold
      in
      Heuristics.v ~name (fun state ->
          let n = (State.instance state).Instance.n in
          if n <= threshold then small.Heuristics.select state
          else large.Heuristics.select state)

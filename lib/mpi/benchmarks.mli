(** pLogP parameter acquisition over simMPI — Kielmann's "fast measurement
    of LogP parameters" executed on the simulated wire.

    Where {!Gridb_plogp.Fitting.Measurement} synthesises samples directly
    from a ground-truth parameter set, this module actually runs the
    benchmark programs (ping-pong, saturation trains) as rank programs on
    the {!Runtime}, then fits parameters from the observed completion
    times.  With noise off the recovered parameters must match the
    topology's ground truth exactly — the strongest end-to-end check of the
    whole model stack (topology -> runtime -> timing -> fitting). *)

val ping_pong :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  Gridb_topology.Machines.t ->
  a:int ->
  b:int ->
  msg:int ->
  float
(** Round-trip time of one [msg]-byte ping from rank [a] to [b] and an
    empty pong back, measured on the runtime.
    @raise Invalid_argument if [a = b]. *)

val gap_of_train :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  ?train:int ->
  Gridb_topology.Machines.t ->
  a:int ->
  b:int ->
  msg:int ->
  float
(** Estimated gap g(msg) from a saturation train of [train] (default 16)
    back-to-back sends: sender-side injection time divided by the train
    length. *)

val measure_link :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  ?sizes:int list ->
  Gridb_topology.Machines.t ->
  a:int ->
  b:int ->
  Gridb_plogp.Params.t
(** Full pipeline: saturation trains over [sizes] (default powers of four
    from 1 B to 4 MiB) give a gap table; ping-pongs give the latency
    [(rtt - g(m) - g(0)) / 2]; the result is a recovered parameter set for
    the [a]-[b] link. *)

module Grid = Gridb_topology.Grid
module Cluster = Gridb_topology.Cluster
module Machines = Gridb_topology.Machines
module Tree = Gridb_collectives.Tree
module Cost = Gridb_collectives.Cost
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Heuristics = Gridb_sched.Heuristics
module Plan = Gridb_des.Plan

let representatives ~site_of_cluster ~n_clusters ~root =
  if n_clusters < 1 then invalid_arg "Multilevel.representatives: empty grid";
  let sites = Array.init n_clusters site_of_cluster in
  let n_sites = Array.fold_left max (-1) sites + 1 in
  Array.iter
    (fun s -> if s < 0 || s >= n_sites then invalid_arg "Multilevel: bad site id")
    sites;
  let reps = Array.make n_sites (-1) in
  for c = n_clusters - 1 downto 0 do
    reps.(sites.(c)) <- c
  done;
  Array.iter (fun r -> if r < 0 then invalid_arg "Multilevel: non-dense site ids") reps;
  reps.(sites.(root)) <- root;
  reps

(* Instance over a subset of clusters; [t_of i] supplies the intra time of
   the i-th subset member. *)
let sub_instance grid ~ids ~root_local ~msg ~t_of =
  let k = Array.length ids in
  let latency =
    Array.init k (fun i ->
        Array.init k (fun j -> if i = j then 0. else Grid.latency grid ids.(i) ids.(j)))
  in
  let gap =
    Array.init k (fun i ->
        Array.init k (fun j -> if i = j then 0. else Grid.gap grid ids.(i) ids.(j) msg))
  in
  Instance.v ~root:root_local ~latency ~gap ~intra:(Array.init k t_of)

let cluster_t ~shape grid msg c =
  let cl = Grid.cluster grid c in
  Cost.broadcast_time ~shape ~params:cl.Cluster.intra ~size:cl.Cluster.size ~msg ()

(* Ordered (src, dst) pairs of a schedule, in global ids. *)
let global_sends ids schedule =
  List.map
    (fun e -> (ids.(e.Schedule.src), ids.(e.Schedule.dst)))
    schedule.Schedule.events

let build_plan ~site_heuristic ~cluster_heuristic ~shape ~site_of_cluster ~root ~msg
    machines =
  let grid = Machines.grid machines in
  let n_clusters = Grid.size grid in
  let reps = representatives ~site_of_cluster ~n_clusters ~root in
  let n_sites = Array.length reps in
  let site_members =
    Array.init n_sites (fun s ->
        List.filter (fun c -> site_of_cluster c = s) (List.init n_clusters (fun i -> i)))
  in
  (* Per-site cluster-level schedules, rooted at the representative. *)
  let site_sends = Array.make n_sites [] in
  let site_completion = Array.make n_sites 0. in
  for s = 0 to n_sites - 1 do
    let ids = Array.of_list site_members.(s) in
    let root_local =
      match Array.find_index (fun c -> c = reps.(s)) ids with
      | Some i -> i
      | None -> invalid_arg "Multilevel: representative outside its site"
    in
    let inst =
      sub_instance grid ~ids ~root_local ~msg ~t_of:(fun i ->
          cluster_t ~shape grid msg ids.(i))
    in
    let schedule = Heuristics.run cluster_heuristic inst in
    site_sends.(s) <- global_sends ids schedule;
    site_completion.(s) <- Schedule.makespan inst schedule
  done;
  (* Site-level schedule among representatives, site-aware through T. *)
  let site_ids = Array.copy reps in
  let root_site = site_of_cluster root in
  let site_inst =
    sub_instance grid ~ids:site_ids ~root_local:root_site ~msg ~t_of:(fun s ->
        site_completion.(s))
  in
  let site_schedule = Heuristics.run site_heuristic site_inst in
  let wan_sends = global_sends site_ids site_schedule in
  (* Compose rank-level children lists. *)
  let n_ranks = Machines.count machines in
  let children = Array.make n_ranks [] in
  let append rank kids = children.(rank) <- children.(rank) @ kids in
  let coord c = Machines.coordinator machines c in
  List.iter (fun (src, dst) -> append (coord src) [ coord dst ]) wan_sends;
  Array.iter
    (fun sends -> List.iter (fun (src, dst) -> append (coord src) [ coord dst ]) sends)
    site_sends;
  for c = 0 to n_clusters - 1 do
    let size = (Grid.cluster grid c).Cluster.size in
    let tree = Tree.build shape size in
    let rec lay (node : Tree.t) =
      let rank = Machines.rank_of machines ~cluster:c ~index:node.Tree.node in
      append rank
        (List.map
           (fun (k : Tree.t) -> Machines.rank_of machines ~cluster:c ~index:k.Tree.node)
           node.Tree.children);
      List.iter lay node.Tree.children
    in
    lay tree
  done;
  Plan.v ~root:(coord root) ~children

let plan ?(site_heuristic = Heuristics.ecef_la) ?(cluster_heuristic = Heuristics.ecef)
    ?(shape = Tree.Binomial) ~site_of_cluster ~root ~msg machines =
  build_plan ~site_heuristic ~cluster_heuristic ~shape ~site_of_cluster ~root ~msg machines

let flat_sites_plan ?(shape = Tree.Binomial) ~site_of_cluster ~root ~msg machines =
  build_plan ~site_heuristic:Heuristics.flat_tree ~cluster_heuristic:Heuristics.flat_tree
    ~shape ~site_of_cluster ~root ~msg machines

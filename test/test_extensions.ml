(* Tests for gridb_extensions: scatter ordering (future work), alltoall
   scheduling, and the multilevel broadcast. *)

module Scatter = Gridb_extensions.Scatter_sched
module Alltoall = Gridb_extensions.Alltoall_sched
module Multilevel = Gridb_extensions.Multilevel
module Grid5000 = Gridb_topology.Grid5000
module Generators = Gridb_topology.Generators
module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid
module Heuristics = Gridb_sched.Heuristics
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Rng = Gridb_util.Rng

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

let random_grid ?(n = 6) seed =
  let rng = Rng.create seed in
  Generators.uniform_random ~rng ~n Generators.default_random_spec

(* --- Scatter ---------------------------------------------------------------- *)

let test_scatter_orders_are_permutations () =
  let grid = Grid5000.grid () in
  let root = 0 in
  let expected = [ 1; 2; 3; 4; 5 ] in
  let is_perm o = List.sort compare o = expected in
  Alcotest.(check bool) "in_order" true (is_perm (Scatter.in_order grid ~root));
  Alcotest.(check bool) "fef" true
    (is_perm (Scatter.fastest_edge_first grid ~root ~msg_per_proc:1_000));
  Alcotest.(check bool) "ldf" true
    (is_perm (Scatter.longest_delivery_first grid ~root ~msg_per_proc:1_000));
  Alcotest.(check bool) "optimal" true
    (is_perm (Scatter.optimal_order grid ~root ~msg_per_proc:1_000))

let test_scatter_evaluate_rejects_bad_order () =
  let grid = Grid5000.grid () in
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Scatter_sched.evaluate: order is not a permutation of non-root clusters")
    (fun () -> ignore (Scatter.evaluate grid ~root:0 ~msg_per_proc:100 [ 1; 2; 3 ]))

let jackson_is_optimal =
  QCheck.Test.make ~name:"Jackson LDF matches brute-force optimum" ~count:(Testutil.count 40)
    QCheck.(pair (int_range 3 7) (int_bound 10_000))
    (fun (n, seed) ->
      let grid = random_grid ~n seed in
      let msg_per_proc = 5_000 in
      let ldf =
        Scatter.evaluate grid ~root:0 ~msg_per_proc
          (Scatter.longest_delivery_first grid ~root:0 ~msg_per_proc)
      in
      let opt =
        Scatter.evaluate grid ~root:0 ~msg_per_proc
          (Scatter.optimal_order grid ~root:0 ~msg_per_proc)
      in
      feq ~eps:1e-9 ldf.Scatter.makespan opt.Scatter.makespan)

let scatter_orders_never_beat_optimal =
  QCheck.Test.make ~name:"no order beats the brute-force optimum" ~count:(Testutil.count 30)
    QCheck.(pair (int_range 3 7) (int_bound 10_000))
    (fun (n, seed) ->
      let grid = random_grid ~n seed in
      let msg_per_proc = 20_000 in
      let opt =
        (Scatter.evaluate grid ~root:0 ~msg_per_proc
           (Scatter.optimal_order grid ~root:0 ~msg_per_proc))
          .Scatter.makespan
      in
      List.for_all
        (fun order ->
          (Scatter.evaluate grid ~root:0 ~msg_per_proc order).Scatter.makespan
          >= opt -. 1e-6)
        [
          Scatter.in_order grid ~root:0;
          Scatter.fastest_edge_first grid ~root:0 ~msg_per_proc;
        ])

let test_scatter_completion_structure () =
  let grid = Grid5000.grid () in
  let msg_per_proc = 10_000 in
  let e = Scatter.evaluate grid ~root:0 ~msg_per_proc (Scatter.in_order grid ~root:0) in
  Alcotest.(check int) "every cluster completes" 6 (Array.length e.Scatter.per_cluster);
  (* completions are positive and include the root *)
  Array.iter
    (fun (c, t) ->
      Alcotest.(check bool) (Printf.sprintf "cluster %d positive" c) true (t > 0.))
    e.Scatter.per_cluster;
  Alcotest.(check bool) "makespan is the max" true
    (Array.for_all (fun (_, t) -> t <= e.Scatter.makespan +. 1e-9) e.Scatter.per_cluster)

let test_scatter_brute_force_ceiling () =
  let grid = random_grid ~n:10 1 in
  Alcotest.check_raises "too many"
    (Invalid_argument "Scatter_sched.optimal_order: too many clusters for brute force")
    (fun () -> ignore (Scatter.optimal_order grid ~root:0 ~msg_per_proc:10))

(* --- Alltoall ---------------------------------------------------------------- *)

let test_rotation_rounds_cover_all_pairs () =
  let n = 6 in
  let rounds = Alltoall.rotation_rounds n in
  Alcotest.(check int) "n(n-1) triples" (n * (n - 1)) (List.length rounds);
  let pairs = List.map (fun (_, s, d) -> (s, d)) rounds in
  let sorted = List.sort_uniq compare pairs in
  Alcotest.(check int) "each ordered pair once" (n * (n - 1)) (List.length sorted);
  List.iter (fun (_, s, d) -> Alcotest.(check bool) "no self" true (s <> d)) rounds

let test_alltoall_prediction_components () =
  let grid = Grid5000.grid () in
  let p = Alltoall.predict grid ~msg_per_pair:1_000 in
  Alcotest.(check bool) "gather > 0" true (p.Alltoall.gather > 0.);
  Alcotest.(check bool) "exchange > 0" true (p.Alltoall.exchange > 0.);
  Alcotest.(check bool) "scatter > 0" true (p.Alltoall.scatter > 0.);
  check_feq "total is the sum"
    (p.Alltoall.gather +. p.Alltoall.exchange +. p.Alltoall.scatter)
    p.Alltoall.total

let test_alltoall_scales_with_message () =
  let grid = Grid5000.grid () in
  let small = (Alltoall.predict grid ~msg_per_pair:100).Alltoall.total in
  let large = (Alltoall.predict grid ~msg_per_pair:10_000).Alltoall.total in
  Alcotest.(check bool) "monotone" true (large > small)

let test_alltoall_direct_positive () =
  let grid = Grid5000.grid () in
  Alcotest.(check bool) "positive" true (Alltoall.predict_direct grid ~msg_per_pair:100 > 0.)

let test_alltoall_nonblocking_beats_blocking () =
  let grid = Grid5000.grid () in
  let blocking = Alltoall.simulate grid ~msg_per_pair:1_000 in
  let nonblocking = Alltoall.simulate ~nonblocking:true grid ~msg_per_pair:1_000 in
  let bound = (Alltoall.predict grid ~msg_per_pair:1_000).Alltoall.total in
  Alcotest.(check bool) "nonblocking <= blocking" true (nonblocking <= blocking +. 1e-9);
  Alcotest.(check bool) "nonblocking >= gap bound" true (nonblocking >= bound -. 1e-6);
  (* posting all sends up front should land close to the bound *)
  Alcotest.(check bool) "nonblocking within 1.5x of bound" true
    (nonblocking <= 1.5 *. bound)

let test_alltoall_simulation_close_to_prediction () =
  (* The simMPI exchange is blocking, so it can exceed the gap-bound
     prediction, but must stay within a small factor and never beat it. *)
  let grid = Grid5000.grid () in
  let p = Alltoall.predict grid ~msg_per_pair:1_000 in
  let s = Alltoall.simulate grid ~msg_per_pair:1_000 in
  Alcotest.(check bool) "simulation >= bound" true (s >= p.Alltoall.total -. 1e-6);
  Alcotest.(check bool) "within 4x" true (s <= 4. *. p.Alltoall.total)

(* --- Reduce by duality ---------------------------------------------------------- *)

let reduce_duality_holds =
  QCheck.Test.make ~name:"reversed broadcast has identical makespan" ~count:(Testutil.count 50)
    QCheck.(pair (int_range 2 15) (int_bound 10_000))
    (fun (n, seed) ->
      let grid = random_grid ~n seed in
      let inst = Gridb_sched.Instance.of_grid ~root:0 ~msg:500_000 grid in
      List.for_all
        (fun h ->
          Gridb_extensions.Reduce_sched.makespan_equals_broadcast inst
            (Heuristics.run h inst))
        Heuristics.all)

let test_reduce_events_are_reversed () =
  let grid = Grid5000.grid () in
  let inst = Gridb_sched.Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let b = Heuristics.run Heuristics.ecef inst in
  let r = Gridb_extensions.Reduce_sched.of_broadcast inst b in
  Alcotest.(check int) "same root" 0 r.Gridb_extensions.Reduce_sched.root;
  Alcotest.(check int) "same event count"
    (List.length b.Gridb_sched.Schedule.events)
    (List.length r.Gridb_extensions.Reduce_sched.events);
  (* every broadcast edge appears flipped *)
  let flipped =
    List.map
      (fun e -> (e.Gridb_sched.Schedule.dst, e.Gridb_sched.Schedule.src))
      b.Gridb_sched.Schedule.events
    |> List.sort compare
  in
  let reduced =
    List.map
      (fun e ->
        (e.Gridb_extensions.Reduce_sched.src, e.Gridb_extensions.Reduce_sched.dst))
      r.Gridb_extensions.Reduce_sched.events
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "edges flipped" flipped reduced;
  (* events are non-negative in time and ordered *)
  List.iter
    (fun e ->
      Alcotest.(check bool) "start >= 0" true (e.Gridb_extensions.Reduce_sched.start >= -1e-9))
    r.Gridb_extensions.Reduce_sched.events

let test_reduce_best_heuristic () =
  let grid = Grid5000.grid () in
  let inst = Gridb_sched.Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let h, r = Gridb_extensions.Reduce_sched.best_heuristic inst Heuristics.all in
  Alcotest.(check bool) "best is not the flat tree" true
    (h.Heuristics.name <> "FlatTree");
  let _, flat =
    Gridb_extensions.Reduce_sched.best_heuristic inst [ Heuristics.flat_tree ]
  in
  Alcotest.(check bool) "beats flat-tree reduce" true
    (r.Gridb_extensions.Reduce_sched.makespan
    < flat.Gridb_extensions.Reduce_sched.makespan)

(* --- Segmented hierarchical broadcast ------------------------------------------- *)

module Pb = Gridb_extensions.Pipeline_bcast

let grid5000_plan_and_schedule msg =
  let grid = Grid5000.grid () in
  let machines = Machines.expand grid in
  let inst = Gridb_sched.Instance.of_grid ~root:0 ~msg grid in
  let schedule = Heuristics.run Heuristics.ecef_la inst in
  (grid, machines, schedule, Plan.of_cluster_schedule machines schedule)

let test_pb_segment_size () =
  Alcotest.(check int) "even" 1_000 (Pb.segment_size ~msg:4_000 ~segments:4);
  Alcotest.(check int) "rounds up" 1_001 (Pb.segment_size ~msg:4_001 ~segments:4);
  Alcotest.(check int) "floor 1" 1 (Pb.segment_size ~msg:2 ~segments:10);
  Alcotest.check_raises "segments < 1"
    (Invalid_argument "Pipeline_bcast.segment_size: segments < 1") (fun () ->
      ignore (Pb.segment_size ~msg:10 ~segments:0))

let test_pb_one_segment_matches_plain () =
  let msg = 1_000_000 in
  let _, machines, _, plan = grid5000_plan_and_schedule msg in
  let plain = (Exec.run ~msg machines plan).Exec.makespan in
  let seg1 = Pb.simulate machines plan ~msg ~segments:1 in
  Alcotest.(check (float 1e-6)) "S=1 = plain broadcast" plain seg1

let test_pb_approx_one_segment_is_makespan () =
  let msg = 1_000_000 in
  let grid, _, schedule, _ = grid5000_plan_and_schedule msg in
  let inst = Gridb_sched.Instance.of_grid ~root:0 ~msg grid in
  Alcotest.(check (float 1e-3)) "approx S=1"
    (Gridb_sched.Schedule.makespan inst schedule)
    (Pb.approx grid schedule ~msg ~segments:1)

let test_pb_segmentation_helps_large_messages () =
  let msg = 4_000_000 in
  let _, machines, _, plan = grid5000_plan_and_schedule msg in
  let s1 = Pb.simulate machines plan ~msg ~segments:1 in
  let s8 = Pb.simulate machines plan ~msg ~segments:8 in
  Alcotest.(check bool) "8 segments beat 1" true (s8 < s1);
  let best_s, best_t = Pb.best_segments machines plan ~msg () in
  Alcotest.(check bool) "optimum is segmented" true (best_s > 1);
  Alcotest.(check bool) "optimum <= both" true (best_t <= s8 && best_t <= s1)

let test_pb_approx_tracks_simulation () =
  let msg = 4_000_000 in
  let grid, machines, schedule, plan = grid5000_plan_and_schedule msg in
  List.iter
    (fun segments ->
      let sim = Pb.simulate machines plan ~msg ~segments in
      let app = Pb.approx grid schedule ~msg ~segments in
      Alcotest.(check bool)
        (Printf.sprintf "S=%d approx within 2x of simulation (%.3g vs %.3g)" segments app
           sim)
        true
        (app > 0.4 *. sim && app < 2.5 *. sim))
    [ 1; 4; 16 ]

(* --- DOT export ---------------------------------------------------------------- *)

let test_dot_export () =
  let grid = Grid5000.grid () in
  let dot = Gridb_topology.Dot.to_dot grid in
  Alcotest.(check bool) "graph header" true (String.length dot > 100);
  let contains sub =
    let n = String.length dot and m = String.length sub in
    let rec go i = i + m <= n && (String.sub dot i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has all clusters" true (contains "Toulouse");
  Alcotest.(check bool) "wan styled" true (contains "style=bold");
  Alcotest.(check bool) "edge count" true (contains "c0 -- c1")

(* --- Multilevel ---------------------------------------------------------------- *)

let multilevel_spec =
  { Generators.default_multilevel_spec with sites = 3; clusters_per_site = 3 }

let multilevel_machines seed =
  let rng = Rng.create seed in
  Machines.expand (Generators.multilevel ~rng multilevel_spec)

let test_representatives () =
  let reps =
    Multilevel.representatives
      ~site_of_cluster:(Generators.site_of_cluster multilevel_spec)
      ~n_clusters:9 ~root:4
  in
  Alcotest.(check int) "3 sites" 3 (Array.length reps);
  Alcotest.(check int) "root site rep is root" 4 reps.(1);
  Alcotest.(check int) "site 0 rep" 0 reps.(0);
  Alcotest.(check int) "site 2 rep" 6 reps.(2)

let multilevel_plans_span =
  QCheck.Test.make ~name:"multilevel plans span all ranks" ~count:(Testutil.count 20)
    QCheck.(pair (int_bound 1_000) (int_range 0 8))
    (fun (seed, root) ->
      let machines = multilevel_machines seed in
      let site_of_cluster = Generators.site_of_cluster multilevel_spec in
      let plan =
        Multilevel.plan ~site_of_cluster ~root ~msg:1_000_000 machines
      in
      Plan.size plan = Machines.count machines
      && plan.Plan.root = Machines.coordinator machines root)

let test_multilevel_beats_flat () =
  let machines = multilevel_machines 3 in
  let site_of_cluster = Generators.site_of_cluster multilevel_spec in
  let msg = 2_000_000 in
  let smart = Multilevel.plan ~site_of_cluster ~root:0 ~msg machines in
  let flat = Multilevel.flat_sites_plan ~site_of_cluster ~root:0 ~msg machines in
  let grid = Machines.grid machines in
  let inst = Gridb_sched.Instance.of_grid ~root:0 ~msg grid in
  let single_flat =
    Plan.of_cluster_schedule machines (Heuristics.run Heuristics.flat_tree inst)
  in
  let run p = (Exec.run ~msg machines p).Exec.makespan in
  Alcotest.(check bool) "heuristic multilevel <= flat multilevel" true
    (run smart <= run flat +. 1e-6);
  Alcotest.(check bool) "multilevel beats single-level flat tree" true
    (run smart < run single_flat)

let test_multilevel_exec_consistency () =
  (* Executing the same plan twice without noise is deterministic. *)
  let machines = multilevel_machines 4 in
  let site_of_cluster = Generators.site_of_cluster multilevel_spec in
  let plan = Multilevel.plan ~site_of_cluster ~root:2 ~msg:500_000 machines in
  let a = (Exec.run ~msg:500_000 machines plan).Exec.makespan in
  let b = (Exec.run ~msg:500_000 machines plan).Exec.makespan in
  check_feq "deterministic" a b

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "extensions"
    [
      ( "scatter",
        [
          quick "orders are permutations" test_scatter_orders_are_permutations;
          quick "rejects bad order" test_scatter_evaluate_rejects_bad_order;
          QCheck_alcotest.to_alcotest jackson_is_optimal;
          QCheck_alcotest.to_alcotest scatter_orders_never_beat_optimal;
          quick "completion structure" test_scatter_completion_structure;
          quick "brute force ceiling" test_scatter_brute_force_ceiling;
        ] );
      ( "alltoall",
        [
          quick "rotation covers pairs" test_rotation_rounds_cover_all_pairs;
          quick "prediction components" test_alltoall_prediction_components;
          quick "scales with message" test_alltoall_scales_with_message;
          quick "direct positive" test_alltoall_direct_positive;
          quick "simulation close to prediction" test_alltoall_simulation_close_to_prediction;
          quick "nonblocking beats blocking" test_alltoall_nonblocking_beats_blocking;
        ] );
      ( "reduce",
        [
          QCheck_alcotest.to_alcotest reduce_duality_holds;
          quick "events reversed" test_reduce_events_are_reversed;
          quick "best heuristic" test_reduce_best_heuristic;
        ] );
      ( "pipeline-bcast",
        [
          quick "segment size" test_pb_segment_size;
          quick "one segment = plain" test_pb_one_segment_matches_plain;
          quick "approx S=1" test_pb_approx_one_segment_is_makespan;
          quick "segmentation helps" test_pb_segmentation_helps_large_messages;
          quick "approx tracks simulation" test_pb_approx_tracks_simulation;
        ] );
      ("dot", [ quick "export" test_dot_export ]);
      ( "multilevel",
        [
          quick "representatives" test_representatives;
          QCheck_alcotest.to_alcotest multilevel_plans_span;
          quick "beats flat" test_multilevel_beats_flat;
          quick "deterministic execution" test_multilevel_exec_consistency;
        ] );
    ]

(** Shared machinery for the simulation figures (1-4): sweep the number of
    clusters, drawing [Config.iterations] random Table 2 instances per
    point and scoring a set of heuristics on the {e same} draws. *)

type point = {
  n : int;  (** number of clusters *)
  outcomes : Gridb_sched.Hit_rate.outcome list;  (** one per heuristic, in order *)
}

val run :
  Config.t -> ns:int list -> Gridb_sched.Heuristics.t list -> point list
(** Point [i] uses the RNG stream [Config.point_rng ~point:i], so the same
    config yields identical draws regardless of which heuristics are
    scored — Figures 2, 3 and 4 therefore see the same instances. *)

val mean_seconds : point -> float list
(** Mean makespans of the point's outcomes, converted to seconds (the
    paper's y axis). *)

val hits : point -> float list
(** Hit counts of the point's outcomes (Figure 4's y axis). *)

val max_stderr_seconds : point list -> float
(** Largest standard error of any plotted mean, in seconds — quoted in the
    figures' notes so readers can judge whether curve gaps are signal. *)

type t = { name : string; start : float }

let now_us () = Sys.time () *. 1e6

let start sink name =
  let start = now_us () in
  if Sink.enabled sink then Sink.emit sink (Event.Span_start { name; time = start });
  { name; start }

let finish sink t =
  if Sink.enabled sink then
    Sink.emit sink (Event.Span_end { name = t.name; time = now_us () })

let wrap sink name f =
  let span = start sink name in
  Fun.protect ~finally:(fun () -> finish sink span) f

(* Conformance harness tests: every invariant in Gridb_check exercised with
   at least one positive and one negative case, the scenario codec
   round-tripped, and the fuzzer demonstrated end to end on a deliberately
   planted violation (caught, shrunk to the minimal scenario, reproducer
   confirmed by replay). *)

module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Engine = Gridb_sched.Engine
module Policy = Gridb_sched.Policy
module Machines = Gridb_topology.Machines
module Event = Gridb_obs.Event
module Sink = Gridb_obs.Sink
module Rng = Gridb_util.Rng
module I = Gridb_check.Invariant
module M = Gridb_check.Metamorphic
module Scenario = Gridb_check.Scenario
module Fuzz = Gridb_check.Fuzz
module Run = Gridb_check.Run
module Report = Gridb_check.Report

let ok name = function
  | Ok () -> ()
  | Error v -> Alcotest.failf "%s: unexpected violation %a" name I.pp_violation v

let violates name invariant = function
  | Ok () -> Alcotest.failf "%s: expected a %S violation, got Ok" name invariant
  | Error v ->
      Alcotest.(check string) (name ^ ": invariant name") invariant v.I.invariant

(* --- a tiny hand-built instance and schedule we can corrupt surgically --- *)

(* 3 clusters, all links L = 10, g = 100, T = 0; valid chain schedule
   0 -> 1 at 0, then 0 -> 2 at 100 (the root's NIC frees at 100). *)
let tiny_inst =
  Instance.v ~root:0
    ~latency:[| [| 0.; 10.; 10. |]; [| 10.; 0.; 10. |]; [| 10.; 10.; 0. |] |]
    ~gap:[| [| 0.; 100.; 100. |]; [| 100.; 0.; 100. |]; [| 100.; 100.; 0. |] |]
    ~intra:[| 0.; 0.; 0. |]

let ev ~round ~src ~dst ~start =
  { Schedule.round; src; dst; start; sender_free = start +. 100.; arrival = start +. 110. }

let tiny_sched =
  {
    Schedule.root = 0;
    n = 3;
    events = [ ev ~round:0 ~src:0 ~dst:1 ~start:0.; ev ~round:1 ~src:0 ~dst:2 ~start:100. ];
    ready = [| 0.; 110.; 210. |];
    busy_until = [| 200.; 110.; 210. |];
  }

let schedule_positive () =
  ok "tiny" (I.check_schedule tiny_inst tiny_sched);
  (* Every engine-built schedule on a random instance passes everything. *)
  List.iter
    (fun (seed, inst) ->
      List.iter
        (fun p ->
          ok (Printf.sprintf "%s on seed %d" (Policy.name p) seed)
            (I.check_schedule inst (Engine.run p inst)))
        Policy.all)
    (Testutil.corpus ~n_range:(2, 9) ~seed:31 ~count:5 ())

let receive_once_negative () =
  (* Cluster 1 served twice, cluster 2 never. *)
  let s =
    { tiny_sched with
      Schedule.events =
        [ ev ~round:0 ~src:0 ~dst:1 ~start:0.; ev ~round:1 ~src:0 ~dst:1 ~start:100. ] }
  in
  violates "double receive" "receive-once" (I.receive_once tiny_inst s);
  violates "out of range" "receive-once"
    (I.receive_once tiny_inst
       { tiny_sched with Schedule.events = [ ev ~round:0 ~src:0 ~dst:7 ~start:0. ] })

let causality_negative () =
  (* Relay 1 -> 2 fires at 50, before 1's own arrival at 110. *)
  let s =
    { tiny_sched with
      Schedule.events =
        [ ev ~round:0 ~src:0 ~dst:1 ~start:0.; ev ~round:1 ~src:1 ~dst:2 ~start:50. ] }
  in
  violates "send before arrival" "causality" (I.causality tiny_inst s);
  violates "sender never receives" "causality"
    (I.causality tiny_inst
       { tiny_sched with Schedule.events = [ ev ~round:0 ~src:2 ~dst:1 ~start:0. ] })

let nic_serialization_negative () =
  (* Root starts a second send at 50 while its NIC is busy until 100. *)
  let s =
    { tiny_sched with
      Schedule.events =
        [ ev ~round:0 ~src:0 ~dst:1 ~start:0.; ev ~round:1 ~src:0 ~dst:2 ~start:50. ] }
  in
  violates "overlapping gaps" "nic-serialization" (I.nic_serialization tiny_inst s);
  (* Recorded sender_free contradicts start + gap. *)
  let e = ev ~round:0 ~src:0 ~dst:1 ~start:0. in
  let s =
    { tiny_sched with Schedule.events = [ { e with Schedule.sender_free = 42. } ] }
  in
  violates "sender_free mismatch" "nic-serialization" (I.nic_serialization tiny_inst s)

let ab_discipline_negative () =
  violates "sender still in B" "ab-discipline"
    (I.ab_discipline tiny_inst
       { tiny_sched with Schedule.events = [ ev ~round:0 ~src:1 ~dst:2 ~start:0. ] });
  violates "round numbering" "ab-discipline"
    (I.ab_discipline tiny_inst
       { tiny_sched with Schedule.events = [ ev ~round:3 ~src:0 ~dst:1 ~start:0. ] });
  violates "B not empty" "ab-discipline"
    (I.ab_discipline tiny_inst
       { tiny_sched with Schedule.events = [ ev ~round:0 ~src:0 ~dst:1 ~start:0. ] })

let makespan_recomputation_negative () =
  (* Tamper the second event's arrival: recomputation from the matrices
     disagrees with the recorded field. *)
  let s =
    { tiny_sched with
      Schedule.events =
        [ ev ~round:0 ~src:0 ~dst:1 ~start:0.;
          { (ev ~round:1 ~src:0 ~dst:2 ~start:100.) with Schedule.arrival = 999. } ] }
  in
  violates "tampered arrival" "makespan-recomputation"
    (I.makespan_recomputation tiny_inst s);
  violates "tampered ready" "makespan-recomputation"
    (I.makespan_recomputation tiny_inst
       { tiny_sched with Schedule.ready = [| 0.; 110.; 205. |] })

let replay_helpers () =
  (match I.replay tiny_inst [ (0, 1); (0, 2) ] with
  | Error e -> Alcotest.failf "replay: %s" e
  | Ok (ready, busy) ->
      Alcotest.(check (array (float 1e-9))) "ready" [| 0.; 110.; 210. |] ready;
      Alcotest.(check (array (float 1e-9))) "busy" [| 200.; 0.; 0. |] busy);
  Alcotest.(check (float 1e-9))
    "replay makespan" 210.
    (match I.replay_makespan tiny_inst [ (0, 1); (0, 2) ] with
    | Ok m -> m
    | Error e -> Alcotest.failf "replay_makespan: %s" e);
  (match I.replay tiny_inst [ (1, 2) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay accepted a sender without the message");
  match I.replay tiny_inst [ (0, 1); (0, 1) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay accepted a double receive"

let cross_check_cases () =
  ok "equal" (I.cross_check ~invariant:"x" ~expected:1.0 ~got:(1.0 +. 1e-12));
  violates "unequal" "x" (I.cross_check ~invariant:"x" ~expected:1.0 ~got:2.0)

(* --- stream invariants -------------------------------------------------- *)

let ss ~src ~dst ~time =
  Event.Send_start { src; dst; time; msg = 1000; intra = false; try_no = 0 }

let se ~src ~dst ~time ~arrival = Event.Send_end { src; dst; time; arrival }
let arr ~src ~dst ~time = Event.Arrival { src; dst; time }

(* A well-formed miniature stream: root 0 self-delivers, sends to 1. *)
let good_stream =
  [
    arr ~src:0 ~dst:0 ~time:0.;
    ss ~src:0 ~dst:1 ~time:0.;
    se ~src:0 ~dst:1 ~time:100. ~arrival:110.;
    arr ~src:0 ~dst:1 ~time:110.;
  ]

let stream_synthetic () =
  ok "exactly once" (I.stream_receive_exactly_once ~n:2 good_stream);
  ok "at most once" (I.stream_receive_at_most_once ~n:2 good_stream);
  ok "causality" (I.stream_causality ~n:2 good_stream);
  ok "nic" (I.stream_nic_serialization ~n:2 good_stream);
  ok "no spontaneous" (I.stream_no_spontaneous_delivery ~root:0 good_stream);
  ok "check_stream" (I.check_stream ~n:2 ~root:0 good_stream);
  (* partial delivery passes at-most-once but not exactly-once *)
  let partial = [ arr ~src:0 ~dst:0 ~time:0. ] in
  ok "partial at most once" (I.stream_receive_at_most_once ~n:3 partial);
  violates "partial exactly once" "stream-receive-once"
    (I.stream_receive_exactly_once ~n:3 partial);
  violates "double delivery" "stream-receive-at-most-once"
    (I.stream_receive_at_most_once ~n:3
       [ arr ~src:0 ~dst:1 ~time:1.; arr ~src:2 ~dst:1 ~time:2. ]);
  violates "send without message" "stream-causality"
    (I.stream_causality ~n:3 [ arr ~src:0 ~dst:0 ~time:0.; ss ~src:1 ~dst:2 ~time:5. ]);
  violates "send before own arrival" "stream-causality"
    (I.stream_causality ~n:3
       [ arr ~src:0 ~dst:0 ~time:0.; arr ~src:0 ~dst:1 ~time:10.; ss ~src:1 ~dst:2 ~time:5. ]);
  violates "overlapping injections" "stream-nic-serialization"
    (I.stream_nic_serialization ~n:3
       [
         ss ~src:0 ~dst:1 ~time:0.;
         se ~src:0 ~dst:1 ~time:100. ~arrival:110.;
         ss ~src:0 ~dst:2 ~time:50.;
         se ~src:0 ~dst:2 ~time:150. ~arrival:160.;
       ]);
  violates "unexplained arrival" "stream-no-spontaneous-delivery"
    (I.stream_no_spontaneous_delivery ~root:0 [ arr ~src:0 ~dst:1 ~time:42. ])

(* Stream invariants against a real executed run, gap conformance included;
   the negative case tampers one Send_end of the genuine stream. *)
let stream_real_run () =
  let grid = Testutil.random_grid ~cluster_size:(1, 4) ~n:4 5 in
  let machines = Machines.expand grid in
  let msg = 65_536 in
  let inst = Instance.of_grid ~root:0 ~msg grid in
  let s = Engine.run Policy.ecef inst in
  let plan = Gridb_des.Plan.of_cluster_schedule machines s in
  let sink = Sink.memory () in
  let _ = Gridb_des.Exec.run ~msg ~obs:sink machines plan in
  let events = Sink.events sink in
  let n = Machines.count machines in
  ok "real stream" (I.check_stream ~n ~root:plan.Gridb_des.Plan.root events);
  ok "real gap conformance" (I.stream_gap_conformance ~machines ~msg events);
  let tampered = ref false in
  let events' =
    List.map
      (function
        | Event.Send_end { src; dst; time; arrival } when not !tampered ->
            tampered := true;
            Event.Send_end { src; dst; time = time +. 1.; arrival }
        | e -> e)
      events
  in
  Alcotest.(check bool) "found a Send_end to tamper" true !tampered;
  violates "tampered gap" "stream-gap-conformance"
    (I.stream_gap_conformance ~machines ~msg events')

(* --- metamorphic laws --------------------------------------------------- *)

let metamorphic_positive () =
  let inst = Testutil.random_instance ~n:7 12 in
  let perm = Rng.permutation (Rng.create 99) 7 in
  List.iter
    (fun p ->
      ok (Policy.name p ^ " scaling") (M.scaling p inst);
      ok (Policy.name p ^ " scaling x0.5") (M.scaling ~c:0.5 p inst);
      ok (Policy.name p ^ " relabeling") (M.relabeling ~perm p inst))
    Policy.all;
  let grid = Testutil.random_grid ~cluster_size:(1, 4) ~n:5 21 in
  let small = Instance.of_grid ~root:0 ~msg:100_000 grid in
  let large = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  ok "size monotonicity" (M.replay_size_monotonicity Policy.ecef ~small ~large);
  let machines = Machines.expand grid in
  let plan =
    Gridb_des.Plan.of_cluster_schedule machines (Engine.run Policy.ecef small)
  in
  ok "transport equivalence" (M.transport_equivalence ~msg:100_000 machines plan)

let metamorphic_negative () =
  (* Swapping small and large breaks the dominance precondition. *)
  let grid = Testutil.random_grid ~cluster_size:(1, 4) ~n:5 21 in
  let small = Instance.of_grid ~root:0 ~msg:100_000 grid in
  let large = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  violates "swapped dominance" "size-dominance"
    (M.replay_size_monotonicity Policy.ecef ~small:large ~large:small);
  (* scale_instance really scales. *)
  let inst = Testutil.random_instance ~n:4 3 in
  let scaled = M.scale_instance 2. inst in
  Alcotest.(check (float 1e-9))
    "scaled gap" (2. *. inst.Instance.gap.(0).(1)) scaled.Instance.gap.(0).(1)

(* --- scenario codec ----------------------------------------------------- *)

let scenario_round_trip =
  QCheck.Test.make ~name:"scenario JSON round-trips (parse o print = id)"
    ~count:(Testutil.count 300)
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let sc = Scenario.generate (Rng.create seed) in
      Scenario.of_json (Scenario.to_json sc) = Ok sc
      (* unknown extra fields are tolerated and ignored *)
      && Scenario.of_json
           (Scenario.to_json ~extra:[ ("violation", "x\"y\\z"); ("detail", "d") ] sc)
         = Ok sc)

let scenario_codec_errors () =
  let sc = Scenario.generate (Rng.create 4) in
  let line = Scenario.to_json ~extra:[ ("violation", "causality") ] sc in
  Alcotest.(check (option string))
    "string_field" (Some "causality")
    (Scenario.string_field ~key:"violation" line);
  (match Scenario.of_json "{\"format\":\"bogus/9\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a wrong format tag");
  (match Scenario.of_json "{not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage");
  match Scenario.of_json (Scenario.to_json { sc with Scenario.root = sc.Scenario.n + 3 }) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted an out-of-range root"

let minimal_scenario =
  {
    Scenario.seed = 0;
    n = 2;
    msg = 10_000;
    root = 0;
    policy = "FlatTree";
    transport = "fixed";
    faults = "none";
    dynamics = "none";
  }

let scenario_shrink_candidates () =
  let sc = Scenario.generate (Rng.create 8) in
  List.iter
    (fun c ->
      Alcotest.(check bool) "candidate differs" false (Scenario.equal c sc);
      Alcotest.(check bool) "candidate keeps n >= 2" true (c.Scenario.n >= 2))
    (Scenario.shrink_candidates sc);
  Alcotest.(check int)
    "minimal scenario has no candidates" 0
    (List.length (Scenario.shrink_candidates minimal_scenario))

(* --- pipeline property and fuzzer --------------------------------------- *)

let run_check_cases () =
  ok "benign scenario" (Run.check minimal_scenario);
  ok "faulty scenario"
    (Run.check { minimal_scenario with Scenario.faults = "loss=0.2"; transport = "adaptive" });
  violates "unknown policy" "scenario"
    (Run.check { minimal_scenario with Scenario.policy = "NoSuchPolicy" });
  violates "unknown transport" "scenario"
    (Run.check { minimal_scenario with Scenario.transport = "carrier-pigeon" });
  violates "bad fault spec" "scenario"
    (Run.check { minimal_scenario with Scenario.faults = "loss=2.5" })

(* The planted bug: a "pipeline" that drops the last transmission of every
   schedule it builds, so some cluster never receives the message. *)
let planted_property (sc : Scenario.t) =
  match Scenario.policy sc with
  | Error detail -> Error { I.invariant = "scenario"; detail }
  | Ok policy ->
      let inst = Instance.of_grid ~root:sc.Scenario.root ~msg:sc.Scenario.msg (Scenario.grid sc) in
      let s = Engine.run policy inst in
      let last = List.length s.Schedule.events - 1 in
      let mutated =
        { s with Schedule.events = List.filteri (fun i _ -> i < last) s.Schedule.events }
      in
      I.check_schedule inst mutated

let fuzz_catches_planted_violation () =
  match Fuzz.run ~property:planted_property ~seed:7 ~count:50 () with
  | Ok _ -> Alcotest.fail "fuzzer missed the planted violation"
  | Error f ->
      Alcotest.(check string)
        "caught as receive-once" "receive-once" f.Fuzz.violation.I.invariant;
      Alcotest.(check bool) "found immediately" true (f.Fuzz.tested = 0);
      Alcotest.(check bool) "shrinking adopted steps" true (f.Fuzz.shrink_steps >= 1);
      (* The planted bug fires on every scenario, so greedy shrinking must
         reach the global minimum. *)
      Alcotest.(check bool)
        "shrunk to the minimal scenario" true
        (Scenario.equal f.Fuzz.scenario minimal_scenario);
      (* Reproducer round trip: confirmed under the buggy pipeline, fixed
         under the real one. *)
      let path = Filename.temp_file "gridsched-counterexample" ".json" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Fuzz.write_reproducer path f;
          (match Fuzz.replay ~property:planted_property path with
          | Ok (Fuzz.Confirmed v) ->
              Alcotest.(check string) "replay confirms" "receive-once" v.I.invariant
          | other ->
              Alcotest.failf "replay did not confirm: %s"
                (match other with
                | Ok o -> Report.render_replay path o
                | Error e -> e));
          match Fuzz.replay path with
          | Ok Fuzz.Fixed -> ()
          | Ok o -> Alcotest.failf "real pipeline should pass: %s" (Report.render_replay path o)
          | Error e -> Alcotest.failf "replay failed: %s" e)

let fuzz_shrink_is_local_minimum () =
  match Fuzz.run ~property:planted_property ~seed:3 ~count:1 () with
  | Ok _ -> Alcotest.fail "fuzzer missed the planted violation"
  | Error f ->
      List.iter
        (fun c ->
          match planted_property c with
          | Ok () -> ()
          | Error _ ->
              Alcotest.failf "shrink result is not minimal: candidate %s still fails"
                (Scenario.to_json c))
        (Scenario.shrink_candidates f.Fuzz.scenario)

let fuzz_real_pipeline_smoke () =
  match Fuzz.run ~seed:11 ~count:(Testutil.count 30) () with
  | Ok n -> Alcotest.(check bool) "ran all scenarios" true (n >= 30)
  | Error f ->
      Alcotest.failf "real pipeline failed: %s" (Report.render_failure f)

(* --jobs must be an implementation detail: the parallel battery generates
   the identical scenario sequence and reports the sequential scan's first
   failure, so both the passing and the failing outcome are equal across
   worker counts — including the reproducer the user would be handed. *)
let fuzz_jobs_invariant_pass () =
  match (Fuzz.run ~seed:11 ~count:30 (), Fuzz.run ~jobs:4 ~seed:11 ~count:30 ()) with
  | Ok a, Ok b -> Alcotest.(check int) "same count" a b
  | _ -> Alcotest.fail "battery should pass under both jobs settings"

let fuzz_jobs_invariant_fail () =
  match
    ( Fuzz.run ~property:planted_property ~seed:7 ~count:50 (),
      Fuzz.run ~property:planted_property ~jobs:4 ~seed:7 ~count:50 () )
  with
  | Error a, Error b ->
      Alcotest.(check int) "same tested" a.Fuzz.tested b.Fuzz.tested;
      Alcotest.(check string)
        "same invariant" a.Fuzz.violation.I.invariant b.Fuzz.violation.I.invariant;
      Alcotest.(check string)
        "same violation detail" a.Fuzz.violation.I.detail b.Fuzz.violation.I.detail;
      Alcotest.(check bool)
        "same shrunk scenario" true
        (Scenario.equal a.Fuzz.scenario b.Fuzz.scenario);
      Alcotest.(check int) "same shrink steps" a.Fuzz.shrink_steps b.Fuzz.shrink_steps
  | _ -> Alcotest.fail "planted violation should surface under both jobs settings"

let report_catalogue () =
  let cat = Report.catalogue () in
  let contains needle =
    let nl = String.length needle and cl = String.length cat in
    let rec at i = i + nl <= cl && (String.sub cat i nl = needle || at (i + 1)) in
    Alcotest.(check bool) ("catalogue lists " ^ needle) true (at 0)
  in
  List.iter contains
    (I.schedule_invariant_names @ I.stream_invariant_names @ M.metamorphic_names
   @ Run.run_invariant_names)

let () =
  Alcotest.run "check"
    [
      ( "schedule invariants",
        [
          Alcotest.test_case "all pass on valid schedules" `Quick schedule_positive;
          Alcotest.test_case "receive-once violations" `Quick receive_once_negative;
          Alcotest.test_case "causality violations" `Quick causality_negative;
          Alcotest.test_case "nic-serialization violations" `Quick nic_serialization_negative;
          Alcotest.test_case "ab-discipline violations" `Quick ab_discipline_negative;
          Alcotest.test_case "makespan-recomputation violations" `Quick
            makespan_recomputation_negative;
          Alcotest.test_case "replay helpers" `Quick replay_helpers;
          Alcotest.test_case "cross_check" `Quick cross_check_cases;
        ] );
      ( "stream invariants",
        [
          Alcotest.test_case "synthetic streams" `Quick stream_synthetic;
          Alcotest.test_case "real run, tampered and not" `Quick stream_real_run;
        ] );
      ( "metamorphic",
        [
          Alcotest.test_case "laws hold on the pipeline" `Quick metamorphic_positive;
          Alcotest.test_case "dominance violations detected" `Quick metamorphic_negative;
        ] );
      ( "scenario",
        [
          QCheck_alcotest.to_alcotest scenario_round_trip;
          Alcotest.test_case "codec errors and string_field" `Quick scenario_codec_errors;
          Alcotest.test_case "shrink candidates" `Quick scenario_shrink_candidates;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "Run.check over scenarios" `Quick run_check_cases;
          Alcotest.test_case "planted violation: caught, shrunk, replayed" `Quick
            fuzz_catches_planted_violation;
          Alcotest.test_case "shrink reaches a local minimum" `Quick
            fuzz_shrink_is_local_minimum;
          Alcotest.test_case "real pipeline fuzz smoke" `Quick fuzz_real_pipeline_smoke;
          Alcotest.test_case "jobs-invariant on passing battery" `Quick
            fuzz_jobs_invariant_pass;
          Alcotest.test_case "jobs-invariant on planted failure" `Quick
            fuzz_jobs_invariant_fail;
          Alcotest.test_case "report catalogue" `Quick report_catalogue;
        ] );
    ]

(** Genetic-algorithm schedule search, after Vorakosit & Uthayopas
    ("Generating an efficient dynamic multicast tree under grid
    environment", Euro PVM/MPI 2003 — the paper's reference [18]).

    The related work optimises grid multicast trees with a GA; this module
    applies the same idea to the paper's schedule space.  A chromosome is a
    pick sequence (see {!Refine}); crossover keeps a parent-A prefix and
    completes it with parent B's remaining receivers (senders re-validated
    greedily); mutation applies one random swap / re-parent move.  Seeding
    the population with the heuristics' schedules makes the GA an
    {e anytime improver}: its best individual is never worse than the best
    seed. *)

type config = {
  population : int;  (** individuals kept per generation (>= 2) *)
  generations : int;
  mutation_probability : float;  (** per offspring, in [0, 1] *)
  seed : int;  (** RNG seed *)
}

val default_config : config
(** population 24, 40 generations, mutation 0.3, seed 0. *)

val search :
  ?config:config ->
  ?model:Schedule.completion_model ->
  ?seeds:Schedule.t list ->
  Instance.t ->
  Schedule.t
(** Run the GA.  [seeds] (default: every heuristic of {!Heuristics.all}
    applied to the instance) initialises the population; random valid
    completions fill the rest.  Returns the best valid schedule found —
    never worse than the best seed under [model].
    @raise Invalid_argument on a malformed config or an invalid seed
    schedule. *)

val random_schedule : rng:Gridb_util.Rng.t -> Instance.t -> Schedule.t
(** A uniformly random valid pick sequence (random sender from [A], random
    receiver from [B] at each step) — the GA's filler individuals, also a
    useful chaos baseline for tests. *)

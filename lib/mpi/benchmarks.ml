module Machines = Gridb_topology.Machines

let check_pair machines a b =
  let n = Machines.count machines in
  if a = b then invalid_arg "Benchmarks: a = b";
  if a < 0 || a >= n || b < 0 || b >= n then invalid_arg "Benchmarks: rank out of range"

let ping_pong ?noise ?seed machines ~a ~b ~msg =
  check_pair machines a b;
  let rtt = ref nan in
  let result =
    Runtime.run_exn ?noise ?seed machines (fun ~rank ~size:_ ->
        if rank = a then begin
          let t0 = Runtime.Api.time () in
          Runtime.Api.send ~dst:b ~msg_size:msg ();
          ignore (Runtime.Api.recv ~src:b ());
          rtt := Runtime.Api.time () -. t0
        end
        else if rank = b then begin
          ignore (Runtime.Api.recv ~src:a ());
          Runtime.Api.send ~dst:a ~msg_size:0 ()
        end)
  in
  ignore result;
  !rtt

let gap_of_train ?noise ?seed ?(train = 16) machines ~a ~b ~msg =
  check_pair machines a b;
  if train < 1 then invalid_arg "Benchmarks.gap_of_train: train < 1";
  let injection_done = ref nan in
  ignore
    (Runtime.run_exn ?noise ?seed machines (fun ~rank ~size:_ ->
         if rank = a then begin
           for _ = 1 to train do
             Runtime.Api.send ~dst:b ~msg_size:msg ()
           done;
           injection_done := Runtime.Api.time ()
         end
         else if rank = b then
           for _ = 1 to train do
             ignore (Runtime.Api.recv ~src:a ())
           done));
  !injection_done /. float_of_int train

let default_sizes = [ 1; 4; 16; 64; 256; 1_024; 4_096; 16_384; 65_536; 262_144; 1_048_576; 4_194_304 ]

let measure_link ?noise ?seed ?(sizes = default_sizes) machines ~a ~b =
  check_pair machines a b;
  let gap_points =
    List.map (fun msg -> (msg, gap_of_train ?noise ?seed machines ~a ~b ~msg)) sizes
  in
  let g0 = gap_of_train ?noise ?seed machines ~a ~b ~msg:0 in
  let rtt0 = ping_pong ?noise ?seed machines ~a ~b ~msg:0 in
  let latency = Float.max 0. ((rtt0 -. (2. *. g0)) /. 2.) in
  Gridb_plogp.Params.v ~latency
    ~gap:(Gridb_plogp.Piecewise.of_points ((0, g0) :: gap_points))
    ()

(** The seven broadcast scheduling heuristics compared in the paper.

    Classical (Section 4, after Bhat et al. and the ECO/MagPIe flat tree):
    {!flat_tree}, {!fef}, {!ecef}, {!ecef_la}.
    Grid-aware (Section 5, the paper's contribution): {!ecef_lat_min}
    (ECEF-LAt), {!ecef_lat_max} (ECEF-LAT), {!bottom_up}.

    Every heuristic is a selection policy plugged into {!State.run}; ties
    are broken towards the lexicographically smallest (sender, receiver)
    pair so schedules are deterministic. *)

type t = {
  name : string;  (** e.g. "ECEF-LAt" (figure legends) *)
  select : State.t -> int * int;
}

val flat_tree : t
(** Root sends to every other cluster in index order (ECO / MagPIe). *)

val fef : t
(** Fastest Edge First: smallest [L_ij] over [A x B]; ignores ready times. *)

val ecef : t
(** Early Completion Edge First: minimises [avail_i + g_ij + L_ij]. *)

val ecef_la : t
(** ECEF with Bhat's lookahead [F_j = min (g_jk + L_jk)]. *)

val ecef_with : Lookahead.t -> t
(** ECEF with an arbitrary lookahead (ablations); named
    ["ECEF-LA<lookahead>"] . *)

val ecef_lat_min : t
(** ECEF-LAt: lookahead [min (g_jk + L_jk + T_k)]. *)

val ecef_lat_max : t
(** ECEF-LAT: lookahead [max (g_jk + L_jk + T_k)]. *)

val bottom_up : t
(** Max-min: picks the receiver whose {e best} reach
    [min_i (avail_i + g_ij + L_ij) + T_j] is {e largest}, served by that
    best sender — contact the slowest clusters as early as possible. *)

val all : t list
(** Paper order: FlatTree, FEF, ECEF, ECEF-LA, ECEF-LAt, ECEF-LAT,
    BottomUp. *)

val ecef_family : t list
(** The four curves of Figures 3 and 4: ECEF, ECEF-LA, ECEF-LAt,
    ECEF-LAT. *)

val by_name : string -> t option
(** Lookup among {!all}: exact name first, then case-insensitive.  The
    exact pass matters because "ECEF-LAt" (min) and "ECEF-LAT" (max)
    differ only by case; an all-lowercase query resolves to ECEF-LAt. *)

val run : t -> Instance.t -> Schedule.t

val makespan : ?model:Schedule.completion_model -> t -> Instance.t -> float
(** [Schedule.makespan ?model inst (run t inst)]. *)

(** Collective operations written as simMPI rank programs.

    Every function here is meant to be called from inside
    {!Runtime.run} — it performs send/recv effects for the calling rank and
    returns when this rank's role in the collective is over.  All ranks of
    the communicator must call the same collective with compatible
    arguments, exactly like MPI.

    Trees are laid over {e virtual} ranks ([(rank - root + size) mod size])
    so any root works with any shape.  The optional [?tag] namespaces a
    collective's messages: programs issuing several collectives whose
    deliveries may reorder under noise (e.g. the iteration loops in
    {!Apps}) should pass a distinct tag per logical operation. *)

val bcast :
  ?shape:Gridb_collectives.Tree.shape ->
  ?tag:int ->
  rank:int ->
  size:int ->
  root:int ->
  msg:int ->
  unit ->
  unit
(** Tree broadcast over all ranks (default binomial — the "grid-unaware"
    MPI_Bcast of Section 7). *)

val bcast_plan : ?tag:int -> rank:int -> Gridb_des.Plan.t -> msg:int -> unit
(** Broadcast along an arbitrary precomputed plan (e.g. a hierarchical plan
    from {!Gridb_des.Plan.of_cluster_schedule}): receive once (unless root),
    then forward to the plan's children in order. *)

val scatter : rank:int -> size:int -> root:int -> msg:int -> unit -> float
(** Root sends a distinct [msg]-byte block to every other rank (linear
    scatter); returns this rank's received payload (the root sends rank
    numbers as payloads; the root returns its own rank). *)

val gather : rank:int -> size:int -> root:int -> msg:int -> payload:float -> float list
(** Everyone sends [payload] to the root; the root returns the payloads in
    rank order (its own included), others return []. *)

val allgather_ring : rank:int -> size:int -> msg:int -> unit -> unit
(** [size - 1] ring rounds; each rank forwards the newest block to its
    successor while receiving from its predecessor. *)

val alltoall : rank:int -> size:int -> msg:int -> unit -> unit
(** Rotation pairwise exchange: in step [s], send to [(rank + s) mod size]
    and receive from [(rank - s) mod size].  Each round blocks on its
    receive, so rounds are rendezvous-synchronised. *)

val alltoall_nonblocking : rank:int -> size:int -> msg:int -> unit -> unit
(** Posts all [size - 1] sends with {!Runtime.Api.isend} first, then
    receives; the sender NIC stays saturated, which approaches the
    gap-bound prediction of {!Gridb_extensions.Alltoall_sched.predict}. *)

val barrier : rank:int -> size:int -> unit -> unit
(** Dissemination barrier: [ceil (log2 size)] rounds of zero-byte
    exchanges. *)

val reduce :
  ?tag:int ->
  rank:int -> size:int -> root:int -> msg:int -> value:float -> (float -> float -> float) -> float option
(** Binomial-tree reduction of [value] with the given associative operator;
    [Some total] at the root, [None] elsewhere. *)

val allreduce :
  ?tag:int ->
  rank:int -> size:int -> msg:int -> value:float -> (float -> float -> float) -> float
(** {!reduce} to rank 0 followed by {!bcast} of the result (the result
    value itself is returned on every rank). *)

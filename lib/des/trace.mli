(** Transmission traces of DES executions.

    When asked ({!Exec.run} with [record_trace:true]), the executor logs
    every point-to-point transmission; this module analyses the log:
    per-sender NIC busy time, the critical path to the last delivery, and a
    compact textual rendering.  Used by the deeper examples and by tests
    that assert structural properties of executions (e.g. that the flat
    tree's root carries all the traffic). *)

type transmission = {
  src : int;
  dst : int;
  start : float;  (** injection start, us *)
  gap_end : float;  (** sender NIC free again *)
  arrival : float;  (** receiver holds the message *)
  msg : int;  (** bytes *)
}

val of_events : Gridb_obs.Event.t list -> transmission list
(** Reconstruct transmissions from a chronological observability stream:
    each [Send_end] is paired with the latest open [Send_start] of the same
    directed link.  Unpaired starts and all other events are ignored.  The
    result is in emission order (not sorted by arrival). *)

val sender_busy_time : transmission list -> (int * float) list
(** Total NIC occupancy per sending rank, descending. *)

val busiest_sender : transmission list -> (int * float) option

val critical_path : transmission list -> transmission list
(** The chain of transmissions leading to the latest arrival, from the
    first hop to the last (each hop's receiver is the next hop's sender).
    Empty for an empty trace. *)

val total_bytes : transmission list -> int

val pp : Format.formatter -> transmission list -> unit
(** One line per transmission in arrival order. *)

(* Integration tests: cross-library pipelines and loose shape checks of the
   reproduced figures (the strict comparisons live in EXPERIMENTS.md; here
   we assert the orderings the paper's conclusions rest on, at reduced
   iteration counts). *)

module Config = Gridb_experiments.Config
module Figures = Gridb_experiments.Figures
module Tables = Gridb_experiments.Tables
module Ablations = Gridb_experiments.Ablations
module Report = Gridb_experiments.Report
module Sweep = Gridb_experiments.Sweep
module Heuristics = Gridb_sched.Heuristics
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Hit_rate = Gridb_sched.Hit_rate
module Machines = Gridb_topology.Machines
module Generators = Gridb_topology.Generators
module Rng = Gridb_util.Rng

let quick_config = Config.quick

let series_value figure label x =
  match List.assoc_opt label figure.Report.series with
  | None -> Alcotest.failf "series %s missing" label
  | Some points -> (
      match List.assoc_opt x points with
      | None -> Alcotest.failf "series %s has no x=%g" label x
      | Some y -> y)

(* --- Figure shape checks ----------------------------------------------- *)

let test_fig1_shape () =
  let fig = Figures.fig1_small_grids quick_config in
  Alcotest.(check int) "7 series" 7 (List.length fig.Report.series);
  let flat10 = series_value fig "FlatTree" 10. in
  let fef10 = series_value fig "FEF" 10. in
  let ecef10 = series_value fig "ECEF" 10. in
  let bottom10 = series_value fig "BottomUp" 10. in
  Alcotest.(check bool) "FlatTree worst" true (flat10 > fef10 && flat10 > bottom10);
  Alcotest.(check bool) "FEF above ECEF" true (fef10 > ecef10);
  Alcotest.(check bool) "BottomUp between ECEF and FEF" true
    (bottom10 > ecef10 && bottom10 < fef10);
  (* all heuristics coincide at n=2: one mandatory transmission *)
  let at2 = List.map (fun (_, pts) -> List.assoc 2. pts) fig.Report.series in
  List.iter
    (fun y ->
      Alcotest.(check bool) "n=2 degenerate" true (Float.abs (y -. List.hd at2) < 1e-9))
    at2

let test_fig2_shape () =
  let fig = Figures.fig2_large_grids quick_config in
  let flat x = series_value fig "FlatTree" x in
  let ecef x = series_value fig "ECEF" x in
  (* Flat tree grows roughly linearly: the 50-cluster value is several times
     the 10-cluster one; ECEF stays nearly flat. *)
  Alcotest.(check bool) "flat grows ~linearly" true (flat 50. > 3. *. flat 10.);
  Alcotest.(check bool) "ecef nearly flat" true (ecef 50. < 1.25 *. ecef 10.);
  Alcotest.(check bool) "flat ~5-6x ecef at 50" true (flat 50. > 4. *. ecef 50.)

let test_fig3_family_close () =
  let fig = Figures.fig3_ecef_zoom quick_config in
  Alcotest.(check int) "4 series" 4 (List.length fig.Report.series);
  (* the four ECEF-like heuristics stay within ~10% of each other *)
  List.iter
    (fun x ->
      let ys = List.map (fun (_, pts) -> List.assoc x pts) fig.Report.series in
      let lo = List.fold_left Float.min infinity ys in
      let hi = List.fold_left Float.max neg_infinity ys in
      Alcotest.(check bool)
        (Printf.sprintf "family within 10%% at n=%g" x)
        true
        (hi /. lo < 1.10))
    [ 5.; 25.; 50. ]

let test_fig4_bookkeeping () =
  let small = Config.with_iterations 200 quick_config in
  let a, b = Figures.fig4_hit_rate small in
  List.iter
    (fun fig ->
      Alcotest.(check int) "4 series" 4 (List.length fig.Report.series);
      (* per x, at least one heuristic hits (global minimum is attained) and
         no heuristic exceeds the iteration count *)
      List.iter
        (fun x ->
          let ys = List.map (fun (_, pts) -> List.assoc x pts) fig.Report.series in
          let total = List.fold_left ( +. ) 0. ys in
          Alcotest.(check bool) "winner exists" true (total >= 200.);
          List.iter
            (fun y -> Alcotest.(check bool) "hits bounded" true (y >= 0. && y <= 200.))
            ys)
        [ 5.; 30.; 50. ])
    [ a; b ]

let test_fig5_shape () =
  let fig = Figures.fig5_predicted quick_config in
  Alcotest.(check int) "7 series" 7 (List.length fig.Report.series);
  Alcotest.(check int) "10 sizes" 10 (List.length Figures.message_sizes);
  let flat = series_value fig "FlatTree" 4_000_000. in
  let ecef = series_value fig "ECEF" 4_000_000. in
  Alcotest.(check bool) "ECEF under 3s at 4MB" true (ecef < 3.);
  Alcotest.(check bool) "flat several times slower" true (flat > 3. *. ecef);
  (* curves are monotone in message size *)
  List.iter
    (fun (label, points) ->
      let rec monotone = function
        | (_, a) :: ((_, b) :: _ as rest) -> a <= b +. 1e-9 && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) (label ^ " monotone") true (monotone points))
    fig.Report.series

let test_fig6_measured_close_to_predicted () =
  let predicted = Figures.fig5_predicted quick_config in
  let measured = Figures.fig6_measured quick_config in
  Alcotest.(check int) "8 series (incl. Default LAM)" 8
    (List.length measured.Report.series);
  (* the paper: "performance predictions fit with a good precision the
     practical results" *)
  List.iter
    (fun h ->
      let p = series_value predicted h.Heuristics.name 4_000_000. in
      let m = series_value measured h.Heuristics.name 4_000_000. in
      Alcotest.(check bool)
        (Printf.sprintf "%s measured within 20%% of predicted" h.Heuristics.name)
        true
        (Float.abs (m -. p) /. p < 0.20))
    Heuristics.all;
  (* Default LAM sits between the grid-aware schedules and the flat tree *)
  let lam = series_value measured "Default LAM" 4_000_000. in
  let flat = series_value measured "FlatTree" 4_000_000. in
  let ecef = series_value measured "ECEF" 4_000_000. in
  Alcotest.(check bool) "LAM between ECEF and flat" true (lam > ecef && lam < flat)

(* --- Sweep / report plumbing ----------------------------------------------- *)

let test_sweep_deterministic () =
  let cfg = Config.with_iterations 100 quick_config in
  let a = Sweep.run cfg ~ns:[ 4; 8 ] Heuristics.ecef_family in
  let b = Sweep.run cfg ~ns:[ 4; 8 ] Heuristics.ecef_family in
  List.iter2
    (fun pa pb ->
      List.iter2
        (fun (oa : Hit_rate.outcome) ob ->
          Alcotest.(check int) "same hits" oa.Hit_rate.hits ob.Hit_rate.hits;
          Alcotest.(check (float 1e-12)) "same mean" oa.Hit_rate.mean_makespan
            ob.Hit_rate.mean_makespan)
        pa.Sweep.outcomes pb.Sweep.outcomes)
    a b

let test_sweep_heuristic_independent_draws () =
  (* Scoring a subset must see the same instances: ECEF's mean is identical
     whether swept alone or with the full family. *)
  let cfg = Config.with_iterations 150 quick_config in
  let alone = Sweep.run cfg ~ns:[ 6 ] [ Heuristics.ecef ] in
  let family = Sweep.run cfg ~ns:[ 6 ] Heuristics.ecef_family in
  let mean_of points = (List.hd (List.hd points).Sweep.outcomes).Hit_rate.mean_makespan in
  Alcotest.(check (float 1e-9)) "same draws" (mean_of alone) (mean_of family)

let test_report_renders_and_csv () =
  let fig =
    {
      Report.id = "itest";
      title = "integration";
      x_label = "x";
      y_label = "y";
      series = [ ("s1", [ (1., 2.); (2., 3.) ]); ("s2", [ (1., 5.) ]) ];
      notes = [ "a note" ];
    }
  in
  let text = Report.render fig in
  Alcotest.(check bool) "mentions title" true (String.length text > 0);
  let dir = Filename.temp_file "gridb" "" in
  Sys.remove dir;
  let path = Report.to_csv ~dir fig in
  let ic = open_in path in
  let header = input_line ic in
  let row1 = input_line ic in
  close_in ic;
  Alcotest.(check string) "csv header" "x,s1,s2" header;
  Alcotest.(check string) "csv first row" "1,2,5" row1

let test_scorecard_logic () =
  (* Fabricated figures exercising the pass and fail paths. *)
  let mk label pts = (label, pts) in
  let xs ys = List.map (fun (x, y) -> (float_of_int x, y)) ys in
  let fig1 =
    {
      Report.id = "f1";
      title = "";
      x_label = "";
      y_label = "";
      notes = [];
      series =
        [
          mk "FlatTree" (xs [ (10, 5.0) ]);
          mk "FEF" (xs [ (10, 4.0) ]);
          mk "ECEF" (xs [ (10, 3.0) ]);
          mk "BottomUp" (xs [ (10, 3.5) ]);
        ];
    }
  in
  let fig2 =
    {
      fig1 with
      Report.series =
        [
          mk "FlatTree" (xs [ (10, 5.); (50, 20.) ]);
          mk "FEF" (xs [ (50, 9.) ]);
          mk "ECEF" (xs [ (5, 3.0); (50, 3.6) ]);
        ];
    }
  in
  let fig3 =
    { fig1 with Report.series = [ mk "a" (xs [ (50, 3.6) ]); mk "b" (xs [ (50, 3.65) ]) ] }
  in
  let fig4a =
    { fig1 with Report.series = [ mk "ECEF-LAT" (xs [ (5, 4000.); (50, 400.) ]) ] }
  in
  let fig4b =
    { fig1 with Report.series = [ mk "ECEF-LAT" (xs [ (20, 5000.) ]); mk "ECEF" (xs [ (20, 2000.) ]) ] }
  in
  let fig5 =
    {
      fig1 with
      Report.series =
        [ mk "ECEF" [ (4e6, 2.3) ]; mk "FlatTree" [ (4e6, 10.5) ] ];
    }
  in
  let fig6 =
    {
      fig1 with
      Report.series =
        [ mk "ECEF" [ (4e6, 2.4) ]; mk "FlatTree" [ (4e6, 10.4) ]; mk "Default LAM" [ (4e6, 6.4) ] ];
    }
  in
  let verdicts =
    Gridb_experiments.Scorecard.of_figures ~fig1 ~fig2 ~fig3 ~fig4_literal:fig4a
      ~fig4_overlapped:fig4b ~fig5 ~fig6 ()
  in
  Alcotest.(check bool) "all fabricated claims pass" true
    (Gridb_experiments.Scorecard.all_pass verdicts);
  Alcotest.(check bool) "rendering mentions PASS" true
    (String.length (Gridb_experiments.Scorecard.render verdicts) > 100);
  (* flip one figure to make a claim fail *)
  let bad_fig1 =
    { fig1 with Report.series = [ mk "FlatTree" (xs [ (10, 1.0) ]); mk "FEF" (xs [ (10, 4.0) ]); mk "ECEF" (xs [ (10, 3.0) ]); mk "BottomUp" (xs [ (10, 3.5) ]) ] }
  in
  let bad =
    Gridb_experiments.Scorecard.of_figures ~fig1:bad_fig1 ~fig2 ~fig3 ~fig4_literal:fig4a
      ~fig4_overlapped:fig4b ~fig5 ~fig6 ()
  in
  Alcotest.(check bool) "failure detected" false
    (Gridb_experiments.Scorecard.all_pass bad)

let test_scorecard_table3 () =
  let v = Gridb_experiments.Scorecard.table3_verdict () in
  Alcotest.(check bool) "table 3 recovered" true v.Gridb_experiments.Scorecard.pass

let test_tables_render () =
  List.iter
    (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 40))
    [ Tables.table1 (); Tables.table2 quick_config; Tables.table3 (); Tables.table3_rederived () ]

(* --- Full pipeline ----------------------------------------------------------- *)

let test_matrix_to_makespan_pipeline () =
  (* latency matrix -> Lowekamp -> abstraction -> instance -> schedule ->
     plan -> DES, end to end on a random ground-truth topology. *)
  let rng = Rng.create 2024 in
  let truth = Generators.uniform_random ~rng ~n:5 Generators.default_random_spec in
  let machines = Machines.expand truth in
  let matrix = Machines.latency_matrix ~rng ~jitter_sigma:0.02 machines in
  let partition = Gridb_clustering.Lowekamp.detect ~rho:0.30 matrix in
  let detected = Gridb_clustering.Abstraction.grid_of_matrix matrix partition in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 detected in
  let schedule = Heuristics.run Heuristics.ecef_la inst in
  Alcotest.(check bool) "valid schedule" true
    (Result.is_ok (Schedule.validate inst schedule));
  let detected_machines = Machines.expand detected in
  let plan = Gridb_des.Plan.of_cluster_schedule detected_machines schedule in
  let r = Gridb_des.Exec.run ~msg:1_000_000 detected_machines plan in
  Alcotest.(check (float 1e-6)) "DES = prediction" (Schedule.makespan inst schedule)
    r.Gridb_des.Exec.makespan

let test_serialize_cli_pipeline () =
  (* topology file -> parse -> instance -> identical makespans. *)
  let grid = Gridb_topology.Grid5000.grid () in
  let path = Filename.temp_file "gridb" ".topo" in
  Gridb_topology.Serialize.save path grid;
  (match Gridb_topology.Serialize.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok loaded ->
      let a = Instance.of_grid ~root:0 ~msg:2_000_000 grid in
      let b = Instance.of_grid ~root:0 ~msg:2_000_000 loaded in
      List.iter
        (fun h ->
          Alcotest.(check (float 1e-6))
            h.Heuristics.name
            (Heuristics.makespan h a) (Heuristics.makespan h b))
        Heuristics.all);
  Sys.remove path

let test_ablation_figures_materialise () =
  (* Smoke: every ablation produces at least two non-empty series.  Use a
     tiny iteration count to keep the suite fast. *)
  let cfg = Config.with_iterations 30 quick_config in
  List.iter
    (fun fig ->
      Alcotest.(check bool)
        (fig.Report.id ^ " has series")
        true
        (List.length fig.Report.series >= 2);
      List.iter
        (fun (label, points) ->
          Alcotest.(check bool) (fig.Report.id ^ "/" ^ label ^ " non-empty") true
            (points <> []))
        fig.Report.series)
    (Ablations.all cfg)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "integration"
    [
      ( "figures",
        [
          slow "fig1 shape" test_fig1_shape;
          slow "fig2 shape" test_fig2_shape;
          slow "fig3 family close" test_fig3_family_close;
          slow "fig4 bookkeeping" test_fig4_bookkeeping;
          quick "fig5 shape" test_fig5_shape;
          slow "fig6 measured vs predicted" test_fig6_measured_close_to_predicted;
        ] );
      ( "plumbing",
        [
          quick "sweep deterministic" test_sweep_deterministic;
          quick "sweep draw independence" test_sweep_heuristic_independent_draws;
          quick "report render + csv" test_report_renders_and_csv;
          quick "scorecard logic" test_scorecard_logic;
          quick "scorecard table3" test_scorecard_table3;
          quick "tables render" test_tables_render;
        ] );
      ( "pipeline",
        [
          quick "matrix to makespan" test_matrix_to_makespan_pipeline;
          quick "serialize roundtrip pipeline" test_serialize_cli_pipeline;
          slow "ablations materialise" test_ablation_figures_materialise;
        ] );
    ]

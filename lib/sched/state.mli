(** The A/B-set scheduling state machine (Section 3 formalism).

    Set [A] holds clusters whose coordinator already received the message
    (initially just the root); set [B] holds the rest.  Each {!send} picks a
    sender from [A] and a receiver from [B], applies the timing rules and
    transfers the receiver to [A].  All heuristics are thin selection
    policies layered on this driver, so the timing semantics is implemented
    exactly once. *)

type t

val create : Instance.t -> t
(** Fresh state: [A = {root}] at time 0. *)

val create_seeded : Instance.t -> sources:(int * float * float) list -> t
(** Mid-broadcast state for {!Repair}: [A] holds every [(cluster, ready,
    avail)] triple of [sources] — coordinators that already hold the
    message, with the clock carried over from an interrupted run — and [B]
    holds the rest.  The instance root must be one of the sources.
    @raise Invalid_argument on an empty list, duplicate or out-of-range
    clusters, [ready < 0.], [avail < ready], or a root not in [sources]. *)

val instance : t -> Instance.t
val in_a : t -> int -> bool
val members_a : t -> int list
(** Ascending cluster ids. *)

val members_b : t -> int list

val iter_a : t -> (int -> unit) -> unit
(** Apply to every member of [A] in ascending order, without allocating. *)

val iter_b : t -> (int -> unit) -> unit

val count_b : t -> int

val first_b : t -> int option
(** Smallest cluster id still in [B], without building {!members_b}.
    Amortised O(1) over a run: [B] only shrinks, so the scan resumes from
    the previous answer. *)

val finished : t -> bool
(** True when [B] is empty. *)

val ready : t -> int -> float
(** RT_i — arrival time of the message at coordinator [i].
    @raise Invalid_argument if [i] is still in [B]. *)

val avail : t -> int -> float
(** Earliest time coordinator [i] may start a new transmission:
    [max (ready i) (end of its previous gap)].
    @raise Invalid_argument if [i] is still in [B]. *)

val earliest_arrival : t -> src:int -> dst:int -> float
(** [avail src + g + L]: when [dst] would hold the message if the pair were
    selected now — the quantity ECEF minimises.
    @raise Invalid_argument if [src] is in [B] or [dst] in [A]. *)

val score_arrival : t -> int -> int -> float
(** Unchecked {!earliest_arrival} for the selection hot paths: meaningful
    only when the first cluster is in [A] (no membership validation). *)

val best_arrival_sender : t -> dst:int -> int option
(** Sender in [A] minimising {!score_arrival} towards [dst] (ties towards
    the smallest id) — the per-receiver selection ECEF and BottomUp share.
    [None] only on a state with an empty [A] (impossible via {!create}).
    @raise Invalid_argument if [dst] is in [A]. *)

val send : t -> src:int -> dst:int -> unit
(** Applies the transmission.  @raise Invalid_argument if [src] is in [B],
    [dst] is in [A], or [src = dst]. *)

val to_schedule : t -> Schedule.t
(** Snapshot of the events so far (valid once {!finished}). *)

val run : (t -> int * int) -> Instance.t -> Schedule.t
(** [run select inst] drives the greedy loop: while [B] is non-empty, apply
    [select] and {!send} the chosen pair.  Single-cluster instances yield an
    empty schedule. *)

module Params = Gridb_plogp.Params
module Cluster = Gridb_topology.Cluster
module Grid = Gridb_topology.Grid

let default_params_of_latency latency =
  let bandwidth = Gridb_topology.Grid5000.inter_bandwidth_mb_s latency in
  let g0 = if latency >= 1_000. then 50. else 20. in
  Params.linear ~latency ~g0 ~bandwidth_mb_s:bandwidth

let median xs =
  match xs with
  | [] -> invalid_arg "Abstraction.median: empty"
  | _ -> Gridb_util.Stats.median (Array.of_list xs)

let median_cross_latency matrix a b =
  if a = [] || b = [] then invalid_arg "Abstraction.median_cross_latency: empty set";
  List.iter
    (fun x -> if List.mem x b then invalid_arg "Abstraction.median_cross_latency: overlap")
    a;
  median (List.concat_map (fun x -> List.map (fun y -> matrix.(x).(y)) b) a)

let internal_latencies matrix members =
  List.concat_map
    (fun i -> List.filter_map (fun j -> if i < j then Some matrix.(i).(j) else None) members)
    members

let grid_of_matrix ?(params_of_latency = default_params_of_latency)
    ?(name_prefix = "logical") matrix partition =
  let n_machines = Array.length matrix in
  if Partition.size partition <> n_machines then
    invalid_arg "Abstraction.grid_of_matrix: size mismatch";
  let k = Partition.count partition in
  let members = Array.init k (Partition.members partition) in
  let clusters =
    List.init k (fun c ->
        let intra_latency =
          match internal_latencies matrix members.(c) with
          | [] -> 10.
          | lats -> median lats
        in
        Cluster.v ~id:c
          ~name:(Printf.sprintf "%s-%d" name_prefix c)
          ~size:(List.length members.(c))
          ~intra:(params_of_latency intra_latency))
  in
  let self = params_of_latency 10. in
  let inter = Array.make_matrix k k self in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let latency = median_cross_latency matrix members.(i) members.(j) in
      let p = params_of_latency latency in
      inter.(i).(j) <- p;
      inter.(j).(i) <- p
    done
  done;
  Grid.v ~clusters ~inter

(** Multiplicative noise models for "measured" runs.

    The practical evaluation (Section 7) compares model predictions against
    execution on a real grid; the gap between Figure 5 and Figure 6 is
    network and system jitter.  The DES reproduces it by scaling each
    transmission's gap and latency by an independent random factor. *)

type t =
  | Exact  (** no noise: the DES must agree with the analytic model *)
  | Lognormal of float
      (** multiplicative lognormal with the given sigma; median 1 *)
  | Uniform of float
      (** uniform factor in [1 - eps, 1 + eps]; [eps] in [0, 1) *)

val default_measured : t
(** [Lognormal 0.08] — a realistic wide-area jitter level. *)

val factor : t -> Gridb_util.Rng.t -> float
(** Draw one multiplicative factor (>= 0, and > 0 almost surely).
    @raise Invalid_argument for [Uniform eps] with [eps] outside [0, 1). *)

val apply : t -> Gridb_util.Rng.t -> float -> float
(** [apply t rng x = x *. factor t rng]. *)

val to_string : t -> string

(** Rank-level broadcast plans.

    The DES executes one message dissemination described as an {e ordered}
    spanning tree over machine ranks: each node forwards to its children in
    list order, gap-serialised.  Plans are built three ways:
    - {!of_cluster_schedule}: a heuristic's inter-cluster schedule glued to
      intra-cluster trees (the hierarchical broadcast of the paper);
    - {!binomial_ranks}: the "grid-unaware" binomial over all ranks
      ("Default LAM" in Figure 6);
    - {!flat_ranks}: root sends to everyone (degenerate baseline). *)

type t = private {
  root : int;  (** root rank *)
  children : int list array;  (** ordered forwarding lists, indexed by rank *)
}

val v : root:int -> children:int list array -> t
(** @raise Invalid_argument if the structure is not a spanning tree over
    [0 .. Array.length children - 1] rooted at [root]. *)

val of_cluster_schedule :
  ?shape:Gridb_collectives.Tree.shape ->
  Gridb_topology.Machines.t ->
  Gridb_sched.Schedule.t ->
  t
(** Hierarchical plan: each coordinator performs its scheduled inter-cluster
    sends in round order, {e then} feeds its cluster's intra tree ([shape]
    defaults to binomial), matching the [After_sends] model.
    @raise Invalid_argument if the schedule's cluster count differs from the
    machine view's. *)

val of_flat_schedule : Gridb_topology.Machines.t -> Gridb_sched.Schedule.t -> t
(** Machine-level plan from a {e flat} schedule (one "cluster" per machine,
    as built by {!Gridb_sched.Instance.of_machines}): every rank forwards
    to the ranks it was scheduled to serve, in round order.
    @raise Invalid_argument if the schedule's node count differs from the
    machine count. *)

val binomial_ranks : Gridb_topology.Machines.t -> root:int -> t
(** Binomial tree over ranks [0 .. N-1] rooted at [root], oblivious to
    cluster boundaries (ranks are relabelled so the tree is rooted at
    [root]). *)

val flat_ranks : Gridb_topology.Machines.t -> root:int -> t

val size : t -> int
val depth : t -> int
val parent_array : t -> int array
(** [parent_array t].(root) = root. *)

(** Machine-level (flat) view of a grid.

    The schedulers work on clusters, but three consumers need individual
    machines: the discrete-event simulator (every process must receive the
    message), the grid-unaware binomial broadcast of Section 7 (which spans
    ranks regardless of clusters), and Lowekamp's cluster detection (which
    starts from a full machine-to-machine latency matrix). *)

type machine = {
  rank : int;  (** global rank, 0 .. N-1, cluster-major order *)
  cluster : int;
  index_in_cluster : int;  (** 0 is the cluster coordinator *)
}

type t

val expand : Grid.t -> t
(** Enumerates machines cluster by cluster; rank 0 is the coordinator of
    cluster 0. *)

val grid : t -> Grid.t
val count : t -> int
val machine : t -> int -> machine
(** @raise Invalid_argument on out-of-range rank. *)

val coordinator : t -> int -> int
(** [coordinator t c]: global rank of cluster [c]'s coordinator. *)

val rank_of : t -> cluster:int -> index:int -> int
(** Inverse of {!machine}.  @raise Invalid_argument when out of range. *)

val link_params : t -> int -> int -> Gridb_plogp.Params.t
(** pLogP parameters between two distinct ranks: the cluster's intra
    parameters when colocated, the inter-cluster link otherwise.
    @raise Invalid_argument if the ranks are equal. *)

val latency : t -> int -> int -> float

val latency_matrix : ?rng:Gridb_util.Rng.t -> ?jitter_sigma:float -> t -> float array array
(** Full [N x N] symmetric latency matrix (0 on the diagonal).  When [rng]
    is given, each entry is multiplied by lognormal noise of the given sigma
    (default 0.05) — the raw material for cluster-detection experiments. *)

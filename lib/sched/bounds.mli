(** Lower bounds on the broadcast makespan.

    The paper sidesteps optimality ("it is too expensive to find the optimal
    schedule") by scoring heuristics against each other.  These analytic
    bounds give an absolute yardstick: any valid schedule of the Section 3
    model — whatever the heuristic — costs at least [combined].  The bench
    reports each heuristic's gap to the bound, and for small instances the
    tests sandwich [combined <= optimal <= heuristic]. *)

val reach : Instance.t -> int -> float
(** [reach inst k]: a lower bound on when cluster [k]'s coordinator can hold
    the message — the cheapest single incoming edge [min_i (g_ik + L_ik)]
    for non-root clusters (any relay chain only adds earlier hops), 0 for
    the root. *)

val completion_bound : Instance.t -> float
(** [max_k (reach k + T_k)]: every cluster must be reached and then finish
    its internal broadcast. *)

val fanout_bound : Instance.t -> float
(** Source-multiplication bound: with every transmission occupying its
    sender for at least [gmin = min g], after time [t] at most
    [2^(t / gmin)] coordinators can hold the message; hence the last of [n]
    coordinators is reached no earlier than [ceil (log2 n) * gmin], plus the
    cheapest latency and the smallest remaining [T]. *)

val root_gap_bound : Instance.t -> float
(** The root must perform at least one send: [min_j g_root,j] plus that
    destination's delivery and the minimum [T] over non-root clusters —
    trivial but non-zero for [n >= 2]; 0 for a single cluster (then [T_root]
    applies via {!completion_bound}). *)

val combined : Instance.t -> float
(** Maximum of all bounds — still a lower bound. *)

val gap_ratio : Instance.t -> float -> float
(** [gap_ratio inst makespan = makespan /. combined inst]: >= 1 for valid
    schedules; 1 means provably optimal.  @raise Invalid_argument if
    [makespan < 0]. *)

type t = {
  name : string;
  select : State.t -> int * int;
  policy : Policy.t option;
}

let of_policy p =
  {
    name = Policy.name p;
    select = (fun state -> Engine.naive_select p state);
    policy = Some p;
  }

let v ~name select = { name; select; policy = None }

let flat_tree = of_policy Policy.flat_tree
let fef = of_policy Policy.fef
let ecef = of_policy Policy.ecef
let ecef_la = of_policy Policy.ecef_la
let ecef_with lookahead = of_policy (Policy.ecef_with lookahead)
let ecef_lat_min = of_policy Policy.ecef_lat_min
let ecef_lat_max = of_policy Policy.ecef_lat_max
let bottom_up = of_policy Policy.bottom_up

let all = [ flat_tree; fef; ecef; ecef_la; ecef_lat_min; ecef_lat_max; bottom_up ]
let ecef_family = [ ecef; ecef_la; ecef_lat_min; ecef_lat_max ]
let names = Policy.names

let by_name name = Option.map of_policy (Policy.by_name name)

let run ?mode t inst =
  match t.policy with
  | Some p -> Engine.run ?mode p inst
  | None -> State.run t.select inst

let makespan ?model ?mode t inst = Schedule.makespan ?model inst (run ?mode t inst)

(** Execution of a broadcast plan on the discrete-event engine.

    Semantics per transmission from [s] to [d] (pLogP parameters of the
    [s]-[d] link evaluated at the message size, each scaled by an
    independent noise factor): the send starts when [s] holds the message
    and its NIC is free; the NIC is busy for [g]; delivery happens [L]
    after the send starts injecting, i.e. at [start + g + L].

    With [noise = Exact] the executor reproduces the analytic predictions
    of {!Gridb_collectives.Cost} and {!Gridb_sched.Schedule} to floating
    point accuracy — an invariant the integration tests rely on.

    Observability: both executors accept an [obs] sink and publish the full
    event stream of the run — [Send_start]/[Send_end]/[Arrival] (plus
    [Ack]/[Retransmit]/[Give_up] and the engine's timer events for the
    reliable executor).  With the default {!Gridb_obs.Sink.null} every
    emission site is a single always-false test: seeded runs are
    bit-identical with and without the instrumentation layer.

    The legacy [record_trace] flag is retained as a compatibility alias: it
    installs an internal {!Gridb_obs.Sink.memory} sink and rebuilds the
    [trace] field from the event stream, byte-for-byte equal (ordering of
    simultaneous arrivals included) to what the pre-bus executor
    recorded.

    Since the wire/session refactor both executors are thin wrappers over
    {!Session} with a private {!Wire} and engine — bit-identical to the
    historical monolithic executors (the golden corpus digest pins this).
    The types below are equations over {!Session}'s, so values flow freely
    between the single-session API and the multi-session service layer. *)

type result = Session.result = {
  arrival : float array;  (** per-rank delivery time; [start_delay] at the root *)
  makespan : float;  (** max arrival *)
  transmissions : int;  (** number of point-to-point sends executed *)
  trace : Trace.transmission list;  (** arrival-ordered; [] unless recorded *)
}

val run :
  ?noise:Noise.t ->
  ?rng:Gridb_util.Rng.t ->
  ?start_delay:float ->
  ?msg:int ->
  ?record_trace:bool ->
  ?obs:Gridb_obs.Sink.t ->
  Gridb_topology.Machines.t ->
  Plan.t ->
  result
(** [run machines plan] broadcasts one [msg]-byte message (default 1 MB)
    along [plan].  [start_delay] (default 0., e.g. a scheduling overhead)
    postpones the root's first injection.  [rng] is required when [noise]
    is not [Exact] (default seed 0 otherwise).  [record_trace] (default
    false) retains every transmission for {!Trace} analysis — prefer
    passing an [obs] sink (default {!Gridb_obs.Sink.null}) and
    {!Trace.of_events}.
    @raise Invalid_argument if plan and machine view sizes differ. *)

val mean_makespan :
  ?noise:Noise.t ->
  ?msg:int ->
  ?repetitions:int ->
  ?jobs:int ->
  seed:int ->
  Gridb_topology.Machines.t ->
  Plan.t ->
  float
(** Average makespan over independent noisy runs (default 10), the
    "measured" value reported by Figure 6.  Repetition [rep] runs on the
    indexed stream {!Gridb_util.Rng.split}[ (create seed) rep]: equal
    seeds give equal means, the repetitions' streams are pairwise
    independent (one run's draw count cannot shift another's draws), and
    the mean is bit-identical for every [jobs] setting ([jobs], default 1,
    fans repetitions out over a {!Gridb_util.Pool}). *)

type transport = Session.transport =
  | Fixed  (** model-derived RTO, exponential backoff, no reroute *)
  | Adaptive of { config : Adaptive.config; reroute : bool }
      (** live Jacobson/Karn RTO + circuit breakers; with [reroute],
          orphaned children are re-parented onto delivered ranks *)

val adaptive : ?config:Adaptive.config -> ?reroute:bool -> unit -> transport
(** [Adaptive] with {!Adaptive.default} knobs; [reroute] defaults false. *)

val transport_of_string : string -> (transport, string) Stdlib.result
(** Parses ["fixed"], ["adaptive"], ["adaptive,reroute"] (or
    ["adaptive+reroute"]), case-insensitively; adaptive forms carry
    {!Adaptive.default}. *)

val transport_to_string : transport -> string
(** Left inverse of {!transport_of_string} for default configs. *)

type reliable = Session.reliable = {
  r_arrival : float array;
      (** per-rank {e first} delivery time; [nan] for ranks never reached *)
  r_makespan : float;  (** max arrival over delivered ranks *)
  r_transmissions : int;
      (** data transmissions injected, including retransmissions (ACKs are
          control-plane and not counted) *)
  retransmissions : int;  (** timeout-triggered re-sends *)
  acks : int;  (** ACK messages delivered *)
  delivered : int;  (** ranks holding the message at quiescence *)
  gave_up : (int * int) list;
      (** [(parent, child)] edges abandoned for good: retry budget exhausted
          (fixed/adaptive), or reroute budget exhausted (reroute) *)
  crashed : int list;  (** ranks that halted within the simulated horizon *)
  left : int list;
      (** ranks whose {!Dynamics} departure fired within the horizon; []
          without a dynamics model *)
  joined : int list;
      (** join ranks (ids >= the planning-time population) whose arrival
          fell within the horizon, ascending; [] without dynamics *)
  horizon : float;  (** simulated time at quiescence, us *)
  reroutes : (int * int * int) list;
      (** [(dst, old_parent, new_parent)] re-parentings, chronological;
          [] unless the transport reroutes *)
  circuit_opens : int;  (** breaker open transitions (timeouts + blow-ups) *)
  estimator : Adaptive.t option;
      (** the live estimator after quiescence — [Some] for adaptive
          transports; feed {!Adaptive.estimated_params} to replanning *)
  r_trace : Trace.transmission list;
      (** data transmissions, arrival-ordered; [] unless recorded *)
}

module Config = Session.Config
(** Session configuration — the former 13 optional arguments of
    {!run_reliable} as one record ({!Config.default} carries their
    historical defaults; {!Config.v} builds overrides).  Shared with the
    multi-session {!Session} layer. *)

val run_with : Config.t -> Gridb_topology.Machines.t -> Plan.t -> result
(** {!run} driven by a {!Config.t}.  Only the
    [noise]/[rng]/[start_delay]/[msg]/[record_trace]/[obs] fields apply;
    the reliability fields are ignored.
    @raise Invalid_argument if plan and machine view sizes differ. *)

val run_reliable_with : Config.t -> Gridb_topology.Machines.t -> Plan.t -> reliable
(** {!run_reliable} driven by a {!Config.t} — the record-first API; the
    optional-argument form below is a back-compat wrapper over it.
    @raise Invalid_argument on everything {!run_reliable} raises. *)

val run_reliable :
  ?noise:Noise.t ->
  ?rng:Gridb_util.Rng.t ->
  ?start_delay:float ->
  ?msg:int ->
  ?record_trace:bool ->
  ?obs:Gridb_obs.Sink.t ->
  ?faults:Faults.t ->
  ?dynamics:Dynamics.t ->
  ?on_tick:(now:float -> Adaptive.t option -> unit) ->
  ?tick_every:float ->
  ?retries:int ->
  ?rto_mult:float ->
  ?rto_min:float ->
  ?rto_max:float ->
  ?transport:transport ->
  Gridb_topology.Machines.t ->
  Plan.t ->
  reliable
(** Reliable broadcast along [plan] under a {!Faults} model (default: no
    faults).  Each plan edge runs stop-and-wait ACK/timeout/retransmission:
    the receiver ACKs every delivery on the control plane (reverse-link
    latency, no NIC seizure), the sender arms a cancellable timer [rto]
    after its injection ends and retransmits with doubled [rto] on every
    timeout — capped at [rto_max] us (default 1e9) — up to [retries]
    retransmissions (default 5) before abandoning the edge — partial
    delivery, reported via [gave_up].  The initial [rto] is [rto_mult]
    (default 2.) times the link's noiseless round trip [g + L + L_back],
    floored at [rto_min] us (default 1.).

    [transport] (default {!Fixed}) selects the retransmission strategy.
    Under [Adaptive], every clean round trip updates a per-link
    SRTT/RTTVAR estimator ({!Adaptive}, Karn's rule included) that
    replaces the model-derived initial RTO once samples exist, and
    per-link circuit breakers publish [Circuit_open]/[Circuit_close] to
    the sink.  With [reroute] also set, an edge whose breaker opens or
    whose retry budget dies orphans its child instead of abandoning it:
    the child is re-parented onto the already-delivered alive rank with
    the best ECEF arrival score over live-estimated parameters
    ([Reroute] events), parked and retried on the next delivery if no
    candidate exists yet, and only reported in [gave_up] once its
    per-destination reroute budget ({!Adaptive.config.max_reroutes};
    0 derives [2 * ranks]) is spent — so delivery is total unless the
    destination crashed or is physically partitioned from the delivered
    set.

    Fault semantics: losses and permanent cuts are evaluated at injection
    start; a transmission to a rank that halts before its arrival vanishes;
    a halted sender stops (re)transmitting and forwarding.  Degradation
    episodes multiply both gap and latency of transmissions injected while
    they are active.

    [dynamics] adds time-varying topology on top.  {!Dynamics.factor}
    multiplies gap and latency of every transmission (the fault slowdown
    composes with it); a rank {e halts} at the earlier of its fault-model
    crash and its dynamics departure ([left] reports the latter); join
    ranks extend the rank space ([r_arrival] has one slot per join above
    the planning-time population) and are adopted through the reroute
    machinery when their arrival falls inside the simulated horizon — a
    join under a non-rerouting transport exists but is unreachable (the
    static plan predates it), and joins arriving after quiescence never
    happened.  Join links are fresh: loss-free, cut-free, undrifted,
    carrying the cluster's nominal parameters.

    [on_tick] (with [tick_every] > 0, us) is a pure observation hook: it
    receives the live estimator (if any) at the first protocol event at or
    past each tick boundary — the online re-clustering loop of
    {!Gridb_experiments}.  It runs between protocol events and must not
    mutate executor state.

    With an empty fault spec ({!Faults.is_none}) and the same [noise],
    [rng] and [start_delay], the data path is {e bit-identical} to {!run}
    {e for every transport}: same arrivals, same makespan, same
    transmission count — the estimator draws no randomness and every timer
    is cancelled by its ACK before firing.  The identity extends to
    [dynamics] models built from {!Dynamics.is_none} specs: their factor
    is exactly [1.] (an exact float multiply), they halt and join nobody,
    and tick callbacks never touch the data path.  The zero-fault identity
    the property tests pin down.
    @raise Invalid_argument on plan/machine/fault-model/dynamics-model size
    mismatch, [retries < 0], [rto_mult < 1.], [rto_min <= 0.],
    [rto_max < rto_min] or negative [tick_every]. *)

type reliable_summary = {
  reps : int;
  delivered_fraction : float;  (** mean delivered / n over repetitions *)
  mean_retransmissions : float;
  mean_reroutes : float;
  mean_makespan : float;  (** over delivered ranks, per repetition *)
  stddev_makespan : float;  (** population standard deviation *)
  total_gave_up : int;  (** abandoned edges summed over repetitions *)
  all_delivered : bool;  (** every repetition delivered all [n] ranks *)
}

val mean_reliable :
  ?noise:Noise.t ->
  ?msg:int ->
  ?repetitions:int ->
  ?retries:int ->
  ?rto_mult:float ->
  ?rto_min:float ->
  ?rto_max:float ->
  ?transport:transport ->
  ?jobs:int ->
  seed:int ->
  spec:Faults.spec ->
  Gridb_topology.Machines.t ->
  Plan.t ->
  reliable_summary
(** {!run_reliable} aggregated over independent repetitions (default 10),
    mirroring {!mean_makespan}'s indexed-stream discipline: repetition
    [rep] runs entirely on {!Gridb_util.Rng.split}[ (create seed) rep],
    burning that stream's first raw draw for its fault seed.  Equal seeds
    give equal summaries, no repetition's draw count bleeds into
    another's, and the summary is bit-identical for every [jobs] setting
    ([jobs], default 1, fans repetitions out over a {!Gridb_util.Pool}).
    The faults are re-drawn per repetition from [spec].
    @raise Invalid_argument if [repetitions < 1] (plus everything
    {!run_reliable} raises). *)

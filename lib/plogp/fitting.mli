(** Recovery of pLogP parameters from timing samples.

    The paper feeds its models with parameters "obtained with the method
    described in [Kielmann et al., Fast measurement of LogP parameters]".
    Without hardware we exercise the same pipeline synthetically:
    {!Measurement.run} plays the saturation benchmark against a ground-truth
    parameter set (plus noise), and {!fit_linear}/{!fit_table} recover a
    model from the resulting samples.  Tests close the loop by checking the
    recovered model predicts the ground truth within the noise budget. *)

type sample = { size : int; time : float }
(** One timed transfer: message size in bytes, observed time in us. *)

type linear_fit = {
  intercept : float;  (** fitted g(0), us *)
  slope : float;  (** fitted per-byte cost, us/byte *)
  rmse : float;  (** root mean squared residual, us *)
}

val fit_linear : sample list -> linear_fit
(** Ordinary least squares on (size, time).  With a single distinct size the
    slope is 0 and the intercept is the mean.
    @raise Invalid_argument on an empty list. *)

val fit_table : ?per_size_reduce:[ `Mean | `Min ] -> sample list -> Piecewise.t
(** Groups samples by size and reduces each group ([`Min] by default:
    Kielmann's method takes the minimum over repetitions, which rejects
    positive-only noise), yielding a measured gap table.
    @raise Invalid_argument on an empty list. *)

(** Synthetic execution of the measurement benchmark. *)
module Measurement : sig
  type config = {
    sizes : int list;  (** message sizes to probe *)
    repetitions : int;  (** timed transfers per size *)
    train_length : int;  (** messages per saturation train *)
    noise_sigma : float;  (** lognormal sigma of multiplicative noise; 0. = exact *)
  }

  val default_config : config
  (** Powers of two from 1 B to 4 MiB, 10 repetitions, trains of 16,
      [noise_sigma = 0.02]. *)

  val gap_samples : ?seed:int -> config -> Params.t -> sample list
  (** Saturation phase: per repetition, the time of a [train_length]-message
      back-to-back train divided by the train length estimates g(m). *)

  val latency_sample : ?seed:int -> config -> Params.t -> float
  (** RTT phase: estimates L from the minimum of [repetitions] zero-byte
      round-trips: [(rtt - g(0) - g(0)) / 2]. *)

  val run : ?seed:int -> config -> Params.t -> Params.t
  (** Full pipeline: measure, fit a table, return the recovered parameter
      set. *)
end

(** Shared per-NIC occupancy state.

    One [Wire.t] holds the [nic_free] times of every rank on the fabric.
    A single-session executor owns a private wire; the broadcast service
    hands {e one} wire to every concurrent {!Session} so their
    transmissions contend for the same NICs — the half-duplex one-port
    serialization of the pLogP model then holds {e across} sessions, not
    just within one.

    All times are simulated microseconds.  A rank's NIC is free again at
    [free_at]; a send seizes it for the link's gap. *)

type t

val create : n:int -> t
(** A wire for ranks [0 .. n-1], all NICs free at time 0.
    @raise Invalid_argument if [n < 1]. *)

val size : t -> int
(** Number of ranks the wire covers. *)

val free_at : t -> int -> float
(** Earliest time [rank]'s NIC can start a new injection. *)

val touch : t -> int -> now:float -> unit
(** Delivery bookkeeping: [rank]'s NIC cannot inject before [now]
    (monotone max — never moves [free_at] backwards). *)

val seize : t -> int -> gap:float -> float
(** Seize [rank]'s NIC at its current [free_at] for [gap] us; returns the
    injection start time.  The back-to-back send form of the simple
    executor ([start = free_at; free_at += gap]). *)

val occupy : t -> int -> start:float -> gap:float -> unit
(** Record an injection at an externally chosen [start] (the reliable
    executor starts at [max now (free_at)]): sets [free_at] to
    [start +. gap].  Caller must ensure [start >= free_at]. *)

(** Seeded, reproducible fault processes for the DES.

    The paper's grids are heterogeneous {e and} flaky; this module supplies
    the flakiness.  A {!spec} describes four independent fault processes:

    - {b message loss} — each transmission on a directed link is lost with
      probability [loss] (the sender still pays the gap);
    - {b transient degradation} — per-link degradation episodes arrive as a
      Poisson process of rate [degrade_rate] (per us) with exponentially
      distributed durations of mean [degrade_mean]; a transmission injected
      during an episode has its gap and latency multiplied by
      [degrade_factor];
    - {b permanent link cuts} — a directed link dies forever at a time drawn
      from [Exp(cut_rate)]; transmissions injected after the cut vanish;
    - {b crash-stop node failures} — rank [i] halts at a time drawn from
      [Exp(crash_rate)]; it stops sending, and messages delivered to it
      after the crash are discarded (no ACK, no forwarding).

    All randomness is pre-seeded per link / per rank at {!create} time from
    a single SplitMix64 master stream, so fault draws are reproducible at a
    fixed seed {e and} independent of the order in which the executor
    queries different links — a retransmission on one link never perturbs
    the draws of another. *)

type spec = {
  loss : float;  (** per-transmission loss probability, in [0, 1) *)
  cut_rate : float;  (** permanent-cut arrival rate per directed link, 1/us *)
  degrade_rate : float;  (** degradation episode arrival rate per link, 1/us *)
  degrade_mean : float;  (** mean episode duration, us *)
  degrade_factor : float;  (** gap/latency multiplier during an episode, >= 1 *)
  crash_rate : float;  (** crash-stop arrival rate per rank, 1/us *)
}

val none : spec
(** All processes disabled: [loss = 0.], all rates [0.]. *)

val v :
  ?loss:float ->
  ?cut_rate:float ->
  ?degrade_rate:float ->
  ?degrade_mean:float ->
  ?degrade_factor:float ->
  ?crash_rate:float ->
  unit ->
  spec
(** Build a validated spec; omitted fields default to {!none}'s values
    (except [degrade_mean], default 1e6 us, and [degrade_factor], default
    3.).  @raise Invalid_argument on [loss] outside [0, 1), negative rates,
    non-positive [degrade_mean] or [degrade_factor < 1.]. *)

val is_none : spec -> bool
(** True iff no fault process is active (an empty fault spec). *)

val of_string : string -> (spec, string) result
(** Parse a CLI spec: comma-separated [key=value] pairs with keys [loss],
    [cut], [crash], [degrade] (episode rate), [degrade-mean],
    [degrade-factor].  [""] and ["none"] parse to {!none}.
    Example: ["loss=0.05,crash=2e-8,degrade=1e-7,degrade-factor=4"].
    Errors name the offending key as typed: unknown keys list the known
    ones, non-numbers quote the value, and out-of-range values state the
    accepted range (e.g. ["loss: outside [0, 1) (got 1.5)"]). *)

val to_string : spec -> string
(** Inverse of {!of_string} up to field order; ["none"] for {!none}. *)

type t
(** An instantiated fault model over [n] ranks. *)

val create : ?seed:int -> ?t0:float -> n:int -> spec -> t
(** Pre-draws crash and cut times and seeds the per-link loss/degradation
    streams (default seed 0).  With {!is_none} specs no randomness is
    consumed at all.

    [t0] (default [0.]) is the model's time origin: crash times, cut times
    and the degradation-episode timeline are offsets from it.  A session
    launched mid-simulation (a broadcast-service request or retry) passes
    its own start time so faults unfold from {e its} start rather than the
    simulation's epoch; the drawn offsets are [t0]-independent, so
    shifting the origin never changes the random stream.
    @raise Invalid_argument if [n < 1] or [t0] is not finite. *)

val spec : t -> spec
val size : t -> int

val crash_time : t -> int -> float
(** When rank [i] halts; [infinity] if never. *)

val crashed : t -> int -> at:float -> bool

val cut_time : t -> src:int -> dst:int -> float
(** When the directed link dies; [infinity] if never. *)

val link_up : t -> src:int -> dst:int -> at:float -> bool

val lose : t -> src:int -> dst:int -> bool
(** One Bernoulli loss draw on the link's private stream.  Always [false]
    (and draw-free) when [loss = 0.]. *)

val slowdown : t -> src:int -> dst:int -> at:float -> float
(** Multiplicative gap/latency factor for a transmission injected at [at]:
    [degrade_factor] inside a degradation episode, [1.] outside. *)

(** Logical homogeneous cluster detection (Lowekamp's algorithm as used by
    the authors' companion paper "Identifying logical homogeneous clusters
    for efficient wide-area communication", and in Section 7 with a
    tolerance rate rho = 30 %).

    Machines are grouped agglomeratively from a full pairwise latency
    matrix: edges are considered in ascending latency order and two groups
    merge only if the union stays {e homogeneous} — its largest pairwise
    latency does not exceed [(1 + rho)] times its smallest.  IDPOT's split
    into three logical clusters in Table 3 is exactly this effect: the
    242 us pair fails the 30 % band around the 60 us pairs. *)

val default_rho : float
(** 0.30, the paper's tolerance rate. *)

val detect : ?rho:float -> ?require_locality:bool -> float array array -> Partition.t
(** [detect matrix] for a symmetric [n x n] latency matrix (diagonal
    ignored).

    [require_locality] (default [true]) additionally demands that a merged
    cluster's largest internal latency not exceed [(1 + rho)] times its
    smallest latency to any outside machine — i.e. a cluster's internal
    network is (tolerantly) faster than its external links.  Without it, any two remote singletons would merge
    (a two-machine cluster is trivially homogeneous): exactly the Table 3
    case of the two standalone IDPOT machines, 242 us apart but only 60 us
    from the IDPOT cluster, which the paper keeps separate.

    @raise Invalid_argument on a non-square matrix, [n = 0], or
    [rho < 0.]. *)

val is_homogeneous : ?rho:float -> float array array -> int list -> bool
(** Whether a set of machines forms a homogeneous cluster under [rho]
    (singletons and pairs always do). *)

val partition_quality : float array array -> Partition.t -> float
(** Mean over non-singleton clusters of (max internal latency / min
    internal latency); 1.0 is perfectly homogeneous. *)

(** pLogP completion-time prediction for intra-cluster collectives.

    This is the model of the authors' companion papers ("Fast tuning of
    intra-cluster collective communications", "Performance characterisation
    of intra-cluster collective communications"): given the homogeneous
    pLogP parameters of a cluster, predict the completion time of a
    collective — in particular the broadcast time [T] that the grid-aware
    heuristics (ECEF-LAt, ECEF-LAT, BottomUp) feed into their lookahead. *)

val tree_completion : params:Gridb_plogp.Params.t -> msg:int -> Tree.t -> float
(** Completion time (us) of a broadcast along the given tree: a node holding
    the message at time [t] transmits to its [k] children at
    [t + g, t + 2g, ...] (gap-limited injection, children ordered as listed);
    child [i] holds the message at [t + i*g + L].  The result is the time
    the last node holds the message. *)

val per_node_arrival : params:Gridb_plogp.Params.t -> msg:int -> Tree.t -> (int * float) list
(** Arrival time of every node of the tree (root at 0.), preorder. *)

val broadcast_time :
  ?shape:Tree.shape -> params:Gridb_plogp.Params.t -> size:int -> msg:int -> unit -> float
(** The paper's [T_k]: completion of an intra-cluster broadcast over [size]
    processes ([shape] defaults to [Binomial]).  0. when [size <= 1]. *)

val scatter_time : params:Gridb_plogp.Params.t -> size:int -> msg:int -> float
(** Root sends a distinct [msg]-byte block to each of the [size - 1] others:
    [(size - 1) * g(m) + L]. *)

val gather_time : params:Gridb_plogp.Params.t -> size:int -> msg:int -> float
(** Mirror of scatter under symmetric links. *)

val allgather_ring_time : params:Gridb_plogp.Params.t -> size:int -> msg:int -> float
(** Ring allgather: [size - 1] rounds of one [msg]-byte neighbour exchange:
    [(size - 1) * (g(m) + L)]. *)

val alltoall_time : params:Gridb_plogp.Params.t -> size:int -> msg:int -> float
(** Pairwise-exchange alltoall: [size - 1] rounds, each a full [msg]-byte
    exchange: [(size - 1) * (g(m) + L)] with gap-limited injection
    [max (g) ...]; under the homogeneous model this equals the ring bound. *)

val barrier_time : params:Gridb_plogp.Params.t -> size:int -> float
(** Dissemination barrier: [ceil (log2 size)] rounds of zero-byte
    exchanges. *)

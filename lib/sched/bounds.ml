let reach inst k =
  if k = inst.Instance.root then 0.
  else begin
    let best = ref infinity in
    for i = 0 to inst.Instance.n - 1 do
      if i <> k then
        best :=
          Float.min !best (inst.Instance.gap.(i).(k) +. inst.Instance.latency.(i).(k))
    done;
    !best
  end

let completion_bound inst =
  let worst = ref 0. in
  for k = 0 to inst.Instance.n - 1 do
    worst := Float.max !worst (reach inst k +. inst.Instance.intra.(k))
  done;
  !worst

let fold_off_diagonal inst f init =
  let acc = ref init in
  for i = 0 to inst.Instance.n - 1 do
    for j = 0 to inst.Instance.n - 1 do
      if i <> j then acc := f !acc i j
    done
  done;
  !acc

let fanout_bound inst =
  let n = inst.Instance.n in
  if n <= 1 then inst.Instance.intra.(inst.Instance.root)
  else begin
    let gmin =
      fold_off_diagonal inst (fun acc i j -> Float.min acc inst.Instance.gap.(i).(j)) infinity
    in
    let lmin =
      fold_off_diagonal inst
        (fun acc i j -> Float.min acc inst.Instance.latency.(i).(j))
        infinity
    in
    let tmin = ref infinity in
    for k = 0 to n - 1 do
      if k <> inst.Instance.root then tmin := Float.min !tmin inst.Instance.intra.(k)
    done;
    let rounds = Float.ceil (Float.log2 (float_of_int n)) in
    (rounds *. gmin) +. lmin +. !tmin
  end

let root_gap_bound inst =
  let n = inst.Instance.n in
  if n <= 1 then 0.
  else begin
    let root = inst.Instance.root in
    let best = ref infinity in
    for j = 0 to n - 1 do
      if j <> root then
        best :=
          Float.min !best
            (inst.Instance.gap.(root).(j)
            +. inst.Instance.latency.(root).(j)
            +. inst.Instance.intra.(j))
    done;
    !best
  end

let combined inst =
  Float.max (completion_bound inst) (Float.max (fanout_bound inst) (root_gap_bound inst))

let gap_ratio inst makespan =
  if makespan < 0. then invalid_arg "Bounds.gap_ratio: negative makespan";
  let lb = combined inst in
  if lb <= 0. then 1. else makespan /. lb

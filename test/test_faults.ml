(* Tests for the robustness layer: fault processes, the cancellable engine
   timers, the reliable executor, schedule repair and the simMPI receive
   timeout.  The central invariant: with an empty fault spec the reliable
   executor and the repair pass are both bit-exact identities. *)

module Engine = Gridb_des.Engine
module Noise = Gridb_des.Noise
module Faults = Gridb_des.Faults
module Adaptive = Gridb_des.Adaptive
module Params = Gridb_plogp.Params
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Machines = Gridb_topology.Machines
module Grid5000 = Gridb_topology.Grid5000
module Generators = Gridb_topology.Generators
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Policy = Gridb_sched.Policy
module Sched_engine = Gridb_sched.Engine
module Repair = Gridb_sched.Repair
module Runtime = Gridb_mpi.Runtime
module Rng = Gridb_util.Rng

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

(* Either topology generator, selected by the seed's parity, so the
   property tests cover both regimes. *)
let random_grid ~rng ~n seed =
  if seed mod 2 = 0 then Generators.uniform_random ~rng ~n Generators.default_random_spec
  else
    Generators.multilevel ~rng
      { Generators.default_multilevel_spec with Generators.sites = max 1 (n / 3) }

let plan_of_grid ?(policy = Policy.ecef_la) ~msg grid =
  let inst = Instance.of_grid ~root:0 ~msg grid in
  let schedule = Sched_engine.run policy inst in
  let machines = Machines.expand grid in
  (machines, Plan.of_cluster_schedule machines schedule)

(* --- Rng.bernoulli ------------------------------------------------------ *)

let test_bernoulli_validation () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "p < 0" (Invalid_argument "Rng.bernoulli: p outside [0, 1]")
    (fun () -> ignore (Rng.bernoulli rng (-0.1)));
  Alcotest.check_raises "p > 1" (Invalid_argument "Rng.bernoulli: p outside [0, 1]")
    (fun () -> ignore (Rng.bernoulli rng 1.5));
  Alcotest.check_raises "nan" (Invalid_argument "Rng.bernoulli: p outside [0, 1]")
    (fun () -> ignore (Rng.bernoulli rng nan))

let test_bernoulli_extremes () =
  let rng = Rng.create 7 in
  for _ = 1 to 200 do
    Alcotest.(check bool) "p = 0 never fires" false (Rng.bernoulli rng 0.);
    Alcotest.(check bool) "p = 1 always fires" true (Rng.bernoulli rng 1.)
  done

let test_bernoulli_frequency () =
  let rng = Rng.create 42 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli rng 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "frequency %.3f near 0.3" freq)
    true
    (freq > 0.27 && freq < 0.33)

(* --- Engine timers ------------------------------------------------------ *)

let test_timer_fires () =
  let e = Engine.create () in
  let fired = ref false in
  let tm = Engine.schedule_timer e ~time:3. (fun _ -> fired := true) in
  Alcotest.(check bool) "live before run" true (Engine.timer_live tm);
  Engine.run e;
  Alcotest.(check bool) "fired" true !fired;
  Alcotest.(check bool) "dead after firing" false (Engine.timer_live tm);
  check_feq "clock" 3. (Engine.now e);
  (* Cancelling after the fact is a harmless no-op. *)
  Engine.cancel e tm

let test_cancelled_timer_never_fires () =
  let e = Engine.create () in
  let fired = ref false in
  let tm = Engine.schedule_timer e ~time:10. (fun _ -> fired := true) in
  Engine.schedule e ~time:2. (fun _ -> ());
  Engine.cancel e tm;
  Alcotest.(check bool) "dead after cancel" false (Engine.timer_live tm);
  Engine.run e;
  Alcotest.(check bool) "never fired" false !fired;
  check_feq "clock stops at the real event" 2. (Engine.now e);
  Alcotest.(check int) "cancelled event not processed" 1 (Engine.processed e)

let test_cancelled_timer_does_not_block () =
  (* A cancelled event at the head of the queue must not hold run_until's
     horizon hostage nor count as pending work. *)
  let e = Engine.create () in
  let tm = Engine.schedule_timer e ~time:1. (fun _ -> ()) in
  let fired = ref false in
  Engine.schedule e ~time:5. (fun _ -> fired := true);
  Engine.cancel e tm;
  Alcotest.(check int) "pending excludes cancelled" 1 (Engine.pending e);
  Engine.run_until e 3.;
  Alcotest.(check bool) "late event untouched" false !fired;
  Engine.run e;
  Alcotest.(check bool) "late event ran" true !fired

let test_timer_rearm () =
  (* Cancel-and-rearm, the retransmission idiom. *)
  let e = Engine.create () in
  let log = ref [] in
  let tm = ref (Engine.schedule_timer e ~time:4. (fun _ -> log := "old" :: !log)) in
  Engine.schedule e ~time:1. (fun _ ->
      Engine.cancel e !tm;
      tm := Engine.schedule_timer e ~time:2. (fun _ -> log := "new" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "only the rearmed timer fired" [ "new" ] !log;
  check_feq "clock" 2. (Engine.now e)

(* --- Fault specs -------------------------------------------------------- *)

let test_spec_validation () =
  Alcotest.check_raises "loss >= 1"
    (Invalid_argument "Faults.v: loss outside [0, 1)") (fun () ->
      ignore (Faults.v ~loss:1. ()));
  Alcotest.check_raises "negative rate"
    (Invalid_argument "Faults.v: negative crash_rate") (fun () ->
      ignore (Faults.v ~crash_rate:(-1e-6) ()));
  Alcotest.check_raises "degrade factor < 1"
    (Invalid_argument "Faults.v: degrade_factor < 1") (fun () ->
      ignore (Faults.v ~degrade_factor:0.5 ()))

let test_spec_of_string () =
  (match Faults.of_string "loss=0.05,crash=2e-8" with
  | Error e -> Alcotest.fail e
  | Ok spec ->
      check_feq "loss parsed" 0.05 spec.Faults.loss;
      check_feq "crash parsed" 2e-8 spec.Faults.crash_rate);
  (match Faults.of_string "none" with
  | Ok spec -> Alcotest.(check bool) "none is none" true (Faults.is_none spec)
  | Error e -> Alcotest.fail e);
  (match Faults.of_string "" with
  | Ok spec -> Alcotest.(check bool) "empty is none" true (Faults.is_none spec)
  | Error e -> Alcotest.fail e);
  (match Faults.of_string "bogus=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown key accepted")

let test_spec_roundtrip () =
  let spec = Faults.v ~loss:0.1 ~crash_rate:1e-7 ~degrade_rate:1e-6 ~degrade_factor:4. () in
  match Faults.of_string (Faults.to_string spec) with
  | Error e -> Alcotest.fail e
  | Ok spec' ->
      check_feq "loss" spec.Faults.loss spec'.Faults.loss;
      check_feq "crash" spec.Faults.crash_rate spec'.Faults.crash_rate;
      check_feq "degrade" spec.Faults.degrade_rate spec'.Faults.degrade_rate;
      check_feq "factor" spec.Faults.degrade_factor spec'.Faults.degrade_factor

let test_spec_errors_name_keys () =
  let err s =
    match Faults.of_string s with
    | Error e -> e
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
  in
  Alcotest.(check string) "loss range" "loss: outside [0, 1) (got 1.5)" (err "loss=1.5");
  Alcotest.(check string) "cut range" "cut: negative rate (got -1)" (err "cut=-1");
  Alcotest.(check string) "crash range" "crash: negative rate (got -2e-08)"
    (err "crash=-2e-8");
  Alcotest.(check string) "degrade range" "degrade: negative rate (got -0.5)"
    (err "loss=0.1,degrade=-0.5");
  Alcotest.(check string) "degrade-mean range" "degrade-mean: must be positive (got 0)"
    (err "degrade-mean=0");
  Alcotest.(check string) "degrade-factor range" "degrade-factor: must be >= 1 (got 0.5)"
    (err "degrade-factor=0.5");
  Alcotest.(check string) "not a number" "loss: not a number (\"lots\")"
    (err "loss=lots");
  Alcotest.(check string) "unknown key"
    "unknown key \"bogus\" (known: loss, cut, crash, degrade, degrade-mean, \
     degrade-factor)"
    (err "bogus=1");
  Alcotest.(check string) "malformed pair" "malformed \"loss\" (want key=value)"
    (err "loss")

(* to_string prints with %g (6 significant digits), so the round trip is
   exact only to that precision. *)
let spec_roundtrip_property =
  QCheck.Test.make ~name:"Faults.to_string/of_string round-trips every spec" ~count:(Testutil.count 200)
    QCheck.(
      pair
        (pair (float_range 0. 0.999) (float_range 0. 1e-3))
        (pair
           (pair (float_range 0. 1e-3) (float_range 1. 1e7))
           (pair (float_range 1. 10.) (float_range 0. 1e-3))))
    (fun ((loss, cut_rate), ((degrade_rate, degrade_mean), (degrade_factor, crash_rate))) ->
      let spec =
        Faults.v ~loss ~cut_rate ~degrade_rate ~degrade_mean ~degrade_factor ~crash_rate
          ()
      in
      match Faults.of_string (Faults.to_string spec) with
      | Error e -> QCheck.Test.fail_reportf "rejected own rendering: %s" e
      | Ok spec' ->
          let close a b = feq ~eps:1e-5 a b || abs_float (a -. b) <= 1e-5 *. abs_float a in
          close spec.Faults.loss spec'.Faults.loss
          && close spec.Faults.cut_rate spec'.Faults.cut_rate
          && close spec.Faults.degrade_rate spec'.Faults.degrade_rate
          && close spec.Faults.degrade_mean spec'.Faults.degrade_mean
          && close spec.Faults.degrade_factor spec'.Faults.degrade_factor
          && close spec.Faults.crash_rate spec'.Faults.crash_rate)

let test_faults_deterministic () =
  let spec = Faults.v ~loss:0.2 ~crash_rate:1e-6 ~cut_rate:1e-7 ()
  and n = 12 in
  let a = Faults.create ~seed:5 ~n spec and b = Faults.create ~seed:5 ~n spec in
  for r = 0 to n - 1 do
    check_feq "crash times equal" (Faults.crash_time a r) (Faults.crash_time b r)
  done;
  (* Per-link streams are pre-seeded: querying b's links in reverse order
     must not change any answer. *)
  let qa = ref [] and qb = ref [] in
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then qa := Faults.lose a ~src ~dst :: !qa
    done
  done;
  for src = n - 1 downto 0 do
    for dst = n - 1 downto 0 do
      if src <> dst then qb := Faults.lose b ~src ~dst :: !qb
    done
  done;
  Alcotest.(check (list bool)) "loss draws query-order independent" !qa (List.rev !qb)

let test_faults_t0_shifts_origin () =
  (* Shifting the time origin translates every drawn time without touching
     the random stream — what lets a broadcast-service session launched
     mid-simulation face faults unfolding from its own start. *)
  let spec = Faults.v ~loss:0.2 ~crash_rate:1e-6 ~cut_rate:1e-7 ~degrade_rate:1e-6 ()
  and n = 8
  and t0 = 5e5 in
  let a = Faults.create ~seed:5 ~n spec and b = Faults.create ~seed:5 ~t0 ~n spec in
  for r = 0 to n - 1 do
    let ca = Faults.crash_time a r in
    check_feq
      (Printf.sprintf "crash %d shifted by t0" r)
      (if Float.is_finite ca then ca +. t0 else ca)
      (Faults.crash_time b r)
  done;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let ca = Faults.cut_time a ~src ~dst in
        check_feq "cut shifted by t0"
          (if Float.is_finite ca then ca +. t0 else ca)
          (Faults.cut_time b ~src ~dst);
        check_feq "degradation timeline shifted by t0"
          (Faults.slowdown a ~src ~dst ~at:1e5)
          (Faults.slowdown b ~src ~dst ~at:(1e5 +. t0));
        Alcotest.(check bool)
          "loss draws t0-independent"
          (Faults.lose a ~src ~dst)
          (Faults.lose b ~src ~dst)
      end
    done
  done;
  Alcotest.check_raises "non-finite t0"
    (Invalid_argument "Faults.create: t0 must be finite") (fun () ->
      ignore (Faults.create ~t0:nan ~n spec))

(* --- Reliable executor -------------------------------------------------- *)

(* The zero-fault identity must hold for every transport — the adaptive
   estimator draws no randomness and every timer is cancelled by its ACK
   before firing — and with or without an observability sink attached
   (sinks only watch; both topology generators via [random_grid]). *)
let reliable_zero_fault_identity =
  QCheck.Test.make ~name:"run_reliable with no faults is bit-identical to run" ~count:(Testutil.count 25)
    QCheck.(pair (int_range 2 9) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let grid = random_grid ~rng ~n seed in
      let msg = 1 + (seed mod 4_000_000) in
      let machines, plan = plan_of_grid ~msg grid in
      let base = Exec.run ~msg machines plan in
      let identical (rel : Exec.reliable) =
        rel.Exec.r_makespan = base.Exec.makespan
        && rel.Exec.r_arrival = base.Exec.arrival
        && rel.Exec.r_transmissions = base.Exec.transmissions
        && rel.Exec.retransmissions = 0
        && rel.Exec.gave_up = []
        && rel.Exec.crashed = []
        && rel.Exec.reroutes = []
        && rel.Exec.circuit_opens = 0
        && rel.Exec.delivered = Machines.count machines
      in
      List.for_all
        (fun transport ->
          identical (Exec.run_reliable ~msg ~transport machines plan)
          &&
          let obs = Gridb_obs.Sink.memory () in
          let observed = Exec.run_reliable ~msg ~transport ~obs machines plan in
          identical observed && Gridb_obs.Sink.count obs > 0)
        [ Exec.Fixed; Exec.adaptive (); Exec.adaptive ~reroute:true () ])

let test_reliable_seeded_reproducible () =
  let grid = Grid5000.grid () in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let spec = Faults.v ~loss:0.1 ~crash_rate:1e-6 () in
  let once () =
    let faults = Faults.create ~seed:3 ~n:(Machines.count machines) spec in
    Exec.run_reliable ~msg ~faults machines plan
  in
  let a = once () and b = once () in
  (* Polymorphic compare, not (=): undelivered ranks hold nan. *)
  Alcotest.(check bool) "arrivals identical" true
    (compare a.Exec.r_arrival b.Exec.r_arrival = 0);
  Alcotest.(check int) "transmissions identical" a.Exec.r_transmissions b.Exec.r_transmissions;
  Alcotest.(check int) "retransmissions identical" a.Exec.retransmissions b.Exec.retransmissions;
  Alcotest.(check (list (pair int int))) "gave_up identical" a.Exec.gave_up b.Exec.gave_up;
  Alcotest.(check (list int)) "crashed identical" a.Exec.crashed b.Exec.crashed

let test_reliable_recovers_from_loss () =
  let grid = Grid5000.grid () in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let n = Machines.count machines in
  let base = Exec.run ~msg machines plan in
  let faults = Faults.create ~seed:11 ~n (Faults.v ~loss:0.3 ()) in
  let rel = Exec.run_reliable ~msg ~faults ~retries:25 machines plan in
  Alcotest.(check int) "full delivery despite 30% loss" n rel.Exec.delivered;
  Alcotest.(check bool) "losses caused retransmissions" true (rel.Exec.retransmissions > 0);
  Alcotest.(check bool) "retransmissions cost time" true
    (rel.Exec.r_makespan >= base.Exec.makespan);
  Alcotest.(check bool) "every rank acked once" true (rel.Exec.acks >= n - 1)

let test_reliable_retry_budget_exhaustion () =
  let rng = Rng.create 2 in
  let grid = Generators.uniform_random ~rng ~n:6 Generators.default_random_spec in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let n = Machines.count machines in
  let faults = Faults.create ~seed:4 ~n (Faults.v ~loss:0.9 ()) in
  let rel = Exec.run_reliable ~msg ~faults ~retries:1 machines plan in
  Alcotest.(check bool) "some edges gave up" true (rel.Exec.gave_up <> []);
  Alcotest.(check bool) "partial delivery" true (rel.Exec.delivered < n);
  (* Undelivered ranks must be marked, delivered ones timed. *)
  Array.iteri
    (fun r t ->
      if Float.is_nan t then
        Alcotest.(check bool)
          (Printf.sprintf "rank %d unreached and not root" r)
          true (r <> plan.Plan.root))
    rel.Exec.r_arrival

let test_reliable_crash_partitions () =
  let grid = Grid5000.grid () in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let n = Machines.count machines in
  (* Aggressive crash rate: mean time to failure well under the makespan. *)
  let faults = Faults.create ~seed:1 ~n (Faults.v ~crash_rate:5e-6 ()) in
  let rel = Exec.run_reliable ~msg ~faults machines plan in
  Alcotest.(check bool) "some ranks crashed" true (rel.Exec.crashed <> []);
  Alcotest.(check bool) "partial delivery" true (rel.Exec.delivered < n);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "crashed rank %d halted within horizon" r)
        true
        (Float.is_finite (Faults.crash_time faults r)))
    rel.Exec.crashed

(* --- Adaptive transport and in-flight reroute ---------------------------- *)

let test_run_reliable_rto_max_validation () =
  let grid = Grid5000.grid () in
  let machines, plan = plan_of_grid ~msg:1_000 grid in
  Alcotest.check_raises "rto_max < rto_min"
    (Invalid_argument "Exec.run_reliable: rto_max < rto_min") (fun () ->
      ignore (Exec.run_reliable ~rto_min:10. ~rto_max:5. machines plan))

let test_reroute_totality_under_loss () =
  (* Same cell as the retry-budget-exhaustion test: the fixed transport
     strands ranks, while adaptive+reroute must deliver everyone — no
     crashes and no cuts, so the reachability graph is complete. *)
  let rng = Rng.create 2 in
  let grid = Generators.uniform_random ~rng ~n:6 Generators.default_random_spec in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let n = Machines.count machines in
  let faults () = Faults.create ~seed:4 ~n (Faults.v ~loss:0.9 ()) in
  let fixed = Exec.run_reliable ~msg ~faults:(faults ()) ~retries:1 machines plan in
  Alcotest.(check bool) "fixed transport strands ranks" true (fixed.Exec.delivered < n);
  let rer =
    Exec.run_reliable ~msg ~faults:(faults ()) ~retries:1
      ~transport:(Exec.adaptive ~reroute:true ()) machines plan
  in
  Alcotest.(check (list int)) "no crashes" [] rer.Exec.crashed;
  Alcotest.(check int) "total delivery" n rer.Exec.delivered;
  Alcotest.(check bool) "rescues went through reroutes" true (rer.Exec.reroutes <> []);
  Alcotest.(check (list (pair int int))) "nothing abandoned" [] rer.Exec.gave_up

let test_reroute_under_cuts () =
  (* Permanent link cuts with no crashes: any rank left undelivered by the
     rerouting transport must be physically partitioned — every link from a
     delivered rank to it was cut (otherwise a loss-free attempt over a
     live link would have delivered). *)
  let rng = Rng.create 8 in
  let grid = Generators.uniform_random ~rng ~n:8 Generators.default_random_spec in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let n = Machines.count machines in
  let spec = Faults.v ~cut_rate:2e-6 () in
  let faults () = Faults.create ~seed:9 ~n spec in
  let fixed = Exec.run_reliable ~msg ~faults:(faults ()) machines plan in
  let rer =
    Exec.run_reliable ~msg ~faults:(faults ())
      ~transport:(Exec.adaptive ~reroute:true ()) machines plan
  in
  Alcotest.(check (list int)) "no crashes" [] rer.Exec.crashed;
  Alcotest.(check bool)
    (Printf.sprintf "reroute %d >= fixed %d delivered" rer.Exec.delivered
       fixed.Exec.delivered)
    true
    (rer.Exec.delivered >= fixed.Exec.delivered);
  let f = faults () in
  Array.iteri
    (fun dst t ->
      if Float.is_nan t then
        for src = 0 to n - 1 do
          if src <> dst && not (Float.is_nan rer.Exec.r_arrival.(src)) then
            Alcotest.(check bool)
              (Printf.sprintf "undelivered %d is partitioned: %d->%d was cut" dst src dst)
              true
              (Float.is_finite (Faults.cut_time f ~src ~dst))
        done)
    rer.Exec.r_arrival

let test_reroute_rescues_crashed_subtrees () =
  (* Same aggressive crash cell as the partition test.  With reroute, the
     planned subtrees under crashed relays are re-parented: every rank left
     undelivered must itself have crashed. *)
  let grid = Grid5000.grid () in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let n = Machines.count machines in
  let faults () = Faults.create ~seed:1 ~n (Faults.v ~crash_rate:5e-6 ()) in
  let fixed = Exec.run_reliable ~msg ~faults:(faults ()) machines plan in
  let rer =
    Exec.run_reliable ~msg ~faults:(faults ())
      ~transport:(Exec.adaptive ~reroute:true ()) machines plan
  in
  Alcotest.(check bool) "crashes happened" true (rer.Exec.crashed <> []);
  Alcotest.(check bool)
    (Printf.sprintf "reroute %d > fixed %d delivered" rer.Exec.delivered
       fixed.Exec.delivered)
    true
    (rer.Exec.delivered > fixed.Exec.delivered);
  Array.iteri
    (fun r t ->
      if Float.is_nan t then
        Alcotest.(check bool)
          (Printf.sprintf "undelivered rank %d crashed" r)
          true
          (List.mem r rer.Exec.crashed))
    rer.Exec.r_arrival

(* Regression: the estimator's nominal must be the raw round trip, not the
   rto_mult-inflated, rto_min-floored RTO the executor arms.  With no
   faults and exact noise every plan edge samples exactly
   gap + latency + ACK latency, so every link's quality is 1 (to rounding)
   and the estimated parameters match the nominal ones — with the inflated
   nominal, healthy links would read ~1/rto_mult faster than the model. *)
let test_healthy_links_estimate_quality_one () =
  let grid = Grid5000.grid () in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let n = Machines.count machines in
  let rel = Exec.run_reliable ~msg ~transport:(Exec.adaptive ()) machines plan in
  Alcotest.(check int) "all delivered" n rel.Exec.delivered;
  let est = Option.get rel.Exec.estimator in
  let edges = ref 0 in
  Array.iteri
    (fun parent children ->
      List.iter
        (fun child ->
          incr edges;
          Alcotest.(check int)
            (Printf.sprintf "edge %d->%d sampled once" parent child)
            1
            (Adaptive.samples est ~src:parent ~dst:child);
          check_feq
            (Printf.sprintf "edge %d->%d quality" parent child)
            1.
            (Adaptive.quality est ~src:parent ~dst:child);
          let p = Machines.link_params machines parent child in
          let ep = Adaptive.estimated_params est ~src:parent ~dst:child p in
          check_feq
            (Printf.sprintf "edge %d->%d estimated latency" parent child)
            (Params.latency p) (Params.latency ep);
          check_feq
            (Printf.sprintf "edge %d->%d estimated gap" parent child)
            (Params.gap p msg) (Params.gap ep msg))
        children)
    plan.Plan.children;
  Alcotest.(check int) "every non-root rank has a plan edge" (n - 1) !edges

let test_adaptive_emits_circuit_events () =
  (* Heavy loss with a generous retry budget: circuits must open (3
     consecutive timeouts) and close again on a later success, and the
     stream must carry the matching events. *)
  let rng = Rng.create 2 in
  let grid = Generators.uniform_random ~rng ~n:6 Generators.default_random_spec in
  let msg = 1_000_000 in
  let machines, plan = plan_of_grid ~msg grid in
  let n = Machines.count machines in
  let faults = Faults.create ~seed:4 ~n (Faults.v ~loss:0.6 ()) in
  let obs = Gridb_obs.Sink.memory () in
  let rel =
    Exec.run_reliable ~msg ~faults ~retries:25 ~transport:(Exec.adaptive ()) ~obs machines
      plan
  in
  Alcotest.(check bool) "circuits opened" true (rel.Exec.circuit_opens > 0);
  let events = Gridb_obs.Sink.events obs in
  let opens =
    List.length
      (List.filter (function Gridb_obs.Event.Circuit_open _ -> true | _ -> false) events)
  in
  let closes =
    List.length
      (List.filter (function Gridb_obs.Event.Circuit_close _ -> true | _ -> false) events)
  in
  Alcotest.(check int) "open events match the counter" rel.Exec.circuit_opens opens;
  Alcotest.(check bool) "some circuit closed again" true (closes > 0);
  (* Plain adaptive never reroutes. *)
  Alcotest.(check (list (triple int int int))) "no reroutes without the flag" []
    rel.Exec.reroutes

let test_mean_reliable_discipline () =
  let grid = Grid5000.grid () in
  let machines, plan = plan_of_grid ~msg:1_000_000 grid in
  let spec = Faults.v ~loss:0.05 () in
  let s seed = Exec.mean_reliable ~repetitions:3 ~seed ~spec machines plan in
  let a = s 5 and b = s 5 in
  Alcotest.(check bool) "equal seeds, equal summaries" true (a = b);
  Alcotest.(check bool) "different seeds differ" true (s 5 <> s 6);
  Alcotest.(check bool) "losses retransmit" true (a.Exec.mean_retransmissions > 0.);
  Alcotest.(check bool) "stddev nonnegative" true (a.Exec.stddev_makespan >= 0.);
  let r =
    Exec.mean_reliable ~repetitions:3 ~seed:5 ~spec
      ~transport:(Exec.adaptive ~reroute:true ()) machines plan
  in
  Alcotest.(check bool) "reroute delivers in every repetition" true r.Exec.all_delivered;
  check_feq ~eps:0. "full delivered fraction" 1. r.Exec.delivered_fraction;
  (* Fanning the repetitions over a pool must not move a single bit: each
     rep's fault stream derives from (seed, rep) alone. *)
  let par = Exec.mean_reliable ~repetitions:3 ~seed:5 ~spec ~jobs:4 machines plan in
  Alcotest.(check bool) "jobs=4 bit-identical to sequential" true (a = par)

(* --- Exec.mean_makespan stream discipline ------------------------------- *)

let test_mean_makespan_seed_determinism () =
  let grid = Grid5000.grid () in
  let machines, plan = plan_of_grid ~msg:1_000_000 grid in
  let mean seed =
    Exec.mean_makespan ~noise:(Noise.Lognormal 0.08) ~repetitions:5 ~seed machines plan
  in
  check_feq ~eps:0. "equal seeds, equal means" (mean 9) (mean 9);
  Alcotest.(check bool) "different seeds differ" true (mean 9 <> mean 10)

let test_mean_makespan_split_streams () =
  (* Repetition [rep] runs on the indexed stream [Rng.split base rep], so a
     single-rep mean must equal a direct run on stream 0 — and every rep's
     value is independent of how many repetitions surround it. *)
  let grid = Grid5000.grid () in
  let machines, plan = plan_of_grid ~msg:1_000_000 grid in
  let noise = Noise.Lognormal 0.08 in
  let rng = Rng.create 21 in
  let direct = Exec.run ~noise ~rng:(Rng.split rng 0) machines plan in
  let m1 = Exec.mean_makespan ~noise ~repetitions:1 ~seed:21 machines plan in
  check_feq ~eps:0. "rep 0 is indexed stream 0" direct.Exec.makespan m1;
  let m2 = Exec.mean_makespan ~noise ~repetitions:2 ~seed:21 machines plan in
  let m3 = Exec.mean_makespan ~noise ~repetitions:3 ~seed:21 machines plan in
  (* Prefix property: rep 1's value recovered from the 2-rep mean must be
     exactly what the 3-rep mean implies for it, which fails if one rep's
     draw count shifted another's stream. *)
  let rep1_from_2 = (2. *. m2) -. m1 in
  let direct1 = Exec.run ~noise ~rng:(Rng.split rng 1) machines plan in
  check_feq "rep 1 is indexed stream 1" direct1.Exec.makespan rep1_from_2;
  let rep2_from_3 = (3. *. m3) -. (2. *. m2) in
  let direct2 = Exec.run ~noise ~rng:(Rng.split rng 2) machines plan in
  check_feq "rep 2 is indexed stream 2" direct2.Exec.makespan rep2_from_3;
  (* The indexed derivation is pure: deriving streams above did not advance
     [rng], so the means are reproducible from the same base. *)
  check_feq ~eps:0. "split is pure in the base state" m1
    (Exec.mean_makespan ~noise ~repetitions:1 ~seed:21 machines plan);
  (* And the pool gives the identical mean at any worker count. *)
  check_feq ~eps:0. "jobs=4 mean is bit-identical"
    m3
    (Exec.mean_makespan ~noise ~repetitions:3 ~jobs:4 ~seed:21 machines plan)

let test_noise_uniform_rejects_bad_eps () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "eps = 1"
    (Invalid_argument "Noise.factor: Uniform eps outside [0, 1)") (fun () ->
      ignore (Noise.factor (Noise.Uniform 1.) rng));
  Alcotest.check_raises "eps < 0"
    (Invalid_argument "Noise.factor: Uniform eps outside [0, 1)") (fun () ->
      ignore (Noise.factor (Noise.Uniform (-0.1)) rng))

(* --- Schedule repair ----------------------------------------------------- *)

let repair_zero_fault_identity =
  QCheck.Test.make ~name:"repair under zero faults is the identity" ~count:(Testutil.count 30)
    QCheck.(pair (int_range 2 12) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let grid = random_grid ~rng ~n seed in
      let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
      let schedule = Sched_engine.run Policy.ecef_la inst in
      let crash = Array.make inst.Instance.n infinity in
      let o = Repair.repair inst schedule ~crash in
      o.Repair.schedule.Schedule.events = schedule.Schedule.events
      && o.Repair.schedule.Schedule.ready = schedule.Schedule.ready
      && o.Repair.schedule.Schedule.busy_until = schedule.Schedule.busy_until
      && o.Repair.replanned = [] && o.Repair.dead = [] && o.Repair.abandoned = []
      && Array.for_all Fun.id o.Repair.delivered)

(* A deterministic mid-broadcast coordinator crash: kill the first relay
   (non-root sender) at the very instant its copy would have arrived, so
   it never holds the message and every cluster it was to serve is
   orphaned. *)
let crash_first_relay inst schedule =
  let relay =
    match
      List.find_opt
        (fun (e : Schedule.event) -> e.Schedule.src <> schedule.Schedule.root)
        schedule.Schedule.events
    with
    | Some e -> e.Schedule.src
    | None -> Alcotest.fail "schedule has no relay sender"
  in
  let crash = Array.make inst.Instance.n infinity in
  crash.(relay) <- schedule.Schedule.ready.(relay);
  (relay, crash)

let test_repair_reroutes_orphans () =
  let grid = Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let schedule = Sched_engine.run Policy.ecef_la inst in
  let relay, crash = crash_first_relay inst schedule in
  let o = Repair.repair inst schedule ~crash in
  Alcotest.(check (list int)) "exactly the relay died" [ relay ] o.Repair.dead;
  Alcotest.(check bool) "orphans were replanned" true (o.Repair.replanned <> []);
  Alcotest.(check (list int)) "nobody abandoned" [] o.Repair.abandoned;
  Array.iteri
    (fun c delivered ->
      if c <> relay then
        Alcotest.(check bool) (Printf.sprintf "cluster %d served" c) true delivered)
    o.Repair.delivered;
  let at = crash.(relay) in
  List.iter
    (fun (e : Schedule.event) ->
      Alcotest.(check bool) "repair sends start at detection or later" true
        (e.Schedule.start >= at);
      Alcotest.(check bool) "no dead participants" true
        (e.Schedule.src <> relay && e.Schedule.dst <> relay))
    o.Repair.replanned;
  Alcotest.(check bool) "patched makespan is finite and positive" true
    (Float.is_finite o.Repair.makespan && o.Repair.makespan > 0.);
  (* Rounds are renumbered consecutively from 0. *)
  List.iteri
    (fun i (e : Schedule.event) -> Alcotest.(check int) "round" i e.Schedule.round)
    o.Repair.schedule.Schedule.events

let test_repair_abandons_without_sources () =
  (* Root crashes before sending anything: every other cluster is orphaned
     with no surviving holder. *)
  let grid = Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let schedule = Sched_engine.run Policy.ecef_la inst in
  let n = inst.Instance.n in
  let crash = Array.make n infinity in
  crash.(0) <- 0.;
  let o = Repair.repair ~at:0. inst schedule ~crash in
  Alcotest.(check (list int)) "root dead" [ 0 ] o.Repair.dead;
  Alcotest.(check (list int)) "everyone abandoned"
    (List.init (n - 1) (fun i -> i + 1))
    o.Repair.abandoned;
  Alcotest.(check bool) "nothing replanned" true (o.Repair.replanned = [])

let test_repair_respects_policy () =
  (* The residual replan is driven by the requested policy: on a fresh
     crash the flat-tree repair must fan out from sources only, while the
     default may relay.  Weak but policy-sensitive check: both deliver. *)
  let grid = Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let schedule = Sched_engine.run Policy.ecef_la inst in
  let relay, crash = crash_first_relay inst schedule in
  List.iter
    (fun policy ->
      let o = Repair.repair ~policy inst schedule ~crash in
      Array.iteri
        (fun c d ->
          if c <> relay then
            Alcotest.(check bool)
              (Printf.sprintf "%s serves cluster %d" (Policy.name policy) c)
              true d)
        o.Repair.delivered)
    [ Policy.flat_tree; Policy.fef; Policy.ecef; Policy.bottom_up ]

(* --- Robustness scorecard ------------------------------------------------ *)

let test_robustness_zero_faults () =
  let grid = Grid5000.grid () in
  let m = Gridb_experiments.Robustness.run ~spec:Faults.none grid in
  check_feq ~eps:0. "delivery ratio 1" 1. m.Gridb_experiments.Robustness.delivery_ratio;
  check_feq ~eps:0. "inflation exactly 1" 1. m.Gridb_experiments.Robustness.inflation;
  Alcotest.(check int) "no retransmissions" 0 m.Gridb_experiments.Robustness.retransmissions;
  Alcotest.(check bool) "no repair" false m.Gridb_experiments.Robustness.repair_invoked

let test_robustness_under_loss () =
  let grid = Grid5000.grid () in
  let spec = Faults.v ~loss:0.1 () in
  let m = Gridb_experiments.Robustness.run ~seed:6 ~spec grid in
  Alcotest.(check bool) "still delivers" true
    (m.Gridb_experiments.Robustness.delivery_ratio > 0.9);
  Alcotest.(check bool) "loss costs time" true
    (m.Gridb_experiments.Robustness.inflation >= 1.);
  Alcotest.(check bool) "retransmitted" true
    (m.Gridb_experiments.Robustness.retransmissions > 0);
  let rendered = Gridb_experiments.Robustness.render m in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "render mentions delivery ratio" true
    (contains rendered "delivery ratio")

(* --- simMPI recv_timeout ------------------------------------------------- *)

let test_recv_timeout_expires () =
  let rng = Rng.create 13 in
  let grid = Generators.uniform_random ~rng ~n:2 Generators.default_random_spec in
  let machines = Machines.expand grid in
  let expired_at = ref nan and late = ref false in
  let result =
    Runtime.run_exn machines (fun ~rank ~size:_ ->
        if rank = 1 then begin
          (match Runtime.Api.recv_timeout ~timeout:50. () with
          | None -> expired_at := Runtime.Api.time ()
          | Some _ -> Alcotest.fail "nothing was sent yet");
          (* The sender transmits at t = 100; a generous second deadline
             must now see the message (and the first, cancelled deadline
             must not have corrupted the parked state). *)
          match Runtime.Api.recv_timeout ~timeout:1e9 () with
          | Some m -> late := m.Runtime.src = 0
          | None -> Alcotest.fail "message never arrived"
        end
        else if rank = 0 then begin
          Runtime.Api.compute 100.;
          Runtime.Api.send ~dst:1 ~msg_size:1_000 ()
        end)
  in
  check_feq "deadline fired exactly at 50" 50. !expired_at;
  Alcotest.(check bool) "second wait caught the real message" true !late;
  Alcotest.(check (list int)) "no deadlocks" [] result.Runtime.deadlocked

let test_recv_timeout_cancelled_by_delivery () =
  let rng = Rng.create 14 in
  let grid = Generators.uniform_random ~rng ~n:2 Generators.default_random_spec in
  let machines = Machines.expand grid in
  let got = ref false and second_expired = ref nan in
  let result =
    Runtime.run_exn machines (fun ~rank ~size:_ ->
        if rank = 1 then begin
          (match Runtime.Api.recv_timeout ~timeout:1e9 () with
          | Some _ -> got := true
          | None -> Alcotest.fail "message lost");
          (* If the first deadline timer survived its cancellation it would
             fire during this second, short wait and resume us twice. *)
          match Runtime.Api.recv_timeout ~timeout:10. () with
          | None -> second_expired := Runtime.Api.time ()
          | Some _ -> Alcotest.fail "no second message exists"
        end
        else if rank = 0 then Runtime.Api.send ~dst:1 ~msg_size:1_000 ())
  in
  Alcotest.(check bool) "message received before deadline" true !got;
  Alcotest.(check bool) "second deadline fired 10us after the delivery" true
    (Float.is_finite !second_expired);
  Alcotest.(check (list int)) "no deadlocks" [] result.Runtime.deadlocked

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "faults"
    [
      ( "bernoulli",
        [
          quick "validation" test_bernoulli_validation;
          quick "extremes" test_bernoulli_extremes;
          quick "frequency" test_bernoulli_frequency;
        ] );
      ( "timers",
        [
          quick "fires" test_timer_fires;
          quick "cancelled never fires" test_cancelled_timer_never_fires;
          quick "cancelled does not block" test_cancelled_timer_does_not_block;
          quick "rearm" test_timer_rearm;
        ] );
      ( "spec",
        [
          quick "validation" test_spec_validation;
          quick "of_string" test_spec_of_string;
          quick "roundtrip" test_spec_roundtrip;
          quick "errors name keys" test_spec_errors_name_keys;
          QCheck_alcotest.to_alcotest spec_roundtrip_property;
          quick "deterministic" test_faults_deterministic;
          quick "t0 shifts the origin, not the draws" test_faults_t0_shifts_origin;
        ] );
      ( "reliable",
        [
          QCheck_alcotest.to_alcotest reliable_zero_fault_identity;
          quick "seeded reproducible" test_reliable_seeded_reproducible;
          quick "recovers from loss" test_reliable_recovers_from_loss;
          quick "retry budget exhaustion" test_reliable_retry_budget_exhaustion;
          quick "crash partitions" test_reliable_crash_partitions;
        ] );
      ( "adaptive transport",
        [
          quick "rto_max validation" test_run_reliable_rto_max_validation;
          quick "reroute totality under loss" test_reroute_totality_under_loss;
          quick "reroute under cuts" test_reroute_under_cuts;
          quick "reroute rescues crashed subtrees" test_reroute_rescues_crashed_subtrees;
          quick "healthy links estimate quality 1" test_healthy_links_estimate_quality_one;
          quick "circuit events" test_adaptive_emits_circuit_events;
          quick "mean_reliable discipline" test_mean_reliable_discipline;
        ] );
      ( "mean makespan",
        [
          quick "seed determinism" test_mean_makespan_seed_determinism;
          quick "split streams" test_mean_makespan_split_streams;
          quick "uniform eps validation" test_noise_uniform_rejects_bad_eps;
        ] );
      ( "repair",
        [
          QCheck_alcotest.to_alcotest repair_zero_fault_identity;
          quick "reroutes orphans" test_repair_reroutes_orphans;
          quick "abandons without sources" test_repair_abandons_without_sources;
          quick "respects policy" test_repair_respects_policy;
        ] );
      ( "robustness",
        [
          quick "zero faults" test_robustness_zero_faults;
          quick "under loss" test_robustness_under_loss;
        ] );
      ( "recv_timeout",
        [
          quick "expires" test_recv_timeout_expires;
          quick "cancelled by delivery" test_recv_timeout_cancelled_by_delivery;
        ] );
    ]

let cluster_names =
  [| "Orsay-A"; "Orsay-B"; "IDPOT-A"; "IDPOT-B"; "IDPOT-C"; "Toulouse" |]

let cluster_sizes = [| 31; 29; 6; 1; 1; 20 |]

(* Table 3, microseconds.  Diagonal: intra-cluster latency (0 for the two
   single-machine clusters, which have no internal links). *)
let latency_matrix =
  [|
    [| 47.56; 62.10; 12181.52; 12187.24; 12197.49; 5210.99 |];
    [| 62.10; 47.92; 12181.52; 12198.03; 12195.22; 5211.47 |];
    [| 12181.52; 12181.52; 35.52; 60.08; 60.08; 5388.49 |];
    [| 12187.24; 12198.03; 60.08; 0.; 242.47; 5393.98 |];
    [| 12197.49; 12195.22; 60.08; 242.47; 0.; 5394.10 |];
    [| 5210.99; 5211.47; 5388.49; 5393.98; 5394.10; 27.53 |];
  |]

let inter_bandwidth_mb_s latency_us =
  if latency_us >= 10_000. then 1.3
  else if latency_us >= 1_000. then 4.
  else 50.

let intra_bandwidth_mb_s = 100.

let inter_g0_us = 50.
let intra_g0_us = 20.

let grid () =
  let n = Array.length cluster_sizes in
  let clusters =
    List.init n (fun i ->
        let intra_latency = if cluster_sizes.(i) = 1 then 10. else latency_matrix.(i).(i) in
        Cluster.v ~id:i ~name:cluster_names.(i) ~size:cluster_sizes.(i)
          ~intra:
            (Gridb_plogp.Params.linear ~latency:intra_latency ~g0:intra_g0_us
               ~bandwidth_mb_s:intra_bandwidth_mb_s))
  in
  let inter =
    Array.init n (fun i ->
        Array.init n (fun j ->
            let latency = latency_matrix.(i).(j) in
            let latency = if i = j then 10. else latency in
            Gridb_plogp.Params.linear ~latency ~g0:inter_g0_us
              ~bandwidth_mb_s:(inter_bandwidth_mb_s latency)))
  in
  Grid.v ~clusters ~inter

let root_cluster = 0

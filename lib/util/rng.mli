(** Deterministic pseudo-random number generation.

    The simulations of the paper average 10000 independent draws of grid
    parameters; reproducibility of a whole experiment therefore hinges on a
    seedable, splittable generator.  This module implements SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent statistical
    quality for simulation purposes, and O(1) splitting so that each
    iteration of an experiment can derive an independent stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed.  Equal seeds yield
    equal streams. *)

val split : t -> int -> t
(** [split t i] derives the [i]-th child stream of [t]'s current state —
    SplitMix64 stream derivation, pure in [(state, i)].  [t] is {e not}
    advanced: any number of workers may derive their streams from one
    shared base generator in any order and obtain bit-identical results.
    For a fixed parent state the map [i -> stream] is injective (the
    Stafford mix is a 64-bit bijection over seeds stepped by an odd
    gamma), so distinct indices never collide on a stream seed.
    @raise Invalid_argument if [i < 0]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)].
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p].  Always consumes exactly
    one draw, even for [p = 0.] or [p = 1.], so seeded streams stay aligned
    across fault-draw sites.  @raise Invalid_argument if [p] is outside
    [\[0, 1\]]. *)

val gaussian : ?mu:float -> ?sigma:float -> t -> float
(** Normal deviate via Box-Muller.  Defaults: [mu = 0.], [sigma = 1.]. *)

val lognormal : ?mu:float -> ?sigma:float -> t -> float
(** [exp (gaussian ~mu ~sigma t)]: multiplicative noise as observed on real
    network round-trips. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from Exp(lambda).
    @raise Invalid_argument if [lambda <= 0.]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

(* Tests for gridb_des: the event engine, noise models, broadcast plans,
   the plan executor and the scheduling-overhead model.  The central
   integration property: with noise off, the DES reproduces the analytic
   pLogP predictions exactly. *)

module Engine = Gridb_des.Engine
module Noise = Gridb_des.Noise
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Overhead = Gridb_sched.Overhead
module Machines = Gridb_topology.Machines
module Grid5000 = Gridb_topology.Grid5000
module Generators = Gridb_topology.Generators
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Heuristics = Gridb_sched.Heuristics
module Params = Gridb_plogp.Params
module Rng = Gridb_util.Rng

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

(* --- Engine ------------------------------------------------------------- *)

let test_engine_orders_events () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~time:5. (fun _ -> log := 5 :: !log);
  Engine.schedule e ~time:1. (fun _ -> log := 1 :: !log);
  Engine.schedule e ~time:3. (fun _ -> log := 3 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 3; 5 ] (List.rev !log);
  check_feq "clock at last event" 5. (Engine.now e);
  Alcotest.(check int) "processed" 3 (Engine.processed e)

let test_engine_fifo_for_ties () =
  let e = Engine.create () in
  let log = ref [] in
  List.iter
    (fun tag -> Engine.schedule e ~time:2. (fun _ -> log := tag :: !log))
    [ "a"; "b"; "c" ];
  Engine.run e;
  Alcotest.(check (list string)) "insertion order preserved" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_engine_cascading () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec spawn depth _engine =
    incr count;
    if depth > 0 then Engine.schedule_after e ~delay:1. (spawn (depth - 1))
  in
  Engine.schedule e ~time:0. (spawn 9);
  Engine.run e;
  Alcotest.(check int) "10 events" 10 !count;
  check_feq "clock advanced" 9. (Engine.now e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~time:4. (fun _ -> ());
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule: time in the past")
    (fun () -> Engine.schedule e ~time:1. (fun _ -> ()));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      Engine.schedule_after e ~delay:(-1.) (fun _ -> ()))

let test_engine_run_until () =
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule e ~time:t (fun _ -> fired := t :: !fired))
    [ 1.; 2.; 3.; 10. ];
  Engine.run_until e 5.;
  Alcotest.(check (list (float 0.0))) "only early events" [ 1.; 2.; 3. ] (List.rev !fired);
  Alcotest.(check int) "one pending" 1 (Engine.pending e);
  check_feq "clock at horizon" 5. (Engine.now e);
  Engine.run e;
  check_feq "late event still fires" 10. (Engine.now e)

(* --- Noise ------------------------------------------------------------- *)

let test_noise_exact () =
  let rng = Rng.create 1 in
  for _ = 1 to 10 do
    check_feq "exact is identity" 123.4 (Noise.apply Noise.Exact rng 123.4)
  done

let test_noise_positive =
  QCheck.Test.make ~name:"noise factors are positive" ~count:(Testutil.count 500) QCheck.(int_bound 1_000)
    (fun seed ->
      let rng = Rng.create seed in
      Noise.factor (Noise.Lognormal 0.3) rng > 0.
      && Noise.factor (Noise.Uniform 0.5) rng > 0.)

let test_noise_uniform_bounds () =
  let rng = Rng.create 2 in
  for _ = 1 to 500 do
    let f = Noise.factor (Noise.Uniform 0.1) rng in
    Alcotest.(check bool) "within band" true (f >= 0.9 && f <= 1.1)
  done;
  Alcotest.check_raises "eps out of range"
    (Invalid_argument "Noise.factor: Uniform eps outside [0, 1)") (fun () ->
      ignore (Noise.factor (Noise.Uniform 1.5) rng))

let test_noise_lognormal_centered () =
  let rng = Rng.create 3 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. log (Noise.factor (Noise.Lognormal 0.1) rng)
  done;
  Alcotest.(check bool) "median ~ 1 (mean log ~ 0)" true
    (Float.abs (!sum /. float_of_int n) < 0.005)

(* --- Plans ------------------------------------------------------------- *)

let machines () = Machines.expand (Grid5000.grid ())

let test_plan_validation () =
  Alcotest.check_raises "root has parent" (Invalid_argument "Plan.v: root has a parent")
    (fun () -> ignore (Plan.v ~root:0 ~children:[| [ 1 ]; [ 0 ] |]));
  Alcotest.check_raises "not spanning" (Invalid_argument "Plan.v: not a spanning tree")
    (fun () -> ignore (Plan.v ~root:0 ~children:[| []; [] |]));
  Alcotest.check_raises "duplicate child" (Invalid_argument "Plan.v: not a spanning tree")
    (fun () -> ignore (Plan.v ~root:0 ~children:[| [ 1; 1 ]; [] |]));
  let ok = Plan.v ~root:0 ~children:[| [ 1; 2 ]; []; [] |] in
  Alcotest.(check int) "size" 3 (Plan.size ok);
  Alcotest.(check int) "depth" 1 (Plan.depth ok)

let test_plan_binomial_ranks () =
  let m = machines () in
  let p = Plan.binomial_ranks m ~root:5 in
  Alcotest.(check int) "spans all ranks" 88 (Plan.size p);
  Alcotest.(check int) "rooted correctly" 5 p.Plan.root;
  Alcotest.(check int) "binomial depth for 88 ranks" 6 (Plan.depth p);
  let parents = Plan.parent_array p in
  Alcotest.(check int) "root parent is root" 5 parents.(5)

let test_plan_flat_ranks () =
  let m = machines () in
  let p = Plan.flat_ranks m ~root:0 in
  Alcotest.(check int) "depth 1" 1 (Plan.depth p);
  Alcotest.(check int) "87 children" 87 (List.length p.Plan.children.(0))

let test_plan_of_schedule_structure () =
  let m = machines () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 (Grid5000.grid ()) in
  let sched = Heuristics.run Heuristics.ecef_la inst in
  let p = Plan.of_cluster_schedule m sched in
  Alcotest.(check int) "spans ranks" 88 (Plan.size p);
  Alcotest.(check int) "rooted at coordinator 0" 0 p.Plan.root;
  (* Every coordinator's inter-cluster children precede its intra children:
     the first |inter| children of a relaying coordinator are coordinators. *)
  let coordinators = List.init 6 (Machines.coordinator m) in
  List.iter
    (fun e ->
      let src_coord = Machines.coordinator m e.Schedule.src in
      let dst_coord = Machines.coordinator m e.Schedule.dst in
      Alcotest.(check bool)
        (Printf.sprintf "coordinator %d forwards to coordinator %d" src_coord dst_coord)
        true
        (List.mem dst_coord p.Plan.children.(src_coord));
      Alcotest.(check bool) "dst is a coordinator" true (List.mem dst_coord coordinators))
    sched.Schedule.events

let test_plan_of_flat_schedule () =
  let m = machines () in
  let inst = Gridb_sched.Instance.of_machines ~root:0 ~msg:1_000_000 m in
  let schedule = Heuristics.run Heuristics.ecef inst in
  let plan = Plan.of_flat_schedule m schedule in
  Alcotest.(check int) "spans all machines" 88 (Plan.size plan);
  (* the DES agrees with the flat schedule's analytic makespan (T = 0) *)
  let r = Exec.run ~msg:1_000_000 m plan in
  check_feq "DES = analytic" (Schedule.makespan inst schedule) r.Exec.makespan

let plan_of_schedule_spans_random =
  QCheck.Test.make ~name:"hierarchical plans span random grids" ~count:(Testutil.count 40)
    QCheck.(pair (int_range 1 8) (int_bound 1_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
      let m = Machines.expand grid in
      let inst = Instance.of_grid ~root:0 ~msg:500_000 grid in
      List.for_all
        (fun h ->
          let p = Plan.of_cluster_schedule m (Heuristics.run h inst) in
          Plan.size p = Machines.count m)
        Heuristics.all)

(* --- Exec: exactness against the analytic models ------------------------ *)

let test_exec_matches_schedule_makespan () =
  let grid = Grid5000.grid () in
  let m = Machines.expand grid in
  List.iter
    (fun msg ->
      let inst = Instance.of_grid ~root:0 ~msg grid in
      List.iter
        (fun h ->
          let sched = Heuristics.run h inst in
          let predicted = Schedule.makespan inst sched in
          let plan = Plan.of_cluster_schedule m sched in
          let r = Exec.run ~msg m plan in
          check_feq ~eps:1e-9
            (Printf.sprintf "%s at %d B" h.Heuristics.name msg)
            predicted r.Exec.makespan)
        Heuristics.all)
    [ 1_000; 1_000_000; 4_000_000 ]

let test_exec_matches_tree_cost () =
  (* A single homogeneous cluster: the DES over the binomial plan equals the
     closed-form Cost.broadcast_time. *)
  let params = Params.linear ~latency:50. ~g0:20. ~bandwidth_mb_s:100. in
  let grid = Generators.homogeneous ~n:1 ~cluster_size:24 ~inter:params ~intra:params in
  let m = Machines.expand grid in
  let plan = Plan.binomial_ranks m ~root:0 in
  let msg = 100_000 in
  let r = Exec.run ~msg m plan in
  check_feq "matches Cost model"
    (Gridb_collectives.Cost.broadcast_time ~params ~size:24 ~msg ())
    r.Exec.makespan

let test_exec_transmissions_count () =
  let m = machines () in
  let plan = Plan.binomial_ranks m ~root:0 in
  let r = Exec.run m plan in
  Alcotest.(check int) "n-1 transmissions" 87 r.Exec.transmissions;
  Alcotest.(check bool) "all ranks reached" true
    (Array.for_all (fun t -> not (Float.is_nan t)) r.Exec.arrival)

let test_exec_start_delay_shifts () =
  let m = machines () in
  let plan = Plan.binomial_ranks m ~root:0 in
  let base = (Exec.run m plan).Exec.makespan in
  let shifted = (Exec.run ~start_delay:1234. m plan).Exec.makespan in
  check_feq "uniform shift" (base +. 1234.) shifted

let test_exec_noise_perturbs_but_is_seeded () =
  let m = machines () in
  let plan = Plan.binomial_ranks m ~root:0 in
  let noisy seed =
    (Exec.run ~noise:(Noise.Lognormal 0.1) ~rng:(Rng.create seed) m plan).Exec.makespan
  in
  let a = noisy 5 and b = noisy 5 and c = noisy 6 in
  check_feq "same seed same result" a b;
  Alcotest.(check bool) "different seed differs" true (not (feq a c));
  let exact = (Exec.run m plan).Exec.makespan in
  Alcotest.(check bool) "noise changes the result" true (not (feq a exact))

let test_exec_mean_makespan_reasonable () =
  let m = machines () in
  let plan = Plan.binomial_ranks m ~root:0 in
  let exact = (Exec.run m plan).Exec.makespan in
  let mean = Exec.mean_makespan ~noise:(Noise.Lognormal 0.05) ~repetitions:30 ~seed:1 m plan in
  Alcotest.(check bool) "mean within 10% of exact" true
    (Float.abs (mean -. exact) /. exact < 0.1)

let exec_arrival_monotone_along_tree =
  QCheck.Test.make ~name:"children always arrive after parents" ~count:(Testutil.count 30)
    QCheck.(pair (int_range 1 6) (int_bound 1_000))
    (fun (n, seed) ->
      let rng = Rng.create seed in
      let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
      let m = Machines.expand grid in
      let plan = Plan.binomial_ranks m ~root:0 in
      let r = Exec.run ~noise:(Noise.Lognormal 0.2) ~rng m plan in
      let parents = Plan.parent_array plan in
      let ok = ref true in
      Array.iteri
        (fun rank parent ->
          if rank <> plan.Plan.root then
            ok := !ok && r.Exec.arrival.(rank) > r.Exec.arrival.(parent))
        parents;
      !ok)

(* --- Trace ------------------------------------------------------------ *)

let test_trace_recorded_on_request () =
  let m = machines () in
  let plan = Plan.binomial_ranks m ~root:0 in
  let quiet = Exec.run m plan in
  Alcotest.(check int) "no trace by default" 0 (List.length quiet.Exec.trace);
  let r = Exec.run ~record_trace:true m plan in
  Alcotest.(check int) "one record per transmission" r.Exec.transmissions
    (List.length r.Exec.trace);
  Alcotest.(check int) "87 transmissions" 87 (List.length r.Exec.trace)

let test_trace_flat_root_busiest () =
  let m = machines () in
  let plan = Plan.flat_ranks m ~root:0 in
  let r = Exec.run ~record_trace:true m plan in
  (match Gridb_des.Trace.busiest_sender r.Exec.trace with
  | Some (rank, busy) ->
      Alcotest.(check int) "root carries all traffic" 0 rank;
      Alcotest.(check bool) "busy the whole run" true (busy > 0.9 *. r.Exec.makespan)
  | None -> Alcotest.fail "no senders");
  Alcotest.(check int) "only one sender" 1
    (List.length (Gridb_des.Trace.sender_busy_time r.Exec.trace))

let test_trace_critical_path () =
  let m = machines () in
  let plan = Plan.binomial_ranks m ~root:0 in
  let r = Exec.run ~record_trace:true m plan in
  let path = Gridb_des.Trace.critical_path r.Exec.trace in
  Alcotest.(check bool) "non-empty" true (path <> []);
  (* path starts at the root and ends at the latest arrival *)
  let first = List.hd path and last = List.nth path (List.length path - 1) in
  Alcotest.(check int) "starts at root" 0 first.Gridb_des.Trace.src;
  check_feq "ends at makespan" r.Exec.makespan last.Gridb_des.Trace.arrival;
  (* hops chain: receiver of hop i = sender of hop i+1 *)
  let rec chained = function
    | a :: (b :: _ as rest) ->
        a.Gridb_des.Trace.dst = b.Gridb_des.Trace.src && chained rest
    | _ -> true
  in
  Alcotest.(check bool) "chained" true (chained path)

let test_trace_total_bytes () =
  let m = machines () in
  let plan = Plan.binomial_ranks m ~root:0 in
  let r = Exec.run ~record_trace:true ~msg:1_000 m plan in
  Alcotest.(check int) "87 KB moved" 87_000 (Gridb_des.Trace.total_bytes r.Exec.trace)

(* --- Overhead ------------------------------------------------------------ *)

let test_overhead_shapes () =
  Alcotest.(check bool) "flat linear" true (Overhead.evaluations ~n:50 "FlatTree" = 50.);
  let ecef = Overhead.evaluations ~n:20 "ECEF" in
  let la = Overhead.evaluations ~n:20 "ECEF-LA" in
  Alcotest.(check bool) "lookahead costs more" true (la > ecef);
  Alcotest.(check bool) "LAT like LA" true
    (Overhead.evaluations ~n:20 "ECEF-LAT" = la);
  (* pair scans: sum r(n-r) for n=4 -> 3+4+3 = 10 *)
  Alcotest.(check bool) "pair scan n=4" true (Overhead.evaluations ~n:4 "ECEF" = 10.);
  (* lookahead: sum b(b-1) for n=4 -> 3*2 + 2*1 + 1*0 = 8 on top of the scan *)
  Alcotest.(check bool) "lookahead n=4" true (Overhead.evaluations ~n:4 "ECEF-LA" = 18.);
  (* parameterised names resolve through the policy descriptor instead of
     falling into the bare-scan bucket *)
  Alcotest.(check bool) "ECEF-LA<...> charged for lookahead" true
    (Overhead.evaluations ~n:20 "ECEF-LA<min-edge+T>" = la);
  let mixed = "Mixed<ECEF-LA|ECEF-LAT@10>" in
  Alcotest.(check bool) "mixed small branch" true
    (Overhead.evaluations ~n:8 mixed = Overhead.evaluations ~n:8 "ECEF-LA");
  Alcotest.(check bool) "mixed large branch" true
    (Overhead.evaluations ~n:20 mixed = Overhead.evaluations ~n:20 "ECEF-LAT");
  check_feq "cost scales" (2. *. Overhead.cost_us ~per_evaluation_us:1. ~n:10 "ECEF")
    (Overhead.cost_us ~per_evaluation_us:2. ~n:10 "ECEF")

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "des"
    [
      ( "engine",
        [
          quick "orders events" test_engine_orders_events;
          quick "fifo ties" test_engine_fifo_for_ties;
          quick "cascading" test_engine_cascading;
          quick "rejects past" test_engine_rejects_past;
          quick "run_until" test_engine_run_until;
        ] );
      ( "noise",
        [
          quick "exact identity" test_noise_exact;
          QCheck_alcotest.to_alcotest test_noise_positive;
          quick "uniform bounds" test_noise_uniform_bounds;
          quick "lognormal centered" test_noise_lognormal_centered;
        ] );
      ( "plan",
        [
          quick "validation" test_plan_validation;
          quick "binomial ranks" test_plan_binomial_ranks;
          quick "flat ranks" test_plan_flat_ranks;
          quick "of schedule structure" test_plan_of_schedule_structure;
          quick "of flat schedule" test_plan_of_flat_schedule;
          QCheck_alcotest.to_alcotest plan_of_schedule_spans_random;
        ] );
      ( "exec",
        [
          quick "matches schedule makespan" test_exec_matches_schedule_makespan;
          quick "matches tree cost" test_exec_matches_tree_cost;
          quick "transmission count" test_exec_transmissions_count;
          quick "start delay" test_exec_start_delay_shifts;
          quick "seeded noise" test_exec_noise_perturbs_but_is_seeded;
          quick "mean makespan" test_exec_mean_makespan_reasonable;
          QCheck_alcotest.to_alcotest exec_arrival_monotone_along_tree;
        ] );
      ( "trace",
        [
          quick "recorded on request" test_trace_recorded_on_request;
          quick "flat root busiest" test_trace_flat_root_busiest;
          quick "critical path" test_trace_critical_path;
          quick "total bytes" test_trace_total_bytes;
        ] );
      ("overhead", [ quick "shapes" test_overhead_shapes ]);
    ]

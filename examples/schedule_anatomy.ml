(* Schedule anatomy: the analysis toolkit around one broadcast schedule —
   Gantt timeline, lower bounds, brute-force optimum, local search,
   simulated annealing, genetic search and the DES critical path.

   Run with: dune exec examples/schedule_anatomy.exe *)

module Sched = Gridb_sched
module Topology = Gridb_topology
module Des = Gridb_des

let seconds us = us /. 1e6

let () =
  let grid = Topology.Grid5000.grid () in
  let inst = Sched.Instance.of_grid ~root:0 ~msg:1_000_000 grid in

  (* Start from the worst schedule the paper considers. *)
  let flat = Sched.Heuristics.(run flat_tree) inst in
  Printf.printf "flat tree makespan:      %.4f s\n" (seconds (Sched.Schedule.makespan inst flat));
  Sched.Gantt.print ~width:60 inst flat;

  (* Three improvers, one floor. *)
  let improved = Sched.Refine.improve inst flat in
  Printf.printf "\nafter hill climbing:     %.4f s\n"
    (seconds (Sched.Schedule.makespan inst improved));
  let annealed = Sched.Refine.anneal ~seed:1 inst flat in
  Printf.printf "after annealing:         %.4f s\n"
    (seconds (Sched.Schedule.makespan inst annealed));
  let genetic = Sched.Genetic.search ~seeds:[ flat ] inst in
  Printf.printf "after genetic search:    %.4f s\n"
    (seconds (Sched.Schedule.makespan inst genetic));
  let optimal = Sched.Optimal.schedule inst in
  Printf.printf "brute-force optimum:     %.4f s\n"
    (seconds (Sched.Schedule.makespan inst optimal));
  Printf.printf "analytic lower bound:    %.4f s  (gap ratio of the optimum: %.3f)\n"
    (seconds (Sched.Bounds.combined inst))
    (Sched.Bounds.gap_ratio inst (Sched.Schedule.makespan inst optimal));

  Printf.printf "\noptimal schedule timeline:\n";
  Sched.Gantt.print ~width:60 inst optimal;

  (* Execute the optimum on the simulator and show its critical path. *)
  let machines = Topology.Machines.expand grid in
  let plan = Des.Plan.of_cluster_schedule machines optimal in
  let r = Des.Exec.run ~record_trace:true ~msg:1_000_000 machines plan in
  Printf.printf "\nDES makespan:            %.4f s over %d transmissions\n"
    (seconds r.Des.Exec.makespan) r.Des.Exec.transmissions;
  print_endline "critical path (rank -> rank, arrival):";
  List.iter
    (fun t ->
      Printf.printf "  %3d -> %-3d at %.4f s\n" t.Des.Trace.src t.Des.Trace.dst
        (seconds t.Des.Trace.arrival))
    (Des.Trace.critical_path r.Des.Exec.trace);
  match Des.Trace.busiest_sender r.Des.Exec.trace with
  | Some (rank, busy) ->
      Printf.printf "busiest sender: rank %d (NIC busy %.4f s)\n" rank (seconds busy)
  | None -> ()

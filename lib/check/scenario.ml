module Rng = Gridb_util.Rng

type t = {
  seed : int;
  n : int;
  msg : int;
  root : int;
  policy : string;
  transport : string;
  faults : string;
  dynamics : string;
}

let equal (a : t) (b : t) = a = b

let format_tag = "gridsched-check/1"

(* --- generation -------------------------------------------------------- *)

(* The registry's own name table plus one Mixed form, so the menu can
   never drift from what {!Gridb_sched.Policy.by_name} resolves.  The
   Mixed entry stays last: the menu's order and length feed [Rng.pick],
   and this layout reproduces the historical scenario stream exactly. *)
let policy_menu =
  Array.of_list (Gridb_sched.Policy.names @ [ "Mixed<ECEF-LA|ECEF-LAT@10>" ])

let transports = [| "fixed"; "adaptive"; "adaptive,reroute" |]

(* "none" with probability 1/2, so both branches of the pipeline stay hot. *)
let fault_menu =
  [|
    "none"; "none"; "none"; "none";
    "loss=0.05"; "loss=0.2"; "crash=2e-8";
    "loss=0.1,degrade=1e-7,degrade-factor=4";
  |]

(* Same shape as the fault menu: "none" half the time so the static
   pipeline stays the hot path, then drift-only, churn-only and combined
   cells, with rates sized for the ~1e6-us horizons of Table-2 grids. *)
let dynamics_menu =
  [|
    "none"; "none"; "none"; "none";
    "drift=2e-5,load-off=0";
    "drift=1e-4,drift-sigma=0.5";
    "churn=1e-7";
    "drift=2e-5,churn=5e-8,recluster=2e5";
  |]

let sizes = [| 10_000; 65_536; 250_000; 1_000_000 |]

let generate rng =
  let n = Rng.int_in rng 2 8 in
  {
    seed = Rng.int rng 1_000_000;
    n;
    msg = Rng.pick rng sizes;
    root = Rng.int rng n;
    policy = Rng.pick rng policy_menu;
    transport = Rng.pick rng transports;
    faults = Rng.pick rng fault_menu;
    dynamics = Rng.pick rng dynamics_menu;
  }

(* --- derived pipeline inputs ------------------------------------------- *)

(* Distinct xor tags keep the topology, fault and permutation streams
   independent while everything still derives from the one recorded seed. *)
let grid_seed t = t.seed lxor 0x67726964 (* "grid" *)
let fault_seed t = t.seed lxor 0x666c74 (* "flt" *)
let perm_seed t = t.seed lxor 0x7065726d (* "perm" *)
let dyn_seed t = t.seed lxor 0x64796e (* "dyn" *)
let service_seed t = t.seed lxor 0x737663 (* "svc" *)
let chaos_seed t = t.seed lxor 0x63686173 (* "chas" *)
let opt_seed t = t.seed lxor 0x6f7074 (* "opt" *)

let grid t =
  let spec =
    { Gridb_topology.Generators.default_random_spec with cluster_size = (1, 8) }
  in
  Gridb_topology.Generators.uniform_random
    ~rng:(Rng.create (grid_seed t))
    ~n:t.n spec

let policy t =
  match Gridb_sched.Policy.by_name t.policy with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "unknown policy %S" t.policy)

let transport t = Gridb_des.Exec.transport_of_string t.transport
let faults_spec t = Gridb_des.Faults.of_string t.faults
let dynamics_spec t = Gridb_des.Dynamics.of_string t.dynamics

(* --- codec ------------------------------------------------------------- *)

let add_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Printf.bprintf buf "\\u%04x" (Char.code c)
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_json ?(extra = []) t =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"format\":%S" format_tag;
  Printf.bprintf buf ",\"seed\":%d,\"n\":%d,\"msg\":%d,\"root\":%d" t.seed t.n
    t.msg t.root;
  let str k v =
    Printf.bprintf buf ",%S:" k;
    add_string buf v
  in
  str "policy" t.policy;
  str "transport" t.transport;
  str "faults" t.faults;
  str "dynamics" t.dynamics;
  List.iter (fun (k, v) -> str k v) extra;
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_json t)

type scalar = Int of int | Float of float | Str of string | Bool of bool

exception Bad of string

(* Same flat one-object grammar as [Gridb_obs.Event]'s reader: string,
   number and boolean values only, no nesting. *)
let parse_fields line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match line.[!pos] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = line.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "truncated escape");
        let e = line.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | '/' -> Buffer.add_char buf '/'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub line !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "bad \\u escape"
            in
            if code > 0xff then fail "\\u escape beyond latin-1"
            else Buffer.add_char buf (Char.chr code)
        | _ -> fail "unknown escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_scalar () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some ('t' | 'f') ->
        if n - !pos >= 4 && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else if n - !pos >= 5 && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "bad literal"
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && match line.[!pos] with ',' | '}' | ' ' | '\t' -> false | _ -> true
        do
          incr pos
        done;
        let tok = String.sub line start (!pos - start) in
        if tok = "" then fail "empty value";
        (match int_of_string_opt tok with
        | Some i when tok <> "-0" -> Int i
        | _ -> (
            match float_of_string_opt tok with
            | Some f -> Float f
            | None -> fail (Printf.sprintf "bad number %S" tok)))
    | None -> fail "missing value"
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  if peek () = Some '}' then incr pos
  else begin
    let continue = ref true in
    while !continue do
      let key =
        skip_ws ();
        parse_string ()
      in
      expect ':';
      let v = parse_scalar () in
      fields := (key, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' -> incr pos
      | Some '}' ->
          incr pos;
          continue := false
      | _ -> fail "expected , or }"
    done
  end;
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  List.rev !fields

let of_json line =
  match parse_fields (String.trim line) with
  | exception Bad msg -> Error msg
  | fields -> (
      let geti k =
        match List.assoc_opt k fields with
        | Some (Int i) -> i
        | Some _ -> raise (Bad (Printf.sprintf "field %S: expected int" k))
        | None -> raise (Bad (Printf.sprintf "missing field %S" k))
      in
      let gets k =
        match List.assoc_opt k fields with
        | Some (Str s) -> s
        | Some _ -> raise (Bad (Printf.sprintf "field %S: expected string" k))
        | None -> raise (Bad (Printf.sprintf "missing field %S" k))
      in
      (* Optional so reproducers written before the field existed still
         load; a pre-dynamics scenario is one with no dynamics. *)
      let gets_opt k ~default =
        match List.assoc_opt k fields with
        | Some (Str s) -> s
        | Some _ -> raise (Bad (Printf.sprintf "field %S: expected string" k))
        | None -> default
      in
      try
        let fmt = gets "format" in
        if fmt <> format_tag then
          Error (Printf.sprintf "unsupported format %S (want %S)" fmt format_tag)
        else
          let t =
            {
              seed = geti "seed";
              n = geti "n";
              msg = geti "msg";
              root = geti "root";
              policy = gets "policy";
              transport = gets "transport";
              faults = gets "faults";
              dynamics = gets_opt "dynamics" ~default:"none";
            }
          in
          if t.n < 1 then Error "n must be >= 1"
          else if t.msg < 1 then Error "msg must be >= 1"
          else if t.root < 0 || t.root >= t.n then
            Error (Printf.sprintf "root %d out of range for n = %d" t.root t.n)
          else Ok t
      with Bad msg -> Error msg)

let string_field ~key line =
  match parse_fields (String.trim line) with
  | exception Bad _ -> None
  | fields -> (
      match List.assoc_opt key fields with Some (Str s) -> Some s | _ -> None)

(* --- shrinking --------------------------------------------------------- *)

let shrink_candidates t =
  let clamp_root n root = min root (n - 1) in
  let candidates =
    [
      { t with dynamics = "none" };
      { t with faults = "none" };
      { t with transport = "fixed" };
      { t with policy = "FlatTree" };
      { t with root = 0 };
      { t with n = 2; root = clamp_root 2 t.root };
      { t with n = t.n - 1; root = clamp_root (t.n - 1) t.root };
      { t with msg = 10_000 };
      { t with seed = 0 };
    ]
  in
  List.filter (fun c -> c.n >= 2 && not (equal c t)) candidates

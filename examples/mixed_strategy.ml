(* The mixed strategy of Section 6: "use performance-oriented heuristics
   like ECEF or ECEF-LA when the number of clusters is reduced, and the
   ECEF-LAT technique for grid systems with more clusters."

   This example reproduces the reasoning with a quick hit-rate scan and
   shows the mixed dispatcher keeping the best of both regimes.

   Run with: dune exec examples/mixed_strategy.exe *)

module Sched = Gridb_sched

let () =
  let mixed = Sched.Mixed.strategy () in
  let contenders = [ Sched.Heuristics.ecef_la; Sched.Heuristics.ecef_lat_max; mixed ] in
  let iterations = 1_500 in
  Printf.printf "hit rate against the global minimum (%d draws/point, %s model):\n\n"
    iterations "overlapped";
  Printf.printf "%8s" "clusters";
  List.iter (fun h -> Printf.printf "  %22s" h.Sched.Heuristics.name) contenders;
  print_newline ();
  List.iter
    (fun n ->
      let rng = Gridb_util.Rng.create (100 + n) in
      let outcomes =
        Sched.Hit_rate.run ~model:Sched.Schedule.Overlapped ~rng ~iterations ~n
          Sched.Instance.table2_ranges contenders
      in
      Printf.printf "%8d" n;
      List.iter
        (fun o ->
          Printf.printf "  %21.1f%%" (100. *. Sched.Hit_rate.hit_fraction o))
        outcomes;
      print_newline ())
    [ 4; 8; 12; 20; 32; 48 ];
  print_newline ();
  Printf.printf
    "The dispatcher switches heuristics at %d clusters (the paper's suggestion);\n"
    Sched.Mixed.default_threshold;
  print_endline "by construction its row matches ECEF-LA up to the threshold and ECEF-LAT";
  print_endline "beyond it — pick the threshold for your regime from a scan like this one."

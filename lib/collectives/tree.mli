(** Broadcast tree shapes over [n] homogeneous nodes.

    Intra-cluster broadcasts in the paper use binomial trees ("intra-cluster
    communications benefit from efficient strategies like binomial trees");
    the alternative shapes are provided for the ablation benches and the
    multilevel extension.  Nodes are numbered [0 .. n-1]; node 0 is the
    root. *)

type t = { node : int; children : t list }

val leaf : int -> t

val binomial : int -> t
(** Classic binomial broadcast tree: in round [r] every node that holds the
    message sends to the peer [2^r] away.  Root sends to nodes
    [1, 2, 4, 8, ...]; subtree sizes halve.  @raise Invalid_argument if
    [n < 1]. *)

val flat : int -> t
(** Root sends to every other node sequentially. *)

val chain : int -> t
(** Linear pipeline: 0 -> 1 -> 2 -> ... *)

val binary : int -> t
(** Complete binary tree in level order (node [i] has children [2i+1],
    [2i+2]). *)

val kary : k:int -> int -> t
(** Complete [k]-ary tree in level order.  @raise Invalid_argument if
    [k < 1]. *)

val size : t -> int
(** Number of nodes in the tree. *)

val depth : t -> int
(** Edges on the longest root-to-leaf path; 0 for a leaf. *)

val nodes : t -> int list
(** Preorder enumeration. *)

val max_out_degree : t -> int

val is_spanning : n:int -> t -> bool
(** True iff the tree contains each of [0 .. n-1] exactly once. *)

val pp : Format.formatter -> t -> unit

type shape = Binomial | Flat | Chain | Binary | Kary of int

val build : shape -> int -> t
val shape_name : shape -> string
val all_shapes : shape list
(** [Binomial; Flat; Chain; Binary; Kary 4] — the set the benches sweep. *)

(* The full methodology chain of the paper's Section 7:

     measure an 88x88 machine latency matrix (synthesised here with jitter)
     -> detect logical homogeneous clusters (Lowekamp, rho = 30%)
     -> abstract the matrix into a cluster-level grid
     -> schedule a broadcast on the detected topology.

   The detection must recover Table 3's map: Orsay split in two (their
   mutual 62 us exceeds the 30% band around 47.5 us), IDPOT split in three
   (the 242 us pair), Toulouse intact.

   Run with: dune exec examples/cluster_detection.exe *)

module Topology = Gridb_topology
module Clustering = Gridb_clustering
module Sched = Gridb_sched

let () =
  (* Ground truth: the Table 3 grid, expanded to machines, plus measurement
     jitter. *)
  let truth = Topology.Grid5000.grid () in
  let machines = Topology.Machines.expand truth in
  let rng = Gridb_util.Rng.create 7 in
  let matrix = Topology.Machines.latency_matrix ~rng ~jitter_sigma:0.03 machines in
  Printf.printf "synthesised %dx%d latency matrix (3%% lognormal jitter)\n"
    (Array.length matrix) (Array.length matrix);

  (* Detect logical clusters. *)
  let partition = Clustering.Lowekamp.detect ~rho:0.30 matrix in
  Printf.printf "detected %d logical clusters, sizes [%s]\n"
    (Clustering.Partition.count partition)
    (String.concat ";"
       (Array.to_list (Array.map string_of_int (Clustering.Partition.sizes partition))));
  let reference =
    Clustering.Partition.of_assignment
      (Array.init (Topology.Machines.count machines) (fun r ->
           (Topology.Machines.machine machines r).Topology.Machines.cluster))
  in
  Printf.printf "agreement with the paper's map (Rand index): %.4f\n"
    (Clustering.Partition.rand_index partition reference);
  Printf.printf "homogeneity (mean max/min internal latency): %.3f\n"
    (Clustering.Lowekamp.partition_quality matrix partition);

  (* Sensitivity: the paper's rho = 30% is a sweet spot. *)
  print_newline ();
  print_endline "tolerance sensitivity:";
  List.iter
    (fun rho ->
      let p = Clustering.Lowekamp.detect ~rho matrix in
      Printf.printf "  rho = %3.0f%% -> %2d clusters (Rand %.3f)\n" (100. *. rho)
        (Clustering.Partition.count p)
        (Clustering.Partition.rand_index p reference))
    [ 0.05; 0.15; 0.30; 0.60; 2.0 ];

  (* Abstract and schedule on what was detected. *)
  let detected_grid = Clustering.Abstraction.grid_of_matrix matrix partition in
  let inst = Sched.Instance.of_grid ~root:0 ~msg:1_000_000 detected_grid in
  print_newline ();
  print_endline "broadcast makespans on the detected topology (1 MB):";
  List.iter
    (fun h ->
      Format.printf "  %-10s %a@." h.Sched.Heuristics.name Gridb_util.Units.pp_time
        (Sched.Heuristics.makespan h inst))
    Sched.Heuristics.all

let render ?(model = Schedule.After_sends) ?(width = 72) inst (s : Schedule.t) =
  if width < 10 then invalid_arg "Gantt.render: width < 10";
  let n = s.Schedule.n in
  let completions = Schedule.completion_times ~model inst s in
  let makespan = Array.fold_left Float.max 1e-9 completions in
  let column t =
    let c = int_of_float (t /. makespan *. float_of_int width) in
    min (width - 1) (max 0 c)
  in
  let rows = Array.init n (fun _ -> Bytes.make width ' ') in
  let fill row a b ch =
    (* paint [a, b) with ch; at least one cell when the interval is tiny *)
    let ca = column a and cb = max (column a + 1) (column b) in
    for c = ca to min (width - 1) (cb - 1) do
      Bytes.set rows.(row) c ch
    done
  in
  (* waiting phase *)
  for k = 0 to n - 1 do
    if k <> s.Schedule.root then fill k 0. s.Schedule.ready.(k) '.'
  done;
  (* transmissions *)
  List.iter
    (fun e -> fill e.Schedule.src e.Schedule.start e.Schedule.sender_free '>')
    s.Schedule.events;
  (* intra-cluster broadcast *)
  for k = 0 to n - 1 do
    let t = inst.Instance.intra.(k) in
    if t > 0. then begin
      let start =
        match model with
        | Schedule.After_sends -> s.Schedule.busy_until.(k)
        | Schedule.Overlapped -> s.Schedule.ready.(k)
      in
      fill k start (start +. t) '#'
    end
  done;
  let buf = Buffer.create ((width + 16) * (n + 3)) in
  Buffer.add_string buf
    (Printf.sprintf "schedule gantt (root %d, makespan %s)\n" s.Schedule.root
       (Gridb_util.Units.time_to_string makespan));
  for k = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "c%-3d |%s|\n" k (Bytes.to_string rows.(k)))
  done;
  Buffer.add_string buf
    (Printf.sprintf "      0%*s\n" width (Gridb_util.Units.time_to_string makespan));
  Buffer.add_string buf "      . waiting   > sending   # intra-cluster broadcast\n";
  Buffer.contents buf

let print ?model ?width inst s = print_string (render ?model ?width inst s)

let render_events ?(width = 72) events =
  if width < 10 then invalid_arg "Gantt.render_events: width < 10";
  (* Collect the per-rank busy intervals straight off the bus: each
     [Send_start]/[Send_end] pair is one NIC seizure of the sender. *)
  let open_start : (int * int, float * bool) Hashtbl.t = Hashtbl.create 64 in
  let intervals = ref [] in
  (* (rank, start, stop, glyph) *)
  let horizon = ref 1e-9 in
  let max_rank = ref 0 in
  List.iter
    (fun (e : Gridb_obs.Event.t) ->
      match Gridb_obs.Event.untag e with
      | Send_start { src; dst; time; try_no; _ } ->
          max_rank := max !max_rank (max src dst);
          Hashtbl.replace open_start (src, dst) (time, try_no > 0)
      | Send_end { src; dst; time; arrival } -> (
          horizon := Float.max !horizon arrival;
          match Hashtbl.find_opt open_start (src, dst) with
          | Some (start, retry) ->
              Hashtbl.remove open_start (src, dst);
              intervals := (src, start, time, if retry then 'r' else '>') :: !intervals
          | None -> ())
      | Arrival { dst; time; _ } ->
          max_rank := max !max_rank dst;
          horizon := Float.max !horizon time
      | _ -> ())
    events;
  let n = !max_rank + 1 in
  let makespan = !horizon in
  let column t =
    let c = int_of_float (t /. makespan *. float_of_int width) in
    min (width - 1) (max 0 c)
  in
  let rows = Array.init n (fun _ -> Bytes.make width ' ') in
  List.iter
    (fun (rank, a, b, ch) ->
      let ca = column a and cb = max (column a + 1) (column b) in
      for c = ca to min (width - 1) (cb - 1) do
        Bytes.set rows.(rank) c ch
      done)
    (List.rev !intervals);
  List.iter
    (fun (e : Gridb_obs.Event.t) ->
      match e with
      | Arrival { dst; time; _ } -> Bytes.set rows.(dst) (column time) '*'
      | _ -> ())
    events;
  let buf = Buffer.create ((width + 16) * (n + 3)) in
  Buffer.add_string buf
    (Printf.sprintf "event gantt (makespan %s)\n"
       (Gridb_util.Units.time_to_string makespan));
  for k = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "r%-3d |%s|\n" k (Bytes.to_string rows.(k)))
  done;
  Buffer.add_string buf
    (Printf.sprintf "      0%*s\n" width (Gridb_util.Units.time_to_string makespan));
  Buffer.add_string buf "      > sending   r retransmitting   * message arrival\n";
  Buffer.contents buf

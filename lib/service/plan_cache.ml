module Fingerprint = Gridb_topology.Fingerprint
module Adaptive = Gridb_des.Adaptive
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type key = {
  fingerprint : Fingerprint.t;
  root : int;
  bucket : int;
  policy : string;
}

let bucket_of_size msg =
  if msg < 0 then invalid_arg "Plan_cache.bucket_of_size: negative size";
  let rec up c = if c >= msg then c else up (2 * c) in
  up 64

let key ~fingerprint ~root ~msg ~policy =
  { fingerprint; root; bucket = bucket_of_size msg; policy }

let key_string k =
  Printf.sprintf "%s/fp=%s/root=%d/class=%d" k.policy
    (Fingerprint.to_string k.fingerprint)
    k.root k.bucket

type entry = {
  schedule : Gridb_sched.Schedule.t;
  (* Flattened n*n quality matrix at plan time; [None] when the entry was
     planned without a live estimator (nominal conditions, quality 1.). *)
  snapshot : float array option;
}

type stats = { hits : int; misses : int; invalidations : int; entries : int }

type t = {
  tbl : (key, entry) Hashtbl.t;
  threshold : float;
  obs : Sink.t;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let default_threshold = 0.25

let create ?(threshold = default_threshold) ?(obs = Sink.null) () =
  if threshold <= 0. then invalid_arg "Plan_cache.create: threshold must be positive";
  { tbl = Hashtbl.create 64; threshold; obs; hits = 0; misses = 0; invalidations = 0 }

let snapshot_of est =
  let n = Adaptive.size est in
  Array.init (n * n) (fun i -> Adaptive.quality est ~src:(i / n) ~dst:(i mod n))

(* Mean absolute per-link quality drift between plan time and now.  A
   nominal snapshot ([None]) counts every link as quality 1.; incompatible
   estimator sizes diverge infinitely (a population change always
   invalidates). *)
let divergence ~snapshot est =
  let live = snapshot_of est in
  let m = Array.length live in
  if m = 0 then 0.
  else
    match snapshot with
    | Some snap when Array.length snap <> m -> infinity
    | _ ->
        let base i = match snapshot with Some snap -> snap.(i) | None -> 1. in
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. Float.abs (live.(i) -. base i)
        done;
        !acc /. float_of_int m

let publish_counters t =
  if Sink.enabled t.obs then begin
    Sink.emit t.obs (Event.Counter { name = "plan_cache.hits"; value = t.hits });
    Sink.emit t.obs (Event.Counter { name = "plan_cache.misses"; value = t.misses });
    Sink.emit t.obs
      (Event.Counter { name = "plan_cache.invalidations"; value = t.invalidations })
  end

let store t k ?estimator schedule =
  Hashtbl.replace t.tbl k { schedule; snapshot = Option.map snapshot_of estimator }

let miss t k ?estimator compute =
  t.misses <- t.misses + 1;
  if Sink.enabled t.obs then Sink.emit t.obs (Event.Cache_miss { key = key_string k });
  let s = compute () in
  store t k ?estimator s;
  publish_counters t;
  s

let lookup t ?estimator k ~compute =
  match Hashtbl.find_opt t.tbl k with
  | None -> (miss t k ?estimator compute, `Miss)
  | Some entry -> (
      match estimator with
      | Some est when divergence ~snapshot:entry.snapshot est > t.threshold ->
          Hashtbl.remove t.tbl k;
          t.invalidations <- t.invalidations + 1;
          (miss t k ?estimator compute, `Invalidated)
      | _ ->
          t.hits <- t.hits + 1;
          if Sink.enabled t.obs then
            Sink.emit t.obs (Event.Cache_hit { key = key_string k });
          publish_counters t;
          (entry.schedule, `Hit))

let find t k = Option.map (fun e -> e.schedule) (Hashtbl.find_opt t.tbl k)

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.tbl;
  }

let threshold t = t.threshold
let clear t = Hashtbl.reset t.tbl

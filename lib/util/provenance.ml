(* Provenance stamps for benchmark JSON: which commit, how many cores, how
   many jobs.  Reads the git metadata directly from the .git files so the
   benches need neither the unix library nor a subprocess. *)

let read_first_line path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> match input_line ic with exception End_of_file -> None | l -> Some (String.trim l))

let is_hex40 s = String.length s = 40 && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

(* Resolve "ref: refs/heads/x" through the loose ref file or packed-refs. *)
let resolve_ref git_dir name =
  match read_first_line (Filename.concat git_dir name) with
  | Some h when is_hex40 h -> Some h
  | _ -> (
      match open_in (Filename.concat git_dir "packed-refs") with
      | exception Sys_error _ -> None
      | ic ->
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () ->
              let rec scan () =
                match input_line ic with
                | exception End_of_file -> None
                | line ->
                    let line = String.trim line in
                    if
                      String.length line > 41
                      && line.[40] = ' '
                      && String.sub line 41 (String.length line - 41) = name
                      && is_hex40 (String.sub line 0 40)
                    then Some (String.sub line 0 40)
                    else scan ()
              in
              scan ()))

let rec find_git_dir dir =
  let candidate = Filename.concat dir ".git" in
  if Sys.file_exists candidate then
    if Sys.is_directory candidate then Some candidate
    else
      (* Worktree: ".git" is a file holding "gitdir: <path>". *)
      Option.bind (read_first_line candidate) (fun line ->
          let prefix = "gitdir:" in
          if String.length line > String.length prefix && String.sub line 0 (String.length prefix) = prefix then
            Some (String.trim (String.sub line (String.length prefix) (String.length line - String.length prefix)))
          else None)
  else
    let parent = Filename.dirname dir in
    if parent = dir then None else find_git_dir parent

let git_commit () =
  match find_git_dir (Sys.getcwd ()) with
  | None -> None
  | Some git_dir -> (
      match read_first_line (Filename.concat git_dir "HEAD") with
      | None -> None
      | Some head ->
          if is_hex40 head then Some head
          else
            let prefix = "ref:" in
            if String.length head > String.length prefix && String.sub head 0 (String.length prefix) = prefix then
              resolve_ref git_dir
                (String.trim (String.sub head (String.length prefix) (String.length head - String.length prefix)))
            else None)

let cores () = Domain.recommended_domain_count ()

let json_fields ~jobs =
  Printf.sprintf "\"git_commit\": %s, \"cores\": %d, \"jobs\": %d"
    (match git_commit () with Some h -> Printf.sprintf "%S" h | None -> "null")
    (cores ()) jobs

let default_threshold = 10

let strategy ?(threshold = default_threshold) ?(small = Heuristics.ecef_la)
    ?(large = Heuristics.ecef_lat_max) () =
  {
    Heuristics.name =
      Printf.sprintf "Mixed<%s|%s@%d>" small.Heuristics.name large.Heuristics.name threshold;
    select =
      (fun state ->
        let n = (State.instance state).Instance.n in
        if n <= threshold then small.Heuristics.select state
        else large.Heuristics.select state);
  }

module Rng = Gridb_util.Rng
module Instance = Gridb_sched.Instance
module Generators = Gridb_topology.Generators

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let multiplier =
  lazy
    (match Sys.getenv_opt "QCHECK_COUNT" with
    | None -> 1
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some m when m >= 1 -> m
        | _ -> 1))

let count base = max 1 (base * Lazy.force multiplier)

let random_instance ?(n = 6) seed =
  let rng = Rng.create seed in
  Instance.random ~rng ~n Instance.table2_ranges

let random_grid ?cluster_size ~n seed =
  let spec =
    match cluster_size with
    | None -> Generators.default_random_spec
    | Some range -> { Generators.default_random_spec with cluster_size = range }
  in
  Generators.uniform_random ~rng:(Rng.create seed) ~n spec

let corpus ?(n_range = (2, 12)) ~seed ~count () =
  let rng = Rng.create seed in
  let lo, hi = n_range in
  List.init count (fun _ ->
      let n = Rng.int_in rng lo hi in
      let instance_seed = Rng.int rng 1_000_000 in
      (instance_seed, random_instance ~n instance_seed))

(** Auto-tuned intra-cluster broadcast — the authors' companion work
    ("Fast tuning of intra-cluster collective communications",
    Euro PVM/MPI 2004), which the paper's Section 7 builds on: instead of
    hard-coding the binomial tree, predict every candidate strategy with
    the cluster's pLogP parameters and keep the fastest.

    Candidates: the tree shapes of {!Tree.all_shapes} plus the segmented
    chain pipeline of {!Pipeline} — the classic small-message /
    large-message trade-off (trees win while the per-message cost
    dominates; pipelining wins once bandwidth does). *)

type choice =
  | Tree_shape of Tree.shape
  | Segmented_chain of int  (** segment count *)

val choice_name : choice -> string

val best :
  params:Gridb_plogp.Params.t -> size:int -> msg:int -> unit -> choice * float
(** The fastest candidate and its predicted completion time (us).
    Clusters of size <= 1 cost 0 with a [Tree_shape Binomial] choice. *)

val broadcast_time :
  params:Gridb_plogp.Params.t -> size:int -> msg:int -> unit -> float
(** [snd (best ...)]: drop-in replacement for
    {!Cost.broadcast_time} that feeds auto-tuned [T_k] values to the
    grid-aware heuristics. *)

val crossover_size :
  ?lo:int -> ?hi:int -> params:Gridb_plogp.Params.t -> size:int -> unit -> int option
(** Smallest message size in [\[lo, hi\]] (defaults 1 B .. 16 MiB, probed at
    powers of two) at which the pipeline overtakes every tree — [None] if
    it never does in range.  Characterises a cluster the way the companion
    paper's tuning tables do. *)

let default_rho = 0.30

let check_matrix matrix =
  let n = Array.length matrix in
  if n = 0 then invalid_arg "Lowekamp: empty matrix";
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Lowekamp: non-square matrix")
    matrix;
  n

(* Union-find with per-component min/max internal latency and member list. *)
type component = {
  mutable parent : int;
  mutable rank : int;
  mutable lat_min : float;  (* infinity for singletons *)
  mutable lat_max : float;  (* neg_infinity for singletons *)
  mutable members : int list;
}

let rec find comps i =
  if comps.(i).parent = i then i
  else begin
    let root = find comps comps.(i).parent in
    comps.(i).parent <- root;
    root
  end

let detect ?(rho = default_rho) ?(require_locality = true) matrix =
  if rho < 0. then invalid_arg "Lowekamp.detect: negative rho";
  let n = check_matrix matrix in
  let comps =
    Array.init n (fun i ->
        { parent = i; rank = 0; lat_min = infinity; lat_max = neg_infinity; members = [ i ] })
  in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (matrix.(i).(j), i, j) :: !edges
    done
  done;
  let edges = List.sort compare !edges in
  let try_merge (_latency, i, j) =
    let ri = find comps i and rj = find comps j in
    if ri <> rj then begin
      let a = comps.(ri) and b = comps.(rj) in
      (* Cross-pair extremes between the two components. *)
      let cross_min = ref infinity and cross_max = ref neg_infinity in
      List.iter
        (fun x ->
          List.iter
            (fun y ->
              let l = matrix.(x).(y) in
              if l < !cross_min then cross_min := l;
              if l > !cross_max then cross_max := l)
            b.members)
        a.members;
      let merged_min = Float.min (Float.min a.lat_min b.lat_min) !cross_min in
      let merged_max = Float.max (Float.max a.lat_max b.lat_max) !cross_max in
      let local_enough () =
        if not require_locality then true
        else begin
          (* Internal links must not be slower than any link leaving the
             merged cluster. *)
          let union = a.members @ b.members in
          let inside = Array.make n false in
          List.iter (fun x -> inside.(x) <- true) union;
          let external_min = ref infinity in
          List.iter
            (fun x ->
              for y = 0 to n - 1 do
                if not inside.(y) && matrix.(x).(y) < !external_min then
                  external_min := matrix.(x).(y)
              done)
            union;
          merged_max <= (1. +. rho) *. !external_min
        end
      in
      if merged_max <= (1. +. rho) *. merged_min && local_enough () then begin
        let big, small = if a.rank >= b.rank then (ri, rj) else (rj, ri) in
        comps.(small).parent <- big;
        if comps.(big).rank = comps.(small).rank then comps.(big).rank <- comps.(big).rank + 1;
        comps.(big).lat_min <- merged_min;
        comps.(big).lat_max <- merged_max;
        comps.(big).members <- comps.(big).members @ comps.(small).members
      end
    end
  in
  List.iter try_merge edges;
  Partition.of_assignment (Array.init n (fun i -> find comps i))

let is_homogeneous ?(rho = default_rho) matrix members =
  ignore (check_matrix matrix);
  match members with
  | [] | [ _ ] -> true
  | _ ->
      let lats =
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j -> if i < j then Some matrix.(i).(j) else None)
              members)
          members
      in
      let lo = List.fold_left Float.min infinity lats in
      let hi = List.fold_left Float.max neg_infinity lats in
      hi <= (1. +. rho) *. lo

let partition_quality matrix partition =
  ignore (check_matrix matrix);
  let ratios = ref [] in
  for c = 0 to Partition.count partition - 1 do
    match Partition.members partition c with
    | [] | [ _ ] -> ()
    | members ->
        let lats =
          List.concat_map
            (fun i ->
              List.filter_map (fun j -> if i < j then Some matrix.(i).(j) else None) members)
            members
        in
        let lo = List.fold_left Float.min infinity lats in
        let hi = List.fold_left Float.max neg_infinity lats in
        ratios := (hi /. lo) :: !ratios
  done;
  match !ratios with
  | [] -> 1.
  | rs -> List.fold_left ( +. ) 0. rs /. float_of_int (List.length rs)

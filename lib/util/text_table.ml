type align = Left | Right

type row = Cells of string list | Separator

type t = {
  headers : string list;
  align : align list;
  mutable rows : row list;  (* reversed *)
  width : int;
}

let default_align n = Left :: List.init (max 0 (n - 1)) (fun _ -> Right)

let create ?align headers =
  let width = List.length headers in
  if width = 0 then invalid_arg "Text_table.create: no columns";
  let align =
    match align with
    | None -> default_align width
    | Some a ->
        if List.length a <> width then
          invalid_arg "Text_table.create: align width mismatch";
        a
  in
  { headers; align; rows = []; width }

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg "Text_table.add_row: row width mismatch";
  t.rows <- Cells cells :: t.rows

let add_float_row ?(fmt = Printf.sprintf "%.3f") t label xs =
  add_row t (label :: List.map fmt xs)

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let col_widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri
      (fun i c -> if String.length c > col_widths.(i) then col_widths.(i) <- String.length c)
      cells
  in
  List.iter (function Cells c -> update c | Separator -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad a w s =
    let fill = w - String.length s in
    match a with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad (List.nth t.align i) col_widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total =
    Array.fold_left ( + ) 0 col_widths + (2 * (Array.length col_widths - 1))
  in
  let rule () = Buffer.add_string buf (String.make total '-' ^ "\n") in
  emit_cells t.headers;
  rule ();
  List.iter (function Cells c -> emit_cells c | Separator -> rule ()) rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

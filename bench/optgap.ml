(* Optimality-gap scorecard: per (topology family, cluster count) cell,
   solve --reps seeded instances exactly (Gridb_opt.Exact) and score every
   heuristic's gap ratio makespan/optimal.  Results go to
   BENCH_optgap.json.

   Usage: dune exec bench/optgap.exe -- [--reps N] [--max-n N] [-o FILE]
                                        [--seed S] [--jobs J] [--assert-gaps]

   Homogeneous cells additionally cross-check Träff's closed-form optimum
   against the branch-and-bound certificate on every rep.  --assert-gaps
   (the CI optgap job runs with it) fails the run unless every gap ratio
   is >= 1 - 1e-9 (nothing beats a certified optimum), every homogeneous
   rep had Träff agree, and the FEF / ECEF-LAT mean gaps stay under the
   pinned ceilings below.  Every cell derives its seeds from
   (seed, topology, n, rep) alone, so Pool.mapi_stream keeps the sweep
   bit-identical at any --jobs. *)

module Optgap = Gridb_experiments.Optgap

(* Pinned on the seed-2006 sweep (reps 5, n <= 8): measured worst cell
   means were FEF 2.618 and ECEF-LAT 1.252 (both on random grids).
   Headroom covers seed sensitivity; a pruning bug that certifies a wrong
   "optimum" or a heuristic regression blows straight through these. *)
let fef_ceiling = 3.0
let ecef_lat_ceiling = 1.5

let sizes = [ 4; 6; 8 ]
let msg = 1_000_000
let eps = 1e-9

type hstat = { name : string; mean : float; max : float; hits : int }

type cell = {
  topology : string;
  n : int;
  reps : int;
  mean_bound_ratio : float;
  mean_expanded : float;
  stats : hstat list;
  traff_ok : int option;  (* homogeneous reps where Träff == exact *)
  min_gap : float;  (* smallest gap ratio seen anywhere in the cell *)
}

let bench_cell ~seed ~reps (tname, topo) n =
  let acc = Hashtbl.create 8 in
  let order = ref [] in
  let bound_ratio = ref 0. and expanded = ref 0. in
  let traff_ok = ref 0 and min_gap = ref infinity in
  for rep = 0 to reps - 1 do
    let topo_index =
      match topo with
      | Optgap.Table2 -> 0
      | Optgap.Random -> 1
      | Optgap.Multilevel -> 2
      | Optgap.Homogeneous -> 3
    in
    let cell_seed = seed + (100_000 * topo_index) + (1_000 * n) + rep in
    let s = Optgap.sample topo ~seed:cell_seed ~n ~msg in
    bound_ratio := !bound_ratio +. s.Optgap.bound_ratio;
    expanded := !expanded +. float_of_int s.Optgap.expanded;
    (match s.Optgap.traff_agrees with
    | Some true -> incr traff_ok
    | Some false | None -> ());
    List.iter
      (fun (h, gap) ->
        if gap < !min_gap then min_gap := gap;
        match Hashtbl.find_opt acc h with
        | None ->
            order := h :: !order;
            Hashtbl.add acc h (ref gap, ref gap, ref (if gap <= 1. +. eps then 1 else 0))
        | Some (sum, mx, hits) ->
            sum := !sum +. gap;
            if gap > !mx then mx := gap;
            if gap <= 1. +. eps then incr hits)
      s.Optgap.gaps
  done;
  let frep = float_of_int reps in
  {
    topology = tname;
    n;
    reps;
    mean_bound_ratio = !bound_ratio /. frep;
    mean_expanded = !expanded /. frep;
    stats =
      List.rev_map
        (fun h ->
          let sum, mx, hits = Hashtbl.find acc h in
          { name = h; mean = !sum /. frep; max = !mx; hits = !hits })
        !order;
    traff_ok = (match topo with Optgap.Homogeneous -> Some !traff_ok | _ -> None);
    min_gap = !min_gap;
  }

let json_of_cells buf cells =
  let add fmt = Printf.bprintf buf fmt in
  add "[\n";
  List.iteri
    (fun i c ->
      add "  {\"topology\": %S, \"n\": %d, \"reps\": %d,\n" c.topology c.n c.reps;
      add "    \"mean_bound_ratio\": %.4f, \"mean_expanded\": %.1f,\n" c.mean_bound_ratio
        c.mean_expanded;
      (match c.traff_ok with
      | Some k -> add "    \"traff_agrees\": %d,\n" k
      | None -> ());
      add "    \"gaps\": {";
      List.iteri
        (fun j s ->
          add "%s\"%s\": {\"mean\": %.4f, \"max\": %.4f, \"optimal_hits\": %d}"
            (if j = 0 then "" else ", ")
            s.name s.mean s.max s.hits)
        c.stats;
      add "}}%s\n" (if i = List.length cells - 1 then "" else ","))
    cells;
  add "]"

let print_cell c =
  let find n = List.find (fun s -> s.name = n) c.stats in
  let fef = find "FEF" and lat = find "ECEF-LAT" and ecef = find "ECEF" in
  Printf.printf
    "%-12s n=%-2d | FEF %5.3f | ECEF %5.3f | ECEF-LAT %5.3f (max %5.3f, %d/%d optimal) \
     | bound ratio %5.3f | %s%.0f nodes\n\
     %!"
    c.topology c.n fef.mean ecef.mean lat.mean lat.max lat.hits c.reps
    c.mean_bound_ratio
    (match c.traff_ok with
    | Some k -> Printf.sprintf "traff %d/%d, " k c.reps
    | None -> "")
    c.mean_expanded

let () =
  let reps = ref 5 and max_n = ref 8 and out = ref "BENCH_optgap.json" in
  let seed = ref 2006 and jobs = ref 1 and assert_gaps = ref false in
  let rec parse = function
    | [] -> ()
    | "--reps" :: v :: rest ->
        reps := int_of_string v;
        parse rest
    | "--max-n" :: v :: rest ->
        max_n := int_of_string v;
        parse rest
    | ("-o" | "--output") :: v :: rest ->
        out := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--assert-gaps" :: rest ->
        assert_gaps := true;
        parse rest
    | other :: _ ->
        prerr_endline
          ("unknown option " ^ other
         ^ " (known: --reps N, --max-n N, -o FILE, --seed S, --jobs J, --assert-gaps)");
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let sizes = List.filter (fun n -> n <= !max_n) sizes in
  let work =
    Array.of_list
      (List.concat_map (fun t -> List.map (fun n -> (t, n)) sizes) Optgap.topologies)
  in
  let cells =
    Array.to_list
      (Gridb_util.Pool.mapi_stream ~jobs:!jobs
         ~consume:(fun _ c -> print_cell c)
         (fun _ (t, n) -> bench_cell ~seed:!seed ~reps:!reps t n)
         work)
  in
  (* A gap below 1 means a heuristic beat a "certified optimum": always a
     bug, reported unconditionally, fatal under --assert-gaps. *)
  let beaten = List.filter (fun c -> c.min_gap < 1. -. eps) cells in
  List.iter
    (fun c ->
      Printf.eprintf "OPTIMALITY VIOLATION: %s n=%d has a gap ratio %.17g < 1\n"
        c.topology c.n c.min_gap)
    beaten;
  let traff_bad =
    List.filter
      (fun c -> match c.traff_ok with Some k -> k < c.reps | None -> false)
      cells
  in
  List.iter
    (fun c ->
      Printf.eprintf "TRAFF MISMATCH: %s n=%d agrees on %s/%d reps\n" c.topology c.n
        (match c.traff_ok with Some k -> string_of_int k | None -> "?")
        c.reps)
    traff_bad;
  let over name ceiling =
    List.filter
      (fun c -> List.exists (fun s -> s.name = name && s.mean > ceiling) c.stats)
      cells
  in
  let fef_over = over "FEF" fef_ceiling and lat_over = over "ECEF-LAT" ecef_lat_ceiling in
  List.iter
    (fun c ->
      Printf.eprintf "GAP CEILING: %s n=%d FEF mean gap above %.2f\n" c.topology c.n
        fef_ceiling)
    fef_over;
  List.iter
    (fun c ->
      Printf.eprintf "GAP CEILING: %s n=%d ECEF-LAT mean gap above %.2f\n" c.topology c.n
        ecef_lat_ceiling)
    lat_over;
  if !assert_gaps && (beaten <> [] || traff_bad <> [] || fef_over <> [] || lat_over <> [])
  then begin
    prerr_endline "ASSERTION FAILED: optimality-gap gates violated";
    exit 1
  end;
  let buf = Buffer.create 4_096 in
  Printf.bprintf buf
    "{\n\
    \  \"benchmark\": \"optimality-gap\",\n\
    \  \"seed\": %d,\n\
    \  %s,\n\
    \  \"msg\": %d,\n\
    \  \"instance\": \"per cell: table2 matrices, uniform_random grids, 2-per-site \
     multilevel grids, or uniform (L,g,T) draws; root 0; seeds from (seed, topology, \
     n, rep)\",\n\
    \  \"protocol\": \"Gridb_opt.Exact.solve per instance; gap = heuristic makespan / \
     certified optimum (After_sends); homogeneous cells cross-checked against Traff's \
     closed form\",\n\
    \  \"ceilings\": {\"FEF\": %.2f, \"ECEF-LAT\": %.2f},\n\
    \  \"results\": " !seed
    (Gridb_util.Provenance.json_fields ~jobs:!jobs)
    msg fef_ceiling ecef_lat_ceiling;
  json_of_cells buf cells;
  Buffer.add_string buf "\n}\n";
  let oc = open_out !out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" !out (List.length cells)

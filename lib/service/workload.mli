(** Deterministic open-loop request generation for the broadcast service.

    Requests arrive as a seeded Poisson process — open loop: the arrival
    times never depend on how fast the service drains them, so overload
    actually overloads (the scenario admission control exists for).
    Equal seeds give equal request streams. *)

type request = {
  rid : int;  (** dense request id, 0-based arrival order *)
  at : float;  (** arrival time, simulated us *)
  root : int;  (** root cluster *)
  msg : int;  (** message size, bytes (pre-bucketing) *)
  policy : string;  (** scheduling heuristic name *)
}

type mix = {
  roots : int array;  (** candidate root clusters *)
  msgs : int array;  (** candidate message sizes *)
  policies : string array;  (** candidate heuristic names *)
}

val default_mix : Gridb_topology.Machines.t -> mix
(** Up to 3 root clusters, 64 KB / 1 MB messages, ECEF and ECEF-LA —
    a key space small enough that sustained streams revisit it (plan-cache
    hit rate > 0.5 on the default bench workload). *)

val generate :
  ?mix:mix ->
  seed:int ->
  rate:float ->
  duration:float ->
  Gridb_topology.Machines.t ->
  request list
(** Requests of a Poisson process with [rate] arrivals per simulated us
    over [(0, duration]], each drawing root/size/policy uniformly from
    [mix] (default {!default_mix}); chronological, rids dense from 0.
    @raise Invalid_argument on non-positive [rate]/[duration], an empty or
    out-of-range mix, or an unknown policy name. *)

type t = int64

(* FNV-1a, 64-bit.  Stable across runs, platforms and OCaml versions:
   floats enter the hash via their IEEE-754 bit patterns, so two machine
   views hash equal iff their parameter matrices are bit-equal. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let int64 h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * shift)))
  done;
  !h

let int h v = int64 h (Int64.of_int v)
let float h v = int64 h (Int64.bits_of_float v)

(* Gap is a piecewise function of the message size; probing it at spread
   sizes (small, page, chunk, the paper's 1 MB) captures every segment the
   schedules actually evaluate without hashing the raw tables. *)
let probe_sizes = [ 64; 4_096; 65_536; 1_048_576 ]

let of_machines machines =
  let n = Machines.count machines in
  let h = ref (int fnv_offset n) in
  for r = 0 to n - 1 do
    h := int !h (Machines.machine machines r).Machines.cluster
  done;
  for src = 0 to n - 1 do
    for dst = 0 to n - 1 do
      if src <> dst then begin
        let p = Machines.link_params machines src dst in
        h := float !h (Gridb_plogp.Params.latency p);
        List.iter
          (fun m -> h := float !h (Gridb_plogp.Params.gap p m))
          probe_sizes
      end
    done
  done;
  !h

let equal = Int64.equal
let compare = Int64.compare
let to_string t = Printf.sprintf "%016Lx" t
let pp ppf t = Format.pp_print_string ppf (to_string t)

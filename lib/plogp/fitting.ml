type sample = { size : int; time : float }

type linear_fit = { intercept : float; slope : float; rmse : float }

let fit_linear samples =
  if samples = [] then invalid_arg "Fitting.fit_linear: empty input";
  let n = float_of_int (List.length samples) in
  let sx = List.fold_left (fun a s -> a +. float_of_int s.size) 0. samples in
  let sy = List.fold_left (fun a s -> a +. s.time) 0. samples in
  let sxx =
    List.fold_left (fun a s -> a +. (float_of_int s.size *. float_of_int s.size)) 0. samples
  in
  let sxy =
    List.fold_left (fun a s -> a +. (float_of_int s.size *. s.time)) 0. samples
  in
  let denom = (n *. sxx) -. (sx *. sx) in
  let slope = if denom = 0. then 0. else ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  let sq_res =
    List.fold_left
      (fun a s ->
        let p = intercept +. (slope *. float_of_int s.size) in
        a +. ((s.time -. p) *. (s.time -. p)))
      0. samples
  in
  { intercept; slope; rmse = sqrt (sq_res /. n) }

let fit_table ?(per_size_reduce = `Min) samples =
  if samples = [] then invalid_arg "Fitting.fit_table: empty input";
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let prev = try Hashtbl.find tbl s.size with Not_found -> [] in
      Hashtbl.replace tbl s.size (s.time :: prev))
    samples;
  let reduce times =
    match per_size_reduce with
    | `Min -> List.fold_left Float.min (List.hd times) (List.tl times)
    | `Mean ->
        List.fold_left ( +. ) 0. times /. float_of_int (List.length times)
  in
  let pts = Hashtbl.fold (fun size times acc -> (size, reduce times) :: acc) tbl [] in
  Piecewise.of_points pts

module Measurement = struct
  type config = {
    sizes : int list;
    repetitions : int;
    train_length : int;
    noise_sigma : float;
  }

  let default_config =
    {
      sizes = List.init 23 (fun i -> 1 lsl i);
      repetitions = 10;
      train_length = 16;
      noise_sigma = 0.02;
    }

  let noisy rng sigma x =
    if sigma <= 0. then x else x *. Gridb_util.Rng.lognormal ~mu:0. ~sigma rng

  let gap_samples ?(seed = 42) config params =
    let rng = Gridb_util.Rng.create seed in
    List.concat_map
      (fun size ->
        List.init config.repetitions (fun _ ->
            (* A saturated train of k messages completes after k gaps (the
               latency of the last message is subtracted by the benchmark's
               bookkeeping), so time/k estimates g(m). *)
            let train =
              let rec loop i acc =
                if i = config.train_length then acc
                else loop (i + 1) (acc +. noisy rng config.noise_sigma (Params.gap params size))
              in
              loop 0 0.
            in
            { size; time = train /. float_of_int config.train_length }))
      config.sizes

  let latency_sample ?(seed = 43) config params =
    let rng = Gridb_util.Rng.create seed in
    let one_rtt () = noisy rng config.noise_sigma (Params.rtt params 0) in
    let best =
      let rec loop i acc = if i = config.repetitions then acc else loop (i + 1) (Float.min acc (one_rtt ())) in
      loop 0 (one_rtt ())
    in
    Float.max 0. ((best -. (2. *. Params.gap params 0)) /. 2.)

  let run ?(seed = 42) config params =
    let samples = gap_samples ~seed config params in
    let gap = fit_table samples in
    let latency = latency_sample ~seed:(seed + 1) config params in
    Params.v ~latency ~gap ()
end

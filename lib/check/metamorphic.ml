open Gridb_sched

let fail invariant fmt =
  Format.kasprintf
    (fun detail -> Error { Invariant.invariant; detail })
    fmt

let feq = Invariant.feq

let scale_instance c (inst : Instance.t) =
  let mat = Array.map (Array.map (fun x -> c *. x)) in
  Instance.v ~root:inst.root ~latency:(mat inst.latency) ~gap:(mat inst.gap)
    ~intra:(Array.map (fun x -> c *. x) inst.intra)

let check_permutation perm n =
  if Array.length perm <> n then
    invalid_arg "Metamorphic.permute_instance: permutation length mismatch";
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Metamorphic.permute_instance: not a permutation";
      seen.(p) <- true)
    perm

let permute_instance perm (inst : Instance.t) =
  let n = inst.n in
  check_permutation perm n;
  let latency = Array.make_matrix n n 0. in
  let gap = Array.make_matrix n n 0. in
  let intra = Array.make n 0. in
  for i = 0 to n - 1 do
    intra.(perm.(i)) <- inst.intra.(i);
    for j = 0 to n - 1 do
      latency.(perm.(i)).(perm.(j)) <- inst.latency.(i).(j);
      gap.(perm.(i)).(perm.(j)) <- inst.gap.(i).(j)
    done
  done;
  Instance.v ~root:perm.(inst.root) ~latency ~gap ~intra

let order (s : Schedule.t) =
  List.map (fun (e : Schedule.event) -> (e.round, e.src, e.dst)) s.events

let scaling ?(c = 2.) policy (inst : Instance.t) =
  if not (c > 0.) then invalid_arg "Metamorphic.scaling: c must be > 0";
  let scaled = scale_instance c inst in
  let s1 = Engine.run policy inst in
  let s2 = Engine.run policy scaled in
  if order s1 <> order s2 then
    fail "scaling"
      "transmission order changed under uniform scaling by %g (policy %s)" c
      (Policy.name policy)
  else
    let m1 = Schedule.makespan inst s1 in
    let m2 = Schedule.makespan scaled s2 in
    if not (feq (c *. m1) m2) then
      fail "scaling"
        "makespan %.17g scaled by %g should give %.17g, engine gives %.17g" m1
        c (c *. m1) m2
    else
      let rec events es1 es2 =
        match (es1, es2) with
        | [], [] -> Ok ()
        | (e1 : Schedule.event) :: t1, (e2 : Schedule.event) :: t2 ->
            if
              feq (c *. e1.start) e2.start
              && feq (c *. e1.sender_free) e2.sender_free
              && feq (c *. e1.arrival) e2.arrival
            then events t1 t2
            else
              fail "scaling"
                "round %d (%d -> %d): event times do not scale by %g \
                 (start %.17g vs %.17g)"
                e1.round e1.src e1.dst c (c *. e1.start) e2.start
        | _ -> fail "scaling" "event counts differ under scaling"
      in
      events s1.events s2.events

let label_independent policy ~n =
  match Policy.shape (Policy.resolve ~n policy) with
  | Policy.Root_first -> false
  | _ -> true

let relabeling ~perm policy (inst : Instance.t) =
  check_permutation perm inst.n;
  if not (label_independent policy ~n:inst.n) then Ok ()
  else
    let inst2 = permute_instance perm inst in
    let m1 = Schedule.makespan inst (Engine.run policy inst) in
    let m2 = Schedule.makespan inst2 (Engine.run policy inst2) in
    if feq m1 m2 then Ok ()
    else
      fail "relabeling"
        "policy %s: makespan %.17g under original labels, %.17g after \
         relabeling"
        (Policy.name policy) m1 m2

let dominated ~(small : Instance.t) ~(large : Instance.t) =
  (* [large >= small] entrywise, up to the relative epsilon of [feq]. *)
  let ge a b = a >= b || feq a b in
  let bad = ref None in
  let n = small.n in
  for i = 0 to n - 1 do
    if not (ge large.intra.(i) small.intra.(i)) then
      bad := Some (Printf.sprintf "intra.(%d): %.17g < %.17g" i
                     large.intra.(i) small.intra.(i));
    for j = 0 to n - 1 do
      if not (ge large.latency.(i).(j) small.latency.(i).(j)) then
        bad := Some (Printf.sprintf "latency.(%d).(%d): %.17g < %.17g" i j
                       large.latency.(i).(j) small.latency.(i).(j));
      if not (ge large.gap.(i).(j) small.gap.(i).(j)) then
        bad := Some (Printf.sprintf "gap.(%d).(%d): %.17g < %.17g" i j
                       large.gap.(i).(j) small.gap.(i).(j))
    done
  done;
  !bad

let replay_size_monotonicity policy ~(small : Instance.t) ~(large : Instance.t)
    =
  if small.n <> large.n || small.root <> large.root then
    invalid_arg
      "Metamorphic.replay_size_monotonicity: instances must share n and root";
  match dominated ~small ~large with
  | Some where ->
      fail "size-dominance"
        "larger-message instance does not dominate the smaller one (gap \
         model not monotone?): %s"
        where
  | None -> (
      let s = Engine.run policy small in
      let ord =
        List.map (fun (e : Schedule.event) -> (e.src, e.dst)) s.events
      in
      let m_small = Schedule.makespan small s in
      match Invariant.replay_makespan large ord with
      | Error e -> fail "size-monotonicity" "replay on larger instance: %s" e
      | Ok m_large ->
          if m_large > m_small || feq m_large m_small then Ok ()
          else
            fail "size-monotonicity"
              "replaying the same order on a dominating instance finished \
               earlier: %.17g < %.17g"
              m_large m_small)

let transport_equivalence ?(msg = 1_000_000) ?(seed = 0) machines plan =
  let open Gridb_des in
  let base =
    Exec.run ~rng:(Gridb_util.Rng.create seed) ~msg machines plan
  in
  let transports =
    [
      ("fixed", Exec.Fixed);
      ("adaptive", Exec.adaptive ());
      ("adaptive,reroute", Exec.adaptive ~reroute:true ());
    ]
  in
  let rec go = function
    | [] -> Ok ()
    | (name, transport) :: rest ->
        let r =
          Exec.run_reliable ~rng:(Gridb_util.Rng.create seed) ~msg ~transport
            machines plan
        in
        if r.Exec.r_arrival <> base.Exec.arrival then
          fail "transport-equivalence"
            "%s: fault-free arrival vector differs from Exec.run" name
        else if r.Exec.r_makespan <> base.Exec.makespan then
          fail "transport-equivalence"
            "%s: fault-free makespan %.17g differs from Exec.run's %.17g" name
            r.Exec.r_makespan base.Exec.makespan
        else if r.Exec.r_transmissions <> base.Exec.transmissions then
          fail "transport-equivalence"
            "%s: %d transmissions vs Exec.run's %d" name r.Exec.r_transmissions
            base.Exec.transmissions
        else if r.Exec.retransmissions <> 0 then
          fail "transport-equivalence"
            "%s: %d retransmissions fired in a fault-free run" name
            r.Exec.retransmissions
        else go rest
  in
  go transports

(* Entrywise, nan-aware: undelivered ranks record nan, and nan <> nan. *)
let same_arrivals a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> (Float.is_nan x && Float.is_nan y) || x = y)
       a b

let dynamics_identity ?(msg = 1_000_000) ?(seed = 0) ?fault_seed
    ?(transport = Gridb_des.Exec.Fixed) ?(spec = Gridb_des.Faults.none)
    machines plan =
  let open Gridb_des in
  let name = "dynamics-identity" in
  let n = Gridb_topology.Machines.count machines in
  let fseed = Option.value fault_seed ~default:seed in
  let run ?dynamics ?(on_tick = fun ~now:_ _ -> ()) ?(tick_every = 0.) () =
    Exec.run_reliable
      ~rng:(Gridb_util.Rng.create seed)
      ~msg
      ~faults:(Faults.create ~seed:fseed ~n spec)
      ?dynamics ~on_tick ~tick_every ~transport machines plan
  in
  let base = run () in
  let clusters =
    Gridb_topology.Grid.size (Gridb_topology.Machines.grid machines)
  in
  let model = Dynamics.create ~seed:(seed lxor 0x64796e) ~n ~clusters Dynamics.none in
  (* The tick hook is live on purpose: observation must not perturb. *)
  let ticks = ref 0 in
  let dyn = run ~dynamics:model ~on_tick:(fun ~now:_ _ -> incr ticks) ~tick_every:5e4 () in
  if not (same_arrivals dyn.Exec.r_arrival base.Exec.r_arrival) then
    fail name "arrival vector differs under a zero-dynamics model (transport %s)"
      (Exec.transport_to_string transport)
  else if dyn.Exec.r_makespan <> base.Exec.r_makespan then
    fail name "makespan %.17g under a zero-dynamics model, %.17g without"
      dyn.Exec.r_makespan base.Exec.r_makespan
  else if dyn.Exec.r_transmissions <> base.Exec.r_transmissions then
    fail name "%d transmissions under a zero-dynamics model, %d without"
      dyn.Exec.r_transmissions base.Exec.r_transmissions
  else if dyn.Exec.retransmissions <> base.Exec.retransmissions then
    fail name "%d retransmissions under a zero-dynamics model, %d without"
      dyn.Exec.retransmissions base.Exec.retransmissions
  else if dyn.Exec.delivered <> base.Exec.delivered then
    fail name "%d delivered under a zero-dynamics model, %d without"
      dyn.Exec.delivered base.Exec.delivered
  else if dyn.Exec.horizon <> base.Exec.horizon then
    fail name "horizon %.17g under a zero-dynamics model, %.17g without"
      dyn.Exec.horizon base.Exec.horizon
  else if dyn.Exec.left <> [] || dyn.Exec.joined <> [] then
    fail name "a zero-dynamics model reported %d departures and %d joins"
      (List.length dyn.Exec.left)
      (List.length dyn.Exec.joined)
  else Ok ()

let metamorphic_names =
  [
    "scaling";
    "relabeling";
    "size-dominance";
    "size-monotonicity";
    "transport-equivalence";
    "dynamics-identity";
  ]

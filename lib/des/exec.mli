(** Execution of a broadcast plan on the discrete-event engine.

    Semantics per transmission from [s] to [d] (pLogP parameters of the
    [s]-[d] link evaluated at the message size, each scaled by an
    independent noise factor): the send starts when [s] holds the message
    and its NIC is free; the NIC is busy for [g]; delivery happens [L]
    after the send starts injecting, i.e. at [start + g + L].

    With [noise = Exact] the executor reproduces the analytic predictions
    of {!Gridb_collectives.Cost} and {!Gridb_sched.Schedule} to floating
    point accuracy — an invariant the integration tests rely on. *)

type result = {
  arrival : float array;  (** per-rank delivery time; [start_delay] at the root *)
  makespan : float;  (** max arrival *)
  transmissions : int;  (** number of point-to-point sends executed *)
  trace : Trace.transmission list;  (** arrival-ordered; [] unless recorded *)
}

val run :
  ?noise:Noise.t ->
  ?rng:Gridb_util.Rng.t ->
  ?start_delay:float ->
  ?msg:int ->
  ?record_trace:bool ->
  Gridb_topology.Machines.t ->
  Plan.t ->
  result
(** [run machines plan] broadcasts one [msg]-byte message (default 1 MB)
    along [plan].  [start_delay] (default 0., e.g. a scheduling overhead)
    postpones the root's first injection.  [rng] is required when [noise]
    is not [Exact] (default seed 0 otherwise).  [record_trace] (default
    false) retains every transmission for {!Trace} analysis.
    @raise Invalid_argument if plan and machine view sizes differ. *)

val mean_makespan :
  ?noise:Noise.t ->
  ?msg:int ->
  ?repetitions:int ->
  seed:int ->
  Gridb_topology.Machines.t ->
  Plan.t ->
  float
(** Average makespan over independent noisy runs (default 10), the
    "measured" value reported by Figure 6. *)

(** Segmented (pipelined) broadcast.

    For large messages a chain pipeline with segmentation beats the binomial
    tree: cutting the message into [s] segments of size [m/s] gives a chain
    completion of [(s + n - 2) * g(m/s) + (n - 1) * L].  This is the
    standard large-message strategy of the authors' intra-cluster tuning
    paper and is exposed both as an alternative [T] model and for the
    ablation bench. *)

val chain_time :
  params:Gridb_plogp.Params.t -> size:int -> msg:int -> segments:int -> float
(** Completion time of a segmented chain broadcast.  [segments] is clamped
    to [1 .. msg] (a segment carries at least one byte); [size <= 1] costs
    0.  @raise Invalid_argument if [segments < 1]. *)

val best_segments :
  ?candidates:int list -> params:Gridb_plogp.Params.t -> size:int -> msg:int -> unit -> int * float
(** Searches the candidate segment counts (default powers of two up to 256)
    and returns [(segments, time)] minimising {!chain_time}. *)

val binomial_vs_pipeline :
  params:Gridb_plogp.Params.t -> size:int -> msg:int -> [ `Binomial of float | `Pipeline of int * float ]
(** Which strategy the auto-tuner would select for this cluster/message. *)

type choice = {
  heuristic : string;
  schedule : Schedule.t;
  makespan : float;
  evaluated : int;
}

let run ?model ?(heuristics = Heuristics.all) inst =
  if heuristics = [] then invalid_arg "Portfolio.run: empty heuristic list";
  let scored =
    List.map
      (fun h ->
        let schedule = Heuristics.run h inst in
        (h.Heuristics.name, schedule, Schedule.makespan ?model inst schedule))
      heuristics
  in
  let name, schedule, makespan =
    List.fold_left
      (fun ((_, _, best_m) as best) ((_, _, m) as candidate) ->
        if m < best_m then candidate else best)
      (List.hd scored) (List.tl scored)
  in
  { heuristic = name; schedule; makespan; evaluated = List.length heuristics }

let scheduling_evaluations ?(heuristics = Heuristics.all) n =
  (* Charge by descriptor when the heuristic carries one (exact for the
     parameterised ECEF-LA<...> and Mixed<...> names); by name otherwise. *)
  List.fold_left
    (fun acc h ->
      acc
      +.
      match h.Heuristics.policy with
      | Some p -> Overhead.of_policy ~n p
      | None -> Overhead.evaluations ~n h.Heuristics.name)
    0. heuristics

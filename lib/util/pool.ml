(* Deterministic multicore batch execution over OCaml 5 domains.

   Work distribution is dynamic (a shared atomic cursor; each worker claims
   the next unclaimed index, so a slow task never stalls the queue behind
   it) but the *results* are a pure function of the inputs: slot i of the
   output always holds [f i items.(i)], whatever worker computed it and in
   whatever order.  Determinism across jobs settings is therefore the
   caller's only obligation: tasks must not share mutable state (derive
   per-task RNG streams with [Rng.split base i], buffer per-task obs events
   in a private Memory sink and emit them in index order after the join). *)

let default_jobs () = Domain.recommended_domain_count ()

(* The caller's domain is worker zero; [extra] more are spawned. *)
let spawn_workers ~extra worker =
  let domains = Array.init extra (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains

let raise_first_error errors =
  Array.iter (function Some e -> raise e | None -> ()) errors

let mapi ?jobs f items =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length items in
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then Array.mapi f items
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (match f i items.(i) with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e);
          loop ()
        end
      in
      loop ()
    in
    spawn_workers ~extra:(min jobs n - 1) worker;
    raise_first_error errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f items = mapi ?jobs (fun _ x -> f x) items

let mapi_stream ?jobs ~consume f items =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length items in
  if n = 0 then [||]
  else if jobs = 1 || n = 1 then
    Array.mapi
      (fun i x ->
        let r = f i x in
        consume i r;
        r)
      items
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    (* Publication: a worker plain-writes its slot, then release-stores the
       slot's flag; the consuming domain acquire-loads the flag before
       reading the slot.  Plain array reads without the flag would race. *)
    let ready = Array.init n (fun _ -> Atomic.make false) in
    let next = Atomic.make 0 in
    let task i =
      (match f i items.(i) with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e);
      Atomic.set ready.(i) true
    in
    let claim () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        task i;
        true
      end
      else false
    in
    let worker () = while claim () do () done in
    (* Only the calling domain consumes: results stream out in strictly
       ascending index order, flushed whenever the caller finishes one of
       its own claims (and finally after the join), so the output is
       byte-identical to the sequential run's.  A failed slot stops the
       stream; the error itself is re-raised after the join, exactly where
       a sequential left-to-right run would have stopped. *)
    let next_flush = ref 0 in
    let flush () =
      let continue = ref true in
      while !continue && !next_flush < n do
        let i = !next_flush in
        if Atomic.get ready.(i) then
          match errors.(i) with
          | Some _ -> continue := false
          | None ->
              (match results.(i) with Some v -> consume i v | None -> assert false);
              incr next_flush
        else continue := false
      done
    in
    let domains =
      Array.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    while claim () do
      flush ()
    done;
    Array.iter Domain.join domains;
    flush ();
    raise_first_error errors;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?jobs f items =
  Array.to_list (map ?jobs f (Array.of_list items))

let find_first ?jobs f items =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = Array.length items in
  if jobs = 1 || n <= 1 then begin
    (* Sequential reference semantics: first index whose task returns
       [Some], evaluating in order with early exit. *)
    let rec go i =
      if i >= n then None
      else match f i items.(i) with Some v -> Some (i, v) | None -> go (i + 1)
    in
    go 0
  end
  else begin
    let found = Array.make n None in
    let errors = Array.make n None in
    let next = Atomic.make 0 in
    (* Lowest index so far whose task returned [Some] or raised; [n] while
       none has.  Workers stop claiming past it — every claim is issued in
       ascending order, so all indices below the final value have been
       fully evaluated, which makes the winner the true first match no
       matter how the domains were scheduled. *)
    let best = Atomic.make n in
    let rec lower_best i =
      let cur = Atomic.get best in
      if i < cur && not (Atomic.compare_and_set best cur i) then lower_best i
    in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n && i <= Atomic.get best then begin
          (match f i items.(i) with
          | Some v ->
              found.(i) <- Some v;
              lower_best i
          | None -> ()
          | exception e ->
              errors.(i) <- Some e;
              lower_best i);
          loop ()
        end
      in
      loop ()
    in
    spawn_workers ~extra:(min jobs n - 1) worker;
    let rec walk i =
      if i >= n then None
      else
        match errors.(i) with
        | Some e -> raise e
        | None -> (
            match found.(i) with
            | Some v -> Some (i, v)
            | None -> walk (i + 1))
    in
    walk 0
  end

(** Graphviz (DOT) export of grid topologies.

    One node per cluster (label: name and size), one undirected edge per
    cluster pair, styled by communication level (Table 1): bold short
    dashes for WAN, plain for LAN, dotted for local links.  Render with
    [dot -Tsvg topology.dot -o topology.svg]. *)

val to_dot : ?name:string -> Grid.t -> string
(** [name] is the graph identifier (default ["grid"]). *)

val save : string -> Grid.t -> unit
(** Write the DOT text to a file.  @raise Sys_error on IO failure. *)

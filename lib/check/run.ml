open Gridb_sched
module Exec = Gridb_des.Exec
module Faults = Gridb_des.Faults
module Dynamics = Gridb_des.Dynamics
module Plan = Gridb_des.Plan
module Machines = Gridb_topology.Machines
module Rng = Gridb_util.Rng
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

let ( let* ) = Result.bind

let fail invariant fmt =
  Format.kasprintf (fun detail -> Error { Invariant.invariant; detail }) fmt

let resolve f sc =
  match f sc with
  | Ok v -> Ok v
  | Error detail -> Error { Invariant.invariant = "scenario"; detail }

(* The incremental engine against the naive oracle: identical schedules,
   event for event, tie-breaking included — the contract {!Engine}
   documents as bitwise. *)
let engine_differential policy inst =
  let s_inc = Engine.run ~mode:`Incremental policy inst in
  let s_naive = Engine.run ~mode:`Naive policy inst in
  if s_inc = s_naive then Ok s_inc
  else
    fail "engine-differential"
      "incremental and naive schedules differ for policy %s on n = %d"
      (Policy.name policy) inst.Instance.n

(* Arrival vector, [delivered] counter and [Arrival] events must agree. *)
let arrival_accounting (r : Exec.reliable) events =
  let n = Array.length r.Exec.r_arrival in
  let seen = Array.make n nan in
  let arrivals = ref 0 in
  List.iter
    (function
      | Event.Arrival { dst; time; _ } ->
          incr arrivals;
          if Float.is_nan seen.(dst) then seen.(dst) <- time
      | _ -> ())
    events;
  let rec ranks k =
    if k >= n then Ok ()
    else
      let recorded = r.Exec.r_arrival.(k) in
      if Float.is_nan recorded && Float.is_nan seen.(k) then ranks (k + 1)
      else if recorded = seen.(k) then ranks (k + 1)
      else
        fail "arrival-accounting"
          "rank %d: executor records arrival %.17g but the event stream says \
           %.17g"
          k recorded seen.(k)
  in
  let* () = ranks 0 in
  let delivered_vec =
    Array.fold_left
      (fun acc a -> if Float.is_nan a then acc else acc + 1)
      0 r.Exec.r_arrival
  in
  if delivered_vec <> r.Exec.delivered then
    fail "delivered-accounting"
      "arrival vector has %d delivered ranks but the executor counted %d"
      delivered_vec r.Exec.delivered
  else if !arrivals <> r.Exec.delivered then
    fail "delivered-accounting"
      "event stream has %d arrivals but the executor delivered %d" !arrivals
      r.Exec.delivered
  else
    let max_arrival =
      Array.fold_left
        (fun acc a -> if Float.is_nan a then acc else Float.max acc a)
        neg_infinity r.Exec.r_arrival
    in
    if max_arrival = r.Exec.r_makespan then Ok ()
    else
      fail "delivered-accounting"
        "max delivered arrival %.17g but recorded makespan %.17g" max_arrival
        r.Exec.r_makespan

(* Delivery accounting under churn: the executor's [left] / [joined]
   reports and its arrival vector must agree with the dynamics model it
   ran under — departures are exactly the ranks whose pre-drawn leave time
   fell inside the horizon, nothing is delivered to a rank after it left,
   and joins outside the horizon never receive (or appear) at all. *)
let churn_accounting (d : Dynamics.t) (r : Exec.reliable) =
  let name = "churn-accounting" in
  let n = Dynamics.size d in
  let ntot = Dynamics.total d in
  let horizon = r.Exec.horizon in
  if Array.length r.Exec.r_arrival <> ntot then
    fail name "arrival vector spans %d ranks, model population is %d"
      (Array.length r.Exec.r_arrival) ntot
  else begin
    let expected_left = ref [] in
    for k = n - 1 downto 0 do
      if Dynamics.leave_time d k <= horizon then expected_left := k :: !expected_left
    done;
    if List.sort compare r.Exec.left <> !expected_left then
      fail name "executor reports departures {%s}, model says {%s} by %.17g"
        (String.concat "," (List.map string_of_int r.Exec.left))
        (String.concat "," (List.map string_of_int !expected_left))
        horizon
    else begin
      let expected_joined =
        Array.to_list (Dynamics.joins d)
        |> List.filter_map (fun (j : Dynamics.join) ->
               if j.at <= horizon then Some j.rank else None)
      in
      if List.sort compare r.Exec.joined <> expected_joined then
        fail name "executor reports joins {%s}, model says {%s} by %.17g"
          (String.concat "," (List.map string_of_int r.Exec.joined))
          (String.concat "," (List.map string_of_int expected_joined))
          horizon
      else begin
        let bad = ref None in
        for k = 0 to ntot - 1 do
          let a = r.Exec.r_arrival.(k) in
          if !bad = None && not (Float.is_nan a) then
            if a >= Dynamics.leave_time d k then
              bad :=
                Some
                  (Printf.sprintf
                     "rank %d delivered at %.17g, at or after its departure at %.17g" k a
                     (Dynamics.leave_time d k))
        done;
        Array.iter
          (fun (j : Dynamics.join) ->
            let a = r.Exec.r_arrival.(j.rank) in
            if !bad = None && not (Float.is_nan a) then
              if j.at > horizon then
                bad :=
                  Some
                    (Printf.sprintf
                       "join rank %d arrives at %.17g, beyond the horizon %.17g, yet \
                        was delivered"
                       j.rank j.at horizon)
              else if a < j.at then
                bad :=
                  Some
                    (Printf.sprintf
                       "join rank %d delivered at %.17g before it even joined at %.17g"
                       j.rank a j.at))
          (Dynamics.joins d);
        match !bad with None -> Ok () | Some detail -> fail name "%s" detail
      end
    end
  end

let check (sc : Scenario.t) =
  let* policy = resolve Scenario.policy sc in
  let* transport = resolve Scenario.transport sc in
  let* spec = resolve Scenario.faults_spec sc in
  let* dspec = resolve Scenario.dynamics_spec sc in
  let grid = Scenario.grid sc in
  let inst = Instance.of_grid ~root:sc.root ~msg:sc.msg grid in
  (* Schedule-level checks. *)
  let* s = engine_differential policy inst in
  let* () = Invariant.check_schedule inst s in
  (* Metamorphic laws. *)
  let* () = Metamorphic.scaling policy inst in
  let perm = Rng.permutation (Rng.create (Scenario.perm_seed sc)) sc.n in
  let* () = Metamorphic.relabeling ~perm policy inst in
  let small_msg = max 1 (sc.msg / 4) in
  let small = Instance.of_grid ~root:sc.root ~msg:small_msg grid in
  let* () = Metamorphic.replay_size_monotonicity policy ~small ~large:inst in
  (* DES execution, fault-free: stream invariants + model cross-check. *)
  let machines = Machines.expand grid in
  let n_ranks = Machines.count machines in
  let plan = Plan.of_cluster_schedule machines s in
  let sink = Sink.memory () in
  let res = Exec.run ~msg:sc.msg ~obs:sink machines plan in
  let events = Sink.events sink in
  let* () = Invariant.check_stream ~n:n_ranks ~root:plan.Plan.root events in
  let* () = Invariant.stream_gap_conformance ~machines ~msg:sc.msg events in
  let* () =
    Invariant.cross_check ~invariant:"makespan-cross-check"
      ~expected:(Schedule.makespan inst s) ~got:res.Exec.makespan
  in
  let* () = Metamorphic.transport_equivalence ~msg:sc.msg ~seed:sc.seed machines plan in
  (* Zero-dynamics identity, in the scenario's own fault/transport cell:
     attaching an inert dynamics model may change nothing. *)
  let* () =
    Metamorphic.dynamics_identity ~msg:sc.msg ~seed:sc.seed
      ~fault_seed:(Scenario.fault_seed sc) ~transport ~spec machines plan
  in
  (* Faulty branch: reliable execution under the scenario's fault spec. *)
  let* () =
    if Faults.is_none spec then Ok ()
    else begin
      let faults =
        Faults.create ~seed:(Scenario.fault_seed sc) ~n:n_ranks spec
      in
      let sink = Sink.memory () in
      let r =
        Exec.run_reliable ~msg:sc.msg ~obs:sink ~faults ~transport machines plan
      in
      let events = Sink.events sink in
      let* () =
        Invariant.check_stream ~faulty:true ~n:n_ranks ~root:plan.Plan.root
          events
      in
      arrival_accounting r events
    end
  in
  (* Dynamic branch: the same reliable execution with the scenario's
     dynamics model attached (faults included when the scenario has both),
     checked against the stream invariants over the churned population and
     against the model's own books. *)
  if Dynamics.is_none dspec then Ok ()
  else begin
    let faults = Faults.create ~seed:(Scenario.fault_seed sc) ~n:n_ranks spec in
    let d = Dynamics.create ~seed:(Scenario.dyn_seed sc) ~n:n_ranks ~clusters:sc.n dspec in
    let sink = Sink.memory () in
    let r =
      Exec.run_reliable ~msg:sc.msg ~obs:sink ~faults ~dynamics:d ~transport
        ~tick_every:dspec.Dynamics.recluster_every machines plan
    in
    let events = Sink.events sink in
    let* () =
      Invariant.check_stream ~faulty:true ~n:(Dynamics.total d)
        ~root:plan.Plan.root events
    in
    let* () = churn_accounting d r in
    arrival_accounting r events
  end

let run_invariant_names =
  [
    "scenario";
    "engine-differential";
    "makespan-cross-check";
    "arrival-accounting";
    "delivered-accounting";
    "churn-accounting";
  ]

(* --- service family ----------------------------------------------------- *)

module Workload = Gridb_service.Workload
module Server = Gridb_service.Server
module Plan_cache = Gridb_service.Plan_cache

(* A session's root is the one rank whose arrival the session injects
   itself (src = dst). *)
let session_root evs =
  let rec go = function
    | [] -> None
    | Event.Arrival { src; dst; _ } :: _ when src = dst -> Some dst
    | _ :: rest -> go rest
  in
  go evs

let event_time = function
  | Event.Send_start { time; _ }
  | Event.Send_end { time; _ }
  | Event.Arrival { time; _ }
  | Event.Ack { time; _ }
  | Event.Retransmit { time; _ }
  | Event.Give_up { time; _ }
  | Event.Circuit_open { time; _ }
  | Event.Circuit_close { time; _ }
  | Event.Reroute { time; _ } -> Some time
  | _ -> None

let in_session sid = function
  | Ok () -> Ok ()
  | Error v ->
      Error
        {
          v with
          Invariant.detail = Printf.sprintf "session %d: %s" sid v.Invariant.detail;
        }

let check_service (sc : Scenario.t) =
  let* transport = resolve Scenario.transport sc in
  let grid = Scenario.grid sc in
  let machines = Machines.expand grid in
  let n_ranks = Machines.count machines in
  (* A modest open-loop stream over the scenario's own grid: ~40 requests
     in a 1e6-us window, default mix — enough concurrency to exercise the
     shared wire and the admission queue while staying cheap per
     scenario. *)
  let requests =
    Workload.generate ~seed:(Scenario.service_seed sc) ~rate:4e-5 ~duration:1e6
      machines
  in
  let sink = Sink.memory () in
  let report =
    Server.run ~transport ~obs:sink ~seed:sc.Scenario.seed machines requests
  in
  let events = Sink.events sink in
  (* Books: every request is admitted or rejected, and charges the cache
     exactly one lookup. *)
  let* () =
    if report.Server.admitted + report.Server.rejected = report.Server.requests
    then Ok ()
    else
      fail "service-accounting" "admitted %d + rejected %d <> %d requests"
        report.Server.admitted report.Server.rejected report.Server.requests
  in
  let stats = report.Server.cache_stats in
  let* () =
    if stats.Plan_cache.hits + stats.Plan_cache.misses = report.Server.requests
    then Ok ()
    else
      fail "service-accounting" "%d cache lookups for %d requests"
        (stats.Plan_cache.hits + stats.Plan_cache.misses)
        report.Server.requests
  in
  let sessions = Invariant.split_sessions events in
  let by_sid = Hashtbl.create 16 in
  List.iter (fun (sid, evs) -> Hashtbl.replace by_sid sid evs) sessions;
  (* Attribution: the tagged sids of the stream are exactly the admitted
     request ids (rids are dense from 0, so sid indexes [outcomes]). *)
  let* () =
    let rec outcomes i =
      if i >= Array.length report.Server.outcomes then Ok ()
      else
        let o = report.Server.outcomes.(i) in
        let rid = o.Server.request.Workload.rid in
        match (o.Server.result, Hashtbl.mem by_sid rid) with
        | Some _, true | None, false -> outcomes (i + 1)
        | Some _, false ->
            fail "session-attribution" "admitted request %d produced no tagged events"
              rid
        | None, true ->
            fail "session-attribution" "rejected request %d produced tagged events" rid
    in
    let* () = outcomes 0 in
    let rec extras = function
      | [] -> Ok ()
      | (sid, _) :: rest ->
          if sid >= 0 && sid < Array.length report.Server.outcomes then extras rest
          else fail "session-attribution" "stream carries unknown session id %d" sid
    in
    extras sessions
  in
  (* Per-session single-broadcast invariants over each session's own
     (untagged) slice: at-most-once delivery (contention can time sends
     out), causality, per-session NIC discipline, gap conformance, and the
     executor-vs-stream arrival books.  Nothing in a session may precede
     its request's arrival time. *)
  let rec per_session = function
    | [] -> Ok ()
    | (sid, evs) :: rest ->
        let o = report.Server.outcomes.(sid) in
        let r =
          match o.Server.result with Some r -> r | None -> assert false
        in
        let* root =
          match session_root evs with
          | Some root -> Ok root
          | None ->
              fail "session-attribution" "session %d has no root self-arrival" sid
        in
        let* () =
          in_session sid (Invariant.check_stream ~faulty:true ~n:n_ranks ~root evs)
        in
        let* () =
          in_session sid
            (Invariant.stream_gap_conformance ~machines
               ~msg:o.Server.request.Workload.msg evs)
        in
        let at = o.Server.request.Workload.at in
        let* () =
          let rec times = function
            | [] -> Ok ()
            | e :: tl -> (
                match event_time e with
                | Some t when t < at ->
                    fail "session-clock"
                      "session %d event at %g precedes its arrival at %g" sid t at
                | _ -> times tl)
          in
          times evs
        in
        let* () = in_session sid (arrival_accounting r evs) in
        per_session rest
  in
  let* () = per_session sessions in
  (* The property only multi-session runs have: one-port serialization of
     the shared wire across concurrent sessions. *)
  Invariant.sessions_nic_serialization ~n:n_ranks events

let service_invariant_names =
  [ "service-accounting"; "session-attribution"; "session-clock" ]

(* --- chaos family ------------------------------------------------------- *)

module Admission = Gridb_service.Admission
module Session = Gridb_des.Session

let chaos_budget = 2

(* Finite deadlines and a half-high-priority split: every resilience code
   path (deadline bookkeeping, priority-aware shedding, retry waves) is
   live whatever the scenario's fault/dynamics cell says. *)
let chaos_mix machines =
  {
    (Workload.default_mix machines) with
    Workload.deadlines = [| 2e5; 1e6; infinity |];
    high_frac = 0.5;
  }

let check_chaos (sc : Scenario.t) =
  let* transport = resolve Scenario.transport sc in
  let* fspec = resolve Scenario.faults_spec sc in
  let* dspec = resolve Scenario.dynamics_spec sc in
  let grid = Scenario.grid sc in
  let machines = Machines.expand grid in
  let n_ranks = Machines.count machines in
  let requests =
    Workload.generate ~mix:(chaos_mix machines) ~seed:(Scenario.chaos_seed sc)
      ~rate:4e-5 ~duration:1e6 machines
  in
  let nreq = List.length requests in
  let sink = Sink.memory () in
  let admission =
    Admission.create
      ~shed:(Admission.shed ~watermark_us:2e6 ~max_open_frac:0.5 ())
      ()
  in
  let report =
    Server.run ~transport ~admission ~obs:sink ~seed:sc.Scenario.seed
      ?faults:(if Faults.is_none fspec then None else Some fspec)
      ?dynamics:(if Dynamics.is_none dspec then None else Some dspec)
      ~retry:{ Server.budget = chaos_budget; backoff_us = 1e4 }
      machines requests
  in
  let events = Sink.events sink in
  (* Books under chaos: every request lands somewhere, cache lookups cover
     exactly the planned requests plus retry replans, and the per-class
     SLO tables partition the global counters. *)
  let* () =
    if report.Server.admitted + report.Server.rejected = report.Server.requests
    then Ok ()
    else
      fail "chaos-accounting" "admitted %d + rejected %d <> %d requests"
        report.Server.admitted report.Server.rejected report.Server.requests
  in
  let* () =
    let stats = report.Server.cache_stats in
    let lookups = stats.Plan_cache.hits + stats.Plan_cache.misses in
    let expected =
      report.Server.requests - report.Server.invalid + report.Server.retry_lookups
    in
    if lookups = expected then Ok ()
    else
      fail "chaos-accounting"
        "%d cache lookups, expected %d (%d requests - %d invalid + %d retry)"
        lookups expected report.Server.requests report.Server.invalid
        report.Server.retry_lookups
  in
  let* () =
    let h = report.Server.slo_high and l = report.Server.slo_low in
    if
      h.Server.c_requests + l.Server.c_requests = report.Server.requests
      && h.Server.c_admitted + l.Server.c_admitted = report.Server.admitted
      && h.Server.c_shed + l.Server.c_shed = report.Server.sheds
      && h.Server.c_requeues + l.Server.c_requeues = report.Server.requeues
      && h.Server.c_delivered + l.Server.c_delivered = report.Server.delivered
    then Ok ()
    else fail "chaos-accounting" "per-class SLO tables do not partition the report"
  in
  (* Retry delivery-monotonicity: the union over attempts can only add
     ranks to the final attempt's tally, never exceed the population, and
     the attempt count respects the budget. *)
  let* () =
    let rec go i =
      if i >= Array.length report.Server.outcomes then Ok ()
      else
        let o = report.Server.outcomes.(i) in
        match o.Server.result with
        | None ->
            if o.Server.attempts = 0 then go (i + 1)
            else
              fail "retry-monotonicity" "rejected request %d records %d attempts" i
                o.Server.attempts
        | Some r ->
            let population = Array.length r.Session.r_arrival in
            if o.Server.attempts < 1 || o.Server.attempts > chaos_budget + 1 then
              fail "retry-monotonicity" "request %d ran %d attempts (budget %d)" i
                o.Server.attempts chaos_budget
            else if o.Server.delivered_union < r.Session.delivered then
              fail "retry-monotonicity"
                "request %d: union %d below the final attempt's %d" i
                o.Server.delivered_union r.Session.delivered
            else if o.Server.delivered_union > population then
              fail "retry-monotonicity" "request %d: union %d exceeds population %d"
                i o.Server.delivered_union population
            else go (i + 1)
    in
    go 0
  in
  (* Shed ordering: only low-priority requests may ever be shed, and the
     stream's shed events agree with the report's counter.  Retry events
     must stay within the budget and match the requeue counter. *)
  let* () =
    let rec sheds count = function
      | [] ->
          if count = report.Server.sheds then Ok ()
          else
            fail "shed-ordering" "stream carries %d shed events, report counted %d"
              count report.Server.sheds
      | Event.Shed { rid; priority; _ } :: rest ->
          if priority <> "low" then
            fail "shed-ordering"
              "request %d shed with priority %s (high traffic must never be shed)"
              rid priority
          else sheds (count + 1) rest
      | _ :: rest -> sheds count rest
    in
    sheds 0 events
  in
  let* () =
    let rec retries count = function
      | [] ->
          if count = report.Server.requeues then Ok ()
          else
            fail "chaos-accounting"
              "stream carries %d retry events, report counted %d requeues" count
              report.Server.requeues
      | Event.Retry { rid; attempt; _ } :: rest ->
          if attempt < 1 || attempt > chaos_budget then
            fail "retry-monotonicity" "request %d retry attempt %d outside [1, %d]"
              rid attempt chaos_budget
          else retries (count + 1) rest
      | _ :: rest -> retries count rest
    in
    retries 0 events
  in
  (* Attribution across attempts: the tagged sids are exactly
     [attempt * requests + rid] for every launched attempt. *)
  let sessions = Invariant.split_sessions events in
  let* () =
    let expected = Hashtbl.create 64 in
    Array.iter
      (fun o ->
        for k = 0 to o.Server.attempts - 1 do
          Hashtbl.replace expected ((k * nreq) + o.Server.request.Workload.rid) ()
        done)
      report.Server.outcomes;
    let rec go = function
      | [] -> Ok ()
      | (sid, _) :: rest ->
          if Hashtbl.mem expected sid then begin
            Hashtbl.remove expected sid;
            go rest
          end
          else fail "session-attribution" "stream carries unexpected session id %d" sid
    in
    let* () = go sessions in
    if Hashtbl.length expected = 0 then Ok ()
    else
      fail "session-attribution" "%d launched attempts produced no tagged events"
        (Hashtbl.length expected)
  in
  (* Deadline bookkeeping vs session clocks: recompute each request's union
     completion from the tagged arrival events of every attempt and demand
     the report's verdicts (and miss counter) match exactly. *)
  let by_sid = Hashtbl.create 64 in
  List.iter (fun (sid, evs) -> Hashtbl.replace by_sid sid evs) sessions;
  let misses = ref 0 in
  let rec deadlines i =
    if i >= Array.length report.Server.outcomes then Ok ()
    else
      let o = report.Server.outcomes.(i) in
      let rid = o.Server.request.Workload.rid in
      match o.Server.result with
      | None ->
          if o.Server.deadline_met = None then deadlines (i + 1)
          else
            fail "deadline-bookkeeping" "rejected request %d carries a deadline verdict"
              rid
      | Some _ ->
          let u = Array.make n_ranks nan in
          for k = 0 to o.Server.attempts - 1 do
            match Hashtbl.find_opt by_sid ((k * nreq) + rid) with
            | None -> ()
            | Some evs ->
                List.iter
                  (function
                    | Event.Arrival { dst; time; _ } when dst < n_ranks ->
                        if Float.is_nan u.(dst) || time < u.(dst) then u.(dst) <- time
                    | _ -> ())
                  evs
          done;
          let complete = Array.for_all (fun a -> not (Float.is_nan a)) u in
          let completion =
            if complete then Array.fold_left Float.max neg_infinity u else nan
          in
          let agree =
            if Float.is_nan completion then Float.is_nan o.Server.completion_us
            else completion = o.Server.completion_us
          in
          if not agree then
            fail "deadline-bookkeeping"
              "request %d: stream says completion %.17g, report says %.17g" rid
              completion o.Server.completion_us
          else
            let d = o.Server.request.Workload.deadline in
            let expected =
              if d = infinity then None
              else
                Some
                  ((not (Float.is_nan completion))
                  && completion -. o.Server.request.Workload.at <= d)
            in
            if expected <> o.Server.deadline_met then
              fail "deadline-bookkeeping"
                "request %d: deadline verdict disagrees with session clocks" rid
            else begin
              if o.Server.deadline_met = Some false then incr misses;
              deadlines (i + 1)
            end
  in
  let* () = deadlines 0 in
  if !misses = report.Server.deadline_misses then Ok ()
  else
    fail "deadline-bookkeeping" "%d deadline misses recomputed, report counted %d"
      !misses report.Server.deadline_misses

let chaos_invariant_names =
  [ "chaos-accounting"; "retry-monotonicity"; "shed-ordering"; "deadline-bookkeeping" ]

(* --- opt family --------------------------------------------------------- *)

module Exact = Gridb_opt.Exact
module Traff = Gridb_opt.Traff

let in_context ctx = function
  | Ok () -> Ok ()
  | Error v ->
      Error { v with Invariant.detail = Printf.sprintf "%s: %s" ctx v.Invariant.detail }

(* No valid schedule may beat a certified optimum; a violation in either
   direction is fatal — a heuristic below the "optimum" means the solver
   pruned the true best (or scored a leaf wrong), a bound above it means
   the analytic bound is not a bound. *)
let optimum_sandwich ~ctx inst (cert : Exact.certificate) extra_policies =
  let opt = cert.Exact.makespan in
  let rec heuristics = function
    | [] -> Ok ()
    | p :: rest ->
        let m = Schedule.makespan inst (Engine.run p inst) in
        if m >= opt || Invariant.feq m opt then heuristics rest
        else
          fail "opt-lower-bound"
            "%s: %s makespan %.17g beats the certified optimum %.17g on n = %d" ctx
            (Policy.name p) m opt inst.Instance.n
  in
  let* () = heuristics (Policy.all @ extra_policies) in
  let lb = Bounds.combined inst in
  if lb <= opt || Invariant.feq lb opt then Ok ()
  else
    fail "opt-lower-bound"
      "%s: analytic bound %.17g exceeds the certified optimum %.17g" ctx lb opt

let check_opt (sc : Scenario.t) =
  let* policy = resolve Scenario.policy sc in
  let grid = Scenario.grid sc in
  let inst = Instance.of_grid ~root:sc.root ~msg:sc.msg grid in
  (* The certified schedule is a schedule like any other: every invariant
     of the catalogue must hold before its makespan is trusted. *)
  let cert = Exact.solve inst in
  let* () =
    in_context "certified schedule" (Invariant.check_schedule inst cert.Exact.schedule)
  in
  let* () = optimum_sandwich ~ctx:"scenario grid" inst cert [ policy ] in
  (* The certificate is not just a number: its schedule must execute on
     the DES, fault-free, to exactly the certified makespan. *)
  let machines = Machines.expand grid in
  let plan = Plan.of_cluster_schedule machines cert.Exact.schedule in
  let res = Exec.run ~msg:sc.msg machines plan in
  let* () =
    Invariant.cross_check ~invariant:"opt-des-replay" ~expected:cert.Exact.makespan
      ~got:res.Exec.makespan
  in
  (* Homogeneous leg: an independent uniform instance drawn from the opt
     stream, where Träff's log-time construction is provably optimal — the
     B&B search and the closed-form schedule must agree, and the analytic
     [t* + T] must agree with both. *)
  let rng = Rng.create (Scenario.opt_seed sc) in
  let r = Instance.table2_ranges in
  let draw (lo, hi) = Rng.float_in rng lo hi in
  let params =
    {
      Traff.n = sc.n;
      root = sc.root;
      latency = draw r.Instance.latency_us;
      gap = draw r.Instance.gap_us;
      intra = draw r.Instance.intra_us;
    }
  in
  let hinst = Traff.instance params in
  let hcert = Exact.solve hinst in
  let ts = Traff.schedule hinst in
  let* () = in_context "Traff schedule" (Invariant.check_schedule hinst ts) in
  let* () =
    Invariant.cross_check ~invariant:"opt-homogeneous"
      ~expected:(Traff.makespan params) ~got:(Schedule.makespan hinst ts)
  in
  let* () =
    Invariant.cross_check ~invariant:"opt-homogeneous" ~expected:(Traff.makespan params)
      ~got:hcert.Exact.makespan
  in
  optimum_sandwich ~ctx:"homogeneous instance" hinst hcert []

let opt_invariant_names = [ "opt-lower-bound"; "opt-des-replay"; "opt-homogeneous" ]

(* The simMPI substrate on its own: write collectives as per-rank programs
   and get pLogP-accurate timings out of the discrete-event engine.

   Run with: dune exec examples/simmpi_collectives.exe *)

module Topology = Gridb_topology
module Mpi = Gridb_mpi
module Sched = Gridb_sched
module Des = Gridb_des

let ms us = us /. 1e3

let () =
  let grid = Topology.Grid5000.grid () in
  let machines = Topology.Machines.expand grid in
  let n = Topology.Machines.count machines in
  Printf.printf "simMPI world: %d ranks over %d clusters\n\n" n (Topology.Grid.size grid);

  (* Grid-unaware binomial broadcast — the "Default LAM" baseline. *)
  let r =
    Mpi.Runtime.run_exn machines (fun ~rank ~size ->
        Mpi.Collectives.bcast ~rank ~size ~root:0 ~msg:1_000_000 ())
  in
  let exact_bcast = r.Mpi.Runtime.makespan in
  Printf.printf "binomial MPI_Bcast (1 MB):      %8.2f ms, %d messages\n"
    (ms r.Mpi.Runtime.makespan) r.Mpi.Runtime.messages;

  (* The same broadcast along a grid-aware hierarchical plan. *)
  let inst = Sched.Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  let schedule = Sched.Heuristics.run Sched.Heuristics.ecef_la inst in
  let plan = Des.Plan.of_cluster_schedule machines schedule in
  let r =
    Mpi.Runtime.run_exn machines (fun ~rank ~size:_ ->
        Mpi.Collectives.bcast_plan ~rank plan ~msg:1_000_000)
  in
  Printf.printf "hierarchical ECEF-LA broadcast: %8.2f ms, %d messages\n"
    (ms r.Mpi.Runtime.makespan) r.Mpi.Runtime.messages;

  (* An allreduce carrying real values. *)
  let check = ref 0. in
  let r =
    Mpi.Runtime.run_exn machines (fun ~rank ~size ->
        let total =
          Mpi.Collectives.allreduce ~rank ~size ~msg:8 ~value:(float_of_int rank) ( +. )
        in
        if rank = size - 1 then check := total)
  in
  Printf.printf "allreduce (sum of ranks):       %8.2f ms, result %.0f (expected %d)\n"
    (ms r.Mpi.Runtime.makespan) !check (n * (n - 1) / 2);

  (* Barrier and alltoall. *)
  let r = Mpi.Runtime.run_exn machines (fun ~rank ~size -> Mpi.Collectives.barrier ~rank ~size ()) in
  Printf.printf "dissemination barrier:          %8.2f ms, %d messages\n"
    (ms r.Mpi.Runtime.makespan) r.Mpi.Runtime.messages;

  let r =
    Mpi.Runtime.run_exn machines (fun ~rank ~size ->
        Mpi.Collectives.alltoall ~rank ~size ~msg:1_000 ())
  in
  Printf.printf "alltoall (1 KB per pair):       %8.2f ms, %d messages\n"
    (ms r.Mpi.Runtime.makespan) r.Mpi.Runtime.messages;

  (* Noise: the same collective under measurement jitter. *)
  let noisy =
    Mpi.Runtime.run_exn ~noise:Des.Noise.default_measured ~seed:3 machines
      (fun ~rank ~size -> Mpi.Collectives.bcast ~rank ~size ~root:0 ~msg:1_000_000 ())
  in
  Printf.printf "\nbinomial bcast with jitter:     %8.2f ms (exact was %8.2f ms)\n"
    (ms noisy.Mpi.Runtime.makespan) (ms exact_bcast)

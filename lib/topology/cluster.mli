(** A homogeneous cluster: the unit of the paper's hierarchy.

    Following the paper's two-level structure (Lowekamp / MagPIe), processes
    are grouped into logical clusters whose internal network is homogeneous;
    one process per cluster acts as the {e coordinator} for inter-cluster
    traffic.  A cluster therefore carries its size and a single pLogP
    parameter set describing any intra-cluster link. *)

type t = private {
  id : int;  (** index inside its grid *)
  name : string;
  size : int;  (** number of processes, >= 1 *)
  intra : Gridb_plogp.Params.t;  (** pLogP parameters of an internal link *)
}

val v : id:int -> name:string -> size:int -> intra:Gridb_plogp.Params.t -> t
(** @raise Invalid_argument if [size < 1] or [id < 0]. *)

val with_id : int -> t -> t
(** Same cluster re-indexed (used when assembling grids). *)

val is_singleton : t -> bool
(** A single-machine cluster has no intra-cluster broadcast to perform
    (its [T] is 0); Table 3 has two such clusters. *)

val pp : Format.formatter -> t -> unit

(** Timed inter-cluster broadcast schedules.

    A schedule is the ordered list of coordinator-to-coordinator
    transmissions a heuristic decided, with the timing implied by the
    paper's model: a transmission from [i] to [j] starting at [s] occupies
    [i] until [s + g_ij] (the gap) and delivers at [s + g_ij + L_ij]; a
    coordinator broadcasts internally (duration [T_j]) after its {e last}
    inter-cluster send. *)

type event = {
  round : int;  (** selection order, 0-based *)
  src : int;
  dst : int;
  start : float;  (** when the sender begins injecting *)
  sender_free : float;  (** [start + g]: sender may transmit again *)
  arrival : float;  (** [start + g + L]: receiver holds the message *)
}

type t = {
  root : int;
  n : int;
  events : event list;  (** in round order *)
  ready : float array;  (** RT_k: when coordinator [k] holds the message *)
  busy_until : float array;  (** when coordinator [k] performed its last send
                                 (equals [ready] for pure leaves) *)
}

type completion_model =
  | After_sends
      (** Section 3 formalism: a coordinator starts its intra-cluster
          broadcast only after its last inter-cluster send; cluster [k]
          completes at [busy_until.(k) + T_k].  The default everywhere. *)
  | Overlapped
      (** MagPIe-style overlap: the local broadcast proceeds concurrently
          with the coordinator's remaining wide-area sends; cluster [k]
          completes at [max (ready.(k) + T_k) busy_until.(k)].  Exposed
          because the paper's Figure 3/4 behaviour of ECEF-LAT (best mean at
          high cluster counts, high hit rate) emerges under this model —
          see EXPERIMENTS.md. *)

val makespan : ?model:completion_model -> Instance.t -> t -> float
(** Maximum per-cluster completion under the chosen model (default
    {!After_sends}). *)

val completion_times : ?model:completion_model -> Instance.t -> t -> float array
(** Per-cluster completion. *)

val validate : Instance.t -> t -> (unit, string) result
(** Structural and temporal soundness:
    - every non-root cluster receives exactly once, the root never receives;
    - senders hold the message before sending ([start >= ready src]);
    - a sender's transmissions do not overlap (gap exclusivity);
    - arrival arithmetic matches the instance matrices;
    - [ready]/[busy_until] agree with the event list. *)

val rounds : t -> int
(** Number of inter-cluster transmissions ([n - 1] when valid). *)

val depth : t -> int
(** Longest relay chain from the root (1 for a pure flat tree). *)

val senders : t -> int list
(** Distinct clusters that performed at least one send, ascending. *)

val pp : Format.formatter -> t -> unit

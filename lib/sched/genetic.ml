module Rng = Gridb_util.Rng

type config = {
  population : int;
  generations : int;
  mutation_probability : float;
  seed : int;
}

let default_config =
  { population = 24; generations = 40; mutation_probability = 0.3; seed = 0 }

let random_schedule ~rng inst =
  let state = State.create inst in
  while not (State.finished state) do
    let members_a = Array.of_list (State.members_a state) in
    let members_b = Array.of_list (State.members_b state) in
    State.send state ~src:(Rng.pick rng members_a) ~dst:(Rng.pick rng members_b)
  done;
  State.to_schedule state

(* Crossover: keep a random-length prefix of parent A, then deliver parent
   B's remaining receivers in B's order; each such pick keeps B's sender if
   already valid, otherwise falls back to the receiver's earliest-arrival
   sender.  Always yields a valid complete sequence. *)
let crossover rng inst a_picks b_picks =
  let n = List.length a_picks in
  if n = 0 then []
  else begin
    let cut = Rng.int rng (n + 1) in
    let state = State.create inst in
    let prefix = List.filteri (fun i _ -> i < cut) a_picks in
    List.iter (fun (src, dst) -> State.send state ~src ~dst) prefix;
    let finish_pick (src, dst) =
      if State.finished state || State.in_a state dst then ()
      else begin
        let src =
          if State.in_a state src then src
          else begin
            (* earliest-arrival sender for this receiver *)
            let best = ref (-1) and best_a = ref infinity in
            State.iter_a state (fun i ->
                let a = State.score_arrival state i dst in
                if a < !best_a then begin
                  best_a := a;
                  best := i
                end);
            !best
          end
        in
        State.send state ~src ~dst
      end
    in
    List.iter finish_pick b_picks;
    (* Receivers possibly still missing (prefix covered picks B lacks are
       impossible since both are permutations of the same receiver set, but
       be defensive): serve them greedily. *)
    while not (State.finished state) do
      match (State.members_a state, State.members_b state) with
      | src :: _, dst :: _ -> State.send state ~src ~dst
      | _ -> assert false
    done;
    Refine.picks_of_schedule (State.to_schedule state)
  end

let mutate rng inst picks =
  let arr = Array.of_list picks in
  let len = Array.length arr in
  if len < 2 then picks
  else begin
    let candidate =
      if Rng.bool rng then begin
        let i = Rng.int rng (len - 1) in
        let copy = Array.copy arr in
        let tmp = copy.(i) in
        copy.(i) <- copy.(i + 1);
        copy.(i + 1) <- tmp;
        Array.to_list copy
      end
      else begin
        let i = Rng.int rng len in
        let _, dst = arr.(i) in
        let earlier =
          inst.Instance.root :: (Array.to_list (Array.sub arr 0 i) |> List.map snd)
        in
        let copy = Array.copy arr in
        copy.(i) <- (List.nth earlier (Rng.int rng (List.length earlier)), dst);
        Array.to_list copy
      end
    in
    match Refine.replay inst candidate with Some _ -> candidate | None -> picks
  end

let search ?(config = default_config) ?model ?seeds inst =
  if config.population < 2 then invalid_arg "Genetic.search: population < 2";
  if config.generations < 0 then invalid_arg "Genetic.search: negative generations";
  if config.mutation_probability < 0. || config.mutation_probability > 1. then
    invalid_arg "Genetic.search: mutation probability outside [0, 1]";
  let rng = Rng.create config.seed in
  let seeds =
    match seeds with
    | Some s -> s
    | None -> List.map (fun h -> Heuristics.run h inst) Heuristics.all
  in
  let fitness picks =
    match Refine.replay inst picks with
    | Some s -> Some (Schedule.makespan ?model inst s)
    | None -> None
  in
  let seed_individuals =
    List.map
      (fun s ->
        let picks = Refine.picks_of_schedule s in
        match fitness picks with
        | Some m -> (picks, m)
        | None -> invalid_arg "Genetic.search: invalid seed schedule")
      seeds
  in
  let filler () =
    let picks = Refine.picks_of_schedule (random_schedule ~rng inst) in
    match fitness picks with Some m -> (picks, m) | None -> assert false
  in
  let initial =
    let missing = max 0 (config.population - List.length seed_individuals) in
    seed_individuals @ List.init missing (fun _ -> filler ())
  in
  let sort_pop = List.sort (fun (_, a) (_, b) -> Float.compare a b) in
  let population = ref (sort_pop initial) in
  for _ = 1 to config.generations do
    let pop = Array.of_list !population in
    let size = Array.length pop in
    (* Tournament selection of 2, biased to the fitter half. *)
    let pick_parent () =
      let i = Rng.int rng size and j = Rng.int rng size in
      let (pi, mi) = pop.(i) and (pj, mj) = pop.(j) in
      if mi <= mj then pi else pj
    in
    let offspring =
      List.init size (fun _ ->
          let child = crossover rng inst (pick_parent ()) (pick_parent ()) in
          let child =
            if Rng.float rng 1. < config.mutation_probability then mutate rng inst child
            else child
          in
          match fitness child with Some m -> (child, m) | None -> filler ())
    in
    (* Elitist survival: best [population] of parents + offspring. *)
    let merged = sort_pop (!population @ offspring) in
    population := List.filteri (fun i _ -> i < config.population) merged
  done;
  match !population with
  | (best, _) :: _ -> (
      match Refine.replay inst best with
      | Some s -> s
      | None -> assert false)
  | [] -> invalid_arg "Genetic.search: empty population"

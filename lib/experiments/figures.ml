module Heuristics = Gridb_sched.Heuristics
module Schedule = Gridb_sched.Schedule
module Instance = Gridb_sched.Instance
module Topology = Gridb_topology
module Des = Gridb_des

let seconds us = us /. 1e6

let labels heuristics = List.map (fun h -> h.Heuristics.name) heuristics

let transpose_points points extract =
  (* points: Sweep.point list; extract: point -> per-heuristic float list.
     Result: per-heuristic (x, y) lists. *)
  match points with
  | [] -> []
  | first :: _ ->
      let k = List.length (extract first) in
      List.init k (fun col ->
          List.map
            (fun p -> (float_of_int p.Sweep.n, List.nth (extract p) col))
            points)

let makespan_figure config ~id ~title ~ns heuristics =
  let points = Sweep.run config ~ns heuristics in
  let series =
    List.combine (labels heuristics) (transpose_points points Sweep.mean_seconds)
  in
  {
    Report.id;
    title;
    x_label = "clusters";
    y_label = "completion time (s)";
    series;
    notes =
      [
        Printf.sprintf "1 MB broadcast, Table 2 parameter ranges, %d iterations/point"
          config.Config.iterations;
        Printf.sprintf "largest standard error of any plotted mean: %.4f s"
          (Sweep.max_stderr_seconds points);
      ];
  }

let fig1_small_grids config =
  makespan_figure config ~id:"fig1"
    ~title:"Broadcast completion time, small grids (paper Fig. 1)"
    ~ns:[ 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    Heuristics.all

let large_ns = [ 5; 10; 15; 20; 25; 30; 35; 40; 45; 50 ]

let fig2_large_grids config =
  makespan_figure config ~id:"fig2"
    ~title:"Broadcast completion time, up to 50 clusters (paper Fig. 2)" ~ns:large_ns
    Heuristics.all

let fig3_ecef_zoom config =
  makespan_figure config ~id:"fig3"
    ~title:"ECEF-like heuristics only (paper Fig. 3)" ~ns:large_ns
    Heuristics.ecef_family

let hit_figure config ~id ~model_name =
  let points = Sweep.run config ~ns:large_ns Heuristics.ecef_family in
  let series =
    List.combine (labels Heuristics.ecef_family) (transpose_points points Sweep.hits)
  in
  {
    Report.id;
    title =
      Printf.sprintf "Hit rate vs global minimum, %s completion model (paper Fig. 4)"
        model_name;
    x_label = "clusters";
    y_label = Printf.sprintf "hits out of %d" config.Config.iterations;
    series;
    notes =
      [
        "global minimum = best makespan among the four heuristics on each draw;";
        "ties count for every heuristic achieving it (hence columns sum above the";
        "iteration count).  Model comparison discussed in EXPERIMENTS.md.";
      ];
  }

let fig4_hit_rate config =
  let literal =
    hit_figure
      (Config.with_model Schedule.After_sends config)
      ~id:"fig4a" ~model_name:"after-sends (paper formalism)"
  in
  let overlapped =
    hit_figure
      (Config.with_model Schedule.Overlapped config)
      ~id:"fig4b" ~model_name:"overlapped (MagPIe-style)"
  in
  (literal, overlapped)

let message_sizes =
  [
    250_000;
    500_000;
    1_000_000;
    1_500_000;
    2_000_000;
    2_500_000;
    3_000_000;
    3_500_000;
    4_000_000;
    4_500_000;
  ]

let grid5000_root = Topology.Grid5000.root_cluster

let fig5_predicted config =
  let grid = Topology.Grid5000.grid () in
  let series =
    List.map
      (fun h ->
        let points =
          List.map
            (fun msg ->
              let inst = Instance.of_grid ~root:grid5000_root ~msg grid in
              ( float_of_int msg,
                seconds (Heuristics.makespan ~model:config.Config.model h inst) ))
            message_sizes
        in
        (h.Heuristics.name, points))
      Heuristics.all
  in
  {
    Report.id = "fig5";
    title = "Predicted broadcast time, 88-machine GRID5000 grid (paper Fig. 5)";
    x_label = "message size (bytes)";
    y_label = "completion time (s)";
    series;
    notes =
      [
        "Table 3 latencies verbatim; per-link bandwidths synthesised by latency";
        "class (see DESIGN.md substitutions).";
      ];
  }

let fig6_measured config =
  let grid = Topology.Grid5000.grid () in
  let machines = Topology.Machines.expand grid in
  let noise = Des.Noise.default_measured in
  let repetitions = 10 in
  let heuristic_series =
    List.map
      (fun h ->
        let points =
          List.map
            (fun msg ->
              let inst = Instance.of_grid ~root:grid5000_root ~msg grid in
              let schedule = Heuristics.run h inst in
              let plan = Des.Plan.of_cluster_schedule machines schedule in
              let overhead =
                Gridb_sched.Overhead.cost_us ~n:inst.Instance.n h.Heuristics.name
              in
              let rng = Gridb_util.Rng.create (config.Config.seed + msg) in
              let total = ref 0. in
              for _ = 1 to repetitions do
                let r =
                  Des.Exec.run ~noise ~rng ~start_delay:overhead ~msg machines plan
                in
                total := !total +. r.Des.Exec.makespan
              done;
              (float_of_int msg, seconds (!total /. float_of_int repetitions)))
            message_sizes
        in
        (h.Heuristics.name, points))
      Heuristics.all
  in
  let lam_series =
    let plan =
      Des.Plan.binomial_ranks machines
        ~root:(Topology.Machines.coordinator machines grid5000_root)
    in
    let points =
      List.map
        (fun msg ->
          let rng = Gridb_util.Rng.create (config.Config.seed + msg) in
          let total = ref 0. in
          for _ = 1 to repetitions do
            let r = Des.Exec.run ~noise ~rng ~msg machines plan in
            total := !total +. r.Des.Exec.makespan
          done;
          (float_of_int msg, seconds (!total /. float_of_int repetitions)))
        message_sizes
    in
    ("Default LAM", points)
  in
  {
    Report.id = "fig6";
    title = "Measured broadcast time (DES + noise + overhead) (paper Fig. 6)";
    x_label = "message size (bytes)";
    y_label = "completion time (s)";
    series = lam_series :: heuristic_series;
    notes =
      [
        Printf.sprintf
          "discrete-event execution, %s noise, %d repetitions per point, scheduling"
          (Des.Noise.to_string noise) repetitions;
        "overhead charged before the root's first send (Overhead model).";
      ];
  }

(** Terminal line plots.

    Each figure of the paper is reproduced as data rows plus an ASCII plot so
    the curve shapes (crossovers, flatness, linear growth) can be checked
    directly in the bench output without any plotting dependency. *)

type series = { label : string; points : (float * float) list }

val plot :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** Renders all series into one frame.  Each series is drawn with its own
    glyph (first letters a, b, c, ... mapped in the printed legend).  Axes are
    linear and auto-scaled to the union of the data ranges.  Series with
    fewer than one point are skipped. *)

val print :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  unit

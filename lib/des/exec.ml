module Machines = Gridb_topology.Machines
module Params = Gridb_plogp.Params
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type result = {
  arrival : float array;
  makespan : float;
  transmissions : int;
  trace : Trace.transmission list;
}

(* The legacy [record_trace] path is a Memory-sink view over the same event
   stream: the executor emits [Send_start]/[Send_end] pairs to an internal
   Memory sink and the [trace] field is rebuilt from it.  Reversing the
   chronological stream before the (stable) arrival sort reproduces the
   historical reverse-prepend order bit for bit, equal arrivals included. *)
let trace_of_mem mem =
  Trace.of_events (Sink.events mem)
  |> List.rev
  |> List.sort (fun (a : Trace.transmission) b -> Float.compare a.arrival b.arrival)

let intra machines src dst =
  (Machines.machine machines src).Machines.cluster
  = (Machines.machine machines dst).Machines.cluster

let run ?(noise = Noise.Exact) ?rng ?(start_delay = 0.) ?(msg = 1_000_000)
    ?(record_trace = false) ?(obs = Sink.null) machines plan =
  let n = Machines.count machines in
  if Plan.size plan <> n then invalid_arg "Exec.run: plan size mismatch";
  let rng =
    match rng with Some r -> r | None -> Gridb_util.Rng.create 0
  in
  let engine = Engine.create ~obs () in
  let arrival = Array.make n nan in
  let nic_free = Array.make n 0. in
  let transmissions = ref 0 in
  let mem = if record_trace then Sink.memory () else Sink.null in
  let tracing = Sink.enabled mem || Sink.enabled obs in
  let emit e =
    if Sink.enabled mem then Sink.emit mem e;
    if Sink.enabled obs then Sink.emit obs e
  in
  (* On delivery, a rank enqueues its forwarding list: each send seizes the
     NIC for one (noisy) gap; the child receives a (noisy) latency after the
     send starts injecting. *)
  let rec deliver ~src rank engine =
    let time = Engine.now engine in
    arrival.(rank) <- time;
    nic_free.(rank) <- Float.max nic_free.(rank) time;
    if tracing then emit (Event.Arrival { src; dst = rank; time });
    List.iter
      (fun child ->
        let p = Machines.link_params machines rank child in
        let g = Noise.apply noise rng (Params.gap p msg) in
        let l = Noise.apply noise rng (Params.latency p) in
        let start = nic_free.(rank) in
        nic_free.(rank) <- start +. g;
        incr transmissions;
        if tracing then begin
          emit
            (Event.Send_start
               {
                 src = rank;
                 dst = child;
                 time = start;
                 msg;
                 intra = intra machines rank child;
                 try_no = 0;
               });
          emit
            (Event.Send_end
               { src = rank; dst = child; time = start +. g; arrival = start +. g +. l })
        end;
        Engine.schedule engine ~time:(start +. g +. l) (deliver ~src:rank child))
      plan.Plan.children.(rank)
  in
  Engine.schedule engine ~time:start_delay (deliver ~src:plan.Plan.root plan.Plan.root);
  Engine.run engine;
  let makespan = Array.fold_left Float.max 0. arrival in
  let trace = if record_trace then trace_of_mem mem else [] in
  { arrival; makespan; transmissions = !transmissions; trace }

let mean_makespan ?(noise = Noise.default_measured) ?(msg = 1_000_000)
    ?(repetitions = 10) ?(jobs = 1) ~seed machines plan =
  if repetitions < 1 then invalid_arg "Exec.mean_makespan: repetitions < 1";
  (* One indexed stream per repetition ([Rng.split] is pure in the base
     state and the index): equal seeds give equal means, no repetition's
     draw count can bleed into another's stream, and every repetition is a
     self-contained task the pool may run on any worker in any order. *)
  let base = Gridb_util.Rng.create seed in
  let makespans =
    Gridb_util.Pool.mapi ~jobs
      (fun rep () ->
        (run ~noise ~rng:(Gridb_util.Rng.split base rep) ~msg machines plan).makespan)
      (Array.make repetitions ())
  in
  Array.fold_left ( +. ) 0. makespans /. float_of_int repetitions

type transport = Fixed | Adaptive of { config : Adaptive.config; reroute : bool }

let adaptive ?(config = Adaptive.default) ?(reroute = false) () =
  Adaptive { config; reroute }

let transport_of_string str =
  match String.lowercase_ascii (String.trim str) with
  | "fixed" -> Ok Fixed
  | "adaptive" -> Ok (adaptive ())
  | "adaptive,reroute" | "adaptive+reroute" -> Ok (adaptive ~reroute:true ())
  | other ->
      Error
        (Printf.sprintf "unknown transport %S (known: fixed, adaptive, adaptive,reroute)"
           other)

let transport_to_string = function
  | Fixed -> "fixed"
  | Adaptive { reroute = false; _ } -> "adaptive"
  | Adaptive { reroute = true; _ } -> "adaptive,reroute"

type reliable = {
  r_arrival : float array;
  r_makespan : float;
  r_transmissions : int;
  retransmissions : int;
  acks : int;
  delivered : int;
  gave_up : (int * int) list;
  crashed : int list;
  left : int list;
  joined : int list;
  horizon : float;
  reroutes : (int * int * int) list;
  circuit_opens : int;
  estimator : Adaptive.t option;
  r_trace : Trace.transmission list;
}

(* ACK/timeout/exponential-backoff reliable broadcast along a plan.

   Data transmissions follow exactly the pLogP semantics of [run] (same
   arithmetic, same rng draw order), so with an empty fault spec the two
   executors are bit-identical.  On top of that, every plan edge runs a
   stop-and-wait reliability protocol: the receiver returns an ACK on the
   control plane (latency only, no NIC seizure), the sender arms a
   cancellable retransmission timer at [rto] past the end of its injection,
   and every timeout doubles [rto] (capped at [rto_max]) and retransmits
   until [retries] is exhausted.

   [Fixed] transport then abandons the edge (and the subtree hanging off
   it) — graceful degradation to partial delivery.  [Adaptive] transport
   additionally feeds every clean round trip and every timeout into an
   {!Adaptive.t} estimator: the RTO comes from SRTT/RTTVAR instead of the
   static model, and per-link circuit breakers publish
   [Circuit_open]/[Circuit_close].  With [reroute] on, an edge whose
   breaker opens or whose retry budget dies re-parents the orphaned child
   onto an already-delivered alive rank — picked by the ECEF arrival score
   over live-estimated link parameters — so delivery is total unless the
   destination is crashed or physically partitioned.

   The estimator is pure float bookkeeping on times the executor already
   has: it draws no randomness and never touches the data-path arithmetic,
   and with no faults every retransmission timer is cancelled by its ACK
   before firing — which is why the zero-fault adaptive run stays
   bit-identical to [run] too. *)
let run_reliable ?(noise = Noise.Exact) ?rng ?(start_delay = 0.) ?(msg = 1_000_000)
    ?(record_trace = false) ?(obs = Sink.null) ?faults ?dynamics
    ?(on_tick = fun ~now:_ _ -> ()) ?(tick_every = 0.) ?(retries = 5) ?(rto_mult = 2.)
    ?(rto_min = 1.) ?(rto_max = 1e9) ?(transport = Fixed) machines plan =
  let n = Machines.count machines in
  if Plan.size plan <> n then invalid_arg "Exec.run_reliable: plan size mismatch";
  if retries < 0 then invalid_arg "Exec.run_reliable: negative retries";
  if rto_mult < 1. then invalid_arg "Exec.run_reliable: rto_mult < 1";
  if rto_min <= 0. then invalid_arg "Exec.run_reliable: rto_min must be positive";
  if rto_max < rto_min then invalid_arg "Exec.run_reliable: rto_max < rto_min";
  if tick_every < 0. then invalid_arg "Exec.run_reliable: negative tick_every";
  let faults =
    match faults with
    | Some f ->
        if Faults.size f <> n then
          invalid_arg "Exec.run_reliable: fault model size mismatch";
        f
    | None -> Faults.create ~n Faults.none
  in
  (match dynamics with
  | Some d when Dynamics.size d <> n ->
      invalid_arg "Exec.run_reliable: dynamics model size mismatch"
  | _ -> ());
  (* Joins extend the rank space above the planning-time population: every
     per-rank array is sized [ntot], and ranks >= n exist from time 0 as
     far as the arrays are concerned but only become reachable once their
     join event fires (the adoption below). *)
  let joins = match dynamics with Some d -> Dynamics.joins d | None -> [||] in
  let ntot = n + Array.length joins in
  let grid = Machines.grid machines in
  let cluster_of r =
    if r < n then (Machines.machine machines r).Machines.cluster
    else joins.(r - n).Dynamics.cluster
  in
  (* Link parameters generalised to join ranks: a joining machine gets
     fresh links with its cluster's nominal intra parameters, and the
     nominal inter-cluster parameters towards everyone else. *)
  let params_for src dst =
    if src < n && dst < n then Machines.link_params machines src dst
    else
      let cs = cluster_of src and cd = cluster_of dst in
      if cs = cd then (Gridb_topology.Grid.cluster grid cs).Gridb_topology.Cluster.intra
      else Gridb_topology.Grid.link grid cs cd
  in
  (* A rank halts at its fault-model crash or its dynamics departure,
     whichever comes first; join ranks never halt. *)
  let halt r =
    let crash = if r < n then Faults.crash_time faults r else infinity in
    match dynamics with
    | None -> crash
    | Some d -> Float.min crash (Dynamics.leave_time d r)
  in
  (* Fault processes are drawn over the planning-time population only; a
     join's fresh links are loss-free, cut-free and undegraded (and
     {!Dynamics.factor} is exactly 1. on them too). *)
  let fresh_link src dst = src >= n || dst >= n in
  let lose_on src dst =
    (not (fresh_link src dst)) && Faults.lose faults ~src ~dst
  in
  let link_up src dst ~at =
    fresh_link src dst || Faults.link_up faults ~src ~dst ~at
  in
  let slowdown src dst ~at =
    let f = if fresh_link src dst then 1. else Faults.slowdown faults ~src ~dst ~at in
    match dynamics with None -> f | Some d -> f *. Dynamics.factor d ~src ~dst ~at
  in
  let rng = match rng with Some r -> r | None -> Gridb_util.Rng.create 0 in
  let engine = Engine.create ~obs () in
  let arrival = Array.make ntot nan in
  let nic_free = Array.make ntot 0. in
  let has_msg = Array.make ntot false in
  let transmissions = ref 0 in
  let retransmissions = ref 0 in
  let acks = ref 0 in
  let gave_up = ref [] in
  let mem = if record_trace then Sink.memory () else Sink.null in
  let tracing = Sink.enabled mem || Sink.enabled obs in
  let emit e =
    if Sink.enabled mem then Sink.emit mem e;
    if Sink.enabled obs then Sink.emit obs e
  in
  let est, reroute =
    match transport with
    | Fixed -> (None, false)
    | Adaptive { config; reroute } -> (Some (Adaptive.create ~config ~n:ntot ()), reroute)
  in
  let max_reroutes =
    match est with
    | None -> 0
    | Some est ->
        let m = (Adaptive.config est).Adaptive.max_reroutes in
        if m = 0 then 2 * ntot else m
  in
  (* Per-edge protocol state, indexed by the child (each non-root rank has a
     unique parent in the plan; under reroute the parent can change, but a
     child still has at most one live edge at a time). *)
  let acked = Array.make ntot false in
  let timers = Array.make ntot None in
  let cur_parent = Array.make ntot (-1) in
  let cur_try = Array.make ntot 0 in
  let last_start = Array.make ntot nan in
  let reroutes_used = Array.make ntot 0 in
  let failed = Array.make (ntot * ntot) false in
  (* Orphans with no delivered alive candidate yet, retried on the next
     delivery: (dst, parent that last failed it). *)
  let pending = ref [] in
  let reroute_log = ref [] in
  let circuit_opens = ref 0 in
  (* Noiseless round trip: data gap + data latency + ACK latency.  The RTO
     inflates it by rto_mult and floors it at rto_min; the estimator's
     nominal (the quality denominator SRTT converges to) must stay raw. *)
  let model_round_trip src dst =
    let p = params_for src dst in
    let pb = params_for dst src in
    Params.gap p msg +. Params.latency p +. Params.latency pb
  in
  let model_rto src dst = Float.max rto_min (rto_mult *. model_round_trip src dst) in
  let initial_rto src dst =
    let fallback = model_rto src dst in
    match est with
    | None -> fallback
    | Some est ->
        Adaptive.rto est ~src ~dst ~nominal:(model_round_trip src dst) ~fallback
  in
  let backoff rto = Float.min rto_max (2. *. rto) in
  (* Best already-delivered alive parent for an orphan, by the ECEF arrival
     score over live-estimated link quality; candidates whose circuit to
     [dst] is open (or that already failed this orphan) only as a last
     resort. *)
  let pick_parent ~dst ~now =
    match est with
    | None -> None
    | Some est ->
        let best = ref None in
        for p = 0 to ntot - 1 do
          (* Liveness must be judged at the moment the parent could actually
             start sending — max(now, nic_free) — not at [now]: a backlogged
             parent that crashes before its NIC frees would fail the attempt
             at start, re-orphan the child synchronously, and the cycle
             would churn the whole reroute budget in one instant.  Judged at
             the send horizon, doomed parents are no candidates at all and
             the orphan parks until a later delivery provides a live one. *)
          if p <> dst && has_msg.(p) && halt p > Float.max now nic_free.(p) then begin
            (* Pure breaker read: scoring must not half-open circuits of
               candidates no probe will cross; the winner's transition is
               applied in [try_reroute]. *)
            let tier =
              if failed.((dst * ntot) + p) then 2
              else if Adaptive.usable_now est ~src:p ~dst ~now then 0
              else 1
            in
            let ep = Adaptive.estimated_params est ~src:p ~dst (params_for p dst) in
            let score =
              Gridb_sched.Policy.arrival_score
                ~avail:(Float.max now nic_free.(p))
                ~gap:(Params.gap ep msg) ~latency:(Params.latency ep)
            in
            match !best with
            | Some (bt, bs, _) when bt < tier || (bt = tier && bs <= score) -> ()
            | _ -> best := Some (tier, score, p)
          end
        done;
        Option.map (fun ((_ : int), (_ : float), p) -> p) !best
  in
  (* Join arrivals and estimator-snapshot ticks are processed
     opportunistically from the protocol handlers instead of being
     scheduled as engine events: the estimator's state only changes at
     those handlers anyway, and pre-scheduled ticks would keep the engine
     alive long past quiescence.  A join (or tick) later than the last
     protocol event is outside the simulated horizon and never happened. *)
  let next_join = ref 0 in
  let next_tick = ref (if tick_every > 0. then start_delay +. tick_every else infinity) in
  let dyn_on = Array.length joins > 0 || tick_every > 0. in
  let rec dyn_tick engine =
    let now = Engine.now engine in
    (if reroute then
       while !next_join < Array.length joins && joins.(!next_join).Dynamics.at <= now do
         let j = joins.(!next_join) in
         incr next_join;
         (* The new rank announces itself to its cluster's coordinator and
            is adopted through the ordinary reroute machinery — parked
            until a delivered alive parent exists. *)
         if not has_msg.(j.Dynamics.rank) then
           try_reroute
             ~old_parent:(Machines.coordinator machines j.Dynamics.cluster)
             ~dst:j.Dynamics.rank engine
       done);
    if now >= !next_tick then begin
      while !next_tick <= now do
        next_tick := !next_tick +. tick_every
      done;
      on_tick ~now est
    end
  and attempt ~src ~dst ~try_no ~rto engine =
    let now = Engine.now engine in
    let start = Float.max now nic_free.(src) in
    (* A halted sender transmits nothing more; its pending edges die here
       (under reroute the child becomes an orphan instead). *)
    if halt src > start then begin
      cur_parent.(dst) <- src;
      cur_try.(dst) <- try_no;
      last_start.(dst) <- start;
      let p = params_for src dst in
      let d = slowdown src dst ~at:start in
      let g = Noise.apply noise rng (Params.gap p msg) *. d in
      let l = Noise.apply noise rng (Params.latency p) *. d in
      nic_free.(src) <- start +. g;
      incr transmissions;
      if try_no > 0 then incr retransmissions;
      let arr = start +. g +. l in
      if tracing then begin
        emit
          (Event.Send_start
             {
               src;
               dst;
               time = start;
               msg;
               intra = cluster_of src = cluster_of dst;
               try_no;
             });
        emit (Event.Send_end { src; dst; time = start +. g; arrival = arr })
      end;
      let lost =
        lose_on src dst || (not (link_up src dst ~at:start)) || halt dst <= arr
      in
      if not lost then Engine.schedule engine ~time:arr (data_arrives ~src ~dst);
      let tm =
        Engine.schedule_timer engine ~time:(start +. g +. rto)
          (timeout ~src ~dst ~try_no ~rto)
      in
      timers.(dst) <- Some tm
    end
    else if reroute then orphaned ~old_parent:src ~dst engine
  and data_arrives ~src ~dst engine =
    if dyn_on then dyn_tick engine;
    let now = Engine.now engine in
    if not has_msg.(dst) then begin
      has_msg.(dst) <- true;
      arrival.(dst) <- now;
      nic_free.(dst) <- Float.max nic_free.(dst) now;
      if tracing then emit (Event.Arrival { src; dst; time = now });
      forward dst engine;
      if reroute then drain_pending engine
    end;
    (* ACK on the control plane: pays the reverse latency (degraded if the
       reverse link is) but does not seize the receiver's NIC, so the ACK
       never perturbs data timing.  Duplicated deliveries are re-ACKed so a
       sender that lost an ACK eventually stops retransmitting. *)
    let pb = params_for dst src in
    let l_back = Noise.apply noise rng (Params.latency pb) *. slowdown dst src ~at:now in
    let ack_at = now +. l_back in
    let ack_lost =
      lose_on dst src || (not (link_up dst src ~at:now)) || halt src <= ack_at
    in
    if not ack_lost then
      Engine.schedule engine ~time:ack_at (ack_arrives ~parent:src ~child:dst)
  and ack_arrives ~parent ~child engine =
    if dyn_on then dyn_tick engine;
    incr acks;
    let now = Engine.now engine in
    if tracing then emit (Event.Ack { src = child; dst = parent; time = now });
    (* RTT sample for the estimator — only for the edge currently armed
       (a stale ACK from a pre-reroute parent must not be attributed to the
       new link), and per Karn's rule flagged ambiguous when the edge has
       retransmitted. *)
    (match est with
    | Some est when parent = cur_parent.(child) && not acked.(child) ->
        let rtt = now -. last_start.(child) in
        (match
           Adaptive.on_sample est ~src:parent ~dst:child ~rtt
             ~retransmitted:(cur_try.(child) > 0) ~now
         with
        | `No_change -> ()
        | `Opened ->
            incr circuit_opens;
            if tracing then emit (Event.Circuit_open { src = parent; dst = child; time = now })
        | `Closed ->
            if tracing then emit (Event.Circuit_close { src = parent; dst = child; time = now }))
    | _ -> ());
    if not acked.(child) then begin
      acked.(child) <- true;
      match timers.(child) with
      | Some tm ->
          Engine.cancel engine tm;
          timers.(child) <- None
      | None -> ()
    end
  and timeout ~src ~dst ~try_no ~rto engine =
    if dyn_on then dyn_tick engine;
    timers.(dst) <- None;
    if not acked.(dst) then begin
      let now = Engine.now engine in
      if halt src <= now then begin
        if reroute then orphaned ~old_parent:src ~dst engine
      end
      else begin
        let opened =
          match est with
          | None -> false
          | Some est ->
              let o = Adaptive.on_timeout est ~src ~dst ~now in
              if o then begin
                incr circuit_opens;
                if tracing then emit (Event.Circuit_open { src; dst; time = now })
              end;
              o
        in
        if reroute && (opened || try_no >= retries) then
          orphaned ~old_parent:src ~dst engine
        else if try_no >= retries then begin
          gave_up := (src, dst) :: !gave_up;
          if tracing then emit (Event.Give_up { src; dst; time = now })
        end
        else begin
          let rto' = backoff rto in
          if tracing then
            emit
              (Event.Retransmit { src; dst; time = now; try_no = try_no + 1; rto = rto' });
          attempt ~src ~dst ~try_no:(try_no + 1) ~rto:rto' engine
        end
      end
    end
  and orphaned ~old_parent ~dst engine =
    (* A duplicate delivery may already have landed; then there is nothing
       to reroute (the timer is gone either way). *)
    if not has_msg.(dst) then begin
      failed.((dst * ntot) + old_parent) <- true;
      try_reroute ~old_parent ~dst engine
    end
  and try_reroute ~old_parent ~dst engine =
    let now = Engine.now engine in
    let lost =
      (* A halted destination can never deliver (burning the reroute budget
         on it would only inflate the sweep); past the budget the orphan is
         abandoned for good. *)
      halt dst <= now || reroutes_used.(dst) >= max_reroutes
    in
    if lost then begin
      gave_up := (old_parent, dst) :: !gave_up;
      if tracing then emit (Event.Give_up { src = old_parent; dst; time = now });
      (* The subtree planned under a permanently lost child is stranded
         with it — its members never saw an attempt, so re-parent each of
         them onto the delivered set too.  (Join ranks have no planned
         subtree: the plan predates them.) *)
      if dst < n then
        List.iter
          (fun gc -> orphaned ~old_parent:dst ~dst:gc engine)
          plan.Plan.children.(dst)
    end
    else
      match pick_parent ~dst ~now with
      | Some p ->
          (* Only the chosen parent is actually probed, so only its breaker
             takes the cooldown-expiry transition (Open -> Half_open). *)
          (match est with
          | Some est -> ignore (Adaptive.usable est ~src:p ~dst ~now : bool)
          | None -> ());
          reroutes_used.(dst) <- reroutes_used.(dst) + 1;
          reroute_log := (dst, old_parent, p) :: !reroute_log;
          if tracing then
            emit (Event.Reroute { dst; old_parent; new_parent = p; time = now });
          attempt ~src:p ~dst ~try_no:0 ~rto:(initial_rto p dst) engine
      | None ->
          if not (List.exists (fun (d, _) -> d = dst) !pending) then
            pending := (dst, old_parent) :: !pending
  and drain_pending engine =
    match !pending with
    | [] -> ()
    | parked ->
        pending := [];
        List.iter
          (fun (dst, old_parent) ->
            if not has_msg.(dst) then try_reroute ~old_parent ~dst engine)
          (List.rev parked)
  and forward rank engine =
    (* A delivered join rank forwards nothing: the plan predates it. *)
    if rank < n then
      List.iter
        (fun child ->
          attempt ~src:rank ~dst:child ~try_no:0 ~rto:(initial_rto rank child) engine)
        plan.Plan.children.(rank)
  in
  Engine.schedule engine ~time:start_delay (fun engine ->
      let now = Engine.now engine in
      if halt plan.Plan.root > now then begin
        has_msg.(plan.Plan.root) <- true;
        arrival.(plan.Plan.root) <- now;
        nic_free.(plan.Plan.root) <- Float.max nic_free.(plan.Plan.root) now;
        if tracing then
          emit (Event.Arrival { src = plan.Plan.root; dst = plan.Plan.root; time = now });
        forward plan.Plan.root engine
      end);
  Engine.run engine;
  let makespan =
    Array.fold_left (fun acc t -> if Float.is_nan t then acc else Float.max acc t) 0. arrival
  in
  let horizon = Engine.now engine in
  let crashed =
    List.filter (fun r -> Faults.crash_time faults r <= horizon) (List.init n Fun.id)
  in
  let left =
    match dynamics with
    | None -> []
    | Some d ->
        List.filter (fun r -> Dynamics.leave_time d r <= horizon) (List.init n Fun.id)
  in
  let joined =
    Array.to_list joins
    |> List.filter_map (fun j ->
           if j.Dynamics.at <= horizon then Some j.Dynamics.rank else None)
  in
  let delivered = Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 has_msg in
  let trace = if record_trace then trace_of_mem mem else [] in
  {
    r_arrival = arrival;
    r_makespan = makespan;
    r_transmissions = !transmissions;
    retransmissions = !retransmissions;
    acks = !acks;
    delivered;
    gave_up = List.rev !gave_up;
    crashed;
    left;
    joined;
    horizon;
    reroutes = List.rev !reroute_log;
    circuit_opens = !circuit_opens;
    estimator = est;
    r_trace = trace;
  }

type reliable_summary = {
  reps : int;
  delivered_fraction : float;
  mean_retransmissions : float;
  mean_reroutes : float;
  mean_makespan : float;
  stddev_makespan : float;
  total_gave_up : int;
  all_delivered : bool;
}

let mean_reliable ?(noise = Noise.default_measured) ?(msg = 1_000_000)
    ?(repetitions = 10) ?(retries = 5) ?(rto_mult = 2.) ?(rto_min = 1.)
    ?(rto_max = 1e9) ?(transport = Fixed) ?(jobs = 1) ~seed ~spec machines plan =
  if repetitions < 1 then invalid_arg "Exec.mean_reliable: repetitions < 1";
  let n = Machines.count machines in
  (* Same indexed-stream discipline as [mean_makespan]: repetition [rep]
     runs entirely on [Rng.split base rep], burning the stream's first raw
     draw for its fault seed.  Equal seeds give equal summaries, no
     repetition's draw count bleeds into another's stream, and the pool may
     execute repetitions on any worker in any order. *)
  let base = Gridb_util.Rng.create seed in
  let results =
    Gridb_util.Pool.mapi ~jobs
      (fun rep () ->
        let stream = Gridb_util.Rng.split base rep in
        let fseed = Int64.to_int (Gridb_util.Rng.bits64 stream) land max_int in
        let faults = Faults.create ~seed:fseed ~n spec in
        run_reliable ~noise ~rng:stream ~msg ~faults ~retries ~rto_mult ~rto_min
          ~rto_max ~transport machines plan)
      (Array.make repetitions ())
  in
  let makespans = Array.map (fun r -> r.r_makespan) results in
  let delivered = ref 0 in
  let retrans = ref 0 in
  let reroutes = ref 0 in
  let gave = ref 0 in
  let all = ref true in
  Array.iter
    (fun r ->
      delivered := !delivered + r.delivered;
      retrans := !retrans + r.retransmissions;
      reroutes := !reroutes + List.length r.reroutes;
      gave := !gave + List.length r.gave_up;
      if r.delivered <> n then all := false)
    results;
  let reps = float_of_int repetitions in
  let mean = Array.fold_left ( +. ) 0. makespans /. reps in
  let var =
    Array.fold_left (fun acc m -> acc +. ((m -. mean) *. (m -. mean))) 0. makespans /. reps
  in
  {
    reps = repetitions;
    delivered_fraction = float_of_int !delivered /. (reps *. float_of_int n);
    mean_retransmissions = float_of_int !retrans /. reps;
    mean_reroutes = float_of_int !reroutes /. reps;
    mean_makespan = mean;
    stddev_makespan = sqrt var;
    total_gave_up = !gave;
    all_delivered = !all;
  }

(* Tests for gridb_collectives: tree shapes, pLogP cost models, pipelining. *)

module Tree = Gridb_collectives.Tree
module Cost = Gridb_collectives.Cost
module Pipeline = Gridb_collectives.Pipeline
module Params = Gridb_plogp.Params

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

let params = Params.linear ~latency:50. ~g0:20. ~bandwidth_mb_s:100.

(* --- Tree shapes -------------------------------------------------------- *)

let test_trees_spanning =
  QCheck.Test.make ~name:"every shape spans 0..n-1 exactly once" ~count:(Testutil.count 100)
    QCheck.(int_range 1 200)
    (fun n ->
      List.for_all (fun shape -> Tree.is_spanning ~n (Tree.build shape n)) Tree.all_shapes)

let test_binomial_depth () =
  (* Classic binomial structure: the child at offset 2^i owns the range
     [2^i, 2^(i+1)) clamped to n.  Depth is floor(log2) of the largest
     fully-populated subtree — e.g. n=3 has both non-roots as direct
     children (depth 1) even though dissemination takes 2 rounds. *)
  List.iter
    (fun (n, expected) ->
      Alcotest.(check int) (Printf.sprintf "depth n=%d" n) expected
        (Tree.depth (Tree.binomial n)))
    [ (1, 0); (2, 1); (3, 1); (4, 2); (5, 2); (8, 3); (9, 3); (16, 4); (17, 4); (88, 6) ]

let test_binomial_root_children () =
  (* Root children at offsets 16, 8, 4, 2, 1 for n in (16, 32]. *)
  let t = Tree.binomial 20 in
  Alcotest.(check (list int)) "root children descending powers" [ 16; 8; 4; 2; 1 ]
    (List.map (fun (c : Tree.t) -> c.Tree.node) t.Tree.children)

let test_flat_shape () =
  let t = Tree.flat 5 in
  Alcotest.(check int) "depth 1" 1 (Tree.depth t);
  Alcotest.(check int) "out degree 4" 4 (Tree.max_out_degree t)

let test_chain_shape () =
  let t = Tree.chain 6 in
  Alcotest.(check int) "depth n-1" 5 (Tree.depth t);
  Alcotest.(check int) "out degree 1" 1 (Tree.max_out_degree t)

let test_binary_shape () =
  let t = Tree.binary 7 in
  Alcotest.(check int) "depth" 2 (Tree.depth t);
  Alcotest.(check int) "out degree" 2 (Tree.max_out_degree t)

let test_kary_rejects () =
  Alcotest.check_raises "k=0" (Invalid_argument "Tree.kary: k < 1") (fun () ->
      ignore (Tree.kary ~k:0 3));
  Alcotest.check_raises "n=0" (Invalid_argument "Tree.binomial: n < 1") (fun () ->
      ignore (Tree.binomial 0))

let test_tree_size_nodes () =
  let t = Tree.binomial 13 in
  Alcotest.(check int) "size" 13 (Tree.size t);
  Alcotest.(check (list int)) "nodes sorted" (List.init 13 Fun.id)
    (List.sort compare (Tree.nodes t))

(* --- Cost models ---------------------------------------------------------- *)

let test_cost_two_nodes () =
  (* One transmission: g + L. *)
  let t = Tree.binomial 2 in
  check_feq "g+L" (Params.gap params 1000 +. 50.) (Cost.tree_completion ~params ~msg:1000 t)

let test_cost_flat_tree () =
  (* Flat over n: last of n-1 sequential sends: (n-1) g + L. *)
  let n = 6 in
  let expected = (5. *. Params.gap params 1000) +. 50. in
  check_feq "flat" expected (Cost.tree_completion ~params ~msg:1000 (Tree.flat n))

let test_cost_chain () =
  (* Chain: (n-1)(g + L). *)
  let n = 5 in
  let expected = 4. *. (Params.gap params 1000 +. 50.) in
  check_feq "chain" expected (Cost.tree_completion ~params ~msg:1000 (Tree.chain n))

let test_cost_binomial_power_of_two () =
  (* For n = 2^k with gap-dominated model, completion = k*g + L when g >= L
     is not generally closed-form; instead verify the recursive structure by
     direct simulation over arrivals. *)
  let t = Tree.binomial 8 in
  let arrivals = Cost.per_node_arrival ~params ~msg:1000 t in
  Alcotest.(check int) "8 arrivals" 8 (List.length arrivals);
  let root_time = List.assoc 0 arrivals in
  check_feq "root at 0" 0. root_time;
  (* node 4 is the root's first child: receives at g + L *)
  check_feq "first child" (Params.gap params 1000 +. 50.) (List.assoc 4 arrivals)

let test_cost_monotone_in_size =
  QCheck.Test.make ~name:"broadcast time monotone in cluster size" ~count:(Testutil.count 50)
    QCheck.(int_range 1 100)
    (fun n ->
      Cost.broadcast_time ~params ~size:n ~msg:10_000 ()
      <= Cost.broadcast_time ~params ~size:(n + 1) ~msg:10_000 () +. 1e-9)

let test_cost_binomial_beats_flat_and_chain =
  QCheck.Test.make ~name:"binomial <= flat and <= chain for n >= 3" ~count:(Testutil.count 50)
    QCheck.(int_range 3 150)
    (fun n ->
      let b = Cost.broadcast_time ~shape:Tree.Binomial ~params ~size:n ~msg:100_000 () in
      let f = Cost.broadcast_time ~shape:Tree.Flat ~params ~size:n ~msg:100_000 () in
      let c = Cost.broadcast_time ~shape:Tree.Chain ~params ~size:n ~msg:100_000 () in
      b <= f +. 1e-6 && b <= c +. 1e-6)

let test_cost_trivial_sizes () =
  check_feq "size 1 is free" 0. (Cost.broadcast_time ~params ~size:1 ~msg:1_000_000 ());
  check_feq "scatter size 1" 0. (Cost.scatter_time ~params ~size:1 ~msg:1000);
  check_feq "allgather size 1" 0. (Cost.allgather_ring_time ~params ~size:1 ~msg:1000);
  check_feq "barrier size 1" 0. (Cost.barrier_time ~params ~size:1)

let test_cost_scatter_formula () =
  check_feq "scatter"
    ((4. *. Params.gap params 2048) +. 50.)
    (Cost.scatter_time ~params ~size:5 ~msg:2048);
  check_feq "gather mirror" (Cost.scatter_time ~params ~size:5 ~msg:2048)
    (Cost.gather_time ~params ~size:5 ~msg:2048)

let test_cost_allgather_formula () =
  check_feq "ring"
    (7. *. (Params.gap params 4096 +. 50.))
    (Cost.allgather_ring_time ~params ~size:8 ~msg:4096)

let test_cost_barrier_formula () =
  check_feq "barrier 8 = 3 rounds"
    (3. *. (Params.gap params 0 +. 50.))
    (Cost.barrier_time ~params ~size:8);
  check_feq "barrier 9 = 4 rounds"
    (4. *. (Params.gap params 0 +. 50.))
    (Cost.barrier_time ~params ~size:9)

(* --- Pipeline -------------------------------------------------------------- *)

let test_pipeline_one_segment_is_chain () =
  let n = 6 and msg = 100_000 in
  check_feq "1 segment = chain cost"
    (Cost.tree_completion ~params ~msg (Tree.chain n))
    (Pipeline.chain_time ~params ~size:n ~msg ~segments:1)

let test_pipeline_formula () =
  (* (s + n - 2) * g(m/s) + (n-1) L *)
  let n = 4 and msg = 100_000 and s = 4 in
  let seg = msg / s in
  let expected =
    (float_of_int (s + n - 2) *. Params.gap params seg) +. (3. *. 50.)
  in
  check_feq "segmented chain" expected (Pipeline.chain_time ~params ~size:n ~msg ~segments:s)

let test_pipeline_best_segments () =
  let segments, time = Pipeline.best_segments ~params ~size:16 ~msg:1_000_000 () in
  Alcotest.(check bool) "found candidate" true (segments >= 1);
  (* best must be no worse than either extreme candidate *)
  Alcotest.(check bool) "beats 1 segment" true
    (time <= Pipeline.chain_time ~params ~size:16 ~msg:1_000_000 ~segments:1 +. 1e-9);
  Alcotest.(check bool) "beats 256 segments" true
    (time <= Pipeline.chain_time ~params ~size:16 ~msg:1_000_000 ~segments:256 +. 1e-9)

let test_pipeline_beats_binomial_large_messages () =
  (* With high per-message cost amortised, pipelining wins for large
     messages on long chains. *)
  match Pipeline.binomial_vs_pipeline ~params ~size:32 ~msg:4_000_000 with
  | `Pipeline (_, t) ->
      let b = Cost.broadcast_time ~params ~size:32 ~msg:4_000_000 () in
      Alcotest.(check bool) "pipeline faster" true (t < b)
  | `Binomial _ -> Alcotest.fail "expected pipeline to win at 4 MB over 32 nodes"

let test_pipeline_rejects () =
  Alcotest.check_raises "segments < 1" (Invalid_argument "Pipeline.chain_time: segments < 1")
    (fun () -> ignore (Pipeline.chain_time ~params ~size:4 ~msg:100 ~segments:0))

(* --- Auto-tuning -------------------------------------------------------------- *)

module Tuned = Gridb_collectives.Tuned

let test_tuned_never_worse_than_binomial =
  QCheck.Test.make ~name:"tuned time <= binomial time" ~count:(Testutil.count 100)
    QCheck.(pair (int_range 1 64) (int_range 1 22))
    (fun (size, msg_exp) ->
      let msg = 1 lsl msg_exp in
      let t = Tuned.broadcast_time ~params ~size ~msg () in
      t <= Cost.broadcast_time ~params ~size ~msg () +. 1e-9)

let test_tuned_small_message_prefers_tree () =
  (* tiny message: per-message cost dominates, a tree must win *)
  match Tuned.best ~params ~size:32 ~msg:64 () with
  | Tuned.Tree_shape _, _ -> ()
  | Tuned.Segmented_chain _, _ -> Alcotest.fail "expected a tree for 64 B"

let test_tuned_large_message_prefers_pipeline () =
  match Tuned.best ~params ~size:32 ~msg:8_000_000 () with
  | Tuned.Segmented_chain s, _ ->
      Alcotest.(check bool) "several segments" true (s > 1)
  | Tuned.Tree_shape _, _ -> Alcotest.fail "expected the pipeline for 8 MB over 32 nodes"

let test_tuned_crossover () =
  match Tuned.crossover_size ~params ~size:32 () with
  | Some m ->
      Alcotest.(check bool) "crossover in a sensible band" true
        (m > 1_000 && m <= 16 * 1024 * 1024);
      (* below the crossover a tree wins, at it the pipeline does *)
      (match Tuned.best ~params ~size:32 ~msg:(m / 2) () with
      | Tuned.Tree_shape _, _ -> ()
      | _ -> Alcotest.fail "tree expected below crossover")
  | None -> Alcotest.fail "expected a crossover for this cluster"

let test_tuned_singleton () =
  let choice, t = Tuned.best ~params ~size:1 ~msg:1_000_000 () in
  Alcotest.(check string) "binomial placeholder" "binomial" (Tuned.choice_name choice);
  check_feq "free" 0. t

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "collectives"
    [
      ( "trees",
        [
          QCheck_alcotest.to_alcotest test_trees_spanning;
          quick "binomial depth" test_binomial_depth;
          quick "binomial root children" test_binomial_root_children;
          quick "flat" test_flat_shape;
          quick "chain" test_chain_shape;
          quick "binary" test_binary_shape;
          quick "rejects" test_kary_rejects;
          quick "size/nodes" test_tree_size_nodes;
        ] );
      ( "cost",
        [
          quick "two nodes" test_cost_two_nodes;
          quick "flat formula" test_cost_flat_tree;
          quick "chain formula" test_cost_chain;
          quick "binomial arrivals" test_cost_binomial_power_of_two;
          QCheck_alcotest.to_alcotest test_cost_monotone_in_size;
          QCheck_alcotest.to_alcotest test_cost_binomial_beats_flat_and_chain;
          quick "trivial sizes" test_cost_trivial_sizes;
          quick "scatter formula" test_cost_scatter_formula;
          quick "allgather formula" test_cost_allgather_formula;
          quick "barrier formula" test_cost_barrier_formula;
        ] );
      ( "pipeline",
        [
          quick "one segment = chain" test_pipeline_one_segment_is_chain;
          quick "formula" test_pipeline_formula;
          quick "best segments" test_pipeline_best_segments;
          quick "beats binomial on large msgs" test_pipeline_beats_binomial_large_messages;
          quick "rejects" test_pipeline_rejects;
        ] );
      ( "tuned",
        [
          QCheck_alcotest.to_alcotest test_tuned_never_worse_than_binomial;
          quick "small msg -> tree" test_tuned_small_message_prefers_tree;
          quick "large msg -> pipeline" test_tuned_large_message_prefers_pipeline;
          quick "crossover" test_tuned_crossover;
          quick "singleton" test_tuned_singleton;
        ] );
    ]

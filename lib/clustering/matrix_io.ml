let parse_cell ~line_number cell =
  let cell = String.trim cell in
  if cell = "" || cell = "-" then Ok 0.
  else
    match float_of_string_opt cell with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "line %d: not a number: %S" line_number cell)

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let rec parse_rows acc = function
    | [] -> Ok (List.rev acc)
    | (line_number, line) :: rest -> (
        let cells = String.split_on_char ',' line in
        let rec parse_cells acc = function
          | [] -> Ok (List.rev acc)
          | c :: cs -> (
              match parse_cell ~line_number c with
              | Ok v -> parse_cells (v :: acc) cs
              | Error e -> Error e)
        in
        match parse_cells [] cells with
        | Ok row -> parse_rows (Array.of_list row :: acc) rest
        | Error e -> Error e)
  in
  match parse_rows [] lines with
  | Error e -> Error e
  | Ok [] -> Error "empty matrix"
  | Ok rows ->
      let n = List.length rows in
      let matrix = Array.of_list rows in
      if Array.exists (fun row -> Array.length row <> n) matrix then
        Error
          (Printf.sprintf "matrix is not square: %d rows but some row differs in width" n)
      else Ok matrix

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error e -> Error e

let save path matrix =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun row ->
          output_string oc
            (String.concat ","
               (Array.to_list (Array.map (Printf.sprintf "%.6g") row)));
          output_char oc '\n')
        matrix)

let validate ?(require_symmetric = true) matrix =
  let n = Array.length matrix in
  if n = 0 then Error "empty matrix"
  else if Array.exists (fun row -> Array.length row <> n) matrix then
    Error "matrix is not square"
  else begin
    let problem = ref None in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if !problem = None then begin
          if matrix.(i).(j) < 0. then
            problem := Some (Printf.sprintf "negative latency at (%d, %d)" i j)
          else if require_symmetric && i < j then begin
            let a = matrix.(i).(j) and b = matrix.(j).(i) in
            let scale = Float.max a b in
            if scale > 0. && Float.abs (a -. b) /. scale > 0.01 then
              problem :=
                Some
                  (Printf.sprintf "asymmetric beyond 1%% at (%d, %d): %g vs %g" i j a b)
          end
        end
      done
    done;
    match !problem with None -> Ok () | Some p -> Error p
  end

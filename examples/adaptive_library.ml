(* The "modified MagPIe" library layer of Section 7, end to end:

     1. at startup, measure pLogP parameters on the (simulated) wire;
     2. rebuild the cluster topology from the measurements;
     3. per broadcast, pick a strategy, compute (and cache) its schedule,
        charge the scheduling overhead, execute under runtime noise.

   The workload rotates the broadcast root — the scenario in which the
   paper notes the flat tree collapses ("cannot adapt to ... the use of
   different root processes"), and in which the schedule cache pays off.

   Run with: dune exec examples/adaptive_library.exe *)

module Magpie = Gridb_magpie
module Heuristics = Gridb_sched.Heuristics

let seconds us = us /. 1e6

let () =
  let machines = Gridb_topology.Machines.expand (Gridb_topology.Grid5000.grid ()) in
  Printf.printf "acquiring pLogP parameters on the simulated wire...\n";
  let tuning =
    Magpie.Tuning.create ~noise:(Gridb_des.Noise.Lognormal 0.01) ~seed:1 machines
  in
  let measured = Magpie.Tuning.measured_grid tuning in
  Printf.printf "measured topology: %d clusters / %d machines\n\n"
    (Gridb_topology.Grid.size measured)
    (Gridb_topology.Grid.total_processes measured);

  let strategies =
    [
      Magpie.Bcast.Binomial_world;
      Magpie.Bcast.Flat_two_level;
      Magpie.Bcast.Scheduled Heuristics.ecef_la;
      Magpie.Bcast.Adaptive Heuristics.all;
    ]
  in
  (* 18 broadcasts of 1 MB, root rotating over the 6 clusters. *)
  let roots = List.init 18 (fun i -> i mod 6) in
  Printf.printf "18 broadcasts (1 MB), root rotating across the 6 clusters:\n";
  List.iter
    (fun strategy ->
      let total = ref 0. in
      List.iteri
        (fun i root ->
          let r =
            Magpie.Bcast.execute ~noise:(Gridb_des.Noise.Lognormal 0.05) ~seed:(100 + i)
              tuning strategy ~root ~msg:1_000_000
          in
          total := !total +. r.Gridb_des.Exec.makespan)
        roots;
      let hits, misses = Magpie.Tuning.cache_stats tuning in
      Printf.printf "  %-28s total %7.3f s   (schedule cache: %d hits / %d misses)\n"
        (Magpie.Bcast.strategy_name strategy)
        (seconds !total) hits misses)
    strategies;
  print_newline ();
  print_endline
    "The scheduled strategies compute each (root, class) schedule once and then";
  print_endline
    "reuse it; the adaptive strategy additionally predicts every candidate on the";
  print_endline "measured parameters and keeps the winner."

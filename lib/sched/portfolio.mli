(** Portfolio scheduling: run several heuristics, keep the best schedule.

    Section 6 introduces the per-iteration "global minimum" as an analysis
    device; a real implementation can simply {e use} it — all heuristics are
    polynomial, so computing every schedule and keeping the cheapest costs
    only scheduling time (accounted for by {!Overhead} in the
    measured figures).  This is the strategy with the 100% hit rate by
    construction, and the natural upper baseline for the mixed strategy. *)

type choice = {
  heuristic : string;  (** winning heuristic's name *)
  schedule : Schedule.t;
  makespan : float;
  evaluated : int;  (** number of heuristics tried *)
}

val run :
  ?model:Schedule.completion_model ->
  ?heuristics:Heuristics.t list ->
  Instance.t ->
  choice
(** Defaults to {!Heuristics.all}.  Ties keep the earliest heuristic in
    list order.  @raise Invalid_argument on an empty heuristic list. *)

val scheduling_evaluations : ?heuristics:Heuristics.t list -> int -> float
(** [scheduling_evaluations n]: total {!Overhead.evaluations} of running the
    whole portfolio on [n] clusters — the price of the 100% hit rate. *)

(** Canonical parallel application skeletons on simMPI.

    The paper motivates broadcast optimisation with "parallel scientific
    applications" that call collectives inside their iteration loops.
    These skeletons let the repository quantify the {e application-level}
    payoff of a broadcast strategy, not just the single-collective
    makespan: a faster broadcast shortens every iteration of an iterative
    solver, while master/worker patterns stress scatter/gather instead.

    Each function is a complete per-rank program for {!Runtime.run}; the
    broadcast step is pluggable so the paper's heuristic schedules can be
    compared against the grid-unaware default inside a realistic loop. *)

type bcast = tag:int -> rank:int -> size:int -> root:int -> msg:int -> unit
(** A broadcast implementation (e.g. [Collectives.bcast ?shape ()], or a
    closure around [Collectives.bcast_plan]).  [tag] namespaces the
    iteration so overlapping iterations cannot consume each other's
    messages. *)

val plan_bcast : Gridb_des.Plan.t -> bcast
(** Adapt a precomputed rank-level plan (the plan's own root wins; the
    [root] argument is ignored). *)

val default_bcast : bcast
(** Grid-unaware binomial ({!Collectives.bcast}). *)

val iterative_solver :
  ?bcast:bcast ->
  iterations:int ->
  compute_us:float ->
  msg:int ->
  rank:int ->
  size:int ->
  unit ->
  unit
(** Bulk-synchronous iterative solver: per iteration, rank 0 broadcasts the
    current state ([msg] bytes), every rank computes for [compute_us], then
    an 8-byte allreduce agrees on the residual.  [bcast] defaults to
    {!default_bcast}. *)

val master_worker :
  rounds:int ->
  task_msg:int ->
  result_msg:int ->
  compute_us:float ->
  rank:int ->
  size:int ->
  unit ->
  unit
(** Master/worker: per round, rank 0 scatters [task_msg]-byte work items,
    workers compute for [compute_us], results ([result_msg] bytes) are
    gathered back at rank 0. *)

val run_solver :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  ?bcast:bcast ->
  iterations:int ->
  compute_us:float ->
  msg:int ->
  Gridb_topology.Machines.t ->
  Runtime.result
(** Convenience wrapper launching {!iterative_solver} on every rank. *)

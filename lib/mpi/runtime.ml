module Machines = Gridb_topology.Machines
module Params = Gridb_plogp.Params
module Engine = Gridb_des.Engine
module Noise = Gridb_des.Noise
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type message = {
  src : int;
  dst : int;
  tag : int;
  msg_size : int;
  payload : float;
  sent_at : float;
  delivered_at : float;
}

type filter = { want_src : int option; want_tag : int option }

type request = float
(* A request is simply the simulated time at which the injection (the
   sender-side gap) completes; the NIC reservation happens eagerly at isend
   time, so waiting is just sleeping until that instant. *)

type _ Effect.t +=
  | Send_eff : { dst : int; tag : int; msg_size : int; payload : float } -> unit Effect.t
  | Isend_eff : {
      dst : int;
      tag : int;
      msg_size : int;
      payload : float;
    }
      -> request Effect.t
  | Wait_eff : request -> unit Effect.t
  | Recv_eff : filter -> message Effect.t
  | Recv_timeout_eff : filter * float -> message option Effect.t
  | Time_eff : float Effect.t
  | Compute_eff : float -> unit Effect.t

module Api = struct
  let send ?(tag = 0) ?(payload = 0.) ~dst ~msg_size () =
    Effect.perform (Send_eff { dst; tag; msg_size; payload })

  let isend ?(tag = 0) ?(payload = 0.) ~dst ~msg_size () =
    Effect.perform (Isend_eff { dst; tag; msg_size; payload })

  let wait request = Effect.perform (Wait_eff request)
  let recv ?src ?tag () = Effect.perform (Recv_eff { want_src = src; want_tag = tag })

  let recv_timeout ?src ?tag ~timeout () =
    Effect.perform (Recv_timeout_eff ({ want_src = src; want_tag = tag }, timeout))
  let time () = Effect.perform Time_eff
  let compute duration = Effect.perform (Compute_eff duration)
end

type failure =
  | Dead_rank of int
  | Drop_message of { src : int; dst : int; nth : int }

type result = {
  finish : float array;
  makespan : float;
  messages : int;
  deadlocked : int list;
}

let matches filter m =
  (match filter.want_src with None -> true | Some s -> s = m.src)
  && (match filter.want_tag with None -> true | Some t -> t = m.tag)

(* Remove the first matching message (mailboxes are kept oldest first). *)
let take_matching mailbox filter =
  let rec go acc = function
    | [] -> None
    | m :: rest ->
        if matches filter m then Some (m, List.rev_append acc rest) else go (m :: acc) rest
  in
  go [] !mailbox
  |> Option.map (fun (m, rest) ->
         mailbox := rest;
         m)

type parked =
  | Parked : filter * (message, unit) Effect.Deep.continuation -> parked
  | Parked_deadline :
      filter * (message option, unit) Effect.Deep.continuation * Engine.timer
      -> parked
(* A [Parked_deadline]'s timer is cancelled by whichever path unparks the
   rank first (matching delivery or timer expiry), so at most one live
   deadline timer exists per rank. *)

let run ?(noise = Noise.Exact) ?(seed = 0) ?(failures = []) ?(obs = Sink.null)
    machines program =
  let n = Machines.count machines in
  let engine = Engine.create ~obs () in
  let tracing = Sink.enabled obs in
  let rng = Gridb_util.Rng.create seed in
  let nic_free = Array.make n 0. in
  let mailboxes = Array.init n (fun _ -> ref []) in
  let parked : parked option array = Array.make n None in
  let finish = Array.make n nan in
  let delivered = ref 0 in
  let dead = Array.make n false in
  let drops = Hashtbl.create 8 in
  List.iter
    (function
      | Dead_rank r ->
          if r >= 0 && r < n then dead.(r) <- true
          else invalid_arg "simMPI: Dead_rank out of range"
      | Drop_message { src; dst; nth } ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt drops (src, dst)) in
          Hashtbl.replace drops (src, dst) (nth :: prev))
    failures;
  let sent_on_link = Hashtbl.create 16 in
  let should_drop src dst =
    let count = Option.value ~default:0 (Hashtbl.find_opt sent_on_link (src, dst)) in
    Hashtbl.replace sent_on_link (src, dst) (count + 1);
    match Hashtbl.find_opt drops (src, dst) with
    | Some nths -> List.mem count nths
    | None -> false
  in
  let deliver m engine =
    incr delivered;
    if tracing then
      Sink.emit obs
        (Event.Msg_recv { src = m.src; dst = m.dst; tag = m.tag; time = Engine.now engine });
    match parked.(m.dst) with
    | Some (Parked (filter, k)) when matches filter m ->
        parked.(m.dst) <- None;
        Effect.Deep.continue k m
    | Some (Parked_deadline (filter, k, tm)) when matches filter m ->
        parked.(m.dst) <- None;
        Engine.cancel engine tm;
        Effect.Deep.continue k (Some m)
    | _ -> mailboxes.(m.dst) := !(mailboxes.(m.dst)) @ [ m ]
  in
  (* Reserve the sender's NIC and schedule delivery (unless dropped or the
     destination is dead); returns the injection-complete instant. *)
  let inject rank ~dst ~tag ~msg_size ~payload =
    if dst = rank then invalid_arg "simMPI: send to self";
    if dst < 0 || dst >= n then invalid_arg "simMPI: destination out of range";
    let p = Machines.link_params machines rank dst in
    let g = Noise.apply noise rng (Params.gap p msg_size) in
    let l = Noise.apply noise rng (Params.latency p) in
    let now = Engine.now engine in
    let start = Float.max now nic_free.(rank) in
    nic_free.(rank) <- start +. g;
    let m =
      { src = rank; dst; tag; msg_size; payload; sent_at = start; delivered_at = start +. g +. l }
    in
    if tracing then
      Sink.emit obs (Event.Msg_send { src = rank; dst; tag; size = msg_size; time = start });
    if (not dead.(dst)) && not (should_drop rank dst) then
      Engine.schedule engine ~time:m.delivered_at (deliver m);
    start +. g
  in
  let handler rank : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> finish.(rank) <- Engine.now engine);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Send_eff { dst; tag; msg_size; payload } ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let done_at = inject rank ~dst ~tag ~msg_size ~payload in
                  Engine.schedule engine ~time:done_at (fun _ ->
                      Effect.Deep.continue k ()))
          | Isend_eff { dst; tag; msg_size; payload } ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  let done_at = inject rank ~dst ~tag ~msg_size ~payload in
                  Effect.Deep.continue k done_at)
          | Wait_eff done_at ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if done_at <= Engine.now engine then Effect.Deep.continue k ()
                  else
                    Engine.schedule engine ~time:done_at (fun _ ->
                        Effect.Deep.continue k ()))
          | Recv_eff filter ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  match take_matching mailboxes.(rank) filter with
                  | Some m -> Effect.Deep.continue k m
                  | None ->
                      if parked.(rank) <> None then
                        invalid_arg "simMPI: concurrent recv on one rank";
                      parked.(rank) <- Some (Parked (filter, k)))
          | Recv_timeout_eff (filter, timeout) ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if timeout < 0. then invalid_arg "simMPI: negative recv timeout";
                  match take_matching mailboxes.(rank) filter with
                  | Some m -> Effect.Deep.continue k (Some m)
                  | None ->
                      if parked.(rank) <> None then
                        invalid_arg "simMPI: concurrent recv on one rank";
                      let tm =
                        Engine.schedule_timer engine
                          ~time:(Engine.now engine +. timeout)
                          (fun _ ->
                            (* Still parked on this deadline (a matching
                               delivery would have cancelled us). *)
                            match parked.(rank) with
                            | Some (Parked_deadline (_, k, _)) ->
                                parked.(rank) <- None;
                                if tracing then
                                  Sink.emit obs
                                    (Event.Recv_timeout
                                       { rank; time = Engine.now engine });
                                Effect.Deep.continue k None
                            | _ -> ())
                      in
                      parked.(rank) <- Some (Parked_deadline (filter, k, tm)))
          | Time_eff ->
              Some (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.continue k (Engine.now engine))
          | Compute_eff duration ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  if duration < 0. then invalid_arg "simMPI: negative compute time";
                  Engine.schedule_after engine ~delay:duration (fun _ ->
                      Effect.Deep.continue k ()))
          | _ -> None);
    }
  in
  for rank = 0 to n - 1 do
    if not dead.(rank) then
      Engine.schedule engine ~time:0. (fun _ ->
          Effect.Deep.match_with (fun () -> program ~rank ~size:n) () (handler rank))
  done;
  Engine.run engine;
  let deadlocked =
    List.filter (fun r -> parked.(r) <> None) (List.init n (fun i -> i))
  in
  let makespan =
    Array.fold_left (fun acc t -> if Float.is_nan t then acc else Float.max acc t) 0. finish
  in
  { finish; makespan; messages = !delivered; deadlocked }

let run_exn ?noise ?seed ?failures ?obs machines program =
  let r = run ?noise ?seed ?failures ?obs machines program in
  if r.deadlocked <> [] then
    failwith
      (Printf.sprintf "simMPI: deadlock, ranks [%s] blocked in recv"
         (String.concat "; " (List.map string_of_int r.deadlocked)));
  r

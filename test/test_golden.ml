(* Golden regression tests: exact expected values for fixed seeds and the
   deterministic GRID5000 topology.  These pin down the numerical behaviour
   of the whole stack — RNG stream, instance generation, heuristic
   tie-breaking, timing arithmetic — so that any silent change to any layer
   trips a test.  If a change is *intentional* (e.g. a new tie-breaking
   rule), regenerate the constants with the printer at the bottom:

     dune exec test/test_golden.exe -- regen *)

module Instance = Gridb_sched.Instance
module Heuristics = Gridb_sched.Heuristics
module Schedule = Gridb_sched.Schedule
module Rng = Gridb_util.Rng

let check_golden name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected %.6f, got %.6f" name expected actual)
    true
    (Float.abs (expected -. actual) < 5e-7 *. Float.max 1. (Float.abs expected))

(* GRID5000 (deterministic topology), 1 MB, root 0: predicted makespans in
   seconds. *)
let grid5000_expectations =
  [
    ("FlatTree", 2.633363);
    ("FEF", 0.600981);
    ("ECEF", 0.600981);
    ("ECEF-LA", 0.600981);
    ("ECEF-LAt", 0.600981);
    ("ECEF-LAT", 0.580931);
    ("BottomUp", 1.089735);
  ]

let test_grid5000_golden () =
  let grid = Gridb_topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  List.iter
    (fun (name, expected) ->
      match Heuristics.by_name name with
      | None -> Alcotest.failf "unknown heuristic %s" name
      | Some h -> check_golden name expected (Heuristics.makespan h inst /. 1e6))
    grid5000_expectations

(* Random instance stream: seed 2006, n = 10, first draw. *)
let random_expectations =
  [
    ("FlatTree", 4.607803);
    ("FEF", 3.758756);
    ("ECEF", 3.395731);
    ("ECEF-LA", 3.246838);
    ("ECEF-LAt", 3.466644);
    ("ECEF-LAT", 3.566254);
    ("BottomUp", 3.184820);
  ]

let golden_instance () =
  let rng = Rng.create 2006 in
  Instance.random ~rng ~n:10 Instance.table2_ranges

let test_random_instance_golden () =
  let inst = golden_instance () in
  List.iter
    (fun (name, expected) ->
      match Heuristics.by_name name with
      | None -> Alcotest.failf "unknown heuristic %s" name
      | Some h -> check_golden name expected (Heuristics.makespan h inst /. 1e6))
    random_expectations

let test_rng_stream_golden () =
  (* First three raw outputs of the SplitMix64 stream for seed 2006. *)
  let rng = Rng.create 2006 in
  let observed = List.init 3 (fun _ -> Rng.bits64 rng) in
  let as_strings = List.map Int64.to_string observed in
  Alcotest.(check (list string))
    "splitmix64 stream"
    [ "2585961775473798433"; "2846287610197900435"; "5817944072696408171" ]
    as_strings

let test_grid5000_instance_golden () =
  let grid = Gridb_topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  (* T of Orsay-A (31 machines, binomial, 100 MB/s, 47.56 us): pinned. *)
  check_golden "T Orsay-A (ms)" 50.290240 (inst.Instance.intra.(0) /. 1e3);
  check_golden "gap Orsay->IDPOT 1MB (ms)" 769.280769 (inst.Instance.gap.(0).(2) /. 1e3)

let regen () =
  let grid = Gridb_topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  Printf.printf "grid5000 expectations:\n";
  List.iter
    (fun h ->
      Printf.printf "    (%S, %.6f);\n" h.Heuristics.name
        (Heuristics.makespan h inst /. 1e6))
    Heuristics.all;
  let inst = golden_instance () in
  Printf.printf "random expectations (seed 2006, n=10):\n";
  List.iter
    (fun h ->
      Printf.printf "    (%S, %.6f);\n" h.Heuristics.name
        (Heuristics.makespan h inst /. 1e6))
    Heuristics.all;
  let rng = Rng.create 2006 in
  Printf.printf "rng stream: %s\n"
    (String.concat "; "
       (List.init 3 (fun _ -> Int64.to_string (Rng.bits64 rng))));
  let grid = Gridb_topology.Grid5000.grid () in
  let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
  Printf.printf "T Orsay-A: %.6f ms, gap 0->2: %.6f ms\n"
    (inst.Instance.intra.(0) /. 1e3)
    (inst.Instance.gap.(0).(2) /. 1e3)

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "regen" then regen ()
  else begin
    let quick name f = Alcotest.test_case name `Quick f in
    Alcotest.run "golden"
      [
        ( "golden",
          [
            quick "grid5000 makespans" test_grid5000_golden;
            quick "random instance makespans" test_random_instance_golden;
            quick "rng stream" test_rng_stream_golden;
            quick "grid5000 instance values" test_grid5000_instance_golden;
          ] );
      ]
  end

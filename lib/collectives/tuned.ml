type choice = Tree_shape of Tree.shape | Segmented_chain of int

let choice_name = function
  | Tree_shape shape -> Tree.shape_name shape
  | Segmented_chain s -> Printf.sprintf "chain/%d-segments" s

let best ~params ~size ~msg () =
  if size <= 1 then (Tree_shape Tree.Binomial, 0.)
  else begin
    let tree_candidates =
      List.map
        (fun shape ->
          (Tree_shape shape, Cost.broadcast_time ~shape ~params ~size ~msg ()))
        Tree.all_shapes
    in
    let segments, pipeline_time = Pipeline.best_segments ~params ~size ~msg () in
    let candidates = (Segmented_chain segments, pipeline_time) :: tree_candidates in
    List.fold_left
      (fun ((_, bt) as best) ((_, t) as cand) -> if t < bt then cand else best)
      (List.hd candidates) (List.tl candidates)
  end

let broadcast_time ~params ~size ~msg () = snd (best ~params ~size ~msg ())

let crossover_size ?(lo = 1) ?(hi = 16 * 1024 * 1024) ~params ~size () =
  if size <= 1 then None
  else begin
    let rec probe msg =
      if msg > hi then None
      else begin
        match best ~params ~size ~msg () with
        | Segmented_chain _, _ -> Some msg
        | Tree_shape _, _ -> probe (2 * msg)
      end
    in
    probe (max 1 lo)
  end

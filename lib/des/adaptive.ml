module Params = Gridb_plogp.Params

type config = {
  alpha : float;
  beta : float;
  var_mult : float;
  rto_min : float;
  rto_max : float;
  breaker_threshold : int;
  blowup_factor : float;
  cooldown_mult : float;
  max_reroutes : int;
}

let default =
  {
    alpha = 0.125;
    beta = 0.25;
    var_mult = 4.;
    rto_min = 1.;
    rto_max = 1e9;
    breaker_threshold = 3;
    blowup_factor = 8.;
    cooldown_mult = 4.;
    max_reroutes = 0;
  }

let v ?(alpha = default.alpha) ?(beta = default.beta) ?(var_mult = default.var_mult)
    ?(rto_min = default.rto_min) ?(rto_max = default.rto_max)
    ?(breaker_threshold = default.breaker_threshold)
    ?(blowup_factor = default.blowup_factor) ?(cooldown_mult = default.cooldown_mult)
    ?(max_reroutes = default.max_reroutes) () =
  if not (alpha > 0. && alpha <= 1.) then invalid_arg "Adaptive.v: alpha outside (0, 1]";
  if not (beta > 0. && beta <= 1.) then invalid_arg "Adaptive.v: beta outside (0, 1]";
  if not (var_mult > 0.) then invalid_arg "Adaptive.v: var_mult must be positive";
  if not (rto_min > 0.) then invalid_arg "Adaptive.v: rto_min must be positive";
  if rto_max < rto_min then invalid_arg "Adaptive.v: rto_max < rto_min";
  if breaker_threshold < 1 then invalid_arg "Adaptive.v: breaker_threshold < 1";
  if not (blowup_factor > 1.) then invalid_arg "Adaptive.v: blowup_factor <= 1";
  if not (cooldown_mult > 0.) then invalid_arg "Adaptive.v: cooldown_mult must be positive";
  if max_reroutes < 0 then invalid_arg "Adaptive.v: negative max_reroutes";
  {
    alpha;
    beta;
    var_mult;
    rto_min;
    rto_max;
    breaker_threshold;
    blowup_factor;
    cooldown_mult;
    max_reroutes;
  }

type circuit = Closed | Open of { until : float } | Half_open

type link = {
  mutable srtt : float;
  mutable rttvar : float;
  mutable nominal : float;
      (* un-inflated model round trip (quality denominator); nan until first
         rto query *)
  mutable fallback_rto : float;
      (* model-derived RTO (multipliers and floors included), latched at the
         first rto query; nan before *)
  mutable strikes : int;  (* consecutive timeouts since the last success *)
  mutable state : circuit;
  mutable samples : int;
}

type t = { config : config; n : int; links : link option array }

let create ?(config = default) ~n () =
  if n < 1 then invalid_arg "Adaptive.create: n < 1";
  (* Re-run the smart constructor so hand-built records cannot smuggle
     invalid knobs in (the Faults.create discipline). *)
  let config =
    v ~alpha:config.alpha ~beta:config.beta ~var_mult:config.var_mult
      ~rto_min:config.rto_min ~rto_max:config.rto_max
      ~breaker_threshold:config.breaker_threshold ~blowup_factor:config.blowup_factor
      ~cooldown_mult:config.cooldown_mult ~max_reroutes:config.max_reroutes ()
  in
  { config; n; links = Array.make (n * n) None }

let config t = t.config
let size t = t.n

let link t ~src ~dst name =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg ("Adaptive." ^ name ^ ": rank out of range");
  let idx = (src * t.n) + dst in
  match t.links.(idx) with
  | Some l -> l
  | None ->
      let l =
        {
          srtt = nan;
          rttvar = nan;
          nominal = nan;
          fallback_rto = nan;
          strikes = 0;
          state = Closed;
          samples = 0;
        }
      in
      t.links.(idx) <- Some l;
      l

let clamp t x = Float.min t.config.rto_max (Float.max t.config.rto_min x)

let raw_rto t l = l.srtt +. (t.config.var_mult *. l.rttvar)

let rto t ~src ~dst ~nominal ~fallback =
  let l = link t ~src ~dst "rto" in
  (* [nominal] must stay un-inflated (no rto_mult/rto_min): it is the
     denominator of [quality], so folding the RTO multiplier in would make
     a healthy link's SRTT converge to a fraction of it and every
     estimated parameter read proportionally too fast. *)
  if Float.is_nan l.nominal then l.nominal <- nominal;
  if Float.is_nan l.fallback_rto then l.fallback_rto <- fallback;
  if l.samples = 0 then clamp t fallback else clamp t (raw_rto t l)

let on_sample t ~src ~dst ~rtt ~retransmitted ~now =
  if rtt < 0. then invalid_arg "Adaptive.on_sample: negative rtt";
  let l = link t ~src ~dst "on_sample" in
  let blowup =
    (* Judged against the pre-sample SRTT: one sample worth several
       smoothed round trips is a degradation signal, not jitter. *)
    (not retransmitted) && l.samples > 0 && rtt > t.config.blowup_factor *. l.srtt
  in
  if not retransmitted then begin
    (* Jacobson/Karn (RFC 6298): first valid sample seeds SRTT = R,
       RTTVAR = R/2; later ones are exponentially smoothed. *)
    if l.samples = 0 then begin
      l.srtt <- rtt;
      l.rttvar <- rtt /. 2.
    end
    else begin
      l.rttvar <-
        ((1. -. t.config.beta) *. l.rttvar) +. (t.config.beta *. Float.abs (l.srtt -. rtt));
      l.srtt <- ((1. -. t.config.alpha) *. l.srtt) +. (t.config.alpha *. rtt)
    end;
    l.samples <- l.samples + 1
  end;
  l.strikes <- 0;
  let was = l.state in
  if blowup then begin
    l.state <- Open { until = now +. (t.config.cooldown_mult *. clamp t (raw_rto t l)) };
    match was with Open _ -> `No_change | Closed | Half_open -> `Opened
  end
  else
    match was with
    | Closed -> `No_change
    | Open _ | Half_open ->
        l.state <- Closed;
        `Closed

let on_timeout t ~src ~dst ~now =
  let l = link t ~src ~dst "on_timeout" in
  l.strikes <- l.strikes + 1;
  let cooldown =
    let base = if l.samples > 0 then raw_rto t l else l.fallback_rto in
    let base = if Float.is_nan base then t.config.rto_min else base in
    t.config.cooldown_mult *. clamp t base
  in
  match l.state with
  | Closed when l.strikes >= t.config.breaker_threshold ->
      l.state <- Open { until = now +. cooldown };
      true
  | Closed -> false
  | Open _ | Half_open ->
      (* Restart the cooldown: a timeout while open/half-open (a failed
         probe) pushes recovery further out. *)
      l.state <- Open { until = now +. cooldown };
      false

let usable t ~src ~dst ~now =
  let l = link t ~src ~dst "usable" in
  match l.state with
  | Closed | Half_open -> true
  | Open { until } ->
      if now >= until then begin
        l.state <- Half_open;
        true
      end
      else false

let usable_now t ~src ~dst ~now =
  let l = link t ~src ~dst "usable_now" in
  match l.state with
  | Closed | Half_open -> true
  | Open { until } -> now >= until

let circuit t ~src ~dst =
  let l = link t ~src ~dst "circuit" in
  match l.state with Closed -> `Closed | Open _ -> `Open | Half_open -> `Half_open

let srtt t ~src ~dst =
  let l = link t ~src ~dst "srtt" in
  if l.samples = 0 then None else Some l.srtt

let rttvar t ~src ~dst =
  let l = link t ~src ~dst "rttvar" in
  if l.samples = 0 then None else Some l.rttvar

let samples t ~src ~dst = (link t ~src ~dst "samples").samples

let quality t ~src ~dst =
  let l = link t ~src ~dst "quality" in
  if l.samples = 0 || Float.is_nan l.nominal || l.nominal <= 0. then 1.
  else l.srtt /. l.nominal

let estimated_params t ~src ~dst nominal =
  let q = quality t ~src ~dst in
  if q = 1. then nominal else Params.rescale ~gap_factor:q ~latency_factor:q nominal

let estimated_latency_matrix ?(symmetric = false) t ~nominal =
  let e i j = if i = j then 0. else quality t ~src:i ~dst:j *. nominal ~src:i ~dst:j in
  Array.init t.n (fun i ->
      Array.init t.n (fun j ->
          if symmetric && i <> j then Float.max (e i j) (e j i) else e i j))

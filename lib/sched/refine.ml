let picks_of_schedule (s : Schedule.t) =
  List.map (fun e -> (e.Schedule.src, e.Schedule.dst)) s.Schedule.events

let replay inst picks =
  let state = State.create inst in
  let ok =
    List.for_all
      (fun (src, dst) ->
        if State.in_a state src && (not (State.in_a state dst)) && src <> dst then begin
          State.send state ~src ~dst;
          true
        end
        else false)
      picks
  in
  if ok && State.finished state then Some (State.to_schedule state) else None

let makespan_of_picks ?model inst picks =
  match replay inst picks with
  | Some s -> Some (Schedule.makespan ?model inst s)
  | None -> None

(* Neighbourhood enumeration over a pick array. *)
let neighbours ~root picks =
  let arr = Array.of_list picks in
  let len = Array.length arr in
  let swaps =
    List.init (max 0 (len - 1)) (fun i ->
        let copy = Array.copy arr in
        let tmp = copy.(i) in
        copy.(i) <- copy.(i + 1);
        copy.(i + 1) <- tmp;
        Array.to_list copy)
  in
  (* Re-parent pick i: its receiver keeps its slot, the sender becomes any
     cluster already received before round i (including the root). *)
  let reparent =
    List.concat
      (List.init len (fun i ->
           let _, dst = arr.(i) in
           let candidates =
             root :: (Array.to_list (Array.sub arr 0 i) |> List.map snd)
           in
           List.filter_map
             (fun new_src ->
               if new_src = fst arr.(i) || new_src = dst then None
               else begin
                 let copy = Array.copy arr in
                 copy.(i) <- (new_src, dst);
                 Some (Array.to_list copy)
               end)
             candidates))
  in
  swaps @ reparent

let improve ?model ?(max_rounds = 50) inst schedule =
  let rec climb round picks best =
    if round >= max_rounds then picks
    else begin
      let improved =
        List.fold_left
          (fun acc candidate ->
            match makespan_of_picks ?model inst candidate with
            | Some m -> (
                match acc with
                | Some (_, best_m) when best_m <= m -> acc
                | _ when m < best -> Some (candidate, m)
                | _ -> acc)
            | None -> acc)
          None
          (neighbours ~root:inst.Instance.root picks)
      in
      match improved with
      | Some (candidate, m) -> climb (round + 1) candidate m
      | None -> picks
    end
  in
  let picks = picks_of_schedule schedule in
  let base = Schedule.makespan ?model inst schedule in
  let final = climb 0 picks base in
  match replay inst final with
  | Some s -> s
  | None -> schedule

(* One random move: an adjacent swap or a re-parent at a random position. *)
let random_neighbour rng ~root picks =
  let arr = Array.of_list picks in
  let len = Array.length arr in
  if len < 2 then picks
  else if Gridb_util.Rng.bool rng then begin
    let i = Gridb_util.Rng.int rng (len - 1) in
    let copy = Array.copy arr in
    let tmp = copy.(i) in
    copy.(i) <- copy.(i + 1);
    copy.(i + 1) <- tmp;
    Array.to_list copy
  end
  else begin
    let i = Gridb_util.Rng.int rng len in
    let _, dst = arr.(i) in
    let candidates =
      root :: (Array.to_list (Array.sub arr 0 i) |> List.map snd)
      |> List.filter (fun c -> c <> dst && c <> fst arr.(i))
    in
    match candidates with
    | [] -> Array.to_list arr
    | cs ->
        let new_src = List.nth cs (Gridb_util.Rng.int rng (List.length cs)) in
        let copy = Array.copy arr in
        copy.(i) <- (new_src, dst);
        Array.to_list copy
  end

let anneal ?model ?(seed = 0) ?(steps = 2_000) ?initial_temperature inst schedule =
  let rng = Gridb_util.Rng.create seed in
  let root = inst.Instance.root in
  let base = Schedule.makespan ?model inst schedule in
  let temperature0 =
    match initial_temperature with Some t -> t | None -> 0.1 *. Float.max 1. base
  in
  (* Cool to ~1% of the initial temperature over the run. *)
  let cooling = if steps <= 1 then 1. else Float.exp (Float.log 0.01 /. float_of_int steps) in
  let current = ref (picks_of_schedule schedule) in
  let current_m = ref base in
  let best = ref !current in
  let best_m = ref base in
  let temperature = ref temperature0 in
  for _ = 1 to steps do
    let candidate = random_neighbour rng ~root !current in
    (match makespan_of_picks ?model inst candidate with
    | Some m ->
        let accept =
          m <= !current_m
          || Gridb_util.Rng.float rng 1. < Float.exp ((!current_m -. m) /. !temperature)
        in
        if accept then begin
          current := candidate;
          current_m := m;
          if m < !best_m then begin
            best := candidate;
            best_m := m
          end
        end
    | None -> ());
    temperature := !temperature *. cooling
  done;
  match replay inst !best with Some s -> s | None -> schedule

let improvement_ratio ?model inst schedule =
  let base = Schedule.makespan ?model inst schedule in
  if base <= 0. then 1.
  else Schedule.makespan ?model inst (improve ?model inst schedule) /. base

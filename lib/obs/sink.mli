(** Pluggable event sinks — where the observability bus delivers.

    Three sinks cover the use cases:

    - {!null} — the default everywhere.  Producers guard every emission
      with {!enabled}, which is [false] only for [Null], so the hot paths
      pay one predictable branch and never construct an event: a
      [Null]-sink run is bit-identical to an uninstrumented one (the
      invariant the property tests pin down).
    - {!memory} — accumulates events in order; {!events} reads them back.
      This is what the [record_trace] compat path and the consumers
      ([Trace.of_events], {!Profile.of_events}) build on.
    - {!jsonl} / {!with_jsonl} — streams one {!Event.to_json} line per
      event to a channel; {!read} parses a file back losslessly. *)

type t =
  | Null
  | Memory of Event.t list ref  (** reverse chronological; use {!events} *)
  | Jsonl of { oc : out_channel; mutable count : int }

val null : t

val memory : unit -> t
(** Fresh in-memory sink. *)

val jsonl : out_channel -> t
(** Streaming sink on an already-open channel (not closed by this module). *)

val with_jsonl : string -> (t -> 'a) -> 'a
(** [with_jsonl path f] opens [path], runs [f] with a [Jsonl] sink and
    closes the file (also on exceptions). *)

val enabled : t -> bool
(** [false] only for [Null].  Producers must test this before building an
    event — that is the zero-cost contract. *)

val emit : t -> Event.t -> unit
(** Deliver one event.  No-op on [Null]. *)

val events : t -> Event.t list
(** Chronological event list of a [Memory] sink; [[]] for the others. *)

val count : t -> int
(** Events delivered so far ([Memory] and [Jsonl]; 0 for [Null]). *)

val read : string -> (Event.t list, string) result
(** Parse a JSONL trace file back into events (blank lines skipped).
    [Error] reports the first offending line and reason. *)

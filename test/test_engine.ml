(* Differential tests for the incremental selection engine.

   The contract under test: for every policy, Engine.run ~mode:`Incremental
   produces the event-for-event identical schedule to the naive reference
   scan (~mode:`Naive), including ascending-(i, j) tie-breaking — scores
   are recomputed with the same float expressions, so "identical" means
   bitwise, not approximately. *)

module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module State = Gridb_sched.State
module Policy = Gridb_sched.Policy
module Engine = Gridb_sched.Engine
module Lookahead = Gridb_sched.Lookahead
module Heuristics = Gridb_sched.Heuristics
module Mixed = Gridb_sched.Mixed
module Overhead = Gridb_sched.Overhead
module Generators = Gridb_topology.Generators
module Rng = Gridb_util.Rng

(* Every policy shape the engine dispatches on: the seven paper heuristics,
   the ECEF driver under every lookahead (covering Zero, Fold Min, Fold Max
   and both Dynamic lookaheads), the Transmission pair score, and a Sized
   dispatch with a parameterised component. *)
let policies =
  List.filter_map (fun h -> h.Heuristics.policy) Heuristics.all
  @ List.map Policy.ecef_with Lookahead.all
  @ [
      Policy.select_min ~name:"FEF(g+L)" ~score:Policy.Transmission Lookahead.none;
      Policy.sized ~threshold:6 ~small:Policy.ecef_la ~large:Policy.ecef_lat_max;
    ]

let check_identical ~what (naive : Schedule.t) (incr : Schedule.t) =
  let na = naive.Schedule.events and ia = incr.Schedule.events in
  if List.length na <> List.length ia then
    Alcotest.failf "%s: %d events naive vs %d incremental" what (List.length na)
      (List.length ia);
  List.iter2
    (fun (x : Schedule.event) (y : Schedule.event) ->
      let same =
        x.Schedule.round = y.Schedule.round
        && x.Schedule.src = y.Schedule.src
        && x.Schedule.dst = y.Schedule.dst
        && x.Schedule.start = y.Schedule.start
        && x.Schedule.sender_free = y.Schedule.sender_free
        && x.Schedule.arrival = y.Schedule.arrival
      in
      if not same then
        Alcotest.failf "%s: round %d: naive %d->%d @ %.17g vs incremental %d->%d @ %.17g"
          what x.Schedule.round x.Schedule.src x.Schedule.dst x.Schedule.start
          y.Schedule.src y.Schedule.dst y.Schedule.start)
    na ia

let check_instance ~what inst =
  List.iter
    (fun p ->
      let naive = Engine.run ~mode:`Naive p inst in
      let incr = Engine.run ~mode:`Incremental p inst in
      check_identical ~what:(Printf.sprintf "%s, %s" what (Policy.name p)) naive incr)
    policies

(* 200+ seeded instances, n in 2..64, drawn from both generators: i.i.d.
   Table 2 matrices and pLogP-evaluated uniform random topologies. *)
let test_differential_random () =
  let instances = 120 in
  for i = 0 to instances - 1 do
    let n = 2 + (i * 61 / (instances - 1)) in
    let rng = Rng.create (7_000 + i) in
    let inst = Instance.random ~rng ~n Instance.table2_ranges in
    check_instance ~what:(Printf.sprintf "table2 #%d n=%d" i n) inst
  done

let test_differential_topology () =
  let instances = 90 in
  for i = 0 to instances - 1 do
    let n = 2 + (i * 62 / (instances - 1)) in
    let rng = Rng.create (11_000 + i) in
    let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
    let inst = Instance.of_grid ~root:(i mod n) ~msg:1_000_000 grid in
    check_instance ~what:(Printf.sprintf "topology #%d n=%d" i n) inst
  done

(* Golden pin of the incremental engine's exact output on the full
   differential corpus above (120 Table 2 + 90 topology instances, every
   policy shape): an MD5 over every event of every schedule, all six fields
   printed at full precision.  The constant was recorded from the
   heap-of-records engine immediately BEFORE the struct-of-arrays state
   refactor, so any bit drift the refactor (or a future "optimisation")
   introduces — a reassociated float add, a changed tie-break — fails here
   even if naive and incremental drift together. *)
let golden_corpus_digest = "c41503ce355d6f12d3eaf9456937f173"
let golden_corpus_bytes = 6_355_835

let test_corpus_golden_digest () =
  let buf = Buffer.create 65536 in
  let feed inst =
    List.iter
      (fun p ->
        let s = Engine.run ~mode:`Incremental p inst in
        Buffer.add_string buf (Policy.name p);
        List.iter
          (fun (e : Schedule.event) ->
            Buffer.add_string buf
              (Printf.sprintf "|%d:%d>%d@%.17g,%.17g,%.17g" e.Schedule.round
                 e.Schedule.src e.Schedule.dst e.Schedule.start e.Schedule.sender_free
                 e.Schedule.arrival))
          s.Schedule.events)
      policies
  in
  for i = 0 to 119 do
    let n = 2 + (i * 61 / 119) in
    let rng = Rng.create (7_000 + i) in
    feed (Instance.random ~rng ~n Instance.table2_ranges)
  done;
  for i = 0 to 89 do
    let n = 2 + (i * 62 / 89) in
    let rng = Rng.create (11_000 + i) in
    let grid = Generators.uniform_random ~rng ~n Generators.default_random_spec in
    feed (Instance.of_grid ~root:(i mod n) ~msg:1_000_000 grid)
  done;
  Alcotest.(check int) "corpus size" golden_corpus_bytes (Buffer.length buf);
  Alcotest.(check string) "corpus digest" golden_corpus_digest
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

(* Degenerate and tie-heavy corners: uniform matrices make every candidate
   tie every round, so any deviation from ascending-(i, j) resolution shows
   up immediately. *)
let test_differential_ties () =
  List.iter
    (fun n ->
      let latency = Array.make_matrix n n 5. in
      let gap = Array.make_matrix n n 3. in
      for i = 0 to n - 1 do
        latency.(i).(i) <- 0.;
        gap.(i).(i) <- 0.
      done;
      let inst = Instance.v ~root:0 ~latency ~gap ~intra:(Array.make n 7.) in
      check_instance ~what:(Printf.sprintf "uniform n=%d" n) inst)
    [ 2; 3; 5; 16; 33 ]

(* Lazy invalidation actually exercises: on Table 2 instances the ECEF
   family re-scores stale candidate entries (a sender's avail advanced
   after its entry was pushed) rather than never hitting the stale path. *)
let test_staleness_exercised () =
  let total = ref 0 in
  for seed = 0 to 9 do
    let rng = Rng.create (31 + seed) in
    let inst = Instance.random ~rng ~n:24 Instance.table2_ranges in
    let _, stats = Engine.run_stats ~mode:`Incremental Policy.ecef inst in
    total := !total + stats.Engine.rescored
  done;
  Alcotest.(check bool)
    (Printf.sprintf "rescored %d stale entries over 10 instances" !total)
    true (!total > 0)

(* Static pair scores never go stale: no re-scoring for FEF. *)
let test_static_scores_never_rescore () =
  let rng = Rng.create 99 in
  let inst = Instance.random ~rng ~n:32 Instance.table2_ranges in
  List.iter
    (fun p ->
      let _, stats = Engine.run_stats ~mode:`Incremental p inst in
      Alcotest.(check int)
        (Policy.name p ^ " rescored")
        0 stats.Engine.rescored)
    [
      Policy.flat_tree;
      Policy.fef;
      Policy.select_min ~name:"FEF(g+L)" ~score:Policy.Transmission Lookahead.none;
    ]

(* The naive engine's work counters reproduce the Overhead closed forms:
   the model is not a guess but a count of what the reference scan does. *)
let test_overhead_cross_check () =
  List.iter
    (fun n ->
      let rng = Rng.create (500 + n) in
      let inst = Instance.random ~rng ~n Instance.table2_ranges in
      let count p =
        let _, stats = Engine.run_stats ~mode:`Naive p inst in
        stats
      in
      let pair = Overhead.pair_scan_evaluations n in
      let la = Overhead.lookahead_evaluations n in
      List.iter
        (fun p ->
          let stats = count p in
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s pair evals n=%d" (Policy.name p) n)
            pair
            (float_of_int stats.Engine.pair_evaluations))
        [ Policy.fef; Policy.ecef; Policy.bottom_up ];
      List.iter
        (fun p ->
          let stats = count p in
          Alcotest.(check (float 0.))
            (Printf.sprintf "%s lookahead terms n=%d" (Policy.name p) n)
            la
            (float_of_int stats.Engine.lookahead_terms))
        [ Policy.ecef_la; Policy.ecef_lat_min; Policy.ecef_lat_max ];
      (* FlatTree: the model charges n, the loop runs n - 1 selections. *)
      let flat = count Policy.flat_tree in
      Alcotest.(check int) "flat tree selections" (n - 1) flat.Engine.pair_evaluations;
      Alcotest.(check bool) "flat model within 1" true
        (Float.abs (Overhead.evaluations ~n "FlatTree" -. float_of_int (n - 1)) <= 1.))
    [ 2; 3; 8; 17 ]

(* The incremental engine must do asymptotically less pair-score work than
   the scan on a lookahead policy; at n = 48 even the constant factors are
   decisively apart. *)
let test_incremental_does_less_work () =
  let rng = Rng.create 4242 in
  let inst = Instance.random ~rng ~n:48 Instance.table2_ranges in
  let _, naive = Engine.run_stats ~mode:`Naive Policy.ecef_lat_max inst in
  let _, incr = Engine.run_stats ~mode:`Incremental Policy.ecef_lat_max inst in
  let naive_total = naive.Engine.pair_evaluations + naive.Engine.lookahead_terms in
  let incr_total = incr.Engine.pair_evaluations + incr.Engine.lookahead_terms in
  Alcotest.(check bool)
    (Printf.sprintf "incremental %d << naive %d" incr_total naive_total)
    true
    (incr_total * 4 < naive_total)

(* naive_select is the compat surface behind Heuristics.t closures. *)
let test_naive_select_matches_closures () =
  let rng = Rng.create 77 in
  let inst = Instance.random ~rng ~n:12 Instance.table2_ranges in
  List.iter
    (fun (h : Heuristics.t) ->
      match h.Heuristics.policy with
      | None -> ()
      | Some p ->
          let s1 = State.run h.Heuristics.select inst in
          let s2 = State.run (Engine.naive_select p) inst in
          check_identical ~what:(h.Heuristics.name ^ " select closure") s1 s2)
    (Heuristics.all @ [ Mixed.strategy () ])

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "engine"
    [
      ( "differential",
        [
          quick "table2 instances" test_differential_random;
          quick "topology instances" test_differential_topology;
          quick "tie-heavy instances" test_differential_ties;
          quick "pre-refactor golden digest" test_corpus_golden_digest;
        ] );
      ( "internals",
        [
          quick "staleness exercised" test_staleness_exercised;
          quick "static scores never rescore" test_static_scores_never_rescore;
          quick "overhead cross-check" test_overhead_cross_check;
          quick "incremental does less work" test_incremental_does_less_work;
          quick "naive_select compat" test_naive_select_matches_closures;
        ] );
    ]

(* Broadcast-service throughput bench: serve seeded open-loop workloads at
   a sweep of arrival rates against the GRID5000 grid, one shared engine
   and wire per cell, and report sustained planning throughput, plan
   latency percentiles, cache effectiveness and admission behaviour.
   Results go to BENCH_service.json.

   Usage: dune exec bench/service.exe -- [--duration US] [-o FILE]
                                         [--seed S] [--jobs J]
                                         [--assert-hit-rate]

   Every cell derives its workload from (seed, rate) alone and the server
   replays requests sequentially, so all simulation-side numbers (request
   counts, admissions, cache stats, horizons) are bit-identical at any
   --jobs; only the host-clock throughput/latency fields vary run to run.
   --assert-hit-rate fails the run unless the default-mix cells reuse
   cached plans for more than half their lookups (the CI service job runs
   with it). *)

module Workload = Gridb_service.Workload
module Server = Gridb_service.Server
module Admission = Gridb_service.Admission
module Plan_cache = Gridb_service.Plan_cache

type cell = {
  rate : float; (* requests per simulated second *)
  report : Server.report;
}

let rates = [ 10.; 50.; 200. ]

let bench_cell ~seed ~duration ~jobs rate =
  let machines = Gridb_topology.Machines.expand (Gridb_topology.Grid5000.grid ()) in
  let requests = Workload.generate ~seed ~rate:(rate /. 1e6) ~duration machines in
  let admission = Admission.create ~max_concurrent:8 () in
  let report = Server.run ~jobs ~admission ~seed:(seed + 1) machines requests in
  { rate; report }

let print_cell c =
  let r = c.report in
  Printf.printf
    "rate=%-4g req/s | %3d requests, %3d admitted | hit rate %.3f | %7.0f plans/s | \
     p50 %8.1f us p99 %8.1f us | mean makespan %10.1f us\n\
     %!"
    c.rate r.Server.requests r.Server.admitted r.Server.hit_rate r.Server.plans_per_sec
    r.Server.plan_p50_us r.Server.plan_p99_us r.Server.mean_makespan_us

(* Handwritten JSON writer, same rationale as bench/scaling.ml. *)
let json_of_cells buf cells =
  let add fmt = Printf.bprintf buf fmt in
  add "[\n";
  List.iteri
    (fun i c ->
      let r = c.report in
      let s = r.Server.cache_stats in
      add "  {\"rate_req_s\": %g, \"requests\": %d, \"admitted\": %d, \"rejected\": %d,\n"
        c.rate r.Server.requests r.Server.admitted r.Server.rejected;
      add
        "   \"cache\": {\"hits\": %d, \"misses\": %d, \"invalidations\": %d, \
         \"entries\": %d, \"hit_rate\": %.4f},\n"
        s.Plan_cache.hits s.Plan_cache.misses s.Plan_cache.invalidations
        s.Plan_cache.entries r.Server.hit_rate;
      add
        "   \"plans_per_sec\": %.0f, \"plan_p50_us\": %.1f, \"plan_p99_us\": %.1f, \
         \"plan_wall_s\": %.4f,\n"
        r.Server.plans_per_sec r.Server.plan_p50_us r.Server.plan_p99_us
        r.Server.plan_wall_s;
      add
        "   \"delivered_ranks\": %d, \"mean_makespan_us\": %.1f, \"horizon_us\": %.1f}%s\n"
        r.Server.delivered r.Server.mean_makespan_us r.Server.horizon_us
        (if i = List.length cells - 1 then "" else ","))
    cells;
  add "]"

let () =
  let duration = ref 2e6
  and out = ref "BENCH_service.json"
  and seed = ref 2006
  and jobs = ref 1
  and assert_hit_rate = ref false in
  let rec parse = function
    | [] -> ()
    | "--duration" :: v :: rest ->
        duration := float_of_string v;
        parse rest
    | ("-o" | "--output") :: v :: rest ->
        out := v;
        parse rest
    | "--seed" :: v :: rest ->
        seed := int_of_string v;
        parse rest
    | ("-j" | "--jobs") :: v :: rest ->
        jobs := int_of_string v;
        parse rest
    | "--assert-hit-rate" :: rest ->
        assert_hit_rate := true;
        parse rest
    | other :: _ ->
        prerr_endline
          ("unknown option " ^ other
         ^ " (known: --duration US, -o FILE, --seed S, --jobs J, --assert-hit-rate)");
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Cells are cheap and share nothing; the pool inside each cell's server
     does the fan-out, so the sweep itself runs sequentially. *)
  let cells =
    List.map (fun rate ->
        let c = bench_cell ~seed:!seed ~duration:!duration ~jobs:!jobs rate in
        print_cell c;
        c)
      rates
  in
  (* A sustained stream must amortise planning: over enough requests the
     default mix's small key space forces reuse.  Short cells (fewer
     requests than ~4x the mix's 12 keys) are dominated by compulsory
     misses and are exempt. *)
  (if !assert_hit_rate then
     match
       List.filter (fun c -> c.report.Server.requests >= 50 && c.report.Server.hit_rate <= 0.5) cells
     with
     | [] -> ()
     | bad ->
         List.iter
           (fun c ->
             Printf.eprintf
               "HIT-RATE MISS at rate=%g: %.3f <= 0.5 over %d requests (default mix \
                should reuse cached plans)\n"
               c.rate c.report.Server.hit_rate c.report.Server.requests)
           bad;
         exit 1);
  let buf = Buffer.create 4_096 in
  Printf.bprintf buf
    "{\n\
    \  \"benchmark\": \"broadcast-service\",\n\
    \  \"seed\": %d,\n\
    \  %s,\n\
    \  \"grid\": \"GRID5000 (Table 3)\",\n\
    \  \"workload\": \"open-loop Poisson, default mix, %.0f us window\",\n\
    \  \"admission\": \"max 8 predicted-concurrent sessions\",\n\
    \  \"units\": {\"time\": \"us unless suffixed\", \"rates\": \"requests per second\"},\n\
    \  \"results\": " !seed
    (Gridb_util.Provenance.json_fields ~jobs:!jobs)
    !duration;
  json_of_cells buf cells;
  Buffer.add_string buf "\n}\n";
  let oc = open_out !out in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s (%d cells)\n" !out (List.length cells)

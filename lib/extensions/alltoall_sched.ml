module Grid = Gridb_topology.Grid
module Cluster = Gridb_topology.Cluster
module Cost = Gridb_collectives.Cost
module Machines = Gridb_topology.Machines

type prediction = {
  gather : float;
  exchange : float;
  scatter : float;
  total : float;
}

let cluster_size grid c = (Grid.cluster grid c).Cluster.size

let block grid ~msg_per_pair src dst =
  msg_per_pair * cluster_size grid src * cluster_size grid dst

let gather_time grid ~msg_per_pair c =
  let cl = Grid.cluster grid c in
  (* Each member contributes its blocks for every process in the grid. *)
  let per_member = msg_per_pair * (Grid.total_processes grid - 1) in
  Cost.gather_time ~params:cl.Cluster.intra ~size:cl.Cluster.size ~msg:per_member

let scatter_time grid ~msg_per_pair c =
  let cl = Grid.cluster grid c in
  let per_member = msg_per_pair * (Grid.total_processes grid - 1) in
  Cost.scatter_time ~params:cl.Cluster.intra ~size:cl.Cluster.size ~msg:per_member

let exchange_time grid ~msg_per_pair c =
  let n = Grid.size grid in
  let gaps = ref 0. in
  let last_latency = ref 0. in
  for step = 1 to n - 1 do
    let d = (c + step) mod n in
    gaps := !gaps +. Grid.gap grid c d (block grid ~msg_per_pair c d);
    if step = n - 1 then last_latency := Grid.latency grid c d
  done;
  !gaps +. !last_latency

let fold_max f grid =
  let n = Grid.size grid in
  let m = ref 0. in
  for c = 0 to n - 1 do
    m := Float.max !m (f c)
  done;
  !m

let predict grid ~msg_per_pair =
  let gather = fold_max (gather_time grid ~msg_per_pair) grid in
  let exchange =
    if Grid.size grid = 1 then 0. else fold_max (exchange_time grid ~msg_per_pair) grid
  in
  let scatter = fold_max (scatter_time grid ~msg_per_pair) grid in
  { gather; exchange; scatter; total = gather +. exchange +. scatter }

let predict_direct grid ~msg_per_pair =
  let machines = Machines.expand grid in
  let n = Machines.count machines in
  let worst = ref 0. in
  for r = 0 to n - 1 do
    let gaps = ref 0. and last_latency = ref 0. in
    for step = 1 to n - 1 do
      let d = (r + step) mod n in
      let p = Machines.link_params machines r d in
      gaps := !gaps +. Gridb_plogp.Params.gap p msg_per_pair;
      if step = n - 1 then last_latency := Gridb_plogp.Params.latency p
    done;
    worst := Float.max !worst (!gaps +. !last_latency)
  done;
  !worst

let rotation_rounds n =
  List.concat_map
    (fun step -> List.init n (fun src -> (step, src, (src + step) mod n)))
    (List.init (max 0 (n - 1)) (fun s -> s + 1))

let simulate ?noise ?seed ?(nonblocking = false) grid ~msg_per_pair =
  let machines = Machines.expand grid in
  let n_clusters = Grid.size grid in
  if n_clusters = 1 then (predict grid ~msg_per_pair).total
  else begin
    let coordinator = Array.init n_clusters (Machines.coordinator machines) in
    let cluster_of_rank = Array.make (Machines.count machines) (-1) in
    Array.iteri (fun c r -> cluster_of_rank.(r) <- c) coordinator;
    let blocking_rounds c =
      for step = 1 to n_clusters - 1 do
        let dst = (c + step) mod n_clusters in
        let src = ((c - step) + n_clusters) mod n_clusters in
        Gridb_mpi.Runtime.Api.send ~dst:coordinator.(dst)
          ~msg_size:(block grid ~msg_per_pair c dst) ();
        ignore (Gridb_mpi.Runtime.Api.recv ~src:coordinator.(src) ())
      done
    in
    let nonblocking_rounds c =
      let requests =
        List.init (n_clusters - 1) (fun i ->
            let dst = (c + i + 1) mod n_clusters in
            Gridb_mpi.Runtime.Api.isend ~dst:coordinator.(dst)
              ~msg_size:(block grid ~msg_per_pair c dst) ())
      in
      for step = 1 to n_clusters - 1 do
        let src = ((c - step) + n_clusters) mod n_clusters in
        ignore (Gridb_mpi.Runtime.Api.recv ~src:coordinator.(src) ())
      done;
      List.iter Gridb_mpi.Runtime.Api.wait requests
    in
    let result =
      Gridb_mpi.Runtime.run_exn ?noise ?seed machines (fun ~rank ~size:_ ->
          let c = cluster_of_rank.(rank) in
          if c >= 0 then
            if nonblocking then nonblocking_rounds c else blocking_rounds c)
    in
    let p = predict grid ~msg_per_pair in
    p.gather +. result.Gridb_mpi.Runtime.makespan +. p.scatter
  end

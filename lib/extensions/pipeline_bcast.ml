module Grid = Gridb_topology.Grid
module Cluster = Gridb_topology.Cluster
module Machines = Gridb_topology.Machines
module Instance = Gridb_sched.Instance
module Schedule = Gridb_sched.Schedule
module Plan = Gridb_des.Plan
module Api = Gridb_mpi.Runtime.Api

let segment_size ~msg ~segments =
  if segments < 1 then invalid_arg "Pipeline_bcast.segment_size: segments < 1";
  if msg < 1 then invalid_arg "Pipeline_bcast.segment_size: msg < 1";
  max 1 ((msg + segments - 1) / segments)

let approx grid schedule ~msg ~segments =
  let seg = segment_size ~msg ~segments in
  let inst = Instance.of_grid ~root:schedule.Schedule.root ~msg:seg grid in
  let picks = Gridb_sched.Refine.picks_of_schedule schedule in
  let m1 =
    match Gridb_sched.Refine.replay inst picks with
    | Some s -> Schedule.makespan inst s
    | None -> invalid_arg "Pipeline_bcast.approx: schedule does not fit the grid"
  in
  if segments = 1 then m1
  else begin
    (* Steady-state bottleneck: per segment, each coordinator re-pays its
       inter-cluster gaps plus the first-level forwards of its intra tree. *)
    let n = Grid.size grid in
    let inter_gaps = Array.make n 0. in
    List.iter
      (fun e ->
        inter_gaps.(e.Schedule.src) <-
          inter_gaps.(e.Schedule.src) +. Grid.gap grid e.Schedule.src e.Schedule.dst seg)
      schedule.Schedule.events;
    let bottleneck = ref 0. in
    for c = 0 to n - 1 do
      let cl = Grid.cluster grid c in
      let intra_forwards =
        if cl.Cluster.size <= 1 then 0.
        else begin
          let fanout =
            int_of_float (Float.ceil (Float.log2 (float_of_int cl.Cluster.size)))
          in
          float_of_int fanout *. Gridb_plogp.Params.gap cl.Cluster.intra seg
        end
      in
      bottleneck := Float.max !bottleneck (inter_gaps.(c) +. intra_forwards)
    done;
    m1 +. (float_of_int (segments - 1) *. !bottleneck)
  end

let simulate ?noise ?seed machines plan ~msg ~segments =
  let seg = segment_size ~msg ~segments in
  let parents = Plan.parent_array plan in
  let result =
    Gridb_mpi.Runtime.run_exn ?noise ?seed machines (fun ~rank ~size:_ ->
        for tag = 1 to segments do
          if rank <> plan.Plan.root then
            ignore (Api.recv ~src:parents.(rank) ~tag ());
          List.iter
            (fun child -> Api.send ~dst:child ~tag ~msg_size:seg ())
            plan.Plan.children.(rank)
        done)
  in
  result.Gridb_mpi.Runtime.makespan

let default_candidates = [ 1; 2; 4; 8; 16; 32; 64 ]

let best_segments ?(candidates = default_candidates) machines plan ~msg () =
  match candidates with
  | [] -> invalid_arg "Pipeline_bcast.best_segments: no candidates"
  | first :: rest ->
      let eval s = (s, simulate machines plan ~msg ~segments:s) in
      List.fold_left
        (fun ((_, bt) as best) s ->
          let (_, t) as cand = eval s in
          if t < bt then cand else best)
        (eval first) rest

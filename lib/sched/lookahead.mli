(** Lookahead functions [F_j] for the ECEF-LA family (Sections 4.4-5.2).

    A lookahead scores a candidate receiver [j] by how useful it will be
    once transferred to set [A].  The ECEF-LA driver minimises
    [avail_i + g_ij + L_ij + F_j]; the choice of [F] is the only difference
    between ECEF-LA, ECEF-LAt and ECEF-LAT, so it is factored out here and
    swept by the ablation bench. *)

type shape =
  | Zero  (** identically 0: no lookahead work at all *)
  | Fold of { order : [ `Min | `Max ]; term : Instance.t -> int -> int -> float }
      (** [F_j = order over k in B\{j} of (term inst j k)] with a {e static}
          term: only B-membership changes invalidate it, which is what lets
          {!Gridb_sched.Engine} cache the fold in a per-receiver heap with
          lazy deletion instead of rescanning B each round. *)
  | Dynamic
      (** No exploitable structure ([F_j] depends on [A], or mixes values
          non-monotonically): the engine re-evaluates {!t.eval} fresh each
          round, exactly like the naive driver. *)

type t = {
  name : string;
  eval : State.t -> j:int -> float;
      (** [eval state ~j] with [j] currently in [B]; the "rest of B" used by
          the formulas is [B \ {j}]. *)
  shape : shape;
      (** Invalidation contract; must agree with [eval] (for [Fold],
          [eval] is the reference fold of the same [term]). *)
}

val none : t
(** [F_j = 0]: degenerates to plain ECEF. *)

val min_edge : t
(** Bhat's ECEF-LA: [F_j = min over k in B\{j} of (g_jk + L_jk)];
    0 when [j] is the last member of [B]. *)

val min_edge_plus_t : t
(** The paper's ECEF-LAt: [F_j = min over k of (g_jk + L_jk + T_k)]. *)

val max_edge_plus_t : t
(** The paper's ECEF-LAT: [F_j = max over k of (g_jk + L_jk + T_k)]. *)

val avg_latency_to_b : t
(** Bhat's suggested alternative: average latency from [j] to [B \ {j}]. *)

val avg_edge_a_b : t
(** Bhat's other alternative: average [g + L] between [A + {j}] and
    [B \ {j}] after the hypothetical transfer. *)

val all : t list
(** Every lookahead above, for the ablation sweep. *)

val by_name : string -> t option

(** Minimal CSV writing (RFC 4180 quoting) for exporting experiment series.

    The bench harness optionally dumps every figure's data to [results/*.csv]
    so the curves can be re-plotted with external tools. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote or newline. *)

val row_to_string : string list -> string

val ensure_directory : string -> unit
(** Create a directory (and its parents) if missing; no-op otherwise. *)

val write : string -> string list list -> unit
(** [write path rows] writes all rows (first row typically the header),
    creating the parent directory if needed. *)

val float_rows :
  header:string list -> (string * float list) list -> string list list
(** Convenience: label + float cells per row, floats printed with [%.6g]. *)

type transmission = {
  src : int;
  dst : int;
  start : float;
  gap_end : float;
  arrival : float;
  msg : int;
}

let of_events events =
  (* Executors emit [Send_start]/[Send_end] back to back per transmission,
     but pairing by directed link keeps this robust to interleaved streams
     (several links in flight at once). *)
  let open_start : (int * int, Gridb_obs.Event.t) Hashtbl.t = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (fun (e : Gridb_obs.Event.t) ->
      match Gridb_obs.Event.untag e with
      | Send_start { src; dst; _ } as e -> Hashtbl.replace open_start (src, dst) e
      | Send_end { src; dst; time; arrival } -> (
          match Hashtbl.find_opt open_start (src, dst) with
          | Some (Send_start { time = start; msg; _ }) ->
              Hashtbl.remove open_start (src, dst);
              out := { src; dst; start; gap_end = time; arrival; msg } :: !out
          | _ -> ())
      | _ -> ())
    events;
  List.rev !out

let sender_busy_time trace =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun t ->
      let prev = Option.value ~default:0. (Hashtbl.find_opt tbl t.src) in
      Hashtbl.replace tbl t.src (prev +. (t.gap_end -. t.start)))
    trace;
  Hashtbl.fold (fun rank busy acc -> (rank, busy) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let busiest_sender trace =
  match sender_busy_time trace with [] -> None | top :: _ -> Some top

let critical_path trace =
  match trace with
  | [] -> []
  | _ ->
      let last =
        List.fold_left (fun acc t -> if t.arrival > acc.arrival then t else acc)
          (List.hd trace) trace
      in
      (* Walk back: the hop that delivered to the current hop's sender. *)
      let rec back hop acc =
        match List.find_opt (fun t -> t.dst = hop.src) trace with
        | Some prev -> back prev (hop :: acc)
        | None -> hop :: acc
      in
      back last []

let total_bytes trace = List.fold_left (fun acc t -> acc + t.msg) 0 trace

let pp ppf trace =
  let sorted = List.sort (fun a b -> Float.compare a.arrival b.arrival) trace in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun t ->
      Format.fprintf ppf "%8.1f us  %4d -> %-4d  (start %.1f, %d B)@," t.arrival t.src
        t.dst t.start t.msg)
    sorted;
  Format.fprintf ppf "@]"

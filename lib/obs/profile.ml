type session_row = {
  sid : int;
  s_sends : int;  (** data transmissions tagged with this sid *)
  s_busy_us : float;  (** NIC occupancy of those transmissions *)
  s_makespan_us : float;  (** latest tagged arrival *)
}

type report = {
  schedule_us : float;
  transmit_us : float;
  intra_us : float;
  retransmit_us : float;
  makespan_us : float;
  sends : int;
  retransmits : int;
  give_ups : int;
  circuit_opens : int;
  reroutes : int;
  sheds : int;
  requeues : int;
  deadline_misses : int;
  events : int;
  spans : (string * float) list;
  counters : (string * int) list;
  sessions : session_row list;
}

(* Small ordered accumulator: first-seen key order is preserved so reports
   read in the order the producers spoke. *)
let upd assoc k f =
  let rec go = function
    | [] -> [ (k, f None) ]
    | (k', v) :: rest when k' = k -> (k, f (Some v)) :: rest
    | kv :: rest -> kv :: go rest
  in
  go assoc

let of_events events =
  let transmit = ref 0. and intra = ref 0. and retransmit = ref 0. in
  let makespan = ref 0. in
  let sends = ref 0 and retransmits = ref 0 and give_ups = ref 0 in
  let circuit_opens = ref 0 and reroutes = ref 0 in
  let sheds = ref 0 and requeues = ref 0 and deadline_misses = ref 0 in
  let pending_send : (int * int, Event.t) Hashtbl.t = Hashtbl.create 64 in
  let open_spans : (string, float list) Hashtbl.t = Hashtbl.create 8 in
  let spans = ref [] and counters = ref [] in
  let total = ref 0 in
  (* Per-correlation-id attribution, first-seen sid order. *)
  let session_tbl : (int, session_row ref) Hashtbl.t = Hashtbl.create 8 in
  let session_order = ref [] in
  let session sid =
    match Hashtbl.find_opt session_tbl sid with
    | Some r -> r
    | None ->
        let r = ref { sid; s_sends = 0; s_busy_us = 0.; s_makespan_us = 0. } in
        Hashtbl.add session_tbl sid r;
        session_order := sid :: !session_order;
        r
  in
  List.iter
    (fun (e : Event.t) ->
      incr total;
      let sid = Event.sid e in
      let tally f = match sid with None -> () | Some s -> let r = session s in r := f !r in
      match Event.untag e with
      | Send_start { src; dst; try_no; _ } as e ->
          incr sends;
          if try_no > 0 then incr retransmits;
          tally (fun r -> { r with s_sends = r.s_sends + 1 });
          Hashtbl.replace pending_send (src, dst) e
      | Send_end { src; dst; time; arrival } -> (
          makespan := Float.max !makespan arrival;
          match Hashtbl.find_opt pending_send (src, dst) with
          | Some (Send_start { time = start; intra = is_intra; try_no; _ }) ->
              Hashtbl.remove pending_send (src, dst);
              let gap = time -. start in
              tally (fun r -> { r with s_busy_us = r.s_busy_us +. gap });
              if try_no > 0 then retransmit := !retransmit +. gap
              else if is_intra then intra := !intra +. gap
              else transmit := !transmit +. gap
          | _ -> ())
      | Arrival { time; _ } ->
          makespan := Float.max !makespan time;
          tally (fun r -> { r with s_makespan_us = Float.max r.s_makespan_us time })
      | Give_up _ -> incr give_ups
      | Circuit_open _ -> incr circuit_opens
      | Reroute _ -> incr reroutes
      | Shed _ -> incr sheds
      | Retry _ -> incr requeues
      | Deadline_miss _ -> incr deadline_misses
      | Span_start { name; time } ->
          let stack = Option.value ~default:[] (Hashtbl.find_opt open_spans name) in
          Hashtbl.replace open_spans name (time :: stack)
      | Span_end { name; time } -> (
          match Hashtbl.find_opt open_spans name with
          | Some (start :: rest) ->
              Hashtbl.replace open_spans name rest;
              spans :=
                upd !spans name (function
                  | None -> time -. start
                  | Some acc -> acc +. (time -. start))
          | _ -> ())
      | Counter { name; value } -> counters := upd !counters name (fun _ -> value)
      | _ -> ())
    events;
  {
    schedule_us = (match List.assoc_opt "schedule" !spans with Some v -> v | None -> 0.);
    transmit_us = !transmit;
    intra_us = !intra;
    retransmit_us = !retransmit;
    makespan_us = !makespan;
    sends = !sends;
    retransmits = !retransmits;
    give_ups = !give_ups;
    circuit_opens = !circuit_opens;
    reroutes = !reroutes;
    sheds = !sheds;
    requeues = !requeues;
    deadline_misses = !deadline_misses;
    events = !total;
    spans = !spans;
    counters = !counters;
    sessions =
      List.rev_map (fun sid -> !(Hashtbl.find session_tbl sid)) !session_order;
  }

let render r =
  let table =
    Gridb_util.Text_table.create
      ~align:Gridb_util.Text_table.[ Left; Right ]
      [ "phase"; "value" ]
  in
  let add label value = Gridb_util.Text_table.add_row table [ label; value ] in
  let us label v = add label (Printf.sprintf "%.1f us" v) in
  us "schedule (host)" r.schedule_us;
  us "transmit (inter-cluster)" r.transmit_us;
  us "intra-cluster" r.intra_us;
  us "retransmit" r.retransmit_us;
  us "makespan (simulated)" r.makespan_us;
  Gridb_util.Text_table.add_separator table;
  add "data sends" (string_of_int r.sends);
  add "retransmissions" (string_of_int r.retransmits);
  add "edges given up" (string_of_int r.give_ups);
  add "circuits opened" (string_of_int r.circuit_opens);
  add "reroutes" (string_of_int r.reroutes);
  if r.sheds > 0 then add "requests shed" (string_of_int r.sheds);
  if r.requeues > 0 then add "retry requeues" (string_of_int r.requeues);
  if r.deadline_misses > 0 then add "deadline misses" (string_of_int r.deadline_misses);
  add "events on bus" (string_of_int r.events);
  List.iter
    (fun (name, v) -> if name <> "schedule" then us (Printf.sprintf "span %s" name) v)
    r.spans;
  if r.counters <> [] then Gridb_util.Text_table.add_separator table;
  List.iter (fun (name, v) -> add name (string_of_int v)) r.counters;
  if r.sessions <> [] then begin
    Gridb_util.Text_table.add_separator table;
    List.iter
      (fun s ->
        add
          (Printf.sprintf "session %d" s.sid)
          (Printf.sprintf "%d sends, %.1f us busy, makespan %.1f us" s.s_sends
             s.s_busy_us s.s_makespan_us))
      r.sessions
  end;
  Gridb_util.Text_table.render table

(** Reproduction scorecard.

    Turns the paper's qualitative claims into programmatic checks over the
    regenerated figures, and renders a pass/fail table — the summary at the
    end of the bench output and the source of EXPERIMENTS.md's verdict
    column.  All checks are {e shape} checks (orderings, growth rates,
    ratios), not absolute-number comparisons: the substrate is a simulator,
    not the 2006 testbed. *)

type verdict = {
  claim : string;  (** the paper's statement, paraphrased *)
  expected : string;
  measured : string;
  pass : bool;
}

val of_figures :
  fig1:Report.figure ->
  fig2:Report.figure ->
  fig3:Report.figure ->
  fig4_literal:Report.figure ->
  fig4_overlapped:Report.figure ->
  fig5:Report.figure ->
  fig6:Report.figure ->
  unit ->
  verdict list
(** Evaluates every claim against already-computed figures (the bench
    passes the ones it just produced, avoiding recomputation). *)

val table3_verdict : unit -> verdict
(** Lowekamp re-derivation of the Table 3 cluster map. *)

val render : verdict list -> string
val all_pass : verdict list -> bool

type decision = Ride_out | Splice | Replan

let decision_to_string = function
  | Ride_out -> "ride-out"
  | Splice -> "splice"
  | Replan -> "replan"

type thresholds = { drift : float; divergence : float }

let default = { drift = 0.3; divergence = 0.25 }

let v ?(drift = default.drift) ?(divergence = default.divergence) () =
  if not (drift > 0.) then invalid_arg "Replan.v: drift threshold must be positive";
  if not (divergence > 0.) then
    invalid_arg "Replan.v: divergence threshold must be positive";
  { drift; divergence }

let decide thresholds ~drift ~divergence ~departed =
  (* Re-validate so hand-built records cannot smuggle non-positive
     thresholds in (everything would then replan unconditionally). *)
  let thresholds = v ~drift:thresholds.drift ~divergence:thresholds.divergence () in
  if drift >= thresholds.drift || divergence >= thresholds.divergence then Replan
  else if departed > 0 then Splice
  else Ride_out

let fresh ~root ~n =
  if root < 0 || root >= n then invalid_arg "Replan.fresh: root out of range";
  let seed i = if i = root then 0. else infinity in
  {
    Schedule.root;
    n;
    events = [];
    ready = Array.init n seed;
    busy_until = Array.init n seed;
  }

type verdict = {
  delivered : bool array;
  delivered_count : int;
  alive : int;
  stranded : int;
  makespan : float;
}

let evaluate (truth : Instance.t) ~halt (schedule : Schedule.t) =
  let n = truth.Instance.n in
  if Array.length halt <> n then invalid_arg "Replan.evaluate: halt vector size mismatch";
  if schedule.Schedule.n <> n then invalid_arg "Replan.evaluate: schedule size mismatch";
  let delivered = Array.make n false in
  let ready = Array.make n infinity in
  let busy = Array.make n infinity in
  let root = schedule.Schedule.root in
  delivered.(root) <- true;
  ready.(root) <- 0.;
  busy.(root) <- 0.;
  (* Round order is the tree's causal order: a relay's sends are listed
     after the send that delivered to it, so one forward pass re-times the
     whole tree.  The baked-in event times are never read — they are the
     stale quantity under drift. *)
  List.iter
    (fun (e : Schedule.event) ->
      let src = e.Schedule.src and dst = e.Schedule.dst in
      if delivered.(src) then begin
        let start = Float.max ready.(src) busy.(src) in
        if halt.(src) > start then begin
          let g = truth.Instance.gap.(src).(dst) in
          let l = truth.Instance.latency.(src).(dst) in
          busy.(src) <- start +. g;
          let arrival = start +. g +. l in
          if (not delivered.(dst)) && halt.(dst) > arrival then begin
            delivered.(dst) <- true;
            ready.(dst) <- arrival;
            busy.(dst) <- arrival
          end
        end
      end)
    schedule.Schedule.events;
  let delivered_count = ref 0 and alive = ref 0 and stranded = ref 0 in
  let makespan = ref 0. in
  for c = 0 to n - 1 do
    if delivered.(c) then begin
      incr delivered_count;
      makespan := Float.max !makespan (busy.(c) +. truth.Instance.intra.(c))
    end;
    (* Alive means the cluster outlived its (re-timed) service horizon —
       for the accounting, any finite halt is a departure. *)
    if halt.(c) = infinity then begin
      incr alive;
      if not delivered.(c) then incr stranded
    end
  done;
  {
    delivered;
    delivered_count = !delivered_count;
    alive = !alive;
    stranded = !stranded;
    makespan = !makespan;
  }

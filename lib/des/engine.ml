module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type timer = { mutable live : bool; id : int }

type event = { time : float; action : t -> unit; timer : timer option }

and t = {
  queue : event Gridb_util.Binary_heap.t;
  obs : Sink.t;
  mutable clock : float;
  mutable next_timer : int;
  mutable processed : int;
  mutable cancelled_pending : int;
}

let create ?(obs = Sink.null) () =
  {
    (* Equal times fire in insertion order: the keyed heap breaks ties by
       insertion sequence, so no explicit [seq] field is needed. *)
    queue = Gridb_util.Binary_heap.create ~key:(fun e -> e.time) ();
    obs;
    clock = 0.;
    next_timer = 0;
    processed = 0;
    cancelled_pending = 0;
  }

let now t = t.clock

let enqueue t ~time action timer =
  if time < t.clock then invalid_arg "Engine.schedule: time in the past";
  Gridb_util.Binary_heap.add t.queue { time; action; timer }

let schedule t ~time action = enqueue t ~time action None

let schedule_after t ~delay action =
  if delay < 0. then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~time:(t.clock +. delay) action

let schedule_timer t ~time action =
  let timer = { live = true; id = t.next_timer } in
  t.next_timer <- t.next_timer + 1;
  enqueue t ~time action (Some timer);
  if Sink.enabled t.obs then
    Sink.emit t.obs (Event.Timer_set { id = timer.id; time = t.clock; fire_at = time });
  timer

let cancel t timer =
  if timer.live then begin
    timer.live <- false;
    t.cancelled_pending <- t.cancelled_pending + 1;
    if Sink.enabled t.obs then
      Sink.emit t.obs (Event.Timer_cancel { id = timer.id; time = t.clock })
  end

let timer_live timer = timer.live

let event_cancelled e = match e.timer with Some tm -> not tm.live | None -> false

(* Drop cancelled events sitting at the head of the queue: they must be
   invisible to [step]/[run_until] (neither executed, nor allowed to drag
   the clock or the horizon check). *)
let rec drop_cancelled t =
  match Gridb_util.Binary_heap.peek t.queue with
  | Some e when event_cancelled e ->
      ignore (Gridb_util.Binary_heap.pop t.queue);
      t.cancelled_pending <- t.cancelled_pending - 1;
      drop_cancelled t
  | _ -> ()

let step t =
  drop_cancelled t;
  match Gridb_util.Binary_heap.pop t.queue with
  | None -> false
  | Some e ->
      t.clock <- e.time;
      t.processed <- t.processed + 1;
      (match e.timer with
      | Some tm ->
          tm.live <- false;
          if Sink.enabled t.obs then
            Sink.emit t.obs (Event.Timer_fire { id = tm.id; time = t.clock })
      | None -> ());
      e.action t;
      true

let run t = while step t do () done

let run_until t horizon =
  let continue = ref true in
  while !continue do
    drop_cancelled t;
    match Gridb_util.Binary_heap.peek t.queue with
    | Some e when e.time <= horizon -> ignore (step t)
    | _ -> continue := false
  done;
  if t.clock < horizon then t.clock <- horizon

let pending t =
  drop_cancelled t;
  Gridb_util.Binary_heap.length t.queue - t.cancelled_pending

let processed t = t.processed

(** Monotonic spans: bracket a phase with [Span_start]/[Span_end] events.

    Spans measure {e host} work (e.g. how long the scheduler ran), unlike
    the simulated-time data-plane events.  The clock is [Sys.time] — CPU
    seconds, monotone, dependency-free — scaled to microseconds so every
    duration on the bus shares a unit.  {!Profile.of_events} rolls spans
    up per name. *)

type t
(** An open span (name + start time). *)

val now_us : unit -> float
(** CPU time in microseconds ([Sys.time () *. 1e6]). *)

val start : Sink.t -> string -> t
(** Emit [Span_start] (when the sink is enabled) and return the handle. *)

val finish : Sink.t -> t -> unit
(** Emit the matching [Span_end]. *)

val wrap : Sink.t -> string -> (unit -> 'a) -> 'a
(** [wrap sink name f] brackets [f ()] in a span; the end event is emitted
    even when [f] raises. *)

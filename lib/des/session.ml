module Machines = Gridb_topology.Machines
module Params = Gridb_plogp.Params
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type transport = Fixed | Adaptive of { config : Adaptive.config; reroute : bool }

type result = {
  arrival : float array;
  makespan : float;
  transmissions : int;
  trace : Trace.transmission list;
}

type reliable = {
  r_arrival : float array;
  r_makespan : float;
  r_transmissions : int;
  retransmissions : int;
  acks : int;
  delivered : int;
  gave_up : (int * int) list;
  crashed : int list;
  left : int list;
  joined : int list;
  horizon : float;
  reroutes : (int * int * int) list;
  circuit_opens : int;
  estimator : Adaptive.t option;
  r_trace : Trace.transmission list;
}

module Config = struct
  type t = {
    noise : Noise.t;
    rng : Gridb_util.Rng.t option;
    start_delay : float;
    msg : int;
    record_trace : bool;
    obs : Sink.t;
    faults : Faults.t option;
    dynamics : Dynamics.t option;
    on_tick : now:float -> Adaptive.t option -> unit;
    tick_every : float;
    retries : int;
    rto_mult : float;
    rto_min : float;
    rto_max : float;
    transport : transport;
  }

  let default =
    {
      noise = Noise.Exact;
      rng = None;
      start_delay = 0.;
      msg = 1_000_000;
      record_trace = false;
      obs = Sink.null;
      faults = None;
      dynamics = None;
      on_tick = (fun ~now:_ _ -> ());
      tick_every = 0.;
      retries = 5;
      rto_mult = 2.;
      rto_min = 1.;
      rto_max = 1e9;
      transport = Fixed;
    }

  let v ?(noise = Noise.Exact) ?rng ?(start_delay = 0.) ?(msg = 1_000_000)
      ?(record_trace = false) ?(obs = Sink.null) ?faults ?dynamics
      ?(on_tick = fun ~now:_ _ -> ()) ?(tick_every = 0.) ?(retries = 5)
      ?(rto_mult = 2.) ?(rto_min = 1.) ?(rto_max = 1e9) ?(transport = Fixed) () =
    {
      noise;
      rng;
      start_delay;
      msg;
      record_trace;
      obs;
      faults;
      dynamics;
      on_tick;
      tick_every;
      retries;
      rto_mult;
      rto_min;
      rto_max;
      transport;
    }

  let validate ~who (c : t) machines plan =
    let n = Machines.count machines in
    if Plan.size plan <> n then invalid_arg (who ^ ": plan size mismatch");
    if c.retries < 0 then invalid_arg (who ^ ": negative retries");
    if c.rto_mult < 1. then invalid_arg (who ^ ": rto_mult < 1");
    if c.rto_min <= 0. then invalid_arg (who ^ ": rto_min must be positive");
    if c.rto_max < c.rto_min then invalid_arg (who ^ ": rto_max < rto_min");
    if c.tick_every < 0. then invalid_arg (who ^ ": negative tick_every");
    (match c.faults with
    | Some f when Faults.size f <> n ->
        invalid_arg (who ^ ": fault model size mismatch")
    | _ -> ());
    match c.dynamics with
    | Some d when Dynamics.size d <> n ->
        invalid_arg (who ^ ": dynamics model size mismatch")
    | _ -> ()
end

(* The legacy [record_trace] path is a Memory-sink view over the same event
   stream: the session emits [Send_start]/[Send_end] pairs to an internal
   Memory sink and the [trace] field is rebuilt from it.  Reversing the
   chronological stream before the (stable) arrival sort reproduces the
   historical reverse-prepend order bit for bit, equal arrivals included. *)
let trace_of_mem mem =
  Trace.of_events (Sink.events mem)
  |> List.rev
  |> List.sort (fun (a : Trace.transmission) b -> Float.compare a.arrival b.arrival)

let intra machines src dst =
  (Machines.machine machines src).Machines.cluster
  = (Machines.machine machines dst).Machines.cluster

(* One session's emissions, optionally wrapped in [Event.Tagged] so
   multi-session streams can be attributed per request.  The Memory sink
   backing the legacy [record_trace] path receives the same (tagged)
   stream; {!Trace.of_events} untags. *)
let emitter ~sid ~mem ~obs =
  let wrap =
    match sid with None -> Fun.id | Some s -> fun e -> Event.tag ~sid:s e
  in
  let tracing = Sink.enabled mem || Sink.enabled obs in
  let emit e =
    let e = wrap e in
    if Sink.enabled mem then Sink.emit mem e;
    if Sink.enabled obs then Sink.emit obs e
  in
  (tracing, emit)

type t = {
  s_arrival : float array;
  s_transmissions : int ref;
  s_record_trace : bool;
  s_mem : Sink.t;
  s_engine : Engine.t;
}

let launch ?sid ?(who = "Session.launch") ~wire ~engine (config : Config.t)
    machines plan =
  let n = Machines.count machines in
  if Plan.size plan <> n then invalid_arg (who ^ ": plan size mismatch");
  if Wire.size wire < n then invalid_arg (who ^ ": wire smaller than machine view");
  let { Config.noise; rng; start_delay; msg; record_trace; obs; _ } = config in
  let rng = match rng with Some r -> r | None -> Gridb_util.Rng.create 0 in
  let arrival = Array.make n nan in
  let transmissions = ref 0 in
  let mem = if record_trace then Sink.memory () else Sink.null in
  let tracing, emit = emitter ~sid ~mem ~obs in
  (* On delivery, a rank enqueues its forwarding list: each send seizes the
     NIC for one (noisy) gap; the child receives a (noisy) latency after the
     send starts injecting. *)
  let rec deliver ~src rank engine =
    let time = Engine.now engine in
    arrival.(rank) <- time;
    Wire.touch wire rank ~now:time;
    if tracing then emit (Event.Arrival { src; dst = rank; time });
    List.iter
      (fun child ->
        let p = Machines.link_params machines rank child in
        let g = Noise.apply noise rng (Params.gap p msg) in
        let l = Noise.apply noise rng (Params.latency p) in
        let start = Wire.seize wire rank ~gap:g in
        incr transmissions;
        if tracing then begin
          emit
            (Event.Send_start
               {
                 src = rank;
                 dst = child;
                 time = start;
                 msg;
                 intra = intra machines rank child;
                 try_no = 0;
               });
          emit
            (Event.Send_end
               { src = rank; dst = child; time = start +. g; arrival = start +. g +. l })
        end;
        Engine.schedule engine ~time:(start +. g +. l) (deliver ~src:rank child))
      plan.Plan.children.(rank)
  in
  Engine.schedule engine ~time:start_delay (deliver ~src:plan.Plan.root plan.Plan.root);
  {
    s_arrival = arrival;
    s_transmissions = transmissions;
    s_record_trace = record_trace;
    s_mem = mem;
    s_engine = engine;
  }

let result (s : t) =
  let makespan = Array.fold_left Float.max 0. s.s_arrival in
  let trace = if s.s_record_trace then trace_of_mem s.s_mem else [] in
  {
    arrival = s.s_arrival;
    makespan;
    transmissions = !(s.s_transmissions);
    trace;
  }

type reliable_t = {
  r_n : int;
  r_arr : float array;
  r_has_msg : bool array;
  r_tx : int ref;
  r_rtx : int ref;
  r_acks : int ref;
  r_gave_up : (int * int) list ref;
  r_reroute_log : (int * int * int) list ref;
  r_circuit_opens : int ref;
  r_est : Adaptive.t option;
  r_faults : Faults.t;
  r_dynamics : Dynamics.t option;
  r_joins : Dynamics.join array;
  r_record_trace : bool;
  r_mem : Sink.t;
  r_engine : Engine.t;
}

(* ACK/timeout/exponential-backoff reliable broadcast along a plan.

   Data transmissions follow exactly the pLogP semantics of [launch] (same
   arithmetic, same rng draw order), so with an empty fault spec the two
   session kinds are bit-identical.  On top of that, every plan edge runs a
   stop-and-wait reliability protocol: the receiver returns an ACK on the
   control plane (latency only, no NIC seizure), the sender arms a
   cancellable retransmission timer at [rto] past the end of its injection,
   and every timeout doubles [rto] (capped at [rto_max]) and retransmits
   until [retries] is exhausted.

   [Fixed] transport then abandons the edge (and the subtree hanging off
   it) — graceful degradation to partial delivery.  [Adaptive] transport
   additionally feeds every clean round trip and every timeout into an
   {!Adaptive.t} estimator: the RTO comes from SRTT/RTTVAR instead of the
   static model, and per-link circuit breakers publish
   [Circuit_open]/[Circuit_close].  With [reroute] on, an edge whose
   breaker opens or whose retry budget dies re-parents the orphaned child
   onto an already-delivered alive rank — picked by the ECEF arrival score
   over live-estimated link parameters — so delivery is total unless the
   destination is crashed or physically partitioned.

   The estimator is pure float bookkeeping on times the session already
   has: it draws no randomness and never touches the data-path arithmetic,
   and with no faults every retransmission timer is cancelled by its ACK
   before firing — which is why the zero-fault adaptive run stays
   bit-identical to [launch] too. *)
let launch_reliable ?sid ?(who = "Session.launch_reliable") ~wire ~engine
    (config : Config.t) machines plan =
  Config.validate ~who config machines plan;
  let {
    Config.noise;
    rng;
    start_delay;
    msg;
    record_trace;
    obs;
    faults;
    dynamics;
    on_tick;
    tick_every;
    retries;
    rto_mult;
    rto_min;
    rto_max;
    transport;
  } =
    config
  in
  let n = Machines.count machines in
  let faults = match faults with Some f -> f | None -> Faults.create ~n Faults.none in
  (* Joins extend the rank space above the planning-time population: every
     per-rank array is sized [ntot], and ranks >= n exist from time 0 as
     far as the arrays are concerned but only become reachable once their
     join event fires (the adoption below). *)
  let joins = match dynamics with Some d -> Dynamics.joins d | None -> [||] in
  let ntot = n + Array.length joins in
  if Wire.size wire < ntot then
    invalid_arg (who ^ ": wire smaller than machine view (joins included)");
  let grid = Machines.grid machines in
  let cluster_of r =
    if r < n then (Machines.machine machines r).Machines.cluster
    else joins.(r - n).Dynamics.cluster
  in
  (* Link parameters generalised to join ranks: a joining machine gets
     fresh links with its cluster's nominal intra parameters, and the
     nominal inter-cluster parameters towards everyone else. *)
  let params_for src dst =
    if src < n && dst < n then Machines.link_params machines src dst
    else
      let cs = cluster_of src and cd = cluster_of dst in
      if cs = cd then (Gridb_topology.Grid.cluster grid cs).Gridb_topology.Cluster.intra
      else Gridb_topology.Grid.link grid cs cd
  in
  (* A rank halts at its fault-model crash or its dynamics departure,
     whichever comes first; join ranks never halt. *)
  let halt r =
    let crash = if r < n then Faults.crash_time faults r else infinity in
    match dynamics with
    | None -> crash
    | Some d -> Float.min crash (Dynamics.leave_time d r)
  in
  (* Fault processes are drawn over the planning-time population only; a
     join's fresh links are loss-free, cut-free and undegraded (and
     {!Dynamics.factor} is exactly 1. on them too). *)
  let fresh_link src dst = src >= n || dst >= n in
  let lose_on src dst =
    (not (fresh_link src dst)) && Faults.lose faults ~src ~dst
  in
  let link_up src dst ~at =
    fresh_link src dst || Faults.link_up faults ~src ~dst ~at
  in
  let slowdown src dst ~at =
    let f = if fresh_link src dst then 1. else Faults.slowdown faults ~src ~dst ~at in
    match dynamics with None -> f | Some d -> f *. Dynamics.factor d ~src ~dst ~at
  in
  let rng = match rng with Some r -> r | None -> Gridb_util.Rng.create 0 in
  let arrival = Array.make ntot nan in
  let has_msg = Array.make ntot false in
  let transmissions = ref 0 in
  let retransmissions = ref 0 in
  let acks = ref 0 in
  let gave_up = ref [] in
  let mem = if record_trace then Sink.memory () else Sink.null in
  let tracing, emit = emitter ~sid ~mem ~obs in
  let est, reroute =
    match transport with
    | Fixed -> (None, false)
    | Adaptive { config; reroute } -> (Some (Adaptive.create ~config ~n:ntot ()), reroute)
  in
  let max_reroutes =
    match est with
    | None -> 0
    | Some est ->
        let m = (Adaptive.config est).Adaptive.max_reroutes in
        if m = 0 then 2 * ntot else m
  in
  (* Per-edge protocol state, indexed by the child (each non-root rank has a
     unique parent in the plan; under reroute the parent can change, but a
     child still has at most one live edge at a time). *)
  let acked = Array.make ntot false in
  let timers = Array.make ntot None in
  let cur_parent = Array.make ntot (-1) in
  let cur_try = Array.make ntot 0 in
  let last_start = Array.make ntot nan in
  let reroutes_used = Array.make ntot 0 in
  let failed = Array.make (ntot * ntot) false in
  (* Orphans with no delivered alive candidate yet, retried on the next
     delivery: (dst, parent that last failed it). *)
  let pending = ref [] in
  let reroute_log = ref [] in
  let circuit_opens = ref 0 in
  (* Noiseless round trip: data gap + data latency + ACK latency.  The RTO
     inflates it by rto_mult and floors it at rto_min; the estimator's
     nominal (the quality denominator SRTT converges to) must stay raw. *)
  let model_round_trip src dst =
    let p = params_for src dst in
    let pb = params_for dst src in
    Params.gap p msg +. Params.latency p +. Params.latency pb
  in
  let model_rto src dst = Float.max rto_min (rto_mult *. model_round_trip src dst) in
  let initial_rto src dst =
    let fallback = model_rto src dst in
    match est with
    | None -> fallback
    | Some est ->
        Adaptive.rto est ~src ~dst ~nominal:(model_round_trip src dst) ~fallback
  in
  let backoff rto = Float.min rto_max (2. *. rto) in
  (* Best already-delivered alive parent for an orphan, by the ECEF arrival
     score over live-estimated link quality; candidates whose circuit to
     [dst] is open (or that already failed this orphan) only as a last
     resort. *)
  let pick_parent ~dst ~now =
    match est with
    | None -> None
    | Some est ->
        let best = ref None in
        for p = 0 to ntot - 1 do
          (* Liveness must be judged at the moment the parent could actually
             start sending — max(now, nic_free) — not at [now]: a backlogged
             parent that crashes before its NIC frees would fail the attempt
             at start, re-orphan the child synchronously, and the cycle
             would churn the whole reroute budget in one instant.  Judged at
             the send horizon, doomed parents are no candidates at all and
             the orphan parks until a later delivery provides a live one. *)
          if p <> dst && has_msg.(p) && halt p > Float.max now (Wire.free_at wire p)
          then begin
            (* Pure breaker read: scoring must not half-open circuits of
               candidates no probe will cross; the winner's transition is
               applied in [try_reroute]. *)
            let tier =
              if failed.((dst * ntot) + p) then 2
              else if Adaptive.usable_now est ~src:p ~dst ~now then 0
              else 1
            in
            let ep = Adaptive.estimated_params est ~src:p ~dst (params_for p dst) in
            let score =
              Gridb_sched.Policy.arrival_score
                ~avail:(Float.max now (Wire.free_at wire p))
                ~gap:(Params.gap ep msg) ~latency:(Params.latency ep)
            in
            match !best with
            | Some (bt, bs, _) when bt < tier || (bt = tier && bs <= score) -> ()
            | _ -> best := Some (tier, score, p)
          end
        done;
        Option.map (fun ((_ : int), (_ : float), p) -> p) !best
  in
  (* Join arrivals and estimator-snapshot ticks are processed
     opportunistically from the protocol handlers instead of being
     scheduled as engine events: the estimator's state only changes at
     those handlers anyway, and pre-scheduled ticks would keep the engine
     alive long past quiescence.  A join (or tick) later than the last
     protocol event is outside the simulated horizon and never happened. *)
  let next_join = ref 0 in
  let next_tick = ref (if tick_every > 0. then start_delay +. tick_every else infinity) in
  let dyn_on = Array.length joins > 0 || tick_every > 0. in
  let rec dyn_tick engine =
    let now = Engine.now engine in
    (if reroute then
       while !next_join < Array.length joins && joins.(!next_join).Dynamics.at <= now do
         let j = joins.(!next_join) in
         incr next_join;
         (* The new rank announces itself to its cluster's coordinator and
            is adopted through the ordinary reroute machinery — parked
            until a delivered alive parent exists. *)
         if not has_msg.(j.Dynamics.rank) then
           try_reroute
             ~old_parent:(Machines.coordinator machines j.Dynamics.cluster)
             ~dst:j.Dynamics.rank engine
       done);
    if now >= !next_tick then begin
      while !next_tick <= now do
        next_tick := !next_tick +. tick_every
      done;
      on_tick ~now est
    end
  and attempt ~src ~dst ~try_no ~rto engine =
    let now = Engine.now engine in
    let start = Float.max now (Wire.free_at wire src) in
    (* A halted sender transmits nothing more; its pending edges die here
       (under reroute the child becomes an orphan instead). *)
    if halt src > start then begin
      cur_parent.(dst) <- src;
      cur_try.(dst) <- try_no;
      last_start.(dst) <- start;
      let p = params_for src dst in
      let d = slowdown src dst ~at:start in
      let g = Noise.apply noise rng (Params.gap p msg) *. d in
      let l = Noise.apply noise rng (Params.latency p) *. d in
      Wire.occupy wire src ~start ~gap:g;
      incr transmissions;
      if try_no > 0 then incr retransmissions;
      let arr = start +. g +. l in
      if tracing then begin
        emit
          (Event.Send_start
             {
               src;
               dst;
               time = start;
               msg;
               intra = cluster_of src = cluster_of dst;
               try_no;
             });
        emit (Event.Send_end { src; dst; time = start +. g; arrival = arr })
      end;
      let lost =
        lose_on src dst || (not (link_up src dst ~at:start)) || halt dst <= arr
      in
      if not lost then Engine.schedule engine ~time:arr (data_arrives ~src ~dst);
      let tm =
        Engine.schedule_timer engine ~time:(start +. g +. rto)
          (timeout ~src ~dst ~try_no ~rto)
      in
      timers.(dst) <- Some tm
    end
    else if reroute then orphaned ~old_parent:src ~dst engine
  and data_arrives ~src ~dst engine =
    if dyn_on then dyn_tick engine;
    let now = Engine.now engine in
    if not has_msg.(dst) then begin
      has_msg.(dst) <- true;
      arrival.(dst) <- now;
      Wire.touch wire dst ~now;
      if tracing then emit (Event.Arrival { src; dst; time = now });
      forward dst engine;
      if reroute then drain_pending engine
    end;
    (* ACK on the control plane: pays the reverse latency (degraded if the
       reverse link is) but does not seize the receiver's NIC, so the ACK
       never perturbs data timing.  Duplicated deliveries are re-ACKed so a
       sender that lost an ACK eventually stops retransmitting. *)
    let pb = params_for dst src in
    let l_back = Noise.apply noise rng (Params.latency pb) *. slowdown dst src ~at:now in
    let ack_at = now +. l_back in
    let ack_lost =
      lose_on dst src || (not (link_up dst src ~at:now)) || halt src <= ack_at
    in
    if not ack_lost then
      Engine.schedule engine ~time:ack_at (ack_arrives ~parent:src ~child:dst)
  and ack_arrives ~parent ~child engine =
    if dyn_on then dyn_tick engine;
    incr acks;
    let now = Engine.now engine in
    if tracing then emit (Event.Ack { src = child; dst = parent; time = now });
    (* RTT sample for the estimator — only for the edge currently armed
       (a stale ACK from a pre-reroute parent must not be attributed to the
       new link), and per Karn's rule flagged ambiguous when the edge has
       retransmitted. *)
    (match est with
    | Some est
      when parent = cur_parent.(child)
           && (not acked.(child))
           (* Under contention a retransmission can be armed for a queued
              future NIC slot; an ACK of an earlier try then lands before
              [last_start] — ambiguous per Karn, so no sample. *)
           && now >= last_start.(child) ->
        let rtt = now -. last_start.(child) in
        (match
           Adaptive.on_sample est ~src:parent ~dst:child ~rtt
             ~retransmitted:(cur_try.(child) > 0) ~now
         with
        | `No_change -> ()
        | `Opened ->
            incr circuit_opens;
            if tracing then emit (Event.Circuit_open { src = parent; dst = child; time = now })
        | `Closed ->
            if tracing then emit (Event.Circuit_close { src = parent; dst = child; time = now }))
    | _ -> ());
    if not acked.(child) then begin
      acked.(child) <- true;
      match timers.(child) with
      | Some tm ->
          Engine.cancel engine tm;
          timers.(child) <- None
      | None -> ()
    end
  and timeout ~src ~dst ~try_no ~rto engine =
    if dyn_on then dyn_tick engine;
    timers.(dst) <- None;
    if not acked.(dst) then begin
      let now = Engine.now engine in
      if halt src <= now then begin
        if reroute then orphaned ~old_parent:src ~dst engine
      end
      else begin
        let opened =
          match est with
          | None -> false
          | Some est ->
              let o = Adaptive.on_timeout est ~src ~dst ~now in
              if o then begin
                incr circuit_opens;
                if tracing then emit (Event.Circuit_open { src; dst; time = now })
              end;
              o
        in
        if reroute && (opened || try_no >= retries) then
          orphaned ~old_parent:src ~dst engine
        else if try_no >= retries then begin
          gave_up := (src, dst) :: !gave_up;
          if tracing then emit (Event.Give_up { src; dst; time = now })
        end
        else begin
          let rto' = backoff rto in
          if tracing then
            emit
              (Event.Retransmit { src; dst; time = now; try_no = try_no + 1; rto = rto' });
          attempt ~src ~dst ~try_no:(try_no + 1) ~rto:rto' engine
        end
      end
    end
  and orphaned ~old_parent ~dst engine =
    (* A duplicate delivery may already have landed; then there is nothing
       to reroute (the timer is gone either way). *)
    if not has_msg.(dst) then begin
      failed.((dst * ntot) + old_parent) <- true;
      try_reroute ~old_parent ~dst engine
    end
  and try_reroute ~old_parent ~dst engine =
    let now = Engine.now engine in
    let lost =
      (* A halted destination can never deliver (burning the reroute budget
         on it would only inflate the sweep); past the budget the orphan is
         abandoned for good. *)
      halt dst <= now || reroutes_used.(dst) >= max_reroutes
    in
    if lost then begin
      gave_up := (old_parent, dst) :: !gave_up;
      if tracing then emit (Event.Give_up { src = old_parent; dst; time = now });
      (* The subtree planned under a permanently lost child is stranded
         with it — its members never saw an attempt, so re-parent each of
         them onto the delivered set too.  (Join ranks have no planned
         subtree: the plan predates them.) *)
      if dst < n then
        List.iter
          (fun gc -> orphaned ~old_parent:dst ~dst:gc engine)
          plan.Plan.children.(dst)
    end
    else
      match pick_parent ~dst ~now with
      | Some p ->
          (* Only the chosen parent is actually probed, so only its breaker
             takes the cooldown-expiry transition (Open -> Half_open). *)
          (match est with
          | Some est -> ignore (Adaptive.usable est ~src:p ~dst ~now : bool)
          | None -> ());
          reroutes_used.(dst) <- reroutes_used.(dst) + 1;
          reroute_log := (dst, old_parent, p) :: !reroute_log;
          if tracing then
            emit (Event.Reroute { dst; old_parent; new_parent = p; time = now });
          attempt ~src:p ~dst ~try_no:0 ~rto:(initial_rto p dst) engine
      | None ->
          if not (List.exists (fun (d, _) -> d = dst) !pending) then
            pending := (dst, old_parent) :: !pending
  and drain_pending engine =
    match !pending with
    | [] -> ()
    | parked ->
        pending := [];
        List.iter
          (fun (dst, old_parent) ->
            if not has_msg.(dst) then try_reroute ~old_parent ~dst engine)
          (List.rev parked)
  and forward rank engine =
    (* A delivered join rank forwards nothing: the plan predates it. *)
    if rank < n then
      List.iter
        (fun child ->
          attempt ~src:rank ~dst:child ~try_no:0 ~rto:(initial_rto rank child) engine)
        plan.Plan.children.(rank)
  in
  Engine.schedule engine ~time:start_delay (fun engine ->
      let now = Engine.now engine in
      if halt plan.Plan.root > now then begin
        has_msg.(plan.Plan.root) <- true;
        arrival.(plan.Plan.root) <- now;
        Wire.touch wire plan.Plan.root ~now;
        if tracing then
          emit (Event.Arrival { src = plan.Plan.root; dst = plan.Plan.root; time = now });
        forward plan.Plan.root engine
      end);
  {
    r_n = n;
    r_arr = arrival;
    r_has_msg = has_msg;
    r_tx = transmissions;
    r_rtx = retransmissions;
    r_acks = acks;
    r_gave_up = gave_up;
    r_reroute_log = reroute_log;
    r_circuit_opens = circuit_opens;
    r_est = est;
    r_faults = faults;
    r_dynamics = dynamics;
    r_joins = joins;
    r_record_trace = record_trace;
    r_mem = mem;
    r_engine = engine;
  }

let reliable_result (s : reliable_t) =
  let makespan =
    Array.fold_left
      (fun acc t -> if Float.is_nan t then acc else Float.max acc t)
      0. s.r_arr
  in
  let horizon = Engine.now s.r_engine in
  let n = s.r_n in
  let crashed =
    List.filter (fun r -> Faults.crash_time s.r_faults r <= horizon) (List.init n Fun.id)
  in
  let left =
    match s.r_dynamics with
    | None -> []
    | Some d ->
        List.filter (fun r -> Dynamics.leave_time d r <= horizon) (List.init n Fun.id)
  in
  let joined =
    Array.to_list s.r_joins
    |> List.filter_map (fun j ->
           if j.Dynamics.at <= horizon then Some j.Dynamics.rank else None)
  in
  let delivered =
    Array.fold_left (fun acc h -> if h then acc + 1 else acc) 0 s.r_has_msg
  in
  let trace = if s.r_record_trace then trace_of_mem s.r_mem else [] in
  {
    r_arrival = s.r_arr;
    r_makespan = makespan;
    r_transmissions = !(s.r_tx);
    retransmissions = !(s.r_rtx);
    acks = !(s.r_acks);
    delivered;
    gave_up = List.rev !(s.r_gave_up);
    crashed;
    left;
    joined;
    horizon;
    reroutes = List.rev !(s.r_reroute_log);
    circuit_opens = !(s.r_circuit_opens);
    estimator = s.r_est;
    r_trace = trace;
  }

let population (config : Config.t) machines =
  let n = Machines.count machines in
  match config.Config.dynamics with
  | None -> n
  | Some d -> n + Array.length (Dynamics.joins d)

type t =
  | Null
  | Memory of Event.t list ref
  | Jsonl of { oc : out_channel; mutable count : int }

let null = Null
let memory () = Memory (ref [])
let jsonl oc = Jsonl { oc; count = 0 }

let with_jsonl path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f (jsonl oc))

let enabled = function Null -> false | Memory _ | Jsonl _ -> true

let emit t e =
  match t with
  | Null -> ()
  | Memory events -> events := e :: !events
  | Jsonl j ->
      output_string j.oc (Event.to_json e);
      output_char j.oc '\n';
      j.count <- j.count + 1

let events = function Null | Jsonl _ -> [] | Memory events -> List.rev !events

let count = function
  | Null -> 0
  | Memory events -> List.length !events
  | Jsonl j -> j.count

let read path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
            match Event.of_json line with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go 1 [])

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape cells)

let parse s =
  let n = String.length s in
  let rows = ref [] in
  let row = ref [] in
  let buf = Buffer.create 32 in
  let end_field () =
    row := Buffer.contents buf :: !row;
    Buffer.clear buf
  in
  let end_row () =
    end_field ();
    rows := List.rev !row :: !rows;
    row := []
  in
  let quoted = ref false in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if !quoted then
      if c = '"' then
        if !i + 1 < n && s.[!i + 1] = '"' then begin
          (* doubled quote inside a quoted field: one literal quote *)
          Buffer.add_char buf '"';
          i := !i + 2
        end
        else begin
          quoted := false;
          incr i
        end
      else begin
        Buffer.add_char buf c;
        incr i
      end
    else begin
      (match c with
      | '"' when Buffer.length buf = 0 -> quoted := true
      | ',' -> end_field ()
      | '\r' when !i + 1 < n && s.[!i + 1] = '\n' ->
          end_row ();
          incr i
      | '\n' | '\r' -> end_row ()
      | c -> Buffer.add_char buf c);
      incr i
    end
  done;
  (* Final record, unless the input ended exactly at a row terminator (a
     trailing newline closes the last record rather than opening an empty
     one). *)
  if Buffer.length buf > 0 || !row <> [] then end_row ();
  List.rev !rows

let rec ensure_directory dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    ensure_directory (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write path rows =
  ensure_directory (Filename.dirname path);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun row ->
          output_string oc (row_to_string row);
          output_char oc '\n')
        rows)

let float_rows ~header rows =
  header
  :: List.map
       (fun (label, xs) -> label :: List.map (Printf.sprintf "%.6g") xs)
       rows

type t = Wan_tcp | Lan_tcp | Localhost_tcp | Shared_memory

let level_number = function
  | Wan_tcp -> 0
  | Lan_tcp -> 1
  | Localhost_tcp -> 2
  | Shared_memory -> 3

let of_latency latency_us =
  if latency_us >= 1000. then Wan_tcp
  else if latency_us >= 100. then Lan_tcp
  else if latency_us >= 10. then Localhost_tcp
  else Shared_memory

let compare_slower_first a b = compare (level_number a) (level_number b)

let to_string = function
  | Wan_tcp -> "WAN-TCP"
  | Lan_tcp -> "LAN-TCP"
  | Localhost_tcp -> "localhost-TCP"
  | Shared_memory -> "shared memory / vendor MPI"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all = [ Wan_tcp; Lan_tcp; Localhost_tcp; Shared_memory ]

let table1 =
  [
    (Wan_tcp, "WAN-TCP");
    (Lan_tcp, "LAN-TCP");
    (Localhost_tcp, "localhost-TCP");
    (Shared_memory, "Myrinet / Vendor MPI / shared memory");
  ]

(** Text Gantt charts of broadcast schedules.

    One row per cluster on a shared time axis:
    - ['.'] waiting for the message,
    - ['>'] transmitting (coordinator NIC busy with an inter-cluster gap),
    - ['#'] intra-cluster broadcast,
    - [' '] done.

    Makes the structural difference between, say, Flat Tree (one long ['>']
    band at the root) and ECEF (staircase of overlapped relays) visible at a
    glance; exposed on the CLI as [gridsched schedule --gantt]. *)

val render :
  ?model:Schedule.completion_model -> ?width:int -> Instance.t -> Schedule.t -> string
(** [width] is the number of characters of the time axis (default 72).
    @raise Invalid_argument if [width < 10]. *)

val print :
  ?model:Schedule.completion_model -> ?width:int -> Instance.t -> Schedule.t -> unit

val render_events : ?width:int -> Gridb_obs.Event.t list -> string
(** Per-rank timeline reconstructed from an observability stream instead of
    an analytic schedule: ['>'] first-attempt sends, ['r'] retransmissions
    (both from paired [Send_start]/[Send_end]), ['*'] message arrivals.
    Renders whatever actually happened — noise, faults and retries
    included — making it the executed-run counterpart of {!render}.
    @raise Invalid_argument if [width < 10]. *)

(** Minimal CSV writing (RFC 4180 quoting) for exporting experiment series.

    The bench harness optionally dumps every figure's data to [results/*.csv]
    so the curves can be re-plotted with external tools. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote or newline. *)

val row_to_string : string list -> string

val parse : string -> string list list
(** RFC 4180 parser, the inverse of the writer: quoted fields may contain
    commas, quotes (doubled) and newlines; records end at LF, CRLF or end
    of input (a trailing newline closes the last record instead of opening
    an empty one); [parse "" = []].  Total on arbitrary input (lenient on
    technically malformed quoting), and for every field list [row],
    [parse (row_to_string row) = [row]] — the property test pins this
    round trip down. *)

val ensure_directory : string -> unit
(** Create a directory (and its parents) if missing; no-op otherwise. *)

val write : string -> string list list -> unit
(** [write path rows] writes all rows (first row typically the header),
    creating the parent directory if needed. *)

val float_rows :
  header:string list -> (string * float list) list -> string list list
(** Convenience: label + float cells per row, floats printed with [%.6g]. *)

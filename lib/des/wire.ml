type t = { nic_free : float array }

let create ~n =
  if n < 1 then invalid_arg "Wire.create: n < 1";
  { nic_free = Array.make n 0. }

let size t = Array.length t.nic_free
let free_at t rank = t.nic_free.(rank)

let touch t rank ~now =
  t.nic_free.(rank) <- Float.max t.nic_free.(rank) now

let seize t rank ~gap =
  let start = t.nic_free.(rank) in
  t.nic_free.(rank) <- start +. gap;
  start

let occupy t rank ~start ~gap = t.nic_free.(rank) <- start +. gap

module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid
module Cluster = Gridb_topology.Cluster
module Params = Gridb_plogp.Params
module Sink = Gridb_obs.Sink
module Plan_cache = Gridb_service.Plan_cache

type t = {
  machines : Machines.t;
  measured : Grid.t;
  (* The schedule cache is the shared service-layer one, keyed by the
     fingerprint of the MEASURED view (plans are computed against it, so
     re-measuring invalidates by key) plus (root, class, heuristic). *)
  cache : Plan_cache.t;
  fingerprint : Gridb_topology.Fingerprint.t;
  obs : Sink.t;
}

let measure_intra ?noise ?seed ?sizes machines cluster =
  let grid = Machines.grid machines in
  let c = Grid.cluster grid cluster in
  if c.Cluster.size >= 2 then begin
    let a = Machines.rank_of machines ~cluster ~index:0 in
    let b = Machines.rank_of machines ~cluster ~index:1 in
    Gridb_mpi.Benchmarks.measure_link ?noise ?seed ?sizes machines ~a ~b
  end
  else
    (* A single machine has no internal link to probe; its broadcast time is
       0 regardless, so any fast placeholder works. *)
    Params.linear ~latency:10. ~g0:10. ~bandwidth_mb_s:1000.

let create ?noise ?seed ?sizes ?(obs = Sink.null) machines =
  let grid = Machines.grid machines in
  let n = Grid.size grid in
  let clusters =
    List.init n (fun c ->
        let truth = Grid.cluster grid c in
        Cluster.v ~id:c
          ~name:(truth.Cluster.name ^ "-measured")
          ~size:truth.Cluster.size
          ~intra:(measure_intra ?noise ?seed ?sizes machines c))
  in
  let placeholder = Params.linear ~latency:1. ~g0:1. ~bandwidth_mb_s:1000. in
  let inter = Array.make_matrix n n placeholder in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let a = Machines.coordinator machines i in
        let b = Machines.coordinator machines j in
        inter.(i).(j) <- Gridb_mpi.Benchmarks.measure_link ?noise ?seed ?sizes machines ~a ~b
      end
    done
  done;
  let measured = Grid.v ~clusters ~inter in
  {
    machines;
    measured;
    cache = Plan_cache.create ~obs ();
    fingerprint = Gridb_topology.Fingerprint.of_machines (Machines.expand measured);
    obs;
  }

let machines t = t.machines
let obs t = t.obs
let measured_grid t = t.measured

let size_class msg =
  if msg < 0 then invalid_arg "Tuning.size_class: negative size";
  let rec up c = if c >= msg then c else up (2 * c) in
  up 64

let instance t ~root ~msg =
  Gridb_sched.Instance.of_grid ~root ~msg:(size_class msg) t.measured

let schedule ?estimator t ~heuristic ~root ~msg =
  let key =
    Plan_cache.key ~fingerprint:t.fingerprint ~root ~msg
      ~policy:heuristic.Gridb_sched.Heuristics.name
  in
  let s, _ =
    Plan_cache.lookup t.cache ?estimator key ~compute:(fun () ->
        Gridb_sched.Heuristics.run heuristic (instance t ~root ~msg))
  in
  s

let plan_cache t = t.cache

let cache_stats t =
  let s = Plan_cache.stats t.cache in
  (s.Plan_cache.hits, s.Plan_cache.misses)

(** Canonical units for the whole code base.

    The paper mixes microseconds (Table 3), milliseconds (Table 2) and
    seconds (every figure).  To avoid unit bugs, every module in this
    repository stores time as {b microseconds} in a [float] and message sizes
    as {b bytes} in an [int]; this module is the single place where
    human-facing conversions live. *)

type time_us = float
(** Time in microseconds. *)

type bytes_ = int
(** Message size in bytes. *)

val us : float -> time_us
val ms : float -> time_us
val seconds : float -> time_us

val to_ms : time_us -> float
val to_seconds : time_us -> float

val bytes : int -> bytes_
val kib : int -> bytes_
val mib : int -> bytes_
val mb : int -> bytes_
(** Decimal megabyte (10^6 bytes), the unit of the paper's x axes. *)

val pp_time : Format.formatter -> time_us -> unit
(** Adaptive: "2.45 s", "340 ms", "47.6 us". *)

val pp_bytes : Format.formatter -> bytes_ -> unit
(** Adaptive: "4 MB", "512 KiB", "64 B". *)

val time_to_string : time_us -> string
val bytes_to_string : bytes_ -> string

module Rng = Gridb_util.Rng
module Machines = Gridb_topology.Machines
module Grid = Gridb_topology.Grid

type priority = Low | High

let priority_to_string = function Low -> "low" | High -> "high"

let priority_of_string = function
  | "low" -> Ok Low
  | "high" -> Ok High
  | other -> Error (Printf.sprintf "unknown priority %S (want low|high)" other)

type request = {
  rid : int;
  at : float;
  root : int;
  msg : int;
  policy : string;
  deadline : float;
  priority : priority;
}

type mix = {
  roots : int array;
  msgs : int array;
  policies : string array;
  deadlines : float array;
  high_frac : float;
}

let default_mix machines =
  let clusters = Grid.size (Machines.grid machines) in
  {
    (* Few distinct roots/sizes/policies: the key space stays small, so a
       sustained request stream revisits keys and the plan cache earns its
       keep (hit rate > 0.5 on the default bench workload). *)
    roots = Array.init (min 3 clusters) Fun.id;
    msgs = [| 65_536; 1_000_000 |];
    policies = [| "ECEF"; "ECEF-LA" |];
    (* No deadlines and no high-priority traffic by default: the classic
       (pre-resilience) request stream, draw for draw. *)
    deadlines = [| infinity |];
    high_frac = 0.;
  }

let validate_mix machines m =
  let clusters = Grid.size (Machines.grid machines) in
  if Array.length m.roots = 0 then invalid_arg "Workload.generate: empty root mix";
  Array.iter
    (fun r ->
      if r < 0 || r >= clusters then
        invalid_arg "Workload.generate: root cluster out of range")
    m.roots;
  if Array.length m.msgs = 0 then invalid_arg "Workload.generate: empty size mix";
  Array.iter
    (fun s -> if s < 1 then invalid_arg "Workload.generate: message size < 1")
    m.msgs;
  if Array.length m.policies = 0 then
    invalid_arg "Workload.generate: empty policy mix";
  Array.iter
    (fun p ->
      if Gridb_sched.Heuristics.by_name p = None then
        invalid_arg (Printf.sprintf "Workload.generate: unknown policy %S" p))
    m.policies;
  if Array.length m.deadlines = 0 then
    invalid_arg "Workload.generate: empty deadline mix";
  Array.iter
    (fun d ->
      if Float.is_nan d || d <= 0. then
        invalid_arg "Workload.generate: deadline must be positive (or infinite)")
    m.deadlines;
  if Float.is_nan m.high_frac || m.high_frac < 0. || m.high_frac > 1. then
    invalid_arg "Workload.generate: high_frac outside [0, 1]"

let generate ?mix ~seed ~rate ~duration machines =
  if rate <= 0. then invalid_arg "Workload.generate: rate must be positive";
  if duration <= 0. then invalid_arg "Workload.generate: duration must be positive";
  let m = match mix with Some m -> m | None -> default_mix machines in
  validate_mix machines m;
  let rng = Rng.create seed in
  (* Open loop: arrivals are a Poisson process of rate [rate], independent
     of service times — the generator never waits for completions.  Fixed
     per-request draw order (interarrival, root, size, policy, then
     deadline and priority) keeps equal seeds giving equal request streams
     whatever the mix sizes.  The deadline/priority draws are skipped
     entirely when their menu is degenerate, so a resilience-free mix
     consumes exactly the draws the pre-deadline generator did — the
     zero-chaos streams are bit-identical to the historical ones. *)
  let rec go rid t acc =
    let t = t +. Rng.exponential rng rate in
    if t > duration then List.rev acc
    else
      let root = Rng.pick rng m.roots in
      let msg = Rng.pick rng m.msgs in
      let policy = Rng.pick rng m.policies in
      let deadline =
        if Array.length m.deadlines = 1 then m.deadlines.(0)
        else Rng.pick rng m.deadlines
      in
      let priority =
        if m.high_frac <= 0. then Low
        else if m.high_frac >= 1. then High
        else if Rng.bernoulli rng m.high_frac then High
        else Low
      in
      go (rid + 1) t ({ rid; at = t; root; msg; policy; deadline; priority } :: acc)
  in
  go 0 0. []

(* --- mix spec codec ---------------------------------------------------- *)

(* Same surface grammar as [Faults.of_string] / [Dynamics.of_string]:
   comma-separated key=value pairs, every parse error names the offending
   key.  List-valued keys separate their elements with '|'. *)

let float_string f = if Float.is_integer f then Printf.sprintf "%.0f" f else Printf.sprintf "%.17g" f

let mix_to_string m =
  let ints a = String.concat "|" (Array.to_list (Array.map string_of_int a)) in
  let floats a =
    String.concat "|"
      (Array.to_list
         (Array.map (fun d -> if d = infinity then "inf" else float_string d) a))
  in
  Printf.sprintf "roots=%s,msgs=%s,policies=%s,deadlines=%s,high=%s" (ints m.roots)
    (ints m.msgs)
    (String.concat "|" (Array.to_list m.policies))
    (floats m.deadlines) (float_string m.high_frac)

let mix_of_string machines s =
  let err key fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "mix key %S: %s" key m)) fmt
  in
  let split_elems v = String.split_on_char '|' v in
  let parse_ints key v k =
    let rec go acc = function
      | [] -> k (Array.of_list (List.rev acc))
      | e :: rest -> (
          match int_of_string_opt (String.trim e) with
          | Some i -> go (i :: acc) rest
          | None -> err key "bad integer %S" e)
    in
    go [] (split_elems v)
  in
  let parse_floats key v k =
    let rec go acc = function
      | [] -> k (Array.of_list (List.rev acc))
      | e :: rest -> (
          match float_of_string_opt (String.trim e) with
          | Some f -> go (f :: acc) rest
          | None -> err key "bad number %S" e)
    in
    go [] (split_elems v)
  in
  let rec fold m = function
    | [] -> Ok m
    | pair :: rest -> (
        match String.index_opt pair '=' with
        | None -> Error (Printf.sprintf "mix: expected key=value, got %S" pair)
        | Some i -> (
            let key = String.trim (String.sub pair 0 i) in
            let v = String.sub pair (i + 1) (String.length pair - i - 1) in
            match key with
            | "roots" -> parse_ints key v (fun a -> fold { m with roots = a } rest)
            | "msgs" -> parse_ints key v (fun a -> fold { m with msgs = a } rest)
            | "policies" ->
                fold
                  { m with policies = Array.of_list (List.map String.trim (split_elems v)) }
                  rest
            | "deadlines" ->
                parse_floats key v (fun a -> fold { m with deadlines = a } rest)
            | "high" -> (
                match float_of_string_opt (String.trim v) with
                | Some f when f >= 0. && f <= 1. -> fold { m with high_frac = f } rest
                | Some _ -> err key "fraction outside [0, 1]"
                | None -> err key "bad number %S" v)
            | other -> Error (Printf.sprintf "mix: unknown key %S" other)))
  in
  let m0 = default_mix machines in
  if String.trim s = "default" then Ok m0
  else
    match fold m0 (String.split_on_char ',' (String.trim s)) with
    | Error _ as e -> e
    | Ok m -> (
        match validate_mix machines m with
        | () -> Ok m
        | exception Invalid_argument msg -> Error msg)

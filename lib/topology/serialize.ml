module Params = Gridb_plogp.Params
module Piecewise = Gridb_plogp.Piecewise

let gap_to_string params =
  Piecewise.points (Params.gap_table params)
  |> List.map (fun (s, v) -> Printf.sprintf "%d:%.17g" s v)
  |> String.concat ","

let params_to_string p =
  Printf.sprintf "L %.17g G %s" (Params.latency p) (gap_to_string p)

let to_string grid =
  let buf = Buffer.create 4096 in
  let n = Grid.size grid in
  Buffer.add_string buf (Printf.sprintf "grid %d\n" n);
  for c = 0 to n - 1 do
    let cl = Grid.cluster grid c in
    Buffer.add_string buf
      (Printf.sprintf "cluster %d %s %d %s\n" c
         (String.map (fun ch -> if ch = ' ' then '_' else ch) cl.Cluster.name)
         cl.Cluster.size
         (params_to_string cl.Cluster.intra))
  done;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then
        Buffer.add_string buf
          (Printf.sprintf "link %d %d %s\n" i j (params_to_string (Grid.link grid i j)))
    done
  done;
  Buffer.contents buf

exception Parse_error of string

let parse_gap_points s =
  String.split_on_char ',' s
  |> List.map (fun pair ->
         match String.split_on_char ':' pair with
         | [ size; value ] -> (
             match (int_of_string_opt size, float_of_string_opt value) with
             | Some s, Some v -> (s, v)
             | _ -> raise (Parse_error ("bad gap point " ^ pair)))
         | _ -> raise (Parse_error ("bad gap point " ^ pair)))

let parse_params = function
  | "L" :: lat :: "G" :: gap :: [] -> (
      match float_of_string_opt lat with
      | None -> raise (Parse_error ("bad latency " ^ lat))
      | Some latency ->
          Params.v ~latency ~gap:(Piecewise.of_points (parse_gap_points gap)) ())
  | toks -> raise (Parse_error ("bad parameter list: " ^ String.concat " " toks))

let of_string text =
  let lines = String.split_on_char '\n' text in
  let relevant =
    List.mapi (fun i l -> (i + 1, String.trim l)) lines
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  try
    match relevant with
    | [] -> Error "empty topology"
    | (ln, first) :: rest ->
        let n =
          match String.split_on_char ' ' first with
          | [ "grid"; n ] -> (
              match int_of_string_opt n with
              | Some n when n > 0 -> n
              | _ -> raise (Parse_error (Printf.sprintf "line %d: bad grid size" ln)))
          | _ -> raise (Parse_error (Printf.sprintf "line %d: expected 'grid <n>'" ln))
        in
        let clusters = Array.make n None in
        let links = Array.make_matrix n n None in
        List.iter
          (fun (ln, line) ->
            let toks =
              String.split_on_char ' ' line |> List.filter (fun t -> t <> "")
            in
            match toks with
            | "cluster" :: id :: name :: size :: params -> (
                match (int_of_string_opt id, int_of_string_opt size) with
                | Some id, Some size when id >= 0 && id < n ->
                    let intra = parse_params params in
                    clusters.(id) <- Some (Cluster.v ~id ~name ~size ~intra)
                | _ ->
                    raise (Parse_error (Printf.sprintf "line %d: bad cluster header" ln)))
            | "link" :: i :: j :: params -> (
                match (int_of_string_opt i, int_of_string_opt j) with
                | Some i, Some j when i >= 0 && i < n && j >= 0 && j < n && i <> j ->
                    links.(i).(j) <- Some (parse_params params)
                | _ -> raise (Parse_error (Printf.sprintf "line %d: bad link header" ln)))
            | _ -> raise (Parse_error (Printf.sprintf "line %d: unknown directive" ln)))
          rest;
        let cluster_list =
          Array.to_list clusters
          |> List.mapi (fun i c ->
                 match c with
                 | Some c -> c
                 | None -> raise (Parse_error (Printf.sprintf "cluster %d missing" i)))
        in
        let self = Params.linear ~latency:1. ~g0:1. ~bandwidth_mb_s:1000. in
        let inter =
          Array.init n (fun i ->
              Array.init n (fun j ->
                  if i = j then self
                  else
                    match links.(i).(j) with
                    | Some p -> p
                    | None ->
                        raise (Parse_error (Printf.sprintf "link %d -> %d missing" i j))))
        in
        Ok (Grid.v ~clusters:cluster_list ~inter)
  with Parse_error reason -> Error reason

let save path grid =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string grid))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

(** Human-readable rendering of fuzzing outcomes for the CLI. *)

val render_success : seed:int -> count:int -> string
(** One line: every scenario passed. *)

val render_failure : ?out:string -> Fuzz.failure -> string
(** Multi-line report: the violation, the shrunk scenario (as the JSON the
    reproducer records), shrinking statistics and — when [out] names the
    reproducer file written — how to replay it. *)

val render_replay : string -> Fuzz.replay_outcome -> string
(** Outcome of [--replay FILE]; first argument is the file name. *)

val catalogue : unit -> string
(** The full invariant catalogue (schedule, stream, metamorphic and
    pipeline checks), one name per line — what [gridsched check --list]
    prints. *)

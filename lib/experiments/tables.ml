module Text_table = Gridb_util.Text_table
module Topology = Gridb_topology
module Clustering = Gridb_clustering

let table1 () =
  let t = Text_table.create [ "level"; "technology" ] in
  List.iter
    (fun (level, tech) ->
      Text_table.add_row t
        [ string_of_int (Topology.Levels.level_number level); tech ])
    Topology.Levels.table1;
  "=== table1: Communication levels (paper Table 1) ===\n" ^ Text_table.render t

let table2 (config : Config.t) =
  let r = config.Config.ranges in
  let t = Text_table.create [ "parameter"; "minimum"; "maximum" ] in
  let ms (lo, hi) =
    (Printf.sprintf "%g ms" (lo /. 1e3), Printf.sprintf "%g ms" (hi /. 1e3))
  in
  let add name range =
    let lo, hi = ms range in
    Text_table.add_row t [ name; lo; hi ]
  in
  add "L (inter-cluster latency)" r.Gridb_sched.Instance.latency_us;
  add "g (inter-cluster gap, 1 MB)" r.Gridb_sched.Instance.gap_us;
  add "T (intra-cluster broadcast)" r.Gridb_sched.Instance.intra_us;
  "=== table2: Simulation parameter ranges (paper Table 2) ===\n" ^ Text_table.render t

let table3 () =
  let names = Topology.Grid5000.cluster_names in
  let sizes = Topology.Grid5000.cluster_sizes in
  let m = Topology.Grid5000.latency_matrix in
  let n = Array.length names in
  let t =
    Text_table.create
      ("cluster (size)" :: List.init n (fun j -> Printf.sprintf "C%d" j))
  in
  for i = 0 to n - 1 do
    Text_table.add_row t
      (Printf.sprintf "C%d %s (%d)" i names.(i) sizes.(i)
      :: List.init n (fun j ->
             if i = j && sizes.(i) = 1 then "-" else Printf.sprintf "%.2f" m.(i).(j))
      )
  done;
  "=== table3: GRID5000 latency matrix, us (paper Table 3) ===\n" ^ Text_table.render t

let table3_rederived () =
  let grid = Topology.Grid5000.grid () in
  let machines = Topology.Machines.expand grid in
  let rng = Gridb_util.Rng.create 31 in
  let matrix = Topology.Machines.latency_matrix ~rng ~jitter_sigma:0.03 machines in
  let partition = Clustering.Lowekamp.detect ~rho:0.30 matrix in
  let reference =
    Clustering.Partition.of_assignment
      (Array.init (Topology.Machines.count machines) (fun r ->
           (Topology.Machines.machine machines r).Topology.Machines.cluster))
  in
  let t = Text_table.create [ "quantity"; "value" ] in
  Text_table.add_row t
    [ "clusters detected (rho=30%)"; string_of_int (Clustering.Partition.count partition) ];
  Text_table.add_row t
    [
      "cluster sizes";
      String.concat ";"
        (Array.to_list (Array.map string_of_int (Clustering.Partition.sizes partition)));
    ];
  Text_table.add_row t
    [
      "Rand index vs paper map";
      Printf.sprintf "%.4f" (Clustering.Partition.rand_index partition reference);
    ];
  Text_table.add_row t
    [
      "homogeneity (max/min)";
      Printf.sprintf "%.3f" (Clustering.Lowekamp.partition_quality matrix partition);
    ];
  "=== table3 (re-derived): Lowekamp detection on noisy 88-machine matrix ===\n"
  ^ Text_table.render t

module Policy = Gridb_sched.Policy
module Sched_engine = Gridb_sched.Engine
module Instance = Gridb_sched.Instance
module Repair = Gridb_sched.Repair
module Machines = Gridb_topology.Machines
module Faults = Gridb_des.Faults
module Plan = Gridb_des.Plan
module Exec = Gridb_des.Exec
module Noise = Gridb_des.Noise
module Sink = Gridb_obs.Sink
module Event = Gridb_obs.Event

type metrics = {
  policy : string;
  spec : Faults.spec;
  retries : int;
  seed : int;
  total_ranks : int;
  delivered : int;
  delivery_ratio : float;
  crashed_ranks : int;
  baseline_makespan : float;
  makespan : float;
  inflation : float;
  transmissions : int;
  retransmissions : int;
  acks : int;
  gave_up : int;
  repair_invoked : bool;
  repairs : int;
  repaired_makespan : float option;
}

let run ?(policy = Policy.ecef_la) ?(msg = 1_000_000) ?(retries = 5) ?(seed = 0)
    ?(noise = Noise.Exact) ?(obs = Sink.null) ~spec grid =
  let inst = Instance.of_grid ~root:0 ~msg grid in
  let schedule = Sched_engine.run ~obs policy inst in
  let machines = Machines.expand grid in
  let plan = Plan.of_cluster_schedule machines schedule in
  let baseline = Exec.run ~msg machines plan in
  let n = Machines.count machines in
  let faults = Faults.create ~seed ~n spec in
  let rng = Gridb_util.Rng.create seed in
  (* Only the faulty reliable run is observed: the baseline exists purely
     as a reference makespan and would double every send on the stream. *)
  let rel = Exec.run_reliable ~noise ~rng ~msg ~faults ~retries ~obs machines plan in
  (* Cluster-level crash vector: a cluster halts (as a schedule node) when
     its coordinator does.  Only crashes inside the simulated horizon count
     ([rel.crashed]); a draw beyond it is a future fault, not this run's. *)
  let crash =
    Array.init (Gridb_topology.Grid.size grid) (fun c ->
        let coord = Machines.coordinator machines c in
        if List.mem coord rel.Exec.crashed then Faults.crash_time faults coord
        else infinity)
  in
  let repair_invoked = Array.exists Float.is_finite crash in
  let repairs, repaired_makespan =
    if repair_invoked then begin
      let o = Repair.repair ~policy inst schedule ~crash in
      if Sink.enabled obs then begin
        let crashed_clusters =
          Array.fold_left (fun acc t -> if Float.is_finite t then acc + 1 else acc) 0 crash
        in
        Sink.emit obs
          (Event.Repair_splice
             { crashed = crashed_clusters; replanned = List.length o.Repair.replanned })
      end;
      (List.length o.Repair.replanned, Some o.Repair.makespan)
    end
    else (0, None)
  in
  {
    policy = Policy.name policy;
    spec;
    retries;
    seed;
    total_ranks = n;
    delivered = rel.Exec.delivered;
    delivery_ratio = float_of_int rel.Exec.delivered /. float_of_int n;
    crashed_ranks = List.length rel.Exec.crashed;
    baseline_makespan = baseline.Exec.makespan;
    makespan = rel.Exec.r_makespan;
    inflation =
      (if baseline.Exec.makespan > 0. then rel.Exec.r_makespan /. baseline.Exec.makespan
       else nan);
    transmissions = rel.Exec.r_transmissions;
    retransmissions = rel.Exec.retransmissions;
    acks = rel.Exec.acks;
    gave_up = List.length rel.Exec.gave_up;
    repair_invoked;
    repairs;
    repaired_makespan;
  }

let render m =
  let table = Gridb_util.Text_table.create ~align:Gridb_util.Text_table.[ Left; Right ] [ "metric"; "value" ] in
  let add label value = Gridb_util.Text_table.add_row table [ label; value ] in
  add "policy" m.policy;
  add "fault spec" (Faults.to_string m.spec);
  add "retry budget" (string_of_int m.retries);
  add "seed" (string_of_int m.seed);
  Gridb_util.Text_table.add_separator table;
  add "ranks" (string_of_int m.total_ranks);
  add "delivered" (string_of_int m.delivered);
  add "delivery ratio" (Printf.sprintf "%.4f" m.delivery_ratio);
  add "crashed ranks" (string_of_int m.crashed_ranks);
  add "edges given up" (string_of_int m.gave_up);
  Gridb_util.Text_table.add_separator table;
  add "fault-free makespan (s)" (Printf.sprintf "%.4f" (m.baseline_makespan /. 1e6));
  add "reliable makespan (s)" (Printf.sprintf "%.4f" (m.makespan /. 1e6));
  add "makespan inflation" (Printf.sprintf "%.3fx" m.inflation);
  add "data transmissions" (string_of_int m.transmissions);
  add "retransmissions" (string_of_int m.retransmissions);
  add "acks delivered" (string_of_int m.acks);
  Gridb_util.Text_table.add_separator table;
  add "repair invoked" (if m.repair_invoked then "yes" else "no");
  add "replanned transmissions" (string_of_int m.repairs);
  add "repaired cluster makespan (s)"
    (match m.repaired_makespan with
    | None -> "-"
    | Some t -> Printf.sprintf "%.4f" (t /. 1e6));
  Gridb_util.Text_table.render table

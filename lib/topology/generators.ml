module Rng = Gridb_util.Rng
module Params = Gridb_plogp.Params

type random_spec = {
  inter_latency_us : float * float;
  inter_bandwidth_mb_s : float * float;
  inter_g0_us : float;
  cluster_size : int * int;
  intra_latency_us : float * float;
  intra_bandwidth_mb_s : float * float;
  intra_g0_us : float;
}

let default_random_spec =
  {
    inter_latency_us = (1_000., 15_000.);
    (* A 1 MB gap of 100-600 ms corresponds to 10 down to 1.67 MB/s. *)
    inter_bandwidth_mb_s = (1.67, 10.);
    inter_g0_us = 100.;
    cluster_size = (4, 128);
    intra_latency_us = (20., 80.);
    intra_bandwidth_mb_s = (50., 1000.);
    intra_g0_us = 15.;
  }

let uniform_random ~rng ~n spec =
  if n < 1 then invalid_arg "Generators.uniform_random: n < 1";
  let draw (lo, hi) = Rng.float_in rng lo hi in
  let clusters =
    List.init n (fun i ->
        let lo, hi = spec.cluster_size in
        let size = Rng.int_in rng lo hi in
        Cluster.v ~id:i
          ~name:(Printf.sprintf "cluster-%d" i)
          ~size
          ~intra:
            (Params.linear
               ~latency:(draw spec.intra_latency_us)
               ~g0:spec.intra_g0_us
               ~bandwidth_mb_s:(draw spec.intra_bandwidth_mb_s)))
  in
  (* Draw the upper triangle, mirror it for symmetry. *)
  let self = Params.linear ~latency:1. ~g0:1. ~bandwidth_mb_s:1000. in
  let inter = Array.make_matrix n n self in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p =
        Params.linear
          ~latency:(draw spec.inter_latency_us)
          ~g0:spec.inter_g0_us
          ~bandwidth_mb_s:(draw spec.inter_bandwidth_mb_s)
      in
      inter.(i).(j) <- p;
      inter.(j).(i) <- p
    done
  done;
  Grid.v ~clusters ~inter

let homogeneous ~n ~cluster_size ~inter ~intra =
  let clusters =
    List.init n (fun i ->
        Cluster.v ~id:i ~name:(Printf.sprintf "homog-%d" i) ~size:cluster_size ~intra)
  in
  let matrix = Array.make_matrix n n inter in
  Grid.v ~clusters ~inter:matrix

type multilevel_spec = {
  sites : int;
  clusters_per_site : int;
  machines_per_cluster : int * int;
  wan_latency_us : float * float;
  lan_latency_us : float * float;
  wan_bandwidth_mb_s : float;
  lan_bandwidth_mb_s : float;
  local_params : Gridb_plogp.Params.t;
}

let default_multilevel_spec =
  {
    sites = 3;
    clusters_per_site = 3;
    machines_per_cluster = (8, 64);
    wan_latency_us = (5_000., 15_000.);
    lan_latency_us = (100., 500.);
    wan_bandwidth_mb_s = 2.5;
    lan_bandwidth_mb_s = 40.;
    local_params = Params.linear ~latency:50. ~g0:15. ~bandwidth_mb_s:100.;
  }

let site_of_cluster spec cluster_index = cluster_index / spec.clusters_per_site

let multilevel ~rng spec =
  if spec.sites < 1 || spec.clusters_per_site < 1 then
    invalid_arg "Generators.multilevel: dimensions must be >= 1";
  let n = spec.sites * spec.clusters_per_site in
  let draw (lo, hi) = Rng.float_in rng lo hi in
  let clusters =
    List.init n (fun i ->
        let lo, hi = spec.machines_per_cluster in
        Cluster.v ~id:i
          ~name:(Printf.sprintf "site%d-cluster%d" (site_of_cluster spec i) (i mod spec.clusters_per_site))
          ~size:(Rng.int_in rng lo hi)
          ~intra:spec.local_params)
  in
  let self = spec.local_params in
  let inter = Array.make_matrix n n self in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let same_site = site_of_cluster spec i = site_of_cluster spec j in
      let p =
        if same_site then
          Params.linear ~latency:(draw spec.lan_latency_us) ~g0:20.
            ~bandwidth_mb_s:spec.lan_bandwidth_mb_s
        else
          Params.linear ~latency:(draw spec.wan_latency_us) ~g0:100.
            ~bandwidth_mb_s:spec.wan_bandwidth_mb_s
      in
      inter.(i).(j) <- p;
      inter.(j).(i) <- p
    done
  done;
  Grid.v ~clusters ~inter

type event = {
  round : int;
  src : int;
  dst : int;
  start : float;
  sender_free : float;
  arrival : float;
}

type t = {
  root : int;
  n : int;
  events : event list;
  ready : float array;
  busy_until : float array;
}

type completion_model = After_sends | Overlapped

let completion_times ?(model = After_sends) inst t =
  Array.init t.n (fun k ->
      let intra = inst.Instance.intra.(k) in
      match model with
      | After_sends -> t.busy_until.(k) +. intra
      | Overlapped -> Float.max (t.ready.(k) +. intra) t.busy_until.(k))

let makespan ?model inst t =
  Array.fold_left Float.max 0. (completion_times ?model inst t)

let rounds t = List.length t.events

let depth t =
  let level = Array.make t.n 0 in
  List.iter (fun e -> level.(e.dst) <- level.(e.src) + 1) t.events;
  Array.fold_left max 0 level

let senders t =
  List.map (fun e -> e.src) t.events |> List.sort_uniq compare

let close_enough a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. scale < 1e-9

let validate inst t =
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  if inst.Instance.n <> t.n then
    fail "instance has %d clusters, schedule %d" inst.Instance.n t.n
  else if t.root <> inst.Instance.root then fail "root mismatch"
  else begin
    let received = Array.make t.n 0 in
    let ready = Array.make t.n infinity in
    let busy = Array.make t.n 0. in
    ready.(t.root) <- 0.;
    let rec check round = function
      | [] ->
          let problem = ref None in
          for k = 0 to t.n - 1 do
            if !problem = None then begin
              if k <> t.root && received.(k) <> 1 then
                problem := Some (Printf.sprintf "cluster %d received %d times" k received.(k))
              else if not (close_enough ready.(k) t.ready.(k)) then
                problem :=
                  Some
                    (Printf.sprintf "ready.(%d) = %g but events imply %g" k t.ready.(k) ready.(k))
              else begin
                let expected_busy = Float.max ready.(k) busy.(k) in
                if not (close_enough expected_busy t.busy_until.(k)) then
                  problem :=
                    Some
                      (Printf.sprintf "busy_until.(%d) = %g but events imply %g" k
                         t.busy_until.(k) expected_busy)
              end
            end
          done;
          (match !problem with None -> Ok () | Some p -> Error p)
      | e :: rest ->
          if e.round <> round then fail "event %d out of order" e.round
          else if e.src < 0 || e.src >= t.n || e.dst < 0 || e.dst >= t.n then
            fail "round %d: cluster out of range" round
          else if e.src = e.dst then fail "round %d: self send" round
          else if e.dst = t.root then fail "round %d: root receives" round
          else if received.(e.dst) > 0 then fail "round %d: cluster %d receives twice" round e.dst
          else if ready.(e.src) = infinity then
            fail "round %d: sender %d does not hold the message" round e.src
          else if e.start +. 1e-9 < ready.(e.src) then
            fail "round %d: send starts at %g before sender ready %g" round e.start ready.(e.src)
          else if e.start +. 1e-9 < busy.(e.src) then
            fail "round %d: send starts at %g during sender occupancy until %g" round e.start
              busy.(e.src)
          else begin
            let g = inst.Instance.gap.(e.src).(e.dst)
            and l = inst.Instance.latency.(e.src).(e.dst) in
            if not (close_enough e.sender_free (e.start +. g)) then
              fail "round %d: sender_free mismatch" round
            else if not (close_enough e.arrival (e.start +. g +. l)) then
              fail "round %d: arrival mismatch" round
            else begin
              received.(e.dst) <- received.(e.dst) + 1;
              ready.(e.dst) <- e.arrival;
              busy.(e.src) <- e.sender_free;
              check (round + 1) rest
            end
          end
    in
    check 0 t.events
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>schedule (root %d, %d clusters):@," t.root t.n;
  List.iter
    (fun e ->
      Format.fprintf ppf "  r%d: %d -> %d  start %.4g  free %.4g  arrive %.4g@," e.round
        e.src e.dst e.start e.sender_free e.arrival)
    t.events;
  Format.fprintf ppf "@]"

(* The Section 7 pipeline end to end: predict a hierarchical broadcast with
   the pLogP model, then "measure" it by executing the same schedule on the
   discrete-event simulator with realistic jitter — the reproduction of the
   paper's Figure 5 (predicted) vs Figure 6 (measured) comparison.

   Run with: dune exec examples/grid5000_broadcast.exe *)

module Topology = Gridb_topology
module Sched = Gridb_sched
module Des = Gridb_des

let seconds us = us /. 1e6

let () =
  let grid = Topology.Grid5000.grid () in
  let machines = Topology.Machines.expand grid in
  let root = Topology.Grid5000.root_cluster in
  let sizes = [ 500_000; 1_000_000; 2_000_000; 4_000_000 ] in
  let heuristics =
    [
      Sched.Heuristics.flat_tree;
      Sched.Heuristics.ecef;
      Sched.Heuristics.ecef_lat_max;
      Sched.Heuristics.bottom_up;
    ]
  in
  let table =
    Gridb_util.Text_table.create
      [ "heuristic"; "message"; "predicted (s)"; "measured (s)"; "error" ]
  in
  List.iter
    (fun h ->
      List.iter
        (fun msg ->
          let inst = Sched.Instance.of_grid ~root ~msg grid in
          let schedule = Sched.Heuristics.run h inst in
          let predicted = Sched.Schedule.makespan inst schedule in
          (* Execute the exact same schedule under lognormal noise, with the
             heuristic's own scheduling cost charged up front. *)
          let plan = Des.Plan.of_cluster_schedule machines schedule in
          let overhead = Gridb_sched.Overhead.cost_us ~n:inst.Sched.Instance.n h.Sched.Heuristics.name in
          let rng = Gridb_util.Rng.create (42 + msg) in
          let reps = 20 in
          let total = ref 0. in
          for _ = 1 to reps do
            let r =
              Des.Exec.run ~noise:Des.Noise.default_measured ~rng ~start_delay:overhead
                ~msg machines plan
            in
            total := !total +. r.Des.Exec.makespan
          done;
          let measured = !total /. float_of_int reps in
          Gridb_util.Text_table.add_row table
            [
              h.Sched.Heuristics.name;
              Gridb_util.Units.bytes_to_string msg;
              Printf.sprintf "%.3f" (seconds predicted);
              Printf.sprintf "%.3f" (seconds measured);
              Printf.sprintf "%+.1f%%" (100. *. ((measured /. predicted) -. 1.));
            ])
        sizes;
      Gridb_util.Text_table.add_separator table)
    heuristics;
  Gridb_util.Text_table.print table;
  print_endline
    "As in the paper, predictions fit the measured results closely; the Flat";
  print_endline
    "Tree pays several sequential wide-area gaps while the grid-aware schedules";
  print_endline "overlap them across clusters."

type 'a t = {
  cmp : 'a -> 'a -> int;
  capacity : int;  (* requested initial allocation, honoured lazily *)
  mutable data : 'a array;  (* slots [0, size) are live *)
  mutable size : int;
}

let create ?(capacity = 16) ~cmp () =
  if capacity < 1 then invalid_arg "Binary_heap.create: capacity < 1";
  { cmp; capacity; data = [||]; size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t x =
  (* The array is allocated lazily because a heap of unknown element type
     cannot be pre-filled; [x] seeds the new slots. *)
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then t.capacity else 2 * cap in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t x =
  grow t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Binary_heap.pop_exn: empty heap"

let clear t = t.size <- 0

let of_array ~cmp a =
  let t =
    { cmp; capacity = max 1 (Array.length a); data = Array.copy a; size = Array.length a }
  in
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  t

let to_sorted_list t =
  let rec drain acc =
    match pop t with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  drain []

let check_invariant t =
  let ok = ref true in
  for i = 1 to t.size - 1 do
    if t.cmp t.data.((i - 1) / 2) t.data.(i) > 0 then ok := false
  done;
  !ok

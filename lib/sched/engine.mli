(** Shared schedule construction engine for {!Policy} descriptors.

    Two interchangeable execution modes:

    - [`Naive] — the paper's reference procedure: every round, re-evaluate
      the selection rule over the full A×B frontier (and, for lookahead
      policies, recompute every [F_j] from scratch).  O(n^3) for the plain
      heuristics and O(n^4)-ish for the ECEF-LA* family, but trivially
      correct; kept as the oracle the differential tests compare against.

    - [`Incremental] (default) — exploits the {!State.send} invariant
      (after a send, among A only the sender's [avail] changed, and only
      the receiver moved B→A) to keep per-receiver best-sender heaps with
      lazy invalidation: a stale entry under-estimates its true score (an
      [avail] only ever advances), so it surfaces at the top, is re-scored
      and pushed back down ({!field-rescored} counts these).  Static fold
      lookahead terms live in per-receiver heaps with lazy deletion as B
      shrinks; dynamic lookaheads are re-evaluated fresh, as the oracle
      does.  ~O(n^2 log n) per schedule.

    Both modes produce the {e identical} schedule — event for event,
    including the naive scan's ascending-(i, j) tie-breaking (scores are
    recomputed with the same expressions, so equality is bitwise). *)

type mode = [ `Incremental | `Naive ]

type stats = {
  mutable pair_evaluations : int;
      (** Pair-score computations ([L], [g + L] or arrival, depending on
          the policy), including re-scores of stale heap entries. *)
  mutable lookahead_terms : int;
      (** Lookahead work in units of one [F_j] term; a full [F_j]
          evaluation over [B \ {j}] counts [|B| - 1]. *)
  mutable rescored : int;
      (** Stale candidate entries re-scored on pop (always 0 in [`Naive]
          mode and for static pair scores). *)
}

val run : ?mode:mode -> ?obs:Gridb_obs.Sink.t -> Policy.t -> Instance.t -> Schedule.t
(** [run ?mode policy inst] builds the broadcast schedule for [inst].
    [Sized] policies are resolved against [inst]'s size first.

    [obs] (default {!Gridb_obs.Sink.null}) receives one [Policy_round] per
    selection, [Heap_op] events for lazy re-scores/drops of the incremental
    heaps, and the {!type-stats} counters as [Counter] events at the end.
    With the Null sink every emission site is one always-false branch; the
    schedule built is bit-identical either way. *)

val run_stats :
  ?mode:mode -> ?obs:Gridb_obs.Sink.t -> Policy.t -> Instance.t -> Schedule.t * stats
(** Same, also returning work counters — the naive counters match the
    {!Overhead} closed forms exactly.  Kept as a thin compatibility wrapper
    over the bus: the returned record holds the same values the [Counter]
    events publish. *)

val naive_select : Policy.t -> State.t -> int * int
(** One reference selection round: the (sender, receiver) pair the naive
    scan picks in the given state.  This is what {!Heuristics.t}'s [select]
    closure delegates to.
    @raise Invalid_argument if the state is finished. *)

(** Replan-vs-ride-out experiment on a dynamic grid.

    One evaluation closes the paper's loop under a time-varying topology:

    + plan a broadcast schedule on the nominal grid (the static paper
      pipeline);
    + execute it reliably while a {!Gridb_des.Dynamics} model drifts the
      link parameters and churns the membership, with the adaptive
      transport's estimator watching every round trip;
    + every [recluster_every] us (the spec's field), re-run Lowekamp's
      cluster detection on the estimator's live latency matrix and record
      the partition drift against plan time plus the estimator divergence
      — the online re-clustering loop;
    + at quiescence, feed the final signals to {!Gridb_sched.Replan.decide}
      and build the three candidate responses: ride out the original
      schedule, {!Gridb_sched.Repair}-splice it on the estimated instance,
      or replan the whole broadcast from estimates;
    + judge all three with {!Gridb_sched.Replan.evaluate} on the {e true}
      drifted instance (nominal parameters scaled by the actual
      {!Gridb_des.Dynamics.factor} at the decision instant) under the true
      coordinator halt times.

    [bench/dynamics.exe] sweeps this over drift-rate x churn-rate cells to
    map where replanning from estimates beats riding out. *)

type tick = {
  at : float;  (** us *)
  drift : float;  (** 1 - Rand index vs the plan-time machine partition *)
  divergence : float;  (** mean |quality - 1| over estimator-observed links *)
}

type outcome = {
  policy : string;
  dyn : Gridb_des.Dynamics.spec;
  spec : Gridb_des.Faults.spec;
  seed : int;
  clusters : int;
  total_ranks : int;  (** planning-time ranks + joins within the horizon *)
  delivered : int;  (** observed run, ranks holding the message *)
  delivery_ratio : float;
  makespan : float;  (** observed reliable makespan, us *)
  horizon : float;  (** quiescence instant — the decision time, us *)
  left_ranks : int;
  joined_ranks : int;
  ticks : tick list;  (** re-clustering trail, chronological *)
  final_drift : float;  (** partition drift at quiescence *)
  final_divergence : float;  (** estimator divergence at quiescence *)
  departed_clusters : int;  (** coordinators halted within the horizon *)
  decision : Gridb_sched.Replan.decision;
  ride_out : Gridb_sched.Replan.verdict;
  splice : Gridb_sched.Replan.verdict;
  replan : Gridb_sched.Replan.verdict;
}

val chosen : outcome -> Gridb_sched.Replan.verdict
(** The verdict of the candidate {!outcome.decision} picked. *)

val divergence : Gridb_des.Adaptive.t -> float
(** Mean [|quality - 1|] over links with at least one Karn-valid sample;
    0. when nothing was observed yet. *)

val run :
  ?policy:Gridb_sched.Policy.t ->
  ?msg:int ->
  ?retries:int ->
  ?seed:int ->
  ?noise:Gridb_des.Noise.t ->
  ?obs:Gridb_obs.Sink.t ->
  ?transport:Gridb_des.Exec.transport ->
  ?thresholds:Gridb_sched.Replan.thresholds ->
  ?spec:Gridb_des.Faults.spec ->
  dyn:Gridb_des.Dynamics.spec ->
  Gridb_topology.Grid.t ->
  outcome
(** One evaluation on [grid] (root cluster 0).  Defaults:
    {!Gridb_sched.Policy.ecef_la}, 1 MB, 5 retries, seed 0, [Exact] noise,
    adaptive transport {e with} reroute (the estimator and the adoption
    path are what make the loop observable — under [Fixed] the signals
    read 0 and the estimated instance degrades to the nominal one),
    {!Gridb_sched.Replan.default} thresholds, no faults.  [seed] seeds the
    fault model, the run's jitter stream, and (tagged) the dynamics
    model — the same derivation as {!Robustness.run}, so the two
    experiments agree on the same draws at the same seed. *)

val render : outcome -> string
(** Two-column text table: observed run, re-clustering trail summary,
    decision and the three candidate verdicts. *)

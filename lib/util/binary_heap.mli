(** Keyed binary min-heap, expressed over {!Score_heap}.

    Backbone of the discrete-event simulator ([Gridb_des.Engine]): events
    are popped in timestamp order.  Elements are ordered by a [float] key
    plus a monotonically increasing insertion sequence number, and the
    heap itself is a {!Score_heap} of (key, sequence) pairs over a side
    array of payloads — the two heap structures of the repo share
    {!Score_heap}'s single sift core.

    Because {!Score_heap} breaks key ties towards the smaller id and the
    id here is the insertion sequence, {e equal keys pop in insertion
    order} (FIFO) — exactly the stable tie-breaking the DES engine needs
    for reproducible runs, with unboxed float comparisons instead of a
    comparison closure per sift step. *)

type 'a t

val create : ?capacity:int -> key:('a -> float) -> unit -> 'a t
(** Empty heap ordered by [key] (minimum first), insertion order among
    equal keys.  [key] is sampled once per {!add}; mutating an element's
    key after insertion does not re-order the heap.  [capacity] sizes the
    first allocation (default 16).
    @raise Invalid_argument if [capacity < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> 'a -> unit
(** O(log n) insertion. *)

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on empty heap. *)

val clear : 'a t -> unit
(** Drop every element (also releases the payload array). *)

val of_array : key:('a -> float) -> 'a array -> 'a t
(** Heap of the array's elements; insertion order is array order. *)

val to_sorted_list : 'a t -> 'a list
(** Drains the heap; the heap is empty afterwards. *)

val check_invariant : 'a t -> bool
(** True iff the underlying score heap's invariant holds (for tests). *)

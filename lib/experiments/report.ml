module Text_table = Gridb_util.Text_table
module Ascii_plot = Gridb_util.Ascii_plot
module Csv = Gridb_util.Csv

type figure = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  series : (string * (float * float) list) list;
  notes : string list;
}

let xs_of figure =
  List.concat_map (fun (_, pts) -> List.map fst pts) figure.series
  |> List.sort_uniq compare

let y_at points x =
  List.assoc_opt x points

let render figure =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "=== %s: %s ===\n" figure.id figure.title);
  let xs = xs_of figure in
  let table =
    Text_table.create (figure.x_label :: List.map fst figure.series)
  in
  List.iter
    (fun x ->
      let cells =
        Printf.sprintf "%g" x
        :: List.map
             (fun (_, pts) ->
               match y_at pts x with
               | Some y -> Printf.sprintf "%.4g" y
               | None -> "-")
             figure.series
      in
      Text_table.add_row table cells)
    xs;
  Buffer.add_string buf (Text_table.render table);
  Buffer.add_char buf '\n';
  let plot_series =
    List.map
      (fun (label, pts) -> { Ascii_plot.label; points = pts })
      figure.series
  in
  Buffer.add_string buf
    (Ascii_plot.plot ~title:figure.title ~x_label:figure.x_label
       ~y_label:figure.y_label plot_series);
  List.iter (fun note -> Buffer.add_string buf ("note: " ^ note ^ "\n")) figure.notes;
  Buffer.contents buf

let print figure =
  print_string (render figure);
  print_newline ()

let to_csv ~dir figure =
  let xs = xs_of figure in
  let header = figure.x_label :: List.map fst figure.series in
  let rows =
    List.map
      (fun x ->
        Printf.sprintf "%.6g" x
        :: List.map
             (fun (_, pts) ->
               match y_at pts x with
               | Some y -> Printf.sprintf "%.6g" y
               | None -> "")
             figure.series)
      xs
  in
  let path = Filename.concat dir (figure.id ^ ".csv") in
  Csv.write path (header :: rows);
  path

let to_gnuplot ~dir figure =
  let path = Filename.concat dir (figure.id ^ ".gp") in
  let buf = Buffer.create 1024 in
  let quote s = "\"" ^ String.concat "''" (String.split_on_char '"' s) ^ "\"" in
  Buffer.add_string buf "set datafile separator \",\"\n";
  Buffer.add_string buf "set terminal svg size 800,500\n";
  Buffer.add_string buf (Printf.sprintf "set output \"%s.svg\"\n" figure.id);
  Buffer.add_string buf (Printf.sprintf "set title %s\n" (quote figure.title));
  Buffer.add_string buf (Printf.sprintf "set xlabel %s\n" (quote figure.x_label));
  Buffer.add_string buf (Printf.sprintf "set ylabel %s\n" (quote figure.y_label));
  Buffer.add_string buf "set key outside right\n";
  Buffer.add_string buf "set grid\n";
  let plots =
    List.mapi
      (fun i (label, _) ->
        Printf.sprintf "\"%s.csv\" using 1:%d skip 1 with linespoints title %s"
          figure.id (i + 2) (quote label))
      figure.series
  in
  Buffer.add_string buf ("plot " ^ String.concat ", \\\n     " plots ^ "\n");
  Csv.ensure_directory dir;
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  path

let series_of_table ~xs rows =
  List.map
    (fun (label, ys) ->
      if List.length ys <> List.length xs then
        invalid_arg "Report.series_of_table: length mismatch";
      (label, List.combine xs ys))
    rows

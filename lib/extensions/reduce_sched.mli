(** Grid-aware scheduling for gather/reduce by time reversal.

    A broadcast schedule run backwards is a valid reduction schedule: if the
    broadcast delivers to every coordinator by time [M], then reversing
    every transmission (receiver sends to its former sender, mirrored in
    time) gathers every contribution at the root by the same [M] — the
    standard bcast/reduce duality, which lets all seven heuristics be
    reused unchanged for the reduce pattern of the paper's future work.

    The mirrored timing: a broadcast event [(src, dst)] with arrival [t]
    becomes a reduce transmission [(dst, src)] starting at [M' - t] where
    [M'] is the reversed horizon.  Intra-cluster phases swap sides: each
    cluster first runs an internal {e gather} (time [T_k], same cost as its
    broadcast under symmetric links), then its coordinator forwards
    upstream. *)

type event = {
  round : int;
  src : int;  (** sends its partial result *)
  dst : int;
  start : float;
  arrival : float;
}

type t = {
  root : int;  (** where the reduction lands *)
  n : int;
  events : event list;  (** in time order *)
  makespan : float;
}

val of_broadcast : Gridb_sched.Instance.t -> Gridb_sched.Schedule.t -> t
(** Reverse a broadcast schedule into a reduce schedule over the same
    instance.  @raise Invalid_argument if the schedule does not match the
    instance. *)

val makespan_equals_broadcast : Gridb_sched.Instance.t -> Gridb_sched.Schedule.t -> bool
(** The duality check the tests rely on: reversed makespan = broadcast
    makespan (After_sends model), up to floating point. *)

val best_heuristic :
  Gridb_sched.Instance.t -> Gridb_sched.Heuristics.t list -> Gridb_sched.Heuristics.t * t
(** Schedule a reduction with every given heuristic (via duality) and keep
    the best.  @raise Invalid_argument on an empty list. *)

(** The 88-machine / 6-cluster GRID5000 testbed of the paper's Section 7.

    Latencies come verbatim from Table 3 (microseconds).  The paper does not
    publish the per-link gap functions, so bandwidths are synthesised from
    the link class (same site / Toulouse / far WAN) — see DESIGN.md for why
    this preserves the comparison: every strategy sees the same substituted
    parameters, so relative ordering depends only on schedule structure. *)

val cluster_names : string array
(** ["Orsay-A"; "Orsay-B"; "IDPOT-A"; "IDPOT-B"; "IDPOT-C"; "Toulouse"]. *)

val cluster_sizes : int array
(** [|31; 29; 6; 1; 1; 20|] — 88 machines in total. *)

val latency_matrix : float array array
(** Table 3 verbatim; diagonal entries are the intra-cluster latency
    (machine to machine inside the cluster); singletons use 0. *)

val inter_bandwidth_mb_s : float -> float
(** Synthesised bandwidth for an inter-cluster link given its latency:
    far WAN (>= 10 ms) 1.3 MB/s, medium WAN (>= 1 ms) 4 MB/s, same-site
    50 MB/s.  Chosen so the predicted curves land in the paper's regime
    (ECEF family < 3 s and Flat Tree ~ 6x slower at a 4 MB broadcast). *)

val intra_bandwidth_mb_s : float
(** 100 MB/s (gigabit Ethernet class). *)

val grid : unit -> Grid.t
(** Builds the full 6-cluster grid. *)

val root_cluster : int
(** Cluster hosting the broadcast root in Section 7 (0 = Orsay-A). *)

(** Uniform rendering of reproduced figures.

    A figure is a set of labelled series over a numeric x axis.  Rendering
    prints the numbers as an aligned table (the "same rows the paper
    reports"), an ASCII plot of the curves, and optionally a CSV file for
    external plotting. *)

type figure = {
  id : string;  (** e.g. "fig1" *)
  title : string;
  x_label : string;
  y_label : string;
  series : (string * (float * float) list) list;  (** label, (x, y) points *)
  notes : string list;  (** provenance / interpretation lines printed below *)
}

val render : figure -> string
val print : figure -> unit

val to_csv : dir:string -> figure -> string
(** Writes [dir/<id>.csv] (x column followed by one column per series,
    rows joined on x) and returns the path. *)

val to_gnuplot : dir:string -> figure -> string
(** Writes [dir/<id>.gp], a self-contained gnuplot script that plots the
    figure from its CSV sibling (written by {!to_csv}) to
    [dir/<id>.svg]; returns the script path.  Render with
    [gnuplot <id>.gp]. *)

val series_of_table :
  xs:float list -> (string * float list) list -> (string * (float * float) list) list
(** Zip per-series y-lists with the shared x axis.
    @raise Invalid_argument on length mismatch. *)

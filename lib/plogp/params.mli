(** pLogP parameter sets (Kielmann et al., "Network performance-aware
    collective communication for clustered wide area systems").

    pLogP extends LogP with message-size-dependent parameters:
    - [l]      end-to-end latency (microseconds), size independent;
    - [g m]    gap: minimal interval between consecutive transmissions of
               messages of size [m] — the reciprocal of effective bandwidth;
    - [os m]   send overhead: CPU time the sender is busy;
    - [or_ m]  receive overhead: CPU time the receiver is busy.

    The gap dominates both overheads for the networks the paper studies, so
    [g] is required while [os]/[or_] default to a fixed fraction of [g]. *)

type t

val v :
  ?os:Piecewise.t -> ?or_:Piecewise.t -> latency:float -> gap:Piecewise.t -> unit -> t
(** Builds a parameter set.  When omitted, [os] and [or_] default to
    [Piecewise.scale overhead_fraction gap] with {!overhead_fraction}.
    @raise Invalid_argument if [latency < 0.]. *)

val overhead_fraction : float
(** Fraction of the gap attributed to CPU overhead when no measured overhead
    is supplied (0.05). *)

val linear : latency:float -> g0:float -> bandwidth_mb_s:float -> t
(** Closed-form convenience: gap(m) = g0 + m / bandwidth.  [bandwidth_mb_s]
    is in decimal MB/s (1 MB/s = 1 byte/us exactly in this codebase's units).
    @raise Invalid_argument if [g0 < 0.] or [bandwidth_mb_s <= 0.]. *)

val latency : t -> float
val gap : t -> int -> float
val send_overhead : t -> int -> float
val recv_overhead : t -> int -> float
val gap_table : t -> Piecewise.t

val send_time : t -> int -> float
(** Time for a message of size [m] to be fully received, sender and receiver
    idle before the transfer: [g m + l] (the paper's [g_ij(m) + L_ij]). *)

val sender_busy : t -> int -> float
(** Time the sender is unavailable for the next transmission: [g m]. *)

val rtt : t -> int -> float
(** Round-trip estimate for a size-[m] ping and an empty reply:
    [2 l + g m + g 0]. *)

val scale_noise : factor:float -> t -> t
(** Multiplies latency and all tables by [factor] (>0) — used by the DES
    noise models.  @raise Invalid_argument if [factor <= 0.]. *)

val rescale : ?gap_factor:float -> ?latency_factor:float -> t -> t
(** Anisotropic variant of {!scale_noise}: gap (and the overhead tables
    derived from it) and latency scale independently.  This is how the
    adaptive transport ({!Gridb_des.Adaptive}) turns a nominal parameter
    set plus an observed round-trip ratio into an {e estimated} one.
    Both factors default to 1.  @raise Invalid_argument if either factor
    is non-positive. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
(** Structural equality on defining samples (for tests). *)

let default_max_clusters = 8

let schedule_count n =
  let rec loop k acc = if k = n then acc else loop (k + 1) (acc * k * (n - k)) in
  if n <= 1 then 1 else loop 1 1

type search_result = { best : float; choices : (int * int) list }

let search inst =
  let n = inst.Instance.n in
  let root = inst.Instance.root in
  let gap = inst.Instance.gap and lat = inst.Instance.latency in
  let intra = inst.Instance.intra in
  let in_a = Array.make n false in
  let avail = Array.make n infinity in
  in_a.(root) <- true;
  avail.(root) <- 0.;
  let best = ref infinity in
  let best_choices = ref [] in
  let choices = Array.make (max 1 (n - 1)) (0, 0) in
  (* Cheapest possible final hop into j from anywhere, used by the bound. *)
  let min_in_edge =
    Array.init n (fun j ->
        let m = ref infinity in
        for k = 0 to n - 1 do
          if k <> j then m := Float.min !m (gap.(k).(j) +. lat.(k).(j))
        done;
        !m)
  in
  let lower_bound () =
    (* Clusters in A can only get busier; clusters in B must still receive a
       final hop that starts no earlier than the earliest available sender. *)
    let lb = ref 0. in
    let min_avail = ref infinity in
    for k = 0 to n - 1 do
      if in_a.(k) then begin
        lb := Float.max !lb (avail.(k) +. intra.(k));
        min_avail := Float.min !min_avail avail.(k)
      end
    done;
    for j = 0 to n - 1 do
      if not in_a.(j) then
        lb := Float.max !lb (!min_avail +. min_in_edge.(j) +. intra.(j))
    done;
    !lb
  in
  let rec dfs depth =
    if depth = n - 1 then begin
      let mk = ref 0. in
      for k = 0 to n - 1 do
        mk := Float.max !mk (avail.(k) +. intra.(k))
      done;
      if !mk < !best then begin
        best := !mk;
        best_choices := Array.to_list (Array.sub choices 0 depth)
      end
    end
    else if lower_bound () < !best then
      for i = 0 to n - 1 do
        if in_a.(i) then
          for j = 0 to n - 1 do
            if not in_a.(j) then begin
              let saved_avail_i = avail.(i) in
              let arrival = avail.(i) +. gap.(i).(j) +. lat.(i).(j) in
              avail.(i) <- avail.(i) +. gap.(i).(j);
              in_a.(j) <- true;
              avail.(j) <- arrival;
              choices.(depth) <- (i, j);
              dfs (depth + 1);
              in_a.(j) <- false;
              avail.(j) <- infinity;
              avail.(i) <- saved_avail_i
            end
          done
      done
  in
  dfs 0;
  { best = !best; choices = !best_choices }

let check_size max_clusters inst =
  if inst.Instance.n > max_clusters then
    invalid_arg
      (Printf.sprintf "Optimal: %d clusters exceeds the ceiling of %d" inst.Instance.n
         max_clusters)

let makespan ?(max_clusters = default_max_clusters) inst =
  check_size max_clusters inst;
  if inst.Instance.n = 1 then inst.Instance.intra.(inst.Instance.root)
  else (search inst).best

let schedule ?(max_clusters = default_max_clusters) inst =
  check_size max_clusters inst;
  let result = if inst.Instance.n = 1 then { best = 0.; choices = [] } else search inst in
  let state = State.create inst in
  List.iter (fun (src, dst) -> State.send state ~src ~dst) result.choices;
  State.to_schedule state

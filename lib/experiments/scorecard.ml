type verdict = {
  claim : string;
  expected : string;
  measured : string;
  pass : bool;
}

let value figure label x =
  match List.assoc_opt label figure.Report.series with
  | None -> nan
  | Some points -> ( match List.assoc_opt x points with Some y -> y | None -> nan)

let of_figures ~fig1 ~fig2 ~fig3 ~fig4_literal ~fig4_overlapped ~fig5 ~fig6 () =
  let v = value in
  let verdicts = ref [] in
  let add claim expected measured pass =
    verdicts := { claim; expected; measured; pass } :: !verdicts
  in
  (* Figure 1 *)
  let flat10 = v fig1 "FlatTree" 10. and fef10 = v fig1 "FEF" 10. in
  let ecef10 = v fig1 "ECEF" 10. and bu10 = v fig1 "BottomUp" 10. in
  add "Fig1: Flat Tree presents the worst performance" "FlatTree > all others at n=10"
    (Printf.sprintf "flat %.2fs vs FEF %.2fs" flat10 fef10)
    (flat10 > fef10 && flat10 > bu10 && flat10 > ecef10);
  add "Fig1: BottomUp performs better than FEF" "BottomUp < FEF at n=10"
    (Printf.sprintf "%.2fs vs %.2fs" bu10 fef10)
    (bu10 < fef10);
  add "Fig1: best performance achieved by the ECEF* techniques"
    "ECEF family < BottomUp at n=10"
    (Printf.sprintf "ECEF %.2fs vs BottomUp %.2fs" ecef10 bu10)
    (ecef10 < bu10);
  (* Figure 2 *)
  let flat50 = v fig2 "FlatTree" 50. and flat10' = v fig2 "FlatTree" 10. in
  let fef50 = v fig2 "FEF" 50. and ecef50 = v fig2 "ECEF" 50. in
  let ecef5 = v fig2 "ECEF" 5. in
  add "Fig2: Flat Tree clearly inefficient for many clusters (linear growth)"
    "flat(50) >= 3 x flat(10)"
    (Printf.sprintf "%.1fs vs %.1fs" flat50 flat10')
    (flat50 >= 3. *. flat10');
  add "Fig2: FEF does not achieve good performance levels" "FEF(50) >= 2 x ECEF(50)"
    (Printf.sprintf "%.2fs vs %.2fs" fef50 ecef50)
    (fef50 >= 2. *. ecef50);
  add "Fig2: ECEF* time does not increase linearly with clusters"
    "ECEF(50) <= 1.3 x ECEF(5)"
    (Printf.sprintf "%.2fs vs %.2fs" ecef50 ecef5)
    (ecef50 <= 1.3 *. ecef5);
  (* Figure 3 *)
  let family50 =
    List.filter_map
      (fun (label, _) ->
        let y = v fig3 label 50. in
        if Float.is_nan y then None else Some y)
      fig3.Report.series
  in
  let fam_lo = List.fold_left Float.min infinity family50 in
  let fam_hi = List.fold_left Float.max neg_infinity family50 in
  add "Fig3: ECEF-like averages too similar to distinguish" "spread < 10% at n=50"
    (Printf.sprintf "%.3fs .. %.3fs" fam_lo fam_hi)
    (fam_hi /. fam_lo < 1.10);
  (* Figure 4 — the completion-model ambiguity is reported, not judged: the
     overlapped model must show the paper's "LAT stays strong while min-based
     variants decay" trend on mid-size grids. *)
  let lat20 = v fig4_overlapped "ECEF-LAT" 20. in
  let ecef20 = v fig4_overlapped "ECEF" 20. in
  add "Fig4 (overlapped model): ECEF-LAT keeps the highest hit rate at n=20"
    "LAT hits > ECEF hits"
    (Printf.sprintf "%.0f vs %.0f" lat20 ecef20)
    (lat20 > ecef20);
  let lat_lit_5 = v fig4_literal "ECEF-LAT" 5. in
  let lat_lit_50 = v fig4_literal "ECEF-LAT" 50. in
  add "Fig4 (after-sends model): max-lookahead hit rate decays with n"
    "LAT hits at 50 < at 5"
    (Printf.sprintf "%.0f -> %.0f" lat_lit_5 lat_lit_50)
    (lat_lit_50 < lat_lit_5);
  (* Figure 5 *)
  let ecef4m = v fig5 "ECEF" 4_000_000. and flat4m = v fig5 "FlatTree" 4_000_000. in
  add "Fig5/6: ECEF-like under 3 s for a 4 MB message" "ECEF(4MB) < 3 s"
    (Printf.sprintf "%.2fs" ecef4m)
    (ecef4m < 3.);
  add "Fig5/6: Flat Tree several times slower (paper: ~6x)" "flat >= 3 x ECEF at 4MB"
    (Printf.sprintf "%.1fs vs %.2fs (%.1fx)" flat4m ecef4m (flat4m /. ecef4m))
    (flat4m >= 3. *. ecef4m);
  (* Figure 6 *)
  let lam = value fig6 "Default LAM" 4_000_000. in
  let flat_m = value fig6 "FlatTree" 4_000_000. in
  let ecef_m = value fig6 "ECEF" 4_000_000. in
  add "Fig6: Flat Tree even worse than the grid-unaware binomial" "flat > Default LAM"
    (Printf.sprintf "%.1fs vs %.1fs" flat_m lam)
    (flat_m > lam);
  add "Fig6: predictions fit measured results with good precision"
    "ECEF measured within 20% of predicted"
    (Printf.sprintf "measured %.2fs vs predicted %.2fs" ecef_m ecef4m)
    (Float.abs (ecef_m -. ecef4m) /. ecef4m < 0.20);
  List.rev !verdicts

let table3_verdict () =
  let machines = Gridb_topology.Machines.expand (Gridb_topology.Grid5000.grid ()) in
  let rng = Gridb_util.Rng.create 31 in
  let matrix = Gridb_topology.Machines.latency_matrix ~rng ~jitter_sigma:0.03 machines in
  let partition = Gridb_clustering.Lowekamp.detect ~rho:0.30 matrix in
  let truth =
    Gridb_clustering.Partition.of_assignment
      (Array.init
         (Gridb_topology.Machines.count machines)
         (fun r ->
           (Gridb_topology.Machines.machine machines r).Gridb_topology.Machines.cluster))
  in
  let rand = Gridb_clustering.Partition.rand_index partition truth in
  {
    claim = "Table 3: Lowekamp detection (rho=30%) yields the 6-cluster map";
    expected = "6 clusters, Rand index ~ 1";
    measured =
      Printf.sprintf "%d clusters, Rand %.4f"
        (Gridb_clustering.Partition.count partition)
        rand;
    pass = Gridb_clustering.Partition.count partition = 6 && rand > 0.99;
  }

let render verdicts =
  let table =
    Gridb_util.Text_table.create
      ~align:Gridb_util.Text_table.[ Left; Left; Left; Left ]
      [ "paper claim"; "expected"; "measured"; "verdict" ]
  in
  List.iter
    (fun v ->
      Gridb_util.Text_table.add_row table
        [ v.claim; v.expected; v.measured; (if v.pass then "PASS" else "FAIL") ])
    verdicts;
  Gridb_util.Text_table.render table

let all_pass = List.for_all (fun v -> v.pass)

(** One broadcast as a session on a shared engine and wire.

    This is the executor core of {!Exec}, refactored so that {e several}
    broadcasts (mixed roots, message sizes, transports) can run
    concurrently on one discrete-event {!Engine} while contending for the
    same per-NIC occupancy state ({!Wire}) — the broadcast-service
    execution model.  {!Exec.run} and {!Exec.run_reliable} are thin
    single-session wrappers over this module (private wire, private
    engine) and are bit-identical to the historical executors.

    Lifecycle: [launch]/[launch_reliable] validate, seed the session's
    first event at [config.start_delay] and return a handle; the caller
    runs the engine (once, for all launched sessions) and then extracts
    each session's outcome with [result]/[reliable_result].

    When [sid] is given, every event the session publishes — to the
    [config.obs] sink and to the internal trace sink — is wrapped in
    {!Gridb_obs.Event.Tagged}[ { sid; _ }] so multi-session streams can be
    attributed per request ({!Gridb_obs.Profile} rolls them up).  Untagged
    ([sid] absent) sessions emit byte-identical streams to the historical
    executors. *)

type transport = Fixed | Adaptive of { config : Adaptive.config; reroute : bool }
(** See {!Exec.transport} (the public alias). *)

type result = {
  arrival : float array;
  makespan : float;
  transmissions : int;
  trace : Trace.transmission list;
}
(** See {!Exec.result} (the public alias). *)

type reliable = {
  r_arrival : float array;
  r_makespan : float;
  r_transmissions : int;
  retransmissions : int;
  acks : int;
  delivered : int;
  gave_up : (int * int) list;
  crashed : int list;
  left : int list;
  joined : int list;
  horizon : float;
  reroutes : (int * int * int) list;
  circuit_opens : int;
  estimator : Adaptive.t option;
  r_trace : Trace.transmission list;
}
(** See {!Exec.reliable} (the public alias).  For sessions sharing an
    engine, [horizon] is the engine clock when [reliable_result] is
    called — global quiescence, not per-session. *)

(** Everything a session needs besides topology and plan — the former 13
    optional arguments of [Exec.run_reliable] as one record. *)
module Config : sig
  type t = {
    noise : Noise.t;  (** per-transmission parameter noise *)
    rng : Gridb_util.Rng.t option;
        (** random stream; [None] creates a fresh seed-0 stream {e per
            launch}.  [Some] shares the stream object between sessions
            launched with the same config — give each concurrent session
            its own split stream. *)
    start_delay : float;  (** simulated time of the session's first event *)
    msg : int;  (** message size, bytes *)
    record_trace : bool;  (** legacy trace capture (Memory-sink view) *)
    obs : Gridb_obs.Sink.t;  (** observability sink *)
    faults : Faults.t option;  (** fault model; [None] = no faults *)
    dynamics : Dynamics.t option;  (** time-varying topology model *)
    on_tick : now:float -> Adaptive.t option -> unit;
        (** pure observation hook, see {!Exec.run_reliable} *)
    tick_every : float;  (** tick period, us; 0. disables *)
    retries : int;  (** retransmissions before giving an edge up *)
    rto_mult : float;  (** initial RTO multiplier over the model round trip *)
    rto_min : float;  (** RTO floor, us *)
    rto_max : float;  (** backoff cap, us *)
    transport : transport;
  }

  val default : t
  (** The historical defaults of [Exec.run_reliable]: exact noise, fresh
      seed-0 rng, 1 MB message, no faults/dynamics/trace/obs, 5 retries,
      rto_mult 2., rto_min 1., rto_max 1e9, [Fixed] transport. *)

  val v :
    ?noise:Noise.t ->
    ?rng:Gridb_util.Rng.t ->
    ?start_delay:float ->
    ?msg:int ->
    ?record_trace:bool ->
    ?obs:Gridb_obs.Sink.t ->
    ?faults:Faults.t ->
    ?dynamics:Dynamics.t ->
    ?on_tick:(now:float -> Adaptive.t option -> unit) ->
    ?tick_every:float ->
    ?retries:int ->
    ?rto_mult:float ->
    ?rto_min:float ->
    ?rto_max:float ->
    ?transport:transport ->
    unit ->
    t
  (** {!default} with the given fields overridden. *)

  val validate : who:string -> t -> Gridb_topology.Machines.t -> Plan.t -> unit
  (** Raise [Invalid_argument] with message prefix [who] on any of the
      historical [Exec.run_reliable] argument errors (plan/fault/dynamics
      size mismatch, negative retries, [rto_mult < 1], non-positive
      [rto_min], [rto_max < rto_min], negative [tick_every]). *)
end

type t
(** A launched best-effort (fault-free pLogP) session. *)

val launch :
  ?sid:int ->
  ?who:string ->
  wire:Wire.t ->
  engine:Engine.t ->
  Config.t ->
  Gridb_topology.Machines.t ->
  Plan.t ->
  t
(** Seed one best-effort broadcast (the {!Exec.run} semantics) onto
    [engine]/[wire]: the root delivers to itself at [config.start_delay]
    and forwarding events cascade from there.  Only the
    [noise]/[rng]/[start_delay]/[msg]/[record_trace]/[obs] fields of
    [config] apply; the reliability fields are ignored.  [who] (default
    ["Session.launch"]) prefixes error messages.
    @raise Invalid_argument on plan size mismatch or a wire smaller than
    the machine view. *)

val result : t -> result
(** The session's outcome.  Call after [Engine.run] has reached
    quiescence; calling earlier gives a partial snapshot. *)

type reliable_t
(** A launched reliable session. *)

val launch_reliable :
  ?sid:int ->
  ?who:string ->
  wire:Wire.t ->
  engine:Engine.t ->
  Config.t ->
  Gridb_topology.Machines.t ->
  Plan.t ->
  reliable_t
(** Seed one reliable broadcast (the {!Exec.run_reliable} semantics:
    stop-and-wait ACK/timeout/backoff per edge, optional adaptive
    transport, faults, dynamics) onto [engine]/[wire].  The wire must
    cover the machine view {e plus} any dynamics join ranks
    ({!population}).  [who] (default ["Session.launch_reliable"])
    prefixes error messages.
    @raise Invalid_argument on everything {!Config.validate} checks, or a
    wire smaller than the session's rank population. *)

val reliable_result : reliable_t -> reliable
(** The session's outcome; call after [Engine.run]. *)

val population : Config.t -> Gridb_topology.Machines.t -> int
(** Rank population of a session under [config]: machine count plus the
    dynamics model's join ranks.  The minimum wire size for
    [launch_reliable]. *)

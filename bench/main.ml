(* Benchmark harness: regenerates every table and figure of the paper
   (Sections 6 and 7), runs the ablation studies from DESIGN.md, and closes
   with Bechamel micro-benchmarks of the scheduling kernels (the Section 7
   overhead discussion).

   Usage: dune exec bench/main.exe -- [-i ITERATIONS] [--full] [--csv DIR]
                                      [--skip-micro] [--skip-ablations]

   The default iteration count is 2500 per data point (quarter of the
   paper's 10000) to keep a full run to a few minutes; pass --full for the
   paper's exact count. *)

module Config = Gridb_experiments.Config
module Figures = Gridb_experiments.Figures
module Tables = Gridb_experiments.Tables
module Ablations = Gridb_experiments.Ablations
module Report = Gridb_experiments.Report

type options = {
  iterations : int;
  csv_dir : string option;
  micro : bool;
  ablations : bool;
}

let parse_options () =
  let options =
    ref { iterations = 2_500; csv_dir = Some "results"; micro = true; ablations = true }
  in
  let rec parse = function
    | [] -> ()
    | "-i" :: v :: rest | "--iterations" :: v :: rest ->
        options := { !options with iterations = int_of_string v };
        parse rest
    | "--full" :: rest ->
        options := { !options with iterations = 10_000 };
        parse rest
    | "--csv" :: dir :: rest ->
        options := { !options with csv_dir = Some dir };
        parse rest
    | "--no-csv" :: rest ->
        options := { !options with csv_dir = None };
        parse rest
    | "--skip-micro" :: rest ->
        options := { !options with micro = false };
        parse rest
    | "--skip-ablations" :: rest ->
        options := { !options with ablations = false };
        parse rest
    | other :: _ ->
        prerr_endline ("unknown option " ^ other);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  !options

let emit options figure =
  Report.print figure;
  match options.csv_dir with
  | Some dir ->
      let path = Report.to_csv ~dir figure in
      let gp = Report.to_gnuplot ~dir figure in
      Printf.printf "[csv written to %s; gnuplot script %s]\n\n" path gp
  | None -> ()

let section title = Printf.printf "\n##### %s #####\n\n" title

(* --- Bechamel micro-benchmarks -------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let module Heuristics = Gridb_sched.Heuristics in
  let module Instance = Gridb_sched.Instance in
  let instance_of n seed =
    let rng = Gridb_util.Rng.create seed in
    Instance.random ~rng ~n Instance.table2_ranges
  in
  let scheduling_tests n =
    List.map
      (fun h ->
        let inst = instance_of n 97 in
        Test.make
          ~name:(Printf.sprintf "%s/n=%d" h.Heuristics.name n)
          (Staged.stage (fun () -> ignore (Heuristics.run h inst))))
      Heuristics.all
  in
  let grid = Gridb_topology.Grid5000.grid () in
  let machines = Gridb_topology.Machines.expand grid in
  let substrate_tests =
    [
      Test.make ~name:"substrate/instance-of-grid5000"
        (Staged.stage (fun () ->
             ignore (Instance.of_grid ~root:0 ~msg:1_000_000 grid)));
      Test.make ~name:"substrate/des-broadcast-88-ranks"
        (Staged.stage
           (let inst = Instance.of_grid ~root:0 ~msg:1_000_000 grid in
            let schedule = Heuristics.run Heuristics.ecef_la inst in
            let plan = Gridb_des.Plan.of_cluster_schedule machines schedule in
            fun () -> ignore (Gridb_des.Exec.run ~msg:1_000_000 machines plan)));
      Test.make ~name:"substrate/lowekamp-88-machines"
        (Staged.stage
           (let matrix = Gridb_topology.Machines.latency_matrix machines in
            fun () -> ignore (Gridb_clustering.Lowekamp.detect matrix)));
      Test.make ~name:"substrate/optimal-n6"
        (Staged.stage
           (let inst = instance_of 6 13 in
            fun () -> ignore (Gridb_sched.Optimal.makespan inst)));
    ]
  in
  Test.make_grouped ~name:"gridsched"
    (scheduling_tests 10 @ scheduling_tests 50 @ substrate_tests)

let run_micro () =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] (micro_tests ()) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Gridb_util.Text_table.create [ "benchmark"; "time/run"; "r^2" ]
  in
  let rows =
    Hashtbl.fold (fun name result acc -> (name, result) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, result) ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some (e :: _) -> Gridb_util.Units.time_to_string (e /. 1e3)
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      Gridb_util.Text_table.add_row table [ name; estimate; r2 ])
    rows;
  Gridb_util.Text_table.print table;
  print_endline
    "(time/run of a full schedule computation; the Overhead model in lib/sched";
  print_endline " charges this class of cost before the root's first transmission)"

let () =
  let options = parse_options () in
  let config = Config.(with_iterations options.iterations default) in
  Printf.printf
    "Grid broadcast scheduling reproduction bench (PMEO-PDS'06 / hal-00022008)\n";
  Printf.printf "iterations per simulation point: %d (paper: 10000; use --full)\n"
    options.iterations;

  section "Tables";
  print_endline (Tables.table1 ());
  print_endline (Tables.table2 config);
  print_endline (Tables.table3 ());
  print_endline (Tables.table3_rederived ());

  section "Figure 1 - small grids (2-10 clusters)";
  let fig1 = Figures.fig1_small_grids config in
  emit options fig1;
  section "Figure 2 - up to 50 clusters";
  let fig2 = Figures.fig2_large_grids config in
  emit options fig2;
  section "Figure 3 - ECEF-like heuristics";
  let fig3 = Figures.fig3_ecef_zoom config in
  emit options fig3;
  section "Figure 4 - hit rates (both completion models)";
  let fig4a, fig4b = Figures.fig4_hit_rate config in
  emit options fig4a;
  emit options fig4b;
  section "Figure 5 - predicted times on the 88-machine GRID5000 grid";
  let fig5 = Figures.fig5_predicted config in
  emit options fig5;
  section "Figure 6 - measured times (DES + noise + scheduling overhead)";
  let fig6 = Figures.fig6_measured config in
  emit options fig6;

  if options.ablations then begin
    section "Ablations (DESIGN.md section 5)";
    List.iter (emit options) (Ablations.all config)
  end;

  section "Reproduction scorecard";
  let verdicts =
    Gridb_experiments.Scorecard.of_figures ~fig1 ~fig2 ~fig3 ~fig4_literal:fig4a
      ~fig4_overlapped:fig4b ~fig5 ~fig6 ()
    @ [ Gridb_experiments.Scorecard.table3_verdict () ]
  in
  print_string (Gridb_experiments.Scorecard.render verdicts);
  Printf.printf "\noverall: %s\n"
    (if Gridb_experiments.Scorecard.all_pass verdicts then
       "all paper claims reproduced"
     else "SOME CLAIMS NOT REPRODUCED - see EXPERIMENTS.md");

  if options.micro then begin
    section "Bechamel micro-benchmarks (scheduling cost, Section 7 overhead)";
    run_micro ()
  end

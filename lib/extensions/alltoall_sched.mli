(** Grid-aware scheduling for the alltoall pattern (future work).

    Hierarchical alltoall in three phases:
    + every cluster gathers its members' outgoing blocks at the coordinator
      ([T_gather]);
    + coordinators exchange aggregated inter-cluster blocks — cluster [c]'s
      block for cluster [d] is [msg_per_pair * size_c * size_d] bytes;
    + every coordinator scatters the received data internally
      ([T_scatter]).

    Phase 2 dominates and is sender-gap bound, so each coordinator's cost is
    the sum of its outgoing gaps plus the last latency; the rotation
    schedule (step [s]: send to [(c + s) mod n]) balances receivers.  The
    predicted makespan is compared against a direct (non-aggregated)
    machine-level alltoall to quantify the benefit of cluster aggregation. *)

type prediction = {
  gather : float;  (** max over clusters of phase 1 time, us *)
  exchange : float;  (** max over coordinators of phase 2 completion, us *)
  scatter : float;  (** max over clusters of phase 3 time, us *)
  total : float;
}

val predict :
  Gridb_topology.Grid.t -> msg_per_pair:int -> prediction
(** Closed-form prediction of the hierarchical alltoall. *)

val predict_direct : Gridb_topology.Grid.t -> msg_per_pair:int -> float
(** Machine-level rotation alltoall (no aggregation): every machine sends
    [msg_per_pair] to every other machine; sender-gap bound with
    inter-cluster links for remote peers. *)

val rotation_rounds : int -> (int * int * int) list
(** [(round, src, dst)] triples of the coordinator-level rotation schedule
    for [n] clusters — exposed for the simulator and the tests
    ([n * (n - 1)] triples, each ordered pair exactly once). *)

val simulate :
  ?noise:Gridb_des.Noise.t ->
  ?seed:int ->
  ?nonblocking:bool ->
  Gridb_topology.Grid.t ->
  msg_per_pair:int ->
  float
(** Executes the coordinator exchange phase (phase 2) on simMPI and returns
    its makespan plus the analytic phase 1/3 times — the "measured"
    counterpart of {!predict}.  With [nonblocking] (default [false]) the
    coordinators post every send up front (isend), which saturates the NIC
    and approaches the gap bound; the default rendezvous rounds are
    latency-synchronised and slower. *)

(* Tests for gridb_util: RNG, statistics, heap, tables, plots, CSV, units. *)

module Rng = Gridb_util.Rng
module Stats = Gridb_util.Stats
module Heap = Gridb_util.Binary_heap
module Units = Gridb_util.Units

let feq ?(eps = 1e-9) a b =
  let scale = Float.max 1. (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) <= eps *. scale

let check_feq ?eps name expected actual =
  Alcotest.(check bool) (Printf.sprintf "%s: %g ~ %g" name expected actual) true
    (feq ?eps expected actual)

(* --- Rng ------------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy preserves state" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a 0 in
  Alcotest.(check bool) "split streams differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_pure () =
  (* Deriving a stream must not advance the base generator: the pool hands
     [split base i] to task [i] on whatever domain claims it, so any hidden
     mutation of [base] would make results depend on claim order. *)
  let a = Rng.create 31 and b = Rng.create 31 in
  for i = 0 to 99 do
    ignore (Rng.split a i)
  done;
  Alcotest.(check int64) "base state untouched" (Rng.bits64 b) (Rng.bits64 a)

let test_rng_split_deterministic () =
  let draw seed i = Rng.bits64 (Rng.split (Rng.create seed) i) in
  for i = 0 to 49 do
    Alcotest.(check int64)
      (Printf.sprintf "stream %d reproducible" i)
      (draw 7 i) (draw 7 i)
  done;
  Alcotest.(check bool) "base state enters the derivation" false
    (draw 7 3 = draw 8 3)

let test_rng_split_collision_free () =
  (* Distinct indices from one base must give distinct streams — the
     repetition fan-out depends on it.  Check the first draw of 4096
     consecutive streams plus a spread of large indices: all distinct. *)
  let base = Rng.create 2006 in
  let seen = Hashtbl.create 8192 in
  let check i =
    let first = Rng.bits64 (Rng.split base i) in
    (match Hashtbl.find_opt seen first with
    | Some j -> Alcotest.failf "streams %d and %d share their first draw" j i
    | None -> ());
    Hashtbl.add seen first i
  in
  for i = 0 to 4095 do
    check i
  done;
  List.iter check [ 10_000; 100_000; 1_000_000; 12_345_678; max_int ]

let test_rng_split_rejects_negative () =
  Alcotest.check_raises "negative index"
    (Invalid_argument "Rng.split: negative stream index") (fun () ->
      ignore (Rng.split (Rng.create 1) (-1)))

(* --- Pool -------------------------------------------------------------- *)

module Pool = Gridb_util.Pool

(* A task heavy enough to make domains interleave, deterministic per index. *)
let pool_task i =
  let rng = Rng.split (Rng.create 99) i in
  let acc = ref 0L in
  for _ = 1 to 50 do
    acc := Int64.add !acc (Rng.bits64 rng)
  done;
  !acc

let test_pool_map_matches_sequential () =
  let items = Array.init 97 (fun i -> i) in
  let expected = Array.map pool_task items in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int64))
        (Printf.sprintf "jobs=%d bit-identical" jobs)
        expected
        (Pool.map ~jobs pool_task items))
    [ 1; 2; 4; 8 ]

let test_pool_mapi_passes_index () =
  let items = Array.make 23 "x" in
  let got = Pool.mapi ~jobs:4 (fun i s -> Printf.sprintf "%s%d" s i) items in
  Alcotest.(check (array string)) "indices in order"
    (Array.init 23 (Printf.sprintf "x%d"))
    got

let test_pool_empty_and_singleton () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:8 (fun x -> x) [||]);
  Alcotest.(check (array int)) "singleton" [| 6 |]
    (Pool.map ~jobs:8 (fun x -> 2 * x) [| 3 |]);
  Alcotest.(check (list int)) "map_list" [ 2; 4; 6 ]
    (Pool.map_list ~jobs:4 (fun x -> 2 * x) [ 1; 2; 3 ])

let test_pool_find_first_matches_scan =
  QCheck.Test.make ~name:"pool find_first = sequential scan"
    ~count:(Testutil.count 200)
    QCheck.(pair (int_range 1 8) (list_of_size (QCheck.Gen.int_bound 40) bool))
    (fun (jobs, flags) ->
      let items = Array.of_list flags in
      let f _ hit = if hit then Some () else None in
      let expected =
        let rec scan i =
          if i >= Array.length items then None
          else if items.(i) then Some (i, ())
          else scan (i + 1)
        in
        scan 0
      in
      Pool.find_first ~jobs f items = expected)

let test_pool_find_first_early_match () =
  (* Match at index 0 with heavy tails: the parallel scan must still
     return index 0, whatever workers did speculatively. *)
  let items = Array.init 64 (fun i -> i) in
  let f _ v =
    if v = 0 then Some "first"
    else begin
      ignore (pool_task v);
      if v mod 3 = 0 then Some "later" else None
    end
  in
  Alcotest.(check (option (pair int string)))
    "first index wins" (Some (0, "first"))
    (Pool.find_first ~jobs:4 f items)

exception Boom of int

let test_pool_raises_lowest_index () =
  let items = Array.init 40 (fun i -> i) in
  let f v = if v = 31 || v = 17 then raise (Boom v) else pool_task v in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs f items with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom v ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d lowest failing index" jobs)
            17 v)
    [ 1; 4 ]

let test_rng_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.create 6 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-3) 3 in
    Alcotest.(check bool) "in [-3,3]" true (v >= -3 && v <= 3)
  done

let test_rng_int_rejects () =
  let rng = Rng.create 0 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0));
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in: hi < lo") (fun () ->
      ignore (Rng.int_in rng 2 1))

let test_rng_float_in () =
  let rng = Rng.create 8 in
  for _ = 1 to 1000 do
    let v = Rng.float_in rng 1.5 2.5 in
    Alcotest.(check bool) "in [1.5,2.5)" true (v >= 1.5 && v < 2.5)
  done

let test_rng_uniformity () =
  (* Chi-square-ish sanity: 10 buckets, 10000 draws, each bucket within
     3 sigma of the expectation. *)
  let rng = Rng.create 123 in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let b = Rng.int rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  let expected = float_of_int n /. 10. in
  let sigma = sqrt (expected *. 0.9) in
  Array.iteri
    (fun i count ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d count %d within 4 sigma" i count)
        true
        (Float.abs (float_of_int count -. expected) < 4. *. sigma))
    buckets

let test_rng_gaussian_moments () =
  let rng = Rng.create 77 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian ~mu:3. ~sigma:2. rng) in
  let mean = Stats.mean xs in
  let sd = Stats.stddev xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (mean -. 3.) < 0.06);
  Alcotest.(check bool) "sd near 2" true (Float.abs (sd -. 2.) < 0.06)

let test_rng_lognormal_positive () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "lognormal > 0" true (Rng.lognormal ~sigma:0.5 rng > 0.)
  done

let test_rng_exponential () =
  let rng = Rng.create 3 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.exponential rng 2.) in
  Alcotest.(check bool) "all nonneg" true (Array.for_all (fun x -> x >= 0.) xs);
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (Stats.mean xs -. 0.5) < 0.02);
  Alcotest.check_raises "lambda <= 0"
    (Invalid_argument "Rng.exponential: lambda must be positive") (fun () ->
      ignore (Rng.exponential rng 0.))

let test_rng_shuffle_permutes () =
  let rng = Rng.create 12 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i)) sorted

let test_rng_permutation () =
  let rng = Rng.create 13 in
  let p = Rng.permutation rng 20 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "bijection" (Array.init 20 (fun i -> i)) sorted

let test_rng_pick () =
  let rng = Rng.create 14 in
  let a = [| 5; 6; 7 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "pick member" true (Array.mem (Rng.pick rng a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

(* --- Stats ----------------------------------------------------------- *)

let test_stats_mean () = check_feq "mean" 2.5 (Stats.mean [| 1.; 2.; 3.; 4. |])

let test_stats_variance () =
  check_feq "variance" (5. /. 3.) (Stats.variance [| 1.; 2.; 3.; 4. |]);
  check_feq "singleton" 0. (Stats.variance [| 42. |])

let test_stats_median () =
  check_feq "odd" 2. (Stats.median [| 3.; 1.; 2. |]);
  check_feq "even interpolates" 2.5 (Stats.median [| 1.; 2.; 3.; 4. |])

let test_stats_percentile () =
  let xs = [| 10.; 20.; 30.; 40.; 50. |] in
  check_feq "p0" 10. (Stats.percentile xs 0.);
  check_feq "p100" 50. (Stats.percentile xs 1.);
  check_feq "p25" 20. (Stats.percentile xs 0.25);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p outside [0,1]") (fun () ->
      ignore (Stats.percentile xs 1.5))

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_summary () =
  let s = Stats.summarize [| 4.; 1.; 3.; 2. |] in
  Alcotest.(check int) "count" 4 s.Stats.count;
  check_feq "min" 1. s.Stats.min;
  check_feq "max" 4. s.Stats.max;
  check_feq "mean" 2.5 s.Stats.mean

let test_stats_online_matches_batch () =
  let rng = Rng.create 55 in
  let xs = Array.init 500 (fun _ -> Rng.float_in rng (-10.) 10.) in
  let online = Stats.Online.create () in
  Array.iter (Stats.Online.add online) xs;
  check_feq ~eps:1e-9 "mean" (Stats.mean xs) (Stats.Online.mean online);
  check_feq ~eps:1e-9 "variance" (Stats.variance xs) (Stats.Online.variance online);
  check_feq "min" (Array.fold_left Float.min infinity xs) (Stats.Online.min online);
  check_feq "max" (Array.fold_left Float.max neg_infinity xs) (Stats.Online.max online)

let test_stats_online_merge () =
  let rng = Rng.create 56 in
  let xs = Array.init 400 (fun _ -> Rng.float_in rng 0. 1.) in
  let a = Stats.Online.create () and b = Stats.Online.create () in
  Array.iteri (fun i x -> Stats.Online.add (if i mod 2 = 0 then a else b) x) xs;
  let merged = Stats.Online.merge a b in
  check_feq "merged mean" (Stats.mean xs) (Stats.Online.mean merged);
  check_feq "merged variance" (Stats.variance xs) (Stats.Online.variance merged);
  Alcotest.(check int) "merged count" 400 (Stats.Online.count merged)

(* --- Binary heap ------------------------------------------------------ *)

let int_key x = float_of_int x

let test_heap_sorts () =
  let rng = Rng.create 21 in
  let xs = List.init 200 (fun _ -> Rng.int rng 1000) in
  let h = Heap.create ~key:int_key () in
  List.iter (Heap.add h) xs;
  Alcotest.(check (list int)) "drains sorted" (List.sort compare xs) (Heap.to_sorted_list h);
  Alcotest.(check int) "empty after drain" 0 (Heap.length h)

let test_heap_of_array () =
  let h = Heap.of_array ~key:int_key [| 5; 1; 4; 2; 3 |] in
  Alcotest.(check bool) "invariant holds" true (Heap.check_invariant h);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (Heap.to_sorted_list h)

let test_heap_peek_pop () =
  let h = Heap.create ~key:int_key () in
  Alcotest.(check (option int)) "peek empty" None (Heap.peek h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h);
  Heap.add h 3;
  Heap.add h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "peek does not remove" 2 (Heap.length h);
  Alcotest.(check int) "pop_exn" 1 (Heap.pop_exn h);
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_heap_invariant_random =
  QCheck.Test.make ~name:"heap invariant after random ops" ~count:(Testutil.count 200)
    QCheck.(list (int_bound 1000))
    (fun xs ->
      let h = Heap.create ~key:int_key () in
      List.iteri
        (fun i x -> if i mod 3 = 2 then ignore (Heap.pop h) else Heap.add h x)
        xs;
      Heap.check_invariant h)

let test_heap_stability_order () =
  (* Equal keys pop in insertion (FIFO) order: the keyed heap inherits
     Score_heap's smaller-id tie-break over insertion sequence numbers. *)
  let h = Heap.create ~key:(fun (a, _) -> float_of_int a) () in
  List.iter (Heap.add h) [ (1, "a"); (1, "b"); (0, "c"); (1, "d") ];
  Alcotest.(check int) "4 elements" 4 (Heap.length h);
  Alcotest.(check (list string)) "min first, then FIFO among ties"
    [ "c"; "a"; "b"; "d" ]
    (List.map snd (Heap.to_sorted_list h))

(* Differential test of the two heap structures: random push/pop sequences
   must agree between Binary_heap (keyed, over Score_heap) and a naive
   stable reference model.  This pins down both the shared sift core and
   the FIFO tie-break the DES engine relies on. *)
let test_heap_differential =
  QCheck.Test.make ~name:"binary heap vs stable reference model" ~count:(Testutil.count 300)
    QCheck.(list (pair bool (int_bound 20)))
    (fun ops ->
      (* Elements are (key, unique insertion seq): equal keys abound (keys
         are drawn from [0, 20]) so the FIFO tie-break is exercised, and the
         unique seq makes every pop's expected payload unambiguous. *)
      let h = Heap.create ~key:(fun (k, _) -> float_of_int k) () in
      let model = ref [] in
      let seq = ref 0 in
      List.for_all
        (fun (is_pop, k) ->
          if is_pop then begin
            let expected =
              match List.sort compare !model with
              | [] -> None
              | hd :: _ ->
                  model := List.filter (fun e -> e <> hd) !model;
                  Some hd
            in
            Heap.pop h = expected && Heap.check_invariant h
          end
          else begin
            let e = (k, !seq) in
            incr seq;
            Heap.add h e;
            model := e :: !model;
            Heap.length h = List.length !model && Heap.check_invariant h
          end)
        ops)

(* --- Score heap ------------------------------------------------------- *)

module Score_heap = Gridb_util.Score_heap

let drain h =
  let rec go acc =
    match Score_heap.pop h with None -> List.rev acc | Some e -> go (e :: acc)
  in
  go []

let test_score_heap_orders () =
  let h = Score_heap.create ~order:Score_heap.Min () in
  List.iter (fun (s, id) -> Score_heap.push h s id) [ (3., 1); (1., 2); (2., 0) ];
  Alcotest.(check (list (pair (float 0.) int)))
    "min drains ascending"
    [ (1., 2); (2., 0); (3., 1) ]
    (drain h);
  let h = Score_heap.create ~order:Score_heap.Max () in
  List.iter (fun (s, id) -> Score_heap.push h s id) [ (3., 1); (1., 2); (2., 0) ];
  Alcotest.(check (list (pair (float 0.) int)))
    "max drains descending"
    [ (3., 1); (2., 0); (1., 2) ]
    (drain h)

let test_score_heap_ties_to_smaller_id () =
  (* Both orders break score ties towards the smaller id — the engine
     depends on this to reproduce the naive scan's ascending-i choice. *)
  List.iter
    (fun order ->
      let h = Score_heap.create ~order () in
      List.iter (fun id -> Score_heap.push h 5. id) [ 9; 3; 7; 1; 8 ];
      Alcotest.(check (list int)) "tied ids ascend" [ 1; 3; 7; 8; 9 ]
        (List.map snd (drain h)))
    [ Score_heap.Min; Score_heap.Max ]

let test_score_heap_top_and_drop () =
  let h = Score_heap.create ~capacity:2 ~order:Score_heap.Min () in
  Alcotest.(check bool) "starts empty" true (Score_heap.is_empty h);
  for id = 0 to 9 do
    Score_heap.push h (float_of_int (10 - id)) id
  done;
  Alcotest.(check int) "grows past capacity" 10 (Score_heap.length h);
  Alcotest.(check (float 0.)) "top score" 1. (Score_heap.top_score h);
  Alcotest.(check int) "top id" 9 (Score_heap.top_id h);
  Score_heap.drop_top h;
  Alcotest.(check int) "next top id" 8 (Score_heap.top_id h);
  Score_heap.clear h;
  Alcotest.(check bool) "cleared" true (Score_heap.is_empty h)

let test_score_heap_invariant_random =
  QCheck.Test.make ~name:"score heap invariant after random ops" ~count:(Testutil.count 200)
    QCheck.(list (pair (int_bound 100) (int_bound 50)))
    (fun ops ->
      let h = Score_heap.create ~order:Score_heap.Min () in
      List.iteri
        (fun i (s, id) ->
          if i mod 3 = 2 then ignore (Score_heap.pop h)
          else Score_heap.push h (float_of_int s) id)
        ops;
      Score_heap.check_invariant h)

(* --- Score_heap.Bank --------------------------------------------------- *)

(* The engine reads second_score straight out of a Bank row's slots, so a
   row must hold the bit-identical slot layout a standalone heap would —
   not merely the same multiset.  Replay random push/drop sequences into
   both and compare every observation after every operation. *)
let test_bank_matches_standalone =
  QCheck.Test.make ~name:"bank row = standalone score heap"
    ~count:(Testutil.count 200)
    QCheck.(
      pair (oneofl [ Score_heap.Min; Score_heap.Max ])
        (list_of_size (Gen.int_bound 60) (pair (int_bound 40) (int_bound 20))))
    (fun (order, ops) ->
      let bank = Score_heap.Bank.create ~rows:3 ~cap:64 ~order in
      let row = 1 in
      let h = Score_heap.create ~order () in
      let same () =
        let n = Score_heap.length h in
        Score_heap.Bank.size bank row = n
        && Score_heap.Bank.check_invariant bank row
        && (n = 0
           || Score_heap.Bank.top_score bank row = Score_heap.top_score h
              && Score_heap.Bank.top_id bank row = Score_heap.top_id h
              && Score_heap.Bank.second_score bank row = Score_heap.second_score h)
      in
      List.for_all
        (fun (s, id) ->
          if s mod 3 = 2 && Score_heap.length h > 0 then begin
            Score_heap.drop_top h;
            Score_heap.Bank.drop_top bank row
          end
          else begin
            Score_heap.push h (float_of_int s) id;
            Score_heap.Bank.push bank row (float_of_int s) id
          end;
          same ())
        ops)

let test_bank_rows_independent () =
  let bank = Score_heap.Bank.create ~rows:3 ~cap:4 ~order:Score_heap.Min in
  Score_heap.Bank.push bank 0 5. 1;
  Score_heap.Bank.push bank 2 3. 9;
  Score_heap.Bank.push bank 2 1. 4;
  Alcotest.(check int) "row 0 size" 1 (Score_heap.Bank.size bank 0);
  Alcotest.(check bool) "row 1 empty" true (Score_heap.Bank.is_empty bank 1);
  Alcotest.(check int) "row 2 top id" 4 (Score_heap.Bank.top_id bank 2);
  Score_heap.Bank.reset bank 2;
  Alcotest.(check bool) "row 2 reset" true (Score_heap.Bank.is_empty bank 2);
  Alcotest.(check int) "row 0 survives reset of row 2" 1
    (Score_heap.Bank.size bank 0)

let test_bank_bounds () =
  let bank = Score_heap.Bank.create ~rows:2 ~cap:2 ~order:Score_heap.Min in
  Score_heap.Bank.push bank 0 1. 0;
  Score_heap.Bank.push bank 0 2. 1;
  Alcotest.check_raises "row full"
    (Invalid_argument "Score_heap.Bank.push: row full") (fun () ->
      Score_heap.Bank.push bank 0 3. 2);
  Alcotest.check_raises "bad cap" (Invalid_argument "Score_heap.Bank.create: cap < 1")
    (fun () -> ignore (Score_heap.Bank.create ~rows:1 ~cap:0 ~order:Score_heap.Min));
  Alcotest.check_raises "bad row" (Invalid_argument "Score_heap.Bank.push: bad row")
    (fun () -> Score_heap.Bank.push bank 2 1. 0)

(* --- Units ------------------------------------------------------------ *)

let test_units_conversions () =
  check_feq "ms" 1_000. (Units.ms 1.);
  check_feq "s" 1_000_000. (Units.seconds 1.);
  check_feq "roundtrip" 2.5 (Units.to_seconds (Units.seconds 2.5));
  Alcotest.(check int) "mb" 4_000_000 (Units.mb 4);
  Alcotest.(check int) "kib" 2048 (Units.kib 2)

let test_units_pp () =
  Alcotest.(check string) "seconds" "2.5 s" (Units.time_to_string 2_500_000.);
  Alcotest.(check string) "ms" "340 ms" (Units.time_to_string 340_000.);
  Alcotest.(check string) "us" "47.6 us" (Units.time_to_string 47.56);
  Alcotest.(check string) "MB" "4 MB" (Units.bytes_to_string 4_000_000);
  Alcotest.(check string) "B" "37 B" (Units.bytes_to_string 37)

(* --- Text table / plot / CSV ------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_renders () =
  let t = Gridb_util.Text_table.create [ "name"; "value" ] in
  Gridb_util.Text_table.add_row t [ "alpha"; "1" ];
  Gridb_util.Text_table.add_float_row t "beta" [ 2.5 ];
  let s = Gridb_util.Text_table.render t in
  Alcotest.(check bool) "has header" true (String.length s > 0);
  Alcotest.(check bool) "mentions alpha" true (contains s "alpha")

and test_table_rejects_bad_row () =
  let t = Gridb_util.Text_table.create [ "a"; "b" ] in
  Alcotest.check_raises "bad width" (Invalid_argument "Text_table.add_row: row width mismatch")
    (fun () -> Gridb_util.Text_table.add_row t [ "only-one" ])

let test_plot_renders () =
  let s =
    Gridb_util.Ascii_plot.plot ~title:"t"
      [ { Gridb_util.Ascii_plot.label = "x"; points = [ (0., 0.); (1., 1.) ] } ]
  in
  Alcotest.(check bool) "non-empty" true (String.length s > 100);
  let empty = Gridb_util.Ascii_plot.plot ~title:"none" [] in
  Alcotest.(check bool) "no data marker" true (contains empty "no data")

let test_plot_golden () =
  (* Exact frame: two series sharing two points ('*' marks the overlap),
     auto-scaled y axis, legend glyph assignment in series order.  Body
     rows are padded to the full frame width, hence the trailing spaces. *)
  let rendered =
    Gridb_util.Ascii_plot.plot ~width:30 ~height:8 ~x_label:"x" ~y_label:"y" ~title:"t"
      [ { Gridb_util.Ascii_plot.label = "lin"; points = [ (0., 0.); (1., 1.); (2., 2.) ] };
        { Gridb_util.Ascii_plot.label = "sq"; points = [ (0., 0.); (1., 1.); (2., 4.) ] } ]
  in
  let expected =
    String.concat "\n"
      [ "t";
        "y";
        "       4 |                             b";
        "         |                              ";
        "         |                              ";
        "         |                             a";
        "   1.714 |                              ";
        "         |               *              ";
        "         |                              ";
        "       0 |*                             ";
        "         +------------------------------";
        "          0                            2";
        "          x";
        "legend: a=lin b=sq";
        "" ]
  in
  Alcotest.(check string) "exact plot" expected rendered

let test_testutil_count () =
  (* QCHECK_COUNT is a multiplier (>= 1); recompute it here so the test
     also holds when CI scales the suite up. *)
  let m =
    match Option.bind (Sys.getenv_opt "QCHECK_COUNT") int_of_string_opt with
    | Some m when m >= 1 -> m
    | _ -> 1
  in
  Alcotest.(check int) "scales linearly" (40 * m) (Testutil.count 40);
  Alcotest.(check int) "clamped to 1" 1 (Testutil.count 0)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Gridb_util.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Gridb_util.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Gridb_util.Csv.escape "a\"b");
  Alcotest.(check string) "row" "a,\"b,c\",d"
    (Gridb_util.Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_parse () =
  let rows = Alcotest.(check (list (list string))) in
  rows "empty" [] (Gridb_util.Csv.parse "");
  rows "plain" [ [ "a"; "b" ]; [ "c"; "d" ] ] (Gridb_util.Csv.parse "a,b\nc,d\n");
  rows "crlf" [ [ "a"; "b" ]; [ "c" ] ] (Gridb_util.Csv.parse "a,b\r\nc");
  rows "quoted comma, newline, doubled quote"
    [ [ "a,b"; "c\nd"; "e\"f" ] ]
    (Gridb_util.Csv.parse "\"a,b\",\"c\nd\",\"e\"\"f\"");
  rows "trailing empty field" [ [ "a"; "" ] ] (Gridb_util.Csv.parse "a,")

let csv_field_gen =
  QCheck.Gen.(
    map
      (fun cs -> String.concat "" (List.map (String.make 1) cs))
      (list_size (int_bound 12) (oneofl [ 'a'; 'b'; ','; '\"'; '\n'; '\r'; ' '; 'z' ])))

let test_csv_roundtrip =
  (* parse . row_to_string = singleton, on fields stuffed with commas,
     quotes and newlines.  The one exception is [ "" ]: a lone empty field
     serialises to the empty string, which parses as zero records. *)
  QCheck.Test.make ~name:"csv escape/parse round trip" ~count:(Testutil.count 500)
    (QCheck.make QCheck.Gen.(list_size (int_range 1 8) csv_field_gen))
    (fun row ->
      QCheck.assume (row <> [ "" ]);
      Gridb_util.Csv.parse (Gridb_util.Csv.row_to_string row) = [ row ])

let test_csv_write_read () =
  let path = Filename.temp_file "gridb" ".csv" in
  Gridb_util.Csv.write path [ [ "h1"; "h2" ]; [ "1"; "2" ] ];
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header line" "h1,h2" line

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  Alcotest.run "util"
    [
      ( "rng",
        [
          quick "determinism" test_rng_determinism;
          quick "seed sensitivity" test_rng_seed_sensitivity;
          quick "copy" test_rng_copy;
          quick "split" test_rng_split_independent;
          quick "split pure" test_rng_split_pure;
          quick "split deterministic" test_rng_split_deterministic;
          quick "split collision-free" test_rng_split_collision_free;
          quick "split rejects negative" test_rng_split_rejects_negative;
          quick "int bounds" test_rng_int_bounds;
          quick "int_in bounds" test_rng_int_in_bounds;
          quick "int rejects" test_rng_int_rejects;
          quick "float_in" test_rng_float_in;
          quick "uniformity" test_rng_uniformity;
          quick "gaussian moments" test_rng_gaussian_moments;
          quick "lognormal positive" test_rng_lognormal_positive;
          quick "exponential" test_rng_exponential;
          quick "shuffle permutes" test_rng_shuffle_permutes;
          quick "permutation" test_rng_permutation;
          quick "pick" test_rng_pick;
        ] );
      ( "stats",
        [
          quick "mean" test_stats_mean;
          quick "variance" test_stats_variance;
          quick "median" test_stats_median;
          quick "percentile" test_stats_percentile;
          quick "empty input" test_stats_empty;
          quick "summary" test_stats_summary;
          quick "online matches batch" test_stats_online_matches_batch;
          quick "online merge" test_stats_online_merge;
        ] );
      ( "heap",
        [
          quick "sorts" test_heap_sorts;
          quick "of_array" test_heap_of_array;
          quick "peek/pop" test_heap_peek_pop;
          QCheck_alcotest.to_alcotest test_heap_invariant_random;
          quick "ties" test_heap_stability_order;
          QCheck_alcotest.to_alcotest test_heap_differential;
        ] );
      ( "pool",
        [
          quick "map matches sequential" test_pool_map_matches_sequential;
          quick "mapi passes index" test_pool_mapi_passes_index;
          quick "empty/singleton/list" test_pool_empty_and_singleton;
          QCheck_alcotest.to_alcotest test_pool_find_first_matches_scan;
          quick "find_first early match" test_pool_find_first_early_match;
          quick "raises lowest index" test_pool_raises_lowest_index;
        ] );
      ( "score-heap",
        [
          quick "orders" test_score_heap_orders;
          quick "ties to smaller id" test_score_heap_ties_to_smaller_id;
          quick "top/drop/grow" test_score_heap_top_and_drop;
          QCheck_alcotest.to_alcotest test_score_heap_invariant_random;
          QCheck_alcotest.to_alcotest test_bank_matches_standalone;
          quick "bank rows independent" test_bank_rows_independent;
          quick "bank bounds" test_bank_bounds;
        ] );
      ( "units",
        [ quick "conversions" test_units_conversions; quick "pretty" test_units_pp ] );
      ( "render",
        [
          quick "table renders" test_table_renders;
          quick "table rejects bad row" test_table_rejects_bad_row;
          quick "plot renders" test_plot_renders;
          quick "plot golden" test_plot_golden;
          quick "testutil count" test_testutil_count;
          quick "csv escape" test_csv_escape;
          quick "csv parse" test_csv_parse;
          QCheck_alcotest.to_alcotest test_csv_roundtrip;
          quick "csv write" test_csv_write_read;
        ] );
    ]
